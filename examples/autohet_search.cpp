// Full AutoHet RL search on VGG16 (the paper's primary workload), with
// episode-by-episode convergence output and a comparison against the
// homogeneous, manual-hetero, greedy and random baselines.
//
// Usage: autohet_search [episodes] [seed] [--trace-out trace.json]
//                       [--metrics-out metrics.prom] [--episode-log ep.jsonl]
//                       [--log-level debug] [--eval-threads N]
//                       [--plan-out plan.json] [--report-json report.json]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "autohet/baselines.hpp"
#include "autohet/search.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "nn/model_zoo.hpp"
#include "obs/session.hpp"
#include "report/serialize.hpp"
#include "report/table.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  common::ArgParser args("autohet_search",
                         "AutoHet RL search on VGG16 with baseline "
                         "comparison.");
  args.add_optional_positional("episodes", "300", "RL search episodes");
  args.add_optional_positional("seed", "1", "RNG seed");
  args.add_option("eval-threads", "0",
                  "worker threads for batched hardware evaluation "
                  "(0 = serial)");
  args.add_option("plan-out", "",
                  "compile the winning strategy into a DeploymentPlan and "
                  "write it as JSON (replay with autohet_cli replay)");
  args.add_option("report-json", "",
                  "write the winner's NetworkReport as JSON (byte-comparable "
                  "with a replayed plan's report)");
  obs::add_cli_options(args);

  std::string error;
  if (!args.parse(argc, argv, &error)) {
    std::cerr << error << '\n';
    return 2;
  }

  try {
    obs::ObsSession session(args);

    const int episodes = static_cast<int>(std::atoi(
        args.positional("episodes").c_str()));
    const std::uint64_t seed =
        std::strtoull(args.positional("seed").c_str(), nullptr, 10);

    const nn::NetworkSpec net = nn::vgg16();
    std::cout << "AutoHet search on " << net.name << ", " << episodes
              << " episodes, seed " << seed << "\n\n";

    core::EnvConfig cfg;
    cfg.candidates = mapping::hybrid_candidates();
    cfg.accel.tile_shared = true;
    cfg.eval_threads =
        static_cast<std::size_t>(args.option_int("eval-threads"));
    const core::CrossbarEnv env(net.mappable_layers(), cfg);

    core::SearchConfig search_cfg;
    search_cfg.episodes = episodes;
    search_cfg.seed = seed;
    core::AutoHetSearch search(env, search_cfg);
    const core::SearchResult result = search.run();

    // Convergence trace: best-so-far reward every 25 episodes.
    std::cout << "Convergence (best reward so far):\n";
    double best_so_far = 0.0;
    for (std::size_t ep = 0; ep < result.history.size(); ++ep) {
      best_so_far = std::max(best_so_far, result.history[ep].reward);
      if ((ep + 1) % 25 == 0) {
        std::cout << "  episode " << ep + 1 << ": " << best_so_far << '\n';
      }
    }

    // Baseline comparison on the same hybrid-candidate environment plus the
    // paper's square-only baselines.
    core::EnvConfig square_cfg;
    square_cfg.candidates = mapping::square_candidates();
    const core::CrossbarEnv square_env(net.mappable_layers(), square_cfg);

    report::Table table({"Strategy", "Utilization %", "Energy (nJ)", "RUE"});
    const auto add = [&table](const std::string& name,
                              const reram::NetworkReport& r) {
      table.add_row({name, report::format_fixed(r.utilization * 100.0, 1),
                     report::format_sci(r.energy.total_nj()),
                     report::format_sci(r.rue())});
    };
    add(core::best_homogeneous(square_env).name,
        core::best_homogeneous(square_env).report);
    add("Manual-Hetero (512 head / 256 tail)",
        core::manual_hetero(square_env, 4, 3, 10).report);
    add("Greedy (layer-local)", core::greedy_search(env).report);
    add("Random (equal budget)",
        core::random_search(env, episodes, seed).report);
    add("AutoHet (RL)", result.best_report);
    std::cout << '\n';
    table.print(std::cout);

    if (!args.option("plan-out").empty() ||
        !args.option("report-json").empty()) {
      const plan::DeploymentPlan plan =
          env.compile(result.best_actions, net.name);
      if (const std::string path = args.option("plan-out"); !path.empty()) {
        std::ofstream file(path);
        AUTOHET_CHECK(file.good(), "cannot open plan file: " + path);
        report::write_plan_json(file, plan);
        std::cout << "\ndeployment plan written to " << path << '\n';
      }
      if (const std::string path = args.option("report-json");
          !path.empty()) {
        std::ofstream file(path);
        AUTOHET_CHECK(file.good(), "cannot open report file: " + path);
        report::write_network_report_json(file, plan::evaluate_plan(plan));
        std::cout << "network report written to " << path << '\n';
      }
    }

    std::cout << "\nSearch time: decision " << result.decision_seconds
              << " s, simulator " << result.simulator_seconds
              << " s, learning " << result.learning_seconds << " s\n";
    std::cout << "Best per-layer configuration:\n  ";
    for (auto a : result.best_actions) {
      std::cout << env.candidates()[a].name() << ' ';
    }
    std::cout << '\n';
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
