// End-to-end deployment workflow (the full Fig. 6 path), built on the
// DeploymentPlan IR:
//   1. run the RL search on LeNet-5,
//   2. serialize the winning strategy to the Fig. 6 text format (and parse
//      it back, as a deployment flow would from a file),
//   3. compile the strategy into an immutable DeploymentPlan — the single
//      artifact every downstream stage consumes — and round-trip it
//      through its JSON form,
//   4. place the plan's tiles on the chip's bank grid,
//   5. compile a Global Controller program and run the checked decoder,
//   6. report weight-programming cost and interconnect traffic,
//   7. execute real inference on the plan-configured fabric.
#include <iostream>
#include <sstream>

#include "autohet/search.hpp"
#include "autohet/strategy.hpp"
#include "nn/model_zoo.hpp"
#include "reram/controller.hpp"
#include "reram/functional.hpp"
#include "reram/noc.hpp"
#include "reram/programming.hpp"
#include "report/serialize.hpp"
#include "report/table.hpp"
#include "tensor/ops.hpp"

using namespace autohet;

int main() {
  const nn::NetworkSpec net = nn::lenet5();

  // --- 1. search ---
  core::EnvConfig env_cfg;
  env_cfg.candidates = mapping::hybrid_candidates();
  env_cfg.accel.tile_shared = true;
  const core::CrossbarEnv env(net.mappable_layers(), env_cfg);
  core::SearchConfig search_cfg;
  search_cfg.episodes = 80;
  search_cfg.seed = 11;
  const auto result = core::AutoHetSearch(env, search_cfg).run();

  // --- 2. strategy serialization round-trip ---
  const core::Strategy strategy = core::strategy_from_actions(
      net.name, env.candidates(), result.best_actions);
  const std::string text = strategy.to_text();
  std::cout << "Learned strategy (Fig. 6 format):\n" << text << '\n';
  const core::Strategy reloaded = core::Strategy::from_text(text);

  // --- 3. compile to a DeploymentPlan, round-trip through JSON ---
  const plan::DeploymentPlan compiled =
      plan::compile_plan(net, reloaded, env_cfg.accel);
  std::ostringstream plan_json;
  report::write_plan_json(plan_json, compiled);
  const plan::DeploymentPlan plan = report::read_plan_json(plan_json.str());
  std::cout << "Compiled plan: " << plan.layers.size() << " layers, "
            << plan.allocation.occupied_tiles() << " tiles ("
            << plan_json.str().size() << " bytes of JSON)\n";

  // --- 4. placement ---
  reram::ChipSpec chip;
  chip.banks = 1;
  chip.bank.tile_rows = 16;
  chip.bank.tile_cols = 16;
  const auto placement = reram::place_tiles(plan.allocation.tiles, chip);
  std::cout << "Placed " << placement.tiles_placed << " tiles on "
            << placement.banks_used << " bank(s), chip occupancy "
            << report::format_fixed(placement.chip_occupancy * 100.0, 1)
            << "%\n";

  // --- 5. Global Controller program ---
  const auto program = reram::compile_program(plan.layers, plan.allocation);
  const auto stats = reram::execute_program(program);
  std::cout << "GC program: " << stats.instructions << " instructions, "
            << stats.tiles_configured << " tiles configured, "
            << stats.mvms_issued << " MVMs issued, " << stats.layers_executed
            << " layers executed\n";
  std::cout << "First instructions:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, program.size()); ++i) {
    std::cout << "  " << program[i].to_string() << '\n';
  }

  // --- 6a. deployment (weight programming) cost ---
  const auto programming =
      reram::evaluate_programming(plan.allocation, plan.accel.device);
  std::cout << "Programming cost: " << programming.cells_programmed
            << " cells, "
            << report::format_fixed(programming.energy_nj, 1) << " nJ, "
            << report::format_sci(programming.latency_ns, 2)
            << " ns wall-clock\n";

  // --- 6b. interconnect traffic ---
  const auto noc = reram::evaluate_noc(plan.layers, plan.allocation,
                                       placement);
  std::cout << "Interconnect: " << noc.total_bytes
            << " bytes/inference over mean "
            << report::format_fixed(noc.mean_hops, 2) << " hops ("
            << report::format_fixed(noc.total_energy_nj, 2) << " nJ)\n";

  // --- 7. inference on the plan-configured fabric ---
  common::Rng weight_rng(3);
  const nn::Model model(net, weight_rng);
  const reram::SimulatedModel fabric(model, plan);
  common::Rng img_rng(4);
  int agree = 0;
  constexpr int kSamples = 5;
  for (int s = 0; s < kSamples; ++s) {
    const auto img = nn::synthetic_image(img_rng, 1, 32, 32);
    if (tensor::argmax(model.forward(img)) ==
        tensor::argmax(fabric.forward(img))) {
      ++agree;
    }
  }
  std::cout << "Inference on deployed fabric: " << agree << '/' << kSamples
            << " argmax agreement with float reference\n";
  return 0;
}
