// Quickstart: map a DNN onto the heterogeneous ReRAM accelerator and read
// out the hardware metrics the paper optimizes.
//
//   1. pick a workload network (AlexNet from the paper's Table 2),
//   2. evaluate the five homogeneous square-crossbar baselines,
//   3. run a short AutoHet RL search over the paper's hybrid candidates,
//   4. print utilization / energy / RUE side by side.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "autohet/baselines.hpp"
#include "autohet/search.hpp"
#include "nn/model_zoo.hpp"
#include "report/table.hpp"

using namespace autohet;

int main() {
  const nn::NetworkSpec net = nn::alexnet();
  std::cout << "AutoHet quickstart: " << net.name << " ("
            << net.mappable_layers().size() << " mappable layers, "
            << net.total_weights() << " weights)\n\n";

  // --- homogeneous baselines (fixed-size square crossbars) ---
  core::EnvConfig homo_cfg;
  homo_cfg.candidates = mapping::square_candidates();
  const core::CrossbarEnv homo_env(net.mappable_layers(), homo_cfg);

  // --- AutoHet: hybrid candidates + tile sharing + RL search ---
  core::EnvConfig auto_cfg;
  auto_cfg.candidates = mapping::hybrid_candidates();
  auto_cfg.accel.tile_shared = true;
  const core::CrossbarEnv auto_env(net.mappable_layers(), auto_cfg);

  core::SearchConfig search_cfg;
  search_cfg.episodes = 150;
  search_cfg.seed = 1;
  core::AutoHetSearch search(auto_env, search_cfg);
  const core::SearchResult result = search.run();

  report::Table table(
      {"Accelerator", "Utilization %", "Energy (nJ)", "RUE", "Tiles"});
  for (const auto& homo : core::homogeneous_sweep(homo_env)) {
    table.add_row({homo.name,
                   report::format_fixed(homo.report.utilization * 100.0, 1),
                   report::format_sci(homo.report.energy.total_nj()),
                   report::format_sci(homo.report.rue()),
                   std::to_string(homo.report.occupied_tiles)});
  }
  const auto& best = result.best_report;
  table.add_row({"AutoHet", report::format_fixed(best.utilization * 100.0, 1),
                 report::format_sci(best.energy.total_nj()),
                 report::format_sci(best.rue()),
                 std::to_string(best.occupied_tiles)});
  table.print(std::cout);

  std::cout << "\nPer-layer crossbar sizes chosen by the RL agent:\n";
  const auto layers = net.mappable_layers();
  for (std::size_t k = 0; k < result.best_actions.size(); ++k) {
    std::cout << "  L" << k + 1 << "  "
              << auto_env.candidates()[result.best_actions[k]].name() << "  ("
              << layers[k].to_string() << ")\n";
  }
  return 0;
}
