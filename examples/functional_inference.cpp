// Functional inference on the simulated heterogeneous fabric: LeNet-5 with
// 8-bit quantized weights executed crossbar-by-crossbar (including the
// faithful bit-serial datapath on the first sample), compared against the
// float reference.
//
// The input images are deterministic synthetic samples — stand-ins for
// MNIST, which hardware metrics and datapath correctness do not depend on
// (DESIGN.md §1).
#include <iostream>

#include "common/rng.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "reram/functional.hpp"
#include "report/table.hpp"
#include "tensor/ops.hpp"

using namespace autohet;

int main() {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng weight_rng(42);
  const nn::Model model(net, weight_rng);

  // Heterogeneous per-layer crossbar assignment (hand-picked to show mixed
  // square and rectangle shapes; run examples/autohet_search to learn one).
  const std::vector<mapping::CrossbarShape> shapes = {
      {36, 32},    // conv1: 5x5 kernels, 1 input channel
      {288, 256},  // conv2
      {576, 512},  // fc 400->120
      {128, 128},  // fc 120->84
      {128, 128},  // fc 84->10
  };
  const reram::SimulatedModel fabric(model, shapes);
  const reram::SimulatedModel fabric_bitserial(
      model, shapes, reram::DatapathMode::kBitSerial);

  std::cout << "LeNet-5 on the simulated heterogeneous ReRAM fabric\n";
  std::cout << "Layer -> crossbar assignment:\n";
  const auto mappable = net.mappable_layers();
  for (std::size_t i = 0; i < mappable.size(); ++i) {
    const auto& m = fabric.mapped_layers()[i].mapping();
    std::cout << "  " << mappable[i].to_string() << " -> " << shapes[i].name()
              << "  (" << m.logical_crossbars() << " logical crossbars, "
              << report::format_fixed(m.utilization() * 100.0, 1)
              << "% utilization)\n";
  }

  common::Rng image_rng(7);
  report::Table table({"Sample", "Float argmax", "ReRAM argmax",
                       "Max |diff|", "Datapath"});
  int agreements = 0;
  constexpr int kSamples = 8;
  for (int s = 0; s < kSamples; ++s) {
    const auto image = nn::synthetic_image(image_rng, 1, 32, 32);
    const auto reference = model.forward(image);
    // First sample runs the exact bit-serial datapath (slow); the rest use
    // the bit-exact integer shortcut.
    const auto simulated =
        (s == 0) ? fabric_bitserial.forward(image) : fabric.forward(image);
    const auto ref_class = tensor::argmax(reference);
    const auto sim_class = tensor::argmax(simulated);
    if (ref_class == sim_class) ++agreements;
    table.add_row({std::to_string(s), std::to_string(ref_class),
                   std::to_string(sim_class),
                   report::format_sci(
                       tensor::max_abs_diff(reference, simulated)),
                   s == 0 ? "bit-serial" : "integer"});
  }
  std::cout << '\n';
  table.print(std::cout);
  std::cout << "\nClassification agreement with float reference: "
            << agreements << "/" << kSamples
            << " (ties between near-equal random logits may flip under "
               "8-bit quantization)\n";
  return agreements >= kSamples - 1 ? 0 : 1;
}
