// autohet_cli — the command-line driver a downstream user runs.
//
//   autohet_cli search   --model vgg16 --episodes 300 --out strategy.txt
//                        --plan-out plan.json
//   autohet_cli evaluate --model vgg16 --strategy strategy.txt
//   autohet_cli replay   --plan-in plan.json --report-json report.json
//   autohet_cli profile  --plan-in plan.json --profile-out profile.json
//   autohet_cli serve    --plan-in a.json --plan-in b.json
//                        --serving-json BENCH_serving.json --trace-out t.json
//   autohet_cli graph    --network resnet152 --dot-out resnet152.dot
//                        --plan-out plan.json --check-skeleton
//   autohet_cli baselines --model alexnet
//
// `search` runs the RL search and writes the winning strategy in the Fig. 6
// text format (plus an optional per-episode CSV) and, with --plan-out, the
// compiled DeploymentPlan as JSON; `evaluate` loads a strategy file,
// compiles it to a plan and reports its hardware metrics; `replay` loads a
// saved plan and re-runs hardware evaluation, functional inference and
// robustness Monte Carlo without searching or re-mapping; `profile` replays
// a plan with the attribution profiler on and prints a top-N hotspot table
// (per-tile/crossbar energy, MVM, and write attribution in profile.json);
// `serve` keeps several saved plans resident on one fabric and replays a
// seeded synthetic request stream against them in simulated time, printing
// per-model latency percentiles and writing the deterministic serving
// report; `graph` builds a DAG computation graph from the model zoo, prints
// its node/edge/shape summary, optionally emits deterministic Graphviz and
// a compiled v2 plan, and can cross-check the graph evaluation against the
// legacy linear path over its conv/FC skeleton; `baselines` prints the
// homogeneous sweep.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "autohet/baselines.hpp"
#include "autohet/search.hpp"
#include "autohet/strategy.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "nn/describe.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "obs/session.hpp"
#include "reram/functional.hpp"
#include "reram/kernels/kernels.hpp"
#include "reram/scheduler.hpp"
#include "report/profile_report.hpp"
#include "report/serialize.hpp"
#include "report/table.hpp"
#include "serve/serialize.hpp"
#include "serve/simulator.hpp"
#include "tensor/ops.hpp"

using namespace autohet;

namespace {

std::vector<mapping::CrossbarShape> candidates_by_name(
    const std::string& name) {
  if (name == "hybrid") return mapping::hybrid_candidates();
  if (name == "square") return mapping::square_candidates();
  if (name == "rectangle") return mapping::rectangle_candidates();
  if (name == "all") return mapping::all_candidates();
  AUTOHET_CHECK(false, "unknown candidate set: " + name +
                           " (use hybrid|square|rectangle|all)");
  return {};
}

core::CrossbarEnv build_env(const common::ArgParser& args,
                            const nn::NetworkSpec& net) {
  core::EnvConfig cfg;
  cfg.candidates = candidates_by_name(args.option("candidates"));
  cfg.accel.tile_shared = !args.flag("no-tile-shared");
  cfg.accel.pes_per_tile = args.option_int("pes-per-tile");
  cfg.eval_threads = static_cast<std::size_t>(args.option_int("eval-threads"));
  return core::CrossbarEnv(net.mappable_layers(), cfg);
}

void print_report(const std::string& name, const reram::NetworkReport& r) {
  report::Table table({"Metric", "Value"});
  table.add_row({"configuration", name});
  table.add_row({"utilization %",
                 report::format_fixed(r.utilization * 100.0, 2)});
  table.add_row({"energy (nJ)", report::format_sci(r.energy.total_nj(), 3)});
  table.add_row({"RUE", report::format_sci(r.rue(), 3)});
  table.add_row({"area (um^2)", report::format_sci(r.area.total_um2(), 3)});
  table.add_row({"latency (ns)", report::format_sci(r.latency_ns, 3)});
  table.add_row({"occupied tiles", std::to_string(r.occupied_tiles)});
  table.add_row({"empty crossbars", std::to_string(r.empty_crossbars)});
  table.print(std::cout);
}

std::string model_or(const common::ArgParser& args,
                     const std::string& fallback) {
  return args.option("model").empty() ? fallback : args.option("model");
}

plan::DeploymentPlan load_plan(const std::string& path) {
  std::ifstream file(path);
  AUTOHET_CHECK(file.good(), "cannot open plan file: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return report::read_plan_json(buffer.str());
}

int run_search(const common::ArgParser& args) {
  const auto net = nn::network_by_name(model_or(args, "vgg16"));
  const auto env = build_env(args, net);
  core::SearchConfig cfg;
  cfg.episodes = static_cast<int>(args.option_int("episodes"));
  cfg.seed = static_cast<std::uint64_t>(args.option_int("seed"));
  cfg.warmup_episodes = std::min(25, cfg.episodes / 4);
  const auto result = core::AutoHetSearch(env, cfg).run();

  const auto strategy = core::strategy_from_actions(
      net.name, env.candidates(), result.best_actions);
  if (!args.option("plan-out").empty() ||
      !args.option("report-json").empty()) {
    const plan::DeploymentPlan plan =
        env.compile(result.best_actions, net.name);
    if (const std::string path = args.option("plan-out"); !path.empty()) {
      std::ofstream file(path);
      AUTOHET_CHECK(file.good(), "cannot open plan file: " + path);
      report::write_plan_json(file, plan);
      std::cout << "deployment plan written to " << path << "\n\n";
    }
    if (const std::string path = args.option("report-json"); !path.empty()) {
      std::ofstream file(path);
      AUTOHET_CHECK(file.good(), "cannot open report file: " + path);
      report::write_network_report_json(file, plan::evaluate_plan(plan));
      std::cout << "network report written to " << path << "\n\n";
    }
  }
  const std::string out = args.option("out");
  if (!out.empty()) {
    std::ofstream file(out);
    AUTOHET_CHECK(file.good(), "cannot open output file: " + out);
    file << strategy.to_text();
    std::cout << "strategy written to " << out << "\n\n";
  } else {
    std::cout << strategy.to_text() << '\n';
  }
  const std::string csv = args.option("csv");
  if (!csv.empty()) {
    report::Table history({"episode", "reward", "utilization", "energy_nj",
                           "rue"});
    for (std::size_t e = 0; e < result.history.size(); ++e) {
      const auto& rec = result.history[e];
      history.add_row({std::to_string(e), report::format_sci(rec.reward, 6),
                       report::format_fixed(rec.utilization, 6),
                       report::format_sci(rec.energy_nj, 6),
                       report::format_sci(rec.rue, 6)});
    }
    std::ofstream file(csv);
    AUTOHET_CHECK(file.good(), "cannot open csv file: " + csv);
    history.print_csv(file);
    std::cout << "episode history written to " << csv << "\n\n";
  }
  print_report("AutoHet (RL search)", result.best_report);
  return 0;
}

int run_evaluate(const common::ArgParser& args) {
  const std::string path = args.option("strategy");
  AUTOHET_CHECK(!path.empty(), "evaluate needs --strategy <file>");
  std::ifstream file(path);
  AUTOHET_CHECK(file.good(), "cannot open strategy file: " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto strategy = core::Strategy::from_text(buffer.str());

  const auto net = nn::network_by_name(model_or(args, strategy.network));
  reram::AcceleratorConfig accel;
  accel.tile_shared = !args.flag("no-tile-shared");
  accel.pes_per_tile = args.option_int("pes-per-tile");
  const auto plan = plan::compile_plan(net, strategy, accel);
  print_report(path, plan::evaluate_plan(plan));
  return 0;
}

/// Applies the adaptive Monte-Carlo budget flags: --mc-ci switches the
/// trial budget to sequential early stopping at that CI half-width, and
/// --mc-max-trials caps the adaptive spend (0 = --mc-trials). Without
/// --mc-ci the budget stays fixed — reports byte-identical to older builds.
void apply_mc_budget(reram::RobustnessOptions& opts,
                     const common::ArgParser& args) {
  const double ci = args.option_double("mc-ci");
  if (ci <= 0.0) return;
  opts.budget.mode = reram::RobustnessBudget::Mode::kAdaptive;
  opts.budget.ci_halfwidth = ci;
  opts.budget.max_trials =
      static_cast<int>(args.option_int("mc-max-trials"));
}

int run_replay(const common::ArgParser& args) {
  const std::string path = args.option("plan-in");
  AUTOHET_CHECK(!path.empty(), "replay needs --plan-in <plan.json>");
  const plan::DeploymentPlan plan = load_plan(path);

  std::cout << "replaying plan for " << plan.network << " ("
            << plan.layers.size() << " layers, "
            << plan.allocation.occupied_tiles() << " tiles)\n\n";
  const auto report = plan::evaluate_plan(plan);
  print_report(path, report);
  if (const std::string out = args.option("report-json"); !out.empty()) {
    std::ofstream rf(out);
    AUTOHET_CHECK(rf.good(), "cannot open report file: " + out);
    report::write_network_report_json(rf, report);
    std::cout << "network report written to " << out << '\n';
  }

  // Functional inference + robustness MC on the plan's placement. Both
  // need weights; the zoo networks ship none, so we use the same seeded
  // random initialization the functional examples use.
  const auto samples = args.option_int("functional-samples");
  const auto trials = args.option_int("mc-trials");
  if (plan.has_graph() && samples > 0) {
    // DAG plans carry their graph; functional replay executes it on the
    // fabric (residual adds in exact integer arithmetic).
    common::Rng weight_rng(3);
    const nn::Model model(plan.graph.skeleton(), weight_rng);
    const reram::SimulatedModel fabric(model, plan);
    const nn::TensorShape& in = plan.graph.nodes().front().shape;
    common::Rng img_rng(4);
    int agree = 0;
    for (std::int64_t s = 0; s < samples; ++s) {
      const auto img =
          nn::synthetic_image(img_rng, in.channels, in.height, in.width);
      if (tensor::argmax(model.forward_graph(plan.graph, img)) ==
          tensor::argmax(fabric.forward_graph(plan.graph, img))) {
        ++agree;
      }
    }
    std::cout << "functional graph inference: " << agree << '/' << samples
              << " argmax agreement with float reference\n";
  }
  if (plan.has_graph()) {
    AUTOHET_CHECK(trials == 0,
                  "robustness MC replays the linear path; it is not "
                  "available for DAG (v2) plans yet");
    return 0;
  }
  if (samples > 0 || trials > 0) {
    const auto net = nn::network_by_name(plan.network);
    AUTOHET_CHECK(net.sequential_runnable,
                  plan.network + " is not sequentially runnable");
    common::Rng weight_rng(3);
    const nn::Model model(net, weight_rng);
    const nn::LayerSpec& input = net.layers.front();
    if (samples > 0) {
      const reram::SimulatedModel fabric(model, plan);
      common::Rng img_rng(4);
      int agree = 0;
      for (std::int64_t s = 0; s < samples; ++s) {
        const auto img = nn::synthetic_image(img_rng, input.in_channels,
                                             input.in_height, input.in_width);
        if (tensor::argmax(model.forward(img)) ==
            tensor::argmax(fabric.forward(img))) {
          ++agree;
        }
      }
      std::cout << "functional inference: " << agree << '/' << samples
                << " argmax agreement with float reference\n";
    }
    if (trials > 0) {
      reram::RobustnessOptions opts;
      opts.trials = static_cast<int>(trials);
      opts.samples = 4;
      opts.threads = static_cast<int>(args.option_int("mc-threads"));
      apply_mc_budget(opts, args);
      const auto rob = reram::monte_carlo_robustness(model, plan, opts);
      std::cout << "robustness MC: accuracy "
                << report::format_fixed(rob.mean_accuracy * 100.0, 1)
                << "% +/- "
                << report::format_fixed(rob.stddev_accuracy * 100.0, 1)
                << "% (95% CI ["
                << report::format_fixed(rob.accuracy_ci_lower * 100.0, 1)
                << "%, "
                << report::format_fixed(rob.accuracy_ci_upper * 100.0, 1)
                << "%]) over " << rob.trials << '/' << rob.trials_requested
                << " trials"
                << (rob.early_stopped
                        ? " (early stop, " +
                              std::to_string(rob.trials_requested -
                                             rob.trials) +
                              " saved)"
                        : "")
                << '\n';
    }
  }
  return 0;
}

int run_profile(const common::ArgParser& args, obs::ObsSession& session) {
  const std::string path = args.option("plan-in");
  AUTOHET_CHECK(!path.empty(), "profile needs --plan-in <plan.json>");
  const plan::DeploymentPlan plan = load_plan(path);

  // The profiler records regardless of --profile-out: the hotspot table
  // needs the counts even when no JSON sink is configured.
  obs::Profiler::global().enable();
  obs::Profiler::global().reset();

  const auto report = plan::evaluate_plan(plan);
  const std::int64_t batch = args.option_int("batch");
  const auto schedule = reram::schedule_batch(plan, batch);

  // Optional functional replay feeds executed-MVM and programming-write
  // attribution; same seeded weights/images as `replay` so the two commands
  // describe the same deployment.
  const auto samples = args.option_int("functional-samples");
  const auto trials = args.option_int("mc-trials");
  if (plan.has_graph() && samples > 0) {
    common::Rng weight_rng(3);
    const nn::Model model(plan.graph.skeleton(), weight_rng);
    const reram::SimulatedModel fabric(model, plan);
    const nn::TensorShape& in = plan.graph.nodes().front().shape;
    common::Rng img_rng(4);
    for (std::int64_t s = 0; s < samples; ++s) {
      const auto img =
          nn::synthetic_image(img_rng, in.channels, in.height, in.width);
      (void)fabric.forward_graph(plan.graph, img);
    }
  }
  if (plan.has_graph()) {
    AUTOHET_CHECK(trials == 0,
                  "robustness MC replays the linear path; it is not "
                  "available for DAG (v2) plans yet");
  } else if (samples > 0 || trials > 0) {
    const auto net = nn::network_by_name(plan.network);
    AUTOHET_CHECK(net.sequential_runnable,
                  plan.network + " is not sequentially runnable");
    common::Rng weight_rng(3);
    const nn::Model model(net, weight_rng);
    const nn::LayerSpec& input = net.layers.front();
    if (samples > 0) {
      const reram::SimulatedModel fabric(model, plan);
      common::Rng img_rng(4);
      for (std::int64_t s = 0; s < samples; ++s) {
        const auto img = nn::synthetic_image(img_rng, input.in_channels,
                                             input.in_height, input.in_width);
        (void)fabric.forward(img);
      }
    }
    if (trials > 0) {
      reram::RobustnessOptions opts;
      opts.trials = static_cast<int>(trials);
      opts.samples = 4;
      opts.threads = static_cast<int>(args.option_int("mc-threads"));
      apply_mc_budget(opts, args);
      (void)reram::monte_carlo_robustness(model, plan, opts);
    }
  }

  const report::PlanProfile profile = report::build_plan_profile(
      plan, report, schedule, obs::Profiler::global().snapshot(), batch);
  report::merge_profile_into_trace(profile);

  // Claim --profile-out from the session: the full per-plan report goes
  // there instead of the generic raw-records dump the session would write.
  if (const std::string out = session.take_profile_out(); !out.empty()) {
    std::ofstream pf(out);
    AUTOHET_CHECK(pf.good(), "cannot open profile file: " + out);
    report::write_profile_json(pf, profile);
    std::cout << "attribution profile written to " << out << "\n\n";
  }
  print_hotspot_table(std::cout, profile,
                      static_cast<int>(args.option_int("top")));
  return 0;
}

int run_serve(const common::ArgParser& args) {
  const std::vector<std::string>& paths = args.option_list("plan-in");
  AUTOHET_CHECK(!paths.empty(),
                "serve needs at least one --plan-in <plan.json> "
                "(repeat the option for each resident model)");
  std::vector<plan::DeploymentPlan> plans;
  plans.reserve(paths.size());
  for (const std::string& path : paths) plans.push_back(load_plan(path));

  serve::FabricConfig fabric_config;
  fabric_config.tile_capacity = args.option_int("tile-capacity");
  fabric_config.eviction =
      serve::eviction_policy_from_name(args.option("eviction"));
  fabric_config.scope = serve::sharing_scope_from_name(args.option("sharing"));
  fabric_config.functional = args.flag("serve-functional");

  const std::int64_t threads = args.option_int("serve-threads");
  std::optional<common::ThreadPool> pool;
  if (threads != 1) {
    pool.emplace(threads == 0 ? 0 : static_cast<std::size_t>(threads));
  }
  serve::ServingFabric fabric(std::move(plans), fabric_config,
                              pool ? &*pool : nullptr);

  serve::BatchingConfig batching;
  batching.max_batch = args.option_int("max-batch");
  batching.max_wait_ns = args.option_double("max-wait-us") * 1e3;

  serve::TrafficTrace trace;
  if (const std::string in = args.option("traffic-in"); !in.empty()) {
    std::ifstream tf(in);
    AUTOHET_CHECK(tf.good(), "cannot open traffic trace: " + in);
    std::stringstream buffer;
    buffer << tf.rdbuf();
    trace = serve::read_trace_json(buffer.str());
    AUTOHET_CHECK(trace.num_models == fabric.model_count(),
                  "traffic trace covers " +
                      std::to_string(trace.num_models) + " models but " +
                      std::to_string(fabric.model_count()) +
                      " plans were loaded");
  } else {
    serve::TrafficConfig tc;
    tc.seed = static_cast<std::uint64_t>(args.option_int("traffic-seed"));
    tc.profile = serve::rate_profile_from_name(args.option("traffic-profile"));
    tc.zipf_s = args.option_double("zipf");
    double qps = args.option_double("qps");
    if (qps <= 0.0) {
      // Auto rate: ~70% of the popularity-weighted full-batch service
      // capacity, i.e. a loaded-but-stable operating point.
      const std::vector<double> weights =
          serve::zipf_weights(fabric.model_count(), tc.zipf_s);
      double weighted_ns_per_request = 0.0;
      for (std::int64_t m = 0; m < fabric.model_count(); ++m) {
        const auto schedule =
            reram::schedule_batch(fabric.model_plan(m), batching.max_batch);
        weighted_ns_per_request +=
            weights[static_cast<std::size_t>(m)] * schedule.makespan_ns /
            static_cast<double>(batching.max_batch);
      }
      qps = 0.7 * 1e9 / weighted_ns_per_request;
    }
    tc.mean_qps = qps;
    tc.duration_s =
        static_cast<double>(args.option_int("requests")) / tc.mean_qps;
    trace = serve::generate_trace(tc, fabric.model_count());
  }
  if (const std::string out = args.option("traffic-out"); !out.empty()) {
    std::ofstream tf(out);
    AUTOHET_CHECK(tf.good(), "cannot open traffic file: " + out);
    serve::write_trace_json(tf, trace);
    std::cout << "traffic trace written to " << out << "\n\n";
  }

  const serve::ServingReport rep =
      serve::simulate(fabric, batching, trace, pool ? &*pool : nullptr);
  serve::merge_serving_into_trace(rep, obs::Tracer::global());

  std::cout << "served " << rep.total_requests << " requests ("
            << serve::rate_profile_name(trace.config.profile)
            << " arrivals, mean "
            << report::format_fixed(trace.config.mean_qps, 1) << " qps, Zipf "
            << report::format_fixed(trace.config.zipf_s, 2) << ") across "
            << fabric.model_count() << " resident models\n\n";

  report::Table table({"Model", "Network", "Requests", "p50 ms", "p95 ms",
                       "p99 ms", "Swap-ins", "nJ/req"});
  for (std::size_t m = 0; m < rep.models.size(); ++m) {
    const serve::ModelServingStats& s = rep.models[m];
    table.add_row({std::to_string(m), s.network, std::to_string(s.requests),
                   report::format_fixed(s.latency.p50_ms, 3),
                   report::format_fixed(s.latency.p95_ms, 3),
                   report::format_fixed(s.latency.p99_ms, 3),
                   std::to_string(s.swap_ins),
                   report::format_sci(s.energy_per_request_nj, 3)});
  }
  table.add_row({"all", "-", std::to_string(rep.total_requests),
                 report::format_fixed(rep.latency.p50_ms, 3),
                 report::format_fixed(rep.latency.p95_ms, 3),
                 report::format_fixed(rep.latency.p99_ms, 3),
                 std::to_string(rep.swap_ins),
                 report::format_sci(rep.energy_per_request_nj, 3)});
  table.print(std::cout);

  report::Table totals({"Metric", "Value"});
  totals.add_row({"sustained qps",
                  report::format_fixed(rep.sustained_qps, 1)});
  totals.add_row({"mean batch", report::format_fixed(rep.mean_batch, 2)});
  totals.add_row({"peak queue depth",
                  std::to_string(rep.peak_queue_depth)});
  totals.add_row({"accelerator busy %",
                  report::format_fixed(rep.accel_busy_fraction * 100.0, 1)});
  totals.add_row({"swap-ins / evictions",
                  std::to_string(rep.swap_ins) + " / " +
                      std::to_string(rep.evictions)});
  totals.add_row({"inference energy (nJ)",
                  report::format_sci(rep.inference_energy_nj, 3)});
  totals.add_row({"programming energy (nJ)",
                  report::format_sci(rep.programming_energy_nj, 3)});
  std::cout << '\n';
  totals.print(std::cout);

  if (const std::string out = args.option("serving-json"); !out.empty()) {
    std::ofstream sf(out);
    AUTOHET_CHECK(sf.good(), "cannot open serving report file: " + out);
    serve::write_serving_json(sf, rep);
    std::cout << "\nserving report written to " << out << '\n';
  }
  return 0;
}

// The "layers": [...] section of a serialized NetworkReport — the mappable
// per-layer reports, rendered field-for-field. Comparing these strings
// between a graph evaluation and the legacy linear path over the same
// conv/FC skeleton proves the tentpole bit-identity contract end to end.
std::string report_layers_section(const reram::NetworkReport& r) {
  std::ostringstream os;
  report::write_network_report_json(os, r);
  const std::string s = os.str();
  const std::size_t start = s.find("\"layers\": [");
  const std::size_t end = s.find("\n  ],");
  AUTOHET_CHECK(start != std::string::npos && end != std::string::npos &&
                    end > start,
                "malformed network report serialization");
  return s.substr(start, end - start);
}

int run_graph(const common::ArgParser& args) {
  const std::string name = args.option("network");
  AUTOHET_CHECK(!name.empty(), "graph needs --network <name>");
  const nn::Graph graph = nn::graph_by_name(name);

  std::int64_t residual_adds = 0;
  std::int64_t concats = 0;
  std::int64_t activations = 0;
  std::int64_t gaps = 0;
  std::int64_t pools = 0;
  for (const nn::GraphNode& node : graph.nodes()) {
    switch (node.kind) {
      case nn::OpKind::kResidualAdd: ++residual_adds; break;
      case nn::OpKind::kConcat: ++concats; break;
      case nn::OpKind::kActivation: ++activations; break;
      case nn::OpKind::kGlobalAvgPool: ++gaps; break;
      case nn::OpKind::kLayer:
        if (!nn::is_mappable(node.layer.type)) ++pools;
        break;
      case nn::OpKind::kInput: break;
    }
  }
  const std::vector<nn::LayerSpec> mappable = graph.mappable_layers();
  report::Table table({"Metric", "Value"});
  table.add_row({"graph", graph.name()});
  table.add_row({"nodes", std::to_string(graph.node_count())});
  table.add_row({"edges", std::to_string(graph.edge_count())});
  table.add_row({"mappable layers (conv/fc)",
                 std::to_string(mappable.size())});
  table.add_row({"pooling layers", std::to_string(pools)});
  table.add_row({"residual adds", std::to_string(residual_adds)});
  table.add_row({"concats", std::to_string(concats)});
  table.add_row({"activations", std::to_string(activations)});
  table.add_row({"global avg pools", std::to_string(gaps)});
  table.add_row({"chain-shaped", graph.is_chain() ? "yes" : "no"});
  table.add_row({"input shape", graph.nodes().front().shape.to_string()});
  table.add_row(
      {"output shape",
       graph.nodes()[static_cast<std::size_t>(graph.output_node())]
           .shape.to_string()});
  table.print(std::cout);

  if (const std::string out = args.option("dot-out"); !out.empty()) {
    std::ofstream file(out);
    AUTOHET_CHECK(file.good(), "cannot open dot file: " + out);
    nn::write_graph_dot(file, graph);
    std::cout << "\nGraphviz graph written to " << out << '\n';
  }

  const std::string plan_out = args.option("plan-out");
  const std::string skeleton_out = args.option("skeleton-plan-out");
  const bool check_skeleton = args.flag("check-skeleton");
  if (plan_out.empty() && skeleton_out.empty() && !check_skeleton) return 0;

  // A fixed uniform shape keeps the compiled plan deterministic without
  // running a search; plans meant for deployment come from `search`.
  const std::vector<mapping::CrossbarShape> shapes(
      mappable.size(), mapping::CrossbarShape{128, 128});
  reram::AcceleratorConfig accel;
  accel.tile_shared = !args.flag("no-tile-shared");
  accel.pes_per_tile = args.option_int("pes-per-tile");
  const plan::DeploymentPlan graph_plan =
      plan::compile_plan(graph, shapes, accel);
  if (!plan_out.empty()) {
    std::ofstream file(plan_out);
    AUTOHET_CHECK(file.good(), "cannot open plan file: " + plan_out);
    report::write_plan_json(file, graph_plan);
    std::cout << "\nv2 graph plan written to " << plan_out << '\n';
  }
  const plan::DeploymentPlan skeleton_plan =
      plan::compile_plan(graph.name(), mappable, shapes, accel);
  if (!skeleton_out.empty()) {
    std::ofstream file(skeleton_out);
    AUTOHET_CHECK(file.good(), "cannot open plan file: " + skeleton_out);
    report::write_plan_json(file, skeleton_plan);
    std::cout << "\nv1 skeleton plan written to " << skeleton_out << '\n';
  }
  if (check_skeleton) {
    const reram::NetworkReport graph_report =
        plan::evaluate_plan(graph_plan);
    const reram::NetworkReport skeleton_report =
        plan::evaluate_plan(skeleton_plan);
    AUTOHET_CHECK(report_layers_section(graph_report) ==
                      report_layers_section(skeleton_report),
                  "graph per-layer reports diverge from the legacy linear "
                  "path over the same skeleton");
    AUTOHET_CHECK(graph_report.utilization == skeleton_report.utilization &&
                      graph_report.occupied_tiles ==
                          skeleton_report.occupied_tiles &&
                      graph_report.empty_crossbars ==
                          skeleton_report.empty_crossbars,
                  "graph allocation metrics diverge from the legacy linear "
                  "path");
    double op_energy_nj = 0.0;
    double op_latency_ns = 0.0;
    for (const reram::GraphOpReport& op : graph_report.graph_ops) {
      op_energy_nj += op.energy.total_nj();
      op_latency_ns += op.latency_ns;
    }
    std::cout << "\nskeleton check passed: " << mappable.size()
              << " mappable layers field-identical to the linear path; "
              << graph_report.graph_ops.size() << " graph ops add "
              << report::format_sci(op_energy_nj, 3) << " nJ / "
              << report::format_sci(op_latency_ns, 3) << " ns\n";
  }
  return 0;
}

int run_describe(const common::ArgParser& args) {
  const auto net = nn::network_by_name(model_or(args, "vgg16"));
  nn::describe(net, std::cout);
  return 0;
}

int run_kernels(const common::ArgParser&) {
  // CI's dispatch smoke parses this table to learn which variants the host
  // can run, then re-invokes the kernel tests with each one forced.
  const reram::kernels::Variant active = reram::kernels::active_variant();
  report::Table table({"Variant", "Supported", "Active"});
  for (int v = 0; v < reram::kernels::kVariantCount; ++v) {
    const auto variant = static_cast<reram::kernels::Variant>(v);
    table.add_row({reram::kernels::variant_name(variant),
                   reram::kernels::supported(variant) ? "yes" : "no",
                   variant == active ? "yes" : ""});
  }
  table.print(std::cout);
  return 0;
}

int run_baselines(const common::ArgParser& args) {
  const auto net = nn::network_by_name(model_or(args, "vgg16"));
  const auto env = build_env(args, net);
  report::Table table({"Config", "Utilization %", "Energy (nJ)", "RUE",
                       "Area (um^2)"});
  for (const auto& s : core::homogeneous_sweep(env)) {
    table.add_row({s.name,
                   report::format_fixed(s.report.utilization * 100.0, 1),
                   report::format_sci(s.report.energy.total_nj(), 3),
                   report::format_sci(s.report.rue(), 3),
                   report::format_sci(s.report.area.total_um2(), 3)});
  }
  const auto greedy = core::greedy_search(env);
  table.add_row({"Greedy",
                 report::format_fixed(greedy.report.utilization * 100.0, 1),
                 report::format_sci(greedy.report.energy.total_nj(), 3),
                 report::format_sci(greedy.report.rue(), 3),
                 report::format_sci(greedy.report.area.total_um2(), 3)});
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::ArgParser args(
      "autohet_cli",
      "AutoHet heterogeneous ReRAM accelerator driver: RL search, strategy "
      "evaluation, and homogeneous baselines.");
  args.add_positional("command",
                      "search | evaluate | replay | profile | serve | graph | "
                      "baselines | describe | kernels");
  args.add_option("model", "",
                  "lenet5 | alexnet | vgg16 | resnet152 (default: vgg16; "
                  "'evaluate' defaults to the strategy file's network)");
  args.add_option("candidates", "hybrid",
                  "crossbar candidate set: hybrid | square | rectangle | all");
  args.add_option("episodes", "300", "RL search episodes");
  args.add_option("seed", "1", "RNG seed");
  args.add_option("pes-per-tile", "4", "logical crossbars per tile");
  args.add_option("out", "", "write the learned strategy to this file");
  args.add_option("csv", "", "write per-episode search history CSV");
  args.add_option("strategy", "", "strategy file for 'evaluate'");
  args.add_multi_option("plan-in",
                        "saved DeploymentPlan JSON for 'replay'/'profile'/"
                        "'serve'; repeat for each model 'serve' should keep "
                        "resident (mutually exclusive with the "
                        "search-configuration options)");
  args.add_option("batch", "8",
                  "'profile': images in the analyzed batch schedule");
  args.add_option("top", "10",
                  "'profile': hotspot-table rows (0 = all layers)");
  args.add_option("plan-out", "",
                  "'search': also write the compiled DeploymentPlan JSON; "
                  "'graph': write the compiled v2 graph plan");
  args.add_option("network", "",
                  "'graph': DAG network to build: resnet152 | cifar-resnet | "
                  "any zoo chain (wrapped as a chain graph)");
  args.add_option("dot-out", "",
                  "'graph': write the deterministic Graphviz rendering");
  args.add_option("skeleton-plan-out", "",
                  "'graph': also write a v1 plan over the conv/FC skeleton "
                  "(same shapes/accel as the v2 plan)");
  args.add_flag("check-skeleton",
                "'graph': assert the graph evaluation's per-layer reports "
                "are field-identical to the legacy linear path over the "
                "same skeleton");
  args.add_option("report-json", "",
                  "'search'/'replay': write the winner's / replayed "
                  "NetworkReport as JSON (byte-comparable across the two)");
  args.add_option("functional-samples", "0",
                  "'replay'/'profile': run functional inference on this many "
                  "synthetic images (0 = skip)");
  args.add_option("mc-trials", "0",
                  "'replay'/'profile': robustness Monte-Carlo trials under "
                  "the plan's fault config (0 = skip)");
  args.add_option("mc-threads", "1",
                  "'replay'/'profile': worker threads for the Monte-Carlo "
                  "trials (1 = serial, 0 = one per hardware thread; the "
                  "report is byte-identical at any value)");
  args.add_option("mc-ci", "0",
                  "'replay'/'profile': adaptive Monte-Carlo budget — stop "
                  "trials once the accuracy CI half-width is <= this "
                  "(0 = fixed budget, byte-identical reports)");
  args.add_option("mc-max-trials", "0",
                  "'replay'/'profile': trial cap for the adaptive budget "
                  "(0 = --mc-trials); ignored without --mc-ci");
  args.add_option("eval-threads", "0",
                  "worker threads for batched hardware evaluation "
                  "(0 = serial)");
  args.add_option("kernel", "",
                  "force the kernel ISA variant: portable | avx2 | avx512 "
                  "(default: best supported; equivalent to AUTOHET_KERNEL; "
                  "results are bit-identical across variants)");
  args.add_flag("no-tile-shared", "disable the tile-shared allocation");
  args.add_option("requests", "2000",
                  "'serve': target request count of the generated traffic "
                  "(the trace horizon is requests / qps)");
  args.add_option("qps", "0",
                  "'serve': mean arrival rate (0 = auto, ~70% of the "
                  "popularity-weighted service capacity)");
  args.add_option("traffic-profile", "constant",
                  "'serve': arrival-rate profile: constant | bursty | "
                  "diurnal");
  args.add_option("traffic-seed", "42", "'serve': traffic generator seed");
  args.add_option("zipf", "1",
                  "'serve': Zipf popularity exponent over the resident "
                  "models (0 = uniform)");
  args.add_option("max-batch", "8",
                  "'serve': largest batch the admission policy dispatches");
  args.add_option("max-wait-us", "200",
                  "'serve': longest a queued request waits before its "
                  "model's batch dispatches anyway (microseconds)");
  args.add_option("tile-capacity", "0",
                  "'serve': tile budget of the resident set (0 = unbounded; "
                  "a tight budget forces eviction + re-programming swaps)");
  args.add_option("eviction", "lru", "'serve': eviction policy: lru | lfu");
  args.add_option("sharing", "cross-model",
                  "'serve': residency-footprint tile sharing scope: none | "
                  "per-model | cross-model");
  args.add_option("serve-threads", "1",
                  "'serve': worker threads for the schedule-table precompute "
                  "(0 = one per hardware thread; the report is "
                  "byte-identical at any value)");
  args.add_option("traffic-in", "",
                  "'serve': replay this saved traffic trace JSON instead of "
                  "generating one");
  args.add_option("traffic-out", "",
                  "'serve': save the generated traffic trace JSON "
                  "(replayable via --traffic-in)");
  args.add_option("serving-json", "",
                  "'serve': write the deterministic serving report JSON");
  args.add_flag("serve-functional",
                "'serve': program a real simulated fabric on every swap-in "
                "(requires sequentially runnable networks)");
  obs::add_cli_options(args);

  std::string error;
  if (!args.parse(argc, argv, &error)) {
    std::cerr << error << '\n';
    return 2;
  }
  // A plan freezes the network, mapping and accelerator config, so every
  // option that would configure a fresh search contradicts it.
  if (!args.reject_option_conflicts(
          "plan-in",
          {"episodes", "seed", "candidates", "model", "strategy", "out",
           "csv", "pes-per-tile", "no-tile-shared"},
          &error)) {
    std::cerr << error << '\n';
    return 2;
  }
  try {
    obs::ObsSession session(args);
    if (const std::string kernel = args.option("kernel"); !kernel.empty()) {
      reram::kernels::Variant v;
      AUTOHET_CHECK(reram::kernels::variant_from_name(kernel, &v),
                    "unknown kernel variant: " + kernel +
                        " (use portable|avx2|avx512)");
      reram::kernels::set_variant(v);  // hard error when unsupported
    }
    const std::string command = args.positional("command");
    if (command == "search") return run_search(args);
    if (command == "evaluate") return run_evaluate(args);
    if (command == "replay") return run_replay(args);
    if (command == "profile") return run_profile(args, session);
    if (command == "serve") return run_serve(args);
    if (command == "graph") return run_graph(args);
    if (command == "baselines") return run_baselines(args);
    if (command == "describe") return run_describe(args);
    if (command == "kernels") return run_kernels(args);
    std::cerr << "unknown command: " << command << "\n\n"
              << args.help_text();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
