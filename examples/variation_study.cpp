// Device non-ideality study: how ReRAM conductance variation degrades
// inference on the simulated fabric. Motivated by the paper's edge-device
// setting (§2.2 cites variability-aware RRAM controllers); the fabric
// model exposes apply_variation() to inject programming noise per cell.
//
// For each sigma, a fresh LeNet fabric is perturbed and the argmax
// agreement with the float reference plus the mean logit error are
// reported over a batch of synthetic samples.
#include <iostream>

#include "common/rng.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "reram/functional.hpp"
#include "report/table.hpp"
#include "tensor/ops.hpp"

using namespace autohet;

int main() {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng weight_rng(21);
  const nn::Model model(net, weight_rng);
  const std::vector<mapping::CrossbarShape> shapes = {
      {36, 32}, {288, 256}, {576, 512}, {128, 128}, {128, 128}};

  constexpr int kSamples = 20;
  std::vector<tensor::Tensor> images;
  std::vector<std::int64_t> reference_classes;
  std::vector<tensor::Tensor> reference_logits;
  common::Rng img_rng(22);
  for (int s = 0; s < kSamples; ++s) {
    images.push_back(nn::synthetic_image(img_rng, 1, 32, 32));
    reference_logits.push_back(model.forward(images.back()));
    reference_classes.push_back(tensor::argmax(reference_logits.back()));
  }

  std::cout << "LeNet-5 under ReRAM conductance variation ("
            << kSamples << " samples per point)\n\n";
  report::Table table({"Sigma", "Argmax agreement", "Mean max |logit diff|"});
  for (const double sigma : {0.0, 0.001, 0.002, 0.005, 0.01, 0.05, 0.2}) {
    reram::SimulatedModel fabric(model, shapes);
    common::Rng noise_rng(23);
    fabric.apply_variation(noise_rng, sigma);
    int agree = 0;
    double total_diff = 0.0;
    for (int s = 0; s < kSamples; ++s) {
      const auto out = fabric.forward(images[s]);
      if (tensor::argmax(out) == reference_classes[static_cast<std::size_t>(s)]) {
        ++agree;
      }
      total_diff += tensor::max_abs_diff(
          out, reference_logits[static_cast<std::size_t>(s)]);
    }
    table.add_row({report::format_fixed(sigma, 3),
                   std::to_string(agree) + "/" + std::to_string(kSamples),
                   report::format_fixed(total_diff / kSamples, 4)});
  }
  table.print(std::cout);
  std::cout << "\nShape: agreement holds for small programming noise and "
               "collapses as variation approaches the weight scale — the "
               "regime where variability-aware controllers are needed.\n";
  return 0;
}
