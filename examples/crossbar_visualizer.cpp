// ASCII visualization of the paper's Fig. 2: how DNN kernels occupy a
// crossbar under the kernel-aligned mapping, making the internal wastage
// (and the rectangle-crossbar fix of §3.3) visible at a glance.
//
//   '#' = cell holding a weight, '.' = wasted cell.
#include <iostream>

#include "mapping/layer_mapping.hpp"
#include "nn/describe.hpp"
#include "nn/model_zoo.hpp"

using namespace autohet;

namespace {

// Renders the first (row-block 0, col-block 0) crossbar of the layer's
// mapping grid.
void render(const nn::LayerSpec& layer, const mapping::CrossbarShape& shape) {
  const auto m = mapping::map_layer(layer, shape);
  std::cout << layer.to_string() << " on " << shape.name() << "  ("
            << m.logical_crossbars() << " crossbar(s), Eq.4 utilization "
            << static_cast<int>(m.utilization() * 1000.0) / 10.0 << "%)\n";
  const std::int64_t k2 = layer.kernel * layer.kernel;
  // Kernels resident in the first row block / first column block.
  const std::int64_t kernels_here =
      m.split_kernel ? 0
                     : std::min(m.kernels_per_row_block, layer.in_channels);
  const std::int64_t cols_here =
      std::min(shape.cols, layer.out_channels);
  for (std::int64_t r = 0; r < shape.rows; ++r) {
    std::cout << "  ";
    for (std::int64_t c = 0; c < shape.cols; ++c) {
      bool occupied;
      if (m.split_kernel) {
        occupied = r < std::min(shape.rows, layer.weight_rows()) &&
                   c < cols_here;
      } else {
        occupied = r < kernels_here * k2 && c < cols_here;
      }
      std::cout << (occupied ? '#' : '.');
    }
    std::cout << '\n';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  std::cout << "Fig. 2(a): four 3x3x3 kernels of layer 1 on a 32x32 "
               "crossbar (10.5% used)\n";
  render(nn::make_conv(3, 4, 3, 1, 1, 8, 8), {32, 32});

  std::cout << "Fig. 2(b): twenty 1x1x32 kernels of layer 2 on the same "
               "crossbar (62.5% used)\n";
  render(nn::make_conv(32, 20, 1, 1, 0, 8, 8), {32, 32});

  std::cout << "§3.3: the same 3x3 layer on a square vs a rectangle "
               "crossbar — the multiple-of-9 height removes the row "
               "stranding\n";
  render(nn::make_conv(8, 32, 3, 1, 1, 8, 8), {32, 32});
  render(nn::make_conv(8, 32, 3, 1, 1, 8, 8), {36, 32});

  std::cout << "Network summaries:\n\n";
  nn::describe(nn::lenet5(), std::cout);
  std::cout << '\n';
  nn::describe(nn::vgg16(), std::cout);
  return 0;
}
