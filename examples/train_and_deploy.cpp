// The full application workflow a user of the accelerator walks through:
//
//   1. train LeNet-5 on a (synthetic) 10-class image task,
//   2. search a heterogeneous crossbar configuration for it with AutoHet,
//   3. deploy the trained, 8-bit-quantized weights onto the simulated
//      fabric with that configuration,
//   4. measure classification accuracy: float reference vs fabric, with
//      and without ReRAM conductance variation — the end-to-end number the
//      whole stack exists to preserve.
#include <iostream>

#include "autohet/search.hpp"
#include "nn/model_zoo.hpp"
#include "nn/train.hpp"
#include "reram/functional.hpp"
#include "report/table.hpp"
#include "tensor/ops.hpp"

using namespace autohet;

int main() {
  // --- 1. train ---
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng weight_rng(31);
  nn::Model model(net, weight_rng);
  common::Rng data_rng(32);
  const auto train_set =
      nn::make_synthetic_dataset(data_rng, 400, 10, 1, 32, 32, 0.35f);
  // Held-out set: fresh samples from the same class prototypes.
  const auto test_set =
      nn::sample_from_prototypes(data_rng, 100, train_set.prototypes, 0.35f);

  nn::TrainConfig train_cfg;
  train_cfg.epochs = 3;
  train_cfg.learning_rate = 0.01f;
  common::Rng train_rng(33);
  std::cout << "Training LeNet-5 on synthetic 10-class data ("
            << train_set.size() << " samples)...\n";
  const auto stats = nn::train(model, train_set, train_cfg, train_rng);
  for (std::size_t e = 0; e < stats.epoch_loss.size(); ++e) {
    std::cout << "  epoch " << e + 1 << ": loss "
              << report::format_fixed(stats.epoch_loss[e], 4) << ", accuracy "
              << report::format_fixed(stats.epoch_accuracy[e] * 100.0f, 1)
              << "%\n";
  }

  // --- 2. search a configuration ---
  core::EnvConfig env_cfg;
  env_cfg.candidates = mapping::hybrid_candidates();
  env_cfg.accel.tile_shared = true;
  const core::CrossbarEnv env(net.mappable_layers(), env_cfg);
  core::SearchConfig search_cfg;
  search_cfg.episodes = 60;
  search_cfg.seed = 34;
  const auto search = core::AutoHetSearch(env, search_cfg).run();
  std::vector<mapping::CrossbarShape> shapes;
  for (auto a : search.best_actions) shapes.push_back(env.candidates()[a]);

  // --- 3 & 4. deploy and measure ---
  const double float_acc = nn::evaluate_accuracy(model, test_set);
  const auto fabric_accuracy = [&](double sigma) {
    reram::SimulatedModel fabric(model, shapes);
    if (sigma > 0.0) {
      common::Rng noise(35);
      fabric.apply_variation(noise, sigma);
    }
    return nn::evaluate_accuracy_with(
        [&fabric](const tensor::Tensor& img) {
          return tensor::argmax(fabric.forward(img));
        },
        test_set);
  };

  std::cout << "\nHeld-out accuracy (" << test_set.size() << " samples):\n";
  report::Table table({"Deployment", "Accuracy %"});
  table.add_row({"float reference",
                 report::format_fixed(float_acc * 100.0, 1)});
  table.add_row({"ReRAM fabric (8-bit)",
                 report::format_fixed(fabric_accuracy(0.0) * 100.0, 1)});
  table.add_row({"ReRAM fabric + variation 0.005",
                 report::format_fixed(fabric_accuracy(0.005) * 100.0, 1)});
  table.add_row({"ReRAM fabric + variation 0.05",
                 report::format_fixed(fabric_accuracy(0.05) * 100.0, 1)});
  table.print(std::cout);

  std::cout << "\nCrossbar configuration used: ";
  for (const auto& s : shapes) std::cout << s.name() << ' ';
  std::cout << "\n(RUE "
            << report::format_sci(search.best_report.rue(), 3)
            << ", energy "
            << report::format_sci(search.best_report.energy.total_nj(), 3)
            << " nJ per inference)\n";
  return 0;
}
