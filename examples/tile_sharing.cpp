// Tile-shared crossbar allocation (paper §3.4, Algorithm 1), demonstrated on
// the Fig. 8 scenario and on the full VGG16 mapping.
#include <iostream>

#include "mapping/tile_allocator.hpp"
#include "nn/model_zoo.hpp"
#include "report/table.hpp"

using namespace autohet;

namespace {

void run_fig8_scenario() {
  std::cout << "Fig. 8 scenario: three small layers on 32x32 crossbars, "
               "4-crossbar tiles\n";
  // Layers sized so they need 2, 1 and 1 logical crossbars respectively,
  // exactly the L1-L3 of the paper's Fig. 8.
  const std::vector<nn::LayerSpec> layers = {
      nn::make_conv(6, 20, 3, 1, 1, 8, 8),  // 2 row blocks x 1 col block
      nn::make_conv(3, 20, 3, 1, 1, 8, 8),  // 1 crossbar
      nn::make_conv(2, 16, 3, 1, 1, 8, 8),  // 1 crossbar
  };
  const std::vector<mapping::CrossbarShape> shapes(3, {32, 32});
  for (bool shared : {false, true}) {
    const mapping::TileAllocator alloc(4, shared);
    const auto result = alloc.allocate(layers, shapes);
    std::cout << (shared ? "  with tile sharing:    " : "  without sharing:     ")
              << result.occupied_tiles() << " tiles, "
              << result.empty_crossbars() << " empty crossbars, "
              << report::format_fixed(result.system_utilization() * 100.0, 1)
              << "% system utilization\n";
    if (shared && !result.remap.empty()) {
      for (const auto& [receiver, drained] : result.remap) {
        std::cout << "    tile " << receiver << " received layers from tiles:";
        for (auto id : drained) std::cout << ' ' << id;
        std::cout << '\n';
      }
    }
  }
}

void run_vgg16_sweep() {
  std::cout << "\nVGG16 on 64x64 crossbars, sweeping crossbars per tile "
               "(Fig. 4 setting):\n";
  const auto layers = nn::vgg16().mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {64, 64});
  report::Table table({"XBs/tile", "Tiles (tile-based)", "Tiles (shared)",
                       "Empty XB % (tile-based)", "Empty XB % (shared)"});
  for (std::int64_t xbs : {4, 8, 16, 32}) {
    const auto base =
        mapping::TileAllocator(xbs, false).allocate(layers, shapes);
    const auto shared =
        mapping::TileAllocator(xbs, true).allocate(layers, shapes);
    const auto empty_pct = [](const mapping::AllocationResult& r) {
      return report::format_fixed(
          100.0 * static_cast<double>(r.empty_crossbars()) /
              static_cast<double>(r.total_logical_crossbars()),
          1);
    };
    table.add_row({std::to_string(xbs), std::to_string(base.occupied_tiles()),
                   std::to_string(shared.occupied_tiles()), empty_pct(base),
                   empty_pct(shared)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  run_fig8_scenario();
  run_vgg16_sweep();
  return 0;
}
