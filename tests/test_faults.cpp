// The seeded non-ideality model: deterministic fault maps, bit-identity of
// the ideal config, stuck-at semantics in the programming path, monotone
// degradation, and the Monte-Carlo robustness plumbing.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "autohet/env.hpp"
#include "common/rng.hpp"
#include "nn/model_zoo.hpp"
#include "reram/eval_engine.hpp"
#include "reram/faults.hpp"
#include "reram/functional.hpp"
#include "reram/programming.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::FaultConfig;
using reram::FaultMapStats;
using reram::FaultModel;
using reram::SimulatedModel;

FaultConfig stuck_config(double rate, int cell_bits = 1) {
  FaultConfig faults;
  faults.stuck_at_zero_rate = rate / 2.0;
  faults.stuck_at_one_rate = rate / 2.0;
  faults.cell_bits = cell_bits;
  return faults;
}

std::vector<std::int8_t> ramp_weights(std::size_t n) {
  std::vector<std::int8_t> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<std::int8_t>(static_cast<int>(i % 255) - 127);
  }
  return w;
}

TEST(FaultConfig, DefaultIsIdeal) {
  EXPECT_TRUE(FaultConfig{}.ideal());
  EXPECT_FALSE(stuck_config(0.01).ideal());
  FaultConfig drift_only;
  drift_only.drift_time_s = 1e6;
  drift_only.drift_nu = 0.1;
  EXPECT_FALSE(drift_only.ideal());
  // Drift needs both a time and an exponent.
  drift_only.drift_nu = 0.0;
  EXPECT_TRUE(drift_only.ideal());
}

TEST(FaultConfig, ForTrialDerivesDistinctSeeds) {
  const FaultConfig base = stuck_config(0.01);
  const auto a = base.for_trial(0);
  const auto b = base.for_trial(1);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.seed, base.seed);
  EXPECT_EQ(a.stuck_at_zero_rate, base.stuck_at_zero_rate);
  // Same trial, same derived seed.
  EXPECT_EQ(base.for_trial(7).seed, base.for_trial(7).seed);
}

TEST(FaultModel, SameSeedSameFaultMap) {
  const FaultModel model(stuck_config(0.05, 2));
  auto a = ramp_weights(64 * 64);
  auto b = ramp_weights(64 * 64);
  const FaultMapStats sa = model.apply(a, 64, 64, 64, /*crossbar_id=*/42);
  const FaultMapStats sb = model.apply(b, 64, 64, 64, /*crossbar_id=*/42);
  EXPECT_EQ(a, b);
  EXPECT_EQ(sa.stuck_at_zero, sb.stuck_at_zero);
  EXPECT_EQ(sa.stuck_at_one, sb.stuck_at_one);
  EXPECT_GT(sa.stuck_at_zero + sa.stuck_at_one, 0);
  EXPECT_EQ(sa.physical_cells, 64 * 64 * 4);  // 4 planes at 2 bits/cell
}

TEST(FaultModel, DifferentCrossbarsGetIndependentMaps) {
  const FaultModel model(stuck_config(0.05));
  auto a = ramp_weights(64 * 64);
  auto b = ramp_weights(64 * 64);
  model.apply(a, 64, 64, 64, /*crossbar_id=*/1);
  model.apply(b, 64, 64, 64, /*crossbar_id=*/2);
  EXPECT_NE(a, b);
}

TEST(FaultModel, IdealApplyIsNoOp) {
  const FaultModel model(FaultConfig{});
  auto w = ramp_weights(32 * 32);
  const auto original = w;
  const FaultMapStats stats = model.apply(w, 32, 32, 32, 0);
  EXPECT_EQ(w, original);
  EXPECT_EQ(stats.physical_cells, 0);
  EXPECT_EQ(stats.weights_changed, 0);
}

TEST(FaultModel, StuckAtOneForcesFullScale) {
  FaultConfig faults;
  faults.stuck_at_one_rate = 1.0;
  const FaultModel model(faults);
  auto w = ramp_weights(16);
  const FaultMapStats stats = model.apply(w, 4, 4, 4, 0);
  // Every plane stuck at its top level: offset 255 -> weight +127.
  for (const std::int8_t v : w) EXPECT_EQ(v, 127);
  EXPECT_EQ(stats.stuck_at_one, 16 * 8);
  EXPECT_EQ(stats.stuck_at_zero, 0);
}

TEST(FaultModel, StuckAtZeroForcesOffsetZero) {
  FaultConfig faults;
  faults.stuck_at_zero_rate = 1.0;
  faults.cell_bits = 4;
  const FaultModel model(faults);
  auto w = ramp_weights(16);
  const FaultMapStats stats = model.apply(w, 4, 4, 4, 0);
  // Every plane stuck at level 0: offset 0 -> weight -128 (HRS everywhere).
  for (const std::int8_t v : w) EXPECT_EQ(v, -128);
  EXPECT_EQ(stats.stuck_at_zero, 16 * 2);  // 2 planes at 4 bits/cell
}

TEST(FaultModel, AmplificationGrowsWithCellBits) {
  const double a1 = FaultModel::level_noise_amplification(1);
  const double a2 = FaultModel::level_noise_amplification(2);
  const double a4 = FaultModel::level_noise_amplification(4);
  const double a8 = FaultModel::level_noise_amplification(8);
  EXPECT_LT(a1, a2);
  EXPECT_LT(a2, a4);
  EXPECT_LT(a4, a8);
  // 1 bit/cell: E[v²] = 1/2 over {0,1}, Σ 4^p = (4^8-1)/3 = 21845.
  EXPECT_NEAR(a1, std::sqrt(0.5 * 21845.0), 1e-9);
}

TEST(FaultModel, ValidateRejectsBadConfigs) {
  FaultConfig bad = stuck_config(0.01);
  bad.cell_bits = 3;  // does not divide 8
  EXPECT_THROW(FaultModel{bad}, std::invalid_argument);
  FaultConfig negative;
  negative.program_sigma = -0.1;
  EXPECT_THROW(FaultModel{negative}, std::invalid_argument);
  FaultConfig too_much;
  too_much.stuck_at_zero_rate = 0.7;
  too_much.stuck_at_one_rate = 0.7;
  EXPECT_THROW(FaultModel{too_much}, std::invalid_argument);
}

TEST(SimulatedModelFaults, IdealConfigIsBitIdentical) {
  common::Rng rng(11);
  const nn::Model model(nn::lenet5(), rng);
  const std::vector<CrossbarShape> shapes(5, {128, 128});
  const SimulatedModel clean(model, shapes);
  const SimulatedModel ideal(model, shapes, reram::DatapathMode::kInteger,
                             FaultConfig{});
  common::Rng img_rng(12);
  for (int s = 0; s < 4; ++s) {
    const auto img = nn::synthetic_image(img_rng, 1, 32, 32);
    const auto a = clean.forward(img);
    const auto b = ideal.forward(img);
    EXPECT_EQ(tensor::max_abs_diff(a, b), 0.0f) << s;
  }
  EXPECT_EQ(ideal.fault_stats().weights_changed, 0);
}

TEST(SimulatedModelFaults, SameSeedSameFabric) {
  common::Rng rng(11);
  const nn::Model model(nn::lenet5(), rng);
  const std::vector<CrossbarShape> shapes(5, {128, 128});
  const FaultConfig faults = stuck_config(0.01, 2);
  const SimulatedModel a(model, shapes, reram::DatapathMode::kInteger, faults);
  const SimulatedModel b(model, shapes, reram::DatapathMode::kInteger, faults);
  EXPECT_EQ(a.fault_stats().stuck_at_zero, b.fault_stats().stuck_at_zero);
  EXPECT_GT(a.fault_stats().weights_changed, 0);
  common::Rng img_rng(12);
  const auto img = nn::synthetic_image(img_rng, 1, 32, 32);
  EXPECT_EQ(tensor::max_abs_diff(a.forward(img), b.forward(img)), 0.0f);
}

TEST(SimulatedModelFaults, ReadNoiseIsDeterministicPerInstance) {
  common::Rng rng(11);
  const nn::Model model(nn::lenet5(), rng);
  const std::vector<CrossbarShape> shapes(5, {128, 128});
  FaultConfig faults;
  faults.read_sigma = 0.002;
  const SimulatedModel a(model, shapes, reram::DatapathMode::kInteger, faults);
  const SimulatedModel b(model, shapes, reram::DatapathMode::kInteger, faults);
  common::Rng img_rng(12);
  const auto img = nn::synthetic_image(img_rng, 1, 32, 32);
  // Fresh fabrics start their read-noise streams at the same point.
  EXPECT_EQ(tensor::max_abs_diff(a.forward(img), b.forward(img)), 0.0f);
  // Read noise is only modeled on the integer datapath.
  EXPECT_THROW(SimulatedModel(model, shapes, reram::DatapathMode::kBitSerial,
                              faults),
               std::invalid_argument);
}

TEST(AnalyticVulnerability, MonotoneInRateAndFragmentation) {
  const auto layers = nn::lenet5().mappable_layers();
  const std::vector<CrossbarShape> big(layers.size(), {576, 512});
  const std::vector<CrossbarShape> small(layers.size(), {64, 64});
  double prev = 0.0;
  for (const double rate : {0.0, 1e-4, 1e-3, 1e-2, 1e-1}) {
    const double v =
        reram::analytic_network_vulnerability(layers, big, stuck_config(rate));
    EXPECT_GE(v, prev);
    if (rate > 0.0) {
      EXPECT_GT(v, prev);
    }
    prev = v;
  }
  // Fragmenting a layer across more row blocks accumulates more
  // conversion-referred error.
  const FaultConfig faults = stuck_config(1e-3);
  EXPECT_GT(reram::analytic_network_vulnerability(layers, small, faults),
            reram::analytic_network_vulnerability(layers, big, faults));
  // Multi-bit cells amplify the same defect rate.
  EXPECT_GT(
      reram::analytic_network_vulnerability(layers, big, stuck_config(1e-3, 4)),
      reram::analytic_network_vulnerability(layers, big, stuck_config(1e-3, 1)));
  EXPECT_EQ(reram::analytic_network_vulnerability(layers, big, FaultConfig{}),
            0.0);
}

TEST(EvaluationEngine, ReportsCarryAnalyticVulnerability) {
  const auto layers = nn::lenet5().mappable_layers();
  const std::vector<CrossbarShape> candidates = {{64, 64}, {576, 512}};
  reram::AcceleratorConfig accel;
  accel.faults = stuck_config(1e-3);
  const reram::EvaluationEngine engine(layers, candidates, accel);
  const std::vector<std::size_t> actions(layers.size(), 1);
  const auto engine_report = engine.evaluate(actions);
  const auto direct = reram::evaluate_network(
      layers, std::vector<CrossbarShape>(layers.size(), candidates[1]), accel);
  EXPECT_GT(engine_report.fault_vulnerability, 0.0);
  EXPECT_EQ(engine_report.fault_vulnerability, direct.fault_vulnerability);
  for (std::size_t l = 0; l < layers.size(); ++l) {
    EXPECT_EQ(engine_report.layers[l].fault_vulnerability,
              direct.layers[l].fault_vulnerability);
  }
  // Ideal accel: vulnerability stays zero everywhere.
  const reram::EvaluationEngine ideal(layers, candidates,
                                      reram::AcceleratorConfig{});
  EXPECT_EQ(ideal.evaluate(actions).fault_vulnerability, 0.0);
}

TEST(EvaluationEngine, MonteCarloRobustnessPlumbing) {
  common::Rng rng(11);
  const nn::Model model(nn::lenet5(), rng);
  const auto layers = nn::lenet5().mappable_layers();
  const std::vector<CrossbarShape> candidates = {{128, 128}, {576, 512}};
  const reram::EvaluationEngine engine(layers, candidates,
                                       reram::AcceleratorConfig{});
  const std::vector<std::size_t> actions(layers.size(), 0);
  reram::RobustnessOptions opts;
  opts.trials = 3;
  opts.samples = 6;
  const auto a =
      engine.evaluate_robustness(model, actions, stuck_config(0.01), opts);
  EXPECT_EQ(a.trials, 3);
  EXPECT_EQ(a.samples, 6);
  EXPECT_GE(a.mean_accuracy, 0.0);
  EXPECT_LE(a.mean_accuracy, 1.0);
  EXPECT_GE(a.stddev_accuracy, 0.0);
  EXPECT_LE(a.min_accuracy, a.mean_accuracy);
  EXPECT_GE(a.max_accuracy, a.mean_accuracy);
  EXPECT_EQ(a.layer_error.size(), layers.size());
  EXPECT_GT(a.fault_stats.physical_cells, 0);
  // Deterministic: a second run reproduces every statistic.
  const auto b =
      engine.evaluate_robustness(model, actions, stuck_config(0.01), opts);
  EXPECT_EQ(a.mean_accuracy, b.mean_accuracy);
  EXPECT_EQ(a.stddev_accuracy, b.stddev_accuracy);
  EXPECT_EQ(a.mean_logit_error, b.mean_logit_error);
  // An ideal config scores perfect agreement with zero spread.
  const auto ideal =
      engine.evaluate_robustness(model, actions, FaultConfig{}, opts);
  EXPECT_EQ(ideal.mean_accuracy, 1.0);
  EXPECT_EQ(ideal.stddev_accuracy, 0.0);
  // Heavy faults degrade below the ideal score.
  const auto heavy =
      engine.evaluate_robustness(model, actions, stuck_config(0.05), opts);
  EXPECT_LT(heavy.mean_accuracy, 1.0);
  EXPECT_GE(heavy.mean_logit_error, a.mean_logit_error);
}

TEST(Programming, FaultRetriesCostEnergyAndLatency) {
  const auto layers = nn::lenet5().mappable_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const auto allocation =
      mapping::TileAllocator(4, false).allocate(layers, shapes);
  const reram::DeviceParams device;
  const reram::ProgrammingParams params;
  const auto clean = reram::evaluate_programming(allocation, device, params);
  const auto ideal =
      reram::evaluate_programming(allocation, device, params, FaultConfig{});
  EXPECT_EQ(clean.energy_nj, ideal.energy_nj);
  EXPECT_EQ(clean.latency_ns, ideal.latency_ns);
  EXPECT_EQ(ideal.cells_stuck, 0);
  const auto faulty =
      reram::evaluate_programming(allocation, device, params, stuck_config(0.01));
  EXPECT_GT(faulty.cells_stuck, 0);
  EXPECT_GT(faulty.energy_nj, clean.energy_nj);
  EXPECT_GT(faulty.latency_ns, clean.latency_ns);
  // More defects, more retries.
  const auto worse =
      reram::evaluate_programming(allocation, device, params, stuck_config(0.05));
  EXPECT_GT(worse.cells_stuck, faulty.cells_stuck);
  EXPECT_GT(worse.energy_nj, faulty.energy_nj);
}

TEST(Reward, RobustnessAwareReducesToPaperRewardWhenIdeal) {
  const auto layers = nn::lenet5().mappable_layers();
  core::EnvConfig base_cfg;
  base_cfg.candidates = {{64, 64}, {576, 512}};
  const core::CrossbarEnv base_env(layers, base_cfg);

  core::EnvConfig robust_cfg = base_cfg;
  robust_cfg.objective = core::RewardObjective::kRobustnessAware;
  const core::CrossbarEnv ideal_env(layers, robust_cfg);

  const std::vector<std::size_t> actions(layers.size(), 1);
  const auto report = base_env.evaluate(actions);
  EXPECT_EQ(ideal_env.reward(ideal_env.evaluate(actions)),
            base_env.reward(report));

  // A non-ideal device discounts the reward by the vulnerability.
  robust_cfg.accel.faults = stuck_config(1e-2);
  const core::CrossbarEnv faulty_env(layers, robust_cfg);
  const auto faulty_report = faulty_env.evaluate(actions);
  EXPECT_GT(faulty_report.fault_vulnerability, 0.0);
  EXPECT_LT(faulty_env.reward(faulty_report), base_env.reward(report));
  EXPECT_NEAR(faulty_env.reward(faulty_report),
              base_env.reward(report) *
                  (1.0 - faulty_report.fault_vulnerability),
              1e-12);
}

}  // namespace
}  // namespace autohet
