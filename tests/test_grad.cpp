// Finite-difference validation of every backward op in tensor/grad.hpp.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/grad.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using tensor::Tensor;

constexpr float kEps = 1e-3f;
constexpr float kTol = 2e-2f;  // float finite differences are noisy

float sum_of_squares(const Tensor& t) {
  float s = 0.0f;
  for (std::int64_t i = 0; i < t.numel(); ++i) s += t[i] * t[i];
  return s;
}

// L = sum(conv(x, w)^2); analytic gradient via conv2d_backward with
// dL/dy = 2y must match finite differences in both x and w.
TEST(ConvBackward, MatchesFiniteDifferences) {
  common::Rng rng(1);
  Tensor x({2, 5, 5});
  x.fill_uniform(rng, -1.0f, 1.0f);
  Tensor w({3, 2, 3, 3});
  w.fill_uniform(rng, -0.5f, 0.5f);
  const std::int64_t stride = 1, pad = 1;

  Tensor y = tensor::conv2d(x, w, stride, pad);
  Tensor dy(y.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) dy[i] = 2.0f * y[i];
  const auto grads = tensor::conv2d_backward(x, w, dy, stride, pad);

  for (std::int64_t p = 0; p < w.numel(); p += 5) {
    const float orig = w[p];
    w[p] = orig + kEps;
    const float lp = sum_of_squares(tensor::conv2d(x, w, stride, pad));
    w[p] = orig - kEps;
    const float lm = sum_of_squares(tensor::conv2d(x, w, stride, pad));
    w[p] = orig;
    const float fd = (lp - lm) / (2 * kEps);
    EXPECT_NEAR(grads.grad_weight[p], fd,
                kTol * std::max(1.0f, std::fabs(fd)))
        << "w[" << p << "]";
  }
  for (std::int64_t p = 0; p < x.numel(); p += 7) {
    const float orig = x[p];
    x[p] = orig + kEps;
    const float lp = sum_of_squares(tensor::conv2d(x, w, stride, pad));
    x[p] = orig - kEps;
    const float lm = sum_of_squares(tensor::conv2d(x, w, stride, pad));
    x[p] = orig;
    const float fd = (lp - lm) / (2 * kEps);
    EXPECT_NEAR(grads.grad_input[p], fd,
                kTol * std::max(1.0f, std::fabs(fd)))
        << "x[" << p << "]";
  }
}

TEST(ConvBackward, StridedGeometry) {
  common::Rng rng(2);
  Tensor x({1, 6, 6});
  x.fill_uniform(rng, -1.0f, 1.0f);
  Tensor w({2, 1, 3, 3});
  w.fill_uniform(rng, -0.5f, 0.5f);
  Tensor y = tensor::conv2d(x, w, 2, 1);
  Tensor dy(y.shape());
  dy.fill(1.0f);
  const auto grads = tensor::conv2d_backward(x, w, dy, 2, 1);
  EXPECT_EQ(grads.grad_input.shape(), x.shape());
  EXPECT_EQ(grads.grad_weight.shape(), w.shape());

  for (std::int64_t p = 0; p < w.numel(); p += 3) {
    const float orig = w[p];
    const auto loss = [&] {
      const Tensor out = tensor::conv2d(x, w, 2, 1);
      float s = 0.0f;
      for (std::int64_t i = 0; i < out.numel(); ++i) s += out[i];
      return s;
    };
    w[p] = orig + kEps;
    const float lp = loss();
    w[p] = orig - kEps;
    const float lm = loss();
    w[p] = orig;
    EXPECT_NEAR(grads.grad_weight[p], (lp - lm) / (2 * kEps), kTol);
  }
}

TEST(FcBackward, MatchesFiniteDifferences) {
  common::Rng rng(3);
  Tensor x({10});
  x.fill_uniform(rng, -1.0f, 1.0f);
  Tensor w({4, 10});
  w.fill_uniform(rng, -0.5f, 0.5f);
  Tensor y = tensor::fully_connected(x, w);
  Tensor dy(y.shape());
  for (std::int64_t i = 0; i < y.numel(); ++i) dy[i] = 2.0f * y[i];
  const auto grads = tensor::fully_connected_backward(x, w, dy);
  for (std::int64_t p = 0; p < w.numel(); ++p) {
    const float orig = w[p];
    w[p] = orig + kEps;
    const float lp = sum_of_squares(tensor::fully_connected(x, w));
    w[p] = orig - kEps;
    const float lm = sum_of_squares(tensor::fully_connected(x, w));
    w[p] = orig;
    EXPECT_NEAR(grads.grad_weight[p], (lp - lm) / (2 * kEps), kTol) << p;
  }
  for (std::int64_t p = 0; p < x.numel(); ++p) {
    const float orig = x[p];
    x[p] = orig + kEps;
    const float lp = sum_of_squares(tensor::fully_connected(x, w));
    x[p] = orig - kEps;
    const float lm = sum_of_squares(tensor::fully_connected(x, w));
    x[p] = orig;
    EXPECT_NEAR(grads.grad_input[p], (lp - lm) / (2 * kEps), kTol) << p;
  }
}

TEST(MaxPoolBackward, RoutesToArgmax) {
  Tensor x({1, 2, 2});
  x[0] = 1.0f;
  x[1] = 4.0f;
  x[2] = 2.0f;
  x[3] = 3.0f;
  Tensor dy({1, 1, 1});
  dy[0] = 5.0f;
  const Tensor dx = tensor::maxpool2d_backward(x, dy, 2, 2);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 5.0f);  // argmax cell
  EXPECT_EQ(dx[2], 0.0f);
  EXPECT_EQ(dx[3], 0.0f);
}

TEST(AvgPoolBackward, SpreadsUniformly) {
  Tensor x({1, 2, 2});
  Tensor dy({1, 1, 1});
  dy[0] = 8.0f;
  const Tensor dx = tensor::avgpool2d_backward(x, dy, 2, 2);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(dx[i], 2.0f);
}

TEST(ReluBackward, MasksByPostActivation) {
  Tensor y({4});
  y[0] = 0.0f;
  y[1] = 2.0f;
  y[2] = 0.0f;
  y[3] = 0.1f;
  Tensor g({4});
  g.fill(7.0f);
  tensor::relu_backward_inplace(y, g);
  EXPECT_EQ(g[0], 0.0f);
  EXPECT_EQ(g[1], 7.0f);
  EXPECT_EQ(g[2], 0.0f);
  EXPECT_EQ(g[3], 7.0f);
}

TEST(SoftmaxCrossEntropy, LossAndGradient) {
  Tensor logits({3});
  logits[0] = 1.0f;
  logits[1] = 2.0f;
  logits[2] = 3.0f;
  const auto [loss, grad] = tensor::softmax_cross_entropy(logits, 2);
  // p = softmax(1,2,3) = (0.0900, 0.2447, 0.6652); loss = -ln(0.6652).
  EXPECT_NEAR(loss, 0.4076f, 1e-3f);
  EXPECT_NEAR(grad[0], 0.0900f, 1e-3f);
  EXPECT_NEAR(grad[1], 0.2447f, 1e-3f);
  EXPECT_NEAR(grad[2], 0.6652f - 1.0f, 1e-3f);
  // Gradient sums to zero.
  EXPECT_NEAR(grad[0] + grad[1] + grad[2], 0.0f, 1e-6f);
}

TEST(SoftmaxCrossEntropy, StableForLargeLogits) {
  Tensor logits({2});
  logits[0] = 1000.0f;
  logits[1] = 998.0f;
  const auto [loss, grad] = tensor::softmax_cross_entropy(logits, 0);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, std::log(1.0f + std::exp(-2.0f)), 1e-4f);
  EXPECT_TRUE(std::isfinite(grad[0]));
}

TEST(SoftmaxCrossEntropy, RejectsBadLabel) {
  Tensor logits({3});
  EXPECT_THROW(tensor::softmax_cross_entropy(logits, 3),
               std::invalid_argument);
  EXPECT_THROW(tensor::softmax_cross_entropy(logits, -1),
               std::invalid_argument);
}

TEST(ConvBackward, ValidatesShapes) {
  Tensor x({2, 5, 5}), w({3, 2, 3, 3}), bad_dy({3, 9, 9});
  EXPECT_THROW(tensor::conv2d_backward(x, w, bad_dy, 1, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace autohet
