// EvaluationEngine: the memoized/batched path must be bit-identical to the
// uncached evaluate_network, the LRU must bound memory, and evaluate_batch
// must match serial evaluation regardless of thread count.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "mapping/crossbar_shape.hpp"
#include "nn/model_zoo.hpp"
#include "reram/eval_engine.hpp"
#include "reram/hardware_model.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::AcceleratorConfig;
using reram::EvalEngineConfig;
using reram::EvaluationEngine;
using reram::NetworkReport;

std::vector<nn::LayerSpec> test_layers() {
  return nn::alexnet().mappable_layers();
}

std::vector<CrossbarShape> test_candidates() {
  return mapping::hybrid_candidates();
}

std::vector<CrossbarShape> shapes_for(
    const std::vector<std::size_t>& actions,
    const std::vector<CrossbarShape>& candidates) {
  std::vector<CrossbarShape> shapes;
  shapes.reserve(actions.size());
  for (std::size_t a : actions) shapes.push_back(candidates[a]);
  return shapes;
}

// Bit-identical comparison: EXPECT_DOUBLE_EQ requires exact equality for
// finite values, which is the engine's documented contract.
void expect_identical(const NetworkReport& got, const NetworkReport& want) {
  EXPECT_DOUBLE_EQ(got.energy.adc_nj, want.energy.adc_nj);
  EXPECT_DOUBLE_EQ(got.energy.dac_nj, want.energy.dac_nj);
  EXPECT_DOUBLE_EQ(got.energy.cell_nj, want.energy.cell_nj);
  EXPECT_DOUBLE_EQ(got.energy.shift_add_nj, want.energy.shift_add_nj);
  EXPECT_DOUBLE_EQ(got.energy.buffer_nj, want.energy.buffer_nj);
  EXPECT_DOUBLE_EQ(got.area.crossbar_um2, want.area.crossbar_um2);
  EXPECT_DOUBLE_EQ(got.area.adc_um2, want.area.adc_um2);
  EXPECT_DOUBLE_EQ(got.area.dac_um2, want.area.dac_um2);
  EXPECT_DOUBLE_EQ(got.area.shift_add_um2, want.area.shift_add_um2);
  EXPECT_DOUBLE_EQ(got.area.tile_overhead_um2, want.area.tile_overhead_um2);
  EXPECT_DOUBLE_EQ(got.latency_ns, want.latency_ns);
  EXPECT_DOUBLE_EQ(got.utilization, want.utilization);
  EXPECT_EQ(got.occupied_tiles, want.occupied_tiles);
  EXPECT_EQ(got.empty_crossbars, want.empty_crossbars);
  ASSERT_EQ(got.layers.size(), want.layers.size());
  for (std::size_t i = 0; i < got.layers.size(); ++i) {
    const auto& g = got.layers[i];
    const auto& w = want.layers[i];
    EXPECT_EQ(g.shape, w.shape) << "layer " << i;
    EXPECT_EQ(g.logical_crossbars, w.logical_crossbars) << "layer " << i;
    EXPECT_EQ(g.adc_instances, w.adc_instances) << "layer " << i;
    EXPECT_EQ(g.tiles, w.tiles) << "layer " << i;
    EXPECT_EQ(g.mvm_invocations, w.mvm_invocations) << "layer " << i;
    EXPECT_DOUBLE_EQ(g.utilization, w.utilization) << "layer " << i;
    EXPECT_DOUBLE_EQ(g.latency_ns, w.latency_ns) << "layer " << i;
    EXPECT_DOUBLE_EQ(g.energy.adc_nj, w.energy.adc_nj) << "layer " << i;
    EXPECT_DOUBLE_EQ(g.energy.dac_nj, w.energy.dac_nj) << "layer " << i;
    EXPECT_DOUBLE_EQ(g.energy.cell_nj, w.energy.cell_nj) << "layer " << i;
    EXPECT_DOUBLE_EQ(g.energy.shift_add_nj, w.energy.shift_add_nj)
        << "layer " << i;
    EXPECT_DOUBLE_EQ(g.energy.buffer_nj, w.energy.buffer_nj) << "layer " << i;
  }
}

class EvalEngineIdentity : public ::testing::TestWithParam<bool> {};

TEST_P(EvalEngineIdentity, MatchesUncachedEvaluateNetwork) {
  const auto layers = test_layers();
  const auto candidates = test_candidates();
  AcceleratorConfig accel;
  accel.tile_shared = GetParam();
  EvaluationEngine engine(layers, candidates, accel);

  common::Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> actions(layers.size());
    for (auto& a : actions) a = rng.uniform_u64(candidates.size());
    const NetworkReport cached = engine.evaluate(actions);
    const NetworkReport uncached =
        reram::evaluate_network(layers, shapes_for(actions, candidates),
                                accel);
    expect_identical(cached, uncached);
    // Second evaluation is a memo hit and must return the same bits again.
    expect_identical(engine.evaluate(actions), uncached);
  }
  EXPECT_GT(engine.cache_stats().hits, 0u);
  EXPECT_GT(engine.cache_stats().misses, 0u);
}

INSTANTIATE_TEST_SUITE_P(TileModes, EvalEngineIdentity,
                         ::testing::Values(false, true),
                         [](const auto& param_info) {
                           return param_info.param ? "TileShared" : "TileBased";
                         });

TEST(EvalEngine, LayerReportTableMatchesEvaluateLayer) {
  const auto layers = test_layers();
  const auto candidates = test_candidates();
  AcceleratorConfig accel;
  EvaluationEngine engine(layers, candidates, accel);
  for (std::size_t l = 0; l < layers.size(); ++l) {
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      const auto m = mapping::map_layer(layers[l], candidates[c]);
      const std::int64_t tiles =
          (m.logical_crossbars() + accel.pes_per_tile - 1) /
          accel.pes_per_tile;
      const auto want =
          reram::evaluate_layer(layers[l], m, tiles, accel.device);
      const auto& got = engine.layer_report(l, c);
      EXPECT_EQ(got.shape, want.shape);
      EXPECT_EQ(got.tiles, want.tiles);
      EXPECT_DOUBLE_EQ(got.utilization, want.utilization);
      EXPECT_DOUBLE_EQ(got.energy.total_nj(), want.energy.total_nj());
      EXPECT_DOUBLE_EQ(got.latency_ns, want.latency_ns);
    }
  }
}

TEST(EvalEngine, LruEvictsLeastRecentlyUsed) {
  const auto layers = test_layers();
  const auto candidates = test_candidates();
  EvalEngineConfig config;
  config.memo_capacity = 4;
  EvaluationEngine engine(layers, candidates, AcceleratorConfig{}, config);

  auto homo = [&](std::size_t c) {
    return std::vector<std::size_t>(layers.size(), c);
  };
  for (std::size_t c = 0; c < 5; ++c) engine.evaluate(homo(c));
  auto stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 5u);
  EXPECT_EQ(stats.evictions, 1u);  // capacity 4: config 0 was evicted

  // Configs 1..4 are resident (hits); config 0 must recompute (miss).
  for (std::size_t c = 1; c < 5; ++c) engine.evaluate(homo(c));
  stats = engine.cache_stats();
  EXPECT_EQ(stats.hits, 4u);
  engine.evaluate(homo(0));
  stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 6u);

  // Touch order governs eviction: after re-inserting 0, the LRU entry is 1.
  engine.evaluate(homo(1));
  EXPECT_EQ(engine.cache_stats().misses, 7u);

  engine.clear_cache();
  const auto cleared = engine.cache_stats();
  EXPECT_EQ(cleared.hits + cleared.misses, 0u);
}

TEST(EvalEngine, ZeroCapacityDisablesMemo) {
  const auto layers = test_layers();
  EvalEngineConfig config;
  config.memo_capacity = 0;
  EvaluationEngine engine(layers, test_candidates(), AcceleratorConfig{},
                          config);
  const std::vector<std::size_t> actions(layers.size(), 1);
  const auto a = engine.evaluate(actions);
  const auto b = engine.evaluate(actions);
  expect_identical(a, b);
  EXPECT_EQ(engine.cache_stats().hits, 0u);
}

TEST(EvalEngine, ValidatesActions) {
  const auto layers = test_layers();
  const auto candidates = test_candidates();
  EvaluationEngine engine(layers, candidates, AcceleratorConfig{});
  EXPECT_THROW(engine.evaluate({0, 1}), std::invalid_argument);
  std::vector<std::size_t> bad(layers.size(), candidates.size());
  EXPECT_THROW(engine.evaluate(bad), std::invalid_argument);
}

TEST(EvalEngine, BatchMatchesSerialAcrossThreadCounts) {
  const auto layers = test_layers();
  const auto candidates = test_candidates();
  AcceleratorConfig accel;
  accel.tile_shared = true;

  // Serial reference on an engine with no threads and no memo reuse across
  // the comparison (fresh engine per thread count keeps stats clean).
  common::Rng rng(7);
  std::vector<std::vector<std::size_t>> batch;
  for (int i = 0; i < 40; ++i) {
    std::vector<std::size_t> actions(layers.size());
    for (auto& a : actions) a = rng.uniform_u64(candidates.size());
    batch.push_back(std::move(actions));
  }
  batch.push_back(batch.front());  // duplicate: exercises dedup
  EvaluationEngine serial(layers, candidates, accel);
  std::vector<NetworkReport> want;
  want.reserve(batch.size());
  for (const auto& actions : batch) want.push_back(serial.evaluate(actions));

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, hw}) {
    EvalEngineConfig config;
    config.threads = threads;
    EvaluationEngine engine(layers, candidates, accel, config);
    const auto got = engine.evaluate_batch(batch);
    ASSERT_EQ(got.size(), batch.size()) << threads << " threads";
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_identical(got[i], want[i]);
    }
    // The duplicated vector must be a dedup/memo hit, not a recompute.
    EXPECT_GT(engine.cache_stats().hits, 0u) << threads << " threads";
  }
}

TEST(EvalEngine, BatchOfOneAndEmptyBatch) {
  const auto layers = test_layers();
  EvaluationEngine engine(layers, test_candidates(), AcceleratorConfig{});
  EXPECT_TRUE(engine.evaluate_batch({}).empty());
  const std::vector<std::size_t> actions(layers.size(), 2);
  const auto got = engine.evaluate_batch({actions});
  ASSERT_EQ(got.size(), 1u);
  expect_identical(got[0], engine.evaluate(actions));
}

}  // namespace
}  // namespace autohet
