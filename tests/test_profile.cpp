// Tests for the attribution profiler (src/obs/profile.*) and the profile
// report builder (src/report/profile_report.*): recording determinism
// across threads and kernel variants, the layer/tile/crossbar attribution
// joins, energy conservation against the analytic NetworkReport, and
// byte-identity of profile.json across repeated runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "mapping/plan.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "obs/profile.hpp"
#include "reram/functional.hpp"
#include "reram/hardware_model.hpp"
#include "reram/scheduler.hpp"
#include "report/profile_report.hpp"

namespace {

using namespace autohet;

std::vector<mapping::CrossbarShape> hetero_shapes(std::size_t layer_count) {
  const auto candidates = mapping::hybrid_candidates();
  std::vector<mapping::CrossbarShape> shapes;
  shapes.reserve(layer_count);
  for (std::size_t i = 0; i < layer_count; ++i) {
    shapes.push_back(candidates[i % candidates.size()]);
  }
  return shapes;
}

plan::DeploymentPlan lenet_plan(bool tile_shared = false) {
  const auto net = nn::lenet5();
  const auto layers = net.mappable_layers();
  reram::AcceleratorConfig accel;
  accel.tile_shared = tile_shared;
  return plan::compile_plan(net.name, layers, hetero_shapes(layers.size()),
                            accel);
}

/// RAII: enabled + empty profiler for the test body, disabled after.
class ScopedProfiler {
 public:
  ScopedProfiler() {
    obs::Profiler::global().reset();
    obs::Profiler::global().enable();
  }
  ~ScopedProfiler() {
    obs::Profiler::global().disable();
    obs::Profiler::global().reset();
  }
};

// ------------------------------------------------------------- recording --

TEST(Profiler, DisabledByDefaultAndRecordsWhenEnabled) {
  obs::Profiler& prof = obs::Profiler::global();
  prof.reset();
  EXPECT_FALSE(prof.enabled());
  // evaluate_plan with the profiler off records nothing.
  const auto plan = lenet_plan();
  (void)plan::evaluate_plan(plan);
  EXPECT_TRUE(prof.snapshot().records.empty());

  ScopedProfiler scoped;
  (void)plan::evaluate_plan(plan);
  const obs::ProfileSnapshot snap = prof.snapshot();
#if !defined(AUTOHET_OBS_DISABLED)
  EXPECT_EQ(snap.total(obs::ProfileKind::kPlanEval), 1u);
  EXPECT_EQ(snap.total(obs::ProfileKind::kAnalyticEval), plan.layers.size());
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    EXPECT_EQ(snap.value(obs::ProfileKind::kAnalyticEval,
                         static_cast<std::int64_t>(i)),
              1u);
  }
#else
  // -DAUTOHET_OBS=OFF compiles OBS_PROFILE_RECORD to nothing: even an
  // enabled profiler sees no instrumentation.
  EXPECT_TRUE(snap.records.empty());
#endif
}

TEST(Profiler, SnapshotSortedAndMergedAcrossShards) {
  ScopedProfiler scoped;
  obs::Profiler& prof = obs::Profiler::global();
  // Record from many threads; each (layer, unit) cell gets the same total
  // regardless of which shard the recording thread hashed to.
  std::vector<std::thread> workers;
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&prof] {
      for (int i = 0; i < 100; ++i) {
        prof.record(obs::ProfileKind::kFunctionalMvm, i % 5, 0, 2);
      }
    });
  }
  for (auto& w : workers) w.join();
  const obs::ProfileSnapshot snap = prof.snapshot();
  ASSERT_EQ(snap.records.size(), 5u);
  for (std::int64_t l = 0; l < 5; ++l) {
    EXPECT_EQ(snap.value(obs::ProfileKind::kFunctionalMvm, l), 320u);
  }
  // Sorted by (kind, layer, unit).
  for (std::size_t i = 1; i < snap.records.size(); ++i) {
    EXPECT_LT(snap.records[i - 1].layer, snap.records[i].layer);
  }
}

// The remaining recording tests exercise the live OBS_PROFILE_RECORD call
// sites and are meaningless when the macro compiles to nothing.
#if !defined(AUTOHET_OBS_DISABLED)

TEST(Profiler, ProgramWritesCoverEveryWeightExactlyOnce) {
  const auto plan = lenet_plan();
  const auto net = nn::lenet5();
  common::Rng rng(3);
  const nn::Model model(net, rng);

  ScopedProfiler scoped;
  const reram::SimulatedModel fabric(model, plan);
  const obs::ProfileSnapshot snap = obs::Profiler::global().snapshot();
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    const auto li = static_cast<std::int64_t>(i);
    // The programming loop writes each weight-matrix cell exactly once,
    // partitioned over the layer's crossbar grid.
    const std::uint64_t expected = static_cast<std::uint64_t>(
        plan.layers[i].weight_rows() * plan.layers[i].weight_cols());
    EXPECT_EQ(snap.layer_total(obs::ProfileKind::kProgramWrite, li),
              expected);
    // And the per-crossbar attribution has one record per crossbar.
    std::uint64_t crossbars_seen = 0;
    for (const obs::ProfileRecord& r : snap.records) {
      if (r.kind == obs::ProfileKind::kProgramWrite && r.layer == li) {
        ++crossbars_seen;
      }
    }
    EXPECT_EQ(crossbars_seen,
              static_cast<std::uint64_t>(
                  plan.allocation.layers[i].mapping.logical_crossbars()));
  }
}

TEST(Profiler, FunctionalMvmsMatchAnalyticPerInference) {
  const auto plan = lenet_plan();
  const auto net = nn::lenet5();
  common::Rng rng(3);
  const nn::Model model(net, rng);
  const reram::SimulatedModel fabric(model, plan);
  const auto report = plan::evaluate_plan(plan);

  ScopedProfiler scoped;
  common::Rng img(4);
  const auto& in = net.layers.front();
  const auto image =
      nn::synthetic_image(img, in.in_channels, in.in_height, in.in_width);
  (void)fabric.forward(image);
  const obs::ProfileSnapshot snap = obs::Profiler::global().snapshot();
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    EXPECT_EQ(snap.layer_total(obs::ProfileKind::kFunctionalMvm,
                               static_cast<std::int64_t>(i)),
              static_cast<std::uint64_t>(report.layers[i].mvm_invocations))
        << "layer " << i;
  }
}

// Satellite: profiler output identical across mc_threads and kernel
// variants — the recorded counts are structural, not scheduling-dependent.
TEST(Profiler, McRecordingInvariantAcrossThreadsAndKernels) {
  const auto plan = lenet_plan();
  auto net = nn::lenet5();
  common::Rng rng(3);
  const nn::Model model(net, rng);

  auto run = [&](int threads, reram::KernelPolicy policy) {
    ScopedProfiler scoped;
    reram::RobustnessOptions opts;
    opts.trials = 3;
    opts.samples = 4;
    opts.threads = threads;
    opts.kernels = policy;
    (void)reram::monte_carlo_robustness(model, plan, opts);
    return obs::Profiler::global().snapshot();
  };

  const auto serial = run(1, reram::KernelPolicy::kFast);
  EXPECT_EQ(serial.total(obs::ProfileKind::kMcTrial), 3u);
  EXPECT_GT(serial.total(obs::ProfileKind::kFunctionalMvm), 0u);
  EXPECT_EQ(run(0, reram::KernelPolicy::kFast), serial);
  EXPECT_EQ(run(3, reram::KernelPolicy::kFast), serial);
}

#endif  // !defined(AUTOHET_OBS_DISABLED)

// --------------------------------------------------------- profile report --

struct BuiltProfile {
  report::PlanProfile profile;
  reram::NetworkReport report;
};

BuiltProfile build_profile(const plan::DeploymentPlan& plan,
                           std::int64_t batch = 8) {
  ScopedProfiler scoped;
  const auto net = nn::network_by_name(plan.network);
  common::Rng rng(3);
  const nn::Model model(net, rng);
  const reram::SimulatedModel fabric(model, plan);
  common::Rng img(4);
  const auto& in = net.layers.front();
  (void)fabric.forward(
      nn::synthetic_image(img, in.in_channels, in.in_height, in.in_width));
  const auto report = plan::evaluate_plan(plan);
  const auto schedule = reram::schedule_batch(plan, batch);
  return {report::build_plan_profile(plan, report, schedule,
                                     obs::Profiler::global().snapshot(),
                                     batch),
          report};
}

TEST(PlanProfile, TotalsMatchNetworkReportExactly) {
  const auto plan = lenet_plan();
  const auto built = build_profile(plan);
  // Acceptance criterion: the profile's total energy is the analytic
  // report's, bit for bit (totals are copied, never re-derived).
  EXPECT_EQ(built.profile.totals.energy.total_nj(),
            built.report.energy.total_nj());
  EXPECT_EQ(built.profile.totals.latency_ns, built.report.latency_ns);
  EXPECT_EQ(built.profile.totals.utilization, built.report.utilization);
  // Per-layer energies and shares are consistent with the total.
  double share_sum = 0.0;
  for (const auto& l : built.profile.layers) share_sum += l.energy_share;
  EXPECT_NEAR(share_sum, 1.0, 1e-12);
}

TEST(PlanProfile, TileAttributionConservesCrossbarsAndWrites) {
  for (const bool tile_shared : {false, true}) {
    const auto plan = lenet_plan(tile_shared);
    const auto built = build_profile(plan);
    // Every layer's crossbars and writes distribute over tiles without
    // loss: summing tile occupants per layer recovers the layer totals.
    std::vector<std::int64_t> xbs(plan.layers.size(), 0);
    std::vector<std::uint64_t> writes(plan.layers.size(), 0);
    double tile_energy = 0.0;
    for (const auto& tile : built.profile.tiles) {
      for (const auto& occ : tile.occupants) {
        xbs[static_cast<std::size_t>(occ.layer)] += occ.crossbars;
        writes[static_cast<std::size_t>(occ.layer)] += occ.program_writes;
      }
      tile_energy += tile.energy_nj;
    }
    for (std::size_t i = 0; i < plan.layers.size(); ++i) {
      EXPECT_EQ(xbs[i], built.profile.layers[i].crossbars)
          << "tile_shared=" << tile_shared << " layer " << i;
      EXPECT_EQ(writes[i], built.profile.layers[i].program_writes)
          << "tile_shared=" << tile_shared << " layer " << i;
    }
    EXPECT_NEAR(tile_energy, built.report.energy.total_nj(),
                1e-9 * built.report.energy.total_nj());
  }
}

TEST(PlanProfile, TimelineIsAConsistentOccupancyStepFunction) {
  const auto plan = lenet_plan();
  const auto built = build_profile(plan, /*batch=*/4);
  const auto& tl = built.profile.timeline;
  ASSERT_FALSE(tl.empty());
  // Starts at t=0 with at least one active stage, ends idle at makespan.
  EXPECT_EQ(tl.front().t_ns, 0.0);
  EXPECT_GT(tl.front().active, 0);
  EXPECT_EQ(tl.back().active, 0);
  EXPECT_EQ(tl.back().t_ns, built.profile.makespan_ns);
  const auto stages = static_cast<std::int64_t>(plan.layers.size());
  for (std::size_t i = 0; i < tl.size(); ++i) {
    EXPECT_GE(tl[i].active, 0);
    EXPECT_LE(tl[i].active, stages);
    if (i > 0) {
      EXPECT_GT(tl[i].t_ns, tl[i - 1].t_ns);
    }
  }
}

TEST(PlanProfile, BottleneckClassificationFollowsLatencyTerms) {
  const auto plan = lenet_plan();
  const auto built = build_profile(plan);
  for (const auto& l : built.profile.layers) {
    const auto& t = l.latency_terms;
    // The decomposition reproduces the analytic per-MVM latency exactly
    // (same association as evaluate_layer's historical inline sum).
    EXPECT_EQ(t.per_mvm_ns() * static_cast<double>(l.mvms_analytic),
              l.latency_ns);
    const double top =
        std::max({t.compute_ns, t.adc_ns, t.noc_ns()});
    if (l.bottleneck == "compute") {
      EXPECT_EQ(t.compute_ns, top);
    } else if (l.bottleneck == "adc") {
      EXPECT_EQ(t.adc_ns, top);
    } else {
      EXPECT_EQ(l.bottleneck, "noc");
      EXPECT_EQ(t.noc_ns(), top);
    }
  }
}

TEST(PlanProfile, JsonByteIdenticalAcrossRunsAndThreadCounts) {
  const auto plan = lenet_plan();
  auto render = [&](int mc_threads) {
    ScopedProfiler scoped;
    const auto net = nn::network_by_name(plan.network);
    common::Rng rng(3);
    const nn::Model model(net, rng);
    const reram::SimulatedModel fabric(model, plan);
    common::Rng img(4);
    const auto& in = net.layers.front();
    (void)fabric.forward(
        nn::synthetic_image(img, in.in_channels, in.in_height, in.in_width));
    reram::RobustnessOptions opts;
    opts.trials = 2;
    opts.samples = 2;
    opts.threads = mc_threads;
    (void)reram::monte_carlo_robustness(model, plan, opts);
    const auto report = plan::evaluate_plan(plan);
    const auto schedule = reram::schedule_batch(plan, 8);
    const auto profile = report::build_plan_profile(
        plan, report, schedule, obs::Profiler::global().snapshot(), 8);
    std::ostringstream os;
    report::write_profile_json(os, profile);
    return os.str();
  };
  const std::string first = render(1);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(render(1), first);   // repeated run
  EXPECT_EQ(render(0), first);   // hardware-threads run
  EXPECT_EQ(render(3), first);   // explicit pool
}

TEST(PlanProfile, RecordsJsonIsDeterministic) {
  ScopedProfiler scoped;
  obs::Profiler& prof = obs::Profiler::global();
  prof.record(obs::ProfileKind::kProgramWrite, 1, 2, 30);
  prof.record(obs::ProfileKind::kAnalyticEval, 0, 0, 1);
  prof.record(obs::ProfileKind::kProgramWrite, 1, 2, 12);
  std::ostringstream a;
  report::write_profile_records_json(a, prof.snapshot());
  std::ostringstream b;
  report::write_profile_records_json(b, prof.snapshot());
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find(
                "{\"kind\": \"analytic_eval\", \"layer\": 0, \"unit\": 0, "
                "\"value\": 1}"),
            std::string::npos);
  EXPECT_NE(a.str().find(
                "{\"kind\": \"program_write\", \"layer\": 1, \"unit\": 2, "
                "\"value\": 42}"),
            std::string::npos);
}

TEST(PlanProfile, HotspotTablePrintsTopNByEnergy) {
  const auto plan = lenet_plan();
  const auto built = build_profile(plan);
  std::ostringstream os;
  report::print_hotspot_table(os, built.profile, 3);
  const std::string text = os.str();
  EXPECT_NE(text.find("hotspots"), std::string::npos);
  EXPECT_NE(text.find("energy_nj"), std::string::npos);
  EXPECT_NE(text.find("top 3 of"), std::string::npos);
  EXPECT_NE(text.find("total energy"), std::string::npos);
}

#if !defined(AUTOHET_OBS_DISABLED)
TEST(PlanProfile, ScheduleCountersRecorded) {
  const auto plan = lenet_plan();
  ScopedProfiler scoped;
  (void)reram::schedule_batch(plan, 6);
  const obs::ProfileSnapshot snap = obs::Profiler::global().snapshot();
  for (std::size_t k = 0; k < plan.layers.size(); ++k) {
    EXPECT_EQ(snap.value(obs::ProfileKind::kScheduleTask,
                         static_cast<std::int64_t>(k)),
              6u);
    EXPECT_GT(snap.value(obs::ProfileKind::kStageBusyNs,
                         static_cast<std::int64_t>(k)),
              0u);
  }
}
#endif  // !defined(AUTOHET_OBS_DISABLED)

}  // namespace
