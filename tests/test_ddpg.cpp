// DDPG agent: learning on small synthetic problems.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/ddpg.hpp"

namespace autohet {
namespace {

rl::DdpgConfig small_config() {
  rl::DdpgConfig cfg;
  cfg.state_dim = 2;
  cfg.actor_hidden = {24, 24};
  cfg.critic_hidden = {24, 24};
  cfg.actor_lr = 3e-3;
  cfg.critic_lr = 1e-2;
  cfg.gamma = 0.0;  // contextual bandit
  cfg.batch_size = 32;
  cfg.replay_capacity = 4000;
  return cfg;
}

TEST(Ddpg, ActionsAreInUnitInterval) {
  rl::DdpgAgent agent(small_config(), common::Rng(1));
  common::Rng rng(2);
  for (int t = 0; t < 100; ++t) {
    const std::vector<double> s = {rng.uniform(), rng.uniform()};
    const double a = agent.act(s);
    EXPECT_GT(a, 0.0);
    EXPECT_LT(a, 1.0);
    const double an = agent.act_with_noise(s);
    EXPECT_GE(an, 0.0);
    EXPECT_LE(an, 1.0);
  }
}

TEST(Ddpg, UpdateIsNoopUntilBatchAvailable) {
  rl::DdpgAgent agent(small_config(), common::Rng(3));
  EXPECT_EQ(agent.update(), 0.0);
  rl::Transition t;
  t.state = {0.1, 0.2};
  t.next_state = {0.3, 0.4};
  t.action = 0.5;
  t.reward = 1.0;
  t.terminal = true;
  agent.remember(t);
  EXPECT_EQ(agent.replay_size(), 1u);
  EXPECT_EQ(agent.update(), 0.0);  // still below batch size
}

TEST(Ddpg, LearnsContextualBandit) {
  // Reward = 1 - (a - s0)^2: the optimal action equals the first state
  // component. After training the policy should track it closely.
  auto cfg = small_config();
  rl::DdpgAgent agent(cfg, common::Rng(4));
  common::Rng rng(5);

  for (int episode = 0; episode < 600; ++episode) {
    const std::vector<double> s = {rng.uniform(0.1, 0.9), rng.uniform()};
    const double a = (episode < 100)
                         ? rng.uniform()  // warmup exploration
                         : agent.act_with_noise(s);
    rl::Transition t;
    t.state = s;
    t.next_state = s;
    t.action = a;
    t.reward = 1.0 - (a - s[0]) * (a - s[0]);
    t.terminal = true;
    agent.remember(std::move(t));
    agent.update();
    if (episode % 10 == 0) agent.decay_noise();
  }

  double total_err = 0.0;
  constexpr int kProbe = 20;
  for (int i = 0; i < kProbe; ++i) {
    const std::vector<double> s = {0.1 + 0.8 * i / (kProbe - 1), 0.5};
    total_err += std::fabs(agent.act(s) - s[0]);
  }
  EXPECT_LT(total_err / kProbe, 0.15);
}

TEST(Ddpg, CriticLearnsActionValues) {
  // With fixed state, Q(s, a) must rank the rewarding action above others.
  auto cfg = small_config();
  rl::DdpgAgent agent(cfg, common::Rng(6));
  common::Rng rng(7);
  const std::vector<double> s = {0.5, 0.5};
  for (int i = 0; i < 500; ++i) {
    const double a = rng.uniform();
    rl::Transition t;
    t.state = s;
    t.next_state = s;
    t.action = a;
    t.reward = (a > 0.4 && a < 0.6) ? 1.0 : 0.0;
    t.terminal = true;
    agent.remember(std::move(t));
    agent.update();
  }
  EXPECT_GT(agent.q_value(s, 0.5), agent.q_value(s, 0.05));
  EXPECT_GT(agent.q_value(s, 0.5), agent.q_value(s, 0.95));
}

TEST(Ddpg, NoiseDecays) {
  rl::DdpgAgent agent(small_config(), common::Rng(8));
  const double before = agent.noise_sigma();
  for (int i = 0; i < 50; ++i) agent.decay_noise();
  EXPECT_LT(agent.noise_sigma(), before);
  for (int i = 0; i < 1000; ++i) agent.decay_noise();
  EXPECT_GE(agent.noise_sigma(), 0.0);
}

TEST(Ddpg, DeterministicForSeed) {
  rl::DdpgAgent a(small_config(), common::Rng(9));
  rl::DdpgAgent b(small_config(), common::Rng(9));
  const std::vector<double> s = {0.3, 0.6};
  EXPECT_EQ(a.act(s), b.act(s));
  EXPECT_EQ(a.act_with_noise(s), b.act_with_noise(s));
}

TEST(Ddpg, ValidatesConfig) {
  auto cfg = small_config();
  cfg.state_dim = 0;
  EXPECT_THROW(rl::DdpgAgent(cfg, common::Rng(1)), std::invalid_argument);
  cfg = small_config();
  cfg.gamma = 1.5;
  EXPECT_THROW(rl::DdpgAgent(cfg, common::Rng(1)), std::invalid_argument);
  cfg = small_config();
  cfg.tau = 0.0;
  EXPECT_THROW(rl::DdpgAgent(cfg, common::Rng(1)), std::invalid_argument);
}

TEST(OrnsteinUhlenbeck, MeanRevertsTowardMu) {
  rl::OrnsteinUhlenbeck ou(0.15, 0.0, 2.0);  // sigma 0: deterministic decay
  common::Rng rng(10);
  double x = 0.0;
  for (int i = 0; i < 200; ++i) x = ou.sample(rng);
  EXPECT_NEAR(x, 2.0, 1e-6);
}

TEST(DecayingGaussian, RespectsFloor) {
  rl::DecayingGaussian g(1.0, 0.5, 0.1);
  for (int i = 0; i < 100; ++i) g.decay();
  EXPECT_DOUBLE_EQ(g.sigma(), 0.1);
}

}  // namespace
}  // namespace autohet
