// Tests for the seeded synthetic traffic generator (src/serve/traffic.*)
// and its JSON persistence: seeded determinism, Poisson inter-arrival
// statistics, rate-profile mean preservation, Zipf popularity ranking, and
// save -> replay byte-identity of the trace JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "serve/serialize.hpp"
#include "serve/traffic.hpp"

namespace {

using namespace autohet;

serve::TrafficConfig base_config() {
  serve::TrafficConfig config;
  config.seed = 42;
  config.duration_s = 2.0;
  config.mean_qps = 5000.0;
  return config;
}

std::vector<std::int64_t> model_counts(const serve::TrafficTrace& trace) {
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(trace.num_models), 0);
  for (const serve::Request& r : trace.requests) {
    ++counts[static_cast<std::size_t>(r.model)];
  }
  return counts;
}

// ------------------------------------------------------------ generation --

TEST(Traffic, SameSeedSameTrace) {
  const serve::TrafficConfig config = base_config();
  const serve::TrafficTrace a = serve::generate_trace(config, 3);
  const serve::TrafficTrace b = serve::generate_trace(config, 3);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].model, b.requests[i].model);
    EXPECT_EQ(a.requests[i].arrival_ns, b.requests[i].arrival_ns);
  }
}

TEST(Traffic, DifferentSeedDifferentTrace) {
  serve::TrafficConfig config = base_config();
  const serve::TrafficTrace a = serve::generate_trace(config, 3);
  config.seed = 43;
  const serve::TrafficTrace b = serve::generate_trace(config, 3);
  bool differs = a.requests.size() != b.requests.size();
  for (std::size_t i = 0; !differs && i < a.requests.size(); ++i) {
    differs = a.requests[i].arrival_ns != b.requests[i].arrival_ns ||
              a.requests[i].model != b.requests[i].model;
  }
  EXPECT_TRUE(differs);
}

TEST(Traffic, ArrivalsSortedInHorizonWithSequentialIds) {
  const serve::TrafficTrace trace = serve::generate_trace(base_config(), 4);
  const double horizon_ns = base_config().duration_s * 1e9;
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const serve::Request& r = trace.requests[i];
    EXPECT_EQ(r.id, static_cast<std::int64_t>(i));
    EXPECT_GE(r.arrival_ns, 0.0);
    EXPECT_LT(r.arrival_ns, horizon_ns);
    EXPECT_GE(r.model, 0);
    EXPECT_LT(r.model, 4);
    if (i > 0) {
      EXPECT_GE(r.arrival_ns, trace.requests[i - 1].arrival_ns);
    }
  }
}

TEST(Traffic, PoissonInterArrivalMeanMatchesRate) {
  // Constant profile: inter-arrival times are Exp(mean_qps); with ~10k
  // arrivals the sample mean lands within a few percent of 1/rate.
  const serve::TrafficConfig config = base_config();
  const serve::TrafficTrace trace = serve::generate_trace(config, 1);
  ASSERT_GT(trace.requests.size(), 1000u);
  const double span_ns = trace.requests.back().arrival_ns -
                         trace.requests.front().arrival_ns;
  const double mean_gap_ns =
      span_ns / static_cast<double>(trace.requests.size() - 1);
  const double expected_ns = 1e9 / config.mean_qps;
  EXPECT_NEAR(mean_gap_ns, expected_ns, 0.05 * expected_ns);
}

TEST(Traffic, RequestCountTracksMeanRateForEveryProfile) {
  // All three profiles preserve the configured mean, so the total count
  // stays near qps * duration regardless of the shape.
  for (const serve::RateProfile profile :
       {serve::RateProfile::kConstant, serve::RateProfile::kBursty,
        serve::RateProfile::kDiurnal}) {
    serve::TrafficConfig config = base_config();
    config.profile = profile;
    const serve::TrafficTrace trace = serve::generate_trace(config, 2);
    const double expected = config.mean_qps * config.duration_s;
    EXPECT_NEAR(static_cast<double>(trace.requests.size()), expected,
                0.1 * expected)
        << serve::rate_profile_name(profile);
  }
}

TEST(Traffic, RateProfilesPreserveMeanAndRespectPeak) {
  for (const serve::RateProfile profile :
       {serve::RateProfile::kConstant, serve::RateProfile::kBursty,
        serve::RateProfile::kDiurnal}) {
    serve::TrafficConfig config = base_config();
    config.profile = profile;
    const double peak = serve::peak_rate(config);
    const int steps = 20000;
    double sum = 0.0;
    for (int i = 0; i < steps; ++i) {
      const double t =
          (static_cast<double>(i) + 0.5) * config.duration_s / steps;
      const double rate = serve::rate_at(config, t);
      EXPECT_GE(rate, 0.0);
      EXPECT_LE(rate, peak + 1e-9);
      sum += rate;
    }
    EXPECT_NEAR(sum / steps, config.mean_qps, 0.01 * config.mean_qps)
        << serve::rate_profile_name(profile);
  }
}

TEST(Traffic, BurstyRateIsOnOffSquareWave) {
  serve::TrafficConfig config = base_config();
  config.profile = serve::RateProfile::kBursty;
  const double on = config.mean_qps * config.burst_factor;
  EXPECT_DOUBLE_EQ(serve::rate_at(config, 0.01), on);  // in the burst
  const double off_rate = serve::rate_at(config, 0.05);
  EXPECT_LT(off_rate, config.mean_qps);  // compensating trough
  EXPECT_DOUBLE_EQ(serve::peak_rate(config), on);
}

// ------------------------------------------------------------ popularity --

TEST(Traffic, ZipfWeightsNormalizedAndDecreasing) {
  const std::vector<double> w = serve::zipf_weights(5, 1.0);
  ASSERT_EQ(w.size(), 5u);
  double sum = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sum += w[i];
    if (i > 0) {
      EXPECT_LT(w[i], w[i - 1]);
    }
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // s = 0 degenerates to uniform.
  for (const double u : serve::zipf_weights(4, 0.0)) {
    EXPECT_NEAR(u, 0.25, 1e-12);
  }
}

TEST(Traffic, ZipfPopularityRankingHolds) {
  serve::TrafficConfig config = base_config();
  config.zipf_s = 1.0;
  const serve::TrafficTrace trace = serve::generate_trace(config, 4);
  const std::vector<std::int64_t> counts = model_counts(trace);
  // Counts must fall with rank, and each share must land near its Zipf
  // weight (10k samples => a few percent of the total).
  for (std::size_t m = 1; m < counts.size(); ++m) {
    EXPECT_LT(counts[m], counts[m - 1]) << "rank " << m;
  }
  const std::vector<double> w = serve::zipf_weights(4, config.zipf_s);
  const auto total = static_cast<double>(trace.requests.size());
  for (std::size_t m = 0; m < counts.size(); ++m) {
    EXPECT_NEAR(static_cast<double>(counts[m]) / total, w[m], 0.03)
        << "rank " << m;
  }
}

// ------------------------------------------------------------ validation --

TEST(Traffic, ValidateRejectsBadConfigs) {
  serve::TrafficConfig config = base_config();
  config.mean_qps = 0.0;
  EXPECT_THROW(serve::generate_trace(config, 1), std::invalid_argument);

  config = base_config();
  config.duration_s = -1.0;
  EXPECT_THROW(serve::generate_trace(config, 1), std::invalid_argument);

  config = base_config();
  config.profile = serve::RateProfile::kBursty;
  config.burst_factor = 10.0;
  config.burst_fraction = 0.5;  // factor * fraction > 1: mean not preservable
  EXPECT_THROW(serve::generate_trace(config, 1), std::invalid_argument);

  config = base_config();
  config.profile = serve::RateProfile::kDiurnal;
  config.diurnal_depth = 1.5;  // rate would go negative
  EXPECT_THROW(serve::generate_trace(config, 1), std::invalid_argument);

  EXPECT_THROW(serve::generate_trace(base_config(), 0),
               std::invalid_argument);
}

TEST(Traffic, ProfileNamesRoundTrip) {
  for (const serve::RateProfile profile :
       {serve::RateProfile::kConstant, serve::RateProfile::kBursty,
        serve::RateProfile::kDiurnal}) {
    EXPECT_EQ(serve::rate_profile_from_name(serve::rate_profile_name(profile)),
              profile);
  }
  EXPECT_THROW(serve::rate_profile_from_name("hourly"),
               std::invalid_argument);
}

// ----------------------------------------------------------- persistence --

TEST(Traffic, TraceJsonSaveReplayByteIdentical) {
  serve::TrafficConfig config = base_config();
  config.profile = serve::RateProfile::kDiurnal;
  config.zipf_s = 0.8;
  const serve::TrafficTrace trace = serve::generate_trace(config, 3);

  std::ostringstream first;
  serve::write_trace_json(first, trace);
  const serve::TrafficTrace replayed = serve::read_trace_json(first.str());
  std::ostringstream second;
  serve::write_trace_json(second, replayed);
  EXPECT_EQ(first.str(), second.str());

  ASSERT_EQ(replayed.requests.size(), trace.requests.size());
  EXPECT_EQ(replayed.num_models, trace.num_models);
  EXPECT_EQ(replayed.config.seed, trace.config.seed);
  EXPECT_EQ(replayed.config.profile, trace.config.profile);
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    EXPECT_EQ(replayed.requests[i].id, trace.requests[i].id);
    EXPECT_EQ(replayed.requests[i].model, trace.requests[i].model);
    EXPECT_EQ(replayed.requests[i].arrival_ns,
              trace.requests[i].arrival_ns);
  }
}

TEST(Traffic, TraceJsonRejectsGarbage) {
  EXPECT_THROW(serve::read_trace_json("not json"), std::invalid_argument);
  EXPECT_THROW(serve::read_trace_json("{\"format\": \"autohet-plan\"}"),
               std::invalid_argument);
}

}  // namespace
