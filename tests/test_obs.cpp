// Tests for the observability layer (src/obs): histogram bucketing, the
// thread-sharded registry, span nesting, the Chrome-trace writer, the
// exposition formats, the CLI plumbing, and the disabled-by-default
// bit-identity contract.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "nn/model_zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/session.hpp"
#include "obs/trace.hpp"
#include "reram/hardware_model.hpp"
#include "report/serialize.hpp"

namespace {

using namespace autohet;

// ---------------------------------------------------------------- metrics --

TEST(Histogram, BucketBoundariesAreLogTwo) {
  // Bucket 0 holds exactly the value 0; bucket b >= 1 holds [2^(b-1), 2^b-1].
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(7), 3u);
  EXPECT_EQ(obs::Histogram::bucket_index(8), 4u);
  EXPECT_EQ(obs::Histogram::bucket_index(~std::uint64_t{0}), 64u);

  EXPECT_EQ(obs::Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(obs::Histogram::bucket_upper_bound(64), ~std::uint64_t{0});

  // Every value lands in the bucket whose range contains it.
  for (std::size_t b = 1; b < 10; ++b) {
    const std::uint64_t lo = std::uint64_t{1} << (b - 1);
    const std::uint64_t hi = obs::Histogram::bucket_upper_bound(b);
    EXPECT_EQ(obs::Histogram::bucket_index(lo), b);
    EXPECT_EQ(obs::Histogram::bucket_index(hi), b);
  }
}

TEST(Histogram, RecordAccumulatesCountSumAndBuckets) {
  obs::Histogram hist;
  hist.record(0);
  hist.record(1);
  hist.record(5);
  hist.record(5);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_EQ(hist.sum(), 11u);
  const auto buckets = hist.buckets();
  EXPECT_EQ(buckets[0], 1u);  // value 0
  EXPECT_EQ(buckets[1], 1u);  // value 1
  EXPECT_EQ(buckets[3], 2u);  // values in [4, 7]
  hist.reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
}

TEST(Metrics, ShardedCounterMatchesSerialTotal) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Metrics, ShardedHistogramMatchesSerialTotal) {
  obs::Histogram hist;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) hist.record(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  EXPECT_EQ(hist.sum(), 3 * kThreads * kPerThread);
  EXPECT_EQ(hist.buckets()[2], kThreads * kPerThread);
}

TEST(Metrics, GaugeRoundTripsDoubles) {
  obs::Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(-12.375);
  EXPECT_EQ(gauge.value(), -12.375);
}

TEST(Metrics, RegistryReturnsStableReferencesAndSnapshots) {
  obs::Registry& reg = obs::Registry::global();
  obs::Counter& c1 = reg.counter("test_registry_counter");
  obs::Counter& c2 = reg.counter("test_registry_counter");
  EXPECT_EQ(&c1, &c2);
  c1.reset();
  c1.add(7);
  reg.gauge("test_registry_gauge").set(2.5);
  reg.histogram("test_registry_hist").record(9);

  const obs::MetricsSnapshot snap = reg.snapshot();
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& c : snap.counters) {
    if (c.name == "test_registry_counter") {
      saw_counter = true;
      EXPECT_EQ(c.value, 7u);
    }
  }
  for (const auto& g : snap.gauges) {
    if (g.name == "test_registry_gauge") {
      saw_gauge = true;
      EXPECT_EQ(g.value, 2.5);
    }
  }
  for (const auto& h : snap.histograms) {
    if (h.name == "test_registry_hist") {
      saw_hist = true;
      EXPECT_GE(h.count, 1u);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
  EXPECT_TRUE(saw_hist);
}

// ----------------------------------------------------------------- tracer --

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::global().clear_for_testing();
    obs::Tracer::global().enable();
  }
  void TearDown() override {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear_for_testing();
  }
};

TEST_F(TracerTest, NestedSpansRecordDepthAndContainment) {
  {
    obs::ScopedSpan outer("outer_span");
    {
      obs::ScopedSpan inner("inner_span");
    }
  }
  const auto events = obs::Tracer::global().snapshot_events();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "outer_span") outer = &ev;
    if (std::string(ev.name) == "inner_span") inner = &ev;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(inner->depth, 1u);
  EXPECT_EQ(outer->ph, 'X');
  // Temporal containment: inner starts no earlier and ends no later.
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
  // Sorted view puts the enclosing span first.
  std::size_t outer_pos = 0, inner_pos = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (&events[i] == outer) outer_pos = i;
    if (&events[i] == inner) inner_pos = i;
  }
  EXPECT_LT(outer_pos, inner_pos);
}

TEST_F(TracerTest, DisabledSpansRecordNothing) {
  obs::Tracer::global().disable();
  {
    obs::ScopedSpan span("invisible");
  }
  EXPECT_TRUE(obs::Tracer::global().snapshot_events().empty());
}

TEST_F(TracerTest, CounterEventsCarryValues) {
  obs::Tracer::global().counter("test_counter_track", 42.0);
  const auto events = obs::Tracer::global().snapshot_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ph, 'C');
  EXPECT_EQ(events[0].value, 42.0);
}

/// Minimal structural JSON validator: checks quoting/escapes and that
/// braces/brackets balance. Enough to guarantee a JSON parser will not
/// reject the document for nesting errors.
bool json_brackets_balance(const std::string& text) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return stack.empty() && !in_string;
}

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST_F(TracerTest, ChromeTraceJsonRoundTrips) {
  {
    obs::ScopedSpan outer("rt_outer");
    obs::ScopedSpan inner("rt_inner");
  }
  obs::Tracer::global().counter("rt_track", 1.5);
  std::ostringstream oss;
  obs::Tracer::global().write_chrome_trace(oss);
  const std::string json = oss.str();

  EXPECT_TRUE(json_brackets_balance(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"rt_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"rt_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"rt_track\""), std::string::npos);
  // Every event is either process metadata ('M'), a complete span ('X'),
  // or a counter sample ('C') — there are no unmatched B/E pairs by
  // construction. Two spans + one counter + one metadata row here.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"C\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"M\""), 1u);
  // Each complete span carries a duration.
  EXPECT_EQ(count_occurrences(json, "\"dur\":"), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""), 0u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"E\""), 0u);
}

TEST_F(TracerTest, SpansFromMultipleThreadsKeepTheirThreadIds) {
  std::thread t1([] { obs::ScopedSpan span("thread_span"); });
  std::thread t2([] { obs::ScopedSpan span("thread_span"); });
  t1.join();
  t2.join();
  const auto events = obs::Tracer::global().snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TracerTest, CounterAtRecordsExplicitSimulatedTimestamp) {
  // counter_at() stamps the caller-supplied (simulated) time instead of the
  // wall clock, so schedule-occupancy tracks land at their model timestamps.
  obs::Tracer::global().counter_at("sim_track", 123456789, 3.0);
  obs::Tracer::global().counter_at("sim_track", 987654321, 0.0);
  const auto events = obs::Tracer::global().snapshot_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'C');
  EXPECT_EQ(events[0].ts_ns, 123456789u);
  EXPECT_EQ(events[0].value, 3.0);
  EXPECT_EQ(events[1].ts_ns, 987654321u);
  EXPECT_EQ(events[1].value, 0.0);
}

// ------------------------------------------------------------- exposition --

TEST(Exposition, PrometheusTextContainsTypedSeries) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"demo_total", 3});
  snap.gauges.push_back({"demo_gauge", 1.5});
  obs::MetricsSnapshot::HistogramSample h;
  h.name = "demo_latency_ns";
  h.buckets[0] = 1;  // one zero-valued sample
  h.buckets[2] = 2;  // two samples in [2, 3]
  h.count = 3;
  h.sum = 6;
  snap.histograms.push_back(h);

  std::ostringstream oss;
  report::write_metrics_prometheus(oss, snap);
  const std::string text = oss.str();
  EXPECT_NE(text.find("# TYPE demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("demo_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE demo_latency_ns histogram"), std::string::npos);
  // Buckets are cumulative: the le="3" bucket includes the zero bucket.
  EXPECT_NE(text.find("demo_latency_ns_bucket{le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_ns_bucket{le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_ns_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("demo_latency_ns_sum 6"), std::string::npos);
  EXPECT_NE(text.find("demo_latency_ns_count 3"), std::string::npos);
}

TEST(Exposition, JsonFormIsStructurallyValid) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"demo_total", 3});
  obs::MetricsSnapshot::HistogramSample h;
  h.name = "demo_hist";
  h.buckets[1] = 4;
  h.count = 4;
  h.sum = 4;
  snap.histograms.push_back(h);

  std::ostringstream oss;
  report::write_metrics_json(oss, snap);
  const std::string json = oss.str();
  EXPECT_TRUE(json_brackets_balance(json)) << json;
  EXPECT_NE(json.find("\"demo_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"demo_hist\""), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 4}"), std::string::npos);
}

TEST(Exposition, JsonHistogramTerminatesWithInfBucket) {
  obs::MetricsSnapshot snap;
  obs::MetricsSnapshot::HistogramSample h;
  h.name = "demo_hist";
  h.buckets[0] = 1;
  h.buckets[3] = 2;
  h.count = 3;
  h.sum = 10;
  snap.histograms.push_back(h);

  std::ostringstream oss;
  report::write_metrics_json(oss, snap);
  const std::string json = oss.str();
  EXPECT_TRUE(json_brackets_balance(json)) << json;
  // The bucket list mirrors the Prometheus exposition: it is terminated by
  // an explicit +Inf bucket carrying the cumulative sample count, so a
  // consumer can recover the total without knowing the bucket layout.
  const std::string inf_bucket = "{\"le\": \"+Inf\", \"count\": 3}";
  const auto pos = json.find(inf_bucket);
  ASSERT_NE(pos, std::string::npos) << json;
  EXPECT_EQ(json.find("{\"le\":", pos + 1), std::string::npos)
      << "+Inf must be the last bucket";
}

TEST(Exposition, PrometheusAndJsonAgreeOnRecordedHistogram) {
  // Round-trip: record through the real sharded histogram, then render both
  // exposition formats and check they describe the same distribution.
  obs::Histogram hist;
  hist.record(0);
  hist.record(6);
  hist.record(6);
  hist.record(1u << 20);

  obs::MetricsSnapshot snap;
  obs::MetricsSnapshot::HistogramSample h;
  h.name = "roundtrip_ns";
  h.buckets = hist.buckets();
  h.count = hist.count();
  h.sum = hist.sum();
  snap.histograms.push_back(h);

  std::ostringstream prom_os;
  report::write_metrics_prometheus(prom_os, snap);
  const std::string prom = prom_os.str();
  std::ostringstream json_os;
  report::write_metrics_json(json_os, snap);
  const std::string json = json_os.str();

  // Both expositions carry the same cumulative +Inf count and total sum.
  EXPECT_NE(prom.find("roundtrip_ns_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("roundtrip_ns_sum " + std::to_string(hist.sum())),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("roundtrip_ns_count 4"), std::string::npos) << prom;
  EXPECT_NE(json.find("{\"le\": \"+Inf\", \"count\": 4}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 4, \"sum\": " + std::to_string(hist.sum())),
            std::string::npos)
      << json;
}

// -------------------------------------------------------- CLI and session --

TEST(ObsCli, OptionsParseThroughArgParser) {
  common::ArgParser args("prog", "test");
  obs::add_cli_options(args);
  const char* argv[] = {"prog", "--metrics-out", "m.prom",
                        "--trace-out=t.json", "--episode-log", "e.jsonl",
                        "--log-level", "debug"};
  std::string error;
  ASSERT_TRUE(args.parse(8, argv, &error)) << error;
  const obs::Options opts = obs::options_from_cli(args);
  EXPECT_EQ(opts.metrics_out, "m.prom");
  EXPECT_EQ(opts.trace_out, "t.json");
  EXPECT_EQ(opts.episode_log, "e.jsonl");
  EXPECT_EQ(opts.log_level, "debug");
}

TEST(ObsCli, DefaultsAreEmptyAndDisabled) {
  common::ArgParser args("prog", "test");
  obs::add_cli_options(args);
  const char* argv[] = {"prog"};
  std::string error;
  ASSERT_TRUE(args.parse(1, argv, &error)) << error;
  const obs::Options opts = obs::options_from_cli(args);
  EXPECT_TRUE(opts.metrics_out.empty());
  EXPECT_TRUE(opts.trace_out.empty());
  EXPECT_TRUE(opts.episode_log.empty());
  EXPECT_TRUE(opts.log_level.empty());
}

TEST(ObsCli, RawArgvScannerFindsFlagsAmongPositionals) {
  const char* argv[] = {"bench", "300", "--trace-out", "t.json",
                        "--metrics-out=m.json", "extra"};
  const obs::Options opts = obs::options_from_argv(6, argv);
  EXPECT_EQ(opts.trace_out, "t.json");
  EXPECT_EQ(opts.metrics_out, "m.json");
  EXPECT_TRUE(opts.episode_log.empty());
}

TEST(ObsCli, RawArgvScannerRejectsTrailingFlagWithoutValue) {
  const char* argv[] = {"bench", "40", "--metrics-out"};
  EXPECT_THROW(obs::options_from_argv(3, argv), std::invalid_argument);
}

TEST(ObsCli, BadLogLevelThrowsInvalidArgument) {
  obs::Options opts;
  opts.log_level = "chatty";
  obs::ObsSession session;
  EXPECT_THROW(session.configure(opts), std::invalid_argument);
}

TEST(ObsCli, SessionFlushWritesAllConfiguredFiles) {
  const std::filesystem::path dir = ::testing::TempDir();
  const std::string metrics_path = (dir / "obs_test_metrics.prom").string();
  const std::string metrics_json_path =
      (dir / "obs_test_metrics.json").string();
  const std::string trace_path = (dir / "obs_test_trace.json").string();
  const std::string episode_path = (dir / "obs_test_episodes.jsonl").string();

  obs::Tracer::global().clear_for_testing();
  {
    obs::Options opts;
    opts.metrics_out = metrics_path;
    opts.trace_out = trace_path;
    opts.episode_log = episode_path;
    obs::ObsSession session(opts);
    EXPECT_TRUE(obs::metrics_enabled());
    EXPECT_TRUE(obs::Tracer::global().enabled());
    EXPECT_TRUE(obs::EventLog::global().enabled());
    // Direct API rather than the OBS_* macros so this test also covers the
    // -DAUTOHET_OBS=OFF build (the runtime machinery stays available there).
    obs::Registry::global().counter("obs_test_flush_total").add(1);
    {
      obs::ScopedSpan span("obs_test_span");
    }
    obs::EventLog::global().emit("{\"episode\": 0}");
  }  // destructor flushes

  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream metrics_text;
  metrics_text << metrics.rdbuf();
  EXPECT_NE(metrics_text.str().find("obs_test_flush_total"),
            std::string::npos);

  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::stringstream trace_text;
  trace_text << trace.rdbuf();
  EXPECT_TRUE(json_brackets_balance(trace_text.str()));
  EXPECT_NE(trace_text.str().find("obs_test_span"), std::string::npos);

  std::ifstream episodes(episode_path);
  ASSERT_TRUE(episodes.good());
  std::string line;
  ASSERT_TRUE(std::getline(episodes, line));
  EXPECT_EQ(line, "{\"episode\": 0}");

  // A .json metrics path selects the JSON exposition.
  {
    obs::Options opts;
    opts.metrics_out = metrics_json_path;
    obs::ObsSession session(opts);
  }
  std::ifstream metrics_json(metrics_json_path);
  ASSERT_TRUE(metrics_json.good());
  std::stringstream metrics_json_text;
  metrics_json_text << metrics_json.rdbuf();
  EXPECT_TRUE(json_brackets_balance(metrics_json_text.str()));
  EXPECT_NE(metrics_json_text.str().find("\"counters\""), std::string::npos);

  obs::set_metrics_enabled(false);
  obs::Tracer::global().disable();
  obs::Tracer::global().clear_for_testing();
  std::filesystem::remove(metrics_path);
  std::filesystem::remove(metrics_json_path);
  std::filesystem::remove(trace_path);
  std::filesystem::remove(episode_path);
}

TEST(ObsCli, SessionFlushSurfacesDroppedTraceEvents) {
  const std::filesystem::path dir = ::testing::TempDir();
  const std::string metrics_path = (dir / "obs_test_dropped.prom").string();
  const std::string trace_path = (dir / "obs_test_dropped_trace.json").string();

  obs::Tracer::global().clear_for_testing();
  {
    obs::Options opts;
    opts.metrics_out = metrics_path;
    opts.trace_out = trace_path;
    obs::ObsSession session(opts);
    // Overflow this thread's ring (1 << 16 events) by exactly five events so
    // the wrap-around is visible and countable.
    for (int i = 0; i < (1 << 16) + 5; ++i) {
      obs::Tracer::global().counter("obs_test_overflow", i);
    }
    EXPECT_EQ(obs::Tracer::global().dropped_events(), 5u);
    // Repeated flushes must account only the delta, not re-add the total.
    session.flush();
    session.flush();
  }  // destructor flushes a third time

  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream text;
  text << metrics.rdbuf();
  EXPECT_NE(text.str().find("autohet_trace_dropped_events 5"),
            std::string::npos)
      << text.str();

  obs::set_metrics_enabled(false);
  obs::Tracer::global().disable();
  obs::Tracer::global().clear_for_testing();
  std::filesystem::remove(metrics_path);
  std::filesystem::remove(trace_path);
}

// ----------------------------------------------------------- bit identity --

/// The instrumentation must not perturb the hardware model: reports computed
/// with every sink enabled are bit-identical to reports computed with the
/// default null sinks.
TEST(ObsOverhead, ReportsAreBitIdenticalWithSinksOnAndOff) {
  const auto net = nn::lenet5();
  const auto layers = net.mappable_layers();
  std::vector<mapping::CrossbarShape> shapes(layers.size(),
                                             mapping::CrossbarShape{128, 128});
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;

  const reram::NetworkReport baseline =
      reram::evaluate_network(layers, shapes, accel);

  obs::set_metrics_enabled(true);
  obs::Tracer::global().enable();
  const reram::NetworkReport instrumented =
      reram::evaluate_network(layers, shapes, accel);
  obs::Tracer::global().disable();
  obs::Tracer::global().clear_for_testing();
  obs::set_metrics_enabled(false);

  EXPECT_EQ(baseline.utilization, instrumented.utilization);
  EXPECT_EQ(baseline.energy.total_nj(), instrumented.energy.total_nj());
  EXPECT_EQ(baseline.latency_ns, instrumented.latency_ns);
  EXPECT_EQ(baseline.occupied_tiles, instrumented.occupied_tiles);
  EXPECT_EQ(baseline.empty_crossbars, instrumented.empty_crossbars);
  EXPECT_EQ(baseline.rue(), instrumented.rue());
  ASSERT_EQ(baseline.layers.size(), instrumented.layers.size());
  for (std::size_t i = 0; i < baseline.layers.size(); ++i) {
    EXPECT_EQ(baseline.layers[i].utilization,
              instrumented.layers[i].utilization);
    EXPECT_EQ(baseline.layers[i].energy.total_nj(),
              instrumented.layers[i].energy.total_nj());
    EXPECT_EQ(baseline.layers[i].latency_ns, instrumented.layers[i].latency_ns);
  }
}

}  // namespace
