// Structural checks of the model zoo against the paper's Table 2.
#include <gtest/gtest.h>

#include <map>

#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

// Counts mappable layers bucketed by (kernel, out_channels) as Table 2 does.
std::map<std::pair<std::int64_t, std::int64_t>, int> conv_buckets(
    const nn::NetworkSpec& net) {
  std::map<std::pair<std::int64_t, std::int64_t>, int> buckets;
  for (const auto& l : net.mappable_layers()) {
    if (l.type == nn::LayerType::kConv) {
      ++buckets[{l.kernel, l.out_channels}];
    }
  }
  return buckets;
}

TEST(ModelZoo, AlexNetMatchesTable2) {
  const auto net = nn::alexnet();
  const auto mappable = net.mappable_layers();
  ASSERT_EQ(mappable.size(), 8u);  // 5 CONV + 3 FC
  const auto buckets = conv_buckets(net);
  EXPECT_EQ(buckets.at({3, 64}), 1);
  EXPECT_EQ(buckets.at({3, 192}), 1);
  EXPECT_EQ(buckets.at({3, 384}), 1);
  EXPECT_EQ(buckets.at({3, 256}), 2);
  // FC tail: F4096, F4096, F10.
  EXPECT_EQ(mappable[5].out_channels, 4096);
  EXPECT_EQ(mappable[6].out_channels, 4096);
  EXPECT_EQ(mappable[7].out_channels, 10);
  EXPECT_TRUE(net.sequential_runnable);
}

TEST(ModelZoo, Vgg16MatchesTable2) {
  const auto net = nn::vgg16();
  const auto mappable = net.mappable_layers();
  ASSERT_EQ(mappable.size(), 16u);  // 13 CONV + 3 FC
  const auto buckets = conv_buckets(net);
  EXPECT_EQ(buckets.at({3, 64}), 2);
  EXPECT_EQ(buckets.at({3, 128}), 2);
  EXPECT_EQ(buckets.at({3, 256}), 3);
  EXPECT_EQ(buckets.at({3, 512}), 6);
  EXPECT_EQ(mappable[13].out_channels, 4096);
  EXPECT_EQ(mappable[14].out_channels, 1000);
  EXPECT_EQ(mappable[15].out_channels, 10);
}

TEST(ModelZoo, Vgg16ChannelChaining) {
  const auto mappable = nn::vgg16().mappable_layers();
  // Every CONV layer's Cin equals the previous CONV's Cout (first is 3).
  EXPECT_EQ(mappable[0].in_channels, 3);
  for (std::size_t i = 1; i < 13; ++i) {
    EXPECT_EQ(mappable[i].in_channels, mappable[i - 1].out_channels) << i;
  }
  // FC head consumes the 1x1x512 feature map.
  EXPECT_EQ(mappable[13].in_channels, 512);
}

TEST(ModelZoo, ResNet152MatchesTable2Buckets) {
  const auto net = nn::resnet152();
  const auto buckets = conv_buckets(net);
  // Table 2: C7-64, 3 C1-64, 8 C1-128, 40 C1-256, 12 C1-512, 37 C1-1024,
  // 4 C1-2048, 3 C3-64, 8 C3-128, 36 C3-256, 3 C3-512, F1000.
  EXPECT_EQ(buckets.at({7, 64}), 1);
  EXPECT_EQ(buckets.at({1, 64}), 3);
  EXPECT_EQ(buckets.at({1, 128}), 8);
  EXPECT_EQ(buckets.at({1, 256}), 40);
  EXPECT_EQ(buckets.at({1, 512}), 12);
  EXPECT_EQ(buckets.at({1, 1024}), 37);
  EXPECT_EQ(buckets.at({1, 2048}), 4);
  EXPECT_EQ(buckets.at({3, 64}), 3);
  EXPECT_EQ(buckets.at({3, 128}), 8);
  EXPECT_EQ(buckets.at({3, 256}), 36);
  EXPECT_EQ(buckets.at({3, 512}), 3);
  // 155 CONV + 1 FC.
  EXPECT_EQ(net.mappable_layers().size(), 156u);
  const auto last = net.mappable_layers().back();
  EXPECT_EQ(last.type, nn::LayerType::kFullyConnected);
  EXPECT_EQ(last.in_channels, 2048);
  EXPECT_EQ(last.out_channels, 1000);
  EXPECT_FALSE(net.sequential_runnable);
}

TEST(ModelZoo, ResNet152SpatialPyramid) {
  // Feature maps shrink 224 -> 112 -> 56 -> 28 -> 14 -> 7.
  const auto net = nn::resnet152();
  EXPECT_EQ(net.layers.front().in_height, 224);
  std::int64_t min_h = 224;
  for (const auto& l : net.layers) min_h = std::min(min_h, l.in_height);
  EXPECT_EQ(min_h, 1);  // FC operates on the pooled 1x1 map
}

TEST(ModelZoo, LeNetShape) {
  const auto net = nn::lenet5();
  EXPECT_EQ(net.mappable_layers().size(), 5u);
  EXPECT_TRUE(net.sequential_runnable);
  EXPECT_EQ(net.mappable_layers()[2].in_channels, 400);
}

TEST(ModelZoo, InputGeometryPerDataset) {
  // §4.1 pairing: AlexNet/MNIST 28x28x1, VGG16/CIFAR 32x32x3,
  // ResNet152/ImageNet 224x224x3.
  EXPECT_EQ(nn::alexnet().layers[0].in_channels, 1);
  EXPECT_EQ(nn::alexnet().layers[0].in_height, 28);
  EXPECT_EQ(nn::vgg16().layers[0].in_channels, 3);
  EXPECT_EQ(nn::vgg16().layers[0].in_height, 32);
  EXPECT_EQ(nn::resnet152().layers[0].in_channels, 3);
  EXPECT_EQ(nn::resnet152().layers[0].in_height, 224);
}

TEST(ModelZoo, LookupByName) {
  EXPECT_EQ(nn::network_by_name("VGG16").name, "VGG16");
  EXPECT_EQ(nn::network_by_name("vgg").name, "VGG16");
  EXPECT_EQ(nn::network_by_name("AlexNet").name, "AlexNet");
  EXPECT_EQ(nn::network_by_name("resnet152").name, "ResNet152");
  EXPECT_EQ(nn::network_by_name("LeNet").name, "LeNet5");
  EXPECT_THROW(nn::network_by_name("mobilenet"), std::invalid_argument);
}

TEST(ModelZoo, PaperWorkloadsOrder) {
  const auto workloads = nn::paper_workloads();
  ASSERT_EQ(workloads.size(), 3u);
  EXPECT_EQ(workloads[0].name, "AlexNet");
  EXPECT_EQ(workloads[1].name, "VGG16");
  EXPECT_EQ(workloads[2].name, "ResNet152");
}

TEST(ModelZoo, FeatureMapChainingIsConsistent) {
  // For the sequential nets, each layer's input geometry must match the
  // previous layer's output geometry.
  for (const auto& net : {nn::lenet5(), nn::alexnet(), nn::vgg16()}) {
    std::int64_t c = net.layers[0].in_channels;
    std::int64_t h = net.layers[0].in_height;
    std::int64_t w = net.layers[0].in_width;
    for (const auto& l : net.layers) {
      if (l.type == nn::LayerType::kFullyConnected) {
        EXPECT_EQ(l.in_channels, c * h * w) << net.name;
        c = l.out_channels;
        h = 1;
        w = 1;
        continue;
      }
      EXPECT_EQ(l.in_channels, c) << net.name << ": " << l.to_string();
      EXPECT_EQ(l.in_height, h) << net.name << ": " << l.to_string();
      EXPECT_EQ(l.in_width, w) << net.name << ": " << l.to_string();
      c = l.out_channels;
      h = l.out_height();
      w = l.out_width();
    }
  }
}

}  // namespace
}  // namespace autohet
