// Cross-module integration tests: the paper's headline claims, end to end.
#include <gtest/gtest.h>

#include "autohet/baselines.hpp"
#include "autohet/search.hpp"
#include "nn/model_zoo.hpp"
#include "reram/functional.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using core::AutoHetSearch;
using core::CrossbarEnv;
using core::EnvConfig;
using core::SearchConfig;

CrossbarEnv paper_env(const nn::NetworkSpec& net, bool tile_shared = true) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();  // §4.1 AutoHet candidates
  cfg.accel.tile_shared = tile_shared;
  return CrossbarEnv(net.mappable_layers(), cfg);
}

CrossbarEnv baseline_env(const nn::NetworkSpec& net) {
  EnvConfig cfg;
  cfg.candidates = mapping::square_candidates();  // §4.1 homogeneous sizes
  cfg.accel.tile_shared = false;
  return CrossbarEnv(net.mappable_layers(), cfg);
}

TEST(Integration, AutoHetBeatsAllHomogeneousBaselinesOnVgg16) {
  // Fig. 9(a): AutoHet has the highest RUE for VGG16.
  const auto homo_env = baseline_env(nn::vgg16());
  const auto auto_env = paper_env(nn::vgg16());
  SearchConfig cfg;
  cfg.episodes = 150;
  cfg.warmup_episodes = 25;
  cfg.seed = 1;
  const auto result = AutoHetSearch(auto_env, cfg).run();
  for (const auto& homo : core::homogeneous_sweep(homo_env)) {
    EXPECT_GT(result.best_report.rue(), homo.report.rue()) << homo.name;
  }
}

TEST(Integration, AutoHetEnergyFarBelowSmallCrossbarBaseline) {
  // "reduces energy consumption by up to 94.6%": against the small-crossbar
  // homogeneous baselines the learned config must cut energy drastically.
  const auto homo_env = baseline_env(nn::vgg16());
  const auto auto_env = paper_env(nn::vgg16());
  SearchConfig cfg;
  cfg.episodes = 120;
  cfg.seed = 2;
  const auto result = AutoHetSearch(auto_env, cfg).run();
  const auto homo32 = core::evaluate_homogeneous_strategy(homo_env, 0);
  const double reduction = 1.0 - result.best_report.energy.total_nj() /
                                     homo32.report.energy.total_nj();
  EXPECT_GT(reduction, 0.80);
}

TEST(Integration, TileSharingReducesOccupiedTilesOnAllPaperModels) {
  // Table 4 shape: All (+tile-shared) occupies fewer tiles than +Hy.
  for (const auto& net : nn::paper_workloads()) {
    const auto layers = net.mappable_layers();
    reram::AcceleratorConfig base_cfg;
    base_cfg.tile_shared = false;
    reram::AcceleratorConfig shared_cfg;
    shared_cfg.tile_shared = true;
    const std::vector<mapping::CrossbarShape> shapes(
        layers.size(), mapping::CrossbarShape{72, 64});
    const auto base = reram::evaluate_network(layers, shapes, base_cfg);
    const auto shared = reram::evaluate_network(layers, shapes, shared_cfg);
    EXPECT_LT(shared.occupied_tiles, base.occupied_tiles) << net.name;
  }
}

TEST(Integration, FunctionalInferenceOnSearchedConfiguration) {
  // Run the RL search on LeNet, then execute actual inference on the
  // resulting heterogeneous fabric and compare with the float reference.
  const auto net = nn::lenet5();
  const auto env = paper_env(net);
  SearchConfig cfg;
  cfg.episodes = 60;
  cfg.warmup_episodes = 15;
  cfg.seed = 5;
  const auto result = AutoHetSearch(env, cfg).run();

  std::vector<mapping::CrossbarShape> shapes;
  for (auto a : result.best_actions) shapes.push_back(env.candidates()[a]);

  common::Rng rng(6);
  const nn::Model model(net, rng);
  const reram::SimulatedModel sim(model, shapes);
  common::Rng img_rng(7);
  const auto input = nn::synthetic_image(img_rng, 1, 32, 32);
  const auto reference = model.forward(input);
  const auto simulated = sim.forward(input);
  const float scale = std::max(1.0f, reference.abs_max());
  EXPECT_LT(tensor::max_abs_diff(reference, simulated) / scale, 0.08f);
}

TEST(Integration, UtilizationEnergyParetoAcrossCandidates) {
  // §2.2.3: small crossbars win utilization, large crossbars win energy,
  // for every paper model. (The exact 32-vs-64 utilization order can flip
  // because floor(64/9)/64 packs 3x3 kernels tighter than floor(32/9)/32;
  // from 64x64 upward the ordering is strict — see EXPERIMENTS.md.)
  for (const auto& net : nn::paper_workloads()) {
    const auto env = baseline_env(net);
    const auto sweep = core::homogeneous_sweep(env);
    // Energy: monotone non-increasing with crossbar size.
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      EXPECT_LE(sweep[i].report.energy.total_nj(),
                sweep[i - 1].report.energy.total_nj() * (1 + 1e-9))
          << net.name << " size index " << i;
    }
    // Utilization: monotone decreasing from 64x64 upward, and the smallest
    // sizes beat the largest by a wide margin.
    for (std::size_t i = 2; i < sweep.size(); ++i) {
      EXPECT_LE(sweep[i].report.utilization,
                sweep[i - 1].report.utilization + 1e-9)
          << net.name << " size index " << i;
    }
    EXPECT_GT(sweep.front().report.utilization,
              sweep.back().report.utilization)
        << net.name;
  }
}

TEST(Integration, AutoHetAreaSmallestAmongAccelerators) {
  // Table 5 shape: AutoHet's area beats every homogeneous accelerator.
  const auto homo_env = baseline_env(nn::vgg16());
  const auto auto_env = paper_env(nn::vgg16());
  SearchConfig cfg;
  cfg.episodes = 120;
  cfg.seed = 4;
  const auto result = AutoHetSearch(auto_env, cfg).run();
  for (const auto& homo : core::homogeneous_sweep(homo_env)) {
    EXPECT_LT(result.best_report.area.total_um2(),
              homo.report.area.total_um2())
        << homo.name;
  }
}

}  // namespace
}  // namespace autohet
