// The DeploymentPlan IR: compile/validate semantics, bit-identity of every
// plan-consuming path against its legacy explicit-arguments path, and the
// byte-identical JSON round trip. These are the contract tests of the
// compile/deploy split (DESIGN.md, "Compile/deploy split"): replaying a
// saved plan must reproduce the search-time numbers exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "autohet/strategy.hpp"
#include "common/rng.hpp"
#include "mapping/plan.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "reram/eval_engine.hpp"
#include "reram/functional.hpp"
#include "reram/hardware_model.hpp"
#include "reram/pipeline.hpp"
#include "reram/scheduler.hpp"
#include "report/serialize.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;

// Heterogeneous per-layer shapes: cycle through the hybrid candidate set so
// every network exercises square and rectangular crossbars and (under
// tile sharing) the Algorithm 1 remapping.
std::vector<CrossbarShape> hetero_shapes(std::size_t layer_count) {
  const auto candidates = mapping::hybrid_candidates();
  std::vector<CrossbarShape> shapes;
  shapes.reserve(layer_count);
  for (std::size_t i = 0; i < layer_count; ++i) {
    shapes.push_back(candidates[i % candidates.size()]);
  }
  return shapes;
}

// Field-by-field exact equality: a replayed plan must reproduce the legacy
// path bit-for-bit, so every double compares with ==, not near.
void expect_reports_identical(const reram::NetworkReport& a,
                              const reram::NetworkReport& b) {
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    SCOPED_TRACE("layer " + std::to_string(i));
    const reram::LayerReport& x = a.layers[i];
    const reram::LayerReport& y = b.layers[i];
    EXPECT_EQ(x.shape, y.shape);
    EXPECT_EQ(x.logical_crossbars, y.logical_crossbars);
    EXPECT_EQ(x.adc_instances, y.adc_instances);
    EXPECT_EQ(x.tiles, y.tiles);
    EXPECT_EQ(x.mvm_invocations, y.mvm_invocations);
    EXPECT_EQ(x.utilization, y.utilization);
    EXPECT_EQ(x.energy.adc_nj, y.energy.adc_nj);
    EXPECT_EQ(x.energy.dac_nj, y.energy.dac_nj);
    EXPECT_EQ(x.energy.cell_nj, y.energy.cell_nj);
    EXPECT_EQ(x.energy.shift_add_nj, y.energy.shift_add_nj);
    EXPECT_EQ(x.energy.buffer_nj, y.energy.buffer_nj);
    EXPECT_EQ(x.latency_ns, y.latency_ns);
    EXPECT_EQ(x.fault_vulnerability, y.fault_vulnerability);
  }
  EXPECT_EQ(a.energy.adc_nj, b.energy.adc_nj);
  EXPECT_EQ(a.energy.dac_nj, b.energy.dac_nj);
  EXPECT_EQ(a.energy.cell_nj, b.energy.cell_nj);
  EXPECT_EQ(a.energy.shift_add_nj, b.energy.shift_add_nj);
  EXPECT_EQ(a.energy.buffer_nj, b.energy.buffer_nj);
  EXPECT_EQ(a.area.crossbar_um2, b.area.crossbar_um2);
  EXPECT_EQ(a.area.adc_um2, b.area.adc_um2);
  EXPECT_EQ(a.area.dac_um2, b.area.dac_um2);
  EXPECT_EQ(a.area.shift_add_um2, b.area.shift_add_um2);
  EXPECT_EQ(a.area.tile_overhead_um2, b.area.tile_overhead_um2);
  EXPECT_EQ(a.latency_ns, b.latency_ns);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.occupied_tiles, b.occupied_tiles);
  EXPECT_EQ(a.empty_crossbars, b.empty_crossbars);
  EXPECT_EQ(a.fault_vulnerability, b.fault_vulnerability);
}

reram::FaultConfig faulty_config() {
  reram::FaultConfig faults;
  faults.stuck_at_zero_rate = 0.01;
  faults.stuck_at_one_rate = 0.002;
  faults.program_sigma = 0.05;
  return faults;
}

TEST(DeploymentPlan, EvaluateMatchesEvaluateNetworkForAllZooNetworks) {
  for (const nn::NetworkSpec& net :
       {nn::lenet5(), nn::alexnet(), nn::vgg16(), nn::resnet152()}) {
    for (const bool tile_shared : {false, true}) {
      SCOPED_TRACE(net.name + (tile_shared ? " shared" : " based"));
      const auto layers = net.mappable_layers();
      const auto shapes = hetero_shapes(layers.size());
      reram::AcceleratorConfig accel;
      accel.tile_shared = tile_shared;

      const plan::DeploymentPlan p =
          plan::compile_plan(net.name, layers, shapes, accel);
      EXPECT_NO_THROW(p.validate());
      EXPECT_NO_THROW(p.validate_against(net));
      EXPECT_EQ(p.shapes(), shapes);

      expect_reports_identical(plan::evaluate_plan(p),
                               reram::evaluate_network(layers, shapes, accel));
    }
  }
}

TEST(DeploymentPlan, FaultVulnerabilityMatchesLegacyPath) {
  const nn::NetworkSpec net = nn::alexnet();
  const auto layers = net.mappable_layers();
  const auto shapes = hetero_shapes(layers.size());
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;
  accel.faults = faulty_config();

  const auto p = plan::compile_plan(net.name, layers, shapes, accel);
  const auto replayed = plan::evaluate_plan(p);
  const auto legacy = reram::evaluate_network(layers, shapes, accel);
  EXPECT_GT(replayed.fault_vulnerability, 0.0);
  expect_reports_identical(replayed, legacy);
}

TEST(DeploymentPlan, EngineEvaluateMatchesActionPath) {
  const nn::NetworkSpec net = nn::alexnet();
  const auto layers = net.mappable_layers();
  const auto candidates = mapping::hybrid_candidates();
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;
  const reram::EvaluationEngine engine(layers, candidates, accel);

  std::vector<std::size_t> actions;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    actions.push_back(i % candidates.size());
  }
  std::vector<CrossbarShape> shapes;
  for (std::size_t a : actions) shapes.push_back(candidates[a]);

  const auto p = plan::compile_plan(net.name, layers, shapes, accel);
  expect_reports_identical(engine.evaluate(p), engine.evaluate(actions));

  // The engine rejects plans compiled for a different accelerator or with
  // shapes outside its candidate set.
  reram::AcceleratorConfig other = accel;
  other.tile_shared = false;
  EXPECT_THROW(
      engine.evaluate(plan::compile_plan(net.name, layers, shapes, other)),
      std::invalid_argument);
  const std::vector<CrossbarShape> alien(layers.size(),
                                         CrossbarShape{48, 48});
  EXPECT_THROW(
      engine.evaluate(plan::compile_plan(net.name, layers, alien, accel)),
      std::invalid_argument);
}

TEST(DeploymentPlan, CompileFromStrategyChecksNetworkName) {
  const nn::NetworkSpec net = nn::lenet5();
  core::Strategy strategy;
  strategy.network = "lenet5";  // case-insensitive match against "LeNet5"
  strategy.shapes = hetero_shapes(net.mappable_layers().size());
  const reram::AcceleratorConfig accel;
  EXPECT_NO_THROW(plan::compile_plan(net, strategy, accel));

  strategy.network = "AlexNet";
  EXPECT_THROW(plan::compile_plan(net, strategy, accel),
               std::invalid_argument);
}

TEST(DeploymentPlan, ValidateRejectsTamperedPlans) {
  const nn::NetworkSpec net = nn::lenet5();
  const auto layers = net.mappable_layers();
  const auto shapes = hetero_shapes(layers.size());
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;
  const auto p = plan::compile_plan(net.name, layers, shapes, accel);

  {
    auto bad = p;
    bad.version = plan::kPlanVersion + 1;
    EXPECT_THROW(bad.validate(), std::invalid_argument);
  }
  {
    auto bad = p;
    bad.layers.pop_back();  // layer list out of sync with the allocation
    EXPECT_THROW(bad.validate(), std::invalid_argument);
  }
  {
    auto bad = p;
    bad.allocation.layers[0].mapping.row_blocks += 1;  // stale geometry
    EXPECT_THROW(bad.validate(), std::invalid_argument);
  }
  {
    auto bad = p;
    bad.accel.faults.program_sigma = 0.5;  // fingerprint now stale
    EXPECT_THROW(bad.validate(), std::invalid_argument);
  }
  {
    // A plan whose allocation really was remapped by Algorithm 1 (small FC
    // layers pack 4-to-a-tile, so two tiles drain) cannot have its
    // tile-sharing mode flipped after the fact.
    std::vector<nn::LayerSpec> small(6, nn::make_fc(40, 12));
    const std::vector<CrossbarShape> small_shapes(6, CrossbarShape{64, 64});
    auto shared = plan::compile_plan("toy", small, small_shapes, accel);
    ASSERT_FALSE(shared.allocation.remap.empty());
    shared.accel.tile_shared = false;  // remap table contradicts the mode
    EXPECT_THROW(shared.validate(), std::invalid_argument);
  }
  {
    auto bad = p;
    bad.allocation.tiles[0].empty_xbs += 1;  // crossbar conservation broken
    EXPECT_THROW(bad.validate(), std::invalid_argument);
  }
  // validate_against rejects a different network even when the plan itself
  // is internally consistent.
  EXPECT_THROW(p.validate_against(nn::alexnet()), std::invalid_argument);
}

TEST(DeploymentPlan, JsonRoundTripIsByteIdentical) {
  for (const bool tile_shared : {false, true}) {
    SCOPED_TRACE(tile_shared ? "shared" : "based");
    const nn::NetworkSpec net = nn::alexnet();
    const auto layers = net.mappable_layers();
    reram::AcceleratorConfig accel;
    accel.tile_shared = tile_shared;
    accel.faults = faulty_config();
    const auto p = plan::compile_plan(net.name, layers,
                                      hetero_shapes(layers.size()), accel);

    std::ostringstream first;
    report::write_plan_json(first, p);
    const plan::DeploymentPlan reread = report::read_plan_json(first.str());
    std::ostringstream second;
    report::write_plan_json(second, reread);
    EXPECT_EQ(first.str(), second.str());

    // The reread plan evaluates bit-identically to the original.
    expect_reports_identical(plan::evaluate_plan(reread),
                             plan::evaluate_plan(p));
  }
}

TEST(DeploymentPlan, ReadPlanJsonRejectsGarbage) {
  EXPECT_THROW(report::read_plan_json(""), std::invalid_argument);
  EXPECT_THROW(report::read_plan_json("{"), std::invalid_argument);
  EXPECT_THROW(report::read_plan_json("{\"format\": \"other\"}"),
               std::invalid_argument);
  EXPECT_THROW(report::read_plan_json("[1, 2]"), std::invalid_argument);
}

TEST(FormatDoubleJson, RoundTripsExactly) {
  for (const double v : {0.0, -0.0, 1.0, 0.1, 1.0 / 3.0, 1e-300, -2.5e17,
                         3.14159265358979323846, 1234567890.123456}) {
    const std::string text = report::format_double_json(v);
    const double parsed = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::signbit(parsed), std::signbit(v)) << text;
    EXPECT_EQ(parsed, v) << text;
  }
  EXPECT_EQ(report::format_double_json(0.5), "0.5");
  EXPECT_EQ(report::format_double_json(-0.0), "-0");
}

TEST(DeploymentPlan, FunctionalFabricMatchesShapeConstruction) {
  const nn::NetworkSpec net = nn::lenet5();
  const auto layers = net.mappable_layers();
  const auto shapes = hetero_shapes(layers.size());
  common::Rng weight_rng(7);
  const nn::Model model(net, weight_rng);

  for (const bool faulty : {false, true}) {
    SCOPED_TRACE(faulty ? "faulty" : "ideal");
    reram::AcceleratorConfig accel;
    accel.tile_shared = true;
    if (faulty) accel.faults = faulty_config();
    const auto p = plan::compile_plan(net.name, layers, shapes, accel);

    const reram::SimulatedModel legacy(model, shapes,
                                       reram::DatapathMode::kInteger,
                                       accel.faults);
    const reram::SimulatedModel from_plan(model, p);

    common::Rng img_rng(9);
    for (int s = 0; s < 3; ++s) {
      const auto img = nn::synthetic_image(img_rng, 1, 32, 32);
      const auto a = legacy.forward(img);
      const auto b = from_plan.forward(img);
      ASSERT_EQ(a.numel(), b.numel());
      for (std::int64_t i = 0; i < a.numel(); ++i) {
        EXPECT_EQ(a.data()[i], b.data()[i]) << "sample " << s << " logit "
                                            << i;
      }
    }
  }
}

TEST(DeploymentPlan, RobustnessMonteCarloMatchesShapePath) {
  const nn::NetworkSpec net = nn::lenet5();
  const auto layers = net.mappable_layers();
  const auto shapes = hetero_shapes(layers.size());
  common::Rng weight_rng(7);
  const nn::Model model(net, weight_rng);
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;
  accel.faults = faulty_config();
  const auto p = plan::compile_plan(net.name, layers, shapes, accel);

  reram::RobustnessOptions opts;
  opts.trials = 3;
  opts.samples = 2;
  const auto a = reram::monte_carlo_robustness(model, shapes, accel.faults,
                                               opts);
  const auto b = reram::monte_carlo_robustness(model, p, opts);
  EXPECT_EQ(a.mean_accuracy, b.mean_accuracy);
  EXPECT_EQ(a.stddev_accuracy, b.stddev_accuracy);
  EXPECT_EQ(a.mean_logit_error, b.mean_logit_error);
  ASSERT_EQ(a.layer_error.size(), b.layer_error.size());
  for (std::size_t i = 0; i < a.layer_error.size(); ++i) {
    EXPECT_EQ(a.layer_error[i], b.layer_error[i]);
  }
}

TEST(DeploymentPlan, PipelineAndSchedulerMatchLegacyOverloads) {
  const nn::NetworkSpec net = nn::lenet5();
  const auto layers = net.mappable_layers();
  const auto shapes = hetero_shapes(layers.size());
  const reram::AcceleratorConfig accel;
  const auto p = plan::compile_plan(net.name, layers, shapes, accel);

  const auto pipe_plan = reram::evaluate_pipeline(p);
  const auto pipe_legacy = reram::evaluate_pipeline(layers, shapes, accel);
  ASSERT_EQ(pipe_plan.stages.size(), pipe_legacy.stages.size());
  for (std::size_t i = 0; i < pipe_plan.stages.size(); ++i) {
    EXPECT_EQ(pipe_plan.stages[i].serial_latency_ns,
              pipe_legacy.stages[i].serial_latency_ns);
    EXPECT_EQ(pipe_plan.stages[i].interval_ns,
              pipe_legacy.stages[i].interval_ns);
  }
  EXPECT_EQ(pipe_plan.bottleneck_interval_ns,
            pipe_legacy.bottleneck_interval_ns);
  EXPECT_EQ(pipe_plan.fill_latency_ns, pipe_legacy.fill_latency_ns);

  const auto rep_plan = reram::balance_replication(p, 8);
  const auto rep_legacy =
      reram::balance_replication(layers, shapes, accel, 8);
  EXPECT_EQ(rep_plan, rep_legacy);
  const auto replicated_plan = reram::evaluate_pipeline(p, rep_plan);
  const auto replicated_legacy =
      reram::evaluate_pipeline(layers, shapes, accel, rep_legacy);
  EXPECT_EQ(replicated_plan.throughput_inferences_per_s,
            replicated_legacy.throughput_inferences_per_s);
  EXPECT_EQ(replicated_plan.total_extra_tiles,
            replicated_legacy.total_extra_tiles);

  const auto sched_plan = reram::schedule_batch(p, 3);
  const auto sched_legacy = reram::schedule_batch(layers, shapes, accel, 3);
  ASSERT_EQ(sched_plan.tasks.size(), sched_legacy.tasks.size());
  for (std::size_t t = 0; t < sched_plan.tasks.size(); ++t) {
    EXPECT_EQ(sched_plan.tasks[t].start_ns, sched_legacy.tasks[t].start_ns);
    EXPECT_EQ(sched_plan.tasks[t].finish_ns,
              sched_legacy.tasks[t].finish_ns);
  }
  EXPECT_EQ(sched_plan.makespan_ns, sched_legacy.makespan_ns);
}

TEST(DeploymentPlan, FaultFingerprintSeparatesConfigs) {
  const reram::FaultConfig ideal;
  EXPECT_EQ(plan::fault_fingerprint(ideal), plan::fault_fingerprint(ideal));
  EXPECT_NE(plan::fault_fingerprint(ideal),
            plan::fault_fingerprint(faulty_config()));
  reram::FaultConfig reseeded;
  reseeded.seed ^= 1;
  EXPECT_NE(plan::fault_fingerprint(ideal),
            plan::fault_fingerprint(reseeded));
}

}  // namespace
}  // namespace autohet
