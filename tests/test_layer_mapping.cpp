// Tests for the kernel-to-crossbar mapping geometry and Eq. 4, anchored on
// every worked example the paper gives.
#include <gtest/gtest.h>

#include "mapping/layer_mapping.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using mapping::LayerMapping;
using mapping::map_layer;
using mapping::utilization_eq4;

nn::LayerSpec conv(std::int64_t cin, std::int64_t cout, std::int64_t k) {
  return nn::make_conv(cin, cout, k, 1, k / 2, 32, 32);
}

// ---- Fig. 2: the paper's motivating example on a 32x32 crossbar ----

TEST(LayerMapping, Fig2Layer1Utilization) {
  // Layer 1: k=3, Cin=3, Cout=4 -> 10.5% on 32x32.
  const auto m = map_layer(conv(3, 4, 3), {32, 32});
  EXPECT_EQ(m.row_blocks, 1);
  EXPECT_EQ(m.col_blocks, 1);
  EXPECT_EQ(m.kernels_per_row_block, 3);  // floor(32/9)
  EXPECT_NEAR(m.utilization(), 108.0 / 1024.0, 1e-12);
  EXPECT_NEAR(m.utilization(), 0.105, 0.001);
}

TEST(LayerMapping, Fig2Layer2Utilization) {
  // Layer 2: k=1, Cin=32, Cout=20 -> 62.5% on 32x32.
  const auto m = map_layer(conv(32, 20, 1), {32, 32});
  EXPECT_EQ(m.logical_crossbars(), 1);
  EXPECT_NEAR(m.utilization(), 0.625, 1e-12);
}

// ---- Fig. 5: 128 kernels of 3x3x12 on 64x64 vs 128x128 ----

TEST(LayerMapping, Fig5SmallCrossbarSide) {
  const auto m = map_layer(conv(12, 128, 3), {64, 64});
  EXPECT_EQ(m.kernels_per_row_block, 7);  // floor(64/9)
  EXPECT_EQ(m.row_blocks, 2);             // ceil(12/7)
  EXPECT_EQ(m.col_blocks, 2);             // ceil(128/64)
  EXPECT_EQ(m.logical_crossbars(), 4);
  EXPECT_EQ(m.adc_count(), 256);          // paper: 256 activated ADCs
  EXPECT_NEAR(m.utilization(), 27.0 / 32.0, 1e-12);
}

TEST(LayerMapping, Fig5LargeCrossbarSide) {
  const auto m = map_layer(conv(12, 128, 3), {128, 128});
  EXPECT_EQ(m.kernels_per_row_block, 14);  // floor(128/9)
  EXPECT_EQ(m.row_blocks, 1);
  EXPECT_EQ(m.col_blocks, 1);
  EXPECT_EQ(m.adc_count(), 128);           // paper: 128 activated ADCs
  // Eq.4 (crossbar-internal) utilization equals the 64x64 case: the paper's
  // 27/128 figure for XB128 is tile-level — see the tile allocator test
  // TileLevel.Fig5Utilization.
  EXPECT_NEAR(m.utilization(), 27.0 / 32.0, 1e-12);
}

// ---- §3.3: VGG16 layer 4 on square vs rectangle crossbars ----

TEST(LayerMapping, Vgg16Layer4SquareVsRectangle) {
  const auto layer = conv(128, 128, 3);
  const auto square = map_layer(layer, {32, 32});
  EXPECT_NEAR(square.utilization(), 0.837, 0.001);  // paper: 83.7%
  const auto rect = map_layer(layer, {36, 32});
  EXPECT_DOUBLE_EQ(rect.utilization(), 1.0);        // paper: 100%
}

// ---- Eq. 4 direct evaluation ----

TEST(UtilizationEq4, MatchesMappingPath) {
  const auto layer = conv(37, 211, 3);
  for (const auto& shape : mapping::all_candidates()) {
    const auto m = map_layer(layer, shape);
    EXPECT_DOUBLE_EQ(
        m.utilization(),
        utilization_eq4(37, 3, 211, shape.rows, shape.cols))
        << shape.name();
  }
}

TEST(UtilizationEq4, FullyConnectedConvention) {
  // FC layers use k=1 and neuron counts as channels (paper §3.2/§3.3).
  const auto fc = nn::make_fc(4096, 1000);
  const auto m = map_layer(fc, {512, 512});
  EXPECT_DOUBLE_EQ(m.utilization(),
                   utilization_eq4(4096, 1, 1000, 512, 512));
  EXPECT_EQ(m.row_blocks, 8);   // ceil(4096/512)
  EXPECT_EQ(m.col_blocks, 2);   // ceil(1000/512)
}

TEST(UtilizationEq4, RejectsSplitKernelCase) {
  EXPECT_THROW(utilization_eq4(3, 7, 64, 32, 32), std::invalid_argument);
}

TEST(UtilizationEq4, PerfectFitIsOne) {
  // 4 kernels of 3x3 per row block, 32 cols: Cin=8, Cout=32 fits exactly
  // on 36x32.
  EXPECT_DOUBLE_EQ(utilization_eq4(8, 3, 32, 36, 32), 1.0);
}

// ---- split-kernel fallback ----

TEST(LayerMapping, SplitKernelFallbackWhenRowsTooShort) {
  // 7x7 kernel (49 rows per kernel) does not fit 32 rows.
  const auto layer = nn::make_conv(3, 64, 7, 2, 3, 224, 224);
  const auto m = map_layer(layer, {32, 32});
  EXPECT_TRUE(m.split_kernel);
  EXPECT_EQ(m.row_blocks, (3 * 49 + 31) / 32);
  EXPECT_EQ(m.col_blocks, 2);
  EXPECT_GT(m.utilization(), 0.0);
  EXPECT_LE(m.utilization(), 1.0);
}

TEST(LayerMapping, KernelAlignedWhenRowsSufficient) {
  const auto layer = nn::make_conv(3, 64, 7, 2, 3, 224, 224);
  const auto m = map_layer(layer, {64, 64});
  EXPECT_FALSE(m.split_kernel);
  EXPECT_EQ(m.kernels_per_row_block, 1);  // floor(64/49)
  EXPECT_EQ(m.row_blocks, 3);
}

// ---- properties over the candidate grid ----

struct MappingCase {
  std::int64_t cin, cout, k;
};

class MappingProperty
    : public ::testing::TestWithParam<std::tuple<MappingCase, int>> {};

TEST_P(MappingProperty, InvariantsHold) {
  const auto [c, shape_idx] = GetParam();
  const auto shapes = mapping::all_candidates();
  const auto shape = shapes[static_cast<std::size_t>(shape_idx)];
  const auto layer = nn::make_conv(c.cin, c.cout, c.k, 1, c.k / 2, 16, 16);
  const auto m = map_layer(layer, shape);

  // Utilization is a true fraction.
  EXPECT_GT(m.utilization(), 0.0);
  EXPECT_LE(m.utilization(), 1.0);
  // Allocated cells cover the weights.
  EXPECT_GE(m.total_cells(), m.useful_cells);
  // Useful cells match the layer.
  EXPECT_EQ(m.useful_cells, c.cin * c.k * c.k * c.cout);
  // Capacity check: the blocks can actually hold the kernels.
  if (!m.split_kernel) {
    EXPECT_GE(m.kernels_per_row_block * m.row_blocks, c.cin);
    EXPECT_GE(m.kernels_per_row_block * shape.rows / shape.rows, 0);
  } else {
    EXPECT_GE(m.row_blocks * shape.rows, c.cin * c.k * c.k);
  }
  EXPECT_GE(m.col_blocks * shape.cols, c.cout);
  // ADC count is one per bitline of each logical crossbar.
  EXPECT_EQ(m.adc_count(), m.logical_crossbars() * shape.cols);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MappingProperty,
    ::testing::Combine(
        ::testing::Values(MappingCase{1, 1, 1}, MappingCase{3, 64, 3},
                          MappingCase{64, 64, 3}, MappingCase{128, 128, 3},
                          MappingCase{512, 512, 3}, MappingCase{32, 20, 1},
                          MappingCase{2048, 1000, 1}, MappingCase{12, 128, 3},
                          MappingCase{100, 100, 5}, MappingCase{3, 64, 7},
                          MappingCase{7, 9, 2}, MappingCase{511, 513, 3}),
        ::testing::Range(0, 10)));

// Rectangle crossbars beat their square siblings on 3x3 layers whenever the
// layer's input channels fill whole row blocks (the regime §3.3 designs the
// multiples-of-9 heights for). With very small Cin the taller rectangle can
// strand more rows than the square, so the property is conditioned on
// cin % floor(rect_rows/9) == 0.
TEST(LayerMapping, RectangleBeatsSquareFor3x3Kernels) {
  const auto squares = mapping::square_candidates();
  const auto rects = mapping::rectangle_candidates();
  int checked = 0;
  for (std::int64_t cin : {16, 64, 128, 256, 512}) {
    for (std::int64_t cout : {64, 128, 256, 512}) {
      const auto layer = conv(cin, cout, 3);
      for (std::size_t i = 0; i < squares.size(); ++i) {
        const std::int64_t kpb_rect = rects[i].rows / 9;
        if (cin % kpb_rect != 0) continue;
        const double us = map_layer(layer, squares[i]).utilization();
        const double ur = map_layer(layer, rects[i]).utilization();
        EXPECT_GE(ur, us) << squares[i].name() << " vs " << rects[i].name()
                          << " cin=" << cin << " cout=" << cout;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 20);  // the condition must not vacuously pass
  // And in the full-row-block regime the rectangle fill is exact: the §3.3
  // example generalizes.
  EXPECT_DOUBLE_EQ(map_layer(conv(128, 128, 3), {36, 32}).utilization(), 1.0);
  EXPECT_DOUBLE_EQ(map_layer(conv(512, 512, 3), {72, 64}).utilization(), 1.0);
}

TEST(LayerMapping, RejectsPoolingLayers) {
  const auto pool = nn::make_maxpool(8, 2, 2, 16, 16);
  EXPECT_THROW(map_layer(pool, {32, 32}), std::invalid_argument);
}

}  // namespace
}  // namespace autohet
