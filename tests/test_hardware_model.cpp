// Behavioral hardware model: energy/area/latency accounting and the
// utilization-vs-energy conflict the paper's design hinges on (§2.2.3).
#include <gtest/gtest.h>

#include "mapping/layer_mapping.hpp"
#include "nn/model_zoo.hpp"
#include "reram/hardware_model.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::AcceleratorConfig;
using reram::evaluate_homogeneous;
using reram::evaluate_layer;
using reram::evaluate_network;

AcceleratorConfig default_config(bool shared = false) {
  AcceleratorConfig config;
  config.tile_shared = shared;
  return config;
}

TEST(DeviceParams, DefaultsValidate) {
  reram::DeviceParams p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.bit_planes(), 8);
  EXPECT_EQ(p.input_cycles(), 8);
  p.cell_bits = 3;  // 8 % 3 != 0
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.cell_bits = 1;
  p.input_bits = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(EvaluateLayer, Fig5TradeoffSmallVsLargeCrossbar) {
  // The paper's Fig. 5 layer: 128 kernels of 3x3x12. The 64x64 mapping has
  // higher utilization; the 128x128 mapping activates fewer ADCs and burns
  // less energy.
  const auto layer = nn::make_conv(12, 128, 3, 1, 1, 16, 16);
  const reram::DeviceParams params;
  const auto small = evaluate_layer(layer, mapping::map_layer(layer, {64, 64}),
                                    1, params);
  const auto large = evaluate_layer(
      layer, mapping::map_layer(layer, {128, 128}), 1, params);
  EXPECT_EQ(small.adc_instances, 256);
  EXPECT_EQ(large.adc_instances, 128);
  // Two row blocks on 64x64 means every output column converts twice.
  EXPECT_NEAR(small.energy.adc_nj / large.energy.adc_nj, 2.0, 1e-9);
  EXPECT_GT(small.energy.total_nj(), large.energy.total_nj());
  // Tile-level utilization (4 XBs/tile): 27/32 vs 27/128 as in Fig. 5.
  const auto small_net = evaluate_homogeneous({layer}, {64, 64},
                                              default_config());
  const auto large_net = evaluate_homogeneous({layer}, {128, 128},
                                              default_config());
  EXPECT_NEAR(small_net.utilization, 27.0 / 32.0, 1e-12);
  EXPECT_NEAR(large_net.utilization, 27.0 / 128.0, 1e-12);
  EXPECT_GT(small_net.utilization, large_net.utilization);
}

TEST(EvaluateLayer, EnergyScalesWithMvmCount) {
  const auto small_map = nn::make_conv(16, 32, 3, 1, 1, 8, 8);    // 64 MVMs
  const auto large_map = nn::make_conv(16, 32, 3, 1, 1, 16, 16);  // 256 MVMs
  const reram::DeviceParams params;
  const auto e_small = evaluate_layer(
      small_map, mapping::map_layer(small_map, {64, 64}), 1, params);
  const auto e_large = evaluate_layer(
      large_map, mapping::map_layer(large_map, {64, 64}), 1, params);
  EXPECT_NEAR(e_large.energy.adc_nj / e_small.energy.adc_nj, 4.0, 1e-9);
  EXPECT_NEAR(e_large.latency_ns / e_small.latency_ns, 4.0, 1e-9);
}

TEST(EvaluateLayer, AdcEnergyDominates) {
  // ADC energy should be the dominant component (the premise behind the
  // small-crossbar energy penalty, §2.2.3 / ISAAC).
  const auto layer = nn::make_conv(64, 128, 3, 1, 1, 16, 16);
  const reram::DeviceParams params;
  const auto r =
      evaluate_layer(layer, mapping::map_layer(layer, {64, 64}), 1, params);
  EXPECT_GT(r.energy.adc_nj, 0.5 * r.energy.total_nj());
}

TEST(EvaluateLayer, RejectsPoolingLayers) {
  const auto pool = nn::make_maxpool(8, 2, 2, 16, 16);
  const reram::DeviceParams params;
  const auto conv = nn::make_conv(8, 8, 3, 1, 1, 16, 16);
  const auto m = mapping::map_layer(conv, {64, 64});
  EXPECT_THROW(evaluate_layer(pool, m, 1, params), std::invalid_argument);
}

TEST(EvaluateNetwork, UtilizationEnergyConflictAcrossSizes) {
  // Homogeneous sweep on VGG16: the smallest crossbar must win utilization
  // and the largest must win energy (Fig. 3 / Fig. 9 shape).
  const auto layers = nn::vgg16().mappable_layers();
  const auto config = default_config();
  const auto small = evaluate_homogeneous(layers, {32, 32}, config);
  const auto large = evaluate_homogeneous(layers, {512, 512}, config);
  EXPECT_GT(small.utilization, large.utilization);
  EXPECT_GT(small.energy.total_nj(), large.energy.total_nj());
  // RUE is well-defined and positive.
  EXPECT_GT(small.rue(), 0.0);
  EXPECT_GT(large.rue(), 0.0);
}

TEST(EvaluateNetwork, AreaDecreasesWithCrossbarSize) {
  // Table 5 shape: area monotonically decreases from SXB32 to SXB512
  // (ADC-count dominated).
  const auto layers = nn::vgg16().mappable_layers();
  const auto config = default_config();
  double prev = 1e300;
  for (const auto& shape : mapping::square_candidates()) {
    const auto r = evaluate_homogeneous(layers, shape, config);
    EXPECT_LT(r.area.total_um2(), prev) << shape.name();
    prev = r.area.total_um2();
  }
}

TEST(EvaluateNetwork, EnergyIsSumOfLayerEnergies) {
  const auto layers = nn::alexnet().mappable_layers();
  const auto config = default_config();
  const auto r = evaluate_homogeneous(layers, {128, 128}, config);
  reram::EnergyBreakdown sum;
  for (const auto& lr : r.layers) sum += lr.energy;
  EXPECT_NEAR(sum.total_nj(), r.energy.total_nj(), 1e-6);
  ASSERT_EQ(r.layers.size(), layers.size());
}

TEST(EvaluateNetwork, TileSharingReducesTilesAndRaisesUtilization) {
  const auto layers = nn::vgg16().mappable_layers();
  const auto base = evaluate_homogeneous(layers, {64, 64}, default_config());
  const auto shared =
      evaluate_homogeneous(layers, {64, 64}, default_config(true));
  EXPECT_LE(shared.occupied_tiles, base.occupied_tiles);
  EXPECT_GE(shared.utilization, base.utilization);
  // Per-MVM dynamic energy is unchanged by sharing (same mapping geometry).
  EXPECT_NEAR(shared.energy.total_nj(), base.energy.total_nj(), 1e-6);
  // Area shrinks via the tile-overhead term.
  EXPECT_LE(shared.area.total_um2(), base.area.total_um2());
}

TEST(EvaluateNetwork, HeterogeneousMixesShapesPerLayer) {
  const auto layers = nn::alexnet().mappable_layers();
  std::vector<CrossbarShape> shapes(layers.size(), CrossbarShape{64, 64});
  shapes.back() = {512, 512};
  const auto r = evaluate_network(layers, shapes, default_config());
  EXPECT_EQ(r.layers.back().shape, (CrossbarShape{512, 512}));
  EXPECT_EQ(r.layers.front().shape, (CrossbarShape{64, 64}));
}

TEST(EvaluateNetwork, ValidatesInputLengths) {
  const auto layers = nn::alexnet().mappable_layers();
  const std::vector<CrossbarShape> wrong(3, CrossbarShape{64, 64});
  EXPECT_THROW(evaluate_network(layers, wrong, default_config()),
               std::invalid_argument);
}

TEST(EvaluateNetwork, RectangleCrossbarsCutEnergyOn3x3Models) {
  // §4.3: RXBs reduce ADC work for 3x3-kernel stacks. Compare 64x64 vs
  // 72x64 homogeneous on VGG16: same column count, fewer row blocks.
  const auto layers = nn::vgg16().mappable_layers();
  const auto square = evaluate_homogeneous(layers, {64, 64}, default_config());
  const auto rect = evaluate_homogeneous(layers, {72, 64}, default_config());
  EXPECT_LT(rect.energy.total_nj(), square.energy.total_nj());
  EXPECT_GE(rect.utilization, square.utilization);
  EXPECT_GT(rect.rue(), square.rue());
}

TEST(NetworkReport, RueDefinition) {
  reram::NetworkReport r;
  r.utilization = 0.5;
  r.energy.adc_nj = 1000.0;
  EXPECT_DOUBLE_EQ(r.rue(), 50.0 / 1000.0);
  reram::NetworkReport zero;
  EXPECT_EQ(zero.rue(), 0.0);
}

TEST(EvaluateNetwork, LatencyWithinSaneBandAcrossSizes) {
  // Table 5 shape: latency varies within a modest band (~±35%) across the
  // homogeneous sizes rather than exploding for any of them.
  const auto layers = nn::vgg16().mappable_layers();
  double lo = 1e300, hi = 0.0;
  for (const auto& shape : mapping::square_candidates()) {
    const auto r = evaluate_homogeneous(layers, shape, default_config());
    lo = std::min(lo, r.latency_ns);
    hi = std::max(hi, r.latency_ns);
  }
  EXPECT_LT(hi / lo, 1.6);
}

}  // namespace
}  // namespace autohet
