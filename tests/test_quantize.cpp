#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "nn/quantize.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using tensor::Tensor;

TEST(QuantizeWeights, RoundTripErrorBounded) {
  common::Rng rng(1);
  Tensor t({64, 27});
  t.fill_normal(rng, 0.0f, 1.0f);
  const auto q = nn::quantize_weights(t, 8);
  const Tensor back = nn::dequantize(q);
  // Max error is half a quantization step.
  const float step = q.scale;
  EXPECT_LT(tensor::max_abs_diff(t, back), step * 0.5f + 1e-6f);
}

TEST(QuantizeWeights, SymmetricRange) {
  Tensor t({3});
  t[0] = -2.0f;
  t[1] = 0.0f;
  t[2] = 2.0f;
  const auto q = nn::quantize_weights(t, 8);
  EXPECT_EQ(q.values[0], -127);
  EXPECT_EQ(q.values[1], 0);
  EXPECT_EQ(q.values[2], 127);
  EXPECT_FLOAT_EQ(q.scale, 2.0f / 127.0f);
}

TEST(QuantizeWeights, AllZerosUsesUnitScale) {
  Tensor t({5});
  const auto q = nn::quantize_weights(t, 8);
  EXPECT_FLOAT_EQ(q.scale, 1.0f);
  for (auto v : q.values) EXPECT_EQ(v, 0);
}

TEST(QuantizeWeights, LowerBitWidths) {
  common::Rng rng(2);
  Tensor t({100});
  t.fill_uniform(rng, -1.0f, 1.0f);
  for (int bits : {2, 4, 6, 8}) {
    const auto q = nn::quantize_weights(t, bits);
    const int qmax = (1 << (bits - 1)) - 1;
    for (auto v : q.values) {
      EXPECT_GE(v, -qmax);
      EXPECT_LE(v, qmax);
    }
  }
  EXPECT_THROW(nn::quantize_weights(t, 1), std::invalid_argument);
  EXPECT_THROW(nn::quantize_weights(t, 9), std::invalid_argument);
}

TEST(QuantizeActivations, UnsignedRangeAndRoundTrip) {
  common::Rng rng(3);
  Tensor t({200});
  t.fill_uniform(rng, 0.0f, 5.0f);
  const auto q = nn::quantize_activations(t, 8);
  const Tensor back = nn::dequantize(q);
  EXPECT_LT(tensor::max_abs_diff(t, back), q.scale * 0.5f + 1e-6f);
  for (auto v : q.values) EXPECT_LE(v, 255);
}

TEST(QuantizeActivations, RejectsNegatives) {
  Tensor t({2});
  t[0] = -0.1f;
  EXPECT_THROW(nn::quantize_activations(t, 8), std::invalid_argument);
}

TEST(QuantizeActivations, MaxValueHitsFullScale) {
  Tensor t({2});
  t[0] = 0.0f;
  t[1] = 10.0f;
  const auto q = nn::quantize_activations(t, 8);
  EXPECT_EQ(q.values[0], 0);
  EXPECT_EQ(q.values[1], 255);
}

TEST(ActivationBitPlane, ReconstructsValues) {
  common::Rng rng(4);
  Tensor t({64});
  t.fill_uniform(rng, 0.0f, 1.0f);
  const auto q = nn::quantize_activations(t, 8);
  for (std::size_t i = 0; i < q.values.size(); ++i) {
    unsigned reconstructed = 0;
    for (int b = 0; b < 8; ++b) {
      const auto plane = nn::activation_bit_plane(q, b);
      reconstructed |= static_cast<unsigned>(plane[i]) << b;
    }
    EXPECT_EQ(reconstructed, q.values[i]);
  }
}

TEST(ActivationBitPlane, RejectsOutOfRangeBit) {
  Tensor t({1});
  t[0] = 1.0f;
  const auto q = nn::quantize_activations(t, 8);
  EXPECT_THROW(nn::activation_bit_plane(q, 8), std::invalid_argument);
  EXPECT_THROW(nn::activation_bit_plane(q, -1), std::invalid_argument);
}

TEST(QuantizeWeights, PreservesShapeMetadata) {
  Tensor t({4, 3, 2, 2});
  t.fill(0.5f);
  const auto q = nn::quantize_weights(t, 8);
  EXPECT_EQ(q.shape, t.shape());
  EXPECT_EQ(q.numel(), t.numel());
  const Tensor back = nn::dequantize(q);
  EXPECT_EQ(back.shape(), t.shape());
}

}  // namespace
}  // namespace autohet
