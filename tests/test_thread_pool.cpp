#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace autohet {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  common::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  common::ThreadPool pool(2);
  pool.wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  common::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  common::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(5, 5, [&](std::size_t) { counter.fetch_add(1); });
  pool.parallel_for(7, 3, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPool, ParallelForNonZeroBegin) {
  common::ThreadPool pool(2);
  std::vector<int> data(20, 0);
  pool.parallel_for(5, 15, [&](std::size_t i) { data[i] = 1; });
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], (i >= 5 && i < 15) ? 1 : 0) << i;
  }
}

TEST(ThreadPool, SingleWorkerStillCompletes) {
  common::ThreadPool pool(1);
  std::atomic<long> sum{0};
  pool.parallel_for(0, 1000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 999L * 1000 / 2);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  common::ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(0, 50, [&](std::size_t) { counter.fetch_add(1); });
  }
  EXPECT_EQ(counter.load(), 250);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  common::ThreadPool pool(6);
  EXPECT_EQ(pool.size(), 6u);
  common::ThreadPool defaulted(0);
  EXPECT_GE(defaulted.size(), 1u);
}

TEST(ThreadPool, NestedParallelForCompletes) {
  // A pool task fanning out on its own pool must not deadlock even when
  // every worker is already busy: each parallel_for's caller drains its own
  // items. Exercised with more outer items than workers.
  common::ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 8, [&](std::size_t) {
    pool.parallel_for(0, 16, [&](std::size_t) { counter.fetch_add(1); });
  });
  EXPECT_EQ(counter.load(), 8 * 16);
}

TEST(ThreadPool, DeeplyNestedParallelForCompletes) {
  common::ThreadPool pool(3);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 4, [&](std::size_t) {
      pool.parallel_for(0, 4, [&](std::size_t) { counter.fetch_add(1); });
    });
  });
  EXPECT_EQ(counter.load(), 4 * 4 * 4);
}

TEST(ThreadPool, ConcurrentParallelForCallsAreIndependent) {
  // Several external threads driving parallel_for on one shared pool at
  // once: per-call completion tracking must keep each call's join exact
  // (the pool-global in_flight_ count would intermix them).
  common::ThreadPool pool(2);
  constexpr int kCallers = 4;
  constexpr int kItems = 200;
  std::vector<std::atomic<int>> counts(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(0, kItems, [&, c](std::size_t) {
        counts[static_cast<std::size_t>(c)].fetch_add(1);
      });
      // parallel_for returned, so THIS caller's items are all done — even
      // while the other callers are still running theirs.
      EXPECT_EQ(counts[static_cast<std::size_t>(c)].load(), kItems);
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(counts[static_cast<std::size_t>(c)].load(), kItems);
  }
}

TEST(ThreadPool, DestructorJoinsWithPendingWork) {
  std::atomic<int> counter{0};
  {
    common::ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    // Destructor must drain the queue (stop only fires after queue empty).
  }
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace autohet
