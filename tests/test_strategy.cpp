#include <gtest/gtest.h>

#include "autohet/strategy.hpp"

namespace autohet {
namespace {

using core::Strategy;
using core::strategy_from_actions;
using mapping::CrossbarShape;

TEST(Strategy, RoundTripsThroughText) {
  Strategy s;
  s.network = "VGG16";
  s.shapes = {{288, 256}, {576, 512}, {32, 32}};
  const std::string text = s.to_text();
  const Strategy parsed = Strategy::from_text(text);
  EXPECT_EQ(parsed, s);
}

TEST(Strategy, TextFormatMatchesFig6) {
  Strategy s;
  s.network = "AlexNet";
  s.shapes = {{32, 32}, {36, 32}};
  EXPECT_EQ(s.to_text(),
            "autohet-strategy v1\n"
            "network: AlexNet\nL1: 32x32\nL2: 36x32\n");
}

TEST(Strategy, VersionHeaderIsOptionalOnInput) {
  // Pre-versioning files (no header) still parse...
  const Strategy bare =
      Strategy::from_text("network: AlexNet\nL1: 32x32\n");
  EXPECT_EQ(bare.network, "AlexNet");
  // ...and parse identically to the versioned form.
  const Strategy versioned = Strategy::from_text(
      "autohet-strategy v1\nnetwork: AlexNet\nL1: 32x32\n");
  EXPECT_EQ(bare, versioned);
  // Comments before the version line are fine.
  EXPECT_EQ(Strategy::from_text("# comment\nautohet-strategy v1\n"
                                "network: AlexNet\nL1: 32x32\n"),
            versioned);
}

TEST(Strategy, RejectsUnsupportedOrMalformedVersion) {
  EXPECT_THROW(
      Strategy::from_text("autohet-strategy v2\nnetwork: X\nL1: 32x32\n"),
      std::invalid_argument);
  EXPECT_THROW(
      Strategy::from_text("autohet-strategy\nnetwork: X\nL1: 32x32\n"),
      std::invalid_argument);
  EXPECT_THROW(
      Strategy::from_text("autohet-strategy vX\nnetwork: X\nL1: 32x32\n"),
      std::invalid_argument);
  // The version line only counts before the header.
  EXPECT_THROW(
      Strategy::from_text("network: X\nautohet-strategy v1\nL1: 32x32\n"),
      std::invalid_argument);
}

TEST(Strategy, ErrorsNameTheLine) {
  try {
    Strategy::from_text("autohet-strategy v1\nnetwork: X\nL1: 32y32\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
  try {
    Strategy::from_text("network: X\nL1: 32x32\nL3: 32x32\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(Strategy, ParsesCommentsAndWhitespace) {
  const std::string text =
      "# produced by the RL search\n"
      "network:  LeNet5 \n"
      "\n"
      "L1:  36x32\n"
      "  L2: 128x128 \n";
  const Strategy parsed = Strategy::from_text(text);
  EXPECT_EQ(parsed.network, "LeNet5");
  ASSERT_EQ(parsed.shapes.size(), 2u);
  EXPECT_EQ(parsed.shapes[0], (CrossbarShape{36, 32}));
  EXPECT_EQ(parsed.shapes[1], (CrossbarShape{128, 128}));
}

TEST(Strategy, RejectsMalformedInput) {
  EXPECT_THROW(Strategy::from_text(""), std::invalid_argument);
  EXPECT_THROW(Strategy::from_text("L1: 32x32\n"), std::invalid_argument);
  EXPECT_THROW(Strategy::from_text("network: X\n"), std::invalid_argument);
  EXPECT_THROW(Strategy::from_text("network: X\nL2: 32x32\n"),
               std::invalid_argument);  // out-of-order layer id
  EXPECT_THROW(Strategy::from_text("network: X\nL1: 32y32\n"),
               std::invalid_argument);
  EXPECT_THROW(Strategy::from_text("network: X\nL1: -4x32\n"),
               std::invalid_argument);
  EXPECT_THROW(Strategy::from_text("network: X\nL1: 32x\n"),
               std::invalid_argument);
  EXPECT_THROW(Strategy::from_text("network: X\nL1 32x32\n"),
               std::invalid_argument);
  EXPECT_THROW(Strategy::from_text("network: X\nL1: 32x32extra\n"),
               std::invalid_argument);
}

TEST(Strategy, FromActionsResolvesCandidates) {
  const std::vector<CrossbarShape> candidates = {
      {32, 32}, {36, 32}, {576, 512}};
  const Strategy s =
      strategy_from_actions("toy", candidates, {2, 0, 1, 2});
  ASSERT_EQ(s.shapes.size(), 4u);
  EXPECT_EQ(s.shapes[0], (CrossbarShape{576, 512}));
  EXPECT_EQ(s.shapes[1], (CrossbarShape{32, 32}));
  EXPECT_THROW(strategy_from_actions("toy", candidates, {3}),
               std::invalid_argument);
}

TEST(Strategy, LongStrategyRoundTrip) {
  Strategy s;
  s.network = "ResNet152";
  for (int i = 0; i < 156; ++i) {
    s.shapes.push_back(i % 2 ? CrossbarShape{288, 256}
                             : CrossbarShape{72, 64});
  }
  EXPECT_EQ(Strategy::from_text(s.to_text()), s);
}

}  // namespace
}  // namespace autohet
