// Equivalence suite for the fast functional-simulation engine: packed
// bit-plane kernels vs the retained scalar datapaths, the batched integer
// GEMM kernel vs per-column MVMs, the fast fault burn-in vs the per-cell
// reference, the record/replay trial-fabric path, and byte-identity of the
// Monte-Carlo robustness reports across thread counts, kernel policies, and
// the TrialFabricCache. Everything here is an exactness claim — EXPECT_EQ,
// never near.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "reram/crossbar.hpp"
#include "reram/faults.hpp"
#include "reram/functional.hpp"
#include "reram/kernels/kernels.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::FaultConfig;
using reram::FaultMapStats;
using reram::FaultModel;
using reram::KernelPolicy;
using reram::LogicalCrossbar;
using reram::RobustnessOptions;
using reram::RobustnessReport;
using reram::SimulatedModel;

std::vector<std::int8_t> random_weights(common::Rng& rng, std::int64_t n) {
  std::vector<std::int8_t> w(static_cast<std::size_t>(n));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return w;
}

std::vector<std::uint8_t> random_input(common::Rng& rng, std::int64_t n,
                                       double zero_fraction = 0.25) {
  std::vector<std::uint8_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) {
    v = rng.uniform() < zero_fraction
            ? std::uint8_t{0}
            : static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  return x;
}

void expect_stats_eq(const FaultMapStats& a, const FaultMapStats& b) {
  EXPECT_EQ(a.physical_cells, b.physical_cells);
  EXPECT_EQ(a.stuck_at_zero, b.stuck_at_zero);
  EXPECT_EQ(a.stuck_at_one, b.stuck_at_one);
  EXPECT_EQ(a.weights_changed, b.weights_changed);
}

bool reports_equal(const RobustnessReport& a, const RobustnessReport& b) {
  return a.trials == b.trials && a.samples == b.samples &&
         a.mean_accuracy == b.mean_accuracy &&
         a.stddev_accuracy == b.stddev_accuracy &&
         a.min_accuracy == b.min_accuracy && a.max_accuracy == b.max_accuracy &&
         a.mean_logit_error == b.mean_logit_error &&
         a.layer_error == b.layer_error &&
         a.fault_stats.physical_cells == b.fault_stats.physical_cells &&
         a.fault_stats.stuck_at_zero == b.fault_stats.stuck_at_zero &&
         a.fault_stats.stuck_at_one == b.fault_stats.stuck_at_one &&
         a.fault_stats.weights_changed == b.fault_stats.weights_changed;
}

// ---------------------------------------------------------------------------
// Packed kernels vs retained scalar datapaths.

struct KernelCase {
  CrossbarShape shape;
  std::int64_t rows, cols;  ///< programmed (used) region, possibly ragged
};

TEST(PackedKernels, MatchScalarOnRaggedShapes) {
  common::Rng rng(123);
  const KernelCase cases[] = {{{64, 64}, 64, 64},   {{72, 64}, 25, 6},
                              {{128, 96}, 100, 96}, {{65, 33}, 65, 33},
                              {{300, 40}, 123, 17}, {{64, 64}, 1, 1}};
  for (const auto& c : cases) {
    LogicalCrossbar xb(c.shape);
    xb.program(random_weights(rng, c.rows * c.cols), c.rows, c.cols);
    ASSERT_TRUE(xb.is_packed());
    const auto x = random_input(rng, c.rows);
    EXPECT_EQ(xb.mvm_bit_serial(x), xb.mvm_bit_serial_scalar(x));
    EXPECT_EQ(xb.mvm_reference(x), xb.mvm_reference_scalar(x));
    EXPECT_EQ(xb.mvm_bit_serial(x), xb.mvm_reference_scalar(x));
    for (const int bits : {1, 2, 4, 8}) {
      EXPECT_EQ(xb.mvm_multilevel(x, bits), xb.mvm_multilevel_scalar(x, bits));
      EXPECT_EQ(xb.mvm_multilevel(x, bits), xb.mvm_reference_scalar(x));
    }
  }
}

TEST(PackedKernels, MatchScalarAfterFaultBurnAndVariation) {
  common::Rng rng(7);
  LogicalCrossbar xb({96, 80});
  xb.program(random_weights(rng, 90 * 70), 90, 70);
  FaultConfig fc;
  fc.stuck_at_zero_rate = 0.01;
  fc.stuck_at_one_rate = 0.01;
  fc.program_sigma = 0.05;
  fc.cell_bits = 2;
  xb.apply_faults(FaultModel(fc), /*crossbar_id=*/3);
  common::Rng vr(11);
  xb.apply_variation(vr, 0.02);
  const auto x = random_input(rng, 90);
  EXPECT_EQ(xb.mvm_bit_serial(x), xb.mvm_bit_serial_scalar(x));
  EXPECT_EQ(xb.mvm_reference(x), xb.mvm_reference_scalar(x));
  EXPECT_EQ(xb.mvm_multilevel(x, 2), xb.mvm_multilevel_scalar(x, 2));
  EXPECT_EQ(xb.mvm_multilevel(x, 2), xb.mvm_reference(x));
}

TEST(PackedKernels, BatchedReferenceMatchesPerColumn) {
  common::Rng rng(42);
  const KernelCase cases[] = {
      {{72, 64}, 25, 6}, {{64, 64}, 64, 64}, {{130, 48}, 130, 31}};
  for (const auto& c : cases) {
    LogicalCrossbar xb(c.shape);
    xb.program(random_weights(rng, c.rows * c.cols), c.rows, c.cols);
    const std::int64_t batch = 13;
    // Transposed input matrix: row i of the batch at cols_t[i*batch ..].
    std::vector<std::uint8_t> cols_t(
        static_cast<std::size_t>(c.rows * batch));
    for (auto& v : cols_t) {
      v = rng.uniform() < 0.3
              ? std::uint8_t{0}
              : static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    std::vector<std::int32_t> acc_t(static_cast<std::size_t>(c.cols * batch),
                                    0);
    xb.mvm_reference_batch_accum(cols_t.data(), batch, acc_t.data());
    for (std::int64_t p = 0; p < batch; ++p) {
      std::vector<std::uint8_t> column(static_cast<std::size_t>(c.rows));
      for (std::int64_t i = 0; i < c.rows; ++i) {
        column[static_cast<std::size_t>(i)] =
            cols_t[static_cast<std::size_t>(i * batch + p)];
      }
      const auto expected = xb.mvm_reference(column);
      for (std::int64_t j = 0; j < c.cols; ++j) {
        EXPECT_EQ(acc_t[static_cast<std::size_t>(j * batch + p)],
                  expected[static_cast<std::size_t>(j)])
            << "col " << j << " batch " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch variants: every compiled-and-supported ISA variant must agree
// with the scalar oracle on randomized ragged shapes (tails that are not a
// multiple of 64 rows exercise the masked/partial word paths). Variants the
// host cannot run are skipped, not silently passed.

namespace rk = reram::kernels;

class KernelVariantTest : public ::testing::TestWithParam<rk::Variant> {
 protected:
  void SetUp() override {
    if (!rk::supported(GetParam())) {
      GTEST_SKIP() << "variant " << rk::variant_name(GetParam())
                   << " not compiled in or not supported by this CPU";
    }
    previous_ = rk::active_variant();
    rk::set_variant(GetParam());
  }
  void TearDown() override {
    if (!IsSkipped()) rk::set_variant(previous_);
  }

 private:
  rk::Variant previous_ = rk::Variant::kPortable;
};

TEST_P(KernelVariantTest, RandomRaggedShapesMatchScalar) {
  common::Rng rng(0xbeef ^ static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 12; ++trial) {
    // Rows straddle the 64-bit word boundaries: 1..320 hits every tail
    // length; cols stay small enough to keep the scalar oracle cheap.
    const auto rows = static_cast<std::int64_t>(rng.uniform_int(1, 320));
    const auto cols = static_cast<std::int64_t>(rng.uniform_int(1, 96));
    const CrossbarShape shape{
        rows + static_cast<std::int64_t>(rng.uniform_int(0, 40)),
        cols + static_cast<std::int64_t>(rng.uniform_int(0, 24))};
    LogicalCrossbar xb(shape);
    xb.program(random_weights(rng, rows * cols), rows, cols);
    ASSERT_TRUE(xb.is_packed());
    const auto x = random_input(rng, rows);
    EXPECT_EQ(xb.mvm_bit_serial(x), xb.mvm_bit_serial_scalar(x))
        << "rows=" << rows << " cols=" << cols;
    EXPECT_EQ(xb.mvm_reference(x), xb.mvm_reference_scalar(x))
        << "rows=" << rows << " cols=" << cols;
    for (const int bits : {1, 2, 4, 8}) {
      EXPECT_EQ(xb.mvm_multilevel(x, bits), xb.mvm_multilevel_scalar(x, bits))
          << "rows=" << rows << " cols=" << cols << " bits=" << bits;
    }
  }
}

TEST_P(KernelVariantTest, BatchedPackedMatchesPerColumn) {
  common::Rng rng(0xcafe ^ static_cast<std::uint64_t>(GetParam()));
  const KernelCase cases[] = {
      {{72, 64}, 25, 6}, {{64, 64}, 64, 64}, {{130, 48}, 130, 31},
      {{300, 40}, 257, 17}};
  rk::KernelScratch scratch;  // reused across cases: growth-only contract
  for (const auto& c : cases) {
    LogicalCrossbar xb(c.shape);
    xb.program(random_weights(rng, c.rows * c.cols), c.rows, c.cols);
    ASSERT_TRUE(xb.is_packed());
    const std::int64_t batch = 7;
    std::vector<std::uint8_t> cols_t(static_cast<std::size_t>(c.rows * batch));
    for (auto& v : cols_t) {
      v = rng.uniform() < 0.3
              ? std::uint8_t{0}
              : static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    std::vector<std::int32_t> bs_t(static_cast<std::size_t>(c.cols * batch),
                                   0);
    std::vector<std::int32_t> ml_t(static_cast<std::size_t>(c.cols * batch),
                                   0);
    xb.mvm_bit_serial_batch_accum(cols_t.data(), batch, bs_t.data(), scratch);
    xb.mvm_multilevel_batch_accum(cols_t.data(), batch, /*cell_bits=*/2,
                                  ml_t.data(), scratch);
    for (std::int64_t p = 0; p < batch; ++p) {
      std::vector<std::uint8_t> column(static_cast<std::size_t>(c.rows));
      for (std::int64_t i = 0; i < c.rows; ++i) {
        column[static_cast<std::size_t>(i)] =
            cols_t[static_cast<std::size_t>(i * batch + p)];
      }
      const auto expected_bs = xb.mvm_bit_serial(column);
      const auto expected_ml = xb.mvm_multilevel(column, 2);
      for (std::int64_t j = 0; j < c.cols; ++j) {
        EXPECT_EQ(bs_t[static_cast<std::size_t>(j * batch + p)],
                  expected_bs[static_cast<std::size_t>(j)])
            << "bit-serial col " << j << " batch " << p;
        EXPECT_EQ(ml_t[static_cast<std::size_t>(j * batch + p)],
                  expected_ml[static_cast<std::size_t>(j)])
            << "multilevel col " << j << " batch " << p;
      }
    }
  }
}

TEST_P(KernelVariantTest, ForwardMatchesScalarReference) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  common::Rng ir(4);
  const nn::LayerSpec& first = net.layers.front();
  const tensor::Tensor image = nn::synthetic_image(
      ir, first.in_channels, first.in_height, first.in_width);
  for (const auto mode :
       {reram::DatapathMode::kInteger, reram::DatapathMode::kBitSerial}) {
    const SimulatedModel fast(model, shapes, mode);
    const SimulatedModel scalar(model, shapes, mode, {},
                                KernelPolicy::kScalarReference);
    const tensor::Tensor a = fast.forward(image);
    const tensor::Tensor b = scalar.forward(image);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "mode " << static_cast<int>(mode);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllVariants, KernelVariantTest,
                         ::testing::Values(rk::Variant::kPortable,
                                           rk::Variant::kAvx2,
                                           rk::Variant::kAvx512),
                         [](const auto& param_info) {
                           return std::string(
                               rk::variant_name(param_info.param));
                         });

TEST(KernelDispatch, SupportedVariantsListsPortableFirst) {
  const auto variants = rk::supported_variants();
  ASSERT_FALSE(variants.empty());
  EXPECT_EQ(variants.front(), rk::Variant::kPortable);
  for (const rk::Variant v : variants) EXPECT_TRUE(rk::supported(v));
}

TEST(KernelDispatch, VariantNamesRoundTrip) {
  for (int i = 0; i < rk::kVariantCount; ++i) {
    const auto v = static_cast<rk::Variant>(i);
    rk::Variant parsed;
    ASSERT_TRUE(rk::variant_from_name(rk::variant_name(v), &parsed));
    EXPECT_EQ(parsed, v);
  }
  rk::Variant parsed;
  EXPECT_FALSE(rk::variant_from_name("neon", &parsed));
  EXPECT_FALSE(rk::variant_from_name("", &parsed));
}

TEST(KernelScratch, BuffersGrowMonotonicallyAndAreReusable) {
  rk::KernelScratch scratch;
  std::uint64_t* p64 = scratch.input_planes(64);
  std::memset(p64, 0, 64 * sizeof(std::uint64_t));
  // A smaller request must not shrink or move the buffer.
  EXPECT_EQ(scratch.input_planes(16), p64);
  std::uint8_t* c = scratch.column(100);
  EXPECT_EQ(scratch.column(50), c);
  std::int32_t* a = scratch.accs_t(32);
  EXPECT_EQ(scratch.accs_t(32), a);
  std::int64_t* t = scratch.sample_terms(9);
  EXPECT_EQ(scratch.sample_terms(4), t);
  // Distinct buffer families never alias.
  EXPECT_NE(static_cast<void*>(scratch.column(8)),
            static_cast<void*>(scratch.columns_t(8)));
}

// ---------------------------------------------------------------------------
// Fast fault burn-in vs the per-cell reference implementation.

TEST(FaultBurnIn, FastApplyMatchesReference) {
  const std::int64_t rows = 60, cols = 52;
  FaultConfig configs[4];
  configs[0].stuck_at_zero_rate = 0.01;  // stuck-only
  configs[0].stuck_at_one_rate = 0.005;
  configs[1].program_sigma = 0.3;  // heavy variation-only
  configs[2].stuck_at_zero_rate = 0.002;  // both, multi-level
  configs[2].stuck_at_one_rate = 0.002;
  configs[2].program_sigma = 0.01;
  configs[3].stuck_at_zero_rate = 0.004;  // drift forces reference dispatch
  configs[3].program_sigma = 0.02;
  configs[3].drift_time_s = 1e5;
  configs[3].drift_nu = 0.05;
  for (FaultConfig fc : configs) {
    for (const int bits : {1, 2, 4, 8}) {
      fc.cell_bits = bits;
      fc.seed = 0x1234 + static_cast<std::uint64_t>(bits);
      const FaultModel model(fc);
      common::Rng wrng(99);
      const auto original = random_weights(wrng, rows * cols);
      auto fast = original;
      auto ref = original;
      const FaultMapStats fast_stats =
          model.apply(fast, rows, cols, cols, /*crossbar_id=*/17);
      const FaultMapStats ref_stats =
          model.apply_reference(ref, rows, cols, cols, /*crossbar_id=*/17);
      EXPECT_EQ(fast, ref) << "bits=" << bits;
      expect_stats_eq(fast_stats, ref_stats);
    }
  }
}

TEST(FaultBurnIn, RecordReplayMatchesDirectBurnAcrossRates) {
  const std::int64_t rows = 48, cols = 40;
  FaultConfig rec_fc;
  rec_fc.stuck_at_zero_rate = 5e-3;
  rec_fc.stuck_at_one_rate = 5e-3;
  rec_fc.program_sigma = 0.01;
  rec_fc.cell_bits = 2;
  rec_fc.seed = 77;
  const FaultModel rec_model(rec_fc);
  ASSERT_TRUE(rec_model.record_eligible());
  common::Rng wrng(5);
  const auto original = random_weights(wrng, rows * cols);
  auto post_var = original;
  std::vector<reram::StuckCandidate> hits;
  const FaultMapStats var_stats = rec_model.apply_recording(
      post_var, rows, cols, cols, /*crossbar_id=*/9, hits);
  // The recorded stream replays exactly for every nonzero rate pair: the
  // thresholds move, the draw stream does not.
  const double rate_pairs[][2] = {
      {1e-4, 1e-4}, {5e-3, 5e-3}, {1e-2, 0.0}, {0.0, 1e-2}, {2e-2, 3e-2}};
  for (const auto& rates : rate_pairs) {
    FaultConfig fc = rec_fc;
    fc.stuck_at_zero_rate = rates[0];
    fc.stuck_at_one_rate = rates[1];
    const FaultModel model(fc);
    auto direct = original;
    const FaultMapStats direct_stats =
        model.apply(direct, rows, cols, cols, /*crossbar_id=*/9);
    auto replayed = post_var;
    const FaultMapStats delta =
        model.replay_stuck(replayed, cols, cols, hits);
    EXPECT_EQ(replayed, direct)
        << "rates " << rates[0] << "/" << rates[1];
    EXPECT_EQ(var_stats.physical_cells + delta.physical_cells,
              direct_stats.physical_cells);
    EXPECT_EQ(var_stats.stuck_at_zero + delta.stuck_at_zero,
              direct_stats.stuck_at_zero);
    EXPECT_EQ(var_stats.stuck_at_one + delta.stuck_at_one,
              direct_stats.stuck_at_one);
    EXPECT_EQ(var_stats.weights_changed + delta.weights_changed,
              direct_stats.weights_changed);
  }
}

// ---------------------------------------------------------------------------
// Whole-fabric equivalence: fast kernels vs the scalar-reference policy.

TEST(SimulatedModelKernels, FastForwardMatchesScalarReference) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const auto mappable = net.mappable_layers();
  const std::vector<CrossbarShape> shapes(mappable.size(), {72, 64});
  FaultConfig fc;
  fc.stuck_at_zero_rate = 5e-4;
  fc.stuck_at_one_rate = 5e-4;
  fc.program_sigma = 0.01;
  fc.cell_bits = 2;
  common::Rng ir(4);
  const nn::LayerSpec& first = net.layers.front();
  const tensor::Tensor image =
      nn::synthetic_image(ir, first.in_channels, first.in_height,
                          first.in_width);
  for (const auto mode :
       {reram::DatapathMode::kInteger, reram::DatapathMode::kBitSerial}) {
    const SimulatedModel fast(model, shapes, mode, fc);
    const SimulatedModel scalar(model, shapes, mode, fc,
                                KernelPolicy::kScalarReference);
    const tensor::Tensor a = fast.forward(image);
    const tensor::Tensor b = scalar.forward(image);
    ASSERT_EQ(a.numel(), b.numel());
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      EXPECT_EQ(a[i], b[i]) << "mode " << static_cast<int>(mode);
    }
  }
}

// ---------------------------------------------------------------------------
// Monte-Carlo byte-identity: thread counts, kernel policy, fabric cache.

RobustnessOptions small_mc() {
  RobustnessOptions mc;
  mc.trials = 3;
  mc.samples = 4;
  return mc;
}

TEST(MonteCarloIdentity, ThreadCountInvariance) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  FaultConfig fc;
  fc.stuck_at_zero_rate = 1e-3;
  fc.stuck_at_one_rate = 1e-3;
  fc.program_sigma = 0.01;
  RobustnessOptions mc = small_mc();
  mc.threads = 1;
  const auto serial = reram::monte_carlo_robustness(model, shapes, fc, mc);
  for (const int threads : {2, 8}) {
    mc.threads = threads;
    const auto parallel =
        reram::monte_carlo_robustness(model, shapes, fc, mc);
    EXPECT_TRUE(reports_equal(serial, parallel)) << threads << " threads";
  }
}

TEST(MonteCarloIdentity, ScalarReferencePolicyInvariance) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  FaultConfig fc;
  fc.stuck_at_zero_rate = 2e-3;
  fc.stuck_at_one_rate = 0.0;
  fc.program_sigma = 0.02;
  fc.cell_bits = 4;
  RobustnessOptions mc = small_mc();
  const auto fast = reram::monte_carlo_robustness(model, shapes, fc, mc);
  mc.kernels = KernelPolicy::kScalarReference;
  const auto scalar = reram::monte_carlo_robustness(model, shapes, fc, mc);
  EXPECT_TRUE(reports_equal(fast, scalar));
}

TEST(MonteCarloIdentity, TrialFabricCacheInvariance) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  reram::TrialFabricCache cache;
  for (const int bits : {1, 4}) {
    for (const double rate : {0.0, 1e-4, 5e-3}) {
      FaultConfig fc;
      fc.stuck_at_zero_rate = rate / 2;
      fc.stuck_at_one_rate = rate / 2;
      fc.program_sigma = 0.01;
      fc.cell_bits = bits;
      RobustnessOptions mc = small_mc();
      mc.cache = &cache;
      const auto cached = reram::monte_carlo_robustness(model, shapes, fc, mc);
      mc.cache = nullptr;
      const auto uncached =
          reram::monte_carlo_robustness(model, shapes, fc, mc);
      EXPECT_TRUE(reports_equal(cached, uncached))
          << "bits=" << bits << " rate=" << rate;
    }
  }
  // The sweep shape guarantees the cache actually recorded and replayed:
  // per cell_bits, 3 trials record at the first nonzero rate and replay at
  // the second; the rate-0 points bypass (their draw stream differs).
  const auto stats = cache.stats();
  EXPECT_EQ(stats.trial_records, 6u);
  EXPECT_EQ(stats.trial_replays, 6u);
  EXPECT_GT(stats.ideal_hits, 0u);
}

TEST(MonteCarloIdentity, ReadNoiseThreadInvariance) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  FaultConfig fc;
  fc.read_sigma = 0.05;
  fc.program_sigma = 0.01;
  RobustnessOptions mc = small_mc();
  mc.threads = 1;
  const auto serial = reram::monte_carlo_robustness(model, shapes, fc, mc);
  mc.threads = 4;
  const auto parallel = reram::monte_carlo_robustness(model, shapes, fc, mc);
  EXPECT_TRUE(reports_equal(serial, parallel));
}

TEST(SimulatedModelKernels, PooledForwardMatchesSerial) {
  // Intra-forward parallelism (FC row blocks + conv position tiles) must be
  // bit-identical to the serial pass: integer partials reassociate exactly,
  // and the read-noise streams are keyed by position, not execution order.
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  common::Rng ir(4);
  const nn::LayerSpec& first = net.layers.front();
  const tensor::Tensor image = nn::synthetic_image(
      ir, first.in_channels, first.in_height, first.in_width);
  FaultConfig noisy;
  noisy.read_sigma = 0.05;
  noisy.program_sigma = 0.01;
  common::ThreadPool pool(4);
  struct Case {
    reram::DatapathMode mode;
    FaultConfig faults;
  };
  const Case cases[] = {{reram::DatapathMode::kInteger, {}},
                        {reram::DatapathMode::kBitSerial, {}},
                        {reram::DatapathMode::kInteger, noisy}};
  for (const auto& c : cases) {
    const SimulatedModel fabric(model, shapes, c.mode, c.faults);
    const tensor::Tensor serial = fabric.forward(image, /*noise_stream=*/3);
    const tensor::Tensor pooled =
        fabric.forward(image, /*noise_stream=*/3, &pool);
    ASSERT_EQ(serial.numel(), pooled.numel());
    for (std::int64_t i = 0; i < serial.numel(); ++i) {
      EXPECT_EQ(serial[i], pooled[i])
          << "mode " << static_cast<int>(c.mode) << " i " << i;
    }
  }
}

TEST(SimulatedModelKernels, BatchedTracedForwardMatchesPerSample) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  common::Rng ir(4);
  const nn::LayerSpec& first = net.layers.front();
  std::vector<tensor::Tensor> images;
  for (int s = 0; s < 5; ++s) {
    images.push_back(nn::synthetic_image(ir, first.in_channels,
                                         first.in_height, first.in_width));
  }
  FaultConfig noisy;
  noisy.read_sigma = 0.05;
  FaultConfig stuck;
  stuck.stuck_at_zero_rate = 1e-3;
  stuck.stuck_at_one_rate = 1e-3;
  stuck.program_sigma = 0.01;
  struct Case {
    reram::DatapathMode mode;
    FaultConfig faults;
  };
  // Noise-free cases take the batched-FC fast path; the read-noisy case
  // exercises the per-sample fallback with per-sample noise streams.
  const Case cases[] = {{reram::DatapathMode::kInteger, {}},
                        {reram::DatapathMode::kBitSerial, {}},
                        {reram::DatapathMode::kInteger, stuck},
                        {reram::DatapathMode::kInteger, noisy}};
  for (const auto& c : cases) {
    const SimulatedModel fabric(model, shapes, c.mode, c.faults);
    const std::uint64_t stream0 = 11;
    const auto batched = fabric.forward_traced_batch(images, stream0);
    ASSERT_EQ(batched.size(), images.size());
    for (std::size_t s = 0; s < images.size(); ++s) {
      const auto single = fabric.forward_traced(
          images[s], stream0 + static_cast<std::uint64_t>(s));
      ASSERT_EQ(batched[s].output.numel(), single.output.numel());
      for (std::int64_t i = 0; i < single.output.numel(); ++i) {
        EXPECT_EQ(batched[s].output[i], single.output[i])
            << "mode " << static_cast<int>(c.mode) << " sample " << s;
      }
      ASSERT_EQ(batched[s].mappable_outputs.size(),
                single.mappable_outputs.size());
      for (std::size_t l = 0; l < single.mappable_outputs.size(); ++l) {
        EXPECT_EQ(tensor::max_abs_diff(batched[s].mappable_outputs[l],
                                       single.mappable_outputs[l]),
                  0.0f)
            << "mode " << static_cast<int>(c.mode) << " sample " << s
            << " layer " << l;
      }
    }
  }
}

TEST(MonteCarloIdentity, SingleTrialThreadInvariance) {
  // One trial, many threads: the (trial, sample-chunk) fan-out plus the
  // intra-forward split must still reproduce the serial report exactly.
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  FaultConfig fc;
  fc.stuck_at_zero_rate = 1e-3;
  fc.stuck_at_one_rate = 1e-3;
  fc.program_sigma = 0.01;
  RobustnessOptions mc;
  mc.trials = 1;
  mc.samples = 6;
  mc.threads = 1;
  const auto serial = reram::monte_carlo_robustness(model, shapes, fc, mc);
  mc.threads = 4;
  const auto parallel = reram::monte_carlo_robustness(model, shapes, fc, mc);
  EXPECT_TRUE(reports_equal(serial, parallel));
  // A single sample still goes through the pool (intra-forward split only).
  mc.samples = 1;
  mc.threads = 1;
  const auto serial1 = reram::monte_carlo_robustness(model, shapes, fc, mc);
  mc.threads = 4;
  const auto parallel1 = reram::monte_carlo_robustness(model, shapes, fc, mc);
  EXPECT_TRUE(reports_equal(serial1, parallel1));
}

TEST(MonteCarloIdentity, ExternalPoolInvariance) {
  // A caller-owned pool (the EvaluationEngine path) must not change the
  // report relative to the internally created pool or the serial run.
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  FaultConfig fc;
  fc.stuck_at_zero_rate = 1e-3;
  fc.stuck_at_one_rate = 0.0;
  fc.program_sigma = 0.02;
  RobustnessOptions mc = small_mc();
  mc.threads = 1;
  const auto serial = reram::monte_carlo_robustness(model, shapes, fc, mc);
  common::ThreadPool pool(3);
  mc.threads = 2;  // gates the parallel path; the pool's size wins
  mc.pool = &pool;
  const auto pooled = reram::monte_carlo_robustness(model, shapes, fc, mc);
  EXPECT_TRUE(reports_equal(serial, pooled));
}

TEST(SimulatedModelKernels, ConcurrentForwardsAreDeterministic) {
  // Shared const fabric, concurrent forwards with per-call noise streams —
  // the race TSan hunts for; results must equal the serial run exactly.
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          {72, 64});
  FaultConfig fc;
  fc.read_sigma = 0.05;
  fc.program_sigma = 0.01;
  const SimulatedModel fabric(model, shapes, reram::DatapathMode::kInteger,
                              fc);
  common::Rng ir(4);
  const nn::LayerSpec& first = net.layers.front();
  const tensor::Tensor image =
      nn::synthetic_image(ir, first.in_channels, first.in_height,
                          first.in_width);
  constexpr int kStreams = 4;
  std::vector<tensor::Tensor> serial;
  for (int s = 0; s < kStreams; ++s) {
    serial.push_back(fabric.forward(image, static_cast<std::uint64_t>(s)));
  }
  std::vector<tensor::Tensor> concurrent(kStreams);
  {
    std::vector<std::thread> workers;
    for (int s = 0; s < kStreams; ++s) {
      workers.emplace_back([&, s] {
        concurrent[static_cast<std::size_t>(s)] =
            fabric.forward(image, static_cast<std::uint64_t>(s));
      });
    }
    for (auto& t : workers) t.join();
  }
  for (int s = 0; s < kStreams; ++s) {
    const auto& a = serial[static_cast<std::size_t>(s)];
    const auto& b = concurrent[static_cast<std::size_t>(s)];
    ASSERT_EQ(a.numel(), b.numel());
    for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

}  // namespace
}  // namespace autohet
