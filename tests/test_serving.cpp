// Tests for the multi-tenant serving layer (src/serve/): residency under
// swap pressure (LRU/LFU victim choice, tile budgets, bit-identical
// re-programming), the discrete-event simulator's batching/latency/energy
// accounting, determinism of the serving report across runs and thread
// counts, and the profiler join (swap counts vs recorded events).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "mapping/plan.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "obs/profile.hpp"
#include "reram/functional.hpp"
#include "serve/serialize.hpp"
#include "serve/simulator.hpp"
#include "tensor/ops.hpp"

namespace {

using namespace autohet;

/// LeNet5 compiled under `name` with uniform 72x64 crossbars. Using a
/// distinct name per instance keeps the multi-model footprint bookkeeping
/// honest when several copies share one fabric.
plan::DeploymentPlan lenet_plan(const std::string& name = "lenet5") {
  const auto net = nn::lenet5();
  const auto layers = net.mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {72, 64});
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;
  return plan::compile_plan(name, layers, shapes, accel);
}

std::vector<plan::DeploymentPlan> named_plans(int count) {
  std::vector<plan::DeploymentPlan> plans;
  for (int m = 0; m < count; ++m) {
    plans.push_back(lenet_plan("tenant" + std::to_string(m)));
  }
  return plans;
}

/// A hand-written trace: one request per (model, arrival) pair, in order.
serve::TrafficTrace manual_trace(
    std::int64_t num_models,
    const std::vector<std::pair<std::int64_t, double>>& arrivals) {
  serve::TrafficTrace trace;
  trace.num_models = num_models;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    trace.requests.push_back({static_cast<std::int64_t>(i),
                              arrivals[i].first, arrivals[i].second});
  }
  return trace;
}

serve::TrafficTrace generated_trace(std::int64_t num_models,
                                    double duration_s = 0.2) {
  // ~1000 qps keeps LeNet5 comfortably under saturation, so queues drain
  // and the popularity flips between models actually reach the fabric
  // (an overloaded head queue would monopolize the accelerator instead).
  serve::TrafficConfig config;
  config.seed = 7;
  config.duration_s = duration_s;
  config.mean_qps = 1000.0;
  config.profile = serve::RateProfile::kBursty;
  return serve::generate_trace(config, num_models);
}

// -------------------------------------------------------------- residency --

TEST(ServingFabric, ColdLoadCountsAsSwapIn) {
  serve::FabricConfig config;
  serve::ServingFabric fabric(named_plans(2), config);
  EXPECT_FALSE(fabric.resident(0));
  const serve::AdmitResult first = fabric.admit(0);
  EXPECT_TRUE(first.swapped_in);
  EXPECT_TRUE(first.evicted.empty());
  EXPECT_GT(first.program_latency_ns, 0.0);
  EXPECT_GT(first.program_energy_nj, 0.0);
  EXPECT_TRUE(fabric.resident(0));
  EXPECT_EQ(fabric.swap_in_count(0), 1);

  // Resident hits are free.
  const serve::AdmitResult again = fabric.admit(0);
  EXPECT_FALSE(again.swapped_in);
  EXPECT_EQ(again.program_latency_ns, 0.0);
  EXPECT_EQ(fabric.swap_in_count(0), 1);

  // Unbounded budget: the second model joins without evicting anyone.
  const serve::AdmitResult second = fabric.admit(1);
  EXPECT_TRUE(second.swapped_in);
  EXPECT_TRUE(second.evicted.empty());
  EXPECT_EQ(fabric.resident_models(),
            (std::vector<std::int64_t>{0, 1}));
}

TEST(ServingFabric, ProgramCostMatchesProgrammingModel) {
  serve::FabricConfig config;
  serve::ServingFabric fabric(named_plans(1), config);
  const reram::ProgrammingReport expected = reram::evaluate_programming(
      fabric.model_plan(0).allocation, fabric.model_plan(0).accel.device,
      config.programming, fabric.model_plan(0).accel.faults);
  const serve::AdmitResult result = fabric.admit(0);
  EXPECT_EQ(result.program_latency_ns, expected.latency_ns);
  EXPECT_EQ(result.program_energy_nj, expected.energy_nj);
}

TEST(ServingFabric, RejectsBudgetSmallerThanOneModel) {
  serve::FabricConfig config;
  config.tile_capacity = 1;
  EXPECT_THROW(serve::ServingFabric(named_plans(1), config),
               std::invalid_argument);
}

TEST(ServingFabric, LruEvictsLeastRecentlyUsed) {
  // Budget exactly two identical models (sharing off => additive
  // footprints), three tenants competing.
  serve::FabricConfig config;
  config.scope = mapping::SharingScope::kNone;
  serve::ServingFabric probe(named_plans(3), config);
  config.tile_capacity = 2 * probe.standalone_tiles(0);

  serve::ServingFabric fabric(named_plans(3), config);
  fabric.admit(0);
  fabric.admit(1);
  fabric.admit(0);  // 1 is now the least recently used
  const serve::AdmitResult result = fabric.admit(2);
  EXPECT_TRUE(result.swapped_in);
  EXPECT_EQ(result.evicted, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(fabric.resident_models(),
            (std::vector<std::int64_t>{0, 2}));
  EXPECT_EQ(fabric.eviction_count(1), 1);
  EXPECT_LE(fabric.resident_tiles(), config.tile_capacity);
}

TEST(ServingFabric, LfuEvictsLeastFrequentlyUsed) {
  serve::FabricConfig config;
  config.scope = mapping::SharingScope::kNone;
  config.eviction = serve::EvictionPolicy::kLfu;
  serve::ServingFabric probe(named_plans(3), config);
  config.tile_capacity = 2 * probe.standalone_tiles(0);

  serve::ServingFabric fabric(named_plans(3), config);
  fabric.admit(0);
  fabric.admit(0);
  fabric.admit(1);  // used once, while 0 was used twice
  const serve::AdmitResult result = fabric.admit(2);
  EXPECT_EQ(result.evicted, (std::vector<std::int64_t>{1}));
  EXPECT_EQ(fabric.resident_models(),
            (std::vector<std::int64_t>{0, 2}));
}

TEST(ServingFabric, CrossModelSharingShrinksResidentFootprint) {
  // The whole point of co-residency on a tile-shared fabric: two models
  // packed together must not cost more than the sum of their standalone
  // footprints (and with cross-model sharing they typically cost less).
  serve::FabricConfig config;
  serve::ServingFabric fabric(named_plans(2), config);
  fabric.admit(0);
  fabric.admit(1);
  EXPECT_LE(fabric.resident_tiles(),
            fabric.standalone_tiles(0) + fabric.standalone_tiles(1));
}

TEST(ServingFabric, ReprogrammedModelMatchesFreshFabricBitForBit) {
  // Functional mode under a one-model budget: 0 is programmed, evicted by
  // 1, then re-programmed. Its outputs must equal both its pre-eviction
  // outputs and a fresh compile_plan fabric, exactly.
  const auto net = nn::lenet5();
  const auto layers = net.mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {72, 64});
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;
  std::vector<plan::DeploymentPlan> plans;
  plans.push_back(plan::compile_plan(net.name, layers, shapes, accel));
  plans.push_back(plan::compile_plan(net.name, layers, shapes, accel));

  serve::FabricConfig config;
  config.functional = true;
  config.scope = mapping::SharingScope::kNone;
  serve::ServingFabric probe(plans, config);
  config.tile_capacity = probe.standalone_tiles(0);

  serve::ServingFabric fabric(plans, config);
  common::Rng img_rng(4);
  const nn::LayerSpec& input = net.layers.front();
  const tensor::Tensor image = nn::synthetic_image(
      img_rng, input.in_channels, input.in_height, input.in_width);

  fabric.admit(0);
  ASSERT_NE(fabric.resident_fabric(0), nullptr);
  const tensor::Tensor before = fabric.resident_fabric(0)->forward(image);

  const serve::AdmitResult evicting = fabric.admit(1);
  EXPECT_EQ(evicting.evicted, (std::vector<std::int64_t>{0}));
  EXPECT_EQ(fabric.resident_fabric(0), nullptr);

  const serve::AdmitResult back = fabric.admit(0);
  EXPECT_TRUE(back.swapped_in);
  ASSERT_NE(fabric.resident_fabric(0), nullptr);
  const tensor::Tensor after = fabric.resident_fabric(0)->forward(image);
  EXPECT_EQ(tensor::max_abs_diff(before, after), 0.0f);

  ASSERT_NE(fabric.model_weights(0), nullptr);
  const reram::SimulatedModel fresh(*fabric.model_weights(0),
                                    fabric.model_plan(0));
  EXPECT_EQ(tensor::max_abs_diff(fresh.forward(image), after), 0.0f);
}

// -------------------------------------------------------------- batching --

TEST(ServingSim, FullBatchesDispatchImmediately) {
  serve::ServingFabric fabric(named_plans(1), {});
  serve::BatchingConfig batching;
  batching.max_batch = 4;
  batching.max_wait_ns = 1e12;  // never time out: only fullness dispatches
  const serve::TrafficTrace trace = manual_trace(
      1, {{0, 0.0}, {0, 0.0}, {0, 0.0}, {0, 0.0},
          {0, 0.0}, {0, 0.0}, {0, 0.0}, {0, 0.0}});
  const serve::ServingReport report =
      serve::simulate(fabric, batching, trace);
  EXPECT_EQ(report.total_requests, 8);
  EXPECT_EQ(report.total_batches, 2);
  EXPECT_DOUBLE_EQ(report.mean_batch, 4.0);
  EXPECT_EQ(report.models[0].requests, 8);
  // Depth is sampled per simulated instant: the 8 arrivals and the first
  // pickup share t=0, so the observed peak is the 4 left waiting.
  EXPECT_EQ(report.peak_queue_depth, 4);
}

TEST(ServingSim, MaxWaitFlushesPartialBatches) {
  serve::ServingFabric fabric(named_plans(1), {});
  serve::BatchingConfig batching;
  batching.max_batch = 8;
  batching.max_wait_ns = 1000.0;
  // Two requests far apart: each times out alone.
  const serve::TrafficTrace trace = manual_trace(1, {{0, 0.0}, {0, 1e9}});
  const serve::ServingReport report =
      serve::simulate(fabric, batching, trace);
  EXPECT_EQ(report.total_batches, 2);
  EXPECT_DOUBLE_EQ(report.mean_batch, 1.0);
}

TEST(ServingSim, OverloadedDispatchDoesNotStarveHighIndexModels) {
  // Regression: when several models are ready the moment the accelerator
  // frees up, their dispatch times all tie and the tie used to break by
  // lowest model index — under sustained overload from model 0, model 1's
  // lone request would sit queued until model 0's queue fully drained.
  // The tie now breaks by oldest head-of-queue arrival, so model 1 is
  // served as soon as its request is the oldest one waiting.
  serve::ServingFabric fabric(named_plans(2), {});
  serve::BatchingConfig batching;
  batching.max_batch = 4;
  batching.max_wait_ns = 1.0;  // every queue is always dispatch-ready
  // 40 model-0 requests starting at t=0, 1ns apart, with model 1's lone
  // request landing mid-flood at t=5: everything is queued long before the
  // first batch finishes, so model 0's queue never empties until the very
  // end of the simulation. Arrivals must stay time-sorted in the trace.
  std::vector<std::pair<std::int64_t, double>> arrivals;
  for (int i = 0; i < 5; ++i) arrivals.push_back({0, 1.0 * i});
  arrivals.push_back({1, 5.0});
  for (int i = 6; i < 41; ++i) arrivals.push_back({0, 1.0 * i});
  const serve::ServingReport report =
      serve::simulate(fabric, batching, manual_trace(2, arrivals));

  // Every request completes, including the would-be-starved one.
  EXPECT_EQ(report.total_requests, 41);
  EXPECT_EQ(report.models[1].requests, 1);
  EXPECT_EQ(report.models[1].batches, 1);
  // Model 1's request drains early (it is the oldest head after the first
  // model-0 batch dispatches), instead of finishing dead last behind all
  // ten model-0 batches as the index tie-break forced.
  EXPECT_LT(report.models[1].latency.max_ms,
            report.models[0].latency.p50_ms);
}

TEST(ServingSim, LatencyIncludesQueueingAndProgramming) {
  // Second model's first batch pays its swap-in programming latency; every
  // latency is at least the batch-1 compute time.
  serve::ServingFabric fabric(named_plans(2), {});
  serve::BatchingConfig batching;
  batching.max_batch = 1;
  const serve::TrafficTrace trace = manual_trace(2, {{0, 0.0}, {1, 0.0}});
  const serve::ServingReport report =
      serve::simulate(fabric, batching, trace);
  const double compute_ms = fabric.model_report(0).latency_ns / 1e6;
  const double program_ms = fabric.program_cost(0).latency_ns / 1e6;
  EXPECT_GE(report.models[0].latency.p50_ms, compute_ms);
  // Model 1 waited for model 0's batch and paid its own programming.
  EXPECT_GE(report.models[1].latency.p50_ms, compute_ms + program_ms);
  EXPECT_EQ(report.swap_ins, 2);
}

// ------------------------------------------------- accounting + percentiles --

TEST(ServingSim, PercentilesAreNearestRank) {
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 50.0), 50.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 95.0), 95.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 99.0), 99.0);
  EXPECT_DOUBLE_EQ(serve::percentile(sorted, 100.0), 100.0);
  EXPECT_DOUBLE_EQ(serve::percentile({3.5}, 99.0), 3.5);
  EXPECT_DOUBLE_EQ(serve::percentile({}, 50.0), 0.0);

  const serve::LatencySummary summary =
      serve::summarize_latencies({4.0, 1.0, 3.0, 2.0});
  EXPECT_DOUBLE_EQ(summary.p50_ms, 2.0);
  EXPECT_DOUBLE_EQ(summary.max_ms, 4.0);
  EXPECT_DOUBLE_EQ(summary.mean_ms, 2.5);
}

TEST(ServingSim, EnergyConservationAndLatencyOrdering) {
  serve::FabricConfig config;
  config.scope = mapping::SharingScope::kNone;
  serve::ServingFabric probe(named_plans(2), config);
  config.tile_capacity = probe.standalone_tiles(0);  // one resident at a time

  serve::ServingFabric fabric(named_plans(2), config);
  const serve::ServingReport report =
      serve::simulate(fabric, {}, generated_trace(2));
  ASSERT_GT(report.total_requests, 0);
  EXPECT_GT(report.sustained_qps, 0.0);
  EXPECT_GT(report.swap_ins, 2);  // the tight budget forces re-programming

  EXPECT_LE(report.latency.p50_ms, report.latency.p95_ms);
  EXPECT_LE(report.latency.p95_ms, report.latency.p99_ms);
  EXPECT_LE(report.latency.p99_ms, report.latency.max_ms);

  // Exact conservation: inference is the index-ordered per-model sum, the
  // total is inference + programming — reproducible from the JSON.
  double inference = 0.0;
  std::int64_t requests = 0;
  for (const serve::ModelServingStats& m : report.models) {
    EXPECT_EQ(m.inference_energy_nj,
              static_cast<double>(m.requests) * m.energy_per_request_nj);
    inference += m.inference_energy_nj;
    requests += m.requests;
  }
  EXPECT_EQ(inference, report.inference_energy_nj);
  EXPECT_EQ(report.total_energy_nj,
            report.inference_energy_nj + report.programming_energy_nj);
  EXPECT_EQ(requests, report.total_requests);
  EXPECT_GT(report.programming_energy_nj, 0.0);
}

TEST(ServingSim, QueueTimelineStartsAndDrainsToZero) {
  serve::ServingFabric fabric(named_plans(2), {});
  const serve::ServingReport report =
      serve::simulate(fabric, {}, generated_trace(2, 0.005));
  ASSERT_FALSE(report.queue_timeline.empty());
  EXPECT_GT(report.queue_timeline.front().queue_depth, 0);
  EXPECT_EQ(report.queue_timeline.back().queue_depth, 0);
  ASSERT_FALSE(report.busy_timeline.empty());
  for (const serve::ServingReport::BusyInterval& b : report.busy_timeline) {
    EXPECT_LE(b.start_ns, b.program_until_ns);
    EXPECT_LT(b.program_until_ns, b.finish_ns);
  }
}

// ------------------------------------------------------------ determinism --

TEST(ServingSim, ReportByteIdenticalAcrossRunsAndThreads) {
  serve::FabricConfig config;
  config.scope = mapping::SharingScope::kNone;
  serve::ServingFabric probe(named_plans(2), config);
  config.tile_capacity = probe.standalone_tiles(0);
  const serve::TrafficTrace trace = generated_trace(2);

  const std::string serial = serve::serving_json_string(
      serve::simulate(named_plans(2), config, {}, trace, /*threads=*/1));
  const std::string rerun = serve::serving_json_string(
      serve::simulate(named_plans(2), config, {}, trace, /*threads=*/1));
  const std::string pooled = serve::serving_json_string(
      serve::simulate(named_plans(2), config, {}, trace, /*threads=*/0));
  EXPECT_EQ(serial, rerun);
  EXPECT_EQ(serial, pooled);
}

TEST(ServingSim, RejectsTraceWithWrongModelCount) {
  serve::ServingFabric fabric(named_plans(2), {});
  const serve::TrafficTrace trace = manual_trace(3, {{2, 0.0}});
  EXPECT_THROW(serve::simulate(fabric, {}, trace), std::invalid_argument);
}

// --------------------------------------------------------------- profiler --

#if !defined(AUTOHET_OBS_DISABLED)

/// RAII: enabled + empty profiler for the test body, disabled after.
class ScopedProfiler {
 public:
  ScopedProfiler() {
    obs::Profiler::global().reset();
    obs::Profiler::global().enable();
  }
  ~ScopedProfiler() {
    obs::Profiler::global().disable();
    obs::Profiler::global().reset();
  }
};

TEST(ServingSim, SwapCountsMatchProfilerRecords) {
  // Functional fabric under a one-model budget: every swap-in emits one
  // kModelSwap record and re-programs the model's crossbars, so the
  // profiler totals must reproduce the report's swap counters exactly.
  const auto net = nn::lenet5();
  const auto layers = net.mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {72, 64});
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;
  std::vector<plan::DeploymentPlan> plans;
  plans.push_back(plan::compile_plan(net.name, layers, shapes, accel));
  plans.push_back(plan::compile_plan(net.name, layers, shapes, accel));

  serve::FabricConfig config;
  config.functional = true;
  config.scope = mapping::SharingScope::kNone;
  serve::ServingFabric probe(plans, config);
  config.tile_capacity = probe.standalone_tiles(0);

  // Writes one full programming pass issues for this plan.
  std::uint64_t writes_per_program = 0;
  {
    ScopedProfiler profiler;
    common::Rng weight_rng(3);
    const nn::Model model(net, weight_rng);
    const reram::SimulatedModel fresh(model, plans[0]);
    writes_per_program = obs::Profiler::global().snapshot().total(
        obs::ProfileKind::kProgramWrite);
  }
  ASSERT_GT(writes_per_program, 0u);

  ScopedProfiler profiler;
  serve::ServingFabric fabric(plans, config);
  serve::BatchingConfig batching;
  batching.max_batch = 1;
  // Strict 0/1 alternation, spaced far beyond any programming + compute
  // time so each batch drains before the next arrival: every batch misses.
  const serve::TrafficTrace trace = manual_trace(
      2, {{0, 0.0}, {1, 1e9}, {0, 2e9}, {1, 3e9}, {0, 4e9}, {1, 5e9}});
  const serve::ServingReport report =
      serve::simulate(fabric, batching, trace);
  EXPECT_EQ(report.swap_ins, 6);
  EXPECT_EQ(report.evictions, 5);

  const obs::ProfileSnapshot snapshot = obs::Profiler::global().snapshot();
  EXPECT_EQ(snapshot.total(obs::ProfileKind::kModelSwap),
            static_cast<std::uint64_t>(report.swap_ins));
  EXPECT_EQ(snapshot.total(obs::ProfileKind::kProgramWrite),
            static_cast<std::uint64_t>(report.swap_ins) *
                writes_per_program);
}

#endif  // !defined(AUTOHET_OBS_DISABLED)

}  // namespace
