// Multi-objective reward variants of the search environment.
#include <gtest/gtest.h>

#include "autohet/baselines.hpp"
#include "autohet/env.hpp"
#include "autohet/search.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

using core::CrossbarEnv;
using core::EnvConfig;
using core::RewardObjective;

CrossbarEnv make_env(RewardObjective objective,
                     const nn::NetworkSpec& net = nn::alexnet()) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.accel.tile_shared = true;
  cfg.objective = objective;
  return CrossbarEnv(net.mappable_layers(), cfg);
}

TEST(Objectives, DefaultMatchesPaperEquation2) {
  const auto env = make_env(RewardObjective::kUtilizationPerEnergy);
  const auto r = env.evaluate(std::vector<std::size_t>(8, 4));
  EXPECT_NEAR(env.reward(r),
              r.utilization / (r.energy.total_nj() / env.energy_scale_nj()),
              1e-12);
}

TEST(Objectives, AreaAwarePenalizesArea) {
  // Two configurations with similar u/e but different area must rank
  // differently under the area-aware objective when the area gap is big
  // enough. Compare the all-32x32 config (huge ADC area) against
  // all-576x512 under both objectives.
  const auto rue_env = make_env(RewardObjective::kUtilizationPerEnergy);
  const auto area_env = make_env(RewardObjective::kAreaAware);
  const std::vector<std::size_t> small(8, 0);
  const std::vector<std::size_t> large(8, 4);
  const auto r_small = rue_env.evaluate(small);
  const auto r_large = rue_env.evaluate(large);
  // Ratio of rewards (large/small) must be strictly bigger under the
  // area-aware objective: the large config's smaller area boosts it.
  const double rue_ratio =
      rue_env.reward(r_large) / rue_env.reward(r_small);
  const double area_ratio =
      area_env.reward(area_env.evaluate(large)) /
      area_env.reward(area_env.evaluate(small));
  EXPECT_GT(area_ratio, rue_ratio);
}

TEST(Objectives, LatencyAwareDividesByNormalizedLatency) {
  const auto env = make_env(RewardObjective::kLatencyAware);
  const auto base_env = make_env(RewardObjective::kUtilizationPerEnergy);
  const std::vector<std::size_t> actions(8, 2);
  const auto r = env.evaluate(actions);
  const double base = base_env.reward(r);
  const double got = env.reward(r);
  EXPECT_NEAR(got, base / (r.latency_ns / env.latency_scale_ns()),
              got * 1e-12);
}

TEST(Objectives, RewardsArePositiveAndFiniteAcrossCandidates) {
  for (const auto objective :
       {RewardObjective::kUtilizationPerEnergy, RewardObjective::kAreaAware,
        RewardObjective::kLatencyAware}) {
    const auto env = make_env(objective);
    for (std::size_t c = 0; c < env.num_actions(); ++c) {
      const double r =
          env.reward(env.evaluate(std::vector<std::size_t>(8, c)));
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 1e6);
    }
  }
}

TEST(Objectives, AreaAwareSearchFindsSmallerChips) {
  // Full searches under u/e vs area-aware: the area-aware result must not
  // have a larger chip.
  const auto rue_env = make_env(RewardObjective::kUtilizationPerEnergy,
                                nn::alexnet());
  const auto area_env = make_env(RewardObjective::kAreaAware, nn::alexnet());
  core::SearchConfig cfg;
  cfg.episodes = 80;
  cfg.seed = 13;
  const auto rue_result = core::AutoHetSearch(rue_env, cfg).run();
  const auto area_result = core::AutoHetSearch(area_env, cfg).run();
  EXPECT_LE(area_result.best_report.area.total_um2(),
            rue_result.best_report.area.total_um2() * 1.02);
}

TEST(Objectives, ExplicitScalesAreRespected) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.objective = RewardObjective::kAreaAware;
  cfg.energy_scale_nj = 100.0;
  cfg.area_scale_um2 = 1000.0;
  cfg.latency_scale_ns = 10.0;
  const CrossbarEnv env(nn::alexnet().mappable_layers(), cfg);
  const auto r = env.evaluate(std::vector<std::size_t>(8, 4));
  const double expected = r.utilization / (r.energy.total_nj() / 100.0) /
                          (r.area.total_um2() / 1000.0);
  EXPECT_NEAR(env.reward(r), expected, expected * 1e-12);
}

}  // namespace
}  // namespace autohet
