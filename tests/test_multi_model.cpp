// Multi-model co-residency: several DNNs on one accelerator with per-model
// or cross-model tile sharing (the "other models" benefit of §3.4).
#include <gtest/gtest.h>

#include "mapping/multi_model.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using mapping::MultiModelAllocator;
using mapping::ResidentModel;
using mapping::SharingScope;

ResidentModel resident(const nn::NetworkSpec& net, CrossbarShape shape) {
  ResidentModel m;
  m.name = net.name;
  m.layers = net.mappable_layers();
  m.shapes.assign(m.layers.size(), shape);
  return m;
}

TEST(MultiModel, SingleModelMatchesTileAllocator) {
  const auto net = nn::alexnet();
  const std::vector<ResidentModel> models = {resident(net, {128, 128})};
  const auto multi =
      MultiModelAllocator(4, SharingScope::kPerModel).allocate(models);

  const mapping::TileAllocator single(4, /*tile_shared=*/true);
  const std::vector<CrossbarShape> shapes(net.mappable_layers().size(),
                                          CrossbarShape{128, 128});
  const auto ref = single.allocate(net.mappable_layers(), shapes);
  EXPECT_EQ(multi.occupied_tiles(), ref.occupied_tiles());
  EXPECT_DOUBLE_EQ(multi.system_utilization(), ref.system_utilization());
}

TEST(MultiModel, CrossModelSharingNeverWorseThanPerModel) {
  const std::vector<ResidentModel> models = {
      resident(nn::alexnet(), {128, 128}),
      resident(nn::lenet5(), {128, 128}),
      resident(nn::vgg16(), {128, 128}),
  };
  const auto none =
      MultiModelAllocator(4, SharingScope::kNone).allocate(models);
  const auto per =
      MultiModelAllocator(4, SharingScope::kPerModel).allocate(models);
  const auto cross =
      MultiModelAllocator(4, SharingScope::kCrossModel).allocate(models);
  EXPECT_LE(per.occupied_tiles(), none.occupied_tiles());
  EXPECT_LE(cross.occupied_tiles(), per.occupied_tiles());
  EXPECT_GE(cross.system_utilization(), per.system_utilization());
  // Useful cells are invariant under sharing.
  EXPECT_EQ(none.useful_cells(), cross.useful_cells());
}

TEST(MultiModel, CrossModelSharingMergesAcrossModels) {
  // Two tiny models, each leaving most of a tile empty, on the same shape:
  // cross-model sharing should co-locate them in one tile.
  nn::NetworkSpec a;
  a.name = "a";
  a.layers.push_back(nn::make_conv(3, 4, 3, 1, 1, 8, 8));  // 1 crossbar
  nn::NetworkSpec b;
  b.name = "b";
  b.layers.push_back(nn::make_conv(3, 4, 3, 1, 1, 8, 8));  // 1 crossbar
  const std::vector<ResidentModel> models = {resident(a, {32, 32}),
                                             resident(b, {32, 32})};
  const auto per =
      MultiModelAllocator(4, SharingScope::kPerModel).allocate(models);
  EXPECT_EQ(per.occupied_tiles(), 2);  // no intra-model partner to merge with
  const auto cross =
      MultiModelAllocator(4, SharingScope::kCrossModel).allocate(models);
  EXPECT_EQ(cross.occupied_tiles(), 1);
  EXPECT_EQ(cross.released_tiles(), 1);
  // The surviving tile hosts layers of both models (ids in different
  // strides).
  const mapping::Tile* survivor = nullptr;
  for (const auto& t : cross.tiles) {
    if (!t.released) survivor = &t;
  }
  ASSERT_NE(survivor, nullptr);
  ASSERT_EQ(survivor->layer_ids.size(), 2u);
  EXPECT_NE(survivor->layer_ids[0] / MultiModelAllocator::kModelStride,
            survivor->layer_ids[1] / MultiModelAllocator::kModelStride);
}

TEST(MultiModel, DifferentShapesNeverShareAcrossModels) {
  nn::NetworkSpec a;
  a.name = "a";
  a.layers.push_back(nn::make_conv(3, 4, 3, 1, 1, 8, 8));
  nn::NetworkSpec b;
  b.name = "b";
  b.layers.push_back(nn::make_conv(3, 4, 3, 1, 1, 8, 8));
  const std::vector<ResidentModel> models = {resident(a, {32, 32}),
                                             resident(b, {64, 64})};
  const auto cross =
      MultiModelAllocator(4, SharingScope::kCrossModel).allocate(models);
  EXPECT_EQ(cross.occupied_tiles(), 2);
  EXPECT_TRUE(cross.remap.empty());
}

TEST(MultiModel, OccupiedCrossbarsConservedAcrossScopes) {
  const std::vector<ResidentModel> models = {
      resident(nn::alexnet(), {64, 64}),
      resident(nn::lenet5(), {64, 64}),
  };
  for (const SharingScope scope :
       {SharingScope::kNone, SharingScope::kPerModel,
        SharingScope::kCrossModel}) {
    const auto result = MultiModelAllocator(8, scope).allocate(models);
    std::int64_t needed = 0;
    for (const auto& m : result.models) {
      for (const auto& l : m.layers) {
        needed += l.mapping.logical_crossbars();
      }
    }
    std::int64_t held = 0;
    for (const auto& t : result.tiles) {
      if (!t.released) held += 8 - t.empty_xbs;
    }
    EXPECT_EQ(held, needed) << static_cast<int>(scope);
  }
}

TEST(MultiModel, PerModelStatsTrackTileCounts) {
  const std::vector<ResidentModel> models = {
      resident(nn::alexnet(), {256, 256}),
      resident(nn::vgg16(), {256, 256}),
  };
  const auto result =
      MultiModelAllocator(4, SharingScope::kNone).allocate(models);
  ASSERT_EQ(result.models.size(), 2u);
  EXPECT_EQ(result.models[0].name, "AlexNet");
  EXPECT_EQ(result.models[1].name, "VGG16");
  std::int64_t sum = 0;
  for (const auto& m : result.models) sum += m.tiles_before_sharing;
  EXPECT_EQ(sum, static_cast<std::int64_t>(result.tiles.size()));
}

TEST(MultiModel, ValidatesInput) {
  EXPECT_THROW(MultiModelAllocator(0, SharingScope::kNone),
               std::invalid_argument);
  const MultiModelAllocator alloc(4, SharingScope::kNone);
  EXPECT_THROW(alloc.allocate({}), std::invalid_argument);
  ResidentModel broken;
  broken.name = "broken";
  broken.layers.push_back(nn::make_conv(3, 4, 3, 1, 1, 8, 8));
  // shapes missing
  EXPECT_THROW(alloc.allocate({broken}), std::invalid_argument);
}

}  // namespace
}  // namespace autohet
