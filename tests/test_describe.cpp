#include <gtest/gtest.h>

#include <sstream>

#include "nn/describe.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

TEST(Describe, LeNetSummaryContents) {
  std::ostringstream oss;
  nn::describe(nn::lenet5(), oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("LeNet5"), std::string::npos);
  EXPECT_NE(out.find("5 mappable"), std::string::npos);
  EXPECT_NE(out.find("sequential"), std::string::npos);
  EXPECT_NE(out.find("Conv5x5 1->6"), std::string::npos);
  EXPECT_NE(out.find("FC 400->120"), std::string::npos);
  // Totals line.
  const auto net = nn::lenet5();
  EXPECT_NE(out.find("total weights: " +
                     std::to_string(net.total_weights())),
            std::string::npos);
}

TEST(Describe, MappableLayersAreNumberedPoolsAreNot) {
  std::ostringstream oss;
  nn::describe(nn::lenet5(), oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("L1"), std::string::npos);
  EXPECT_NE(out.find("L5"), std::string::npos);
  EXPECT_EQ(out.find("L6"), std::string::npos);
}

TEST(Describe, NonSequentialNetworksAreFlagged) {
  std::ostringstream oss;
  nn::describe(nn::resnet152(), oss);
  EXPECT_NE(oss.str().find("non-sequential"), std::string::npos);
  EXPECT_NE(oss.str().find("L156"), std::string::npos);
}

TEST(Describe, OutputShapesArePropagated) {
  std::ostringstream oss;
  nn::describe(nn::vgg16(), oss);
  const std::string out = oss.str();
  // First conv output: 64x32x32; final FC output: 10x1x1.
  EXPECT_NE(out.find("64x32x32"), std::string::npos);
  EXPECT_NE(out.find("10x1x1"), std::string::npos);
}

}  // namespace
}  // namespace autohet
