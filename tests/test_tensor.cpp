#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/tensor.hpp"

namespace autohet {
namespace {

using tensor::Tensor;

TEST(Tensor, ConstructsZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(1), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, RejectsInvalidShapes) {
  EXPECT_THROW(Tensor({}), std::invalid_argument);
  EXPECT_THROW(Tensor({0}), std::invalid_argument);
  EXPECT_THROW(Tensor({3, -1}), std::invalid_argument);
}

TEST(Tensor, At2DRowMajorLayout) {
  Tensor t({2, 3});
  t.at(1, 2) = 5.0f;
  EXPECT_EQ(t[5], 5.0f);
  t.at(0, 1) = 3.0f;
  EXPECT_EQ(t[1], 3.0f);
}

TEST(Tensor, At3DAnd4D) {
  Tensor a({2, 3, 4});
  a.at(1, 2, 3) = 9.0f;
  EXPECT_EQ(a[(1 * 3 + 2) * 4 + 3], 9.0f);
  Tensor b({2, 2, 2, 2});
  b.at(1, 0, 1, 0) = 7.0f;
  EXPECT_EQ(b[((1 * 2 + 0) * 2 + 1) * 2 + 0], 7.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t({2, 3});
  EXPECT_THROW(t.at(2, 0), std::invalid_argument);
  EXPECT_THROW(t.at(0, 3), std::invalid_argument);
  EXPECT_THROW(t.at(-1, 0), std::invalid_argument);
  Tensor u({2, 3, 4});
  EXPECT_THROW(u.at(0, 0), std::invalid_argument);  // rank mismatch
}

TEST(Tensor, ReshapePreservesDataAndChecksCount) {
  Tensor t({2, 6});
  for (std::int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped({3, 4});
  for (std::int64_t i = 0; i < 12; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_THROW(t.reshaped({5, 2}), std::invalid_argument);
}

TEST(Tensor, FillAndExtremes) {
  Tensor t({4});
  t.fill(2.5f);
  EXPECT_EQ(t.min(), 2.5f);
  EXPECT_EQ(t.max(), 2.5f);
  t[2] = -7.0f;
  EXPECT_EQ(t.min(), -7.0f);
  EXPECT_EQ(t.abs_max(), 7.0f);
}

TEST(Tensor, FillUniformWithinRange) {
  common::Rng rng(1);
  Tensor t({1000});
  t.fill_uniform(rng, -2.0f, 3.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
  // Deterministic for equal seed.
  common::Rng rng2(1);
  Tensor u({1000});
  u.fill_uniform(rng2, -2.0f, 3.0f);
  for (std::int64_t i = 0; i < 1000; ++i) EXPECT_EQ(t[i], u[i]);
}

TEST(Tensor, FillNormalHasRequestedMoments) {
  common::Rng rng(2);
  Tensor t({20000});
  t.fill_normal(rng, 1.0f, 2.0f);
  double sum = 0.0, sumsq = 0.0;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    sum += t[i];
    sumsq += static_cast<double>(t[i]) * t[i];
  }
  const double mean = sum / static_cast<double>(t.numel());
  const double var = sumsq / static_cast<double>(t.numel()) - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Tensor, ShapeString) {
  EXPECT_EQ(Tensor({2, 3, 4}).shape_string(), "[2, 3, 4]");
  EXPECT_EQ(Tensor({7}).shape_string(), "[7]");
}

}  // namespace
}  // namespace autohet
