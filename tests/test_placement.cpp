// Placement policies: snake and Hilbert locality vs row-major.
#include <gtest/gtest.h>

#include <set>

#include "nn/model_zoo.hpp"
#include "reram/bank.hpp"
#include "reram/noc.hpp"

namespace autohet {
namespace {

using reram::BankSpec;
using reram::ChipSpec;
using reram::PlacementPolicy;
using reram::place_tiles;
using reram::slot_position;

TEST(Placement, SnakeConsecutiveSlotsAreGridAdjacent) {
  BankSpec bank;
  bank.tile_rows = 5;
  bank.tile_cols = 7;
  for (std::int64_t i = 0; i + 1 < bank.tiles(); ++i) {
    const auto [r1, c1] = slot_position(bank, PlacementPolicy::kSnake, i);
    const auto [r2, c2] = slot_position(bank, PlacementPolicy::kSnake, i + 1);
    EXPECT_EQ(std::abs(r1 - r2) + std::abs(c1 - c2), 1) << "slot " << i;
  }
}

TEST(Placement, HilbertConsecutiveSlotsAreGridAdjacentOnPow2Square) {
  BankSpec bank;
  bank.tile_rows = 8;
  bank.tile_cols = 8;
  for (std::int64_t i = 0; i + 1 < bank.tiles(); ++i) {
    const auto [r1, c1] = slot_position(bank, PlacementPolicy::kHilbert, i);
    const auto [r2, c2] =
        slot_position(bank, PlacementPolicy::kHilbert, i + 1);
    EXPECT_EQ(std::abs(r1 - r2) + std::abs(c1 - c2), 1) << "slot " << i;
  }
}

TEST(Placement, EveryPolicyIsABijectionOverTheGrid) {
  BankSpec bank;
  bank.tile_rows = 6;
  bank.tile_cols = 10;
  for (const auto policy : {PlacementPolicy::kRowMajor,
                            PlacementPolicy::kSnake,
                            PlacementPolicy::kHilbert}) {
    std::set<std::pair<std::int64_t, std::int64_t>> seen;
    for (std::int64_t i = 0; i < bank.tiles(); ++i) {
      const auto pos = slot_position(bank, policy, i);
      EXPECT_GE(pos.first, 0);
      EXPECT_LT(pos.first, bank.tile_rows);
      EXPECT_GE(pos.second, 0);
      EXPECT_LT(pos.second, bank.tile_cols);
      EXPECT_TRUE(seen.insert(pos).second)
          << "duplicate position under policy " << static_cast<int>(policy);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(bank.tiles()));
  }
}

TEST(Placement, SlotPositionValidatesIndex) {
  BankSpec bank;
  bank.tile_rows = 2;
  bank.tile_cols = 2;
  EXPECT_THROW(slot_position(bank, PlacementPolicy::kRowMajor, 4),
               std::invalid_argument);
  EXPECT_THROW(slot_position(bank, PlacementPolicy::kHilbert, -1),
               std::invalid_argument);
}

TEST(Placement, LocalityPoliciesReduceNocHopsOnVgg16) {
  const auto layers = nn::vgg16().mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {64, 64});
  const mapping::TileAllocator alloc(4, false);
  const auto allocation = alloc.allocate(layers, shapes);
  ChipSpec chip;  // 256x256-tile banks
  const auto hops_under = [&](PlacementPolicy policy) {
    const auto placement = place_tiles(allocation.tiles, chip, policy);
    return reram::evaluate_noc(layers, allocation, placement).mean_hops;
  };
  const double row_major = hops_under(PlacementPolicy::kRowMajor);
  const double snake = hops_under(PlacementPolicy::kSnake);
  const double hilbert = hops_under(PlacementPolicy::kHilbert);
  EXPECT_LE(snake, row_major + 1e-9);
  EXPECT_LT(hilbert, row_major);
}

TEST(Placement, PoliciesPreserveCapacityAccounting) {
  const auto layers = nn::alexnet().mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(),
                                                   {128, 128});
  const auto allocation =
      mapping::TileAllocator(4, true).allocate(layers, shapes);
  ChipSpec chip;
  for (const auto policy : {PlacementPolicy::kRowMajor,
                            PlacementPolicy::kSnake,
                            PlacementPolicy::kHilbert}) {
    const auto placement = place_tiles(allocation.tiles, chip, policy);
    EXPECT_EQ(placement.tiles_placed, allocation.occupied_tiles());
    EXPECT_EQ(placement.free_tiles,
              chip.capacity_tiles() - allocation.occupied_tiles());
  }
}

}  // namespace
}  // namespace autohet
