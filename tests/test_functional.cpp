// End-to-end functional simulation: the DNN executed on the simulated
// crossbar fabric must match the float reference up to quantization error,
// and the bit-serial and integer datapaths must agree exactly.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/model_zoo.hpp"
#include "reram/functional.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::DatapathMode;
using reram::MappedLayer;
using reram::SimulatedModel;

nn::NetworkSpec tiny_net() {
  nn::NetworkSpec net;
  net.name = "tiny";
  net.layers.push_back(nn::make_conv(2, 4, 3, 1, 1, 6, 6));
  net.layers.push_back(nn::make_maxpool(4, 2, 2, 6, 6));
  net.layers.push_back(nn::make_fc(4 * 3 * 3, 10, /*relu=*/false));
  return net;
}

TEST(MappedLayer, FcMatchesQuantizedReference) {
  common::Rng rng(1);
  const auto spec = nn::make_fc(40, 12);
  tensor::Tensor w({12, 40});
  w.fill_normal(rng, 0.0f, 0.5f);
  // The 32x32 shape forces a 2x1 crossbar grid.
  const MappedLayer mapped(spec, w, CrossbarShape{32, 32});

  const auto qw = nn::quantize_weights(w, 8);
  std::vector<std::uint8_t> x(40);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_u64(256));

  const auto got = mapped.mvm(x, DatapathMode::kInteger);
  ASSERT_EQ(got.size(), 12u);
  for (std::int64_t o = 0; o < 12; ++o) {
    std::int32_t want = 0;
    for (std::int64_t i = 0; i < 40; ++i) {
      want += static_cast<std::int32_t>(x[static_cast<std::size_t>(i)]) *
              qw.values[static_cast<std::size_t>(o * 40 + i)];
    }
    EXPECT_EQ(got[static_cast<std::size_t>(o)], want) << o;
  }
}

TEST(MappedLayer, ConvKernelAlignedMatchesQuantizedReference) {
  common::Rng rng(2);
  const auto spec = nn::make_conv(5, 7, 3, 1, 1, 6, 6);
  tensor::Tensor w({7, 5, 3, 3});
  w.fill_normal(rng, 0.0f, 0.5f);
  // 32 rows, floor(32/9)=3 kernels per block -> 2 row blocks; 7 cols fit.
  const MappedLayer mapped(spec, w, CrossbarShape{32, 32});
  EXPECT_FALSE(mapped.mapping().split_kernel);
  EXPECT_EQ(mapped.mapping().row_blocks, 2);

  const auto qw = nn::quantize_weights(w.reshaped({7, 45}), 8);
  std::vector<std::uint8_t> x(45);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  const auto got = mapped.mvm(x, DatapathMode::kInteger);
  for (std::int64_t o = 0; o < 7; ++o) {
    std::int32_t want = 0;
    for (std::int64_t i = 0; i < 45; ++i) {
      want += static_cast<std::int32_t>(x[static_cast<std::size_t>(i)]) *
              qw.values[static_cast<std::size_t>(o * 45 + i)];
    }
    EXPECT_EQ(got[static_cast<std::size_t>(o)], want) << o;
  }
}

TEST(MappedLayer, SplitKernelFallbackMatchesReference) {
  common::Rng rng(3);
  const auto spec = nn::make_conv(2, 5, 7, 1, 3, 8, 8);  // 49 > 32 rows
  tensor::Tensor w({5, 2, 7, 7});
  w.fill_normal(rng, 0.0f, 0.5f);
  const MappedLayer mapped(spec, w, CrossbarShape{32, 32});
  EXPECT_TRUE(mapped.mapping().split_kernel);

  const auto qw = nn::quantize_weights(w.reshaped({5, 98}), 8);
  std::vector<std::uint8_t> x(98);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  const auto got = mapped.mvm(x, DatapathMode::kInteger);
  for (std::int64_t o = 0; o < 5; ++o) {
    std::int32_t want = 0;
    for (std::int64_t i = 0; i < 98; ++i) {
      want += static_cast<std::int32_t>(x[static_cast<std::size_t>(i)]) *
              qw.values[static_cast<std::size_t>(o * 98 + i)];
    }
    EXPECT_EQ(got[static_cast<std::size_t>(o)], want) << o;
  }
}

TEST(MappedLayer, BitSerialAndIntegerDatapathsAgree) {
  common::Rng rng(4);
  const auto spec = nn::make_conv(4, 6, 3, 1, 1, 5, 5);
  tensor::Tensor w({6, 4, 3, 3});
  w.fill_normal(rng, 0.0f, 0.5f);
  for (const CrossbarShape shape :
       {CrossbarShape{32, 32}, CrossbarShape{36, 32}, CrossbarShape{72, 64}}) {
    const MappedLayer mapped(spec, w, shape);
    std::vector<std::uint8_t> x(36);
    for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
    EXPECT_EQ(mapped.mvm(x, DatapathMode::kBitSerial),
              mapped.mvm(x, DatapathMode::kInteger))
        << shape.name();
  }
}

TEST(SimulatedModel, TinyNetTracksFloatReference) {
  common::Rng rng(5);
  const nn::Model model(tiny_net(), rng);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  const SimulatedModel sim(model, shapes);

  common::Rng img_rng(6);
  const auto input = nn::synthetic_image(img_rng, 2, 6, 6);
  const auto reference = model.forward(input);
  const auto simulated = sim.forward(input);
  ASSERT_EQ(simulated.numel(), reference.numel());
  // 8-bit weights and activations: expect small relative error.
  const float scale = std::max(1.0f, reference.abs_max());
  EXPECT_LT(tensor::max_abs_diff(reference, simulated) / scale, 0.05f);
}

TEST(SimulatedModel, LeNetOnHeterogeneousShapes) {
  common::Rng rng(7);
  const nn::Model model(nn::lenet5(), rng);
  // Mixed shapes across the layers, exercising rectangles.
  const std::vector<CrossbarShape> shapes = {
      {32, 32}, {36, 32}, {288, 256}, {72, 64}, {128, 128}};
  const SimulatedModel sim(model, shapes);
  common::Rng img_rng(8);
  const auto input = nn::synthetic_image(img_rng, 1, 32, 32);
  const auto reference = model.forward(input);
  const auto simulated = sim.forward(input);
  const float scale = std::max(1.0f, reference.abs_max());
  EXPECT_LT(tensor::max_abs_diff(reference, simulated) / scale, 0.08f);
}

TEST(SimulatedModel, ClassificationAgreesWithReference) {
  // The quantized fabric should almost always pick the same argmax.
  common::Rng rng(9);
  const nn::Model model(nn::lenet5(), rng);
  const std::vector<CrossbarShape> shapes(5, CrossbarShape{64, 64});
  const SimulatedModel sim(model, shapes);
  common::Rng img_rng(10);
  int agree = 0;
  constexpr int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    const auto input = nn::synthetic_image(img_rng, 1, 32, 32);
    if (tensor::argmax(model.forward(input)) ==
        tensor::argmax(sim.forward(input))) {
      ++agree;
    }
  }
  EXPECT_GE(agree, kTrials - 1);
}

TEST(SimulatedModel, BitSerialWholeNetwork) {
  // Full bit-serial datapath on the tiny network matches the integer mode.
  common::Rng rng(11);
  const nn::Model model(tiny_net(), rng);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  const SimulatedModel bitwise(model, shapes, DatapathMode::kBitSerial);
  const SimulatedModel integer(model, shapes, DatapathMode::kInteger);
  common::Rng img_rng(12);
  const auto input = nn::synthetic_image(img_rng, 2, 6, 6);
  EXPECT_EQ(tensor::max_abs_diff(bitwise.forward(input),
                                 integer.forward(input)),
            0.0f);
}

TEST(SimulatedModel, ValidatesShapeCount) {
  common::Rng rng(13);
  const nn::Model model(nn::lenet5(), rng);
  const std::vector<CrossbarShape> wrong(2, CrossbarShape{32, 32});
  EXPECT_THROW(SimulatedModel(model, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace autohet
