#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "reram/bank.hpp"

namespace autohet {
namespace {

using mapping::Tile;
using reram::BankSpec;
using reram::ChipSpec;
using reram::place_tiles;
using reram::tile_distance;
using reram::TilePlacement;

std::vector<Tile> tiles_n(int n, bool release_every_other = false) {
  std::vector<Tile> tiles(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    tiles[static_cast<std::size_t>(i)].id = i;
    tiles[static_cast<std::size_t>(i)].shape = {64, 64};
    if (release_every_other && i % 2 == 1) {
      tiles[static_cast<std::size_t>(i)].released = true;
    }
  }
  return tiles;
}

TEST(Bank, SpecDefaultsMatchPaper) {
  // §4.1: each bank contains 256x256 tiles.
  const BankSpec bank;
  EXPECT_EQ(bank.tiles(), 256 * 256);
}

TEST(Bank, PlacementIsRowMajor) {
  ChipSpec chip;
  chip.banks = 2;
  chip.bank.tile_rows = 2;
  chip.bank.tile_cols = 3;
  const auto result = place_tiles(tiles_n(7), chip);
  ASSERT_EQ(result.placements.size(), 7u);
  EXPECT_EQ(result.placements[0].bank, 0);
  EXPECT_EQ(result.placements[0].row, 0);
  EXPECT_EQ(result.placements[0].col, 0);
  EXPECT_EQ(result.placements[2].col, 2);
  EXPECT_EQ(result.placements[3].row, 1);
  EXPECT_EQ(result.placements[3].col, 0);
  // Seventh tile spills into bank 1.
  EXPECT_EQ(result.placements[6].bank, 1);
  EXPECT_EQ(result.placements[6].row, 0);
  EXPECT_EQ(result.banks_used, 2);
}

TEST(Bank, ReleasedTilesAreNotPlaced) {
  ChipSpec chip;
  chip.bank.tile_rows = 4;
  chip.bank.tile_cols = 4;
  const auto result = place_tiles(tiles_n(8, /*release_every_other=*/true),
                                  chip);
  EXPECT_EQ(result.tiles_placed, 4);
  for (const auto& p : result.placements) {
    EXPECT_EQ(p.tile_id % 2, 0);
  }
}

TEST(Bank, CapacityExhaustionThrows) {
  ChipSpec chip;
  chip.banks = 1;
  chip.bank.tile_rows = 2;
  chip.bank.tile_cols = 2;
  EXPECT_NO_THROW(place_tiles(tiles_n(4), chip));
  EXPECT_THROW(place_tiles(tiles_n(5), chip), std::invalid_argument);
}

TEST(Bank, OccupancyAndFreeTiles) {
  ChipSpec chip;
  chip.banks = 1;
  chip.bank.tile_rows = 4;
  chip.bank.tile_cols = 4;
  const auto result = place_tiles(tiles_n(4), chip);
  EXPECT_DOUBLE_EQ(result.chip_occupancy, 0.25);
  EXPECT_EQ(result.free_tiles, 12);
}

TEST(Bank, EmptyPlacement) {
  const ChipSpec chip;
  const auto result = place_tiles({}, chip);
  EXPECT_EQ(result.tiles_placed, 0);
  EXPECT_EQ(result.banks_used, 0);
  EXPECT_DOUBLE_EQ(result.chip_occupancy, 0.0);
}

TEST(Bank, WholePaperWorkloadFitsOneBank) {
  // Even the largest paper workload mapped onto the smallest crossbars fits
  // within one 256x256-tile bank with room to spare.
  const auto layers = nn::resnet152().mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {32, 32});
  const mapping::TileAllocator alloc(4, false);
  const auto allocation = alloc.allocate(layers, shapes);
  const ChipSpec chip;  // 4 banks of 256x256
  const auto placement = place_tiles(allocation.tiles, chip);
  EXPECT_EQ(placement.banks_used, 1);
  EXPECT_LT(placement.chip_occupancy, 0.25);
}

TEST(Bank, TileDistanceManhattan) {
  const TilePlacement a{0, 0, 1, 2};
  const TilePlacement b{1, 0, 4, 6};
  EXPECT_EQ(tile_distance(a, b), 3 + 4);
  EXPECT_EQ(tile_distance(a, a), 0);
}

TEST(Bank, TileDistanceInterBankPenalty) {
  const TilePlacement a{0, 0, 0, 0};
  const TilePlacement b{1, 2, 0, 0};
  EXPECT_EQ(tile_distance(a, b, 64), 2 * 64);
  EXPECT_EQ(tile_distance(a, b, 10), 20);
}

TEST(Bank, SpecValidation) {
  ChipSpec chip;
  chip.banks = 0;
  EXPECT_THROW(chip.validate(), std::invalid_argument);
  chip.banks = 1;
  chip.bank.tile_rows = 0;
  EXPECT_THROW(chip.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace autohet
