#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rl/adam.hpp"

namespace autohet {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // f(x) = sum (x_i - t_i)^2; Adam should converge to t.
  const std::vector<double> target = {1.0, -2.0, 0.5, 3.0};
  std::vector<double> x(4, 0.0);
  rl::Adam opt(4, /*lr=*/0.05);
  std::vector<double> grads(4);
  for (int step = 0; step < 2000; ++step) {
    for (std::size_t i = 0; i < 4; ++i) grads[i] = 2.0 * (x[i] - target[i]);
    opt.step(x, grads);
  }
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(x[i], target[i], 1e-3) << i;
}

TEST(Adam, FirstStepIsLearningRateSized) {
  // With bias correction, the very first Adam step has magnitude ~lr.
  std::vector<double> x = {0.0};
  rl::Adam opt(1, 0.01);
  std::vector<double> g = {123.0};
  opt.step(x, g);
  EXPECT_NEAR(std::fabs(x[0]), 0.01, 1e-4);
}

TEST(Adam, ZeroGradientLeavesParamsUnchanged) {
  std::vector<double> x = {5.0, -1.0};
  rl::Adam opt(2, 0.1);
  std::vector<double> g = {0.0, 0.0};
  opt.step(x, g);
  EXPECT_EQ(x[0], 5.0);
  EXPECT_EQ(x[1], -1.0);
}

TEST(Adam, TracksStepCount) {
  std::vector<double> x = {0.0};
  rl::Adam opt(1);
  std::vector<double> g = {1.0};
  EXPECT_EQ(opt.steps_taken(), 0);
  opt.step(x, g);
  opt.step(x, g);
  EXPECT_EQ(opt.steps_taken(), 2);
}

TEST(Adam, ValidatesConfiguration) {
  EXPECT_THROW(rl::Adam(4, 0.0), std::invalid_argument);
  EXPECT_THROW(rl::Adam(4, 0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(rl::Adam(4, 0.1, 0.9, 1.5), std::invalid_argument);
}

TEST(Adam, RejectsSizeMismatch) {
  rl::Adam opt(3);
  std::vector<double> x(2), g(3);
  EXPECT_THROW(opt.step(x, g), std::invalid_argument);
}

TEST(Adam, LearningRateIsAdjustable) {
  rl::Adam opt(1, 0.01);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.01);
  opt.set_learning_rate(0.5);
  EXPECT_DOUBLE_EQ(opt.learning_rate(), 0.5);
}

TEST(Adam, HandlesIllConditionedScales) {
  // One steep and one shallow direction; Adam's per-parameter scaling should
  // reach both targets.
  std::vector<double> x = {0.0, 0.0};
  rl::Adam opt(2, 0.05);
  std::vector<double> g(2);
  for (int step = 0; step < 4000; ++step) {
    g[0] = 2.0 * 1000.0 * (x[0] - 1.0);  // steep
    g[1] = 2.0 * 0.001 * (x[1] - 1.0);   // shallow
    opt.step(x, g);
  }
  EXPECT_NEAR(x[0], 1.0, 1e-2);
  EXPECT_NEAR(x[1], 1.0, 0.2);
}

}  // namespace
}  // namespace autohet
