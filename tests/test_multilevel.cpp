// Multi-level cells and conductance variation on the functional crossbar.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/model_zoo.hpp"
#include "reram/crossbar.hpp"
#include "reram/functional.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using reram::LogicalCrossbar;

std::vector<std::int8_t> random_weights(common::Rng& rng, std::int64_t n) {
  std::vector<std::int8_t> w(static_cast<std::size_t>(n));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return w;
}

std::vector<std::uint8_t> random_inputs(common::Rng& rng, std::int64_t n) {
  std::vector<std::uint8_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return x;
}

class MultilevelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(MultilevelEquivalence, MatchesIntegerReference) {
  const int cell_bits = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(cell_bits) * 101);
  LogicalCrossbar xb({36, 32});
  xb.program(random_weights(rng, 30 * 20), 30, 20);
  const auto x = random_inputs(rng, 30);
  EXPECT_EQ(xb.mvm_multilevel(x, cell_bits), xb.mvm_reference(x))
      << "cell_bits=" << cell_bits;
}

INSTANTIATE_TEST_SUITE_P(CellPrecisions, MultilevelEquivalence,
                         ::testing::Values(1, 2, 4, 8));

TEST(Multilevel, ExtremeWeightsAllPrecisions) {
  LogicalCrossbar xb({2, 2});
  const std::vector<std::int8_t> w = {-128, 127, 1, -1};
  xb.program(w, 2, 2);
  const std::vector<std::uint8_t> x = {255, 255};
  const auto want = xb.mvm_reference(x);
  for (int bits : {1, 2, 4, 8}) {
    EXPECT_EQ(xb.mvm_multilevel(x, bits), want) << bits;
  }
}

TEST(Multilevel, RejectsInvalidCellBits) {
  LogicalCrossbar xb({4, 4});
  const std::vector<std::int8_t> w(4, 1);
  xb.program(w, 2, 2);
  const std::vector<std::uint8_t> x = {1, 1};
  EXPECT_THROW(xb.mvm_multilevel(x, 0), std::invalid_argument);
  EXPECT_THROW(xb.mvm_multilevel(x, 3), std::invalid_argument);
  EXPECT_THROW(xb.mvm_multilevel(x, 16), std::invalid_argument);
}

TEST(Multilevel, OneBitCellsAgreeWithTwoComplementDatapath) {
  // The offset-binary+reference path and the two's-complement plane path
  // are different circuits computing the same arithmetic.
  common::Rng rng(7);
  LogicalCrossbar xb({64, 64});
  xb.program(random_weights(rng, 64 * 64), 64, 64);
  const auto x = random_inputs(rng, 64);
  EXPECT_EQ(xb.mvm_multilevel(x, 1), xb.mvm_bit_serial(x));
}

TEST(Variation, ZeroSigmaIsExact) {
  common::Rng rng(8);
  LogicalCrossbar xb({16, 16});
  xb.program(random_weights(rng, 256), 16, 16);
  const auto x = random_inputs(rng, 16);
  const auto before = xb.mvm_reference(x);
  common::Rng noise_rng(9);
  xb.apply_variation(noise_rng, 0.0);
  EXPECT_EQ(xb.mvm_reference(x), before);
}

TEST(Variation, PerturbsProgrammedCellsOnly) {
  LogicalCrossbar xb({8, 8});
  std::vector<std::int8_t> w(16, 0);
  w[0] = 100;
  xb.program(w, 4, 4);
  common::Rng rng(10);
  xb.apply_variation(rng, 0.5);
  const std::vector<std::uint8_t> x = {1, 0, 0, 0};
  const auto out = xb.mvm_reference(x);
  // Zero (unprogrammed/high-resistance) cells stay exactly zero.
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);
  // The programmed cell moved but stayed in int8 range.
  EXPECT_NE(out[0], 0);
  EXPECT_LE(out[0], 127);
  EXPECT_GE(out[0], -128);
}

TEST(Variation, ErrorGrowsWithSigma) {
  common::Rng rng(11);
  const std::vector<std::int8_t> w = random_weights(rng, 32 * 32);
  const auto x = random_inputs(rng, 32);
  const auto error_at = [&](double sigma) {
    LogicalCrossbar xb({32, 32});
    xb.program(w, 32, 32);
    const auto clean = xb.mvm_reference(x);
    common::Rng noise(12);
    xb.apply_variation(noise, sigma);
    const auto noisy = xb.mvm_reference(x);
    double err = 0.0;
    for (std::size_t j = 0; j < clean.size(); ++j) {
      err += std::abs(static_cast<double>(noisy[j]) - clean[j]);
    }
    return err;
  };
  const double small = error_at(0.01);
  const double large = error_at(0.3);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
}

TEST(Variation, RejectsNegativeSigma) {
  LogicalCrossbar xb({4, 4});
  common::Rng rng(13);
  EXPECT_THROW(xb.apply_variation(rng, -0.1), std::invalid_argument);
}

TEST(Variation, ModelLevelAccuracyDegradesGracefully) {
  // LeNet on the simulated fabric: small variation keeps most argmax
  // agreement; huge variation destroys it.
  common::Rng rng(14);
  const nn::Model model(nn::lenet5(), rng);
  const std::vector<mapping::CrossbarShape> shapes(5, {128, 128});

  const auto agreement_at = [&](double sigma) {
    reram::SimulatedModel sim(model, shapes);
    common::Rng noise(15);
    sim.apply_variation(noise, sigma);
    common::Rng imgs(16);
    int agree = 0;
    for (int t = 0; t < 10; ++t) {
      const auto img = nn::synthetic_image(imgs, 1, 32, 32);
      if (tensor::argmax(model.forward(img)) ==
          tensor::argmax(sim.forward(img))) {
        ++agree;
      }
    }
    return agree;
  };
  EXPECT_GE(agreement_at(0.0), 9);
  EXPECT_GE(agreement_at(0.002), 7);
  EXPECT_LE(agreement_at(1.0), agreement_at(0.002));
}

}  // namespace
}  // namespace autohet
