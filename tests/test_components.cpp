// Circuit component models and the derivation of DeviceParams from them.
#include <gtest/gtest.h>

#include "reram/components.hpp"

namespace autohet {
namespace {

using reram::AdcModel;
using reram::ComponentConfig;
using reram::CrossbarModel;
using reram::DacModel;
using reram::derive_device_params;
using reram::SramBufferModel;

TEST(PureHelpers, CeilLog2EdgeCases) {
  // Merge-tree depth helper shared by the hardware model and the
  // evaluation engine: 0 for degenerate inputs, exact on powers of two,
  // rounded up in between.
  EXPECT_DOUBLE_EQ(reram::ceil_log2(0), 0.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(1), 0.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(2), 1.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(3), 2.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(4), 2.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(5), 3.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(7), 3.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(8), 3.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(9), 4.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(1023), 10.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(1024), 10.0);
  EXPECT_DOUBLE_EQ(reram::ceil_log2(-5), 0.0);
}

TEST(PureHelpers, PjToNjScale) {
  EXPECT_DOUBLE_EQ(reram::kPjToNj, 1e-3);
}

TEST(AdcModel, EnergyDoublesPerBit) {
  for (int bits = 4; bits < 12; ++bits) {
    const AdcModel lo(bits), hi(bits + 1);
    EXPECT_NEAR(hi.energy_pj() / lo.energy_pj(), 2.0, 1e-9) << bits;
  }
}

TEST(AdcModel, CalibratedAtPaperOperatingPoint) {
  // 10-bit ADC at 32 nm must match the DeviceParams defaults (§4.1 sets
  // 10-bit resolution).
  const AdcModel adc(10);
  const reram::DeviceParams defaults;
  EXPECT_NEAR(adc.energy_pj(), defaults.adc_energy_pj, 1e-6);
  EXPECT_NEAR(adc.area_um2(), defaults.adc_area_um2, 1e-6);
  EXPECT_NEAR(adc.latency_ns(), defaults.adc_latency_ns, 1e-9);
}

TEST(AdcModel, TechnologyScaling) {
  const AdcModel at32(10, 32.0), at16(10, 16.0);
  EXPECT_NEAR(at16.energy_pj() / at32.energy_pj(), 0.5, 1e-9);
  EXPECT_NEAR(at16.area_um2() / at32.area_um2(), 0.25, 1e-9);
}

TEST(AdcModel, Validates) {
  EXPECT_THROW(AdcModel(0), std::invalid_argument);
  EXPECT_THROW(AdcModel(17), std::invalid_argument);
  EXPECT_THROW(AdcModel(10, -1.0), std::invalid_argument);
}

TEST(DacModel, CalibratedAtOneBit) {
  const DacModel dac(1);
  const reram::DeviceParams defaults;
  EXPECT_NEAR(dac.energy_pj(), defaults.dac_energy_pj, 1e-9);
  EXPECT_NEAR(dac.area_um2(), defaults.dac_area_um2, 1e-9);
  EXPECT_THROW(DacModel(9), std::invalid_argument);
}

TEST(CrossbarModel, ReadCycleGrowsWithRows) {
  const CrossbarModel small({32, 32});
  const CrossbarModel tall({576, 512});
  EXPECT_GT(tall.read_cycle_ns(), small.read_cycle_ns());
  // Linear in rows: slope matches the DeviceParams wire coefficient.
  const reram::DeviceParams defaults;
  const double slope = (tall.read_cycle_ns() - small.read_cycle_ns()) /
                       (576.0 - 32.0);
  EXPECT_NEAR(slope, defaults.wire_delay_ns_per_row, 1e-9);
}

TEST(CrossbarModel, AreaIsCellsTimesCellArea) {
  const CrossbarModel xb({128, 128});
  EXPECT_NEAR(xb.array_area_um2(), 128.0 * 128.0 * xb.cell_area_um2(),
              1e-9);
}

TEST(SramBufferModel, AreaGrowsWithCapacity) {
  const SramBufferModel small(1024), large(16384);
  EXPECT_GT(large.area_um2(), small.area_um2());
  EXPECT_EQ(small.access_energy_pj_per_byte(),
            large.access_energy_pj_per_byte());
  EXPECT_THROW(SramBufferModel(0), std::invalid_argument);
}

TEST(DeriveDeviceParams, MatchesDefaultsAtPaperOperatingPoint) {
  const reram::DeviceParams derived = derive_device_params(ComponentConfig{});
  const reram::DeviceParams defaults;
  EXPECT_NEAR(derived.adc_energy_pj, defaults.adc_energy_pj, 1e-6);
  EXPECT_NEAR(derived.dac_energy_pj, defaults.dac_energy_pj, 1e-9);
  EXPECT_NEAR(derived.cell_read_energy_pj, defaults.cell_read_energy_pj,
              1e-9);
  EXPECT_NEAR(derived.buffer_rw_energy_pj, defaults.buffer_rw_energy_pj,
              1e-9);
  EXPECT_NEAR(derived.adc_area_um2, defaults.adc_area_um2, 1e-6);
  EXPECT_NEAR(derived.dac_area_um2, defaults.dac_area_um2, 1e-9);
  EXPECT_NEAR(derived.cell_area_um2, defaults.cell_area_um2, 1e-9);
  EXPECT_NEAR(derived.tile_overhead_area_um2,
              defaults.tile_overhead_area_um2, 1e-6);
  EXPECT_NEAR(derived.base_cycle_ns, defaults.base_cycle_ns, 1e-9);
  EXPECT_NEAR(derived.wire_delay_ns_per_row,
              defaults.wire_delay_ns_per_row, 1e-9);
  EXPECT_NEAR(derived.adc_latency_ns, defaults.adc_latency_ns, 1e-9);
}

TEST(DeriveDeviceParams, CarriesPrecisionSettings) {
  ComponentConfig cfg;
  cfg.adc_resolution_bits = 8;
  cfg.cell_bits = 2;
  const auto params = derive_device_params(cfg);
  EXPECT_EQ(params.adc_resolution_bits, 8);
  EXPECT_EQ(params.cell_bits, 2);
  EXPECT_EQ(params.bit_planes(), 4);
  // Lower ADC resolution => cheaper conversions.
  const auto at10 = derive_device_params(ComponentConfig{});
  EXPECT_LT(params.adc_energy_pj, at10.adc_energy_pj);
}

TEST(DeriveDeviceParams, ValidatedOutput) {
  ComponentConfig cfg;
  cfg.weight_bits = 8;
  cfg.cell_bits = 3;  // 8 % 3 != 0 -> invalid DeviceParams
  EXPECT_THROW(derive_device_params(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace autohet
