// Graph IR contract tests: DAG construction/validation, chain round trips,
// and the bit-identity guarantee — a chain-shaped graph must produce
// byte-identical plans, reports, schedules and functional outputs to the
// legacy linear path, while branchy graphs carry accounted non-mappable
// ops through every consumer. Also the plan v1/v2 compatibility contract
// against the committed fixture under tests/data.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "mapping/plan.hpp"
#include "nn/graph.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "reram/functional.hpp"
#include "reram/hardware_model.hpp"
#include "reram/pipeline.hpp"
#include "reram/scheduler.hpp"
#include "report/serialize.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;

// The fixed configuration the committed v1 fixture was generated with
// (autohet_cli graph --network lenet5 --skeleton-plan-out ...): uniform
// 128x128 shapes, default device, tile sharing on.
reram::AcceleratorConfig fixture_accel() {
  reram::AcceleratorConfig accel;
  accel.tile_shared = true;
  return accel;
}

std::vector<CrossbarShape> uniform_shapes(std::size_t n) {
  return std::vector<CrossbarShape>(n, CrossbarShape{128, 128});
}

std::string report_json(const reram::NetworkReport& report) {
  std::ostringstream os;
  report::write_network_report_json(os, report);
  return os.str();
}

std::string plan_json(const plan::DeploymentPlan& plan) {
  std::ostringstream os;
  report::write_plan_json(os, plan);
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot open " << path;
  std::ostringstream os;
  os << file.rdbuf();
  return os.str();
}

// A small branchy graph exercising every non-mappable op kind:
// conv -> (identity | conv) -> residual add -> relu -> concat with a
// pooled branch -> global avg pool -> fc.
nn::Graph branchy_graph() {
  nn::GraphBuilder b("branchy");
  const auto in = b.input(3, 8, 8);
  const auto stem = b.layer(in, nn::make_conv(3, 8, 3, 1, 1, 8, 8));
  const auto body = b.layer(stem, nn::make_conv(8, 8, 3, 1, 1, 8, 8));
  const auto sum = b.residual_add(stem, body);
  const auto act = b.activation(sum);
  const auto side = b.layer(stem, nn::make_maxpool(8, 1, 1, 8, 8));
  const auto cat = b.concat({act, side});
  const auto gap = b.global_avg_pool(cat);
  b.layer(gap, nn::make_fc(16, 10, /*relu=*/false));
  return b.build();
}

TEST(GraphIr, OpKindNamesRoundTrip) {
  const nn::OpKind kinds[] = {
      nn::OpKind::kInput,      nn::OpKind::kLayer,
      nn::OpKind::kResidualAdd, nn::OpKind::kConcat,
      nn::OpKind::kActivation, nn::OpKind::kGlobalAvgPool};
  for (const nn::OpKind kind : kinds) {
    EXPECT_EQ(nn::op_kind_from_name(nn::op_kind_name(kind)), kind);
  }
  EXPECT_THROW(nn::op_kind_from_name("bogus_op"), std::invalid_argument);
}

TEST(GraphIr, BuilderInfersShapes) {
  const nn::Graph g = branchy_graph();
  EXPECT_NO_THROW(g.validate());
  EXPECT_FALSE(g.is_chain());
  EXPECT_EQ(g.node_count(), 9);
  // in->stem, stem->body, stem->add, body->add, add->act, stem->pool,
  // act->cat, pool->cat, cat->gap, gap->fc.
  EXPECT_EQ(g.edge_count(), 10);
  EXPECT_EQ(g.mappable_layers().size(), 3u);  // two convs + one fc
  const auto& nodes = g.nodes();
  EXPECT_EQ(nodes[3].shape, (nn::TensorShape{8, 8, 8}));   // residual add
  EXPECT_EQ(nodes[6].shape, (nn::TensorShape{16, 8, 8}));  // concat
  EXPECT_EQ(nodes[7].shape, (nn::TensorShape{16, 1, 1}));  // global pool
  EXPECT_EQ(g.output_node(), 8);
  EXPECT_EQ(nodes[8].shape, (nn::TensorShape{10, 1, 1}));  // fc
  EXPECT_FALSE(g.skeleton().sequential_runnable);
}

TEST(GraphIr, BuilderRejectsInvalidWiring) {
  {
    // Residual add over mismatched shapes.
    nn::GraphBuilder b("bad");
    const auto in = b.input(3, 8, 8);
    const auto conv = b.layer(in, nn::make_conv(3, 8, 3, 1, 1, 8, 8));
    EXPECT_THROW(b.residual_add(in, conv), std::invalid_argument);
  }
  {
    // Layer whose expected input geometry disagrees with its producer.
    nn::GraphBuilder b("bad");
    const auto in = b.input(3, 8, 8);
    EXPECT_THROW(b.layer(in, nn::make_conv(4, 8, 3, 1, 1, 8, 8)),
                 std::invalid_argument);
  }
  {
    // Concat over mismatched spatial extents.
    nn::GraphBuilder b("bad");
    const auto in = b.input(3, 8, 8);
    const auto pool = b.layer(in, nn::make_maxpool(3, 2, 2, 8, 8));
    EXPECT_THROW(b.concat({in, pool}), std::invalid_argument);
  }
  {
    // Two sinks: the stem fans out and nothing joins the branches.
    nn::GraphBuilder b("bad");
    const auto in = b.input(3, 8, 8);
    b.layer(in, nn::make_conv(3, 8, 3, 1, 1, 8, 8));
    b.layer(in, nn::make_conv(3, 4, 3, 1, 1, 8, 8));
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
  {
    // A second input node.
    nn::GraphBuilder b("bad");
    b.input(3, 8, 8);
    EXPECT_THROW(b.input(3, 8, 8), std::invalid_argument);
  }
}

TEST(GraphIr, ChainRoundTripRecoversNetworkSpec) {
  const nn::NetworkSpec net = nn::lenet5();
  const nn::Graph g = nn::graph_from_network(net);
  EXPECT_TRUE(g.is_chain());
  EXPECT_NO_THROW(g.validate());
  const nn::NetworkSpec back = g.linearize();
  EXPECT_EQ(back.name, net.name);
  EXPECT_EQ(back.layers, net.layers);
  EXPECT_TRUE(back.sequential_runnable);
  EXPECT_TRUE(g.skeleton().sequential_runnable);
  EXPECT_THROW(branchy_graph().linearize(), std::invalid_argument);
}

TEST(GraphIr, DotRenderingIsDeterministic) {
  const nn::Graph g = branchy_graph();
  std::ostringstream a;
  std::ostringstream b;
  nn::write_graph_dot(a, g);
  nn::write_graph_dot(b, g);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_NE(a.str().find("digraph"), std::string::npos);
  EXPECT_NE(a.str().find("residual_add"), std::string::npos);
}

TEST(GraphIr, Resnet152GraphMatchesChainSkeleton) {
  const nn::Graph g = nn::resnet152_graph();
  EXPECT_NO_THROW(g.validate());
  EXPECT_FALSE(g.is_chain());
  // Same mappable layers in the same order as the legacy chain, except
  // that the graph folds the post-add ReLU into explicit activation nodes,
  // so expand/projection convs carry relu_after=false there.
  std::vector<nn::LayerSpec> from_graph = g.mappable_layers();
  std::vector<nn::LayerSpec> from_chain = nn::resnet152().mappable_layers();
  ASSERT_EQ(from_graph.size(), from_chain.size());
  for (std::size_t i = 0; i < from_graph.size(); ++i) {
    from_graph[i].relu_after = false;
    from_chain[i].relu_after = false;
    EXPECT_EQ(from_graph[i], from_chain[i]) << "layer " << i;
  }
  std::int64_t adds = 0;
  for (const nn::GraphNode& n : g.nodes()) {
    if (n.kind == nn::OpKind::kResidualAdd) ++adds;
  }
  EXPECT_EQ(adds, 50);  // one per bottleneck block (3+8+36+3)
}

TEST(GraphIr, CifarResnetGraphValidates) {
  const nn::Graph g = nn::cifar_resnet_graph();
  EXPECT_NO_THROW(g.validate());
  EXPECT_FALSE(g.is_chain());
  EXPECT_GT(g.mappable_layers().size(), 4u);
  EXPECT_EQ(nn::graph_by_name("cifar-resnet").nodes(), g.nodes());
  EXPECT_TRUE(nn::graph_by_name("lenet5").is_chain());
}

// --- Chain bit-identity: v2 graph plans over chain graphs must reproduce
// --- the v1 linear path byte for byte, end to end.

TEST(GraphPlan, ChainReportByteIdenticalToLinearPath) {
  const nn::NetworkSpec net = nn::lenet5();
  const auto shapes = uniform_shapes(net.mappable_layers().size());
  const reram::AcceleratorConfig accel = fixture_accel();

  const plan::DeploymentPlan v1 =
      plan::compile_plan(net.name, net.mappable_layers(), shapes, accel);
  const plan::DeploymentPlan v2 =
      plan::compile_plan(nn::graph_from_network(net), shapes, accel);
  EXPECT_EQ(v1.version, plan::kPlanVersion);
  EXPECT_EQ(v2.version, plan::kPlanVersionGraph);
  EXPECT_TRUE(v2.has_graph());
  EXPECT_EQ(v1.layers, v2.layers);

  const reram::NetworkReport r1 = plan::evaluate_plan(v1);
  const reram::NetworkReport r2 = plan::evaluate_plan(v2);
  EXPECT_TRUE(r2.graph_ops.empty());
  EXPECT_EQ(report_json(r1), report_json(r2));
}

TEST(GraphPlan, V1JsonCarriesNoV2Keys) {
  const nn::NetworkSpec net = nn::lenet5();
  const auto shapes = uniform_shapes(net.mappable_layers().size());
  const plan::DeploymentPlan v1 = plan::compile_plan(
      net.name, net.mappable_layers(), shapes, fixture_accel());
  const std::string text = plan_json(v1);
  EXPECT_EQ(text.find("\"graph\""), std::string::npos);
  EXPECT_EQ(text.find("vector_lanes"), std::string::npos);
  EXPECT_EQ(text.find("vector_op_energy_pj"), std::string::npos);
}

TEST(GraphPlan, V2JsonRoundTripsByteIdentically) {
  const nn::Graph g = nn::cifar_resnet_graph();
  const plan::DeploymentPlan v2 = plan::compile_plan(
      g, uniform_shapes(g.mappable_layers().size()), fixture_accel());
  const std::string text = plan_json(v2);
  EXPECT_NE(text.find("\"graph\""), std::string::npos);
  EXPECT_NE(text.find("vector_lanes"), std::string::npos);

  const plan::DeploymentPlan back = report::read_plan_json(text);
  EXPECT_NO_THROW(back.validate());
  EXPECT_EQ(back.version, plan::kPlanVersionGraph);
  EXPECT_EQ(back.graph, g);
  EXPECT_EQ(plan_json(back), text);
  EXPECT_EQ(report_json(plan::evaluate_plan(back)),
            report_json(plan::evaluate_plan(v2)));
}

TEST(GraphPlan, ChainDataflowIsTheHistoricalChainRule) {
  const nn::NetworkSpec net = nn::lenet5();
  const auto shapes = uniform_shapes(net.mappable_layers().size());
  const plan::DeploymentPlan v2 = plan::compile_plan(
      nn::graph_from_network(net), shapes, fixture_accel());
  const plan::PlanDataflow flow = plan::plan_dataflow(v2);
  ASSERT_EQ(flow.deps.size(), net.mappable_layers().size());
  EXPECT_TRUE(flow.deps[0].empty());
  for (std::size_t k = 1; k < flow.deps.size(); ++k) {
    ASSERT_EQ(flow.deps[k].size(), 1u);
    EXPECT_EQ(flow.deps[k][0].layer, static_cast<std::int64_t>(k) - 1);
    EXPECT_EQ(flow.deps[k][0].delay_ns, 0.0);
  }
  for (const double tail : flow.tail_delay_ns) EXPECT_EQ(tail, 0.0);
}

TEST(GraphPlan, ChainScheduleAndPipelineBitIdentical) {
  const nn::NetworkSpec net = nn::lenet5();
  const auto shapes = uniform_shapes(net.mappable_layers().size());
  const reram::AcceleratorConfig accel = fixture_accel();
  const plan::DeploymentPlan v1 =
      plan::compile_plan(net.name, net.mappable_layers(), shapes, accel);
  const plan::DeploymentPlan v2 = plan::compile_plan(
      nn::graph_from_network(net), shapes, accel);

  const reram::ScheduleReport s1 = reram::schedule_batch(v1, 4);
  const reram::ScheduleReport s2 = reram::schedule_batch(v2, 4);
  EXPECT_EQ(s1.makespan_ns, s2.makespan_ns);
  ASSERT_EQ(s1.tasks.size(), s2.tasks.size());
  for (std::size_t i = 0; i < s1.tasks.size(); ++i) {
    EXPECT_EQ(s1.tasks[i].start_ns, s2.tasks[i].start_ns) << i;
    EXPECT_EQ(s1.tasks[i].finish_ns, s2.tasks[i].finish_ns) << i;
  }

  const reram::PipelineReport p1 = reram::evaluate_pipeline(v1);
  const reram::PipelineReport p2 = reram::evaluate_pipeline(v2);
  EXPECT_EQ(p1.bottleneck_interval_ns, p2.bottleneck_interval_ns);
  EXPECT_EQ(p1.throughput_inferences_per_s, p2.throughput_inferences_per_s);
  EXPECT_EQ(p1.fill_latency_ns, p2.fill_latency_ns);
}

TEST(GraphFunctional, ChainForwardBitIdentical) {
  const nn::NetworkSpec net = nn::lenet5();
  const nn::Graph g = nn::graph_from_network(net);
  common::Rng weight_rng(3);
  const nn::Model model(net, weight_rng);

  common::Rng input_rng(4);
  tensor::Tensor input({g.nodes().front().shape.channels,
                        g.nodes().front().shape.height,
                        g.nodes().front().shape.width});
  input.fill_uniform(input_rng, 0.0f, 1.0f);

  // Float reference: forward_graph over a chain equals forward exactly.
  const tensor::Tensor ref = model.forward(input);
  const tensor::Tensor ref_graph = model.forward_graph(g, input);
  ASSERT_EQ(ref.numel(), ref_graph.numel());
  for (std::int64_t j = 0; j < ref.numel(); ++j) {
    EXPECT_EQ(ref[j], ref_graph[j]) << j;
  }

  // Crossbar fabric: DAG executor over a chain equals the linear walk.
  const reram::SimulatedModel fabric(
      model, uniform_shapes(net.mappable_layers().size()));
  const reram::SimulatedModel::ForwardTrace linear =
      fabric.forward_traced(input);
  const reram::SimulatedModel::ForwardTrace dag =
      fabric.forward_graph_traced(g, input);
  ASSERT_EQ(linear.output.numel(), dag.output.numel());
  for (std::int64_t j = 0; j < linear.output.numel(); ++j) {
    EXPECT_EQ(linear.output[j], dag.output[j]) << j;
  }
  ASSERT_EQ(linear.mappable_outputs.size(), dag.mappable_outputs.size());
}

TEST(GraphFunctional, BranchyForwardIsDeterministicAndShaped) {
  const nn::Graph g = branchy_graph();
  common::Rng weight_rng(5);
  const nn::Model model(g.skeleton(), weight_rng);

  common::Rng input_rng(6);
  tensor::Tensor input({3, 8, 8});
  input.fill_uniform(input_rng, 0.0f, 1.0f);

  const tensor::Tensor ref = model.forward_graph(g, input);
  EXPECT_EQ(ref.numel(), 10);

  const plan::DeploymentPlan v2 = plan::compile_plan(
      g, uniform_shapes(g.mappable_layers().size()), fixture_accel());
  const reram::SimulatedModel fabric(model, v2);
  const tensor::Tensor a = fabric.forward_graph(g, input);
  const tensor::Tensor b = fabric.forward_graph(g, input);
  ASSERT_EQ(a.numel(), 10);
  for (std::int64_t j = 0; j < a.numel(); ++j) {
    EXPECT_EQ(a[j], b[j]) << j;
  }
}

TEST(GraphAccounting, BranchyOpsCarryEnergyAndLatency) {
  const nn::Graph g = branchy_graph();
  const auto shapes = uniform_shapes(g.mappable_layers().size());
  const reram::AcceleratorConfig accel = fixture_accel();
  const plan::DeploymentPlan v2 = plan::compile_plan(g, shapes, accel);
  const plan::DeploymentPlan skeleton = plan::compile_plan(
      g.name(), g.mappable_layers(), shapes, accel);

  const reram::NetworkReport graph_report = plan::evaluate_plan(v2);
  const reram::NetworkReport skeleton_report =
      plan::evaluate_plan(skeleton);
  ASSERT_EQ(graph_report.graph_ops.size(), 4u);
  for (const reram::GraphOpReport& op : graph_report.graph_ops) {
    SCOPED_TRACE(op.op);
    // Concat is pure data movement (no ALU work); everything else does one
    // vector op per element. All ops move bytes and take vector cycles.
    if (op.op == std::string("concat")) {
      EXPECT_EQ(op.elements, 0);
    } else {
      EXPECT_GT(op.elements, 0);
    }
    EXPECT_GT(op.bytes_moved, 0);
    EXPECT_GT(op.energy.total_nj(), 0.0);
    EXPECT_GT(op.latency_ns, 0.0);
  }
  EXPECT_GT(graph_report.energy.total_nj(),
            skeleton_report.energy.total_nj());
  EXPECT_GT(graph_report.latency_ns, skeleton_report.latency_ns);
  // Per-layer figures are untouched: only the totals grow.
  ASSERT_EQ(graph_report.layers.size(), skeleton_report.layers.size());
  for (std::size_t i = 0; i < graph_report.layers.size(); ++i) {
    EXPECT_EQ(graph_report.layers[i].latency_ns,
              skeleton_report.layers[i].latency_ns);
  }
}

TEST(GraphAccounting, BranchyDataflowCarriesMergedDeps) {
  const nn::Graph g = branchy_graph();
  const plan::DeploymentPlan v2 = plan::compile_plan(
      g, uniform_shapes(g.mappable_layers().size()), fixture_accel());
  const plan::PlanDataflow flow = plan::plan_dataflow(v2);
  ASSERT_EQ(flow.deps.size(), 3u);
  // The FC sees both the residual branch and the pooled branch, each with
  // non-mappable ops (add/relu/concat/gap) contributing a positive delay.
  bool merged = false;
  bool delayed = false;
  for (const auto& deps : flow.deps) {
    if (deps.size() >= 2) merged = true;
    for (const plan::LayerDep& d : deps) {
      if (d.delay_ns > 0.0) delayed = true;
    }
  }
  EXPECT_TRUE(merged);
  EXPECT_TRUE(delayed);
}

// --- Plan-version compatibility against the committed fixture.

TEST(PlanCompat, V1FixtureLoadsAndReplaysByteIdentically) {
  const std::string text =
      read_file(std::string(AUTOHET_TEST_DATA_DIR) + "/plan_v1_lenet5.json");
  const plan::DeploymentPlan fixture = report::read_plan_json(text);
  EXPECT_EQ(fixture.version, plan::kPlanVersion);
  EXPECT_FALSE(fixture.has_graph());
  EXPECT_NO_THROW(fixture.validate());
  EXPECT_NO_THROW(fixture.validate_against(nn::lenet5()));

  // Loading under the v2-aware reader must not perturb a byte: the plan
  // re-serializes to exactly the committed document and evaluates to the
  // same report as a freshly compiled equivalent.
  EXPECT_EQ(plan_json(fixture), text);
  const nn::NetworkSpec net = nn::lenet5();
  const plan::DeploymentPlan fresh =
      plan::compile_plan(net.name, net.mappable_layers(),
                         uniform_shapes(net.mappable_layers().size()),
                         fixture_accel());
  EXPECT_EQ(plan_json(fresh), text);
  EXPECT_EQ(report_json(plan::evaluate_plan(fixture)),
            report_json(plan::evaluate_plan(fresh)));
}

void expect_throws_with(const std::string& text,
                        const std::string& needle) {
  try {
    (void)report::read_plan_json(text);
    FAIL() << "expected rejection mentioning: " << needle;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("line "), std::string::npos)
        << e.what();
  }
}

TEST(PlanCompat, UnknownVersionRejectedWithLineNumber) {
  std::string text =
      read_file(std::string(AUTOHET_TEST_DATA_DIR) + "/plan_v1_lenet5.json");
  const std::string::size_type at = text.find("\"version\": 1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("\"version\": 1").size(), "\"version\": 3");
  expect_throws_with(text, "unsupported plan version 3");
}

TEST(PlanCompat, V1PlanWithGraphSectionRejected) {
  const nn::Graph g = nn::cifar_resnet_graph();
  const plan::DeploymentPlan v2 = plan::compile_plan(
      g, uniform_shapes(g.mappable_layers().size()), fixture_accel());
  std::string text = plan_json(v2);
  const std::string::size_type at = text.find("\"version\": 2");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("\"version\": 2").size(), "\"version\": 1");
  expect_throws_with(text, "must not carry a graph section");
}

TEST(PlanCompat, TamperedGraphRejectedWithLineNumber) {
  const nn::Graph g = nn::cifar_resnet_graph();
  const plan::DeploymentPlan v2 = plan::compile_plan(
      g, uniform_shapes(g.mappable_layers().size()), fixture_accel());
  std::string text = plan_json(v2);
  const std::string::size_type at = text.find("\"kind\": \"residual_add\"");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, std::string("\"kind\": \"residual_add\"").size(),
               "\"kind\": \"bogus_op\"");
  expect_throws_with(text, "bogus_op");
}

}  // namespace
}  // namespace autohet
