#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "rl/ddpg.hpp"
#include "rl/prioritized_replay.hpp"

namespace autohet {
namespace {

using rl::PrioritizedReplayBuffer;

rl::Transition make_transition(double reward) {
  rl::Transition t;
  t.state = {reward, 0.0};
  t.next_state = {reward, 1.0};
  t.action = 0.5;
  t.reward = reward;
  t.terminal = true;
  return t;
}

TEST(PrioritizedReplay, ValidatesConstruction) {
  EXPECT_THROW(PrioritizedReplayBuffer(0), std::invalid_argument);
  EXPECT_THROW(PrioritizedReplayBuffer(4, 1.5), std::invalid_argument);
  EXPECT_THROW(PrioritizedReplayBuffer(4, 0.5, 0.0), std::invalid_argument);
}

TEST(PrioritizedReplay, EmptySampleThrows) {
  PrioritizedReplayBuffer buf(4);
  common::Rng rng(1);
  EXPECT_THROW(buf.sample(rng, 1, 0.4), std::invalid_argument);
}

TEST(PrioritizedReplay, NewTransitionsAreSampleable) {
  PrioritizedReplayBuffer buf(8);
  for (int i = 0; i < 8; ++i) buf.add(make_transition(i));
  common::Rng rng(2);
  std::map<double, int> seen;
  for (const auto& s : buf.sample(rng, 800, 0.4)) {
    ++seen[s.transition->reward];
  }
  EXPECT_EQ(seen.size(), 8u);  // uniform max-priority start covers all
}

TEST(PrioritizedReplay, HighPriorityDominatesSampling) {
  PrioritizedReplayBuffer buf(8, /*alpha=*/1.0);
  for (int i = 0; i < 8; ++i) buf.add(make_transition(i));
  // Crush every priority except transition 3's.
  common::Rng rng(3);
  for (const auto& s : buf.sample(rng, 200, 0.0)) {
    buf.update_priority(s.index, s.transition->reward == 3.0 ? 100.0 : 0.0);
  }
  int hits = 0;
  constexpr int kDraws = 400;
  for (const auto& s : buf.sample(rng, kDraws, 0.0)) {
    if (s.transition->reward == 3.0) ++hits;
  }
  EXPECT_GT(hits, kDraws * 9 / 10);
}

TEST(PrioritizedReplay, ImportanceWeightsAreNormalized) {
  PrioritizedReplayBuffer buf(16, 1.0);
  for (int i = 0; i < 16; ++i) buf.add(make_transition(i));
  common::Rng rng(4);
  // Diversify priorities.
  for (const auto& s : buf.sample(rng, 64, 0.4)) {
    buf.update_priority(s.index, s.transition->reward + 0.1);
  }
  const auto samples = buf.sample(rng, 64, 1.0);
  double max_w = 0.0;
  for (const auto& s : samples) {
    EXPECT_GT(s.weight, 0.0);
    EXPECT_LE(s.weight, 1.0 + 1e-12);
    max_w = std::max(max_w, s.weight);
  }
  EXPECT_NEAR(max_w, 1.0, 1e-12);
}

TEST(PrioritizedReplay, RingEviction) {
  PrioritizedReplayBuffer buf(2);
  buf.add(make_transition(1));
  buf.add(make_transition(2));
  buf.add(make_transition(3));  // evicts 1
  EXPECT_EQ(buf.size(), 2u);
  common::Rng rng(5);
  for (const auto& s : buf.sample(rng, 100, 0.4)) {
    EXPECT_NE(s.transition->reward, 1.0);
  }
}

TEST(PrioritizedReplay, UpdatePriorityValidates) {
  PrioritizedReplayBuffer buf(4);
  buf.add(make_transition(1));
  EXPECT_THROW(buf.update_priority(1, 0.5), std::invalid_argument);
  EXPECT_THROW(buf.update_priority(0, -1.0), std::invalid_argument);
  EXPECT_NO_THROW(buf.update_priority(0, 0.0));
}

// The DDPG agent still learns the contextual bandit with PER enabled.
TEST(DdpgWithPrioritizedReplay, LearnsContextualBandit) {
  rl::DdpgConfig cfg;
  cfg.state_dim = 2;
  cfg.actor_hidden = {24, 24};
  cfg.critic_hidden = {24, 24};
  cfg.actor_lr = 3e-3;
  cfg.critic_lr = 1e-2;
  cfg.gamma = 0.0;
  cfg.batch_size = 32;
  cfg.replay_capacity = 4000;
  cfg.prioritized_replay = true;
  rl::DdpgAgent agent(cfg, common::Rng(6));
  common::Rng rng(7);
  for (int episode = 0; episode < 600; ++episode) {
    const std::vector<double> s = {rng.uniform(0.1, 0.9), rng.uniform()};
    const double a =
        (episode < 100) ? rng.uniform() : agent.act_with_noise(s);
    rl::Transition t;
    t.state = s;
    t.next_state = s;
    t.action = a;
    t.reward = 1.0 - (a - s[0]) * (a - s[0]);
    t.terminal = true;
    agent.remember(std::move(t));
    agent.update();
    if (episode % 10 == 0) agent.decay_noise();
  }
  double total_err = 0.0;
  constexpr int kProbe = 20;
  for (int i = 0; i < kProbe; ++i) {
    const std::vector<double> s = {0.1 + 0.8 * i / (kProbe - 1), 0.5};
    total_err += std::fabs(agent.act(s) - s[0]);
  }
  EXPECT_LT(total_err / kProbe, 0.17);
}

TEST(DdpgWithOuNoise, ActionsStayInRangeAndResetWorks) {
  rl::DdpgConfig cfg;
  cfg.state_dim = 2;
  cfg.noise_kind = rl::NoiseKind::kOrnsteinUhlenbeck;
  cfg.ou_sigma = 0.3;
  rl::DdpgAgent agent(cfg, common::Rng(8));
  const std::vector<double> s = {0.5, 0.5};
  for (int i = 0; i < 200; ++i) {
    const double a = agent.act_with_noise(s);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
  EXPECT_DOUBLE_EQ(agent.noise_sigma(), 0.3);
  agent.decay_noise();  // resets the OU state, sigma unchanged
  EXPECT_DOUBLE_EQ(agent.noise_sigma(), 0.3);
}

}  // namespace
}  // namespace autohet
