#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace autohet {
namespace {

TEST(Rng, DeterministicForSeed) {
  common::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  common::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  common::Rng rng(3);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  common::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Rng, UniformU64CoversRangeWithoutBias) {
  common::Rng rng(5);
  constexpr std::uint64_t kBuckets = 7;
  std::vector<int> counts(kBuckets, 0);
  constexpr int kN = 70000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t v = rng.uniform_u64(kBuckets);
    ASSERT_LT(v, kBuckets);
    ++counts[v];
  }
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kN / static_cast<int>(kBuckets), 600) << b;
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  common::Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  common::Rng rng(7);
  constexpr int kN = 50000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / kN;
  const double var = sumsq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalWithParameters) {
  common::Rng rng(8);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(5.0, 0.5);
  EXPECT_NEAR(sum / kN, 5.0, 0.02);
}

TEST(Rng, ChildStreamsAreIndependent) {
  common::Rng parent(9);
  common::Rng c1 = parent.child(1);
  common::Rng c2 = parent.child(2);
  common::Rng c1_again = parent.child(1);
  EXPECT_EQ(c1(), c1_again());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1() == c2()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<common::Rng>);
  SUCCEED();
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = common::splitmix64(state);
  const std::uint64_t second = common::splitmix64(state);
  EXPECT_NE(first, second);
  std::uint64_t state2 = 0;
  EXPECT_EQ(common::splitmix64(state2), first);
}

}  // namespace
}  // namespace autohet
