// The key datapath property: the bit-serial crossbar (1-bit DAC cycles ×
// 1-bit weight planes with shift-add merging) is bit-exact to the direct
// integer MVM.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "reram/crossbar.hpp"

namespace autohet {
namespace {

using reram::LogicalCrossbar;

std::vector<std::int8_t> random_weights(common::Rng& rng, std::int64_t n) {
  std::vector<std::int8_t> w(static_cast<std::size_t>(n));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  return w;
}

std::vector<std::uint8_t> random_inputs(common::Rng& rng, std::int64_t n) {
  std::vector<std::uint8_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  return x;
}

TEST(LogicalCrossbar, KnownTinyProduct) {
  LogicalCrossbar xb({4, 4});
  const std::vector<std::int8_t> w = {1, -2, 3, 4};  // 2x2
  xb.program(w, 2, 2);
  const std::vector<std::uint8_t> x = {5, 7};
  const auto ref = xb.mvm_reference(x);
  ASSERT_EQ(ref.size(), 2u);
  EXPECT_EQ(ref[0], 5 * 1 + 7 * 3);
  EXPECT_EQ(ref[1], 5 * -2 + 7 * 4);
  const auto bits = xb.mvm_bit_serial(x);
  EXPECT_EQ(bits, ref);
}

TEST(LogicalCrossbar, ExtremeValues) {
  LogicalCrossbar xb({2, 2});
  const std::vector<std::int8_t> w = {-128, 127, 127, -128};
  xb.program(w, 2, 2);
  const std::vector<std::uint8_t> x = {255, 255};
  const auto ref = xb.mvm_reference(x);
  EXPECT_EQ(ref[0], 255 * (-128) + 255 * 127);
  EXPECT_EQ(xb.mvm_bit_serial(x), ref);
}

TEST(LogicalCrossbar, ZeroInputGivesZero) {
  common::Rng rng(1);
  LogicalCrossbar xb({8, 8});
  xb.program(random_weights(rng, 64), 8, 8);
  const std::vector<std::uint8_t> x(8, 0);
  for (auto v : xb.mvm_bit_serial(x)) EXPECT_EQ(v, 0);
}

class BitSerialEquivalence
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::uint64_t>> {};

TEST_P(BitSerialEquivalence, MatchesIntegerReference) {
  const auto [rows, cols, seed] = GetParam();
  common::Rng rng(seed);
  LogicalCrossbar xb({rows, cols});
  // Use a partially filled region to exercise the unused-cell path.
  const std::int64_t used_rows = std::max<std::int64_t>(1, rows - 3);
  const std::int64_t used_cols = std::max<std::int64_t>(1, cols - 2);
  xb.program(random_weights(rng, used_rows * used_cols), used_rows, used_cols);
  const auto x = random_inputs(rng, used_rows);
  EXPECT_EQ(xb.mvm_bit_serial(x), xb.mvm_reference(x));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BitSerialEquivalence,
    ::testing::Combine(::testing::Values(1, 4, 9, 32, 36),
                       ::testing::Values(1, 5, 32),
                       ::testing::Values(11u, 22u, 33u)));

TEST(LogicalCrossbar, ProgramCellSparsePattern) {
  LogicalCrossbar xb({36, 32});
  // Mimic the kernel-aligned layout: kernels at 9-row strides with gaps.
  xb.program_cell(0, 0, 10);
  xb.program_cell(9, 0, -20);
  xb.program_cell(18, 5, 7);
  EXPECT_EQ(xb.rows_used(), 19);
  EXPECT_EQ(xb.cols_used(), 6);
  std::vector<std::uint8_t> x(19, 0);
  x[0] = 2;
  x[9] = 3;
  x[18] = 4;
  const auto ref = xb.mvm_reference(x);
  EXPECT_EQ(ref[0], 2 * 10 + 3 * -20);
  EXPECT_EQ(ref[5], 4 * 7);
  EXPECT_EQ(xb.mvm_bit_serial(x), ref);
}

TEST(LogicalCrossbar, ValidatesProgramArguments) {
  LogicalCrossbar xb({4, 4});
  const std::vector<std::int8_t> w(25, 1);
  EXPECT_THROW(xb.program(w, 5, 5), std::invalid_argument);
  EXPECT_THROW(xb.program(std::span<const std::int8_t>(w.data(), 3), 2, 2),
               std::invalid_argument);
  EXPECT_THROW(xb.program_cell(4, 0, 1), std::invalid_argument);
  EXPECT_THROW(xb.program_cell(0, -1, 1), std::invalid_argument);
}

TEST(LogicalCrossbar, ValidatesInputLength) {
  LogicalCrossbar xb({4, 4});
  const std::vector<std::int8_t> w(4, 1);
  xb.program(w, 2, 2);
  const std::vector<std::uint8_t> wrong(3, 1);
  EXPECT_THROW(xb.mvm_bit_serial(wrong), std::invalid_argument);
  EXPECT_THROW(xb.mvm_reference(wrong), std::invalid_argument);
}

TEST(LogicalCrossbar, ReprogramOverwritesPreviousContents) {
  LogicalCrossbar xb({4, 4});
  std::vector<std::int8_t> w1(16, 3);
  xb.program(w1, 4, 4);
  std::vector<std::int8_t> w2(4, 1);
  xb.program(w2, 2, 2);  // smaller block; old cells must be cleared
  const std::vector<std::uint8_t> x = {1, 1};
  const auto out = xb.mvm_reference(x);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 2);
  EXPECT_EQ(out[1], 2);
}

}  // namespace
}  // namespace autohet
