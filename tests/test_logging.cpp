#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hpp"

namespace autohet {
namespace {

// Captures stderr around a callable.
template <typename Fn>
std::string capture_stderr(Fn&& fn) {
  std::ostringstream oss;
  std::streambuf* old = std::cerr.rdbuf(oss.rdbuf());
  fn();
  std::cerr.rdbuf(old);
  return oss.str();
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = common::log_level(); }
  void TearDown() override { common::set_log_level(saved_); }
  common::LogLevel saved_ = common::LogLevel::kInfo;
};

TEST_F(LoggingTest, InfoEmitsAtInfoLevel) {
  common::set_log_level(common::LogLevel::kInfo);
  const std::string out =
      capture_stderr([] { common::log_info("hello ", 42); });
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("hello 42"), std::string::npos);
}

TEST_F(LoggingTest, DebugSuppressedAtInfoLevel) {
  common::set_log_level(common::LogLevel::kInfo);
  const std::string out =
      capture_stderr([] { common::log_debug("secret"); });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, DebugEmitsAtDebugLevel) {
  common::set_log_level(common::LogLevel::kDebug);
  const std::string out =
      capture_stderr([] { common::log_debug("verbose"); });
  EXPECT_NE(out.find("DEBUG"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  common::set_log_level(common::LogLevel::kOff);
  const std::string out = capture_stderr([] {
    common::log_debug("a");
    common::log_info("b");
    common::log_warn("c");
    common::log_error("d");
  });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, WarnAndErrorCarryLevels) {
  common::set_log_level(common::LogLevel::kDebug);
  const std::string warn =
      capture_stderr([] { common::log_warn("careful"); });
  EXPECT_NE(warn.find("WARN"), std::string::npos);
  const std::string error =
      capture_stderr([] { common::log_error("broken"); });
  EXPECT_NE(error.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, MessagesAreNewlineTerminated) {
  common::set_log_level(common::LogLevel::kInfo);
  const std::string out = capture_stderr([] { common::log_info("line"); });
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

TEST_F(LoggingTest, LinesCarryTimestampAndThreadId) {
  common::set_log_level(common::LogLevel::kInfo);
  const std::string out = capture_stderr([] { common::log_info("stamped"); });
  // "+<seconds>s t<id>]" prefix, e.g. "[autohet INFO  +0.123s t1] stamped".
  const auto plus = out.find('+');
  ASSERT_NE(plus, std::string::npos) << out;
  const auto s_t = out.find("s t", plus);
  ASSERT_NE(s_t, std::string::npos) << out;
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(out[plus + 1]))) << out;
  EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(out[s_t + 3]))) << out;
}

TEST_F(LoggingTest, ForwardsArgumentsByReference) {
  common::set_log_level(common::LogLevel::kInfo);
  const std::string payload = "payload";
  const std::string out = capture_stderr(
      [&] { common::log_info("x=", payload, " y=", std::string("tmp")); });
  EXPECT_NE(out.find("x=payload y=tmp"), std::string::npos);
}

TEST_F(LoggingTest, ParseLogLevelRoundTrips) {
  using common::LogLevel;
  const std::pair<const char*, LogLevel> cases[] = {
      {"debug", LogLevel::kDebug}, {"info", LogLevel::kInfo},
      {"warn", LogLevel::kWarn},   {"warning", LogLevel::kWarn},
      {"error", LogLevel::kError}, {"off", LogLevel::kOff},
  };
  for (const auto& [text, expected] : cases) {
    LogLevel parsed = LogLevel::kDebug;
    EXPECT_TRUE(common::parse_log_level(text, &parsed)) << text;
    EXPECT_EQ(parsed, expected) << text;
  }
  LogLevel untouched = LogLevel::kError;
  EXPECT_FALSE(common::parse_log_level("verbose", &untouched));
  EXPECT_FALSE(common::parse_log_level("", &untouched));
  EXPECT_EQ(untouched, common::LogLevel::kError);
}

// The level is read unsynchronized by pool threads inside log_fmt; this must
// be race-free against a concurrent set_log_level (run under TSan in CI).
TEST_F(LoggingTest, ConcurrentLevelChangesAreRaceFree) {
  const std::string out = capture_stderr([] {
    std::vector<std::thread> threads;
    threads.reserve(4);
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < 200; ++i) {
          if (t == 0) {
            common::set_log_level(i % 2 == 0 ? common::LogLevel::kOff
                                             : common::LogLevel::kWarn);
          } else {
            common::log_warn("tick ", i);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  });
  (void)out;  // content depends on interleaving; absence of races is the test
}

}  // namespace
}  // namespace autohet
