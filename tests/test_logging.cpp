#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hpp"

namespace autohet {
namespace {

// Captures stderr around a callable.
template <typename Fn>
std::string capture_stderr(Fn&& fn) {
  std::ostringstream oss;
  std::streambuf* old = std::cerr.rdbuf(oss.rdbuf());
  fn();
  std::cerr.rdbuf(old);
  return oss.str();
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = common::log_level(); }
  void TearDown() override { common::log_level() = saved_; }
  common::LogLevel saved_ = common::LogLevel::kInfo;
};

TEST_F(LoggingTest, InfoEmitsAtInfoLevel) {
  common::log_level() = common::LogLevel::kInfo;
  const std::string out =
      capture_stderr([] { common::log_info("hello ", 42); });
  EXPECT_NE(out.find("INFO"), std::string::npos);
  EXPECT_NE(out.find("hello 42"), std::string::npos);
}

TEST_F(LoggingTest, DebugSuppressedAtInfoLevel) {
  common::log_level() = common::LogLevel::kInfo;
  const std::string out =
      capture_stderr([] { common::log_debug("secret"); });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, DebugEmitsAtDebugLevel) {
  common::log_level() = common::LogLevel::kDebug;
  const std::string out =
      capture_stderr([] { common::log_debug("verbose"); });
  EXPECT_NE(out.find("DEBUG"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  common::log_level() = common::LogLevel::kOff;
  const std::string out = capture_stderr([] {
    common::log_debug("a");
    common::log_info("b");
    common::log_warn("c");
    common::log_error("d");
  });
  EXPECT_TRUE(out.empty());
}

TEST_F(LoggingTest, WarnAndErrorCarryLevels) {
  common::log_level() = common::LogLevel::kDebug;
  const std::string warn =
      capture_stderr([] { common::log_warn("careful"); });
  EXPECT_NE(warn.find("WARN"), std::string::npos);
  const std::string error =
      capture_stderr([] { common::log_error("broken"); });
  EXPECT_NE(error.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, MessagesAreNewlineTerminated) {
  common::log_level() = common::LogLevel::kInfo;
  const std::string out = capture_stderr([] { common::log_info("line"); });
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.back(), '\n');
}

}  // namespace
}  // namespace autohet
