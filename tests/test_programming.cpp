#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "reram/programming.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::evaluate_programming;
using reram::ProgrammingParams;

mapping::AllocationResult allocate(const nn::NetworkSpec& net,
                                   CrossbarShape shape,
                                   bool shared = false) {
  const auto layers = net.mappable_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), shape);
  return mapping::TileAllocator(4, shared).allocate(layers, shapes);
}

TEST(Programming, CellCountCoversAllBitPlanes) {
  const auto net = nn::lenet5();
  const auto allocation = allocate(net, {128, 128});
  const reram::DeviceParams device;
  const auto r = evaluate_programming(allocation, device);
  EXPECT_EQ(r.cells_programmed, net.total_weights() * 8);
}

TEST(Programming, EnergyFormulaExact) {
  const auto allocation = allocate(nn::lenet5(), {128, 128});
  const reram::DeviceParams device;
  ProgrammingParams params;
  params.write_energy_pj_per_cell = 10.0;
  params.verify_pulses = 3.0;
  const auto r = evaluate_programming(allocation, device, params);
  const double expected =
      static_cast<double>(r.cells_programmed) * 3.0 * 10.0 * 1e-3;
  EXPECT_NEAR(r.energy_nj, expected, expected * 1e-12);
}

TEST(Programming, EnergyInvariantToCrossbarShape) {
  // The same weights are written regardless of the crossbar geometry.
  const auto a = evaluate_programming(allocate(nn::alexnet(), {64, 64}),
                                      reram::DeviceParams{});
  const auto b = evaluate_programming(allocate(nn::alexnet(), {512, 512}),
                                      reram::DeviceParams{});
  EXPECT_EQ(a.cells_programmed, b.cells_programmed);
  EXPECT_NEAR(a.energy_nj, b.energy_nj, a.energy_nj * 1e-12);
}

TEST(Programming, LatencyBoundedByTallestOccupiedCrossbar) {
  const auto allocation = allocate(nn::vgg16(), {512, 512});
  const reram::DeviceParams device;
  ProgrammingParams params;
  const auto r = evaluate_programming(allocation, device, params);
  // Row-parallel: at most shape.rows × pulses × write latency.
  EXPECT_LE(r.latency_ns,
            512.0 * params.verify_pulses * params.write_latency_ns + 1e-9);
  EXPECT_GT(r.latency_ns, 0.0);
}

TEST(Programming, TallerCrossbarsTakeLongerToProgram) {
  const auto small = evaluate_programming(allocate(nn::vgg16(), {64, 64}),
                                          reram::DeviceParams{});
  const auto tall = evaluate_programming(allocate(nn::vgg16(), {512, 512}),
                                         reram::DeviceParams{});
  EXPECT_LT(small.latency_ns, tall.latency_ns);
}

TEST(Programming, SerialModeMuchSlower) {
  const auto allocation = allocate(nn::lenet5(), {128, 128});
  const reram::DeviceParams device;
  ProgrammingParams parallel;
  ProgrammingParams serial = parallel;
  serial.row_parallel = false;
  const auto rp = evaluate_programming(allocation, device, parallel);
  const auto rs = evaluate_programming(allocation, device, serial);
  EXPECT_GT(rs.latency_ns, rp.latency_ns);
}

TEST(Programming, FewerBitPlanesCutProgrammingCost) {
  const auto allocation = allocate(nn::lenet5(), {128, 128});
  reram::DeviceParams mlc;
  mlc.cell_bits = 4;  // 2 planes instead of 8
  const auto slc =
      evaluate_programming(allocation, reram::DeviceParams{});
  const auto mlc_report = evaluate_programming(allocation, mlc);
  EXPECT_NEAR(static_cast<double>(mlc_report.cells_programmed) /
                  static_cast<double>(slc.cells_programmed),
              0.25, 1e-12);
}

TEST(Programming, ValidatesParams) {
  const auto allocation = allocate(nn::lenet5(), {128, 128});
  ProgrammingParams bad;
  bad.verify_pulses = 0.5;
  EXPECT_THROW(
      evaluate_programming(allocation, reram::DeviceParams{}, bad),
      std::invalid_argument);
  bad = ProgrammingParams{};
  bad.write_energy_pj_per_cell = 0.0;
  EXPECT_THROW(
      evaluate_programming(allocation, reram::DeviceParams{}, bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace autohet
