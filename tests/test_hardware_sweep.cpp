// Parameterized invariant sweeps of the hardware model across the full
// (model × candidate × tile-size × sharing) grid.
#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "reram/hardware_model.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::AcceleratorConfig;
using reram::evaluate_homogeneous;

class HardwareSweep
    : public ::testing::TestWithParam<
          std::tuple<std::string, int, std::int64_t, bool>> {};

TEST_P(HardwareSweep, ReportInvariants) {
  const auto [model_name, shape_idx, pes, shared] = GetParam();
  const auto net = nn::network_by_name(model_name);
  const auto layers = net.mappable_layers();
  const auto shape =
      mapping::all_candidates()[static_cast<std::size_t>(shape_idx)];
  AcceleratorConfig config;
  config.pes_per_tile = pes;
  config.tile_shared = shared;
  const auto r = evaluate_homogeneous(layers, shape, config);

  // Structural invariants.
  ASSERT_EQ(r.layers.size(), layers.size());
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_LE(r.utilization, 1.0);
  EXPECT_GT(r.energy.total_nj(), 0.0);
  EXPECT_GT(r.area.total_um2(), 0.0);
  EXPECT_GT(r.latency_ns, 0.0);
  EXPECT_GT(r.occupied_tiles, 0);
  EXPECT_GE(r.empty_crossbars, 0);
  EXPECT_LT(r.empty_crossbars, r.occupied_tiles * pes);

  // Energy/latency are the sums of the layer reports.
  double energy = 0.0, latency = 0.0;
  for (const auto& lr : r.layers) {
    energy += lr.energy.total_nj();
    latency += lr.latency_ns;
    EXPECT_EQ(lr.shape, shape);
    EXPECT_GT(lr.logical_crossbars, 0);
    EXPECT_EQ(lr.adc_instances, lr.logical_crossbars * shape.cols);
    EXPECT_GT(lr.mvm_invocations, 0);
  }
  EXPECT_NEAR(energy, r.energy.total_nj(), energy * 1e-12);
  EXPECT_NEAR(latency, r.latency_ns, latency * 1e-12);

  // RUE consistency.
  EXPECT_NEAR(r.rue(), r.utilization * 100.0 / r.energy.total_nj(),
              r.rue() * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HardwareSweep,
    ::testing::Combine(::testing::Values("lenet5", "alexnet", "vgg16"),
                       ::testing::Values(0, 3, 6, 9),
                       ::testing::Values<std::int64_t>(1, 4, 16),
                       ::testing::Bool()));

// Sharing never changes dynamic energy and never increases tiles, across
// the grid.
class SharingSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(SharingSweep, SharingInvariants) {
  const auto [model_name, shape_idx] = GetParam();
  const auto layers = nn::network_by_name(model_name).mappable_layers();
  const auto shape =
      mapping::all_candidates()[static_cast<std::size_t>(shape_idx)];
  AcceleratorConfig base;
  AcceleratorConfig shared;
  shared.tile_shared = true;
  const auto r_base = evaluate_homogeneous(layers, shape, base);
  const auto r_shared = evaluate_homogeneous(layers, shape, shared);
  EXPECT_NEAR(r_base.energy.total_nj(), r_shared.energy.total_nj(),
              r_base.energy.total_nj() * 1e-12);
  EXPECT_LE(r_shared.occupied_tiles, r_base.occupied_tiles);
  EXPECT_GE(r_shared.utilization, r_base.utilization - 1e-12);
  EXPECT_LE(r_shared.area.total_um2(), r_base.area.total_um2() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SharingSweep,
    ::testing::Combine(::testing::Values("lenet5", "alexnet", "vgg16",
                                         "resnet152"),
                       ::testing::Values(0, 2, 5, 8)));

// ResNet152 is heavy; run a single smoke configuration outside the grid.
TEST(HardwareSweepResnet, SmokeConfiguration) {
  const auto layers = nn::resnet152().mappable_layers();
  AcceleratorConfig config;
  config.tile_shared = true;
  const auto r = evaluate_homogeneous(layers, {288, 256}, config);
  EXPECT_EQ(r.layers.size(), 156u);
  EXPECT_GT(r.rue(), 0.0);
}

}  // namespace
}  // namespace autohet
