#include <gtest/gtest.h>

#include <set>

#include "rl/replay_buffer.hpp"

namespace autohet {
namespace {

rl::Transition make_transition(double reward) {
  rl::Transition t;
  t.state = {reward};
  t.next_state = {reward + 1.0};
  t.action = 0.5;
  t.reward = reward;
  return t;
}

TEST(ReplayBuffer, StartsEmpty) {
  rl::ReplayBuffer buf(10);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.capacity(), 10u);
  common::Rng rng(1);
  EXPECT_THROW(buf.sample(rng, 1), std::invalid_argument);
}

TEST(ReplayBuffer, RejectsZeroCapacity) {
  EXPECT_THROW(rl::ReplayBuffer(0), std::invalid_argument);
}

TEST(ReplayBuffer, GrowsUntilCapacity) {
  rl::ReplayBuffer buf(3);
  buf.add(make_transition(1));
  EXPECT_EQ(buf.size(), 1u);
  buf.add(make_transition(2));
  buf.add(make_transition(3));
  buf.add(make_transition(4));  // evicts the oldest
  EXPECT_EQ(buf.size(), 3u);
}

TEST(ReplayBuffer, RingEvictsOldestFirst) {
  rl::ReplayBuffer buf(2);
  buf.add(make_transition(1));
  buf.add(make_transition(2));
  buf.add(make_transition(3));
  common::Rng rng(2);
  std::set<double> rewards;
  for (int i = 0; i < 200; ++i) {
    rewards.insert(buf.sample(rng, 1)[0]->reward);
  }
  EXPECT_FALSE(rewards.contains(1.0));
  EXPECT_TRUE(rewards.contains(2.0));
  EXPECT_TRUE(rewards.contains(3.0));
}

TEST(ReplayBuffer, SampleReturnsRequestedCount) {
  rl::ReplayBuffer buf(10);
  for (int i = 0; i < 5; ++i) buf.add(make_transition(i));
  common::Rng rng(3);
  EXPECT_EQ(buf.sample(rng, 7).size(), 7u);  // with replacement
  EXPECT_EQ(buf.sample(rng, 1).size(), 1u);
}

TEST(ReplayBuffer, SampleCoversAllEntries) {
  rl::ReplayBuffer buf(8);
  for (int i = 0; i < 8; ++i) buf.add(make_transition(i));
  common::Rng rng(4);
  std::set<double> seen;
  for (const auto* t : buf.sample(rng, 400)) seen.insert(t->reward);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ReplayBuffer, StoresTransitionFieldsFaithfully) {
  rl::ReplayBuffer buf(1);
  rl::Transition t;
  t.state = {1.0, 2.0};
  t.next_state = {3.0, 4.0};
  t.action = 0.75;
  t.reward = -0.5;
  t.terminal = true;
  buf.add(t);
  common::Rng rng(5);
  const auto* got = buf.sample(rng, 1)[0];
  EXPECT_EQ(got->state, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(got->next_state, (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(got->action, 0.75);
  EXPECT_EQ(got->reward, -0.5);
  EXPECT_TRUE(got->terminal);
}

}  // namespace
}  // namespace autohet
