#include <gtest/gtest.h>

#include "common/cli.hpp"

namespace autohet {
namespace {

using common::ArgParser;

ArgParser make_parser() {
  ArgParser args("tool", "a test tool");
  args.add_positional("command", "what to do");
  args.add_option("episodes", "300", "episode count");
  args.add_option("rate", "0.5", "a rate");
  args.add_option("name", "", "a name");
  args.add_flag("verbose", "extra output");
  return args;
}

TEST(ArgParser, DefaultsApplyWhenUnset) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run"};
  std::string error;
  ASSERT_TRUE(args.parse(2, argv, &error)) << error;
  EXPECT_EQ(args.positional("command"), "run");
  EXPECT_EQ(args.option_int("episodes"), 300);
  EXPECT_DOUBLE_EQ(args.option_double("rate"), 0.5);
  EXPECT_FALSE(args.flag("verbose"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run", "--episodes", "42", "--verbose"};
  std::string error;
  ASSERT_TRUE(args.parse(5, argv, &error)) << error;
  EXPECT_EQ(args.option_int("episodes"), 42);
  EXPECT_TRUE(args.flag("verbose"));
}

TEST(ArgParser, EqualsSeparatedValues) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run", "--episodes=7", "--name=abc"};
  std::string error;
  ASSERT_TRUE(args.parse(4, argv, &error)) << error;
  EXPECT_EQ(args.option_int("episodes"), 7);
  EXPECT_EQ(args.option("name"), "abc");
}

TEST(ArgParser, RejectsUnknownOption) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run", "--bogus", "1"};
  std::string error;
  EXPECT_FALSE(args.parse(4, argv, &error));
  EXPECT_NE(error.find("unknown option"), std::string::npos);
}

TEST(ArgParser, RejectsMissingValue) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run", "--episodes"};
  std::string error;
  EXPECT_FALSE(args.parse(3, argv, &error));
  EXPECT_NE(error.find("needs a value"), std::string::npos);
}

TEST(ArgParser, RejectsFlagWithValue) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run", "--verbose=yes"};
  std::string error;
  EXPECT_FALSE(args.parse(3, argv, &error));
  EXPECT_NE(error.find("takes no value"), std::string::npos);
}

TEST(ArgParser, RejectsMissingPositional) {
  auto args = make_parser();
  const char* argv[] = {"tool"};
  std::string error;
  EXPECT_FALSE(args.parse(1, argv, &error));
  EXPECT_NE(error.find("missing argument"), std::string::npos);
}

TEST(ArgParser, RejectsExtraPositional) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run", "again"};
  std::string error;
  EXPECT_FALSE(args.parse(3, argv, &error));
  EXPECT_NE(error.find("unexpected argument"), std::string::npos);
}

TEST(ArgParser, HelpRequested) {
  auto args = make_parser();
  const char* argv[] = {"tool", "--help"};
  std::string error;
  EXPECT_FALSE(args.parse(2, argv, &error));
  EXPECT_NE(error.find("usage: tool"), std::string::npos);
  EXPECT_NE(error.find("--episodes"), std::string::npos);
  EXPECT_NE(error.find("episode count"), std::string::npos);
}

TEST(ArgParser, NonNumericValueThrowsOnTypedAccess) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run", "--episodes", "abc"};
  std::string error;
  ASSERT_TRUE(args.parse(4, argv, &error));
  EXPECT_THROW(args.option_int("episodes"), std::invalid_argument);
  const char* argv2[] = {"tool", "run", "--rate", "1.5x"};
  auto args2 = make_parser();
  ASSERT_TRUE(args2.parse(4, argv2, &error));
  EXPECT_THROW(args2.option_double("rate"), std::invalid_argument);
}

TEST(ArgParser, TypedAccessValidatesKind) {
  auto args = make_parser();
  const char* argv[] = {"tool", "run"};
  std::string error;
  ASSERT_TRUE(args.parse(2, argv, &error));
  EXPECT_THROW(args.flag("episodes"), std::invalid_argument);
  EXPECT_THROW(args.option("verbose"), std::invalid_argument);
  EXPECT_THROW(args.positional("nope"), std::invalid_argument);
}

TEST(ArgParser, DuplicateRegistrationRejected) {
  ArgParser args("t", "d");
  args.add_flag("x", "h");
  EXPECT_THROW(args.add_option("x", "1", "h"), std::invalid_argument);
}

TEST(ArgParser, OptionalPositionalsUseDefaultsWhenOmitted) {
  ArgParser args("t", "d");
  args.add_optional_positional("episodes", "300", "h");
  args.add_optional_positional("seed", "1", "h");
  const char* argv[] = {"t"};
  std::string error;
  ASSERT_TRUE(args.parse(1, argv, &error)) << error;
  EXPECT_EQ(args.positional("episodes"), "300");
  EXPECT_EQ(args.positional("seed"), "1");
}

TEST(ArgParser, OptionalPositionalsFillLeftToRight) {
  ArgParser args("t", "d");
  args.add_optional_positional("episodes", "300", "h");
  args.add_optional_positional("seed", "1", "h");
  const char* argv[] = {"t", "50"};
  std::string error;
  ASSERT_TRUE(args.parse(2, argv, &error)) << error;
  EXPECT_EQ(args.positional("episodes"), "50");
  EXPECT_EQ(args.positional("seed"), "1");
  const char* argv2[] = {"t", "50", "7"};
  ArgParser args2("t", "d");
  args2.add_optional_positional("episodes", "300", "h");
  args2.add_optional_positional("seed", "1", "h");
  ASSERT_TRUE(args2.parse(3, argv2, &error)) << error;
  EXPECT_EQ(args2.positional("seed"), "7");
}

TEST(ArgParser, OptionalPositionalsMixWithOptions) {
  ArgParser args("t", "d");
  args.add_optional_positional("episodes", "300", "h");
  args.add_option("trace-out", "", "h");
  const char* argv[] = {"t", "25", "--trace-out", "trace.json"};
  std::string error;
  ASSERT_TRUE(args.parse(4, argv, &error)) << error;
  EXPECT_EQ(args.positional("episodes"), "25");
  EXPECT_EQ(args.option("trace-out"), "trace.json");
}

TEST(ArgParser, RequiredPositionalAfterOptionalRejected) {
  ArgParser args("t", "d");
  args.add_optional_positional("episodes", "300", "h");
  EXPECT_THROW(args.add_positional("command", "h"), std::invalid_argument);
}

TEST(ArgParser, ProvidedTracksUserSuppliedOptions) {
  ArgParser args("t", "d");
  args.add_option("episodes", "300", "h");
  args.add_option("plan-in", "", "h");
  args.add_flag("no-tile-shared", "h");
  const char* argv[] = {"t", "--plan-in", "plan.json"};
  std::string error;
  ASSERT_TRUE(args.parse(3, argv, &error)) << error;
  EXPECT_TRUE(args.provided("plan-in"));
  EXPECT_FALSE(args.provided("episodes"));  // defaulted, not supplied
  EXPECT_FALSE(args.provided("no-tile-shared"));
  EXPECT_THROW(args.provided("unknown"), std::invalid_argument);
}

TEST(ArgParser, RejectOptionConflicts) {
  const auto parse = [](std::vector<const char*> argv, std::string* error) {
    ArgParser args("t", "d");
    args.add_option("plan-in", "", "h");
    args.add_option("episodes", "300", "h");
    args.add_option("seed", "1", "h");
    args.add_flag("no-tile-shared", "h");
    argv.insert(argv.begin(), "t");
    EXPECT_TRUE(args.parse(static_cast<int>(argv.size()), argv.data(), error))
        << *error;
    return args;
  };
  std::string error;

  // Replay mode combined with a search-configuration option is rejected
  // with an error naming both options.
  auto conflicted = parse({"--plan-in", "p.json", "--episodes", "5"}, &error);
  EXPECT_FALSE(conflicted.reject_option_conflicts(
      "plan-in", {"episodes", "seed", "no-tile-shared"}, &error));
  EXPECT_EQ(error, "--plan-in cannot be combined with --episodes");

  // Flags conflict too.
  auto flagged = parse({"--plan-in", "p.json", "--no-tile-shared"}, &error);
  EXPECT_FALSE(flagged.reject_option_conflicts(
      "plan-in", {"episodes", "seed", "no-tile-shared"}, &error));
  EXPECT_EQ(error, "--plan-in cannot be combined with --no-tile-shared");

  // Gate alone, or conflicts without the gate, pass.
  auto gate_only = parse({"--plan-in", "p.json"}, &error);
  EXPECT_TRUE(gate_only.reject_option_conflicts(
      "plan-in", {"episodes", "seed", "no-tile-shared"}, &error));
  auto search_only = parse({"--episodes", "5", "--seed", "2"}, &error);
  EXPECT_TRUE(search_only.reject_option_conflicts(
      "plan-in", {"episodes", "seed", "no-tile-shared"}, &error));
}

TEST(ArgParser, HelpMarksOptionalPositionalsWithBrackets) {
  ArgParser args("t", "d");
  args.add_positional("command", "h");
  args.add_optional_positional("episodes", "300", "h");
  const std::string help = args.help_text();
  EXPECT_NE(help.find("<command>"), std::string::npos);
  EXPECT_NE(help.find("[episodes]"), std::string::npos);
}

}  // namespace
}  // namespace autohet
