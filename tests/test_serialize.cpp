#include <gtest/gtest.h>

#include <sstream>

#include "nn/model_zoo.hpp"
#include "reram/hardware_model.hpp"
#include "report/serialize.hpp"

namespace autohet {
namespace {

reram::NetworkReport sample_report() {
  const auto layers = nn::lenet5().mappable_layers();
  reram::AcceleratorConfig config;
  return reram::evaluate_homogeneous(layers, {64, 64}, config);
}

TEST(SerializeNetworkReport, HasHeaderLayersAndTotal) {
  const auto report = sample_report();
  std::ostringstream oss;
  report::write_network_report_csv(oss, report);
  const std::string csv = oss.str();
  // Header + 5 layers + TOTAL = 7 lines.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 7);
  EXPECT_EQ(csv.rfind("layer,shape,", 0), 0u);
  EXPECT_NE(csv.find("\nTOTAL,"), std::string::npos);
  EXPECT_NE(csv.find("64x64"), std::string::npos);
}

TEST(SerializeNetworkReport, LayerRowsCarryPerLayerNumbers) {
  const auto report = sample_report();
  std::ostringstream oss;
  report::write_network_report_csv(oss, report);
  std::istringstream iss(oss.str());
  std::string line;
  std::getline(iss, line);  // header
  std::getline(iss, line);  // layer 1
  EXPECT_EQ(line.rfind("1,64x64,", 0), 0u);
}

TEST(SerializeSummary, SingleLineWithHeader) {
  const auto report = sample_report();
  std::ostringstream oss;
  report::write_summary_csv(oss, "lenet-64", report);
  const std::string csv = oss.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
  EXPECT_EQ(csv.rfind("name,utilization,", 0), 0u);
  EXPECT_NE(csv.find("lenet-64,"), std::string::npos);
}

TEST(SerializeSummary, HeaderSuppression) {
  const auto report = sample_report();
  std::ostringstream oss;
  report::write_summary_csv(oss, "a", report, /*with_header=*/true);
  report::write_summary_csv(oss, "b", report, /*with_header=*/false);
  const std::string csv = oss.str();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  // Only one header.
  EXPECT_EQ(csv.find("name,"), csv.rfind("name,"));
}

}  // namespace
}  // namespace autohet
