#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "reram/pipeline.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::AcceleratorConfig;
using reram::balance_replication;
using reram::evaluate_pipeline;

std::vector<nn::LayerSpec> vgg_layers() {
  return nn::vgg16().mappable_layers();
}

TEST(Pipeline, BottleneckIsMaxStageInterval) {
  const auto layers = vgg_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const auto report = evaluate_pipeline(layers, shapes, AcceleratorConfig{});
  ASSERT_EQ(report.stages.size(), layers.size());
  double max_interval = 0.0;
  double fill = 0.0;
  for (const auto& s : report.stages) {
    max_interval = std::max(max_interval, s.interval_ns);
    fill += s.interval_ns;
    EXPECT_EQ(s.replication, 1);
    EXPECT_EQ(s.extra_tiles, 0);
  }
  EXPECT_DOUBLE_EQ(report.bottleneck_interval_ns, max_interval);
  EXPECT_DOUBLE_EQ(report.fill_latency_ns, fill);
  EXPECT_NEAR(report.throughput_inferences_per_s, 1e9 / max_interval, 1e-6);
}

TEST(Pipeline, ReplicationDividesInterval) {
  const auto layers = vgg_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  std::vector<std::int64_t> rep(layers.size(), 1);
  rep[0] = 4;
  const auto base = evaluate_pipeline(layers, shapes, AcceleratorConfig{});
  const auto repl =
      evaluate_pipeline(layers, shapes, AcceleratorConfig{}, rep);
  EXPECT_NEAR(repl.stages[0].interval_ns,
              base.stages[0].interval_ns / 4.0, 1e-9);
  EXPECT_GT(repl.stages[0].extra_tiles, 0);
}

TEST(Pipeline, BalancingImprovesThroughputWithinBudget) {
  const auto layers = vgg_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const AcceleratorConfig config;
  const auto base = evaluate_pipeline(layers, shapes, config);
  for (std::int64_t budget : {8, 32, 128}) {
    const auto rep = balance_replication(layers, shapes, config, budget);
    const auto balanced = evaluate_pipeline(layers, shapes, config, rep);
    EXPECT_LE(balanced.bottleneck_interval_ns,
              base.bottleneck_interval_ns + 1e-9)
        << budget;
    EXPECT_LE(balanced.total_extra_tiles, budget) << budget;
  }
}

TEST(Pipeline, BalancingIsMonotoneInBudget) {
  const auto layers = vgg_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {256, 256});
  const AcceleratorConfig config;
  double prev = 1e300;
  for (std::int64_t budget : {0, 4, 16, 64, 256}) {
    const auto rep = balance_replication(layers, shapes, config, budget);
    const auto report = evaluate_pipeline(layers, shapes, config, rep);
    EXPECT_LE(report.bottleneck_interval_ns, prev + 1e-9) << budget;
    prev = report.bottleneck_interval_ns;
  }
}

TEST(Pipeline, ZeroBudgetKeepsSingleCopies) {
  const auto layers = vgg_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {64, 64});
  const auto rep =
      balance_replication(layers, shapes, AcceleratorConfig{}, 0);
  for (auto r : rep) EXPECT_EQ(r, 1);
}

TEST(Pipeline, EarlyConvLayersAreTheBottleneck) {
  // With per-position MVM scheduling, the large-feature-map early layers
  // dominate the pipeline interval — the reason ISAAC-style designs
  // replicate them.
  const auto layers = vgg_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const auto report = evaluate_pipeline(layers, shapes, AcceleratorConfig{});
  std::size_t worst = 0;
  for (std::size_t k = 1; k < report.stages.size(); ++k) {
    if (report.stages[k].interval_ns >
        report.stages[worst].interval_ns) {
      worst = k;
    }
  }
  EXPECT_LT(worst, 2u);  // one of the two 32x32-feature-map layers
}

TEST(Pipeline, ValidatesArguments) {
  const auto layers = vgg_layers();
  const std::vector<CrossbarShape> wrong(3, CrossbarShape{64, 64});
  EXPECT_THROW(evaluate_pipeline(layers, wrong, AcceleratorConfig{}),
               std::invalid_argument);
  const std::vector<CrossbarShape> shapes(layers.size(), {64, 64});
  std::vector<std::int64_t> bad_rep(layers.size(), 1);
  bad_rep[3] = 0;
  EXPECT_THROW(
      evaluate_pipeline(layers, shapes, AcceleratorConfig{}, bad_rep),
      std::invalid_argument);
  EXPECT_THROW(balance_replication(layers, shapes, AcceleratorConfig{}, -1),
               std::invalid_argument);
}

}  // namespace
}  // namespace autohet
