// Tests for tile-based allocation and the tile-shared remapping scheme
// (Algorithm 1), including the Fig. 4 / Fig. 8 anchors from the paper.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"
#include "mapping/tile_allocator.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

using mapping::AllocationResult;
using mapping::CombMap;
using mapping::CrossbarShape;
using mapping::Tile;
using mapping::TileAllocator;
using mapping::tile_shared_remap;

std::vector<Tile> make_tiles(const std::vector<std::int64_t>& empties,
                             CrossbarShape shape = {32, 32}) {
  std::vector<Tile> tiles;
  for (std::size_t i = 0; i < empties.size(); ++i) {
    Tile t;
    t.id = static_cast<std::int64_t>(i);
    t.shape = shape;
    t.empty_xbs = empties[i];
    t.layer_ids = {static_cast<std::int64_t>(i)};
    tiles.push_back(std::move(t));
  }
  return tiles;
}

std::vector<Tile*> pointers(std::vector<Tile>& tiles) {
  std::vector<Tile*> ptrs;
  for (auto& t : tiles) ptrs.push_back(&t);
  return ptrs;
}

// ---- Algorithm 1 unit behaviour ----

TEST(TileSharedRemap, Fig8Example) {
  // Fig. 8: three layers, each fitting one tile of four 32x32 crossbars.
  // L1 uses 2 XBs, L2 and L3 use 1 XB each -> everything fits in tile 1.
  std::vector<Tile> tiles = make_tiles({2, 3, 3});
  auto ptrs = pointers(tiles);
  const CombMap comb = tile_shared_remap(ptrs, 4);

  // Tiles 2 and 3 are drained into tile 1 (id 0).
  ASSERT_EQ(comb.size(), 1u);
  ASSERT_TRUE(comb.contains(0));
  EXPECT_EQ(comb.at(0).size(), 2u);
  EXPECT_EQ(tiles[0].empty_xbs, 0);  // 2 empty - 1 - 1 = 0: tile full
  EXPECT_TRUE(tiles[1].released);
  EXPECT_TRUE(tiles[2].released);
  // The receiving tile now lists all three layers.
  EXPECT_EQ(tiles[0].layer_ids.size(), 3u);
}

TEST(TileSharedRemap, NoMergeWhenNothingFits) {
  // Two nearly-full tiles cannot host each other's contents.
  std::vector<Tile> tiles = make_tiles({1, 1});
  auto ptrs = pointers(tiles);
  const CombMap comb = tile_shared_remap(ptrs, 4);
  EXPECT_TRUE(comb.empty());
  EXPECT_FALSE(tiles[0].released);
  EXPECT_FALSE(tiles[1].released);
}

TEST(TileSharedRemap, OccupiedCrossbarsAreConserved) {
  // Property: total occupied crossbars before == after, for many patterns.
  const std::int64_t xbs = 8;
  const std::vector<std::vector<std::int64_t>> patterns = {
      {0, 1, 2, 3, 4, 5, 6, 7},
      {7, 7, 7, 7},
      {1, 7, 2, 6, 3, 5, 4},
      {0, 0, 0},
      {5},
      {4, 4, 4, 4, 4, 4},
  };
  for (const auto& pattern : patterns) {
    std::vector<Tile> tiles = make_tiles(pattern);
    const std::int64_t occupied_before = std::accumulate(
        tiles.begin(), tiles.end(), std::int64_t{0},
        [&](std::int64_t acc, const Tile& t) {
          return acc + (xbs - t.empty_xbs);
        });
    auto ptrs = pointers(tiles);
    tile_shared_remap(ptrs, xbs);
    const std::int64_t occupied_after = std::accumulate(
        tiles.begin(), tiles.end(), std::int64_t{0},
        [&](std::int64_t acc, const Tile& t) {
          return t.released ? acc : acc + (xbs - t.empty_xbs);
        });
    EXPECT_EQ(occupied_before, occupied_after);
  }
}

TEST(TileSharedRemap, ReleasedTilesAreFullyDrained) {
  std::vector<Tile> tiles = make_tiles({1, 2, 3, 3, 3, 2});
  auto ptrs = pointers(tiles);
  tile_shared_remap(ptrs, 4);
  for (const auto& t : tiles) {
    if (t.released) {
      EXPECT_EQ(t.empty_xbs, 0);
      EXPECT_TRUE(t.layer_ids.empty());
    } else {
      EXPECT_GE(t.empty_xbs, 0);
      EXPECT_LT(t.empty_xbs, 4);
    }
  }
}

TEST(TileSharedRemap, NeverIncreasesOccupiedTiles) {
  common::Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t xbs = 2 + static_cast<std::int64_t>(rng.uniform_u64(15));
    const std::size_t count = 1 + rng.uniform_u64(20);
    std::vector<std::int64_t> empties(count);
    for (auto& e : empties) e = static_cast<std::int64_t>(rng.uniform_u64(
        static_cast<std::uint64_t>(xbs)));
    std::vector<Tile> tiles = make_tiles(empties);
    auto ptrs = pointers(tiles);
    tile_shared_remap(ptrs, xbs);
    std::int64_t occupied = 0;
    for (const auto& t : tiles) occupied += t.released ? 0 : 1;
    EXPECT_LE(occupied, static_cast<std::int64_t>(count));
  }
}

// ---- TileAllocator end-to-end ----

TEST(TileAllocator, TileBasedRoundsUp) {
  // A layer needing 5 logical crossbars on 4-XB tiles gets 2 tiles,
  // wasting 3/8 of the crossbars (§2.2.2 example).
  const auto layer = nn::make_conv(35, 64, 3, 1, 1, 16, 16);
  // floor(64/9)=7 kernels/row-block; ceil(35/7)=5 row blocks; 1 col block.
  const TileAllocator alloc(4, /*tile_shared=*/false);
  const auto result = alloc.allocate({layer}, {{64, 64}});
  ASSERT_EQ(result.layers.size(), 1u);
  EXPECT_EQ(result.layers[0].mapping.logical_crossbars(), 5);
  EXPECT_EQ(result.layers[0].tiles_allocated, 2);
  EXPECT_EQ(result.occupied_tiles(), 2);
  EXPECT_EQ(result.empty_crossbars(), 3);
}

TEST(TileAllocator, Fig4EmptyCrossbarProportions) {
  // Fig. 4: first four VGG16 CONV layers on 64x64 crossbars. The paper
  // reports ~24% average empty crossbars at 4 XBs/tile rising to ~60% at 32.
  const auto net = nn::vgg16();
  const auto mappable = net.mappable_layers();
  const std::vector<nn::LayerSpec> first4(mappable.begin(),
                                          mappable.begin() + 4);
  const std::vector<CrossbarShape> shapes(4, CrossbarShape{64, 64});

  const auto empty_fraction = [&](std::int64_t xbs_per_tile) {
    const TileAllocator alloc(xbs_per_tile, false);
    const auto result = alloc.allocate(first4, shapes);
    double total = 0.0;
    for (const auto& layer : result.layers) {
      const double allocated =
          static_cast<double>(layer.tiles_allocated * xbs_per_tile);
      const double used =
          static_cast<double>(layer.mapping.logical_crossbars());
      total += (allocated - used) / allocated;
    }
    return total / 4.0;
  };

  EXPECT_NEAR(empty_fraction(4), 0.24, 0.03);
  EXPECT_NEAR(empty_fraction(32), 0.60, 0.05);
  // Monotone in tile size.
  EXPECT_LT(empty_fraction(4), empty_fraction(8));
  EXPECT_LT(empty_fraction(8), empty_fraction(16));
  EXPECT_LT(empty_fraction(16), empty_fraction(32));
}

TEST(TileLevel, Fig5Utilization) {
  // Fig. 5 reports utilization 27/32 for XB64 and 27/128 for XB128: both are
  // tile-level numbers with 4 crossbars per tile. The 64x64 mapping fills
  // its tile exactly (4 crossbars); the 128x128 mapping uses 1 of 4.
  const auto layer = nn::make_conv(12, 128, 3, 1, 1, 16, 16);
  const TileAllocator alloc(4, /*tile_shared=*/false);
  const auto on64 = alloc.allocate({layer}, {{64, 64}});
  EXPECT_NEAR(on64.system_utilization(), 27.0 / 32.0, 1e-12);
  const auto on128 = alloc.allocate({layer}, {{128, 128}});
  EXPECT_NEAR(on128.system_utilization(), 27.0 / 128.0, 1e-12);
}

TEST(TileAllocator, TileSharedImprovesUtilization) {
  const auto net = nn::vgg16();
  const auto mappable = net.mappable_layers();
  const std::vector<CrossbarShape> shapes(mappable.size(),
                                          CrossbarShape{64, 64});
  const auto base =
      TileAllocator(4, false).allocate(mappable, shapes);
  const auto shared =
      TileAllocator(4, true).allocate(mappable, shapes);
  EXPECT_LE(shared.occupied_tiles(), base.occupied_tiles());
  EXPECT_GE(shared.system_utilization(), base.system_utilization());
  EXPECT_EQ(shared.useful_cells(), base.useful_cells());
}

TEST(TileAllocator, SharingOnlyWithinSameShapeGroup) {
  // Two tiny layers on different shapes must not share a tile.
  const auto l1 = nn::make_conv(3, 4, 3, 1, 1, 8, 8);
  const auto l2 = nn::make_conv(3, 4, 3, 1, 1, 8, 8);
  const TileAllocator alloc(4, true);
  const auto result =
      alloc.allocate({l1, l2}, {{32, 32}, {64, 64}});
  // Each layer needs 1 crossbar -> 1 tile each; shapes differ so no merge.
  EXPECT_EQ(result.occupied_tiles(), 2);
  EXPECT_TRUE(result.remap.empty());

  // Same shapes -> the tiles merge.
  const auto merged = alloc.allocate({l1, l2}, {{32, 32}, {32, 32}});
  EXPECT_EQ(merged.occupied_tiles(), 1);
  EXPECT_EQ(merged.remap.size(), 1u);
}

TEST(TileAllocator, SystemUtilizationAccountsEmptyCrossbars) {
  // One layer occupying exactly 1 of 4 crossbars in its tile: system
  // utilization = layer utilization / 4.
  const auto layer = nn::make_conv(3, 4, 3, 1, 1, 8, 8);
  const TileAllocator alloc(4, false);
  const auto result = alloc.allocate({layer}, {{32, 32}});
  const double layer_util = result.layers[0].mapping.utilization();
  EXPECT_NEAR(result.system_utilization(), layer_util / 4.0, 1e-12);
}

TEST(TileAllocator, ValidatesArguments) {
  EXPECT_THROW(TileAllocator(0, false), std::invalid_argument);
  const TileAllocator alloc(4, false);
  const auto layer = nn::make_conv(3, 4, 3, 1, 1, 8, 8);
  EXPECT_THROW(alloc.allocate({layer}, {}), std::invalid_argument);
}

class TileAllocatorParam
    : public ::testing::TestWithParam<std::tuple<std::int64_t, bool>> {};

TEST_P(TileAllocatorParam, AlexNetInvariants) {
  const auto [xbs, shared] = GetParam();
  const auto mappable = nn::alexnet().mappable_layers();
  const std::vector<CrossbarShape> shapes(mappable.size(),
                                          CrossbarShape{128, 128});
  const auto result = TileAllocator(xbs, shared).allocate(mappable, shapes);
  // Occupied crossbars never exceed capacity of occupied tiles.
  std::int64_t needed = 0;
  for (const auto& l : result.layers) {
    needed += l.mapping.logical_crossbars();
  }
  EXPECT_EQ(result.total_logical_crossbars() - result.empty_crossbars(),
            needed);
  EXPECT_GE(result.system_utilization(), 0.0);
  EXPECT_LE(result.system_utilization(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TileAllocatorParam,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8, 16,
                                                              32),
                                            ::testing::Bool()));

}  // namespace
}  // namespace autohet
