// Adaptive Monte-Carlo budgets: the Wilson interval, the sequential
// stopping rule on raw Bernoulli streams (coverage, monotonicity, clamps),
// fixed-mode bit-identity across threads and kernel policies, the
// adaptive-prefix property (an adaptive run reports exactly the fixed-mode
// statistics of its executed trials), zero-rate cache spanning, the
// cross-allocation LayerFabricCache, and the in-search reward plumbing.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "autohet/env.hpp"
#include "common/rng.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "reram/eval_engine.hpp"
#include "reram/faults.hpp"
#include "reram/functional.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::FaultConfig;
using reram::KernelPolicy;
using reram::RobustnessBudget;
using reram::RobustnessOptions;
using reram::RobustnessReport;
using reram::SequentialStopper;
using reram::WilsonInterval;
using reram::wilson_interval;

nn::NetworkSpec tiny_net() {
  nn::NetworkSpec net;
  net.name = "tiny";
  net.layers.push_back(nn::make_conv(2, 4, 3, 1, 1, 6, 6));
  net.layers.push_back(nn::make_maxpool(4, 2, 2, 6, 6));
  net.layers.push_back(nn::make_fc(4 * 3 * 3, 10, /*relu=*/false));
  return net;
}

FaultConfig noisy_config() {
  FaultConfig fc;
  fc.stuck_at_zero_rate = 2e-3;
  fc.stuck_at_one_rate = 2e-3;
  fc.program_sigma = 0.05;
  fc.cell_bits = 2;
  return fc;
}

// Full-field equality including the budget-era fields. Everything but
// trials_requested / early_stopped must match for "statistically the same
// run"; callers that expect complete identity compare those too.
void expect_stats_identical(const RobustnessReport& a,
                            const RobustnessReport& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.samples, b.samples);
  EXPECT_EQ(a.mean_accuracy, b.mean_accuracy);
  EXPECT_EQ(a.stddev_accuracy, b.stddev_accuracy);
  EXPECT_EQ(a.min_accuracy, b.min_accuracy);
  EXPECT_EQ(a.max_accuracy, b.max_accuracy);
  EXPECT_EQ(a.mean_logit_error, b.mean_logit_error);
  EXPECT_EQ(a.accuracy_ci_lower, b.accuracy_ci_lower);
  EXPECT_EQ(a.accuracy_ci_upper, b.accuracy_ci_upper);
  EXPECT_EQ(a.layer_error, b.layer_error);
  EXPECT_EQ(a.fault_stats.physical_cells, b.fault_stats.physical_cells);
  EXPECT_EQ(a.fault_stats.stuck_at_zero, b.fault_stats.stuck_at_zero);
  EXPECT_EQ(a.fault_stats.stuck_at_one, b.fault_stats.stuck_at_one);
  EXPECT_EQ(a.fault_stats.weights_changed, b.fault_stats.weights_changed);
}

void expect_reports_identical(const RobustnessReport& a,
                              const RobustnessReport& b) {
  expect_stats_identical(a, b);
  EXPECT_EQ(a.trials_requested, b.trials_requested);
  EXPECT_EQ(a.early_stopped, b.early_stopped);
}

// ---------------------------------------------------------------------------
// Wilson interval.

TEST(WilsonIntervalTest, DegenerateAndBoundaryCases) {
  const WilsonInterval empty = wilson_interval(0.0, 0.0);
  EXPECT_EQ(empty.lower, 0.0);
  EXPECT_EQ(empty.upper, 1.0);

  // All-success: lower bound rises with n, upper pinned at 1.
  const WilsonInterval n4 = wilson_interval(4.0, 4.0);
  const WilsonInterval n64 = wilson_interval(64.0, 64.0);
  EXPECT_NEAR(n4.upper, 1.0, 1e-12);
  EXPECT_NEAR(n64.upper, 1.0, 1e-12);
  EXPECT_GT(n64.lower, n4.lower);
  EXPECT_GT(n4.lower, 0.0);

  // All-failure mirrors all-success.
  const WilsonInterval zeros = wilson_interval(0.0, 64.0);
  EXPECT_NEAR(zeros.lower, 0.0, 1e-12);
  EXPECT_NEAR(zeros.upper, 1.0 - n64.lower, 1e-12);
}

TEST(WilsonIntervalTest, HalfwidthShrinksWithN) {
  double prev = 1.0;
  for (const double n : {8.0, 32.0, 128.0, 512.0}) {
    const WilsonInterval ci = wilson_interval(n / 2.0, n);
    EXPECT_LT(ci.halfwidth(), prev);
    EXPECT_GT(ci.lower, 0.0);
    EXPECT_LT(ci.upper, 1.0);
    prev = ci.halfwidth();
  }
}

TEST(WilsonIntervalTest, StaysInsideUnitInterval) {
  for (int s = 0; s <= 10; ++s) {
    const WilsonInterval ci = wilson_interval(s, 10.0);
    EXPECT_GE(ci.lower, 0.0);
    EXPECT_LE(ci.upper, 1.0);
    EXPECT_LE(ci.lower, ci.upper);
  }
}

// ---------------------------------------------------------------------------
// Sequential stopping rule on raw Bernoulli streams.

// Drives the stopper exactly as the Monte-Carlo loop does: run to the next
// decision boundary, feed the per-trial successes, stop when it says so.
int run_stopper(const RobustnessBudget& budget, int requested,
                const std::vector<int>& successes, int samples_per_trial) {
  SequentialStopper stopper(budget, requested);
  int executed = 0;
  for (;;) {
    const int boundary = stopper.next_boundary(executed);
    while (executed < boundary) {
      stopper.add_trial(successes[static_cast<std::size_t>(executed)],
                        samples_per_trial);
      ++executed;
    }
    if (stopper.should_stop()) return executed;
  }
}

std::vector<int> bernoulli_trials(common::Rng& rng, int trials, int samples,
                                  double p) {
  std::vector<int> successes(static_cast<std::size_t>(trials), 0);
  for (auto& s : successes) {
    for (int i = 0; i < samples; ++i) s += rng.uniform() < p ? 1 : 0;
  }
  return successes;
}

TEST(SequentialStopperTest, PooledCoverageOnIndependentDraws) {
  // With one sample per trial every draw is independent, so the pooled
  // interval is the exact Wilson CI and should cover the true p at close to
  // the nominal 95% rate. Seeded, so the count is a constant.
  common::Rng rng(0xc0ffee);
  constexpr int kReps = 200;
  constexpr double kTrueP = 0.3;
  int covered = 0;
  for (int r = 0; r < kReps; ++r) {
    SequentialStopper stopper({}, /*requested=*/400);
    for (int t = 0; t < 400; ++t) {
      stopper.add_trial(rng.uniform() < kTrueP ? 1 : 0, 1);
    }
    const WilsonInterval ci = stopper.pooled_interval();
    if (ci.lower <= kTrueP && kTrueP <= ci.upper) ++covered;
  }
  EXPECT_GE(covered, static_cast<int>(kReps * 0.90));
}

TEST(SequentialStopperTest, RobustIntervalNeverTighterThanPooled) {
  // Clustered trials (whole-fabric successes/failures) inflate the design
  // effect; the reported interval must widen, never narrow.
  SequentialStopper stopper({}, /*requested=*/16);
  for (int t = 0; t < 16; ++t) stopper.add_trial(t % 2 == 0 ? 8 : 0, 8);
  EXPECT_GT(stopper.design_effect(), 1.0);
  EXPECT_GE(stopper.interval().halfwidth(),
            stopper.pooled_interval().halfwidth());
}

TEST(SequentialStopperTest, ConsistentTrialsKeepFullSampleSize) {
  // Zero between-trial variance at an interior p̂: ρ̂ = 0, DEFF = 1, the
  // robust interval equals the pooled one.
  SequentialStopper stopper({}, /*requested=*/8);
  for (int t = 0; t < 8; ++t) stopper.add_trial(4, 8);
  EXPECT_EQ(stopper.design_effect(), 1.0);
  EXPECT_EQ(stopper.interval().lower, stopper.pooled_interval().lower);
  EXPECT_EQ(stopper.interval().upper, stopper.pooled_interval().upper);
}

TEST(SequentialStopperTest, TrialsUsedMonotoneInCiTarget) {
  // Tightening the CI target can only cost more trials on the same stream.
  common::Rng rng(42);
  const std::vector<int> successes = bernoulli_trials(rng, 512, 8, 0.5);
  int prev = 0;
  for (const double hw : {0.30, 0.20, 0.10, 0.05, 0.03}) {
    RobustnessBudget budget;
    budget.mode = RobustnessBudget::Mode::kAdaptive;
    budget.ci_halfwidth = hw;
    budget.min_trials = 1;
    const int used = run_stopper(budget, 512, successes, 8);
    EXPECT_GE(used, prev) << "halfwidth " << hw;
    prev = used;
  }
  // The loosest target stops well short of the cap; the tightest needs more
  // than the minimum.
  EXPECT_LT(prev, 512);
  EXPECT_GT(prev, 1);
}

TEST(SequentialStopperTest, MinTrialsClampHolds) {
  // An immediately decisive stream (every sample agrees) still runs the
  // configured minimum.
  RobustnessBudget budget;
  budget.mode = RobustnessBudget::Mode::kAdaptive;
  budget.ci_halfwidth = 0.5;  // trivially met after one trial
  budget.min_trials = 4;
  const std::vector<int> all_agree(64, 8);
  EXPECT_EQ(run_stopper(budget, 64, all_agree, 8), 4);
}

TEST(SequentialStopperTest, MaxTrialsClampHolds) {
  // A stream that never meets the target exhausts the cap: max_trials when
  // set, the requested count otherwise.
  common::Rng rng(7);
  const std::vector<int> noisy = bernoulli_trials(rng, 64, 2, 0.5);
  RobustnessBudget budget;
  budget.mode = RobustnessBudget::Mode::kAdaptive;
  budget.ci_halfwidth = 1e-6;  // unreachable
  budget.min_trials = 1;
  EXPECT_EQ(run_stopper(budget, 64, noisy, 2), 64);
  budget.max_trials = 5;
  EXPECT_EQ(run_stopper(budget, 64, noisy, 2), 5);
}

TEST(SequentialStopperTest, ChunkTrialsQuantizesStopPoints) {
  // Decisions only happen at chunk boundaries: with chunk 4 and min 2 the
  // executed count is 2, 6, 10, ... regardless of where the target is met.
  common::Rng rng(9);
  const std::vector<int> noisy = bernoulli_trials(rng, 256, 8, 0.5);
  RobustnessBudget budget;
  budget.mode = RobustnessBudget::Mode::kAdaptive;
  budget.ci_halfwidth = 0.05;
  budget.min_trials = 2;
  budget.chunk_trials = 4;
  const int used = run_stopper(budget, 256, noisy, 8);
  EXPECT_TRUE(used == 2 || (used - 2) % 4 == 0 || used == 256) << used;
}

TEST(RobustnessBudgetTest, ValidateRejectsNonsense) {
  RobustnessBudget budget;
  budget.ci_halfwidth = 0.0;
  EXPECT_THROW(budget.validate(), std::invalid_argument);
  budget = {};
  budget.min_trials = 0;
  EXPECT_THROW(budget.validate(), std::invalid_argument);
  budget = {};
  budget.chunk_trials = 0;
  EXPECT_THROW(budget.validate(), std::invalid_argument);
  budget = {};
  budget.max_trials = -1;
  EXPECT_THROW(budget.validate(), std::invalid_argument);
  budget = {};
  EXPECT_NO_THROW(budget.validate());
}

// ---------------------------------------------------------------------------
// Fixed mode: byte-identity and the executed/requested trial accounting.

TEST(FixedModeTest, TrialsEqualsRequestedAndNeverEarlyStops) {
  common::Rng wr(3);
  const nn::Model model(tiny_net(), wr);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  RobustnessOptions mc;
  mc.trials = 3;
  mc.samples = 4;
  const auto report =
      reram::monte_carlo_robustness(model, shapes, noisy_config(), mc);
  EXPECT_EQ(report.trials, 3);
  EXPECT_EQ(report.trials_requested, 3);
  EXPECT_FALSE(report.early_stopped);
  // The report carries the cluster-robust CI around the pooled agreement.
  EXPECT_LE(report.accuracy_ci_lower, report.mean_accuracy);
  EXPECT_GE(report.accuracy_ci_upper, report.mean_accuracy);
}

TEST(FixedModeTest, BitIdenticalAcrossThreadsAndKernels) {
  common::Rng wr(3);
  const nn::Model model(tiny_net(), wr);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  RobustnessOptions mc;
  mc.trials = 3;
  mc.samples = 4;
  const auto baseline =
      reram::monte_carlo_robustness(model, shapes, noisy_config(), mc);
  for (const int threads : {1, 3}) {
    for (const KernelPolicy kernels :
         {KernelPolicy::kFast, KernelPolicy::kScalarReference}) {
      RobustnessOptions v = mc;
      v.threads = threads;
      v.kernels = kernels;
      const auto report =
          reram::monte_carlo_robustness(model, shapes, noisy_config(), v);
      SCOPED_TRACE(testing::Message() << "threads " << threads << " kernels "
                                      << static_cast<int>(kernels));
      expect_reports_identical(baseline, report);
    }
  }
}

// ---------------------------------------------------------------------------
// Adaptive mode: determinism, the prefix property, and trial accounting.

RobustnessOptions adaptive_mc(int trials = 12) {
  RobustnessOptions mc;
  mc.trials = trials;
  mc.samples = 6;
  mc.budget.mode = RobustnessBudget::Mode::kAdaptive;
  mc.budget.ci_halfwidth = 0.12;
  mc.budget.min_trials = 2;
  return mc;
}

TEST(AdaptiveModeTest, DeterministicAcrossThreadCounts) {
  common::Rng wr(3);
  const nn::Model model(tiny_net(), wr);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  const auto serial =
      reram::monte_carlo_robustness(model, shapes, noisy_config(),
                                    adaptive_mc());
  for (const int threads : {2, 4}) {
    RobustnessOptions mc = adaptive_mc();
    mc.threads = threads;
    const auto parallel =
        reram::monte_carlo_robustness(model, shapes, noisy_config(), mc);
    SCOPED_TRACE(testing::Message() << threads << " threads");
    expect_reports_identical(serial, parallel);
  }
}

TEST(AdaptiveModeTest, ExecutedTrialsAreAFixedModePrefix) {
  // An adaptive run that stopped after T trials must report exactly what a
  // fixed run of T trials reports — the same seeded trial stream, cut short,
  // not an approximation.
  common::Rng wr(3);
  const nn::Model model(tiny_net(), wr);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  const auto adaptive = reram::monte_carlo_robustness(
      model, shapes, noisy_config(), adaptive_mc());
  EXPECT_LE(adaptive.trials, adaptive.trials_requested);
  EXPECT_EQ(adaptive.trials_requested, 12);
  EXPECT_EQ(adaptive.early_stopped, adaptive.trials < 12);

  RobustnessOptions fixed;
  fixed.trials = adaptive.trials;
  fixed.samples = 6;
  const auto prefix =
      reram::monte_carlo_robustness(model, shapes, noisy_config(), fixed);
  expect_stats_identical(adaptive, prefix);
}

TEST(AdaptiveModeTest, LooseTargetStopsAtMinTrials) {
  // An ideal-agreement workload (tiny stuck rate, no variation) is decisive
  // immediately: the run stops at the clamp and banks the savings.
  common::Rng wr(3);
  const nn::Model model(tiny_net(), wr);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  FaultConfig fc;
  fc.stuck_at_zero_rate = 1e-6;
  RobustnessOptions mc = adaptive_mc(16);
  mc.budget.ci_halfwidth = 0.2;
  const auto report = reram::monte_carlo_robustness(model, shapes, fc, mc);
  EXPECT_EQ(report.trials, mc.budget.min_trials);
  EXPECT_TRUE(report.early_stopped);
  EXPECT_EQ(report.trials_requested, 16);
}

// ---------------------------------------------------------------------------
// Zero-rate cache spanning.

TEST(CacheSpanningTest, ZeroRatePointReplaysRecordedFamily) {
  common::Rng wr(3);
  const nn::Model model(tiny_net(), wr);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  reram::TrialFabricCache cache;

  FaultConfig nonzero = noisy_config();
  FaultConfig zero = nonzero;
  zero.stuck_at_zero_rate = 0.0;
  zero.stuck_at_one_rate = 0.0;

  RobustnessOptions mc = adaptive_mc(6);
  mc.budget.ci_halfwidth = 1e-6;  // run every trial; isolate the cache path
  mc.cache = &cache;
  // Warm the cache at a nonzero rate, then hit the zero-rate point.
  (void)reram::monte_carlo_robustness(model, shapes, nonzero, mc);
  const auto before = cache.stats();
  const auto spanned = reram::monte_carlo_robustness(model, shapes, zero, mc);
  const auto after = cache.stats();
  // The zero-rate point replayed the recorded fabrics instead of burning.
  EXPECT_EQ(after.trial_records, before.trial_records);
  EXPECT_GT(after.trial_replays, before.trial_replays);
  // No stuck cells at zero rates, variation still present.
  EXPECT_EQ(spanned.fault_stats.stuck_at_zero, 0);
  EXPECT_EQ(spanned.fault_stats.stuck_at_one, 0);
  EXPECT_GT(spanned.fault_stats.weights_changed, 0);

  // Statistically equivalent to the fresh zero-rate burn: same trial count
  // and a mean inside the fresh run's robust CI (different RNG stream, so
  // byte-identity is explicitly NOT expected — see RobustnessBudget docs).
  RobustnessOptions fresh = mc;
  fresh.cache = nullptr;
  const auto direct = reram::monte_carlo_robustness(model, shapes, zero, fresh);
  EXPECT_EQ(spanned.trials, direct.trials);
  EXPECT_LE(direct.accuracy_ci_lower - 1e-12, spanned.mean_accuracy);
  EXPECT_GE(direct.accuracy_ci_upper + 1e-12, spanned.mean_accuracy);
}

TEST(CacheSpanningTest, FixedModeNeverSpans) {
  // kFixed reports are byte-identical with and without the cache, including
  // at zero stuck rates — spanning is gated to adaptive mode.
  common::Rng wr(3);
  const nn::Model model(tiny_net(), wr);
  const std::vector<CrossbarShape> shapes(2, CrossbarShape{32, 32});
  reram::TrialFabricCache cache;

  FaultConfig zero = noisy_config();
  zero.stuck_at_zero_rate = 0.0;
  zero.stuck_at_one_rate = 0.0;

  RobustnessOptions mc;
  mc.trials = 3;
  mc.samples = 4;
  const auto uncached = reram::monte_carlo_robustness(model, shapes, zero, mc);
  mc.cache = &cache;
  // Warm with a nonzero-rate run so a recorded family exists to tempt it.
  (void)reram::monte_carlo_robustness(model, shapes, noisy_config(), mc);
  const auto cached = reram::monte_carlo_robustness(model, shapes, zero, mc);
  expect_reports_identical(uncached, cached);
}

// ---------------------------------------------------------------------------
// LayerFabricCache: cross-allocation assembly is bit-identical.

TEST(LayerFabricCacheTest, AssembledFabricsMatchConstructorBuilds) {
  common::Rng wr(21);
  const nn::NetworkSpec net = nn::lenet5();
  const nn::Model model(net, wr);
  const std::size_t layers = net.mappable_layers().size();
  reram::LayerFabricCache cache;

  // Two allocations sharing some per-layer choices; warm with B, query A —
  // A's build mixes cached layers (shared with B) and fresh ones.
  const std::vector<CrossbarShape> alloc_b(layers, CrossbarShape{72, 64});
  std::vector<CrossbarShape> alloc_a(layers, CrossbarShape{72, 64});
  alloc_a[0] = {32, 32};
  alloc_a[layers - 1] = {288, 256};

  RobustnessOptions cached_mc = adaptive_mc(4);
  cached_mc.layer_cache = &cache;
  (void)reram::monte_carlo_robustness(model, alloc_b, noisy_config(),
                                      cached_mc);
  EXPECT_GT(cache.stats().builds, 0u);
  const auto via_cache = reram::monte_carlo_robustness(
      model, alloc_a, noisy_config(), cached_mc);
  EXPECT_GT(cache.stats().hits, 0u);

  RobustnessOptions plain_mc = adaptive_mc(4);
  const auto direct =
      reram::monte_carlo_robustness(model, alloc_a, noisy_config(), plain_mc);
  expect_reports_identical(via_cache, direct);
}

TEST(LayerFabricCacheTest, IdealReferencesAreAllocationInvariant) {
  // The refs slot is keyed without shapes: a second allocation must reuse
  // the first allocation's references and still match the uncached report.
  common::Rng wr(21);
  const nn::NetworkSpec net = nn::lenet5();
  const nn::Model model(net, wr);
  const std::size_t layers = net.mappable_layers().size();
  reram::LayerFabricCache cache;

  RobustnessOptions mc = adaptive_mc(3);
  mc.layer_cache = &cache;
  (void)reram::monte_carlo_robustness(
      model, std::vector<CrossbarShape>(layers, {72, 64}), noisy_config(), mc);
  ASSERT_EQ(cache.stats().refs_builds, 1u);
  const auto second = reram::monte_carlo_robustness(
      model, std::vector<CrossbarShape>(layers, {288, 256}), noisy_config(),
      mc);
  EXPECT_EQ(cache.stats().refs_builds, 1u);
  EXPECT_GT(cache.stats().refs_hits, 0u);

  RobustnessOptions plain = adaptive_mc(3);
  const auto direct = reram::monte_carlo_robustness(
      model, std::vector<CrossbarShape>(layers, {288, 256}), noisy_config(),
      plain);
  expect_reports_identical(second, direct);
}

// ---------------------------------------------------------------------------
// The memoized engine entry and the in-search reward plumbing.

reram::EvaluationEngine lenet_engine(const nn::NetworkSpec& net) {
  return reram::EvaluationEngine(net.mappable_layers(),
                                 mapping::hybrid_candidates(),
                                 reram::AcceleratorConfig{});
}

TEST(RobustnessMemoTest, CachedEntryMatchesUncachedAndHitsOnRepeat) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const auto engine = lenet_engine(net);
  const std::vector<std::size_t> actions(net.mappable_layers().size(), 2);

  const RobustnessOptions mc = adaptive_mc(4);
  const auto first =
      engine.evaluate_robustness_cached(model, actions, noisy_config(), mc);
  const auto miss_stats = engine.robustness_cache_stats();
  EXPECT_EQ(miss_stats.misses, 1u);
  EXPECT_EQ(miss_stats.hits, 0u);

  const auto repeat =
      engine.evaluate_robustness_cached(model, actions, noisy_config(), mc);
  EXPECT_EQ(engine.robustness_cache_stats().hits, 1u);
  expect_reports_identical(first, repeat);

  // The memoized fast path (LayerFabricCache assembly) is bit-identical to
  // the unmemoized engine entry.
  const auto uncached =
      engine.evaluate_robustness(model, actions, noisy_config(), mc);
  expect_reports_identical(first, uncached);
}

TEST(RobustnessMemoTest, KeyDiscriminatesFaultsAndBudget) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);
  const auto engine = lenet_engine(net);
  const std::vector<std::size_t> actions(net.mappable_layers().size(), 2);

  const RobustnessOptions mc = adaptive_mc(4);
  (void)engine.evaluate_robustness_cached(model, actions, noisy_config(), mc);
  FaultConfig other = noisy_config();
  other.stuck_at_zero_rate *= 2.0;
  (void)engine.evaluate_robustness_cached(model, actions, other, mc);
  RobustnessOptions tighter = mc;
  tighter.budget.ci_halfwidth = 0.01;
  (void)engine.evaluate_robustness_cached(model, actions, noisy_config(),
                                          tighter);
  EXPECT_EQ(engine.robustness_cache_stats().misses, 3u);
  EXPECT_EQ(engine.robustness_cache_stats().hits, 0u);
}

TEST(SearchRewardTest, OverloadIsIdentityWithoutMeasuredModel) {
  const nn::NetworkSpec net = nn::lenet5();
  core::EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.objective = core::RewardObjective::kRobustnessAware;
  cfg.accel.faults = noisy_config();
  const core::CrossbarEnv env(net.mappable_layers(), cfg);
  const std::vector<std::size_t> actions(env.num_layers(), 2);
  const auto report = env.evaluate(actions);
  EXPECT_EQ(env.reward(report, actions), env.reward(report));
}

TEST(SearchRewardTest, MeasuredRewardScalesByMonteCarloAccuracy) {
  const nn::NetworkSpec net = nn::lenet5();
  common::Rng wr(21);
  const nn::Model model(net, wr);

  core::EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.objective = core::RewardObjective::kRobustnessAware;
  cfg.accel.faults = noisy_config();
  cfg.mc_reward_model = &model;
  cfg.mc_reward_options = core::default_search_mc_options();
  const core::CrossbarEnv env(net.mappable_layers(), cfg);

  const std::vector<std::size_t> actions(env.num_layers(), 2);
  const auto report = env.evaluate(actions);
  const double measured = env.reward(report, actions);
  const auto rob = env.engine().evaluate_robustness_cached(
      model, actions, cfg.accel.faults, cfg.mc_reward_options);
  // The second reward() call hit the memo (same key), so the factor is the
  // exact cached mean accuracy.
  EXPECT_GT(env.engine().robustness_cache_stats().hits, 0u);
  const double base =
      env.reward(report) /
      (1.0 - std::clamp(report.fault_vulnerability, 0.0, 1.0));
  EXPECT_NEAR(measured, base * rob.mean_accuracy, 1e-12);
}

}  // namespace
}  // namespace autohet
