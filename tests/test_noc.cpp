#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "reram/noc.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::ChipSpec;
using reram::evaluate_noc;
using reram::NocParams;
using reram::place_tiles;

struct Setup {
  std::vector<nn::LayerSpec> layers;
  mapping::AllocationResult allocation;
  reram::PlacementResult placement;
};

Setup make_setup(const nn::NetworkSpec& net, CrossbarShape shape,
                 bool shared = false) {
  Setup s;
  s.layers = net.mappable_layers();
  const std::vector<CrossbarShape> shapes(s.layers.size(), shape);
  s.allocation = mapping::TileAllocator(4, shared).allocate(s.layers, shapes);
  s.placement = place_tiles(s.allocation.tiles, ChipSpec{});
  return s;
}

TEST(Noc, LinkBytesMatchFeatureMaps) {
  const auto s = make_setup(nn::lenet5(), {64, 64});
  const auto report = evaluate_noc(s.layers, s.allocation, s.placement);
  ASSERT_EQ(report.links.size(), s.layers.size() - 1);
  for (std::size_t k = 0; k + 1 < s.layers.size(); ++k) {
    EXPECT_EQ(report.links[k].bytes,
              s.layers[k].out_channels * s.layers[k].out_height() *
                  s.layers[k].out_width())
        << k;
  }
}

TEST(Noc, TotalsAreConsistent) {
  const auto s = make_setup(nn::alexnet(), {128, 128});
  const auto report = evaluate_noc(s.layers, s.allocation, s.placement);
  std::int64_t bytes = 0;
  double energy = 0.0;
  for (const auto& link : report.links) {
    bytes += link.bytes;
    energy += link.energy_nj;
    EXPECT_GE(link.mean_hops, 0.0);
  }
  EXPECT_EQ(report.total_bytes, bytes);
  EXPECT_NEAR(report.total_energy_nj, energy, 1e-9);
  EXPECT_GT(report.total_energy_nj, 0.0);
}

TEST(Noc, EnergyScalesWithParams) {
  const auto s = make_setup(nn::lenet5(), {64, 64});
  NocParams cheap;
  cheap.energy_pj_per_byte_hop = 0.01;
  NocParams pricey;
  pricey.energy_pj_per_byte_hop = 0.1;
  const auto low = evaluate_noc(s.layers, s.allocation, s.placement, cheap);
  const auto high = evaluate_noc(s.layers, s.allocation, s.placement, pricey);
  EXPECT_NEAR(high.total_energy_nj, 10.0 * low.total_energy_nj, 1e-9);
}

TEST(Noc, AdjacentPlacementShortensHops) {
  // VGG16 on 512x512 uses few tiles (placed close together); on 32x32 it
  // sprawls across many tiles, so mean hop distance must grow.
  const auto compact = make_setup(nn::vgg16(), {512, 512});
  const auto sprawling = make_setup(nn::vgg16(), {32, 32});
  const auto near_report =
      evaluate_noc(compact.layers, compact.allocation, compact.placement);
  const auto far_report = evaluate_noc(sprawling.layers,
                                       sprawling.allocation,
                                       sprawling.placement);
  EXPECT_LT(near_report.mean_hops, far_report.mean_hops);
}

TEST(Noc, TileSharingDoesNotBreakTrafficAccounting) {
  const auto s = make_setup(nn::vgg16(), {64, 64}, /*shared=*/true);
  const auto report = evaluate_noc(s.layers, s.allocation, s.placement);
  EXPECT_EQ(report.links.size(), s.layers.size() - 1);
  EXPECT_GT(report.total_bytes, 0);
}

TEST(Noc, ValidatesInputs) {
  const auto s = make_setup(nn::lenet5(), {64, 64});
  const std::vector<nn::LayerSpec> wrong(s.layers.begin(),
                                         s.layers.begin() + 2);
  EXPECT_THROW(evaluate_noc(wrong, s.allocation, s.placement),
               std::invalid_argument);
  // Placement missing a tile.
  reram::PlacementResult empty;
  EXPECT_THROW(evaluate_noc(s.layers, s.allocation, empty),
               std::invalid_argument);
}

}  // namespace
}  // namespace autohet
