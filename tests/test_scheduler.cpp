#include <gtest/gtest.h>

#include "nn/model_zoo.hpp"
#include "reram/pipeline.hpp"
#include "reram/scheduler.hpp"

namespace autohet {
namespace {

using mapping::CrossbarShape;
using reram::AcceleratorConfig;
using reram::schedule_batch;

std::vector<nn::LayerSpec> lenet_layers() {
  return nn::lenet5().mappable_layers();
}

TEST(Scheduler, DependenciesAreRespected) {
  const auto layers = lenet_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const auto n = static_cast<std::int64_t>(layers.size());
  const auto report =
      schedule_batch(layers, shapes, AcceleratorConfig{}, /*batch=*/4);
  ASSERT_EQ(report.tasks.size(), static_cast<std::size_t>(4 * n));
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t k = 0; k < n; ++k) {
      const auto& t = report.task(i, k, n);
      EXPECT_EQ(t.image, i);
      EXPECT_EQ(t.layer, k);
      EXPECT_GT(t.finish_ns, t.start_ns);
      if (k > 0) {
        EXPECT_GE(t.start_ns, report.task(i, k - 1, n).finish_ns - 1e-9);
      }
      if (i > 0) {
        EXPECT_GT(t.start_ns, report.task(i - 1, k, n).start_ns);
      }
    }
  }
}

TEST(Scheduler, SingleImageMakespanEqualsFillLatency) {
  const auto layers = lenet_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const AcceleratorConfig config;
  const auto schedule = schedule_batch(layers, shapes, config, 1);
  const auto pipeline = reram::evaluate_pipeline(layers, shapes, config);
  EXPECT_NEAR(schedule.makespan_ns, pipeline.fill_latency_ns, 1e-6);
}

TEST(Scheduler, SteadyThroughputMatchesAnalyticModel) {
  const auto layers = lenet_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const AcceleratorConfig config;
  const auto schedule = schedule_batch(layers, shapes, config, 32);
  const auto pipeline = reram::evaluate_pipeline(layers, shapes, config);
  EXPECT_NEAR(schedule.steady_throughput_inferences_per_s,
              pipeline.throughput_inferences_per_s,
              pipeline.throughput_inferences_per_s * 1e-6);
}

TEST(Scheduler, ReplicationAcceleratesBottleneck) {
  const auto layers = lenet_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const AcceleratorConfig config;
  const auto rep = reram::balance_replication(layers, shapes, config, 16);
  const auto base = schedule_batch(layers, shapes, config, 16);
  const auto fast = schedule_batch(layers, shapes, config, 16, rep);
  EXPECT_LT(fast.makespan_ns, base.makespan_ns);
}

TEST(Scheduler, BottleneckStageIsBusiest) {
  const auto layers = lenet_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const auto report =
      schedule_batch(layers, shapes, AcceleratorConfig{}, 64);
  // The busiest stage fraction approaches 1 for a long batch.
  double max_busy = 0.0;
  for (double f : report.stage_busy_fraction) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0 + 1e-9);
    max_busy = std::max(max_busy, f);
  }
  EXPECT_GT(max_busy, 0.9);
}

TEST(Scheduler, MakespanGrowsLinearlyInSteadyState) {
  const auto layers = lenet_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  const AcceleratorConfig config;
  const auto b32 = schedule_batch(layers, shapes, config, 32);
  const auto b64 = schedule_batch(layers, shapes, config, 64);
  const auto pipeline = reram::evaluate_pipeline(layers, shapes, config);
  EXPECT_NEAR(b64.makespan_ns - b32.makespan_ns,
              32.0 * pipeline.bottleneck_interval_ns,
              pipeline.bottleneck_interval_ns * 0.01);
}

TEST(Scheduler, ValidatesArguments) {
  const auto layers = lenet_layers();
  const std::vector<CrossbarShape> shapes(layers.size(), {128, 128});
  EXPECT_THROW(schedule_batch(layers, shapes, AcceleratorConfig{}, 0),
               std::invalid_argument);
  const std::vector<CrossbarShape> wrong(2, CrossbarShape{128, 128});
  EXPECT_THROW(schedule_batch(layers, wrong, AcceleratorConfig{}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace autohet
