#include <gtest/gtest.h>

#include "autohet/baselines.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

using core::CrossbarEnv;
using core::EnvConfig;

CrossbarEnv make_env(const nn::NetworkSpec& net,
                     std::vector<mapping::CrossbarShape> candidates =
                         mapping::hybrid_candidates()) {
  EnvConfig cfg;
  cfg.candidates = std::move(candidates);
  cfg.accel.tile_shared = true;
  return CrossbarEnv(net.mappable_layers(), cfg);
}

// A 3-layer toy network keeps the exhaustive space tiny (5^3 = 125).
nn::NetworkSpec toy_net() {
  nn::NetworkSpec net;
  net.name = "toy";
  net.layers.push_back(nn::make_conv(3, 16, 3, 1, 1, 8, 8));
  net.layers.push_back(nn::make_conv(16, 32, 3, 1, 1, 8, 8));
  net.layers.push_back(nn::make_fc(32 * 8 * 8, 10));
  return net;
}

TEST(Baselines, HomogeneousSweepCoversAllCandidates) {
  const auto env = make_env(nn::alexnet());
  const auto sweep = core::homogeneous_sweep(env);
  ASSERT_EQ(sweep.size(), 5u);
  for (std::size_t c = 0; c < sweep.size(); ++c) {
    EXPECT_EQ(sweep[c].actions,
              std::vector<std::size_t>(env.num_layers(), c));
    EXPECT_EQ(sweep[c].name, env.candidates()[c].name());
  }
}

TEST(Baselines, BestHomogeneousPicksHighestRue) {
  const auto env = make_env(nn::vgg16());
  const auto best = core::best_homogeneous(env);
  for (const auto& s : core::homogeneous_sweep(env)) {
    EXPECT_GE(best.report.rue(), s.report.rue());
  }
  EXPECT_TRUE(best.name.starts_with("Best-Homo"));
}

TEST(Baselines, ManualHeteroAssignsHeadAndTail) {
  const auto env = make_env(nn::vgg16(), mapping::square_candidates());
  // Fig. 3: 512x512 (idx 4) for first 10 layers, 256x256 (idx 3) for rest.
  const auto manual = core::manual_hetero(env, 4, 3, 10);
  for (std::size_t k = 0; k < env.num_layers(); ++k) {
    EXPECT_EQ(manual.actions[k], k < 10 ? 4u : 3u) << k;
  }
  EXPECT_THROW(core::manual_hetero(env, 9, 0, 10), std::invalid_argument);
  EXPECT_THROW(core::manual_hetero(env, 0, 0, 99), std::invalid_argument);
}

TEST(Baselines, Fig3ManualHeteroCompetitiveWithEveryHomogeneous) {
  // The paper's motivating observation (Fig. 3): a hand-tuned heterogeneous
  // config (512x512 head, 256x256 tail) tops the homogeneous accelerators
  // in RUE. In our model the paper's exact head=10 split beats the four
  // smaller homogeneous configs outright and lands within a few percent of
  // SXB512 (the precise ordering against SXB512 is sensitive to MNSIM's
  // internal energy tables — see EXPERIMENTS.md); a nearby manual split
  // (256x256 for the FC tail only) beats all five.
  const auto env = make_env(nn::vgg16(), mapping::square_candidates());
  const auto sweep = core::homogeneous_sweep(env);
  const auto paper_split = core::manual_hetero(env, 4, 3, 10);
  for (std::size_t c = 0; c + 1 < sweep.size(); ++c) {
    EXPECT_GT(paper_split.report.rue(), sweep[c].report.rue())
        << sweep[c].name;
  }
  EXPECT_GT(paper_split.report.rue(), 0.9 * sweep.back().report.rue());
  const auto fc_tail_split = core::manual_hetero(env, 4, 3, 13);
  for (const auto& homo : sweep) {
    EXPECT_GT(fc_tail_split.report.rue(), homo.report.rue()) << homo.name;
  }
}

TEST(Baselines, GreedyProducesValidActions) {
  const auto env = make_env(nn::alexnet());
  const auto greedy = core::greedy_search(env);
  ASSERT_EQ(greedy.actions.size(), env.num_layers());
  for (auto a : greedy.actions) EXPECT_LT(a, env.num_actions());
  EXPECT_GT(greedy.reward, 0.0);
}

TEST(Baselines, RandomSearchIsDeterministicPerSeed) {
  const auto env = make_env(toy_net());
  const auto a = core::random_search(env, 50, 7);
  const auto b = core::random_search(env, 50, 7);
  EXPECT_EQ(a.actions, b.actions);
  EXPECT_EQ(a.reward, b.reward);
  EXPECT_THROW(core::random_search(env, 0, 7), std::invalid_argument);
}

TEST(Baselines, RandomSearchImprovesWithBudget) {
  const auto env = make_env(toy_net());
  const auto small = core::random_search(env, 2, 11);
  const auto large = core::random_search(env, 100, 11);
  EXPECT_GE(large.reward, small.reward);
}

TEST(Baselines, ExhaustiveFindsGlobalOptimum) {
  const auto env = make_env(toy_net());
  const auto best = core::exhaustive_search(env);
  // Nothing can beat it: spot-check against all baselines.
  EXPECT_GE(best.reward, core::greedy_search(env).reward);
  EXPECT_GE(best.reward, core::random_search(env, 200, 3).reward);
  EXPECT_GE(best.reward, core::best_homogeneous(env).reward);
}

TEST(Baselines, ExhaustiveRefusesHugeSpaces) {
  const auto env = make_env(nn::vgg16());  // 5^16 configurations
  EXPECT_THROW(core::exhaustive_search(env, 1'000'000),
               std::invalid_argument);
}

TEST(Baselines, ExhaustiveEnumeratesWholeSpace) {
  // On a single-layer env the exhaustive optimum equals the best candidate.
  nn::NetworkSpec net;
  net.name = "one";
  net.layers.push_back(nn::make_conv(16, 64, 3, 1, 1, 8, 8));
  const auto env = make_env(net);
  const auto best = core::exhaustive_search(env);
  double expected = -1.0;
  for (std::size_t c = 0; c < env.num_actions(); ++c) {
    expected = std::max(expected,
                        core::evaluate_homogeneous_strategy(env, c).reward);
  }
  EXPECT_DOUBLE_EQ(best.reward, expected);
}

TEST(Baselines, HeterogeneousOptimumBeatsBestHomogeneousOnToyNet) {
  // The central premise of the paper, verified exactly on a small space.
  const auto env = make_env(toy_net());
  const auto best = core::exhaustive_search(env);
  const auto homo = core::best_homogeneous(env);
  EXPECT_GE(best.reward, homo.reward);
}

}  // namespace
}  // namespace autohet
