#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

using tensor::Tensor;

// Direct (non-im2col) convolution reference used to validate conv2d.
Tensor conv2d_direct(const Tensor& input, const Tensor& weight,
                     std::int64_t stride, std::int64_t pad) {
  const std::int64_t cin = input.dim(0), h = input.dim(1), w = input.dim(2);
  const std::int64_t cout = weight.dim(0), kh = weight.dim(2),
                     kw = weight.dim(3);
  const std::int64_t oh = (h + 2 * pad - kh) / stride + 1;
  const std::int64_t ow = (w + 2 * pad - kw) / stride + 1;
  Tensor out({cout, oh, ow});
  for (std::int64_t co = 0; co < cout; ++co) {
    for (std::int64_t oi = 0; oi < oh; ++oi) {
      for (std::int64_t oj = 0; oj < ow; ++oj) {
        float acc = 0.0f;
        for (std::int64_t ci = 0; ci < cin; ++ci) {
          for (std::int64_t ki = 0; ki < kh; ++ki) {
            for (std::int64_t kj = 0; kj < kw; ++kj) {
              const std::int64_t ii = oi * stride + ki - pad;
              const std::int64_t jj = oj * stride + kj - pad;
              if (ii < 0 || ii >= h || jj < 0 || jj >= w) continue;
              acc += input.at(ci, ii, jj) * weight.at(co, ci, ki, kj);
            }
          }
        }
        out.at(co, oi, oj) = acc;
      }
    }
  }
  return out;
}

TEST(Matmul, SmallKnownProduct) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  for (int i = 0; i < 6; ++i) {
    a[i] = av[i];
    b[i] = bv[i];
  }
  const Tensor c = tensor::matmul(a, b);
  EXPECT_EQ(c.at(0, 0), 58.0f);
  EXPECT_EQ(c.at(0, 1), 64.0f);
  EXPECT_EQ(c.at(1, 0), 139.0f);
  EXPECT_EQ(c.at(1, 1), 154.0f);
}

TEST(Matmul, IdentityIsNeutral) {
  common::Rng rng(1);
  Tensor a({5, 5});
  a.fill_uniform(rng, -1.0f, 1.0f);
  Tensor eye({5, 5});
  for (int i = 0; i < 5; ++i) eye.at(i, i) = 1.0f;
  const Tensor c = tensor::matmul(a, eye);
  EXPECT_EQ(tensor::max_abs_diff(a, c), 0.0f);
}

TEST(Matmul, RejectsMismatchedShapes) {
  EXPECT_THROW(tensor::matmul(Tensor({2, 3}), Tensor({2, 3})),
               std::invalid_argument);
}

TEST(Im2col, IdentityKernelGeometry) {
  // 1x1 kernel, stride 1, no pad: im2col is just a reshape.
  common::Rng rng(2);
  Tensor input({3, 4, 5});
  input.fill_uniform(rng, -1.0f, 1.0f);
  const Tensor cols = tensor::im2col(input, 1, 1, 1, 0);
  EXPECT_EQ(cols.dim(0), 3);
  EXPECT_EQ(cols.dim(1), 20);
  for (std::int64_t c = 0; c < 3; ++c) {
    for (std::int64_t p = 0; p < 20; ++p) {
      EXPECT_EQ(cols.at(c, p), input[c * 20 + p]);
    }
  }
}

TEST(Im2col, ZeroPaddingContributesZeros) {
  Tensor input({1, 2, 2});
  input.fill(1.0f);
  const Tensor cols = tensor::im2col(input, 3, 3, 1, 1);
  // Output 2x2 positions; corner position (0,0) has 4 in-bounds entries.
  EXPECT_EQ(cols.dim(0), 9);
  EXPECT_EQ(cols.dim(1), 4);
  float col0_sum = 0.0f;
  for (std::int64_t r = 0; r < 9; ++r) col0_sum += cols.at(r, 0);
  EXPECT_EQ(col0_sum, 4.0f);
}

class Conv2dAgainstDirect
    : public ::testing::TestWithParam<
          std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t,
                     std::int64_t>> {};

TEST_P(Conv2dAgainstDirect, Matches) {
  const auto [cin, cout, k, stride, pad] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(cin * 100 + cout + k));
  Tensor input({cin, 9, 9});
  input.fill_uniform(rng, -1.0f, 1.0f);
  Tensor weight({cout, cin, k, k});
  weight.fill_uniform(rng, -1.0f, 1.0f);
  const Tensor got = tensor::conv2d(input, weight, stride, pad);
  const Tensor want = conv2d_direct(input, weight, stride, pad);
  EXPECT_LT(tensor::max_abs_diff(got, want), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conv2dAgainstDirect,
    ::testing::Values(std::make_tuple(1, 1, 1, 1, 0),
                      std::make_tuple(3, 8, 3, 1, 1),
                      std::make_tuple(4, 4, 3, 2, 1),
                      std::make_tuple(2, 5, 5, 1, 2),
                      std::make_tuple(6, 2, 3, 3, 0),
                      std::make_tuple(1, 7, 7, 1, 3)));

TEST(Conv2d, LinearityInInput) {
  common::Rng rng(5);
  Tensor x({2, 6, 6}), y({2, 6, 6});
  x.fill_uniform(rng, -1.0f, 1.0f);
  y.fill_uniform(rng, -1.0f, 1.0f);
  Tensor w({3, 2, 3, 3});
  w.fill_uniform(rng, -1.0f, 1.0f);

  Tensor xy({2, 6, 6});
  for (std::int64_t i = 0; i < xy.numel(); ++i) xy[i] = x[i] + y[i];
  Tensor sum = tensor::conv2d(x, w, 1, 1);
  tensor::add_inplace(sum, tensor::conv2d(y, w, 1, 1));
  const Tensor direct = tensor::conv2d(xy, w, 1, 1);
  EXPECT_LT(tensor::max_abs_diff(sum, direct), 1e-4f);
}

TEST(MaxPool, KnownValues) {
  Tensor input({1, 4, 4});
  for (std::int64_t i = 0; i < 16; ++i) input[i] = static_cast<float>(i);
  const Tensor out = tensor::maxpool2d(input, 2, 2);
  EXPECT_EQ(out.dim(1), 2);
  EXPECT_EQ(out.at(0, 0, 0), 5.0f);
  EXPECT_EQ(out.at(0, 0, 1), 7.0f);
  EXPECT_EQ(out.at(0, 1, 0), 13.0f);
  EXPECT_EQ(out.at(0, 1, 1), 15.0f);
}

TEST(AvgPool, KnownValues) {
  Tensor input({1, 2, 2});
  input[0] = 1.0f;
  input[1] = 2.0f;
  input[2] = 3.0f;
  input[3] = 4.0f;
  const Tensor out = tensor::avgpool2d(input, 2, 2);
  EXPECT_EQ(out.numel(), 1);
  EXPECT_EQ(out[0], 2.5f);
}

TEST(FullyConnected, MatchesManualDot) {
  Tensor w({2, 3});
  Tensor x({3});
  for (int i = 0; i < 6; ++i) w[i] = static_cast<float>(i + 1);
  for (int i = 0; i < 3; ++i) x[i] = static_cast<float>(i + 1);
  const Tensor y = tensor::fully_connected(x, w);
  EXPECT_EQ(y[0], 14.0f);  // 1+4+9
  EXPECT_EQ(y[1], 32.0f);  // 4+10+18
}

TEST(FullyConnected, AcceptsAnyInputShapeWithMatchingCount) {
  Tensor w({2, 12});
  w.fill(1.0f);
  Tensor x({3, 2, 2});
  x.fill(1.0f);
  const Tensor y = tensor::fully_connected(x, w);
  EXPECT_EQ(y[0], 12.0f);
}

TEST(Relu, ClampsNegatives) {
  Tensor t({4});
  t[0] = -1.0f;
  t[1] = 0.0f;
  t[2] = 2.0f;
  t[3] = -0.5f;
  tensor::relu_inplace(t);
  EXPECT_EQ(t[0], 0.0f);
  EXPECT_EQ(t[1], 0.0f);
  EXPECT_EQ(t[2], 2.0f);
  EXPECT_EQ(t[3], 0.0f);
}

TEST(Argmax, FindsLargest) {
  Tensor t({5});
  t[3] = 4.0f;
  EXPECT_EQ(tensor::argmax(t), 3);
}

TEST(MaxAbsDiff, ZeroForIdentical) {
  Tensor a({3});
  a.fill(1.5f);
  EXPECT_EQ(tensor::max_abs_diff(a, a), 0.0f);
}

}  // namespace
}  // namespace autohet
