// Training on synthetic data: whole-model gradient check, learning
// progress, and accuracy above chance.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/model_zoo.hpp"
#include "nn/train.hpp"
#include "tensor/grad.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

// A tiny CNN keeps the tests fast.
nn::NetworkSpec tiny_cnn(std::int64_t classes = 4) {
  nn::NetworkSpec net;
  net.name = "tiny-cnn";
  net.layers.push_back(nn::make_conv(1, 4, 3, 1, 1, 8, 8));
  net.layers.push_back(nn::make_maxpool(4, 2, 2, 8, 8));
  net.layers.push_back(nn::make_fc(4 * 4 * 4, 16));
  net.layers.push_back(nn::make_fc(16, classes, /*relu=*/false));
  return net;
}

TEST(SyntheticDataset, ShapesLabelsAndDeterminism) {
  common::Rng rng(1);
  const auto data = nn::make_synthetic_dataset(rng, 50, 4, 1, 8, 8);
  ASSERT_EQ(data.size(), 50u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data.images[i].shape(), (std::vector<std::int64_t>{1, 8, 8}));
    EXPECT_GE(data.labels[i], 0);
    EXPECT_LT(data.labels[i], 4);
    EXPECT_GE(data.images[i].min(), 0.0f);
    EXPECT_LE(data.images[i].max(), 1.0f);
  }
  common::Rng rng2(1);
  const auto again = nn::make_synthetic_dataset(rng2, 50, 4, 1, 8, 8);
  EXPECT_EQ(tensor::max_abs_diff(data.images[7], again.images[7]), 0.0f);
  EXPECT_EQ(data.labels, again.labels);
}

TEST(SyntheticDataset, CoversAllClasses) {
  common::Rng rng(2);
  const auto data = nn::make_synthetic_dataset(rng, 200, 5, 1, 4, 4);
  std::vector<int> counts(5, 0);
  for (auto label : data.labels) ++counts[static_cast<std::size_t>(label)];
  for (int c : counts) EXPECT_GT(c, 10);
}

TEST(BackpropSample, WholeModelGradientCheck) {
  common::Rng rng(3);
  nn::Model model(tiny_cnn(), rng);
  common::Rng data_rng(4);
  const auto data = nn::make_synthetic_dataset(data_rng, 1, 4, 1, 8, 8);
  const auto& image = data.images[0];
  const auto label = data.labels[0];

  std::vector<tensor::Tensor> grads;
  for (std::size_t m = 0; m < model.mappable_count(); ++m) {
    grads.emplace_back(model.weight(m).shape());
  }
  nn::backprop_sample(model, image, label, grads);

  const auto loss_of = [&] {
    return tensor::softmax_cross_entropy(model.forward(image), label).first;
  };
  const float eps = 1e-3f;
  for (std::size_t m = 0; m < model.mappable_count(); ++m) {
    tensor::Tensor& w = model.weight(m);
    for (std::int64_t p = 0; p < w.numel(); p += std::max<std::int64_t>(
                                               1, w.numel() / 16)) {
      const float orig = w[p];
      w[p] = orig + eps;
      const float lp = loss_of();
      w[p] = orig - eps;
      const float lm = loss_of();
      w[p] = orig;
      const float fd = (lp - lm) / (2 * eps);
      EXPECT_NEAR(grads[m][p], fd, 2e-2f * std::max(1.0f, std::fabs(fd)))
          << "layer " << m << " param " << p;
    }
  }
}

TEST(Train, LossDecreasesAndAccuracyBeatsChance) {
  common::Rng rng(5);
  nn::Model model(tiny_cnn(), rng);
  common::Rng data_rng(6);
  const auto data = nn::make_synthetic_dataset(data_rng, 120, 4, 1, 8, 8);
  nn::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.learning_rate = 0.02f;
  common::Rng train_rng(7);
  const auto stats = nn::train(model, data, cfg, train_rng);
  ASSERT_EQ(stats.epoch_loss.size(), 4u);
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
  EXPECT_GT(stats.epoch_accuracy.back(), 0.7f);  // chance = 0.25
  // Held-out evaluation: fresh samples from the same prototypes.
  common::Rng test_rng(8);
  const auto test =
      nn::sample_from_prototypes(test_rng, 60, data.prototypes);
  EXPECT_GT(nn::evaluate_accuracy(model, test), 0.7);
}

TEST(SyntheticDataset, PrototypeReuseKeepsTheTask) {
  common::Rng rng(20);
  const auto train_set = nn::make_synthetic_dataset(rng, 10, 3, 1, 4, 4);
  common::Rng rng2(21);
  const auto held_out =
      nn::sample_from_prototypes(rng2, 10, train_set.prototypes);
  ASSERT_EQ(held_out.prototypes.size(), 3u);
  EXPECT_EQ(tensor::max_abs_diff(held_out.prototypes[0],
                                 train_set.prototypes[0]),
            0.0f);
  EXPECT_THROW(nn::sample_from_prototypes(rng2, 0, train_set.prototypes),
               std::invalid_argument);
  EXPECT_THROW(nn::sample_from_prototypes(rng2, 5, {}),
               std::invalid_argument);
}

TEST(Train, DeterministicForSeeds) {
  const auto run = [] {
    common::Rng rng(9);
    nn::Model model(tiny_cnn(), rng);
    common::Rng data_rng(10);
    const auto data = nn::make_synthetic_dataset(data_rng, 40, 4, 1, 8, 8);
    nn::TrainConfig cfg;
    cfg.epochs = 2;
    common::Rng train_rng(11);
    nn::train(model, data, cfg, train_rng);
    return model.weight(0)[0];
  };
  EXPECT_EQ(run(), run());
}

TEST(Train, ValidatesInput) {
  common::Rng rng(12);
  nn::Model model(tiny_cnn(), rng);
  nn::SyntheticDataset empty;
  nn::TrainConfig cfg;
  common::Rng train_rng(13);
  EXPECT_THROW(nn::train(model, empty, cfg, train_rng),
               std::invalid_argument);
  common::Rng data_rng(14);
  const auto data = nn::make_synthetic_dataset(data_rng, 4, 4, 1, 8, 8);
  cfg.epochs = 0;
  EXPECT_THROW(nn::train(model, data, cfg, train_rng),
               std::invalid_argument);
}

TEST(Train, EvaluateAccuracyWithCustomClassifier) {
  common::Rng data_rng(15);
  const auto data = nn::make_synthetic_dataset(data_rng, 20, 4, 1, 8, 8);
  // A classifier that always answers 0 scores the base rate of class 0.
  const double acc = nn::evaluate_accuracy_with(
      [](const tensor::Tensor&) { return std::int64_t{0}; }, data);
  int zeros = 0;
  for (auto l : data.labels) zeros += (l == 0);
  EXPECT_DOUBLE_EQ(acc, static_cast<double>(zeros) / 20.0);
}

}  // namespace
}  // namespace autohet
