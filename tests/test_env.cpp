// The RL environment: Table-1 state construction, action quantization, and
// the Eq. 2 reward over hardware reports.
#include <gtest/gtest.h>

#include "autohet/env.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

using core::CrossbarEnv;
using core::EnvConfig;

CrossbarEnv make_env(const nn::NetworkSpec& net = nn::alexnet(),
                     bool shared = false) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.accel.tile_shared = shared;
  return CrossbarEnv(net.mappable_layers(), cfg);
}

TEST(CrossbarEnv, BasicGeometry) {
  const auto env = make_env();
  EXPECT_EQ(env.num_layers(), 8u);
  EXPECT_EQ(env.num_actions(), 5u);
  EXPECT_GT(env.energy_scale_nj(), 0.0);
}

TEST(CrossbarEnv, StateVectorHasTenFeatures) {
  const auto env = make_env();
  const auto s = env.state(0, 0, 0.0);
  ASSERT_EQ(s.size(), static_cast<std::size_t>(core::kStateDim));
  for (double v : s) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(CrossbarEnv, StateEncodesLayerType) {
  const auto env = make_env();
  // AlexNet layer 0 is CONV (t = 1), layer 5 is FC (t = 0).
  EXPECT_EQ(env.state(0, 0, 0.0)[1], 1.0);
  EXPECT_EQ(env.state(5, 0, 0.0)[1], 0.0);
}

TEST(CrossbarEnv, StateCarriesDynamicFeatures) {
  const auto env = make_env();
  const auto s = env.state(3, 2, 0.7);
  EXPECT_DOUBLE_EQ(s[8], 2.0 / 4.0);  // a_k normalized by C-1
  EXPECT_DOUBLE_EQ(s[9], 0.7);        // u_k
}

TEST(CrossbarEnv, LayerIndexFeatureIsMonotone) {
  const auto env = make_env();
  double prev = -1.0;
  for (std::size_t k = 0; k < env.num_layers(); ++k) {
    const double v = env.state(k, 0, 0.0)[0];
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(CrossbarEnv, ActionQuantizationCoversAllCandidates) {
  const auto env = make_env();
  EXPECT_EQ(env.action_to_index(0.0), 0u);
  EXPECT_EQ(env.action_to_index(0.19), 0u);
  EXPECT_EQ(env.action_to_index(0.21), 1u);
  EXPECT_EQ(env.action_to_index(0.99), 4u);
  EXPECT_EQ(env.action_to_index(1.0), 4u);   // boundary clamps into range
  EXPECT_EQ(env.action_to_index(-5.0), 0u);  // clamped
  EXPECT_EQ(env.action_to_index(7.0), 4u);
}

TEST(CrossbarEnv, LayerUtilizationMatchesMapping) {
  const auto env = make_env(nn::vgg16());
  // VGG16 L4 (k=3, 128->128): 100% on 36x32 (§3.3).
  const auto& candidates = env.candidates();
  std::size_t idx36 = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i] == mapping::CrossbarShape{36, 32}) idx36 = i;
  }
  EXPECT_DOUBLE_EQ(env.layer_utilization(3, idx36), 1.0);
}

TEST(CrossbarEnv, EvaluateRequiresOneActionPerLayer) {
  const auto env = make_env();
  EXPECT_THROW(env.evaluate({0, 1}), std::invalid_argument);
  std::vector<std::size_t> bad(env.num_layers(), 9);
  EXPECT_THROW(env.evaluate(bad), std::invalid_argument);
}

TEST(CrossbarEnv, RewardPrefersBetterConfigurations) {
  const auto env = make_env(nn::vgg16());
  // All-largest (576x512, index 4) should beat all-smallest (32x32) on
  // reward for VGG16: the energy term dominates.
  const auto small = env.evaluate(std::vector<std::size_t>(16, 0));
  const auto large = env.evaluate(std::vector<std::size_t>(16, 4));
  EXPECT_GT(env.reward(large), env.reward(small));
}

TEST(CrossbarEnv, RewardIsScaledToFriendlyRange) {
  const auto env = make_env(nn::vgg16());
  for (std::size_t c = 0; c < env.num_actions(); ++c) {
    const auto r = env.evaluate(std::vector<std::size_t>(16, c));
    const double reward = env.reward(r);
    EXPECT_GT(reward, 0.0);
    EXPECT_LT(reward, 10.0);
  }
}

TEST(CrossbarEnv, RewardOrderingMatchesRue) {
  // For a fixed env, reward(cfg) ordering must equal RUE ordering — the
  // scaling is a constant factor.
  const auto env = make_env(nn::alexnet());
  std::vector<std::pair<double, double>> pairs;  // (reward, rue)
  for (std::size_t c = 0; c < env.num_actions(); ++c) {
    const auto r = env.evaluate(std::vector<std::size_t>(8, c));
    pairs.emplace_back(env.reward(r), r.rue());
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = 0; j < pairs.size(); ++j) {
      EXPECT_EQ(pairs[i].first < pairs[j].first,
                pairs[i].second < pairs[j].second)
          << i << " vs " << j;
    }
  }
}

TEST(CrossbarEnv, ValidatesConstruction) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  EXPECT_THROW(CrossbarEnv({}, cfg), std::invalid_argument);
  EnvConfig no_candidates;
  EXPECT_THROW(CrossbarEnv(nn::alexnet().mappable_layers(), no_candidates),
               std::invalid_argument);
}

TEST(CrossbarEnv, RejectsPoolingLayers) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  std::vector<nn::LayerSpec> layers = {nn::make_maxpool(4, 2, 2, 8, 8)};
  EXPECT_THROW(CrossbarEnv(layers, cfg), std::invalid_argument);
}

TEST(CrossbarEnv, ExplicitEnergyScaleIsRespected) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.energy_scale_nj = 12345.0;
  const CrossbarEnv env(nn::alexnet().mappable_layers(), cfg);
  EXPECT_DOUBLE_EQ(env.energy_scale_nj(), 12345.0);
}

}  // namespace
}  // namespace autohet
