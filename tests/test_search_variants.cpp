// Search-driver variants: OU exploration, prioritized replay, unseeded
// warmup, and objective plumbing all flow through AutoHetSearch correctly.
#include <gtest/gtest.h>

#include "autohet/baselines.hpp"
#include "autohet/search.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

using core::AutoHetSearch;
using core::CrossbarEnv;
using core::EnvConfig;
using core::SearchConfig;

CrossbarEnv make_env(core::RewardObjective objective =
                         core::RewardObjective::kUtilizationPerEnergy) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.accel.tile_shared = true;
  cfg.objective = objective;
  return CrossbarEnv(nn::alexnet().mappable_layers(), cfg);
}

SearchConfig base_config(int episodes = 60) {
  SearchConfig cfg;
  cfg.episodes = episodes;
  cfg.warmup_episodes = 15;
  cfg.seed = 2;
  return cfg;
}

TEST(SearchVariants, OuNoiseProducesValidSearch) {
  const auto env = make_env();
  auto cfg = base_config();
  cfg.ddpg.noise_kind = rl::NoiseKind::kOrnsteinUhlenbeck;
  const auto result = AutoHetSearch(env, cfg).run();
  EXPECT_EQ(result.best_actions.size(), env.num_layers());
  EXPECT_GT(result.best_reward, 0.0);
}

TEST(SearchVariants, PrioritizedReplayProducesValidSearch) {
  const auto env = make_env();
  auto cfg = base_config();
  cfg.ddpg.prioritized_replay = true;
  const auto result = AutoHetSearch(env, cfg).run();
  EXPECT_GT(result.best_reward, 0.0);
  // With seeded warmup, the search still dominates the homogeneous sweep.
  for (const auto& homo : core::homogeneous_sweep(env)) {
    EXPECT_GE(result.best_reward, homo.reward);
  }
}

TEST(SearchVariants, SeededWarmupDominatesGreedyByConstruction) {
  const auto env = make_env();
  const auto greedy = core::greedy_search(env);
  auto cfg = base_config(30);
  const auto result = AutoHetSearch(env, cfg).run();
  EXPECT_GE(result.best_reward, greedy.reward);
}

TEST(SearchVariants, UnseededWarmupStillRuns) {
  const auto env = make_env();
  auto cfg = base_config(30);
  cfg.seeded_warmup = false;
  const auto result = AutoHetSearch(env, cfg).run();
  EXPECT_EQ(result.history.size(), 30u);
  EXPECT_GT(result.best_reward, 0.0);
}

TEST(SearchVariants, SeededAndUnseededDiverge) {
  const auto env = make_env();
  auto seeded_cfg = base_config(20);
  auto unseeded_cfg = base_config(20);
  unseeded_cfg.seeded_warmup = false;
  const auto seeded = AutoHetSearch(env, seeded_cfg).run();
  const auto unseeded = AutoHetSearch(env, unseeded_cfg).run();
  // First episode differs: a homogeneous demonstration vs random actions.
  EXPECT_NE(seeded.history[0].actions, unseeded.history[0].actions);
  // Seeded episode 0 is the all-candidate-0 homogeneous configuration.
  EXPECT_EQ(seeded.history[0].actions,
            std::vector<std::size_t>(env.num_layers(), 0));
}

TEST(SearchVariants, ObjectiveReachesSearchReward) {
  const auto area_env = make_env(core::RewardObjective::kAreaAware);
  const auto result = AutoHetSearch(area_env, base_config(40)).run();
  // The recorded best reward is the area-aware reward of the best config.
  EXPECT_NEAR(result.best_reward,
              area_env.reward(area_env.evaluate(result.best_actions)),
              result.best_reward * 1e-12);
}

TEST(SearchVariants, CriticLossAppearsOncePoolFills) {
  const auto env = make_env();
  const auto result = AutoHetSearch(env, base_config(40)).run();
  // Early episodes (pool below one batch of 64 transitions: 8 layers per
  // episode -> 8 episodes) report zero loss; later ones report positive.
  EXPECT_EQ(result.history.front().mean_critic_loss, 0.0);
  bool saw_positive = false;
  for (const auto& e : result.history) {
    if (e.mean_critic_loss > 0.0) saw_positive = true;
  }
  EXPECT_TRUE(saw_positive);
}

}  // namespace
}  // namespace autohet
