#include <gtest/gtest.h>

#include "nn/layer.hpp"

namespace autohet {
namespace {

TEST(LayerSpec, ConvDerivedQuantities) {
  const auto l = nn::make_conv(3, 64, 3, 1, 1, 32, 32);
  EXPECT_EQ(l.out_height(), 32);
  EXPECT_EQ(l.out_width(), 32);
  EXPECT_EQ(l.weight_rows(), 27);      // 3 * 3^2
  EXPECT_EQ(l.weight_cols(), 64);
  EXPECT_EQ(l.weight_count(), 1728);
  EXPECT_EQ(l.input_size(), 3 * 32 * 32);
  EXPECT_EQ(l.mvm_count(), 1024);
}

TEST(LayerSpec, StridedConvGeometry) {
  const auto l = nn::make_conv(3, 64, 7, 2, 3, 224, 224);
  EXPECT_EQ(l.out_height(), 112);
  EXPECT_EQ(l.out_width(), 112);
  EXPECT_EQ(l.mvm_count(), 112 * 112);
}

TEST(LayerSpec, FcFollowsPaperConvention) {
  // §3.2: FC as CONV with ks = s = 1, channels = neuron counts.
  const auto l = nn::make_fc(4096, 1000);
  EXPECT_EQ(l.type, nn::LayerType::kFullyConnected);
  EXPECT_EQ(l.kernel, 1);
  EXPECT_EQ(l.stride, 1);
  EXPECT_EQ(l.in_channels, 4096);
  EXPECT_EQ(l.out_channels, 1000);
  EXPECT_EQ(l.weight_rows(), 4096);
  EXPECT_EQ(l.mvm_count(), 1);
}

TEST(LayerSpec, MappableClassification) {
  EXPECT_TRUE(nn::is_mappable(nn::LayerType::kConv));
  EXPECT_TRUE(nn::is_mappable(nn::LayerType::kFullyConnected));
  EXPECT_FALSE(nn::is_mappable(nn::LayerType::kMaxPool));
  EXPECT_FALSE(nn::is_mappable(nn::LayerType::kAvgPool));
}

TEST(LayerSpec, BuildersValidate) {
  EXPECT_THROW(nn::make_conv(0, 1, 3, 1, 1, 8, 8), std::invalid_argument);
  EXPECT_THROW(nn::make_conv(1, 1, 3, 0, 1, 8, 8), std::invalid_argument);
  EXPECT_THROW(nn::make_conv(1, 1, 9, 1, 0, 4, 4), std::invalid_argument);
  EXPECT_THROW(nn::make_fc(0, 10), std::invalid_argument);
  EXPECT_THROW(nn::make_maxpool(1, 3, 1, 2, 2), std::invalid_argument);
}

TEST(LayerSpec, ToStringIsReadable) {
  EXPECT_EQ(nn::make_conv(3, 64, 3, 1, 1, 32, 32).to_string(),
            "Conv3x3 3->64 s1 @32x32");
  EXPECT_EQ(nn::make_fc(10, 5).to_string(), "FC 10->5");
  EXPECT_EQ(nn::make_maxpool(8, 2, 2, 16, 16).to_string(),
            "MaxPool2x2 s2 @16x16");
}

TEST(NetworkSpec, MappableFiltering) {
  nn::NetworkSpec net;
  net.name = "toy";
  net.layers.push_back(nn::make_conv(1, 4, 3, 1, 1, 8, 8));
  net.layers.push_back(nn::make_maxpool(4, 2, 2, 8, 8));
  net.layers.push_back(nn::make_fc(64, 10));
  EXPECT_EQ(net.mappable_indices(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(net.mappable_layers().size(), 2u);
  EXPECT_EQ(net.total_weights(), 1 * 9 * 4 + 64 * 10);
}

TEST(LayerSpec, PoolOutputGeometry) {
  const auto p = nn::make_maxpool(16, 2, 2, 10, 10);
  EXPECT_EQ(p.out_height(), 5);
  EXPECT_EQ(p.out_width(), 5);
  EXPECT_FALSE(p.relu_after);
}

}  // namespace
}  // namespace autohet
