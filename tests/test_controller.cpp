// Global Controller: program compilation and the checked decoder.
#include <gtest/gtest.h>

#include "mapping/tile_allocator.hpp"
#include "nn/model_zoo.hpp"
#include "reram/controller.hpp"

namespace autohet {
namespace {

using reram::compile_program;
using reram::execute_program;
using reram::Instruction;
using reram::Opcode;

struct Compiled {
  std::vector<nn::LayerSpec> layers;
  mapping::AllocationResult allocation;
  std::vector<Instruction> program;
};

Compiled compile_network(const nn::NetworkSpec& net,
                         mapping::CrossbarShape shape, bool shared) {
  Compiled c;
  c.layers = net.mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(c.layers.size(), shape);
  c.allocation = mapping::TileAllocator(4, shared).allocate(c.layers, shapes);
  c.program = compile_program(c.layers, c.allocation);
  return c;
}

TEST(Controller, CompiledProgramExecutesCleanly) {
  const auto c = compile_network(nn::lenet5(), {64, 64}, false);
  const auto stats = execute_program(c.program);
  EXPECT_EQ(stats.tiles_configured, c.allocation.occupied_tiles());
  EXPECT_EQ(stats.layers_executed,
            static_cast<std::int64_t>(c.layers.size()));
  // One barrier after programming plus one per layer.
  EXPECT_EQ(stats.barriers, static_cast<std::int64_t>(c.layers.size()) + 1);
}

TEST(Controller, MvmsMatchLayerWork) {
  const auto c = compile_network(nn::alexnet(), {128, 128}, false);
  const auto stats = execute_program(c.program);
  std::int64_t expected_mvms = 0;
  for (std::size_t k = 0; k < c.layers.size(); ++k) {
    // Each hosting tile receives the layer's full MVM schedule.
    expected_mvms +=
        c.layers[k].mvm_count() * c.allocation.layers[k].tiles_allocated;
  }
  EXPECT_EQ(stats.mvms_issued, expected_mvms);
}

TEST(Controller, BufferTrafficMatchesLayerGeometry) {
  const auto c = compile_network(nn::lenet5(), {64, 64}, false);
  const auto stats = execute_program(c.program);
  std::int64_t in = 0, out = 0;
  for (const auto& layer : c.layers) {
    in += layer.weight_rows();
    out += layer.out_channels;
  }
  EXPECT_EQ(stats.input_bytes, in);
  EXPECT_EQ(stats.output_bytes, out);
}

TEST(Controller, TileSharedProgramsRemainValid) {
  // With tile sharing, multiple layers program the same tile; the decoder
  // must accept that while still rejecting double-programming.
  const auto c = compile_network(nn::vgg16(), {64, 64}, true);
  const auto stats = execute_program(c.program);
  EXPECT_EQ(stats.tiles_configured, c.allocation.occupied_tiles());
  EXPECT_EQ(stats.layers_executed, 16);
}

TEST(Controller, RejectsProgrammingUnconfiguredTile) {
  const std::vector<Instruction> program = {
      {Opcode::kProgramWeights, 7, 0, 1},
  };
  EXPECT_THROW(execute_program(program), std::invalid_argument);
}

TEST(Controller, RejectsDoubleConfiguration) {
  const std::vector<Instruction> program = {
      {Opcode::kConfigureTile, 0, 64, 64},
      {Opcode::kConfigureTile, 0, 64, 64},
  };
  EXPECT_THROW(execute_program(program), std::invalid_argument);
}

TEST(Controller, RejectsExecutingUnprogrammedLayer) {
  const std::vector<Instruction> program = {
      {Opcode::kConfigureTile, 0, 64, 64},
      {Opcode::kLoadInput, 0, 10, 0},
      {Opcode::kExecuteLayer, 0, 0, 5},
  };
  EXPECT_THROW(execute_program(program), std::invalid_argument);
}

TEST(Controller, RejectsExecutionBeforeInputLoad) {
  const std::vector<Instruction> program = {
      {Opcode::kConfigureTile, 0, 64, 64},
      {Opcode::kProgramWeights, 0, 0, 1},
      {Opcode::kExecuteLayer, 0, 0, 5},
  };
  EXPECT_THROW(execute_program(program), std::invalid_argument);
}

TEST(Controller, RejectsMergeBeforeExecution) {
  const std::vector<Instruction> program = {
      {Opcode::kMergeOutputs, 0, 1, 0},
  };
  EXPECT_THROW(execute_program(program), std::invalid_argument);
}

TEST(Controller, RejectsMergeFanInMismatch) {
  const std::vector<Instruction> program = {
      {Opcode::kConfigureTile, 0, 64, 64},
      {Opcode::kProgramWeights, 0, 0, 1},
      {Opcode::kLoadInput, 0, 10, 0},
      {Opcode::kExecuteLayer, 0, 0, 5},
      {Opcode::kMergeOutputs, 0, 2, 0},  // claims 2 tiles, only 1 executed
  };
  EXPECT_THROW(execute_program(program), std::invalid_argument);
}

TEST(Controller, RejectsStoreBeforeMerge) {
  const std::vector<Instruction> program = {
      {Opcode::kConfigureTile, 0, 64, 64},
      {Opcode::kProgramWeights, 0, 0, 1},
      {Opcode::kLoadInput, 0, 10, 0},
      {Opcode::kExecuteLayer, 0, 0, 5},
      {Opcode::kStoreOutput, 0, 4, 0},
  };
  EXPECT_THROW(execute_program(program), std::invalid_argument);
}

TEST(Controller, RejectsInvalidTileGeometry) {
  const std::vector<Instruction> program = {
      {Opcode::kConfigureTile, 0, 0, 64},
  };
  EXPECT_THROW(execute_program(program), std::invalid_argument);
}

TEST(Controller, InstructionToStringIsReadable) {
  const Instruction inst{Opcode::kExecuteLayer, 3, 1, 49};
  EXPECT_EQ(inst.to_string(), "EXECUTE_LAYER 3 1 49");
  EXPECT_STREQ(reram::opcode_name(Opcode::kBarrier), "BARRIER");
}

TEST(Controller, HeterogeneousShapesCompile) {
  const auto layers = nn::lenet5().mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes = {
      {36, 32}, {288, 256}, {576, 512}, {128, 128}, {32, 32}};
  const auto allocation =
      mapping::TileAllocator(4, true).allocate(layers, shapes);
  const auto program = compile_program(layers, allocation);
  const auto stats = execute_program(program);
  EXPECT_EQ(stats.layers_executed, 5);
  // Every configure instruction carries a real candidate geometry.
  for (const auto& inst : program) {
    if (inst.op == Opcode::kConfigureTile) {
      EXPECT_GT(inst.b, 0);
      EXPECT_GT(inst.c, 0);
    }
  }
}

}  // namespace
}  // namespace autohet
