// The AutoHet RL search loop: convergence, determinism, and quality
// relative to the exhaustive optimum on small spaces.
#include <gtest/gtest.h>

#include <numeric>

#include "autohet/baselines.hpp"
#include "autohet/search.hpp"
#include "nn/model_zoo.hpp"

namespace autohet {
namespace {

using core::AutoHetSearch;
using core::CrossbarEnv;
using core::EnvConfig;
using core::SearchConfig;

CrossbarEnv make_env(const nn::NetworkSpec& net) {
  EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.accel.tile_shared = true;
  return CrossbarEnv(net.mappable_layers(), cfg);
}

nn::NetworkSpec toy_net() {
  nn::NetworkSpec net;
  net.name = "toy";
  net.layers.push_back(nn::make_conv(3, 16, 3, 1, 1, 8, 8));
  net.layers.push_back(nn::make_conv(16, 32, 3, 1, 1, 8, 8));
  net.layers.push_back(nn::make_conv(32, 32, 3, 1, 1, 8, 8));
  net.layers.push_back(nn::make_fc(32 * 8 * 8, 10));
  return net;
}

SearchConfig fast_config(int episodes = 80) {
  SearchConfig cfg;
  cfg.episodes = episodes;
  cfg.warmup_episodes = 15;
  cfg.seed = 3;
  return cfg;
}

TEST(AutoHetSearch, ProducesValidConfiguration) {
  const auto env = make_env(toy_net());
  AutoHetSearch search(env, fast_config(40));
  const auto result = search.run();
  ASSERT_EQ(result.best_actions.size(), env.num_layers());
  for (auto a : result.best_actions) EXPECT_LT(a, env.num_actions());
  EXPECT_GT(result.best_reward, 0.0);
  EXPECT_EQ(result.history.size(), 40u);
}

TEST(AutoHetSearch, BestRewardIsMaxOfHistory) {
  const auto env = make_env(toy_net());
  AutoHetSearch search(env, fast_config(40));
  const auto result = search.run();
  double max_seen = 0.0;
  for (const auto& e : result.history) max_seen = std::max(max_seen, e.reward);
  EXPECT_DOUBLE_EQ(result.best_reward, max_seen);
  // The stored report corresponds to the stored actions.
  const auto re_eval = env.evaluate(result.best_actions);
  EXPECT_DOUBLE_EQ(env.reward(re_eval), result.best_reward);
}

TEST(AutoHetSearch, DeterministicForSeed) {
  const auto env = make_env(toy_net());
  const auto r1 = AutoHetSearch(env, fast_config(30)).run();
  const auto r2 = AutoHetSearch(env, fast_config(30)).run();
  EXPECT_EQ(r1.best_actions, r2.best_actions);
  EXPECT_EQ(r1.best_reward, r2.best_reward);
  ASSERT_EQ(r1.history.size(), r2.history.size());
  for (std::size_t i = 0; i < r1.history.size(); ++i) {
    EXPECT_EQ(r1.history[i].actions, r2.history[i].actions) << i;
  }
}

TEST(AutoHetSearch, NearOptimalOnSmallSpace) {
  // With the exhaustive optimum known (5^4 = 625 configs), the RL search
  // must land within 5% of it.
  const auto env = make_env(toy_net());
  const auto optimum = core::exhaustive_search(env);
  const auto result = AutoHetSearch(env, fast_config(120)).run();
  EXPECT_GE(result.best_reward, 0.95 * optimum.reward);
}

TEST(AutoHetSearch, BeatsBestHomogeneousOnAlexNet) {
  // Fig. 9 headline, in miniature: the learned heterogeneous config beats
  // the best homogeneous RUE.
  const auto env = make_env(nn::alexnet());
  const auto homo = core::best_homogeneous(env);
  const auto result = AutoHetSearch(env, fast_config(120)).run();
  EXPECT_GT(result.best_report.rue(), homo.report.rue());
}

TEST(AutoHetSearch, LearningImprovesOverWarmup) {
  // Mean reward of the last 20 (policy) episodes should not be worse than
  // the mean of the random warmup episodes.
  const auto env = make_env(toy_net());
  auto cfg = fast_config(100);
  cfg.warmup_episodes = 20;
  const auto result = AutoHetSearch(env, cfg).run();
  const auto mean = [](auto begin, auto end) {
    double sum = 0.0;
    int n = 0;
    for (auto it = begin; it != end; ++it, ++n) sum += it->reward;
    return sum / n;
  };
  const double warmup_mean =
      mean(result.history.begin(), result.history.begin() + 20);
  const double tail_mean = mean(result.history.end() - 20,
                                result.history.end());
  EXPECT_GE(tail_mean, warmup_mean * 0.9);
}

TEST(AutoHetSearch, TracksTimeBreakdown) {
  const auto env = make_env(toy_net());
  const auto result = AutoHetSearch(env, fast_config(20)).run();
  EXPECT_GT(result.decision_seconds, 0.0);
  EXPECT_GT(result.simulator_seconds, 0.0);
  EXPECT_GT(result.learning_seconds, 0.0);
}

TEST(AutoHetSearch, ValidatesConfig) {
  const auto env = make_env(toy_net());
  SearchConfig bad;
  bad.episodes = 0;
  EXPECT_THROW(AutoHetSearch(env, bad), std::invalid_argument);
  SearchConfig negative_warmup;
  negative_warmup.warmup_episodes = -1;
  EXPECT_THROW(AutoHetSearch(env, negative_warmup), std::invalid_argument);
}

TEST(AutoHetSearch, EpisodeRecordsAreConsistent) {
  const auto env = make_env(toy_net());
  const auto result = AutoHetSearch(env, fast_config(10)).run();
  for (const auto& e : result.history) {
    EXPECT_EQ(e.actions.size(), env.num_layers());
    EXPECT_GT(e.energy_nj, 0.0);
    EXPECT_GT(e.utilization, 0.0);
    EXPECT_LE(e.utilization, 1.0);
    EXPECT_NEAR(e.rue, e.utilization * 100.0 / e.energy_nj, 1e-9);
  }
}

}  // namespace
}  // namespace autohet
