// Randomized stress tests across the whole mapping -> allocation ->
// controller -> hardware-model pipeline: generated layer populations must
// flow through every stage without invariant violations.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mapping/tile_allocator.hpp"
#include "nn/layer.hpp"
#include "reram/bank.hpp"
#include "reram/controller.hpp"
#include "reram/hardware_model.hpp"
#include "reram/noc.hpp"

namespace autohet {
namespace {

nn::LayerSpec random_layer(common::Rng& rng) {
  if (rng.uniform() < 0.25) {
    const auto in = rng.uniform_int(1, 4096);
    const auto out = rng.uniform_int(1, 4096);
    return nn::make_fc(in, out);
  }
  const std::int64_t k = 1 + 2 * rng.uniform_int(0, 2);  // 1, 3, 5
  const auto cin = rng.uniform_int(1, 512);
  const auto cout = rng.uniform_int(1, 512);
  const std::int64_t size = rng.uniform_int(static_cast<std::int64_t>(k), 32);
  return nn::make_conv(cin, cout, k, 1, k / 2, size, size);
}

class PipelineStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineStress, FullFlowHoldsInvariants) {
  common::Rng rng(GetParam());
  const std::size_t layer_count = 1 + rng.uniform_u64(24);
  std::vector<nn::LayerSpec> layers;
  std::vector<mapping::CrossbarShape> shapes;
  const auto candidates = mapping::all_candidates();
  for (std::size_t i = 0; i < layer_count; ++i) {
    layers.push_back(random_layer(rng));
    shapes.push_back(candidates[rng.uniform_u64(candidates.size())]);
  }
  const std::int64_t xbs = 1 + static_cast<std::int64_t>(rng.uniform_u64(16));
  const bool shared = rng.uniform() < 0.5;

  // Allocation invariants.
  const mapping::TileAllocator alloc(xbs, shared);
  const auto allocation = alloc.allocate(layers, shapes);
  std::int64_t needed = 0;
  for (const auto& l : allocation.layers) {
    EXPECT_GT(l.mapping.logical_crossbars(), 0);
    EXPECT_GT(l.mapping.utilization(), 0.0);
    EXPECT_LE(l.mapping.utilization(), 1.0);
    needed += l.mapping.logical_crossbars();
  }
  EXPECT_EQ(allocation.total_logical_crossbars() -
                allocation.empty_crossbars(),
            needed);
  EXPECT_GE(allocation.system_utilization(), 0.0);
  EXPECT_LE(allocation.system_utilization(), 1.0);
  for (const auto& tile : allocation.tiles) {
    EXPECT_EQ(tile.layer_ids.size(), tile.layer_xbs.size());
    if (tile.released) {
      EXPECT_TRUE(tile.layer_ids.empty());
      EXPECT_EQ(tile.empty_xbs, 0);
    } else {
      EXPECT_GE(tile.empty_xbs, 0);
      EXPECT_LE(tile.empty_xbs, xbs);
    }
  }

  // Hardware model invariants.
  reram::AcceleratorConfig config;
  config.pes_per_tile = xbs;
  config.tile_shared = shared;
  const auto report = reram::evaluate_network(layers, shapes, config);
  EXPECT_GT(report.energy.total_nj(), 0.0);
  EXPECT_GT(report.area.total_um2(), 0.0);
  EXPECT_GT(report.latency_ns, 0.0);
  EXPECT_EQ(report.occupied_tiles, allocation.occupied_tiles());

  // Controller program round-trip.
  const auto program = reram::compile_program(layers, allocation);
  const auto stats = reram::execute_program(program);
  EXPECT_EQ(stats.tiles_configured, allocation.occupied_tiles());
  EXPECT_EQ(stats.layers_executed,
            static_cast<std::int64_t>(layers.size()));

  // Placement + NoC.
  reram::ChipSpec chip;  // default 4 x 256 x 256 tiles is always enough here
  const auto placement = reram::place_tiles(allocation.tiles, chip);
  EXPECT_EQ(placement.tiles_placed, allocation.occupied_tiles());
  if (layers.size() > 1) {
    const auto noc = reram::evaluate_noc(layers, allocation, placement);
    EXPECT_EQ(noc.links.size(), layers.size() - 1);
    EXPECT_GE(noc.total_energy_nj, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineStress,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace autohet
