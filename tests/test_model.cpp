#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/model.hpp"
#include "nn/model_zoo.hpp"
#include "tensor/ops.hpp"

namespace autohet {
namespace {

TEST(Model, LeNetForwardProducesLogits) {
  common::Rng rng(1);
  const nn::Model model(nn::lenet5(), rng);
  common::Rng img_rng(2);
  const auto input = nn::synthetic_image(img_rng, 1, 32, 32);
  const auto out = model.forward(input);
  EXPECT_EQ(out.numel(), 10);
}

TEST(Model, ForwardIsDeterministicForSeed) {
  common::Rng rng1(5), rng2(5);
  const nn::Model m1(nn::lenet5(), rng1);
  const nn::Model m2(nn::lenet5(), rng2);
  common::Rng img_rng(3);
  const auto input = nn::synthetic_image(img_rng, 1, 32, 32);
  const auto o1 = m1.forward(input);
  const auto o2 = m2.forward(input);
  EXPECT_EQ(tensor::max_abs_diff(o1, o2), 0.0f);
}

TEST(Model, DifferentSeedsGiveDifferentWeights) {
  common::Rng rng1(1), rng2(2);
  const nn::Model m1(nn::lenet5(), rng1);
  const nn::Model m2(nn::lenet5(), rng2);
  EXPECT_GT(tensor::max_abs_diff(m1.weight(0), m2.weight(0)), 0.0f);
}

TEST(Model, WeightShapes) {
  common::Rng rng(1);
  const nn::Model model(nn::lenet5(), rng);
  ASSERT_EQ(model.mappable_count(), 5u);
  // Conv1: [6, 1, 5, 5].
  EXPECT_EQ(model.weight(0).shape(),
            (std::vector<std::int64_t>{6, 1, 5, 5}));
  // FC1: [120, 400].
  EXPECT_EQ(model.weight(2).shape(), (std::vector<std::int64_t>{120, 400}));
  EXPECT_THROW(model.weight(5), std::invalid_argument);
}

TEST(Model, ForwardLayerMatchesOps) {
  common::Rng rng(7);
  const nn::Model model(nn::lenet5(), rng);
  common::Rng img_rng(8);
  const auto input = nn::synthetic_image(img_rng, 1, 32, 32);
  const auto direct =
      tensor::conv2d(input, model.weight(0), /*stride=*/1, /*pad=*/0);
  const auto via_model = model.forward_layer(0, input);
  EXPECT_EQ(tensor::max_abs_diff(direct, via_model), 0.0f);
}

TEST(Model, RejectsNonRunnableNetworks) {
  common::Rng rng(1);
  const nn::Model model(nn::resnet152(), rng);
  common::Rng img_rng(2);
  const auto input = nn::synthetic_image(img_rng, 3, 224, 224);
  EXPECT_THROW(model.forward(input), std::invalid_argument);
  // But per-layer execution still works for the stem.
  const auto stem = model.forward_layer(0, input);
  EXPECT_EQ(stem.dim(0), 64);
  EXPECT_EQ(stem.dim(1), 112);
}

TEST(Model, ReluAppliedBetweenLayersButNotAtEnd) {
  // The last FC has relu_after = false, so logits may be negative.
  common::Rng rng(11);
  const nn::Model model(nn::lenet5(), rng);
  common::Rng img_rng(12);
  bool saw_negative = false;
  for (int trial = 0; trial < 5 && !saw_negative; ++trial) {
    const auto out =
        model.forward(nn::synthetic_image(img_rng, 1, 32, 32));
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      if (out[i] < 0.0f) saw_negative = true;
    }
  }
  EXPECT_TRUE(saw_negative);
}

TEST(SyntheticImage, ShapeAndRange) {
  common::Rng rng(13);
  const auto img = nn::synthetic_image(rng, 3, 8, 9);
  EXPECT_EQ(img.shape(), (std::vector<std::int64_t>{3, 8, 9}));
  EXPECT_GE(img.min(), 0.0f);
  EXPECT_LT(img.max(), 1.0f);
}

}  // namespace
}  // namespace autohet
