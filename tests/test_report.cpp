#include <gtest/gtest.h>

#include <sstream>

#include "report/table.hpp"

namespace autohet {
namespace {

using report::Table;

TEST(Format, Scientific) {
  EXPECT_EQ(report::format_sci(22900000000.0, 2), "2.29e+10");
  EXPECT_EQ(report::format_sci(0.000031, 1), "3.1e-05");
}

TEST(Format, Fixed) {
  EXPECT_EQ(report::format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(report::format_fixed(100.0, 0), "100");
}

TEST(Table, AlignsColumns) {
  Table t({"Name", "Value"});
  t.add_row({"a", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream oss;
  t.print(oss);
  const std::string out = oss.str();
  EXPECT_NE(out.find("| Name        | Value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_NE(out.find("|-------------|-------|"), std::string::npos);
}

TEST(Table, RowWidthIsValidated) {
  Table t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CountsRowsAndColumns) {
  Table t({"A", "B", "C"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Table, CsvPlainFields) {
  Table t({"A", "B"});
  t.add_row({"x", "y"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "A,B\nx,y\n");
}

TEST(Table, CsvQuotesSpecialCharacters) {
  Table t({"A"});
  t.add_row({"has,comma"});
  t.add_row({"has\"quote"});
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "A\n\"has,comma\"\n\"has\"\"quote\"\n");
}

}  // namespace
}  // namespace autohet
