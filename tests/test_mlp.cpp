#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "rl/mlp.hpp"

namespace autohet {
namespace {

using rl::Activation;
using rl::Mlp;

TEST(Activations, ValuesAndGrads) {
  EXPECT_EQ(rl::apply_activation(Activation::kLinear, -2.0), -2.0);
  EXPECT_EQ(rl::apply_activation(Activation::kRelu, -2.0), 0.0);
  EXPECT_EQ(rl::apply_activation(Activation::kRelu, 3.0), 3.0);
  EXPECT_NEAR(rl::apply_activation(Activation::kSigmoid, 0.0), 0.5, 1e-12);
  EXPECT_NEAR(rl::apply_activation(Activation::kTanh, 0.0), 0.0, 1e-12);

  EXPECT_EQ(rl::activation_grad_from_output(Activation::kLinear, 5.0), 1.0);
  EXPECT_EQ(rl::activation_grad_from_output(Activation::kRelu, 0.0), 0.0);
  EXPECT_EQ(rl::activation_grad_from_output(Activation::kRelu, 2.0), 1.0);
  EXPECT_NEAR(rl::activation_grad_from_output(Activation::kSigmoid, 0.5),
              0.25, 1e-12);
  EXPECT_NEAR(rl::activation_grad_from_output(Activation::kTanh, 0.0), 1.0,
              1e-12);
}

TEST(Mlp, ForwardShape) {
  common::Rng rng(1);
  Mlp net({3, 8, 2}, {Activation::kRelu, Activation::kLinear}, rng);
  const std::vector<double> x = {0.1, -0.2, 0.3};
  const auto y = net.forward(x);
  EXPECT_EQ(y.size(), 2u);
  EXPECT_EQ(net.input_size(), 3);
  EXPECT_EQ(net.output_size(), 2);
  EXPECT_EQ(net.param_count(), 3u * 8 + 8 + 8 * 2 + 2);
}

TEST(Mlp, ValidatesConstruction) {
  common::Rng rng(1);
  EXPECT_THROW(Mlp({3}, {}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({3, 2}, {}, rng), std::invalid_argument);
  EXPECT_THROW(Mlp({3, 0}, {Activation::kLinear}, rng),
               std::invalid_argument);
}

TEST(Mlp, ForwardRejectsWrongInputSize) {
  common::Rng rng(1);
  Mlp net({3, 2}, {Activation::kLinear}, rng);
  const std::vector<double> wrong = {1.0, 2.0};
  EXPECT_THROW(net.forward(wrong), std::invalid_argument);
}

// Finite-difference gradient check: the cornerstone of the manual backprop.
class MlpGradCheck : public ::testing::TestWithParam<Activation> {};

TEST_P(MlpGradCheck, ParameterGradientsMatchFiniteDifferences) {
  const Activation hidden_act = GetParam();
  common::Rng rng(42);
  Mlp net({4, 6, 5, 2}, {hidden_act, hidden_act, Activation::kLinear}, rng);
  std::vector<double> x(4);
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  // Loss L = sum of squared outputs; dL/dy = 2y.
  const auto loss_of = [&net, &x]() {
    const auto y = net.forward(x);
    double l = 0.0;
    for (double v : y) l += v * v;
    return l;
  };

  Mlp::Cache cache;
  const auto y = net.forward(x, cache);
  std::vector<double> dy(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) dy[i] = 2.0 * y[i];
  net.zero_grads();
  net.backward(cache, dy);

  const double eps = 1e-6;
  // Check a deterministic sample of parameters across the whole vector.
  for (std::size_t p = 0; p < net.param_count(); p += 7) {
    const double original = net.params()[p];
    net.params()[p] = original + eps;
    const double l_plus = loss_of();
    net.params()[p] = original - eps;
    const double l_minus = loss_of();
    net.params()[p] = original;
    const double fd = (l_plus - l_minus) / (2.0 * eps);
    EXPECT_NEAR(net.grads()[p], fd, 1e-4 * std::max(1.0, std::fabs(fd)))
        << "param " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, MlpGradCheck,
                         ::testing::Values(Activation::kTanh,
                                           Activation::kSigmoid,
                                           Activation::kRelu));

TEST(Mlp, InputGradientMatchesFiniteDifferences) {
  common::Rng rng(43);
  Mlp net({3, 5, 1}, {Activation::kTanh, Activation::kLinear}, rng);
  std::vector<double> x = {0.2, -0.4, 0.6};

  Mlp::Cache cache;
  net.forward(x, cache);
  const double one = 1.0;
  net.zero_grads();
  const auto dx = net.backward(cache, std::span<const double>(&one, 1));

  const double eps = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = x[i];
    x[i] = orig + eps;
    const double y_plus = net.forward(x)[0];
    x[i] = orig - eps;
    const double y_minus = net.forward(x)[0];
    x[i] = orig;
    EXPECT_NEAR(dx[i], (y_plus - y_minus) / (2 * eps), 1e-5) << i;
  }
}

TEST(Mlp, BackwardAccumulatesAcrossCalls) {
  common::Rng rng(44);
  Mlp net({2, 3, 1}, {Activation::kTanh, Activation::kLinear}, rng);
  const std::vector<double> x = {0.5, -0.5};
  const double one = 1.0;

  Mlp::Cache cache;
  net.forward(x, cache);
  net.zero_grads();
  net.backward(cache, std::span<const double>(&one, 1));
  const std::vector<double> single = net.grads();

  net.zero_grads();
  net.backward(cache, std::span<const double>(&one, 1));
  net.backward(cache, std::span<const double>(&one, 1));
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_NEAR(net.grads()[i], 2.0 * single[i], 1e-12);
  }
}

TEST(Mlp, SoftUpdateMovesTowardSource) {
  common::Rng rng(45);
  Mlp a({2, 3, 1}, {Activation::kTanh, Activation::kLinear}, rng);
  Mlp b({2, 3, 1}, {Activation::kTanh, Activation::kLinear}, rng);
  const std::vector<double> before = b.params();
  b.soft_update_from(a, 0.25);
  for (std::size_t i = 0; i < b.param_count(); ++i) {
    EXPECT_NEAR(b.params()[i], 0.25 * a.params()[i] + 0.75 * before[i],
                1e-12);
  }
  b.soft_update_from(a, 1.0);
  for (std::size_t i = 0; i < b.param_count(); ++i) {
    EXPECT_EQ(b.params()[i], a.params()[i]);
  }
}

TEST(Mlp, CopyParamsExactly) {
  common::Rng rng(46);
  Mlp a({2, 4, 1}, {Activation::kRelu, Activation::kSigmoid}, rng);
  Mlp b({2, 4, 1}, {Activation::kRelu, Activation::kSigmoid}, rng);
  b.copy_params_from(a);
  const std::vector<double> x = {0.3, 0.7};
  EXPECT_EQ(a.forward(x)[0], b.forward(x)[0]);
}

TEST(Mlp, SigmoidOutputStaysInUnitInterval) {
  common::Rng rng(47);
  Mlp net({10, 32, 1}, {Activation::kRelu, Activation::kSigmoid}, rng);
  for (int t = 0; t < 100; ++t) {
    std::vector<double> x(10);
    for (auto& v : x) v = rng.uniform(-10.0, 10.0);
    const double y = net.forward(x)[0];
    EXPECT_GT(y, 0.0);
    EXPECT_LT(y, 1.0);
  }
}

}  // namespace
}  // namespace autohet
