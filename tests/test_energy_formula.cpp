// Pins the closed-form energy/latency accounting of the hardware model so
// future refactors cannot silently change the cost model the experiments
// rest on (formulas documented in reram/hardware_model.hpp).
#include <gtest/gtest.h>

#include "mapping/layer_mapping.hpp"
#include "nn/layer.hpp"
#include "reram/hardware_model.hpp"

namespace autohet {
namespace {

TEST(EnergyFormula, AdcTermExact) {
  // Layer: k=3, Cin=12, Cout=128 on 64x64 -> rb=2, 16x16 output (256 MVMs
  // with stride 1 pad 1).
  const auto layer = nn::make_conv(12, 128, 3, 1, 1, 16, 16);
  const auto m = mapping::map_layer(layer, {64, 64});
  const reram::DeviceParams p;
  const auto r = reram::evaluate_layer(layer, m, 1, p);
  const double mvms = 256.0;
  const double conversions_per_cycle = 8.0 /*planes*/ * 2.0 /*rb*/ * 128.0;
  const double expected =
      mvms * 8.0 /*cycles*/ * conversions_per_cycle * p.adc_energy_pj * 1e-3;
  EXPECT_NEAR(r.energy.adc_nj, expected, expected * 1e-12);
}

TEST(EnergyFormula, DacTermExact) {
  const auto layer = nn::make_conv(12, 128, 3, 1, 1, 16, 16);
  const auto m = mapping::map_layer(layer, {64, 64});
  const reram::DeviceParams p;
  const auto r = reram::evaluate_layer(layer, m, 1, p);
  // cb = 2 column blocks, used rows = Cin*k^2 = 108.
  const double expected =
      256.0 * 8.0 * (8.0 * 2.0 * 108.0) * p.dac_energy_pj * 1e-3;
  EXPECT_NEAR(r.energy.dac_nj, expected, expected * 1e-12);
}

TEST(EnergyFormula, CellTermUsesUsefulCellsOnly) {
  const auto layer = nn::make_conv(12, 128, 3, 1, 1, 16, 16);
  const auto m = mapping::map_layer(layer, {64, 64});
  const reram::DeviceParams p;
  const auto r = reram::evaluate_layer(layer, m, 1, p);
  const double useful = 12.0 * 9.0 * 128.0;
  const double expected =
      256.0 * 8.0 * (8.0 * useful) * p.cell_read_energy_pj * 1e-3;
  EXPECT_NEAR(r.energy.cell_nj, expected, expected * 1e-12);
}

TEST(EnergyFormula, ShiftAddTracksAdcConversions) {
  const auto layer = nn::make_conv(12, 128, 3, 1, 1, 16, 16);
  const auto m = mapping::map_layer(layer, {64, 64});
  const reram::DeviceParams p;
  const auto r = reram::evaluate_layer(layer, m, 1, p);
  EXPECT_NEAR(r.energy.shift_add_nj / r.energy.adc_nj,
              p.shift_add_energy_pj / p.adc_energy_pj, 1e-12);
}

TEST(EnergyFormula, BufferTermExact) {
  const auto layer = nn::make_fc(512, 4096);
  const auto m = mapping::map_layer(layer, {512, 512});
  const reram::DeviceParams p;
  const auto r = reram::evaluate_layer(layer, m, 1, p);
  // 1 MVM; bytes = rows(512) + out(4096).
  const double expected = 1.0 * (512.0 + 4096.0) * p.buffer_rw_energy_pj *
                          1e-3;
  EXPECT_NEAR(r.energy.buffer_nj, expected, expected * 1e-12);
}

TEST(LatencyFormula, PerMvmTermsExact) {
  const auto layer = nn::make_fc(512, 4096);  // 1 MVM, rb=1, cb=8
  const auto m = mapping::map_layer(layer, {512, 512});
  reram::DeviceParams p;
  const auto r = reram::evaluate_layer(layer, m, /*tiles_spanned=*/2, p);
  const double cycle = p.base_cycle_ns + p.wire_delay_ns_per_row * 512.0;
  // merge levels: ceil_log2(rb=1)=0 plus ceil_log2(planes=8)=3; bus:
  // ceil_log2(tiles=2)=1.
  const double expected = 8.0 * cycle + p.adc_latency_ns * p.adc_share +
                          p.merge_latency_ns * 3.0 + p.bus_latency_ns * 1.0;
  EXPECT_NEAR(r.latency_ns, expected, expected * 1e-12);
}

TEST(LatencyFormula, AdcShareStretchesConversionPhase) {
  const auto layer = nn::make_fc(512, 4096);
  const auto m = mapping::map_layer(layer, {512, 512});
  reram::DeviceParams p1;
  reram::DeviceParams p8 = p1;
  p8.adc_share = 8;
  const auto r1 = reram::evaluate_layer(layer, m, 1, p1);
  const auto r8 = reram::evaluate_layer(layer, m, 1, p8);
  EXPECT_NEAR(r8.latency_ns - r1.latency_ns, 7.0 * p1.adc_latency_ns, 1e-9);
  // Energy is unchanged by sharing.
  EXPECT_NEAR(r8.energy.total_nj(), r1.energy.total_nj(), 1e-12);
}

TEST(EnergyFormula, SplitKernelFallbackUsesWeightRows) {
  // 7x7 kernel on 32 rows: split path; DAC drives cover Cin*k^2 rows.
  const auto layer = nn::make_conv(3, 64, 7, 2, 3, 28, 28);
  const auto m = mapping::map_layer(layer, {32, 32});
  ASSERT_TRUE(m.split_kernel);
  const reram::DeviceParams p;
  const auto r = reram::evaluate_layer(layer, m, 1, p);
  const double mvms = static_cast<double>(layer.mvm_count());
  const double expected_dac =
      mvms * 8.0 * (8.0 * static_cast<double>(m.col_blocks) * 147.0) *
      p.dac_energy_pj * 1e-3;
  EXPECT_NEAR(r.energy.dac_nj, expected_dac, expected_dac * 1e-12);
}

}  // namespace
}  // namespace autohet
