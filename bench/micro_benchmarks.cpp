// Google-benchmark microbenchmarks of the library's hot paths: Eq.4 mapping,
// whole-network hardware evaluation, Algorithm 1 remapping, the bit-serial
// crossbar datapath, and a DDPG update step.
#include <benchmark/benchmark.h>

#include "autohet/env.hpp"
#include "bench_common.hpp"
#include "mapping/tile_allocator.hpp"
#include "nn/model_zoo.hpp"
#include "reram/crossbar.hpp"
#include "reram/hardware_model.hpp"
#include "rl/ddpg.hpp"

using namespace autohet;

namespace {

void BM_MapLayer(benchmark::State& state) {
  const auto layer = nn::make_conv(512, 512, 3, 1, 1, 14, 14);
  const mapping::CrossbarShape shape{
      state.range(0), state.range(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapping::map_layer(layer, shape));
  }
}
BENCHMARK(BM_MapLayer)->Arg(32)->Arg(128)->Arg(512);

void BM_EvaluateNetworkVgg16(benchmark::State& state) {
  const auto layers = nn::vgg16().mappable_layers();
  auto config = bench::paper_accel(state.range(0) != 0);
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {64, 64});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reram::evaluate_network(layers, shapes, config));
  }
}
BENCHMARK(BM_EvaluateNetworkVgg16)->Arg(0)->Arg(1);

void BM_EvaluateNetworkResnet152(benchmark::State& state) {
  const auto layers = nn::resnet152().mappable_layers();
  const auto config = bench::paper_accel(/*tile_shared=*/true);
  const std::vector<mapping::CrossbarShape> shapes(layers.size(),
                                                   {288, 256});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        reram::evaluate_network(layers, shapes, config));
  }
}
BENCHMARK(BM_EvaluateNetworkResnet152);

void BM_TileSharedRemap(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  common::Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<mapping::Tile> tiles(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      tiles[static_cast<std::size_t>(i)].id = i;
      tiles[static_cast<std::size_t>(i)].empty_xbs =
          static_cast<std::int64_t>(rng.uniform_u64(4));
    }
    std::vector<mapping::Tile*> ptrs;
    for (auto& t : tiles) ptrs.push_back(&t);
    state.ResumeTiming();
    benchmark::DoNotOptimize(mapping::tile_shared_remap(ptrs, 4));
  }
}
BENCHMARK(BM_TileSharedRemap)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CrossbarBitSerialMvm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  reram::LogicalCrossbar xb({n, n});
  common::Rng rng(2);
  std::vector<std::int8_t> w(static_cast<std::size_t>(n * n));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  xb.program(w, n, n);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xb.mvm_bit_serial(x));
  }
  state.SetItemsProcessed(state.iterations() * n * n * 64);
}
BENCHMARK(BM_CrossbarBitSerialMvm)->Arg(32)->Arg(64)->Arg(128);

void BM_CrossbarIntegerMvm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  reram::LogicalCrossbar xb({n, n});
  common::Rng rng(3);
  std::vector<std::int8_t> w(static_cast<std::size_t>(n * n));
  for (auto& v : w) v = static_cast<std::int8_t>(rng.uniform_int(-128, 127));
  xb.program(w, n, n);
  std::vector<std::uint8_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xb.mvm_reference(x));
  }
}
BENCHMARK(BM_CrossbarIntegerMvm)->Arg(128)->Arg(512);

void BM_DdpgUpdate(benchmark::State& state) {
  rl::DdpgConfig cfg;
  cfg.state_dim = core::kStateDim;
  rl::DdpgAgent agent(cfg, common::Rng(4));
  common::Rng rng(5);
  for (int i = 0; i < 256; ++i) {
    rl::Transition t;
    t.state.resize(core::kStateDim);
    t.next_state.resize(core::kStateDim);
    for (auto& v : t.state) v = rng.uniform();
    for (auto& v : t.next_state) v = rng.uniform();
    t.action = rng.uniform();
    t.reward = rng.uniform();
    agent.remember(std::move(t));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.update());
  }
}
BENCHMARK(BM_DdpgUpdate);

void BM_EnvEpisodeReward(benchmark::State& state) {
  core::EnvConfig cfg;
  cfg.candidates = mapping::hybrid_candidates();
  cfg.accel.tile_shared = true;
  const core::CrossbarEnv env(nn::vgg16().mappable_layers(), cfg);
  common::Rng rng(6);
  for (auto _ : state) {
    std::vector<std::size_t> actions(env.num_layers());
    for (auto& a : actions) a = rng.uniform_u64(env.num_actions());
    const auto report = env.evaluate(actions);
    benchmark::DoNotOptimize(env.reward(report));
  }
}
BENCHMARK(BM_EnvEpisodeReward);

}  // namespace

BENCHMARK_MAIN();
