// Ablation of the RL agent itself: best-so-far reward trajectories of the
// DDPG search vs pure random search at equal evaluation budget, against the
// greedy and exhaustive-free reference points. Demonstrates that the
// learning stage (not just the evaluation budget) drives the result —
// the premise behind choosing RL in §3.2.
//
// Usage: search_convergence [episodes]   (default 200)
#include "bench_common.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 200);
  bench::print_header("Ablation — RL vs random search convergence (VGG16, " +
                      std::to_string(episodes) + " evaluations)");
  const auto env = bench::make_env(nn::vgg16(), mapping::hybrid_candidates(),
                                   /*tile_shared=*/true);

  // RL trajectory (pure: no seeded demonstrations, so the comparison
  // isolates learning vs random exploration).
  core::SearchConfig cfg;
  cfg.episodes = episodes;
  cfg.warmup_episodes = std::min(25, episodes / 4);
  cfg.seeded_warmup = false;
  cfg.seed = 5;
  const auto rl = core::AutoHetSearch(env, cfg).run();

  // Random trajectory with the identical budget.
  common::Rng rng(5);
  std::vector<double> random_best;
  double best = -1.0;
  for (int e = 0; e < episodes; ++e) {
    std::vector<std::size_t> actions(env.num_layers());
    for (auto& a : actions) a = rng.uniform_u64(env.num_actions());
    best = std::max(best, env.reward(env.evaluate(actions)));
    random_best.push_back(best);
  }

  report::Table table({"Episode", "RL best-so-far", "Random best-so-far",
                       "RL critic loss"});
  double rl_best = 0.0;
  for (int e = 0; e < episodes; ++e) {
    rl_best = std::max(rl_best,
                       rl.history[static_cast<std::size_t>(e)].reward);
    if ((e + 1) % std::max(1, episodes / 10) == 0) {
      table.add_row(
          {std::to_string(e + 1), report::format_fixed(rl_best, 4),
           report::format_fixed(random_best[static_cast<std::size_t>(e)], 4),
           report::format_sci(
               rl.history[static_cast<std::size_t>(e)].mean_critic_loss,
               2)});
    }
  }
  table.print(std::cout);

  const auto greedy = core::greedy_search(env);
  std::cout << "\nReference points: greedy reward = "
            << report::format_fixed(greedy.reward, 4)
            << ", RL final = " << report::format_fixed(rl.best_reward, 4)
            << ", random final = "
            << report::format_fixed(random_best.back(), 4) << '\n';
  std::cout << "Shape: the RL trajectory overtakes random once the critic "
               "converges, and ends at or above the greedy point.\n";
  return 0;
}
