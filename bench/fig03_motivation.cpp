// Reproduces Fig. 3: homogeneous square crossbars (32..512) vs the manual
// heterogeneous assignment (512x512 for VGG16's first ten layers, 256x256
// for the last six) — utilization, energy, and RUE.
#include "bench_common.hpp"

using namespace autohet;

int main() {
  bench::print_header(
      "Fig. 3 — homogeneous vs manual-heterogeneous crossbars (VGG16)");
  const auto net = nn::vgg16();
  const auto env =
      bench::make_env(net, mapping::square_candidates(), /*tile_shared=*/false);

  report::Table table({"Config", "Utilization %", "Energy (nJ)", "RUE"});
  for (const auto& homo : core::homogeneous_sweep(env)) {
    table.add_row(bench::metric_row(homo.name, homo.report));
  }
  // The paper's manual split: 512x512 head (first 10 layers), 256x256 tail.
  const auto manual = core::manual_hetero(env, 4, 3, 10);
  table.add_row(bench::metric_row("Manual-Hetero(10x512,6x256)",
                                  manual.report));
  // A nearby manual split that tops every homogeneous config in this model
  // (256x256 for the FC tail only); see EXPERIMENTS.md for the discussion.
  const auto fc_tail = core::manual_hetero(env, 4, 3, 13);
  table.add_row(bench::metric_row("Manual-Hetero(13x512,3x256)",
                                  fc_tail.report));
  table.print(std::cout);

  std::cout << "\nPaper shape: small crossbars win utilization, big ones win "
               "energy; manual heterogeneity tops RUE.\n";
  return 0;
}
