// Reproduces Fig. 10: the impact of each AutoHet technique, enabled one by
// one, on RUE / utilization / energy for the three models:
//   Base  = best homogeneous square accelerator,
//   +He   = RL search over heterogeneous square crossbars (SXBs),
//   +Hy   = RL search over hybrid squares + rectangles (the paper's five),
//   All   = +Hy plus the tile-shared allocation scheme.
//
// Usage: fig10_ablation [episodes]   (default 120 per search)
#include "bench_common.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 120);
  bench::print_header("Fig. 10 — impact of individual techniques");

  for (const auto& net : nn::paper_workloads()) {
    const int eps = net.name == "ResNet152" ? std::max(20, episodes / 2)
                                            : episodes;
    std::cout << "\n-- " << net.name << " (" << eps
              << " episodes per search) --\n";

    const auto square_env = bench::make_env(net, mapping::square_candidates(),
                                            /*tile_shared=*/false);
    const auto base = core::best_homogeneous(square_env);
    const auto he = bench::run_search(square_env, eps);
    const auto hy_env = bench::make_env(net, mapping::hybrid_candidates(),
                                        /*tile_shared=*/false);
    const auto hy = bench::run_search(hy_env, eps);
    const auto all_env = bench::make_env(net, mapping::hybrid_candidates(),
                                         /*tile_shared=*/true);
    const auto all = bench::run_search(all_env, eps);

    report::Table table({"Variant", "Utilization %", "Energy (nJ)", "RUE"});
    table.add_row(bench::metric_row("Base (" + base.name + ")", base.report));
    table.add_row(bench::metric_row("+He  (hetero SXB)", he.best_report));
    table.add_row(bench::metric_row("+Hy  (hybrid SXB+RXB)", hy.best_report));
    table.add_row(bench::metric_row("All  (+tile-shared)", all.best_report));
    table.print(std::cout);
    std::cout << "RUE steps: +He/Base="
              << report::format_fixed(he.best_report.rue() / base.report.rue(),
                                      2)
              << "x, +Hy/+He="
              << report::format_fixed(
                     hy.best_report.rue() / he.best_report.rue(), 2)
              << "x, All/+Hy="
              << report::format_fixed(
                     all.best_report.rue() / hy.best_report.rue(), 2)
              << "x\n";
  }
  std::cout << "\nPaper shape: each technique improves or maintains RUE; "
               "+Hy contributes most to energy, All to utilization.\n";
  return 0;
}
