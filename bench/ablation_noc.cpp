// Ablation: inter-tile interconnect traffic and energy across crossbar
// configurations (extension beyond the paper's core energy model — the
// bus the Global Controller drives in §3.1, quantified).
#include "bench_common.hpp"
#include "reram/noc.hpp"

using namespace autohet;

int main() {
  bench::print_header(
      "Ablation — interconnect (NoC) traffic and energy (VGG16)");
  const auto layers = nn::vgg16().mappable_layers();

  report::Table table({"Config", "Tiles", "Total bytes/inf", "Mean hops",
                       "NoC energy (nJ)", "vs core energy %"});
  const auto add_row = [&](const std::string& name,
                           const std::vector<mapping::CrossbarShape>& shapes,
                           bool shared) {
    const auto config = bench::paper_accel(shared);
    const auto core = reram::evaluate_network(layers, shapes, config);
    const mapping::TileAllocator alloc(config.pes_per_tile, shared);
    const auto allocation = alloc.allocate(layers, shapes);
    const auto placement =
        reram::place_tiles(allocation.tiles, reram::ChipSpec{});
    const auto noc = reram::evaluate_noc(layers, allocation, placement);
    table.add_row(
        {name, std::to_string(core.occupied_tiles),
         std::to_string(noc.total_bytes),
         report::format_fixed(noc.mean_hops, 2),
         report::format_fixed(noc.total_energy_nj, 1),
         report::format_fixed(
             100.0 * noc.total_energy_nj / core.energy.total_nj(), 2)});
  };

  for (const auto& shape : mapping::square_candidates()) {
    add_row(shape.name(),
            std::vector<mapping::CrossbarShape>(layers.size(), shape),
            false);
  }
  // The paper's hybrid candidates, all-largest, with tile sharing.
  add_row("576x512+shared",
          std::vector<mapping::CrossbarShape>(layers.size(), {576, 512}),
          true);
  table.print(std::cout);
  std::cout << "\nShape: sprawling small-crossbar configurations pay more "
               "hops; interconnect energy stays a small additive share of "
               "the ADC-dominated core energy.\n";
  return 0;
}
