// Reproduces Fig. 5: the same DNN layer (128 kernels of 3x3x12) mapped onto
// 64x64 vs 128x128 crossbars — utilization and activated ADCs. Exact-match
// anchor: utilization 27/32 vs 27/128 (tile level), ADCs 256 vs 128.
#include "bench_common.hpp"
#include "mapping/layer_mapping.hpp"
#include "reram/hardware_model.hpp"

using namespace autohet;

int main() {
  bench::print_header("Fig. 5 — one layer (k=3, Cin=12, Cout=128) on 64x64 "
                      "vs 128x128 crossbars");
  const auto layer = nn::make_conv(12, 128, 3, 1, 1, 16, 16);
  reram::AcceleratorConfig config;  // 4 PEs/tile as in the paper figure

  report::Table table({"Crossbar", "Logical XBs", "Activated ADCs",
                       "Utilization (tile)", "Utilization (Eq.4)",
                       "ADC energy (nJ)"});
  for (const mapping::CrossbarShape shape :
       {mapping::CrossbarShape{64, 64}, mapping::CrossbarShape{128, 128}}) {
    const auto m = mapping::map_layer(layer, shape);
    const auto lr = reram::evaluate_layer(layer, m, 1, config.device);
    const auto net = reram::evaluate_homogeneous({layer}, shape, config);
    table.add_row({shape.name(), std::to_string(m.logical_crossbars()),
                   std::to_string(m.adc_count()),
                   report::format_fixed(net.utilization, 4),
                   report::format_fixed(m.utilization(), 4),
                   report::format_fixed(lr.energy.adc_nj, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper anchors: XB64 -> util 27/32 = 0.8438, 256 ADCs;  "
               "XB128 -> util 27/128 = 0.2109, 128 ADCs.\n";
  return 0;
}
