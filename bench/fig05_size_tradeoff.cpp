// Reproduces Fig. 5: the same DNN layer (128 kernels of 3x3x12) mapped onto
// 64x64 vs 128x128 crossbars — utilization and activated ADCs. Exact-match
// anchor: utilization 27/32 vs 27/128 (tile level), ADCs 256 vs 128.
//
// Reads both rows straight from the EvaluationEngine's precomputed L×C
// layer-report table — the same table the RL search consumes.
#include "bench_common.hpp"
#include "reram/eval_engine.hpp"

using namespace autohet;

int main() {
  bench::print_header("Fig. 5 — one layer (k=3, Cin=12, Cout=128) on 64x64 "
                      "vs 128x128 crossbars");
  const auto layer = nn::make_conv(12, 128, 3, 1, 1, 16, 16);
  const auto config = bench::paper_accel();  // 4 PEs/tile as in the figure
  const std::vector<mapping::CrossbarShape> shapes{{64, 64}, {128, 128}};
  const reram::EvaluationEngine engine({layer}, shapes, config);

  report::Table table({"Crossbar", "Logical XBs", "Activated ADCs",
                       "Utilization (tile)", "Utilization (Eq.4)",
                       "ADC energy (nJ)"});
  for (std::size_t c = 0; c < shapes.size(); ++c) {
    const auto& lr = engine.layer_report(0, c);
    const auto net = engine.evaluate(std::vector<std::size_t>{c});
    table.add_row({shapes[c].name(), std::to_string(lr.logical_crossbars),
                   std::to_string(lr.adc_instances),
                   report::format_fixed(net.utilization, 4),
                   report::format_fixed(lr.utilization, 4),
                   report::format_fixed(lr.energy.adc_nj, 1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper anchors: XB64 -> util 27/32 = 0.8438, 256 ADCs;  "
               "XB128 -> util 27/128 = 0.2109, 128 ADCs.\n";
  return 0;
}
