// Reproduces Table 5: area occupancy and inference latency of the five
// homogeneous accelerators and AutoHet, for VGG16.
//
// Usage: table5_area_latency [episodes]   (default 200)
#include "bench_common.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 200);
  bench::print_header("Table 5 — area and inference latency (VGG16)");
  const auto net = nn::vgg16();

  const auto homo_env = bench::make_env(net, mapping::square_candidates(),
                                        /*tile_shared=*/false);
  const auto auto_env = bench::make_env(net, mapping::hybrid_candidates(),
                                        /*tile_shared=*/true);
  const auto result = bench::run_search(auto_env, episodes);

  report::Table table({"Accelerator", "Area (um^2)", "Latency (ns)",
                       "Area vs SXB512", "Latency vs best"});
  const auto sweep = core::homogeneous_sweep(homo_env);
  const double area512 = sweep.back().report.area.total_um2();
  double best_latency = result.best_report.latency_ns;
  for (const auto& s : sweep) {
    best_latency = std::min(best_latency, s.report.latency_ns);
  }
  for (const auto& s : sweep) {
    table.add_row({"SXB" + std::to_string(s.report.layers[0].shape.rows),
                   report::format_sci(s.report.area.total_um2(), 2),
                   report::format_sci(s.report.latency_ns, 2),
                   report::format_fixed(
                       s.report.area.total_um2() / area512, 2) + "x",
                   report::format_fixed(
                       s.report.latency_ns / best_latency, 2) + "x"});
  }
  const auto& best = result.best_report;
  table.add_row({"AUTOHET", report::format_sci(best.area.total_um2(), 2),
                 report::format_sci(best.latency_ns, 2),
                 report::format_fixed(best.area.total_um2() / area512, 2) +
                     "x",
                 report::format_fixed(best.latency_ns / best_latency, 2) +
                     "x"});
  table.print(std::cout);
  std::cout << "\nPaper shape: area shrinks monotonically with crossbar "
               "size; AutoHet is smallest (paper: -14% vs SXB512, -92% vs "
               "best-RUE homogeneous) with latency within a few percent of "
               "the fastest accelerator.\n";
  return 0;
}
