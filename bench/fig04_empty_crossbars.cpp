// Reproduces Fig. 4: proportion of empty crossbars for the first four VGG16
// layers on 64x64 crossbars, with 4/8/16/32 crossbars per tile.
#include "bench_common.hpp"
#include "mapping/tile_allocator.hpp"

using namespace autohet;

int main() {
  bench::print_header(
      "Fig. 4 — empty-crossbar proportion vs tile size (VGG16 L1-L4, 64x64)");
  const auto mappable = nn::vgg16().mappable_layers();
  const std::vector<nn::LayerSpec> layers(mappable.begin(),
                                          mappable.begin() + 4);
  const std::vector<mapping::CrossbarShape> shapes(4, {64, 64});

  report::Table table({"XBs/tile", "L1 empty %", "L2 empty %", "L3 empty %",
                       "L4 empty %", "Average %"});
  for (std::int64_t xbs : {4, 8, 16, 32}) {
    const mapping::TileAllocator alloc(xbs, /*tile_shared=*/false);
    const auto result = alloc.allocate(layers, shapes);
    std::vector<std::string> row = {std::to_string(xbs)};
    double total = 0.0;
    for (const auto& layer : result.layers) {
      const double allocated =
          static_cast<double>(layer.tiles_allocated * xbs);
      const double empty =
          allocated - static_cast<double>(layer.mapping.logical_crossbars());
      const double pct = 100.0 * empty / allocated;
      total += pct;
      row.push_back(report::format_fixed(pct, 1));
    }
    row.push_back(report::format_fixed(total / 4.0, 1));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: average empty fraction ~24% at 4 XBs/tile "
               "rising to ~60% at 32.\n";
  return 0;
}
