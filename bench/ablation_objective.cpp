// Extension: search-objective ablation. The paper optimizes RUE = u/e
// (Eq. 2); area- and latency-aware variants fold the remaining hardware
// costs into the reward. This bench runs the same search under each
// objective and shows how the resulting configurations trade the four
// metrics — demonstrating that the framework generalizes beyond the paper's
// single objective (§4.5 "applicability").
//
// Usage: ablation_objective [episodes]   (default 120 per search)
#include "bench_common.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 120);
  bench::print_header("Ablation — search objective (VGG16, " +
                      std::to_string(episodes) + " episodes each)");
  const auto net = nn::vgg16();

  report::Table table({"Objective", "Utilization %", "Energy (nJ)",
                       "Area (um^2)", "Latency (ns)", "RUE"});
  for (const auto& [objective, name] :
       {std::pair{core::RewardObjective::kUtilizationPerEnergy,
                  "u/e (paper Eq. 2)"},
        std::pair{core::RewardObjective::kAreaAware, "u/(e*area)"},
        std::pair{core::RewardObjective::kLatencyAware, "u/(e*latency)"}}) {
    core::EnvConfig cfg;
    cfg.candidates = mapping::hybrid_candidates();
    cfg.accel.tile_shared = true;
    cfg.objective = objective;
    const core::CrossbarEnv env(net.mappable_layers(), cfg);
    const auto result = bench::run_search(env, episodes, /*seed=*/9);
    const auto& r = result.best_report;
    table.add_row({name, report::format_fixed(r.utilization * 100.0, 1),
                   report::format_sci(r.energy.total_nj(), 3),
                   report::format_sci(r.area.total_um2(), 3),
                   report::format_sci(r.latency_ns, 3),
                   report::format_sci(r.rue(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape: the area-aware objective trims chip area at a small "
               "RUE cost, the latency-aware one steers toward faster "
               "crossbar picks — the reward is the steering wheel.\n";
  return 0;
}
