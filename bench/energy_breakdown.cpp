// Component-wise energy breakdown across crossbar sizes — the evidence for
// the modeling premise the whole paper rests on (§2.2.3: ADCs dominate,
// so fewer activated ADCs means less energy). Also emits the per-layer CSV
// (report/serialize) for one configuration.
#include <sstream>

#include "bench_common.hpp"
#include "report/serialize.hpp"

using namespace autohet;

int main() {
  bench::print_header("Energy breakdown by component (VGG16)");
  const auto layers = nn::vgg16().mappable_layers();
  const auto config = bench::paper_accel();

  report::Table table({"Crossbar", "ADC %", "DAC %", "Cell %", "Shift-add %",
                       "Buffer %", "Total (nJ)"});
  for (const auto& shape : mapping::square_candidates()) {
    const auto r = reram::evaluate_homogeneous(layers, shape, config);
    const double total = r.energy.total_nj();
    const auto pct = [&](double v) {
      return report::format_fixed(100.0 * v / total, 1);
    };
    table.add_row({shape.name(), pct(r.energy.adc_nj), pct(r.energy.dac_nj),
                   pct(r.energy.cell_nj), pct(r.energy.shift_add_nj),
                   pct(r.energy.buffer_nj), report::format_sci(total, 3)});
  }
  table.print(std::cout);

  // Machine-readable per-layer dump for the paper's default heterogeneous
  // pick (576x512 everywhere, tile-shared).
  reram::AcceleratorConfig shared = config;
  shared.tile_shared = true;
  const auto hetero = reram::evaluate_homogeneous(layers, {576, 512}, shared);
  std::cout << "\nPer-layer CSV (576x512, tile-shared):\n";
  report::write_network_report_csv(std::cout, hetero);
  return 0;
}
