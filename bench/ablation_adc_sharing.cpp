// Ablation: ADC column sharing (MNSIM's mux knob). One ADC per bitline —
// the paper's Fig. 5 accounting — maximizes parallelism but dominates area;
// sharing an ADC across N bitlines divides the ADC area by N while
// serializing conversions, stretching latency. Dynamic energy is unchanged
// (every used bitline still converts once per cycle).
#include "bench_common.hpp"
#include "reram/hardware_model.hpp"

using namespace autohet;

int main() {
  bench::print_header("Ablation — ADC column sharing (VGG16, 512x512)");
  const auto layers = nn::vgg16().mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {512, 512});

  report::Table table({"Bitlines/ADC", "Area (um^2)", "ADC area share %",
                       "Latency (ns)", "Energy (nJ)"});
  for (int share : {1, 2, 4, 8, 16}) {
    auto config = bench::paper_accel();
    config.device.adc_share = share;
    const auto r = reram::evaluate_network(layers, shapes, config);
    table.add_row({std::to_string(share),
                   report::format_sci(r.area.total_um2(), 3),
                   report::format_fixed(
                       100.0 * r.area.adc_um2 / r.area.total_um2(), 1),
                   report::format_sci(r.latency_ns, 3),
                   report::format_sci(r.energy.total_nj(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape: area falls steeply until the ADC stops dominating, "
               "latency grows linearly in the sharing factor, energy is "
               "invariant — the classic ISAAC/MNSIM area-latency trade.\n";
  return 0;
}
