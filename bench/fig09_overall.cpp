// Reproduces Fig. 9(a-c): overall RUE, crossbar utilization and normalized
// energy of the five homogeneous accelerators and AutoHet, for AlexNet,
// VGG16 and ResNet152.
//
// Usage: fig09_overall [episodes]   (default 200; ResNet152 uses half)
#include "bench_common.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 200);
  bench::print_header("Fig. 9 — overall performance (5 homogeneous + AutoHet)");

  for (const auto& net : nn::paper_workloads()) {
    // ResNet152 episodes are heavier (156 layers); trim to keep the harness
    // runtime reasonable — convergence is driven by per-layer transitions,
    // of which ResNet episodes generate 10x more.
    const int eps = net.name == "ResNet152" ? std::max(20, episodes / 2)
                                            : episodes;
    const auto homo_env = bench::make_env(net, mapping::square_candidates(),
                                          /*tile_shared=*/false);
    const auto auto_env = bench::make_env(net, mapping::hybrid_candidates(),
                                          /*tile_shared=*/true);
    const auto sweep = core::homogeneous_sweep(homo_env);
    const auto result = bench::run_search(auto_env, eps);

    // Fig. 9(c) normalizes the lowest homogeneous energy to one.
    double min_energy = result.best_report.energy.total_nj();
    for (const auto& s : sweep) {
      min_energy = std::min(min_energy, s.report.energy.total_nj());
    }

    std::cout << "\n-- " << net.name << " (" << net.mappable_layers().size()
              << " layers, " << eps << " search episodes) --\n";
    report::Table table(
        {"Config", "RUE", "Utilization %", "Normalized energy"});
    double best_homo_rue = 0.0;
    for (const auto& s : sweep) {
      best_homo_rue = std::max(best_homo_rue, s.report.rue());
      table.add_row({s.name, report::format_sci(s.report.rue(), 3),
                     report::format_fixed(s.report.utilization * 100.0, 1),
                     report::format_fixed(
                         s.report.energy.total_nj() / min_energy, 2)});
    }
    const auto& best = result.best_report;
    table.add_row({"AUTOHET", report::format_sci(best.rue(), 3),
                   report::format_fixed(best.utilization * 100.0, 1),
                   report::format_fixed(best.energy.total_nj() / min_energy,
                                        2)});
    table.print(std::cout);
    std::cout << "AutoHet RUE vs best homogeneous: "
              << report::format_fixed(best.rue() / best_homo_rue, 2)
              << "x (paper: 1.3x AlexNet / 2.2x VGG16 / 1.4x ResNet152)\n";
    const auto cache = auto_env.engine().cache_stats();
    std::cout << "Eval-engine cache: "
              << report::format_fixed(100.0 * cache.hit_rate(), 1) << "% hits ("
              << cache.hits << "/" << cache.hits + cache.misses
              << " evaluations)\n";
  }
  return 0;
}
