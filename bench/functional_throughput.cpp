// Functional-simulation throughput: packed vs scalar MVM kernels across
// every dispatchable ISA variant, fast vs scalar forward plumbing (plus the
// intra-forward row-block split), and Monte-Carlo robustness wall time —
// the perf trajectory of the fast functional engine (DESIGN.md §7).
//
// Levels timed, each against its retained scalar baseline (the pre-packing
// datapaths, kept precisely so this comparison stays honest):
//   * raw crossbar kernels (bit-serial / multilevel / reference MVMs/s),
//     with the bit-serial kernel additionally timed under every supported
//     dispatch variant (portable/avx2/avx512) — the `dispatch` JSON section
//     records the selected path and each variant's rate;
//   * whole-network forwards (images/s, integer and bit-serial datapaths),
//     plus the same forward split across row blocks / position tiles on a
//     worker pool (bit-identical outputs, asserted);
//   * the full fault_sweep Monte-Carlo workload — fault_sweep's three
//     configurations over its 15-point grid (3 cell-bits × 5 stuck rates,
//     σ=0.01, 5 trials × 12 samples), measured end-to-end through
//     EvaluationEngine::evaluate_robustness. Every (variant, thread-count)
//     combination's reports are byte-compared against the scalar serial
//     reference (asserted here and in CI), and per config the parallel
//     path must not lose to the serial one (`parallel_vs_serial`; on a
//     single-hardware-thread host the parallel path runs the identical
//     serial code, so the serial timing is reused and flagged).
//
// Emits BENCH_functional_throughput.json with every rate and ratio; the
// headline `mc_speedup` field (aggregate scalar wall / aggregate fast wall
// over the whole workload) gates the acceptance criterion.
//
// Usage: functional_throughput [mc_reps] [episodes]
//   mc_reps  — repetitions of each Monte-Carlo timing (best-of; default 1)
//   episodes — search budget for the AutoHet configuration (default 60,
//              matching fault_sweep)
#include <chrono>
#include <fstream>
#include <thread>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "reram/eval_engine.hpp"
#include "reram/functional.hpp"
#include "tensor/ops.hpp"

using namespace autohet;

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Times fn() repeatedly until ~min_ms of wall time accumulates; returns
/// calls per second.
template <typename Fn>
double calls_per_second(Fn&& fn, double min_ms = 200.0) {
  // Warm up once (packs lazy structures, faults the caches).
  fn();
  std::int64_t calls = 0;
  const auto t0 = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++calls;
    elapsed = ms_since(t0);
  } while (elapsed < min_ms);
  return static_cast<double>(calls) * 1000.0 / elapsed;
}

// fault_sweep's fault grid, replicated exactly (bench/fault_sweep.cpp).
constexpr double kStuckRates[] = {0.0, 1e-4, 1e-3, 5e-3, 1e-2};
constexpr int kCellBits[] = {1, 2, 4};
constexpr double kProgramSigma = 0.01;
constexpr int kMcTrials = 5;
constexpr int kMcSamples = 12;

reram::FaultConfig point_config(double stuck_rate, int cell_bits) {
  reram::FaultConfig faults;
  faults.stuck_at_zero_rate = stuck_rate / 2.0;
  faults.stuck_at_one_rate = stuck_rate / 2.0;
  faults.program_sigma = kProgramSigma;
  faults.cell_bits = cell_bits;
  return faults;
}

bool reports_equal(const reram::RobustnessReport& a,
                   const reram::RobustnessReport& b) {
  return a.trials == b.trials && a.samples == b.samples &&
         a.mean_accuracy == b.mean_accuracy &&
         a.stddev_accuracy == b.stddev_accuracy &&
         a.min_accuracy == b.min_accuracy &&
         a.max_accuracy == b.max_accuracy &&
         a.mean_logit_error == b.mean_logit_error &&
         a.layer_error == b.layer_error &&
         a.fault_stats.physical_cells == b.fault_stats.physical_cells &&
         a.fault_stats.stuck_at_zero == b.fault_stats.stuck_at_zero &&
         a.fault_stats.stuck_at_one == b.fault_stats.stuck_at_one &&
         a.fault_stats.weights_changed == b.fault_stats.weights_changed;
}

struct McTiming {
  std::string config;
  double scalar_serial_ms = 0.0;
  double fast_serial_ms = 0.0;
  double fast_parallel_ms = 0.0;
  bool parallel_reused_serial = false;
  bool identical = false;
};

/// One (variant, threads) byte-identity verdict against the scalar serial
/// reference, over all three configurations' full grids.
struct VariantCheck {
  std::string variant;
  int threads = 0;  // 1 = serial, 0 = one per hardware thread
  bool identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const int mc_reps = bench::episodes_from_args(argc, argv, 1);
  const int hw_threads =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  bench::print_header(
      "Functional-simulation throughput (dispatched kernels, parallel MC)");

  namespace rk = reram::kernels;
  const rk::Variant selected = rk::active_variant();
  const std::vector<rk::Variant> variants = rk::supported_variants();

  const nn::NetworkSpec net = nn::lenet5();
  common::Rng weight_rng(21);
  const nn::Model model(net, weight_rng);

  // --- Raw kernel rates on one 288x256 crossbar -------------------------
  const mapping::CrossbarShape kshape{288, 256};
  common::Rng cell_rng(7);
  std::vector<std::int8_t> weights(static_cast<std::size_t>(kshape.cells()));
  for (auto& w : weights) {
    w = static_cast<std::int8_t>(cell_rng.uniform_int(-128, 127));
  }
  reram::LogicalCrossbar xb(kshape);
  xb.program(weights, kshape.rows, kshape.cols);  // packs eagerly
  std::vector<std::uint8_t> input(static_cast<std::size_t>(kshape.rows));
  for (auto& v : input) {
    v = static_cast<std::uint8_t>(cell_rng.uniform_int(0, 255));
  }
  volatile std::int32_t sink = 0;
  const auto time_kernel = [&](auto&& fn) {
    return calls_per_second([&] { sink = sink + fn().back(); });
  };

  // Dispatch sweep: the bit-serial packed MVM under every supported
  // variant. The packed result is checked against the scalar oracle per
  // variant — a variant that vectorizes wrongly must fail here, not in CI.
  struct VariantRate {
    std::string name;
    double bit_serial_per_s = 0.0;
    double multilevel_per_s = 0.0;
  };
  std::vector<VariantRate> variant_rates;
  const std::vector<std::int32_t> bit_serial_oracle =
      xb.mvm_bit_serial_scalar(input);
  const std::vector<std::int32_t> multilevel_oracle =
      xb.mvm_multilevel_scalar(input, 2);
  for (const rk::Variant v : variants) {
    rk::set_variant(v);
    AUTOHET_CHECK(xb.mvm_bit_serial(input) == bit_serial_oracle,
                  std::string("bit-serial mismatch under variant ") +
                      rk::variant_name(v));
    AUTOHET_CHECK(xb.mvm_multilevel(input, 2) == multilevel_oracle,
                  std::string("multilevel mismatch under variant ") +
                      rk::variant_name(v));
    VariantRate rate;
    rate.name = rk::variant_name(v);
    rate.bit_serial_per_s =
        time_kernel([&] { return xb.mvm_bit_serial(input); });
    rate.multilevel_per_s =
        time_kernel([&] { return xb.mvm_multilevel(input, 2); });
    variant_rates.push_back(rate);
  }
  rk::set_variant(selected);
  double best_vs_portable = 1.0;
  for (const auto& r : variant_rates) {
    best_vs_portable = std::max(
        best_vs_portable,
        r.bit_serial_per_s / variant_rates.front().bit_serial_per_s);
  }

  struct KernelRow {
    std::string name;
    double packed_per_s, scalar_per_s;
  };
  std::vector<KernelRow> kernels;
  kernels.push_back({"bit_serial",
                     time_kernel([&] { return xb.mvm_bit_serial(input); }),
                     time_kernel([&] {
                       return xb.mvm_bit_serial_scalar(input);
                     })});
  kernels.push_back({"multilevel",
                     time_kernel([&] { return xb.mvm_multilevel(input, 2); }),
                     time_kernel([&] {
                       return xb.mvm_multilevel_scalar(input, 2);
                     })});
  kernels.push_back({"reference",
                     time_kernel([&] { return xb.mvm_reference(input); }),
                     time_kernel([&] {
                       return xb.mvm_reference_scalar(input);
                     })});

  // --- Whole-network forward rates --------------------------------------
  const auto mappable = net.mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(mappable.size(),
                                                   {72, 64});
  common::Rng img_rng(4);
  const nn::LayerSpec& first = net.layers.front();
  const tensor::Tensor image = nn::synthetic_image(
      img_rng, first.in_channels, first.in_height, first.in_width);
  volatile float fsink = 0.0f;
  struct ForwardRow {
    std::string name;
    double fast_per_s, scalar_per_s;
  };
  std::vector<ForwardRow> forwards;
  double fwd_serial_per_s = 0.0;
  double fwd_pool_per_s = 0.0;
  {
    const reram::SimulatedModel fast_int(model, shapes,
                                         reram::DatapathMode::kInteger);
    const reram::SimulatedModel scalar_int(
        model, shapes, reram::DatapathMode::kInteger, {},
        reram::KernelPolicy::kScalarReference);
    forwards.push_back(
        {"integer",
         calls_per_second([&] { fsink = fsink + fast_int.forward(image)[0]; }),
         calls_per_second(
             [&] { fsink = fsink + scalar_int.forward(image)[0]; })});
    const reram::SimulatedModel fast_bits(model, shapes,
                                          reram::DatapathMode::kBitSerial);
    const reram::SimulatedModel scalar_bits(
        model, shapes, reram::DatapathMode::kBitSerial, {},
        reram::KernelPolicy::kScalarReference);
    forwards.push_back(
        {"bit_serial",
         calls_per_second([&] { fsink = fsink + fast_bits.forward(image)[0]; }),
         calls_per_second(
             [&] { fsink = fsink + scalar_bits.forward(image)[0]; }, 400.0)});

    // Intra-forward row-block / position-tile split: one sample spread over
    // the whole pool. Integer partials reassociate exactly, so the pooled
    // forward must be bit-identical to the serial one.
    common::ThreadPool fwd_pool(static_cast<std::size_t>(hw_threads));
    const tensor::Tensor serial_out = fast_int.forward(image);
    const tensor::Tensor pooled_out = fast_int.forward(image, 0, &fwd_pool);
    AUTOHET_CHECK(tensor::max_abs_diff(serial_out, pooled_out) == 0.0f,
                  "pooled forward diverged from the serial forward");
    fwd_serial_per_s =
        calls_per_second([&] { fsink = fsink + fast_int.forward(image)[0]; });
    fwd_pool_per_s = calls_per_second(
        [&] { fsink = fsink + fast_int.forward(image, 0, &fwd_pool)[0]; });
  }

  // --- Monte-Carlo wall time on the fault_sweep workload ----------------
  // fault_sweep's three configurations over its full 15-point grid,
  // measured end-to-end through EvaluationEngine::evaluate_robustness. A
  // fresh environment (fresh engine, cold TrialFabricCache) per timed
  // measurement: the fast path pays every ideal-reference build and trial
  // recording inside the timer, exactly as one fault_sweep run does.
  int episodes = 60;
  if (argc > 2 && argv[2][0] != '-') episodes = std::atoi(argv[2]);
  const auto env0 = bench::make_env(net, mapping::hybrid_candidates(),
                                    /*tile_shared=*/true);
  struct McConfig {
    std::string name;
    std::vector<std::size_t> actions;
  };
  std::vector<McConfig> mc_configs;
  const auto autohet_result = bench::run_search(env0, episodes, /*seed=*/1);
  mc_configs.push_back({"AutoHet (RL)", autohet_result.best_actions});
  const auto homo = core::best_homogeneous(env0);
  mc_configs.push_back({homo.name, homo.actions});
  const auto& candidates = env0.candidates();
  std::size_t largest = 0;
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    if (candidates[c].cells() > candidates[largest].cells()) largest = c;
  }
  mc_configs.push_back(
      {"Homo(" + candidates[largest].name() + ")",
       std::vector<std::size_t>(env0.num_layers(), largest)});

  using Reports = std::vector<reram::RobustnessReport>;
  const auto grid_wall = [&](const McConfig& cfg,
                             const reram::RobustnessOptions& opts,
                             Reports* out) {
    const auto env = bench::make_env(net, mapping::hybrid_candidates(),
                                     /*tile_shared=*/true);
    Reports reports;
    const auto t0 = Clock::now();
    for (const int cell_bits : kCellBits) {
      for (const double rate : kStuckRates) {
        reports.push_back(env.engine().evaluate_robustness(
            model, cfg.actions, point_config(rate, cell_bits), opts));
      }
    }
    const double wall = ms_since(t0);
    if (out != nullptr) *out = std::move(reports);
    return wall;
  };
  const auto best_grid = [&](const McConfig& cfg,
                             const reram::RobustnessOptions& opts,
                             Reports* out, int reps) {
    double best = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      const double wall = grid_wall(cfg, opts, rep == 0 ? out : nullptr);
      if (rep == 0 || wall < best) best = wall;
    }
    return best;
  };

  reram::RobustnessOptions mc;
  mc.trials = kMcTrials;
  mc.samples = kMcSamples;
  // With a single hardware thread the parallel path runs the identical
  // serial code (the MC gate needs threads > 1 *and* workers to help), so
  // re-timing it would only measure noise — reuse the serial wall time.
  const bool reuse_serial_for_parallel = hw_threads <= 1;

  // Scalar serial reference, once per configuration (the expensive leg).
  std::vector<Reports> ref_reports(mc_configs.size());
  std::vector<double> scalar_ms(mc_configs.size(), 0.0);
  for (std::size_t c = 0; c < mc_configs.size(); ++c) {
    reram::RobustnessOptions scalar_opts = mc;
    scalar_opts.kernels = reram::KernelPolicy::kScalarReference;
    scalar_ms[c] =
        best_grid(mc_configs[c], scalar_opts, &ref_reports[c], mc_reps);
  }

  // Every supported variant, serial and parallel, byte-compared against the
  // scalar reference. The selected variant's timings (with best-of reps and
  // the parallel ≤ serial gate) become the headline rows.
  std::vector<McTiming> mc_rows;
  std::vector<VariantCheck> variant_checks;
  bool mc_identical = true;
  double scalar_total = 0.0, serial_total = 0.0, parallel_total = 0.0;
  for (const rk::Variant v : variants) {
    rk::set_variant(v);
    const bool is_selected = v == selected;
    bool serial_ok = true;
    bool parallel_ok = true;
    for (std::size_t c = 0; c < mc_configs.size(); ++c) {
      const McConfig& cfg = mc_configs[c];
      McTiming row;
      row.config = cfg.name;
      row.scalar_serial_ms = scalar_ms[c];
      Reports fast_reports, par_reports;
      reram::RobustnessOptions serial_opts = mc;
      serial_opts.threads = 1;
      reram::RobustnessOptions parallel_opts = mc;
      parallel_opts.threads = 0;  // one worker per hardware thread
      const int reps = is_selected ? mc_reps : 1;
      row.fast_serial_ms = best_grid(cfg, serial_opts, &fast_reports, reps);
      if (reuse_serial_for_parallel) {
        row.fast_parallel_ms = row.fast_serial_ms;
        row.parallel_reused_serial = true;
        par_reports = fast_reports;
      } else {
        row.fast_parallel_ms =
            best_grid(cfg, parallel_opts, &par_reports, reps);
        // Satellite gate: intra-trial chunking must keep the parallel path
        // at least at parity per configuration. Re-time once before
        // failing — a single scheduling hiccup is not a regression.
        if (is_selected &&
            row.fast_parallel_ms > 1.05 * row.fast_serial_ms) {
          row.fast_serial_ms =
              best_grid(cfg, serial_opts, nullptr, reps);
          row.fast_parallel_ms =
              best_grid(cfg, parallel_opts, nullptr, reps);
          AUTOHET_CHECK(
              row.fast_parallel_ms <= 1.05 * row.fast_serial_ms,
              "parallel MC slower than serial for " + cfg.name);
        }
      }
      row.identical = fast_reports.size() == ref_reports[c].size() &&
                      par_reports.size() == ref_reports[c].size();
      for (std::size_t i = 0; row.identical && i < ref_reports[c].size();
           ++i) {
        row.identical = reports_equal(ref_reports[c][i], fast_reports[i]) &&
                        reports_equal(ref_reports[c][i], par_reports[i]);
      }
      serial_ok = serial_ok && row.identical;
      parallel_ok = parallel_ok && row.identical;
      mc_identical = mc_identical && row.identical;
      if (is_selected) {
        scalar_total += row.scalar_serial_ms;
        serial_total += row.fast_serial_ms;
        parallel_total += row.fast_parallel_ms;
        mc_rows.push_back(row);
      }
    }
    variant_checks.push_back({rk::variant_name(v), 1, serial_ok});
    variant_checks.push_back({rk::variant_name(v), 0, parallel_ok});
  }
  rk::set_variant(selected);
  AUTOHET_CHECK(mc_identical,
                "fast Monte-Carlo reports diverged from the scalar serial "
                "reference");
  // Headline gate: aggregate wall time of the whole workload (all three
  // configurations × 15 grid points), scalar serial vs fast parallel.
  const double mc_speedup = scalar_total / parallel_total;
  const double parallel_ratio = parallel_total / serial_total;

  // --- Report ------------------------------------------------------------
  report::Table dispatch_table({"Variant", "Bit-serial MVM/s",
                                "Multilevel MVM/s", "Selected"});
  for (const auto& r : variant_rates) {
    dispatch_table.add_row({r.name,
                            report::format_fixed(r.bit_serial_per_s, 0),
                            report::format_fixed(r.multilevel_per_s, 0),
                            r.name == rk::variant_name(selected) ? "yes"
                                                                 : ""});
  }
  dispatch_table.print(std::cout);
  std::cout << '\n';

  report::Table table({"Level", "Variant", "Fast", "Scalar", "Speedup"});
  for (const auto& k : kernels) {
    table.add_row({"kernel (MVM/s)", k.name,
                   report::format_fixed(k.packed_per_s, 0),
                   report::format_fixed(k.scalar_per_s, 0),
                   report::format_fixed(k.packed_per_s / k.scalar_per_s, 2)});
  }
  for (const auto& f : forwards) {
    table.add_row({"forward (img/s)", f.name,
                   report::format_fixed(f.fast_per_s, 1),
                   report::format_fixed(f.scalar_per_s, 1),
                   report::format_fixed(f.fast_per_s / f.scalar_per_s, 2)});
  }
  table.add_row({"forward (img/s)", "integer+pool",
                 report::format_fixed(fwd_pool_per_s, 1),
                 report::format_fixed(fwd_serial_per_s, 1),
                 report::format_fixed(fwd_pool_per_s / fwd_serial_per_s, 2)});
  for (const auto& m : mc_rows) {
    table.add_row({"MC grid (ms)", m.config,
                   report::format_fixed(m.fast_parallel_ms, 1),
                   report::format_fixed(m.scalar_serial_ms, 1),
                   report::format_fixed(
                       m.scalar_serial_ms / m.fast_parallel_ms, 2)});
  }
  table.print(std::cout);
  std::cout << "\nKernel dispatch: " << rk::variant_name(selected)
            << " (best vs portable "
            << report::format_fixed(best_vs_portable, 2) << "x)\n"
            << "MC speedup (fault_sweep workload aggregate, fast parallel "
            << "vs scalar serial): " << report::format_fixed(mc_speedup, 2)
            << "x, reports identical: " << (mc_identical ? "yes" : "NO")
            << "\n";

  std::ofstream json("BENCH_functional_throughput.json");
  json << "{\n  \"benchmark\": \"functional_throughput\",\n"
       << "  \"model\": \"lenet5\",\n"
       << "  \"hardware_threads\": " << hw_threads << ",\n"
       << "  \"mc_reps\": " << mc_reps << ",\n  \"dispatch\": {\n"
       << "    \"selected\": \"" << rk::variant_name(selected) << "\",\n"
       << "    \"supported\": [";
  bool first_row = true;
  for (const rk::Variant v : variants) {
    json << (first_row ? "" : ", ") << '"' << rk::variant_name(v) << '"';
    first_row = false;
  }
  json << "],\n    \"variants\": [";
  first_row = true;
  for (const auto& r : variant_rates) {
    json << (first_row ? "\n" : ",\n") << "      {\"name\": \"" << r.name
         << "\", \"bit_serial_mvms_per_s\": " << r.bit_serial_per_s
         << ", \"multilevel_mvms_per_s\": " << r.multilevel_per_s
         << ", \"vs_portable\": "
         << r.bit_serial_per_s / variant_rates.front().bit_serial_per_s
         << "}";
    first_row = false;
  }
  json << "\n    ],\n    \"best_vs_portable\": " << best_vs_portable
       << "\n  },\n  \"kernels\": [";
  first_row = true;
  for (const auto& k : kernels) {
    json << (first_row ? "\n" : ",\n") << "    {\"name\": \"" << k.name
         << "\", \"shape\": \"288x256\", \"packed_mvms_per_s\": "
         << k.packed_per_s << ", \"scalar_mvms_per_s\": " << k.scalar_per_s
         << ", \"speedup\": " << k.packed_per_s / k.scalar_per_s << "}";
    first_row = false;
  }
  json << "\n  ],\n  \"forward\": [";
  first_row = true;
  for (const auto& f : forwards) {
    json << (first_row ? "\n" : ",\n") << "    {\"datapath\": \"" << f.name
         << "\", \"fast_images_per_s\": " << f.fast_per_s
         << ", \"scalar_images_per_s\": " << f.scalar_per_s
         << ", \"speedup\": " << f.fast_per_s / f.scalar_per_s << "}";
    first_row = false;
  }
  json << "\n  ],\n  \"row_block_split\": {\n"
       << "    \"pool_threads\": " << hw_threads << ",\n"
       << "    \"serial_images_per_s\": " << fwd_serial_per_s << ",\n"
       << "    \"pool_images_per_s\": " << fwd_pool_per_s << ",\n"
       << "    \"identical\": true\n  },\n  \"monte_carlo\": {\n"
       << "    \"workload\": \"fault_sweep\",\n"
       << "    \"episodes\": " << episodes << ",\n"
       << "    \"cell_bits\": [1, 2, 4],\n"
       << "    \"stuck_rates\": [0.0, 0.0001, 0.001, 0.005, 0.01],\n"
       << "    \"program_sigma\": " << kProgramSigma << ",\n"
       << "    \"trials\": " << mc.trials << ",\n"
       << "    \"samples\": " << mc.samples << ",\n"
       << "    \"configs\": [";
  first_row = true;
  for (const auto& m : mc_rows) {
    json << (first_row ? "\n" : ",\n") << "      {\"config\": \"" << m.config
         << "\", \"scalar_serial_ms\": " << m.scalar_serial_ms
         << ", \"fast_serial_ms\": " << m.fast_serial_ms
         << ", \"fast_parallel_ms\": " << m.fast_parallel_ms
         << ", \"speedup\": " << m.scalar_serial_ms / m.fast_parallel_ms
         << ", \"parallel_vs_serial\": "
         << m.fast_parallel_ms / m.fast_serial_ms
         << ", \"parallel_reused_serial\": "
         << (m.parallel_reused_serial ? "true" : "false")
         << ", \"reports_identical\": " << (m.identical ? "true" : "false")
         << "}";
    first_row = false;
  }
  json << "\n    ],\n    \"variant_checks\": [";
  first_row = true;
  for (const auto& vc : variant_checks) {
    json << (first_row ? "\n" : ",\n") << "      {\"variant\": \""
         << vc.variant << "\", \"threads\": " << vc.threads
         << ", \"reports_identical\": " << (vc.identical ? "true" : "false")
         << "}";
    first_row = false;
  }
  json << "\n    ]\n  },\n  \"mc_speedup\": " << mc_speedup
       << ",\n  \"parallel_vs_serial\": " << parallel_ratio
       << ",\n  \"mc_reports_identical\": " << (mc_identical ? "true" : "false")
       << "\n}\n";
  std::cout << "Wrote BENCH_functional_throughput.json\n";
  return 0;
}
