// Robustness sweep: accuracy under ReRAM non-idealities as a function of
// stuck-at fault rate and bits-per-cell, for the AutoHet-searched
// heterogeneous configuration vs homogeneous baselines.
//
// The paper evaluates an ideal device; this bench quantifies how each
// configuration's accuracy (argmax agreement with the ideal fabric, LeNet-5
// on synthetic inputs) degrades as the fabric becomes faulty. Every point
// is a seeded Monte-Carlo run (reram/faults.hpp) — same binary, same
// output, every time. Multi-bit cells pack more levels into the same
// conductance window, so the same physical defect rate costs more accuracy
// at 4 bits/cell than at 1 bit/cell (the A(b) amplification; DESIGN.md §6).
//
// Emits BENCH_fault_sweep.json: one series per configuration with its
// chosen per-layer tile shapes (identical series are explainable from the
// JSON alone), one point per (stuck-at rate, cell_bits) with accuracy
// mean/stddev/min and its 95% Wilson CI, the analytic vulnerability (the
// search-reward proxy), the burned-in fault counts, and the Monte-Carlo
// trials run/saved under the active budget.
//
// Usage: fault_sweep [episodes] [mc_threads] [budget]
//   episodes   — search budget (default 60)
//   mc_threads — Monte-Carlo trial parallelism: 1 = serial, 0 = one per
//                hardware thread (default). The emitted JSON is
//                byte-identical at every thread count (CI diffs it).
//   budget     — "fixed" (default: every point runs kTrials trials; the
//                historical byte-identical output) or "adaptive"
//                (sequential early stopping per DESIGN.md §10; decisive
//                points stop at the min-trial clamp, uncertain points run
//                up to the cap; writes BENCH_fault_sweep_adaptive.json).
#include <cstring>
#include <fstream>

#include "bench_common.hpp"
#include "reram/eval_engine.hpp"

using namespace autohet;

namespace {

constexpr double kStuckRates[] = {0.0, 1e-4, 1e-3, 5e-3, 1e-2};
constexpr int kCellBits[] = {1, 2, 4};
/// Programming variation present at every point (including rate 0) so the
/// bits-per-cell axis is visible independently of the stuck-at axis.
constexpr double kProgramSigma = 0.01;
constexpr int kTrials = 5;
constexpr int kSamples = 12;
/// Adaptive budget: a larger requested cap than the fixed product, paid
/// only where the accuracy CI stays wide — the grid's decisive points
/// (rate 0, low rates) stop at the min-trial clamp.
constexpr int kAdaptiveMaxTrials = 15;
constexpr int kAdaptiveMinTrials = 2;
constexpr double kAdaptiveCi = 0.1;

reram::FaultConfig point_config(double stuck_rate, int cell_bits) {
  reram::FaultConfig faults;
  faults.stuck_at_zero_rate = stuck_rate / 2.0;
  faults.stuck_at_one_rate = stuck_rate / 2.0;
  faults.program_sigma = kProgramSigma;
  faults.cell_bits = cell_bits;
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 60);
  int mc_threads = 0;  // one worker per hardware thread
  if (argc > 2 && argv[2][0] != '-') mc_threads = std::atoi(argv[2]);
  bool adaptive = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "adaptive") == 0) adaptive = true;
  }
  bench::print_header("Fault sweep — accuracy vs stuck-at rate × cell bits "
                      "(LeNet-5, " + std::to_string(episodes) +
                      " search rounds, " +
                      (adaptive ? "adaptive" : "fixed") + " MC budget)");

  const nn::NetworkSpec net = nn::lenet5();
  common::Rng weight_rng(21);
  const nn::Model model(net, weight_rng);
  const auto env = bench::make_env(net, mapping::hybrid_candidates(),
                                   /*tile_shared=*/true);

  struct Config {
    std::string name;
    std::vector<std::size_t> actions;
  };
  std::vector<Config> configs;
  const auto autohet_result = bench::run_search(env, episodes, /*seed=*/1);
  configs.push_back({"AutoHet (RL)", autohet_result.best_actions});
  const auto homo = core::best_homogeneous(env);
  configs.push_back({homo.name, homo.actions});
  // Largest candidate homogeneously: the conservative "big crossbars"
  // deployment (fewest row blocks → analytically the most robust).
  const auto& candidates = env.candidates();
  std::size_t largest = 0;
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    if (candidates[c].cells() > candidates[largest].cells()) largest = c;
  }
  configs.push_back(
      {"Homo(" + candidates[largest].name() + ")",
       std::vector<std::size_t>(env.num_layers(), largest)});

  reram::RobustnessOptions mc;
  mc.trials = kTrials;
  mc.samples = kSamples;
  mc.threads = mc_threads;
  if (adaptive) {
    mc.budget.mode = reram::RobustnessBudget::Mode::kAdaptive;
    mc.budget.ci_halfwidth = kAdaptiveCi;
    mc.budget.min_trials = kAdaptiveMinTrials;
    mc.budget.max_trials = kAdaptiveMaxTrials;
    mc.budget.chunk_trials = 1;
  }

  std::int64_t trials_requested_total = 0;
  std::int64_t trials_run_total = 0;

  report::Table table({"Configuration", "Stuck rate", "Cell bits",
                       "Accuracy mean±σ", "Min", "Trials", "Analytic vuln"});
  const std::string out_name = adaptive ? "BENCH_fault_sweep_adaptive.json"
                                        : "BENCH_fault_sweep.json";
  std::ofstream json(out_name);
  json << "{\n  \"benchmark\": \"fault_sweep\",\n  \"model\": \"lenet5\",\n"
       << "  \"episodes\": " << episodes << ",\n"
       << "  \"trials\": " << kTrials << ",\n"
       << "  \"samples\": " << kSamples << ",\n"
       << "  \"program_sigma\": " << kProgramSigma << ",\n"
       << "  \"budget\": {\"mode\": \""
       << (adaptive ? "adaptive" : "fixed") << "\"";
  if (adaptive) {
    json << ", \"ci_halfwidth\": " << kAdaptiveCi
         << ", \"min_trials\": " << kAdaptiveMinTrials
         << ", \"max_trials\": " << kAdaptiveMaxTrials;
  }
  json << "},\n  \"series\": [";
  bool first_series = true;
  for (const auto& config : configs) {
    std::vector<mapping::CrossbarShape> shapes;
    for (std::size_t a : config.actions) shapes.push_back(candidates[a]);
    json << (first_series ? "\n" : ",\n")
         << "    {\"name\": \"" << config.name << "\", \"tile_shapes\": [";
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      json << (i == 0 ? "" : ", ") << '"' << shapes[i].name() << '"';
    }
    json << "], \"points\": [";
    first_series = false;
    bool first_point = true;
    for (const int cell_bits : kCellBits) {
      for (const double rate : kStuckRates) {
        const reram::FaultConfig faults = point_config(rate, cell_bits);
        const auto report = env.engine().evaluate_robustness(
            model, config.actions, faults, mc);
        trials_requested_total += report.trials_requested;
        trials_run_total += report.trials;
        const double vuln = reram::analytic_network_vulnerability(
            env.layers(), shapes, faults);
        table.add_row(
            {config.name, report::format_sci(rate, 1),
             std::to_string(cell_bits),
             report::format_fixed(report.mean_accuracy, 3) + " ± " +
                 report::format_fixed(report.stddev_accuracy, 3),
             report::format_fixed(report.min_accuracy, 3),
             std::to_string(report.trials) + "/" +
                 std::to_string(report.trials_requested),
             report::format_fixed(vuln, 4)});
        json << (first_point ? "\n" : ",\n")
             << "      {\"stuck_rate\": " << rate
             << ", \"cell_bits\": " << cell_bits
             << ", \"accuracy_mean\": " << report.mean_accuracy
             << ", \"accuracy_stddev\": " << report.stddev_accuracy
             << ", \"accuracy_min\": " << report.min_accuracy
             << ", \"accuracy_ci_lower\": " << report.accuracy_ci_lower
             << ", \"accuracy_ci_upper\": " << report.accuracy_ci_upper
             << ", \"mean_logit_error\": " << report.mean_logit_error
             << ", \"analytic_vulnerability\": " << vuln
             << ", \"stuck_cells\": "
             << report.fault_stats.stuck_at_zero +
                    report.fault_stats.stuck_at_one
             << ", \"weights_changed\": "
             << report.fault_stats.weights_changed
             << ", \"mc_trials_run\": " << report.trials
             << ", \"mc_trials_saved\": "
             << report.trials_requested - report.trials << "}";
        first_point = false;
      }
    }
    json << "\n    ]}";
  }
  const double savings_ratio =
      trials_run_total > 0
          ? static_cast<double>(trials_requested_total) /
                static_cast<double>(trials_run_total)
          : 1.0;
  json << "\n  ],\n"
       << "  \"mc_trials_requested_total\": " << trials_requested_total
       << ",\n  \"mc_trials_run_total\": " << trials_run_total
       << ",\n  \"mc_savings_ratio\": " << savings_ratio << "\n}\n";
  table.print(std::cout);
  std::cout << "\nMC trials: " << trials_run_total << " run / "
            << trials_requested_total << " requested (savings "
            << report::format_fixed(savings_ratio, 2) << "x)\n"
            << "Wrote " << out_name << "\n";
  return 0;
}
