// Robustness sweep: accuracy under ReRAM non-idealities as a function of
// stuck-at fault rate and bits-per-cell, for the AutoHet-searched
// heterogeneous configuration vs homogeneous baselines.
//
// The paper evaluates an ideal device; this bench quantifies how each
// configuration's accuracy (argmax agreement with the ideal fabric, LeNet-5
// on synthetic inputs) degrades as the fabric becomes faulty. Every point
// is a seeded Monte-Carlo run (reram/faults.hpp) — same binary, same
// output, every time. Multi-bit cells pack more levels into the same
// conductance window, so the same physical defect rate costs more accuracy
// at 4 bits/cell than at 1 bit/cell (the A(b) amplification; DESIGN.md §6).
//
// Emits BENCH_fault_sweep.json: one series per configuration, one point per
// (stuck-at rate, cell_bits) with accuracy mean/stddev/min, the analytic
// vulnerability (the search-reward proxy), and the burned-in fault counts.
//
// Usage: fault_sweep [episodes] [mc_threads]
//   episodes   — search budget (default 60)
//   mc_threads — Monte-Carlo trial parallelism: 1 = serial, 0 = one per
//                hardware thread (default). The emitted JSON is
//                byte-identical at every thread count (CI diffs it).
#include <fstream>

#include "bench_common.hpp"
#include "reram/eval_engine.hpp"

using namespace autohet;

namespace {

constexpr double kStuckRates[] = {0.0, 1e-4, 1e-3, 5e-3, 1e-2};
constexpr int kCellBits[] = {1, 2, 4};
/// Programming variation present at every point (including rate 0) so the
/// bits-per-cell axis is visible independently of the stuck-at axis.
constexpr double kProgramSigma = 0.01;
constexpr int kTrials = 5;
constexpr int kSamples = 12;

reram::FaultConfig point_config(double stuck_rate, int cell_bits) {
  reram::FaultConfig faults;
  faults.stuck_at_zero_rate = stuck_rate / 2.0;
  faults.stuck_at_one_rate = stuck_rate / 2.0;
  faults.program_sigma = kProgramSigma;
  faults.cell_bits = cell_bits;
  return faults;
}

}  // namespace

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 60);
  int mc_threads = 0;  // one worker per hardware thread
  if (argc > 2 && argv[2][0] != '-') mc_threads = std::atoi(argv[2]);
  bench::print_header("Fault sweep — accuracy vs stuck-at rate × cell bits "
                      "(LeNet-5, " + std::to_string(episodes) +
                      " search rounds)");

  const nn::NetworkSpec net = nn::lenet5();
  common::Rng weight_rng(21);
  const nn::Model model(net, weight_rng);
  const auto env = bench::make_env(net, mapping::hybrid_candidates(),
                                   /*tile_shared=*/true);

  struct Config {
    std::string name;
    std::vector<std::size_t> actions;
  };
  std::vector<Config> configs;
  const auto autohet_result = bench::run_search(env, episodes, /*seed=*/1);
  configs.push_back({"AutoHet (RL)", autohet_result.best_actions});
  const auto homo = core::best_homogeneous(env);
  configs.push_back({homo.name, homo.actions});
  // Largest candidate homogeneously: the conservative "big crossbars"
  // deployment (fewest row blocks → analytically the most robust).
  const auto& candidates = env.candidates();
  std::size_t largest = 0;
  for (std::size_t c = 1; c < candidates.size(); ++c) {
    if (candidates[c].cells() > candidates[largest].cells()) largest = c;
  }
  configs.push_back(
      {"Homo(" + candidates[largest].name() + ")",
       std::vector<std::size_t>(env.num_layers(), largest)});

  reram::RobustnessOptions mc;
  mc.trials = kTrials;
  mc.samples = kSamples;
  mc.threads = mc_threads;

  report::Table table({"Configuration", "Stuck rate", "Cell bits",
                       "Accuracy mean±σ", "Min", "Analytic vuln"});
  std::ofstream json("BENCH_fault_sweep.json");
  json << "{\n  \"benchmark\": \"fault_sweep\",\n  \"model\": \"lenet5\",\n"
       << "  \"episodes\": " << episodes << ",\n"
       << "  \"trials\": " << kTrials << ",\n"
       << "  \"samples\": " << kSamples << ",\n"
       << "  \"program_sigma\": " << kProgramSigma << ",\n"
       << "  \"series\": [";
  bool first_series = true;
  for (const auto& config : configs) {
    std::vector<mapping::CrossbarShape> shapes;
    for (std::size_t a : config.actions) shapes.push_back(candidates[a]);
    json << (first_series ? "\n" : ",\n")
         << "    {\"name\": \"" << config.name << "\", \"points\": [";
    first_series = false;
    bool first_point = true;
    for (const int cell_bits : kCellBits) {
      for (const double rate : kStuckRates) {
        const reram::FaultConfig faults = point_config(rate, cell_bits);
        const auto report = env.engine().evaluate_robustness(
            model, config.actions, faults, mc);
        const double vuln = reram::analytic_network_vulnerability(
            env.layers(), shapes, faults);
        table.add_row(
            {config.name, report::format_sci(rate, 1),
             std::to_string(cell_bits),
             report::format_fixed(report.mean_accuracy, 3) + " ± " +
                 report::format_fixed(report.stddev_accuracy, 3),
             report::format_fixed(report.min_accuracy, 3),
             report::format_fixed(vuln, 4)});
        json << (first_point ? "\n" : ",\n")
             << "      {\"stuck_rate\": " << rate
             << ", \"cell_bits\": " << cell_bits
             << ", \"accuracy_mean\": " << report.mean_accuracy
             << ", \"accuracy_stddev\": " << report.stddev_accuracy
             << ", \"accuracy_min\": " << report.min_accuracy
             << ", \"mean_logit_error\": " << report.mean_logit_error
             << ", \"analytic_vulnerability\": " << vuln
             << ", \"stuck_cells\": "
             << report.fault_stats.stuck_at_zero +
                    report.fault_stats.stuck_at_one
             << ", \"weights_changed\": "
             << report.fault_stats.weights_changed << "}";
        first_point = false;
      }
    }
    json << "\n    ]}";
  }
  json << "\n  ]\n}\n";
  table.print(std::cout);
  std::cout << "\nWrote BENCH_fault_sweep.json\n";
  return 0;
}
