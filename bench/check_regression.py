#!/usr/bin/env python3
"""Bench regression gate: compare current BENCH_*.json against a committed
baseline and exit nonzero when a key metric regresses.

Usage:
    python3 bench/check_regression.py \
        --current-dir build/bench \
        --baseline-dir bench/BENCH_baseline \
        --out regression_diff.json \
        [--tolerance 0.05] [--timing-slack 3.0]

The manifest below names the metrics that gate the build. Three comparison
modes:

  exact  deterministic values (accuracies, bit-identity flags): the current
         value must match the baseline within a tiny epsilon. These do not
         depend on the host, only on the code, so any drift is a real change.
  min    throughput-style values: current must be >= baseline * (1 - slack).
         Host-dependent, so the slack is generous (--timing-slack scales it);
         the gate catches order-of-magnitude algorithmic regressions, not CI
         machine jitter.
  max    latency-style values: current must be <= baseline * (1 + slack).

Machine-dependent discovery fields (dispatch.supported, dispatch.variants,
absolute wall-clock seconds) are deliberately absent from the manifest.

A missing current file fails the gate (the bench did not run); a missing
baseline file is reported and skipped so new benches can land before their
baseline does. The full per-metric comparison is written to --out for CI to
upload as an artifact.
"""

import argparse
import json
import math
import os
import re
import sys

# mode: "exact" (eps), "min"/"max" (relative slack, scaled by --timing-slack
# when host_dependent), "bool" (must equal baseline exactly).
# path syntax: dot-separated keys; [i] indexes a list; [key=value] selects
# the first list element whose `key` field equals `value`.
MANIFEST = [
    # -- search_time: algorithmic health of the RL search ------------------
    ("BENCH_search_time.json", "after.best_reward", "min", 0.02, False),
    ("BENCH_search_time.json", "after.cache_hit_rate", "min", 0.05, False),
    ("BENCH_search_time.json", "after.serial_evals_per_second",
     "min", 0.50, True),
    ("BENCH_search_time.json", "after.total_seconds", "max", 1.00, True),
    # Robustness-aware search overhead: the measured-MC reward run must stay
    # close to the plain-reward anchor. The gated value is a same-host ratio,
    # so it needs far less slack than absolute wall clock — the tolerance is
    # sized to keep the ceiling near the 2x acceptance bound even with CI
    # timing slack applied.
    ("BENCH_search_time.json", "robust_search.mc_over_plain",
     "max", 0.10, True),
    ("BENCH_search_time.json", "robust_search.mc_memo_hit_rate",
     "min", 0.30, False),
    # -- functional_throughput: kernel + datapath health -------------------
    ("BENCH_functional_throughput.json",
     "kernels.[name=bit_serial].speedup", "min", 0.50, True),
    ("BENCH_functional_throughput.json",
     "kernels.[name=multilevel].speedup", "min", 0.50, True),
    ("BENCH_functional_throughput.json",
     "forward.[datapath=integer].speedup", "min", 0.50, True),
    ("BENCH_functional_throughput.json",
     "row_block_split.identical", "bool", 0.0, False),
    ("BENCH_functional_throughput.json",
     "monte_carlo.configs.[config=AutoHet (RL)].reports_identical",
     "bool", 0.0, False),
    ("BENCH_functional_throughput.json",
     "monte_carlo.configs.[config=AutoHet (RL)].speedup",
     "min", 0.50, True),
    # -- fault_sweep: deterministic accuracy under injected faults ---------
    ("BENCH_fault_sweep.json",
     "series.[name=AutoHet (RL)].points.[0].accuracy_mean",
     "exact", 1e-9, False),
    ("BENCH_fault_sweep.json",
     "series.[name=AutoHet (RL)].points.[0].mean_logit_error",
     "exact", 1e-9, False),
    ("BENCH_fault_sweep.json",
     "series.[name=AutoHet (RL)].points.[1].accuracy_mean",
     "exact", 1e-9, False),
    ("BENCH_fault_sweep.json",
     "series.[name=AutoHet (RL)].points.[1].stuck_cells",
     "exact", 0.0, False),
    ("BENCH_fault_sweep.json",
     "series.[name=AutoHet (RL)].points.[4].accuracy_mean",
     "exact", 1e-9, False),
    ("BENCH_fault_sweep.json",
     "series.[name=Homo(576x512)].points.[9].accuracy_mean",
     "exact", 1e-9, False),
    # Fixed mode runs exactly the configured budget — no adaptivity here.
    ("BENCH_fault_sweep.json",
     "series.[name=AutoHet (RL)].points.[0].mc_trials_run",
     "exact", 0.0, False),
    # -- fault_sweep (adaptive budget): early-stopping health --------------
    # The adaptive run is fully deterministic (seeded trial stream, chunked
    # stopping decisions), but trial counts may legitimately shift when the
    # stopping rule or budget defaults change — gate the floor, not the bits.
    # The savings floor (baseline ~3.67x, tolerance 0.15 -> >= ~3.1x) keeps
    # the >= 3x acceptance property; the rate-0 row must stop at the min
    # clamp (2 run, 13 of 15 saved).
    ("BENCH_fault_sweep_adaptive.json", "mc_savings_ratio",
     "min", 0.15, False),
    ("BENCH_fault_sweep_adaptive.json",
     "series.[name=AutoHet (RL)].points.[0].mc_trials_run",
     "exact", 0.0, False),
    ("BENCH_fault_sweep_adaptive.json",
     "series.[name=AutoHet (RL)].points.[0].mc_trials_saved",
     "min", 0.30, False),
    ("BENCH_fault_sweep_adaptive.json",
     "series.[name=AutoHet (RL)].points.[0].accuracy_mean",
     "exact", 1e-9, False),
    # -- serving_sim: multi-tenant serving under swap pressure -------------
    # The serving report is fully deterministic (fixed-shape plans, seeded
    # traffic, simulated clock), so counts, percentiles, and energies gate
    # exactly; only the host wall-clock simulation rate gets slack.
    ("BENCH_serving.json", "totals.requests", "exact", 0.0, False),
    ("BENCH_serving.json", "totals.batches", "exact", 0.0, False),
    ("BENCH_serving.json", "totals.swap_ins", "exact", 0.0, False),
    ("BENCH_serving.json", "totals.evictions", "exact", 0.0, False),
    ("BENCH_serving.json", "totals.sustained_qps", "exact", 1e-12, False),
    ("BENCH_serving.json", "totals.latency_ms.p50", "exact", 1e-12, False),
    ("BENCH_serving.json", "totals.latency_ms.p99", "exact", 1e-12, False),
    ("BENCH_serving.json", "totals.energy_per_request_nj",
     "exact", 1e-12, False),
    ("BENCH_serving.json", "models.[network=LeNet5].latency_ms.p99",
     "exact", 1e-12, False),
    ("BENCH_serving.json", "models.[network=AlexNet].latency_ms.p99",
     "exact", 1e-12, False),
    ("BENCH_serving_host.json", "sim_requests_per_s", "min", 0.50, True),
]

_SELECTOR = re.compile(r"^\[(.+?)=(.+)\]$")
_INDEX = re.compile(r"^\[(\d+)\]$")


def resolve(doc, path):
    """Walks `doc` along a dot-separated path; raises KeyError on a miss."""
    node = doc
    for part in path.split("."):
        m = _INDEX.match(part)
        if m:
            node = node[int(m.group(1))]
            continue
        m = _SELECTOR.match(part)
        if m:
            key, want = m.group(1), m.group(2)
            for elem in node:
                if str(elem.get(key)) == want:
                    node = elem
                    break
            else:
                raise KeyError(f"no element with {key}={want} in {part}")
            continue
        node = node[part]
    return node


def compare(mode, tol, baseline, current):
    """Returns (ok, detail) for one metric."""
    if mode == "bool":
        return current == baseline, f"want {baseline}, got {current}"
    b, c = float(baseline), float(current)
    if mode == "exact":
        scale = max(1.0, abs(b))
        ok = math.isfinite(c) and abs(c - b) <= tol * scale
        return ok, f"|{c} - {b}| <= {tol} * {scale}"
    if mode == "min":
        floor = b * (1.0 - tol)
        return c >= floor, f"{c} >= {floor} (baseline {b}, slack {tol})"
    if mode == "max":
        ceil = b * (1.0 + tol)
        return c <= ceil, f"{c} <= {ceil} (baseline {b}, slack {tol})"
    raise ValueError(f"unknown mode {mode}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current-dir", required=True,
                    help="directory with freshly produced BENCH_*.json")
    ap.add_argument("--baseline-dir", required=True,
                    help="directory with committed baseline BENCH_*.json")
    ap.add_argument("--out", default="regression_diff.json",
                    help="where to write the per-metric comparison")
    ap.add_argument("--tolerance", type=float, default=1.0,
                    help="multiplier on every manifest tolerance (default 1)")
    ap.add_argument("--timing-slack", type=float, default=1.0,
                    help="extra multiplier on host-dependent tolerances "
                         "(use >1 on noisy CI runners)")
    args = ap.parse_args()

    results = []
    regressions = 0
    skipped = 0
    docs = {}

    def load(directory, name):
        path = os.path.join(directory, name)
        if path not in docs:
            with open(path, "r", encoding="utf-8") as f:
                docs[path] = json.load(f)
        return docs[path]

    for bench_file, path, mode, tol, host_dependent in MANIFEST:
        entry = {"file": bench_file, "metric": path, "mode": mode}
        tol_eff = tol * args.tolerance
        if host_dependent:
            tol_eff *= args.timing_slack
        entry["tolerance"] = tol_eff
        try:
            current = resolve(load(args.current_dir, bench_file), path)
        except FileNotFoundError:
            entry["status"] = "regression"
            entry["detail"] = "current bench output missing"
            regressions += 1
            results.append(entry)
            continue
        except (KeyError, IndexError, TypeError) as exc:
            entry["status"] = "regression"
            entry["detail"] = f"metric missing from current output: {exc}"
            regressions += 1
            results.append(entry)
            continue
        try:
            baseline = resolve(load(args.baseline_dir, bench_file), path)
        except (FileNotFoundError, KeyError, IndexError, TypeError) as exc:
            entry["status"] = "skipped"
            entry["detail"] = f"no baseline: {exc}"
            entry["current"] = current
            skipped += 1
            results.append(entry)
            continue
        ok, detail = compare(mode, tol_eff, baseline, current)
        entry["baseline"] = baseline
        entry["current"] = current
        entry["detail"] = detail
        entry["status"] = "ok" if ok else "regression"
        if not ok:
            regressions += 1
        results.append(entry)

    summary = {
        "checked": len(MANIFEST),
        "regressions": regressions,
        "skipped": skipped,
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(summary, f, indent=2)
        f.write("\n")

    width = max(len(r["metric"]) for r in results)
    for r in results:
        marker = {"ok": "  ok  ", "skipped": " skip ",
                  "regression": " FAIL "}[r["status"]]
        print(f"[{marker}] {r['file']}: {r['metric']:<{width}} "
              f"{r.get('detail', '')}")
    print(f"{len(results)} metrics checked, {regressions} regressions, "
          f"{skipped} skipped -> {args.out}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
