// Reproduces Table 4: the number of occupied tiles under +Hy (hybrid
// candidates, exclusive tiles) and All (+ tile-shared allocation) for the
// three models. The same learned configuration is evaluated under both
// allocators so the delta isolates the tile-shared scheme.
//
// Usage: table4_tiles [episodes]   (default 120 per search)
#include "bench_common.hpp"
#include "reram/hardware_model.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 120);
  bench::print_header("Table 4 — occupied tiles: +Hy vs All (tile-shared)");

  report::Table table({"Model", "+Hy tiles", "All tiles", "Reduction %"});
  for (const auto& net : nn::paper_workloads()) {
    const int eps = net.name == "ResNet152" ? std::max(20, episodes / 2)
                                            : episodes;
    const auto hy_env = bench::make_env(net, mapping::hybrid_candidates(),
                                        /*tile_shared=*/false);
    const auto hy = bench::run_search(hy_env, eps);

    // Same per-layer shapes, re-evaluated with the tile-shared allocator.
    std::vector<mapping::CrossbarShape> shapes;
    for (auto a : hy.best_actions) shapes.push_back(hy_env.candidates()[a]);
    const auto shared_cfg = bench::paper_accel(/*tile_shared=*/true);
    const auto all = reram::evaluate_network(net.mappable_layers(), shapes,
                                             shared_cfg);

    const auto hy_tiles = hy.best_report.occupied_tiles;
    const auto all_tiles = all.occupied_tiles;
    table.add_row({net.name, std::to_string(hy_tiles),
                   std::to_string(all_tiles),
                   report::format_fixed(
                       100.0 * static_cast<double>(hy_tiles - all_tiles) /
                           static_cast<double>(hy_tiles),
                       1)});
  }
  table.print(std::cout);
  std::cout << "\nPaper: 33->31 (AlexNet), 30->27 (VGG16), 246->232 "
               "(ResNet152); reductions of 6.1% / 10% / 5.7%.\n";
  return 0;
}
