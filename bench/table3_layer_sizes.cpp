// Reproduces Table 3: the crossbar size assigned to each VGG16 layer under
// Base (best homogeneous), +He (RL over squares) and +Hy (RL over hybrid
// squares + rectangles).
//
// Usage: table3_layer_sizes [episodes]   (default 200 per search)
#include "bench_common.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 200);
  bench::print_header("Table 3 — per-layer crossbar sizes for VGG16");
  const auto net = nn::vgg16();

  const auto square_env = bench::make_env(net, mapping::square_candidates(),
                                          /*tile_shared=*/false);
  const auto base = core::best_homogeneous(square_env);
  const auto he = bench::run_search(square_env, episodes);
  const auto hy_env = bench::make_env(net, mapping::hybrid_candidates(),
                                      /*tile_shared=*/false);
  const auto hy = bench::run_search(hy_env, episodes);

  report::Table table({"Layer", "Spec", "Base", "+He", "+Hy"});
  const auto layers = net.mappable_layers();
  for (std::size_t k = 0; k < layers.size(); ++k) {
    // += instead of "L" + to_string(...): GCC 12 -Wrestrict false positive
    // on the inlined temporary-string operator+ chain (PR105329).
    std::string label = "L";
    label += std::to_string(k + 1);
    table.add_row(
        {label, layers[k].to_string(),
         square_env.candidates()[base.actions[k]].name(),
         square_env.candidates()[he.best_actions[k]].name(),
         hy_env.candidates()[hy.best_actions[k]].name()});
  }
  table.print(std::cout);
  std::cout << "\nPaper shape: Base is uniform; +He diversifies a few layers "
               "(256 vs 512); +Hy shifts to rectangle shapes (288x256 / "
               "576x512).\n";
  return 0;
}
