// Ablation: memristor cell precision. The paper fixes 1-bit cells (§4.1);
// multi-level cells pack more weight bits per device, shrinking the number
// of physical bit planes (8 / cell_bits) and with it energy and area. The
// functional datapath stays bit-exact at every precision
// (LogicalCrossbar::mvm_multilevel; verified in tests/test_multilevel.cpp).
#include "bench_common.hpp"
#include "reram/hardware_model.hpp"

using namespace autohet;

int main() {
  bench::print_header("Ablation — cell precision (VGG16, 576x512 crossbars)");
  const auto layers = nn::vgg16().mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {576, 512});

  report::Table table({"Cell bits", "Bit planes", "Energy (nJ)",
                       "Area (um^2)", "Energy vs 1-bit", "Area vs 1-bit"});
  double e1 = 0.0, a1 = 0.0;
  for (int cell_bits : {1, 2, 4, 8}) {
    auto config = bench::paper_accel(/*tile_shared=*/true);
    config.device.cell_bits = cell_bits;
    const auto r = reram::evaluate_network(layers, shapes, config);
    if (cell_bits == 1) {
      e1 = r.energy.total_nj();
      a1 = r.area.total_um2();
    }
    table.add_row({std::to_string(cell_bits),
                   std::to_string(config.device.bit_planes()),
                   report::format_sci(r.energy.total_nj(), 3),
                   report::format_sci(r.area.total_um2(), 3),
                   report::format_fixed(r.energy.total_nj() / e1, 2) + "x",
                   report::format_fixed(r.area.total_um2() / a1, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nShape: energy and crossbar area scale with 8/cell_bits; "
               "real MLC devices trade this against programming precision "
               "and variation sensitivity (see the variation example).\n";
  return 0;
}
