// Extension: multi-model co-residency. §3.4 notes that tiles freed by the
// tile-shared scheme "become available for other layers in the DNN model or
// other models". This bench quantifies it: AlexNet + VGG16 + LeNet resident
// on one chip, under no sharing / per-model sharing / cross-model sharing.
#include "bench_common.hpp"
#include "mapping/multi_model.hpp"
#include "reram/bank.hpp"

using namespace autohet;

namespace {

mapping::ResidentModel make_resident(const nn::NetworkSpec& net,
                                     mapping::CrossbarShape shape) {
  mapping::ResidentModel m;
  m.name = net.name;
  m.layers = net.mappable_layers();
  m.shapes.assign(m.layers.size(), shape);
  return m;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension — multi-model residency (AlexNet + VGG16 + LeNet, 72x64)");
  const std::vector<mapping::ResidentModel> models = {
      make_resident(nn::alexnet(), {72, 64}),
      make_resident(nn::vgg16(), {72, 64}),
      make_resident(nn::lenet5(), {72, 64}),
  };

  report::Table table({"Sharing scope", "Occupied tiles", "Released tiles",
                       "System util %", "Chip occupancy %"});
  reram::ChipSpec chip;
  chip.banks = 1;
  chip.bank.tile_rows = 64;  // a small edge-class chip: 4096 tiles
  chip.bank.tile_cols = 64;
  for (const auto& [scope, name] :
       {std::pair{mapping::SharingScope::kNone, "none"},
        std::pair{mapping::SharingScope::kPerModel, "per-model"},
        std::pair{mapping::SharingScope::kCrossModel, "cross-model"}}) {
    const mapping::MultiModelAllocator alloc(16, scope);
    const auto result = alloc.allocate(models);
    const auto placement = reram::place_tiles(result.tiles, chip);
    table.add_row(
        {name, std::to_string(result.occupied_tiles()),
         std::to_string(result.released_tiles()),
         report::format_fixed(result.system_utilization() * 100.0, 1),
         report::format_fixed(placement.chip_occupancy * 100.0, 1)});
  }
  table.print(std::cout);

  // Per-model footprint before sharing, for context.
  std::cout << "\nPer-model tiles before sharing:\n";
  const auto base = mapping::MultiModelAllocator(
                        16, mapping::SharingScope::kNone)
                        .allocate(models);
  for (const auto& m : base.models) {
    std::cout << "  " << m.name << ": " << m.tiles_before_sharing
              << " tiles\n";
  }
  std::cout << "\nShape: cross-model sharing releases at least as many tiles "
               "as per-model sharing, freeing chip capacity for additional "
               "resident models.\n";
  return 0;
}
