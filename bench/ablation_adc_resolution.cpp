// Ablation: ADC resolution. The paper fixes 10-bit ADCs "to support
// crossbars of all heterogeneous sizes" (§4.1); this sweep quantifies what
// that choice costs. Conversion energy/area come from the SAR component
// model (reram/components.hpp), so energy halves per bit removed — the
// lever behind ADC-sharing literature.
#include "bench_common.hpp"
#include "reram/components.hpp"

using namespace autohet;

int main() {
  bench::print_header("Ablation — ADC resolution (VGG16, 576x512 crossbars)");
  const auto layers = nn::vgg16().mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), {576, 512});

  report::Table table({"ADC bits", "ADC energy (pJ/conv)", "Energy (nJ)",
                       "Area (um^2)", "RUE"});
  for (int bits : {6, 8, 10, 12}) {
    reram::ComponentConfig cfg;
    cfg.adc_resolution_bits = bits;
    auto accel = bench::paper_accel(/*tile_shared=*/true);
    accel.device = reram::derive_device_params(cfg);
    const auto r = reram::evaluate_network(layers, shapes, accel);
    table.add_row({std::to_string(bits),
                   report::format_fixed(accel.device.adc_energy_pj, 3),
                   report::format_sci(r.energy.total_nj(), 3),
                   report::format_sci(r.area.total_um2(), 3),
                   report::format_sci(r.rue(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nShape: each ADC bit doubles conversion energy; a 10-bit "
               "ADC (the paper's choice, needed to resolve 576-row bitline "
               "sums) costs ~16x the energy of a 6-bit one.\n";
  return 0;
}
