// Ablation: layer-pipelined inference throughput and the replication
// (weight-duplication) throughput/area trade — the PipeLayer/ISAAC-style
// balancing the paper's accelerators inherit.
#include "bench_common.hpp"
#include "reram/pipeline.hpp"

using namespace autohet;

int main() {
  bench::print_header("Ablation — pipelined throughput vs replication budget "
                      "(VGG16)");
  const auto layers = nn::vgg16().mappable_layers();
  const auto config = bench::paper_accel();

  report::Table table({"Crossbar", "Extra-tile budget",
                       "Bottleneck interval (ns)", "Throughput (inf/s)",
                       "Fill latency (ns)", "Extra tiles used"});
  for (const auto& shape :
       {mapping::CrossbarShape{128, 128}, mapping::CrossbarShape{576, 512}}) {
    const std::vector<mapping::CrossbarShape> shapes(layers.size(), shape);
    for (std::int64_t budget : {0, 16, 64, 256}) {
      const auto rep =
          reram::balance_replication(layers, shapes, config, budget);
      const auto report = reram::evaluate_pipeline(layers, shapes, config,
                                                   rep);
      table.add_row({shape.name(), std::to_string(budget),
                     report::format_sci(report.bottleneck_interval_ns, 3),
                     report::format_fixed(
                         report.throughput_inferences_per_s, 1),
                     report::format_sci(report.fill_latency_ns, 3),
                     std::to_string(report.total_extra_tiles)});
    }
  }
  table.print(std::cout);

  // Where the replication goes: show the balanced factors for one case.
  const std::vector<mapping::CrossbarShape> shapes(layers.size(),
                                                   {576, 512});
  const auto rep = reram::balance_replication(layers, shapes, config, 64);
  std::cout << "\nReplication factors at budget 64 on 576x512 (layer: copies):"
            << "\n  ";
  for (std::size_t k = 0; k < rep.size(); ++k) {
    if (rep[k] > 1) std::cout << "L" << k + 1 << ":" << rep[k] << "  ";
  }
  std::cout << "\nShape: the budget flows to the large-feature-map early "
               "layers; throughput rises until they are balanced.\n";
  return 0;
}
