// Ablation: tile placement policy. Tile ids are allocated in layer order,
// so the slot-filling curve controls how far consecutive layers' tiles sit
// on the bank grid — and with it the interconnect hop count the NoC model
// charges. Also prints the pipelined-batch timeline head from the event
// scheduler for one configuration.
#include "bench_common.hpp"
#include "reram/noc.hpp"
#include "reram/scheduler.hpp"

using namespace autohet;

int main() {
  bench::print_header("Ablation — placement policy vs interconnect (VGG16)");
  const auto layers = nn::vgg16().mappable_layers();

  report::Table table({"Crossbar", "Policy", "Mean hops", "NoC energy (nJ)"});
  for (const auto& shape :
       {mapping::CrossbarShape{32, 32}, mapping::CrossbarShape{64, 64},
        mapping::CrossbarShape{128, 128}}) {
    const std::vector<mapping::CrossbarShape> shapes(layers.size(), shape);
    const auto allocation =
        mapping::TileAllocator(4, false).allocate(layers, shapes);
    for (const auto& [policy, name] :
         {std::pair{reram::PlacementPolicy::kRowMajor, "row-major"},
          std::pair{reram::PlacementPolicy::kSnake, "snake"},
          std::pair{reram::PlacementPolicy::kHilbert, "hilbert"}}) {
      const auto placement =
          reram::place_tiles(allocation.tiles, reram::ChipSpec{}, policy);
      const auto noc = reram::evaluate_noc(layers, allocation, placement);
      table.add_row({shape.name(), name,
                     report::format_fixed(noc.mean_hops, 2),
                     report::format_fixed(noc.total_energy_nj, 1)});
    }
  }
  table.print(std::cout);

  // Scheduler timeline head for a small pipelined batch.
  std::cout << "\nPipelined batch timeline (VGG16 on 128x128, batch 3, "
               "first 8 tasks):\n";
  const std::vector<mapping::CrossbarShape> shapes(layers.size(),
                                                   {128, 128});
  const auto schedule = reram::schedule_batch(
      layers, shapes, bench::paper_accel(), /*batch=*/3);
  report::Table timeline({"Image", "Layer", "Start (ns)", "Finish (ns)"});
  for (std::size_t t = 0; t < 8 && t < schedule.tasks.size(); ++t) {
    const auto& task = schedule.tasks[t];
    timeline.add_row({std::to_string(task.image), std::to_string(task.layer),
                      report::format_sci(task.start_ns, 3),
                      report::format_sci(task.finish_ns, 3)});
  }
  timeline.print(std::cout);
  std::cout << "Makespan: " << report::format_sci(schedule.makespan_ns, 3)
            << " ns; steady throughput "
            << report::format_fixed(
                   schedule.steady_throughput_inferences_per_s, 1)
            << " inf/s\n";
  std::cout << "\nShape: the Hilbert curve cuts mean hops ~3-4x versus "
               "row-major at every size; snake only helps once layers span "
               "few rows (it can even lose on extreme sprawl, where "
               "alternating row directions separates large layer groups).\n";
  return 0;
}
