// Multi-tenant serving benchmark: two zoo models resident on one fabric
// under swap pressure (DESIGN.md §8).
//
// Compiles LeNet5 and AlexNet deterministically (fixed 72x64 shapes, the
// paper accelerator with tile sharing — no RL search, so the committed
// baseline reproduces bit-for-bit on any host), sizes the tile budget to
// the larger model's standalone footprint so the two models cannot
// co-reside and every popularity flip pays an eviction + re-programming
// swap, then replays a seeded diurnal Zipf trace at ~70% of the
// popularity-weighted service capacity.
//
// Emits:
//   * BENCH_serving.json — the full deterministic ServingReport
//     (byte-identical across runs, hosts, and --threads values; the
//     regression gate pins p99, sustained qps and swap counts exactly);
//   * BENCH_serving_host.json — wall-clock simulation rate, the only
//     host-dependent number (gated with --timing-slack).
//
// Usage: serving_sim [requests] [--threads N]
//   requests — target request count of the generated trace (default 2000)
//   --threads — schedule-table precompute workers (0 = one per hardware
//               thread; the serving report never changes with it)
#include <chrono>
#include <cmath>
#include <fstream>
#include <optional>

#include "bench_common.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "report/serialize.hpp"
#include "reram/scheduler.hpp"
#include "serve/serialize.hpp"
#include "serve/simulator.hpp"

using namespace autohet;

namespace {

using Clock = std::chrono::steady_clock;

plan::DeploymentPlan compile_zoo_plan(const nn::NetworkSpec& net) {
  const auto mappable = net.mappable_layers();
  const std::vector<mapping::CrossbarShape> shapes(mappable.size(), {72, 64});
  return plan::compile_plan(net.name, mappable, shapes,
                            bench::paper_accel(/*tile_shared=*/true));
}

int threads_from_args(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--threads") return std::atoi(argv[i + 1]);
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const int requests = bench::episodes_from_args(argc, argv, 2000);
  const int threads = threads_from_args(argc, argv);
  bench::print_header("Multi-tenant serving under swap pressure");

  std::vector<plan::DeploymentPlan> plans;
  plans.push_back(compile_zoo_plan(nn::lenet5()));
  plans.push_back(compile_zoo_plan(nn::alexnet()));

  std::optional<common::ThreadPool> pool;
  if (threads != 1) {
    pool.emplace(threads == 0 ? 0 : static_cast<std::size_t>(threads));
  }
  common::ThreadPool* pool_ptr = pool ? &*pool : nullptr;

  // Probe pass (unbounded budget) just to read the standalone footprints;
  // the measured fabric caps residency at the larger one, so the resident
  // set can never hold both models and every model flip swaps.
  serve::FabricConfig fabric_config;
  std::int64_t capacity = 0;
  {
    const serve::ServingFabric probe(plans, fabric_config, pool_ptr);
    for (std::int64_t m = 0; m < probe.model_count(); ++m) {
      capacity = std::max(capacity, probe.standalone_tiles(m));
    }
  }
  fabric_config.tile_capacity = capacity;
  serve::ServingFabric fabric(plans, fabric_config, pool_ptr);

  serve::BatchingConfig batching;

  serve::TrafficConfig traffic;
  traffic.profile = serve::RateProfile::kDiurnal;
  // ~70% of the popularity-weighted full-batch service capacity: loaded
  // enough that batches actually form, stable enough that queues drain.
  const std::vector<double> weights =
      serve::zipf_weights(fabric.model_count(), traffic.zipf_s);
  double weighted_ns_per_request = 0.0;
  for (std::int64_t m = 0; m < fabric.model_count(); ++m) {
    const auto schedule =
        reram::schedule_batch(fabric.model_plan(m), batching.max_batch);
    weighted_ns_per_request += weights[static_cast<std::size_t>(m)] *
                               schedule.makespan_ns /
                               static_cast<double>(batching.max_batch);
  }
  traffic.mean_qps = 0.7 * 1e9 / weighted_ns_per_request;
  traffic.duration_s = static_cast<double>(requests) / traffic.mean_qps;
  const serve::TrafficTrace trace =
      serve::generate_trace(traffic, fabric.model_count());

  const auto t0 = Clock::now();
  const serve::ServingReport rep =
      serve::simulate(fabric, batching, trace, pool_ptr);
  const double wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // The conservation contracts the CI smoke also asserts from the JSON:
  // total energy splits exactly into inference + programming, and the
  // inference leg is the index-ordered sum of the per-model stats.
  double inference_sum = 0.0;
  for (const serve::ModelServingStats& m : rep.models) {
    inference_sum += m.inference_energy_nj;
  }
  AUTOHET_CHECK(inference_sum == rep.inference_energy_nj,
                "per-model inference energies do not sum to the total");
  AUTOHET_CHECK(rep.inference_energy_nj + rep.programming_energy_nj ==
                    rep.total_energy_nj,
                "total energy is not inference + programming");
  AUTOHET_CHECK(rep.swap_ins > static_cast<std::int64_t>(rep.models.size()),
                "the capped tile budget produced no swap pressure");

  report::Table table({"Model", "Network", "Requests", "p50 ms", "p95 ms",
                       "p99 ms", "Swap-ins", "Tiles"});
  for (std::size_t m = 0; m < rep.models.size(); ++m) {
    const serve::ModelServingStats& s = rep.models[m];
    table.add_row({std::to_string(m), s.network, std::to_string(s.requests),
                   report::format_fixed(s.latency.p50_ms, 3),
                   report::format_fixed(s.latency.p95_ms, 3),
                   report::format_fixed(s.latency.p99_ms, 3),
                   std::to_string(s.swap_ins),
                   std::to_string(s.standalone_tiles)});
  }
  table.add_row({"all", "-", std::to_string(rep.total_requests),
                 report::format_fixed(rep.latency.p50_ms, 3),
                 report::format_fixed(rep.latency.p95_ms, 3),
                 report::format_fixed(rep.latency.p99_ms, 3),
                 std::to_string(rep.swap_ins), std::to_string(capacity)});
  table.print(std::cout);
  std::cout << "\nsustained " << report::format_fixed(rep.sustained_qps, 1)
            << " qps (offered mean "
            << report::format_fixed(traffic.mean_qps, 1) << "), mean batch "
            << report::format_fixed(rep.mean_batch, 2) << ", "
            << rep.swap_ins << " swap-ins / " << rep.evictions
            << " evictions, busy "
            << report::format_fixed(rep.accel_busy_fraction * 100.0, 1)
            << "%\nsimulated " << rep.total_requests << " requests in "
            << report::format_fixed(wall_ms, 1) << " ms of wall time\n";

  {
    std::ofstream json("BENCH_serving.json");
    serve::write_serving_json(json, rep);
  }
  {
    const double wall_s = wall_ms / 1000.0;
    std::ofstream json("BENCH_serving_host.json");
    json << "{\n  \"benchmark\": \"serving_sim\",\n"
         << "  \"requests\": " << rep.total_requests << ",\n"
         << "  \"wall_ms\": " << report::format_double_json(wall_ms) << ",\n"
         << "  \"sim_requests_per_s\": "
         << report::format_double_json(
                static_cast<double>(rep.total_requests) / wall_s)
         << "\n}\n";
  }
  std::cout << "Wrote BENCH_serving.json and BENCH_serving_host.json\n";
  return 0;
}
