// Reproduces the §4.5 search-time analysis: wall-clock of a 300-round RL
// search on VGG16 and the share of time spent waiting on the simulator.
// The paper measures 49.2 minutes with 97% in (their Python) simulator; our
// C++ behavioral model is orders of magnitude faster, so the interesting
// reproducible quantity is the *split*, plus a demonstration that episode
// evaluation parallelizes across a thread pool.
//
// Also emits BENCH_search_time.json with episodes/sec, the stage split, and
// the evaluation-engine cache hit rate, alongside the pre-engine baseline
// measured on the same host (see kBaseline below) so the speedup from the
// memoized evaluation engine + batched DDPG kernels is tracked in-repo.
//
// Usage: search_time [episodes]   (default 300, the paper's setting)
#include <chrono>
#include <fstream>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"

using namespace autohet;

namespace {

/// Pre-engine reference numbers: the binary built from the commit before the
/// evaluation engine landed (per-episode re-evaluation, per-sample DDPG
/// update), run on the same host with `search_time 500`. Only comparable to
/// runs with the same episode count.
struct Baseline {
  int episodes;
  double total_seconds;
  double decision_seconds;
  double simulator_seconds;
  double learning_seconds;
  double serial_evals_per_second;
};
constexpr Baseline kBaseline = {500, 16.732, 0.028, 0.023, 16.669, 3541.0};

}  // namespace

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 300);
  bench::print_header("§4.5 — RL search time (VGG16, " +
                      std::to_string(episodes) + " rounds)");

  const auto env = bench::make_env(nn::vgg16(), mapping::hybrid_candidates(),
                                   /*tile_shared=*/true);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = bench::run_search(env, episodes);
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto search_cache = env.engine().cache_stats();

  report::Table table({"Stage", "Seconds", "Share %"});
  const auto add = [&](const std::string& name, double s) {
    table.add_row({name, report::format_fixed(s, 3),
                   report::format_fixed(100.0 * s / total, 1)});
  };
  add("decision (actor forward)", result.decision_seconds);
  add("simulator (hardware feedback)", result.simulator_seconds);
  add("learning (replay updates)", result.learning_seconds);
  add("total wall-clock", total);
  table.print(std::cout);
  std::cout << "Best reward found: " << result.best_reward << "\n";
  std::cout << "Episodes/sec: " << report::format_fixed(episodes / total, 1)
            << ", eval-engine hit rate: "
            << report::format_fixed(100.0 * search_cache.hit_rate(), 1)
            << "% (" << search_cache.hits << " hits / "
            << search_cache.misses << " misses)\n";

  // Throughput of raw simulator evaluations, serial vs thread pool — the
  // component the paper attributes 97% of its search time to.
  constexpr int kEvals = 256;
  std::vector<std::vector<std::size_t>> configs;
  common::Rng rng(9);
  for (int i = 0; i < kEvals; ++i) {
    std::vector<std::size_t> actions(env.num_layers());
    for (auto& a : actions) a = rng.uniform_u64(env.num_actions());
    configs.push_back(std::move(actions));
  }
  const auto serial_start = std::chrono::steady_clock::now();
  for (const auto& c : configs) (void)env.evaluate(c);
  const double serial =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_start)
          .count();
  common::ThreadPool pool;
  const auto par_start = std::chrono::steady_clock::now();
  pool.parallel_for(0, configs.size(),
                    [&](std::size_t i) { (void)env.evaluate(configs[i]); });
  const double parallel =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    par_start)
          .count();
  std::cout << "\nSimulator throughput (" << kEvals << " VGG16 evaluations): "
            << report::format_fixed(kEvals / serial, 0) << "/s serial, "
            << report::format_fixed(kEvals / parallel, 0) << "/s across "
            << pool.size() << " threads\n";

  // ---- robustness-aware search overhead (LeNet-5) ----
  // The kRobustnessAware objective with a measured Monte-Carlo reward runs
  // a budgeted fault-injection evaluation inside the search loop. The
  // adaptive budget plus the engine's robustness memo must keep that search
  // within ~2x the plain Eq. 2 wall clock (the gated `mc_over_plain`).
  constexpr int kRobustEpisodes = 500;
  const nn::NetworkSpec lenet = nn::lenet5();
  common::Rng lenet_rng(21);
  const nn::Model lenet_model(lenet, lenet_rng);
  core::EnvConfig plain_cfg;
  plain_cfg.candidates = mapping::hybrid_candidates();
  plain_cfg.accel = bench::paper_accel(/*tile_shared=*/true);
  const core::CrossbarEnv plain_env(lenet.mappable_layers(), plain_cfg);
  const auto plain_start = std::chrono::steady_clock::now();
  const auto plain_result = bench::run_search(plain_env, kRobustEpisodes);
  const double plain_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    plain_start)
          .count();

  core::EnvConfig mc_cfg = plain_cfg;
  mc_cfg.objective = core::RewardObjective::kRobustnessAware;
  mc_cfg.accel.faults.stuck_at_zero_rate = 5e-4;
  mc_cfg.accel.faults.stuck_at_one_rate = 5e-4;
  mc_cfg.accel.faults.program_sigma = 0.01;
  mc_cfg.accel.faults.cell_bits = 2;
  mc_cfg.mc_reward_model = &lenet_model;
  const core::CrossbarEnv mc_env(lenet.mappable_layers(), mc_cfg);
  const auto mc_start = std::chrono::steady_clock::now();
  const auto mc_result = bench::run_search(mc_env, kRobustEpisodes);
  const double mc_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    mc_start)
          .count();
  const auto rob_memo = mc_env.engine().robustness_cache_stats();
  const double mc_over_plain =
      plain_seconds > 0.0 ? mc_seconds / plain_seconds : 0.0;
  std::cout << "\nRobustness-aware search (LeNet-5, " << kRobustEpisodes
            << " rounds): plain " << report::format_fixed(plain_seconds, 3)
            << "s, measured-MC reward " << report::format_fixed(mc_seconds, 3)
            << "s (" << report::format_fixed(mc_over_plain, 2)
            << "x), MC memo hit rate "
            << report::format_fixed(100.0 * rob_memo.hit_rate(), 1) << "% ("
            << rob_memo.hits << " hits / " << rob_memo.misses << " misses)\n";

  // ---- machine-readable summary ----
  std::ofstream json("BENCH_search_time.json");
  json << "{\n"
       << "  \"benchmark\": \"search_time\",\n"
       << "  \"model\": \"vgg16\",\n"
       << "  \"episodes\": " << episodes << ",\n"
       << "  \"after\": {\n"
       << "    \"total_seconds\": " << total << ",\n"
       << "    \"episodes_per_second\": " << episodes / total << ",\n"
       << "    \"decision_seconds\": " << result.decision_seconds << ",\n"
       << "    \"simulator_seconds\": " << result.simulator_seconds << ",\n"
       << "    \"learning_seconds\": " << result.learning_seconds << ",\n"
       << "    \"best_reward\": " << result.best_reward << ",\n"
       << "    \"cache_hits\": " << search_cache.hits << ",\n"
       << "    \"cache_misses\": " << search_cache.misses << ",\n"
       << "    \"cache_hit_rate\": " << search_cache.hit_rate() << ",\n"
       << "    \"serial_evals_per_second\": " << kEvals / serial << ",\n"
       << "    \"pooled_evals_per_second\": " << kEvals / parallel << "\n"
       << "  },\n"
       << "  \"before\": {\n"
       << "    \"note\": \"pre-engine binary (per-episode re-evaluation, "
          "per-sample DDPG update) on the same host\",\n"
       << "    \"episodes\": " << kBaseline.episodes << ",\n"
       << "    \"total_seconds\": " << kBaseline.total_seconds << ",\n"
       << "    \"decision_seconds\": " << kBaseline.decision_seconds << ",\n"
       << "    \"simulator_seconds\": " << kBaseline.simulator_seconds
       << ",\n"
       << "    \"learning_seconds\": " << kBaseline.learning_seconds << ",\n"
       << "    \"serial_evals_per_second\": "
       << kBaseline.serial_evals_per_second << "\n"
       << "  },\n"
       << "  \"robust_search\": {\n"
       << "    \"model\": \"lenet5\",\n"
       << "    \"episodes\": " << kRobustEpisodes << ",\n"
       << "    \"plain_seconds\": " << plain_seconds << ",\n"
       << "    \"mc_seconds\": " << mc_seconds << ",\n"
       << "    \"mc_over_plain\": " << mc_over_plain << ",\n"
       << "    \"plain_best_reward\": " << plain_result.best_reward << ",\n"
       << "    \"mc_best_reward\": " << mc_result.best_reward << ",\n"
       << "    \"mc_memo_hits\": " << rob_memo.hits << ",\n"
       << "    \"mc_memo_misses\": " << rob_memo.misses << ",\n"
       << "    \"mc_memo_hit_rate\": " << rob_memo.hit_rate() << "\n"
       << "  }";
  if (episodes == kBaseline.episodes && total > 0.0) {
    json << ",\n  \"speedup_total\": " << kBaseline.total_seconds / total
         << ",\n  \"speedup_learning\": "
         << kBaseline.learning_seconds / result.learning_seconds
         << ",\n  \"speedup_serial_eval\": "
         << (kEvals / serial) / kBaseline.serial_evals_per_second << "\n";
  } else {
    json << "\n";
  }
  json << "}\n";
  std::cout << "\nWrote BENCH_search_time.json\n";
  return 0;
}
