// Reproduces the §4.5 search-time analysis: wall-clock of a 300-round RL
// search on VGG16 and the share of time spent waiting on the simulator.
// The paper measures 49.2 minutes with 97% in (their Python) simulator; our
// C++ behavioral model is orders of magnitude faster, so the interesting
// reproducible quantity is the *split*, plus a demonstration that episode
// evaluation parallelizes across a thread pool.
//
// Usage: search_time [episodes]   (default 300, the paper's setting)
#include <chrono>

#include "bench_common.hpp"
#include "common/thread_pool.hpp"

using namespace autohet;

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 300);
  bench::print_header("§4.5 — RL search time (VGG16, " +
                      std::to_string(episodes) + " rounds)");

  const auto env = bench::make_env(nn::vgg16(), mapping::hybrid_candidates(),
                                   /*tile_shared=*/true);
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = bench::run_search(env, episodes);
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  report::Table table({"Stage", "Seconds", "Share %"});
  const auto add = [&](const std::string& name, double s) {
    table.add_row({name, report::format_fixed(s, 3),
                   report::format_fixed(100.0 * s / total, 1)});
  };
  add("decision (actor forward)", result.decision_seconds);
  add("simulator (hardware feedback)", result.simulator_seconds);
  add("learning (replay updates)", result.learning_seconds);
  add("total wall-clock", total);
  table.print(std::cout);
  std::cout << "Best reward found: " << result.best_reward << "\n";

  // Throughput of raw simulator evaluations, serial vs thread pool — the
  // component the paper attributes 97% of its search time to.
  constexpr int kEvals = 256;
  std::vector<std::vector<std::size_t>> configs;
  common::Rng rng(9);
  for (int i = 0; i < kEvals; ++i) {
    std::vector<std::size_t> actions(env.num_layers());
    for (auto& a : actions) a = rng.uniform_u64(env.num_actions());
    configs.push_back(std::move(actions));
  }
  const auto serial_start = std::chrono::steady_clock::now();
  for (const auto& c : configs) (void)env.evaluate(c);
  const double serial =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    serial_start)
          .count();
  common::ThreadPool pool;
  const auto par_start = std::chrono::steady_clock::now();
  pool.parallel_for(0, configs.size(),
                    [&](std::size_t i) { (void)env.evaluate(configs[i]); });
  const double parallel =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    par_start)
          .count();
  std::cout << "\nSimulator throughput (" << kEvals << " VGG16 evaluations): "
            << report::format_fixed(kEvals / serial, 0) << "/s serial, "
            << report::format_fixed(kEvals / parallel, 0) << "/s across "
            << pool.size() << " threads\n";
  return 0;
}
