// Shared helpers for the experiment-reproduction benches (one binary per
// paper table/figure). Each binary prints the same rows/series the paper
// reports; absolute values are model-dependent, shapes are the target
// (see EXPERIMENTS.md).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "autohet/baselines.hpp"
#include "autohet/search.hpp"
#include "nn/model_zoo.hpp"
#include "obs/session.hpp"
#include "report/table.hpp"
#include "reram/kernels/kernels.hpp"

namespace autohet::bench {

/// Episodes for RL searches, overridable as argv[1] (all bench binaries
/// accept it) so CI can run quick sweeps and full runs can match the
/// paper's 300 rounds. Also wires up the shared observability flags
/// (--trace-out/--metrics-out/--episode-log/--log-level anywhere on the
/// command line): the static session writes the files at process exit, so
/// the bench binaries gain telemetry without touching their positional
/// conventions.
inline int episodes_from_args(int argc, char** argv, int fallback) {
  static obs::ObsSession session(obs::options_from_argv(argc, argv));
  // `--kernel <name>` anywhere on the line forces the kernel ISA variant
  // (hard error on unknown/unsupported — a forced bench must not silently
  // measure a different code path).
  reram::kernels::apply_argv_override(argc, argv);
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  return fallback;
}

/// The paper's accelerator configuration (default DeviceParams, default
/// ideal FaultConfig, 4 PEs per tile), with the two knobs the benches
/// actually vary. Every bench builds its AcceleratorConfig through this
/// helper so a change to the shared baseline lands everywhere at once.
inline reram::AcceleratorConfig paper_accel(bool tile_shared = false,
                                            std::int64_t pes_per_tile = 4) {
  reram::AcceleratorConfig accel;
  accel.tile_shared = tile_shared;
  accel.pes_per_tile = pes_per_tile;
  return accel;
}

/// Builds an environment with the given candidates/allocation over a
/// network's mappable layers.
inline core::CrossbarEnv make_env(
    const nn::NetworkSpec& net, std::vector<mapping::CrossbarShape> candidates,
    bool tile_shared, std::int64_t pes_per_tile = 4) {
  core::EnvConfig cfg;
  cfg.candidates = std::move(candidates);
  cfg.accel = paper_accel(tile_shared, pes_per_tile);
  return core::CrossbarEnv(net.mappable_layers(), cfg);
}

/// Runs the AutoHet RL search and returns its result.
inline core::SearchResult run_search(const core::CrossbarEnv& env,
                                     int episodes, std::uint64_t seed = 1) {
  core::SearchConfig cfg;
  cfg.episodes = episodes;
  cfg.warmup_episodes = std::min(25, episodes / 4);
  cfg.seed = seed;
  core::AutoHetSearch search(env, cfg);
  return search.run();
}

/// Standard three-metric row for a configuration.
inline std::vector<std::string> metric_row(const std::string& name,
                                           const reram::NetworkReport& r,
                                           double energy_norm = 1.0) {
  return {name, report::format_fixed(r.utilization * 100.0, 1),
          report::format_fixed(r.energy.total_nj() / energy_norm, 2),
          report::format_sci(r.rue(), 3)};
}

inline void print_header(const std::string& title) {
  std::cout << "==== " << title << " ====\n";
}

}  // namespace autohet::bench
