// Reproduces Fig. 11: sensitivity of AutoHet's RUE on VGG16 to
//   (a) the ratio of square to rectangle crossbar candidates (2S3R/3S2R/4S1R),
//   (b) the number of crossbar candidates (2/4/8),
//   (c) the number of PEs per tile (8/16/32),
// each against the best homogeneous accelerator (Best-Homo).
//
// Usage: fig11_sensitivity [episodes]   (default 120 per search)
#include "bench_common.hpp"

using namespace autohet;

namespace {

void run_case(const std::string& label,
              std::vector<mapping::CrossbarShape> candidates,
              std::int64_t pes_per_tile, int episodes, report::Table& table) {
  const auto net = nn::vgg16();
  const auto homo_env = bench::make_env(net, mapping::square_candidates(),
                                        /*tile_shared=*/false, pes_per_tile);
  const auto best_homo = core::best_homogeneous(homo_env);
  const auto auto_env = bench::make_env(net, std::move(candidates),
                                        /*tile_shared=*/true, pes_per_tile);
  const auto result = bench::run_search(auto_env, episodes);
  table.add_row({label, report::format_sci(best_homo.report.rue(), 3),
                 report::format_sci(result.best_report.rue(), 3),
                 report::format_fixed(
                     result.best_report.rue() / best_homo.report.rue(), 2) +
                     "x"});
}

}  // namespace

int main(int argc, char** argv) {
  const int episodes = bench::episodes_from_args(argc, argv, 120);
  bench::print_header("Fig. 11 — sensitivity analysis (VGG16)");

  std::cout << "\n(a) ratio of SXBs to RXBs (5 candidates total):\n";
  report::Table ratio_table({"Mix", "Best-Homo RUE", "AUTOHET RUE", "Gain"});
  run_case("2S3R", mapping::mixed_candidates(2, 3), 4, episodes, ratio_table);
  run_case("3S2R", mapping::mixed_candidates(3, 2), 4, episodes, ratio_table);
  run_case("4S1R", mapping::mixed_candidates(4, 1), 4, episodes, ratio_table);
  ratio_table.print(std::cout);

  std::cout << "\n(b) number of crossbar candidates:\n";
  report::Table count_table(
      {"Candidates", "Best-Homo RUE", "AUTOHET RUE", "Gain"});
  const auto all = mapping::all_candidates();
  run_case("2", {all[all.size() - 1], all[all.size() - 3]}, 4, episodes,
           count_table);
  run_case("4", mapping::mixed_candidates(2, 2), 4, episodes, count_table);
  run_case("8", mapping::mixed_candidates(4, 4), 4, episodes, count_table);
  count_table.print(std::cout);

  std::cout << "\n(c) PEs per tile:\n";
  report::Table pe_table({"PEs/tile", "Best-Homo RUE", "AUTOHET RUE", "Gain"});
  for (std::int64_t pes : {8, 16, 32}) {
    run_case(std::to_string(pes), mapping::hybrid_candidates(), pes, episodes,
             pe_table);
  }
  pe_table.print(std::cout);

  std::cout << "\nPaper shape: AutoHet tops Best-Homo in every setting; more "
               "RXBs and more candidates widen the gap; larger tiles hurt "
               "the homogeneous baseline more.\n";
  return 0;
}
