#include "nn/model.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace autohet::nn {

Model::Model(NetworkSpec spec, common::Rng& rng) : spec_(std::move(spec)) {
  weight_of_layer_.assign(spec_.layers.size(), -1);
  for (std::size_t i = 0; i < spec_.layers.size(); ++i) {
    const LayerSpec& layer = spec_.layers[i];
    if (!is_mappable(layer.type)) continue;
    weight_of_layer_[i] = static_cast<std::int64_t>(weights_.size());
    tensor::Tensor w =
        (layer.type == LayerType::kConv)
            ? tensor::Tensor({layer.out_channels, layer.in_channels,
                              layer.kernel, layer.kernel})
            : tensor::Tensor({layer.out_channels, layer.in_channels});
    // He initialization keeps activations in a sane range through ReLU
    // stacks so 8-bit quantization retains signal.
    const float fan_in = static_cast<float>(layer.weight_rows());
    w.fill_normal(rng, 0.0f, std::sqrt(2.0f / fan_in));
    weights_.push_back(std::move(w));
  }
}

const tensor::Tensor& Model::weight(std::size_t mappable_index) const {
  AUTOHET_CHECK(mappable_index < weights_.size(), "weight index out of range");
  return weights_[mappable_index];
}

tensor::Tensor& Model::weight(std::size_t mappable_index) {
  AUTOHET_CHECK(mappable_index < weights_.size(), "weight index out of range");
  return weights_[mappable_index];
}

tensor::Tensor Model::forward_layer(std::size_t layer_index,
                                    const tensor::Tensor& input) const {
  AUTOHET_CHECK(layer_index < spec_.layers.size(), "layer index out of range");
  const LayerSpec& layer = spec_.layers[layer_index];
  switch (layer.type) {
    case LayerType::kConv: {
      const auto& w = weights_[static_cast<std::size_t>(
          weight_of_layer_[layer_index])];
      return tensor::conv2d(input, w, layer.stride, layer.pad);
    }
    case LayerType::kFullyConnected: {
      const auto& w = weights_[static_cast<std::size_t>(
          weight_of_layer_[layer_index])];
      return tensor::fully_connected(input, w);
    }
    case LayerType::kMaxPool:
      return tensor::maxpool2d(input, layer.kernel, layer.stride);
    case LayerType::kAvgPool:
      return tensor::avgpool2d(input, layer.kernel, layer.stride);
  }
  AUTOHET_CHECK(false, "unhandled layer type");
  return {};  // unreachable
}

tensor::Tensor Model::forward_graph(const Graph& graph,
                                    const tensor::Tensor& input) const {
  const NetworkSpec skel = graph.skeleton();
  AUTOHET_CHECK(skel.layers == spec_.layers,
                "graph '" + graph.name() +
                    "' skeleton does not match this model's layers");
  const std::vector<GraphNode>& nodes = graph.nodes();
  AUTOHET_CHECK(!nodes.empty(), "cannot run an empty graph");

  // Fan-out buffering: each producer's tensor is held until its last
  // consumer has read it, then released.
  std::vector<std::int64_t> uses(nodes.size(), 0);
  for (const GraphNode& node : nodes) {
    for (const std::int64_t in : node.inputs) {
      ++uses[static_cast<std::size_t>(in)];
    }
  }
  const std::int64_t out_id = graph.output_node();
  ++uses[static_cast<std::size_t>(out_id)];

  std::vector<tensor::Tensor> values(nodes.size());
  std::size_t layer_idx = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GraphNode& node = nodes[i];
    tensor::Tensor v;
    switch (node.kind) {
      case OpKind::kInput:
        AUTOHET_CHECK(input.numel() == node.shape.numel(),
                      "input tensor does not match graph input shape " +
                          node.shape.to_string());
        v = input;
        break;
      case OpKind::kLayer:
        v = forward_layer(layer_idx++,
                          values[static_cast<std::size_t>(node.inputs[0])]);
        if (node.layer.relu_after) tensor::relu_inplace(v);
        break;
      case OpKind::kResidualAdd: {
        const tensor::Tensor& b =
            values[static_cast<std::size_t>(node.inputs[1])];
        v = values[static_cast<std::size_t>(node.inputs[0])];
        for (std::int64_t j = 0; j < v.numel(); ++j) v[j] += b[j];
        break;
      }
      case OpKind::kActivation:
        v = values[static_cast<std::size_t>(node.inputs[0])];
        tensor::relu_inplace(v);
        break;
      case OpKind::kGlobalAvgPool: {
        const tensor::Tensor& x =
            values[static_cast<std::size_t>(node.inputs[0])];
        const std::int64_t channels = node.shape.channels;
        const std::int64_t plane = x.numel() / channels;
        v = tensor::Tensor({channels, 1, 1});
        for (std::int64_t c = 0; c < channels; ++c) {
          float sum = 0.0f;
          for (std::int64_t p = 0; p < plane; ++p) sum += x[c * plane + p];
          v[c] = sum / static_cast<float>(plane);
        }
        break;
      }
      case OpKind::kConcat: {
        v = tensor::Tensor(
            {node.shape.channels, node.shape.height, node.shape.width});
        std::int64_t off = 0;
        for (const std::int64_t in : node.inputs) {
          const tensor::Tensor& x = values[static_cast<std::size_t>(in)];
          for (std::int64_t j = 0; j < x.numel(); ++j) v[off + j] = x[j];
          off += x.numel();
        }
        break;
      }
    }
    values[i] = std::move(v);
    for (const std::int64_t in : node.inputs) {
      if (--uses[static_cast<std::size_t>(in)] == 0) {
        values[static_cast<std::size_t>(in)] = tensor::Tensor();
      }
    }
  }
  return std::move(values[static_cast<std::size_t>(out_id)]);
}

tensor::Tensor Model::forward(const tensor::Tensor& input) const {
  AUTOHET_CHECK(spec_.sequential_runnable,
                "network is not sequentially runnable (" + spec_.name + ")");
  tensor::Tensor x = input;
  for (std::size_t i = 0; i < spec_.layers.size(); ++i) {
    x = forward_layer(i, x);
    if (spec_.layers[i].relu_after) tensor::relu_inplace(x);
  }
  return x;
}

tensor::Tensor synthetic_image(common::Rng& rng, std::int64_t channels,
                               std::int64_t height, std::int64_t width) {
  tensor::Tensor img({channels, height, width});
  img.fill_uniform(rng, 0.0f, 1.0f);
  return img;
}

}  // namespace autohet::nn
