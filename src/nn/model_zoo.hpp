// The workload networks from the paper (Table 2) plus LeNet-5 for the
// functional-inference examples.
//
// AlexNet is paired with MNIST-shaped inputs (28x28x1), VGG16 with
// CIFAR-10-shaped inputs (32x32x3), and ResNet152 with ImageNet-shaped
// inputs (224x224x3), exactly as in §4.1 of the paper. Pooling layers are
// interleaved to propagate realistic feature-map sizes; they occupy no
// crossbars (handled by the tile's pooling module) but feed the `ins` state
// feature.
//
// ResNet152 is reconstructed from the paper's Table 2 inventory, which
// matches the genuine bottleneck architecture including the four downsample
// shortcuts (e.g. "40 C1-256" = 3 stage-2 expansions + 1 shortcut + 36
// stage-4 reductions). Layer counts per (kernel, Cout) bucket reproduce the
// table exactly: 155 CONV + 1 FC.
#pragma once

#include <string_view>
#include <vector>

#include "nn/graph.hpp"
#include "nn/layer.hpp"

namespace autohet::nn {

/// LeNet-5 on 32x32x1 inputs (2 CONV + 3 FC). Small enough to run the
/// functional crossbar datapath end-to-end in tests and examples.
NetworkSpec lenet5();

/// AlexNet per Table 2 on MNIST-shaped 28x28x1 inputs:
/// C3-64, C3-192, C3-384, 2xC3-256, F4096, F4096, F10.
NetworkSpec alexnet();

/// VGG16 per Table 2 on CIFAR-10-shaped 32x32x3 inputs:
/// 2C3-64, 2C3-128, 3C3-256, 6C3-512, F4096, F1000, F10 (16 weight layers).
NetworkSpec vgg16();

/// ResNet152 per Table 2 on ImageNet-shaped 224x224x3 inputs (155 CONV +
/// F1000, including bottleneck shortcuts). Not sequentially runnable.
NetworkSpec resnet152();

/// Looks a network up by case-insensitive name ("lenet5", "alexnet",
/// "vgg16", "resnet152"); throws std::invalid_argument for unknown names.
NetworkSpec network_by_name(std::string_view name);

/// All three paper workloads, in the order the paper reports them.
std::vector<NetworkSpec> paper_workloads();

/// ResNet152 as a true residual DAG: the same Table 2 bottleneck inventory
/// as resnet152(), but with the shortcut wiring, residual adds and
/// post-add ReLUs made explicit, and the final 7x7 average pool expressed
/// as a global_avg_pool graph op. The mappable layers appear in exactly
/// the order resnet152().mappable_layers() lists them (per block: reduce,
/// spatial, expand, then the first block's projection), so plans, reports
/// and tile allocations line up layer-for-layer with the legacy chain
/// skeleton; only relu_after differs (expand/projection convs feed the
/// residual add pre-activation).
Graph resnet152_graph();

/// A small CIFAR-shaped residual network (stem conv, one identity block,
/// one strided projection block, global average pool, FC-10). Small enough
/// to run the functional crossbar datapath end-to-end through the DAG
/// executor in tests and examples.
Graph cifar_resnet_graph();

/// Looks a graph up by case-insensitive name. "resnet152" and
/// "cifar-resnet" return the residual DAGs above; "lenet5", "alexnet" and
/// "vgg16" return their legacy chains wrapped via graph_from_network.
Graph graph_by_name(std::string_view name);

}  // namespace autohet::nn
