#include "nn/train.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "tensor/grad.hpp"
#include "tensor/ops.hpp"

namespace autohet::nn {

SyntheticDataset sample_from_prototypes(
    common::Rng& rng, std::int64_t count,
    const std::vector<tensor::Tensor>& prototypes, float noise) {
  AUTOHET_CHECK(count > 0, "dataset needs samples");
  AUTOHET_CHECK(prototypes.size() > 1, "need at least two class prototypes");
  AUTOHET_CHECK(noise >= 0.0f && noise <= 1.0f, "noise must be in [0, 1]");
  SyntheticDataset data;
  data.prototypes = prototypes;
  data.images.reserve(static_cast<std::size_t>(count));
  data.labels.reserve(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    const auto label =
        static_cast<std::int64_t>(rng.uniform_u64(prototypes.size()));
    tensor::Tensor img = prototypes[static_cast<std::size_t>(label)];
    for (std::int64_t p = 0; p < img.numel(); ++p) {
      img[p] = std::clamp(
          img[p] + static_cast<float>(rng.uniform(-noise, noise)), 0.0f,
          1.0f);
    }
    data.images.push_back(std::move(img));
    data.labels.push_back(label);
  }
  return data;
}

SyntheticDataset make_synthetic_dataset(common::Rng& rng, std::int64_t count,
                                        std::int64_t classes,
                                        std::int64_t channels,
                                        std::int64_t height,
                                        std::int64_t width, float noise) {
  AUTOHET_CHECK(classes > 1, "dataset needs at least two classes");
  // Class prototypes: random patterns, one per class.
  std::vector<tensor::Tensor> prototypes;
  prototypes.reserve(static_cast<std::size_t>(classes));
  for (std::int64_t c = 0; c < classes; ++c) {
    tensor::Tensor proto({channels, height, width});
    proto.fill_uniform(rng, 0.0f, 1.0f);
    prototypes.push_back(std::move(proto));
  }
  return sample_from_prototypes(rng, count, prototypes, noise);
}

float backprop_sample(const Model& model, const tensor::Tensor& image,
                      std::int64_t label,
                      std::vector<tensor::Tensor>& grads) {
  const NetworkSpec& spec = model.spec();
  AUTOHET_CHECK(spec.sequential_runnable,
                "training requires a sequentially runnable network");
  AUTOHET_CHECK(grads.size() == model.mappable_count(),
                "one gradient tensor per mappable layer required");

  // Forward pass with cached post-activation outputs.
  std::vector<tensor::Tensor> acts;
  acts.reserve(spec.layers.size() + 1);
  acts.push_back(image);
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    tensor::Tensor out = model.forward_layer(i, acts.back());
    if (spec.layers[i].relu_after) tensor::relu_inplace(out);
    acts.push_back(std::move(out));
  }

  auto [loss, grad] = tensor::softmax_cross_entropy(acts.back(), label);

  // Backward pass.
  std::int64_t mappable_idx = static_cast<std::int64_t>(model.mappable_count());
  for (std::size_t i = spec.layers.size(); i-- > 0;) {
    const LayerSpec& layer = spec.layers[i];
    const tensor::Tensor& input = acts[i];
    if (layer.relu_after) {
      tensor::relu_backward_inplace(acts[i + 1], grad);
    }
    switch (layer.type) {
      case LayerType::kConv: {
        --mappable_idx;
        const auto& w = model.weight(static_cast<std::size_t>(mappable_idx));
        auto conv_grads = tensor::conv2d_backward(
            input, w,
            grad.reshaped({layer.out_channels, layer.out_height(),
                           layer.out_width()}),
            layer.stride, layer.pad);
        tensor::add_inplace(grads[static_cast<std::size_t>(mappable_idx)],
                            conv_grads.grad_weight);
        grad = std::move(conv_grads.grad_input);
        break;
      }
      case LayerType::kFullyConnected: {
        --mappable_idx;
        const auto& w = model.weight(static_cast<std::size_t>(mappable_idx));
        auto fc_grads = tensor::fully_connected_backward(input, w, grad);
        tensor::add_inplace(grads[static_cast<std::size_t>(mappable_idx)],
                            fc_grads.grad_weight);
        grad = fc_grads.grad_input.reshaped(input.shape());
        break;
      }
      case LayerType::kMaxPool:
        grad = tensor::maxpool2d_backward(
            input,
            grad.reshaped({layer.out_channels, layer.out_height(),
                           layer.out_width()}),
            layer.kernel, layer.stride);
        break;
      case LayerType::kAvgPool:
        grad = tensor::avgpool2d_backward(
            input,
            grad.reshaped({layer.out_channels, layer.out_height(),
                           layer.out_width()}),
            layer.kernel, layer.stride);
        break;
    }
  }
  return loss;
}

TrainStats train(Model& model, const SyntheticDataset& data,
                 const TrainConfig& config, common::Rng& rng) {
  AUTOHET_CHECK(!data.images.empty(), "empty training set");
  AUTOHET_CHECK(config.epochs > 0 && config.learning_rate > 0.0f,
                "invalid training config");

  std::vector<tensor::Tensor> grads;
  std::vector<tensor::Tensor> velocity;
  for (std::size_t m = 0; m < model.mappable_count(); ++m) {
    grads.emplace_back(model.weight(m).shape());
    velocity.emplace_back(model.weight(m).shape());
  }

  TrainStats stats;
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with the caller's generator.
    for (std::size_t i = order.size(); i-- > 1;) {
      std::swap(order[i], order[rng.uniform_u64(i + 1)]);
    }
    double loss_sum = 0.0;
    std::int64_t correct = 0;
    for (const std::size_t s : order) {
      for (auto& g : grads) g.fill(0.0f);
      loss_sum += backprop_sample(model, data.images[s], data.labels[s],
                                  grads);
      if (tensor::argmax(model.forward(data.images[s])) == data.labels[s]) {
        ++correct;
      }
      // Optional per-sample gradient clipping (global L2 norm).
      if (config.grad_clip > 0.0f) {
        double norm_sq = 0.0;
        for (const auto& g : grads) {
          for (std::int64_t p = 0; p < g.numel(); ++p) {
            norm_sq += static_cast<double>(g[p]) * g[p];
          }
        }
        const double norm = std::sqrt(norm_sq);
        if (norm > config.grad_clip) {
          const float scale = config.grad_clip / static_cast<float>(norm);
          for (auto& g : grads) {
            for (std::int64_t p = 0; p < g.numel(); ++p) g[p] *= scale;
          }
        }
      }
      for (std::size_t m = 0; m < grads.size(); ++m) {
        tensor::Tensor& w = model.weight(m);
        tensor::Tensor& v = velocity[m];
        for (std::int64_t p = 0; p < w.numel(); ++p) {
          v[p] = config.momentum * v[p] - config.learning_rate * grads[m][p];
          w[p] += v[p];
        }
      }
    }
    stats.epoch_loss.push_back(
        static_cast<float>(loss_sum / static_cast<double>(data.size())));
    stats.epoch_accuracy.push_back(static_cast<float>(correct) /
                                   static_cast<float>(data.size()));
  }
  return stats;
}

double evaluate_accuracy(const Model& model, const SyntheticDataset& data) {
  return evaluate_accuracy_with(
      [&model](const tensor::Tensor& img) {
        return tensor::argmax(model.forward(img));
      },
      data);
}

}  // namespace autohet::nn
