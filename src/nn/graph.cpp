#include "nn/graph.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace autohet::nn {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("graph: " + what);
}

/// Output shape of a LayerSpec node given its (already validated) input.
TensorShape layer_output_shape(const LayerSpec& spec) {
  if (spec.type == LayerType::kFullyConnected) {
    return {spec.out_channels, 1, 1};
  }
  return {spec.out_channels, spec.out_height(), spec.out_width()};
}

/// Validates that `in` is an acceptable input shape for `spec`.
void check_layer_input(const LayerSpec& spec, const TensorShape& in,
                       const std::string& node_name) {
  if (spec.type == LayerType::kFullyConnected) {
    if (in.numel() != spec.in_channels) {
      fail("node '" + node_name + "': FC expects " +
           std::to_string(spec.in_channels) + " input values, producer has " +
           in.to_string());
    }
    return;
  }
  const TensorShape want{spec.in_channels, spec.in_height, spec.in_width};
  if (!(in == want)) {
    fail("node '" + node_name + "': layer expects input " + want.to_string() +
         ", producer has " + in.to_string());
  }
}

}  // namespace

const char* op_kind_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kInput:
      return "input";
    case OpKind::kLayer:
      return "layer";
    case OpKind::kResidualAdd:
      return "residual_add";
    case OpKind::kConcat:
      return "concat";
    case OpKind::kActivation:
      return "activation";
    case OpKind::kGlobalAvgPool:
      return "global_avg_pool";
  }
  return "?";
}

OpKind op_kind_from_name(const std::string& name) {
  for (const OpKind kind :
       {OpKind::kInput, OpKind::kLayer, OpKind::kResidualAdd, OpKind::kConcat,
        OpKind::kActivation, OpKind::kGlobalAvgPool}) {
    if (name == op_kind_name(kind)) return kind;
  }
  throw std::invalid_argument("unknown graph op kind: " + name);
}

std::string TensorShape::to_string() const {
  std::ostringstream oss;
  oss << channels << 'x' << height << 'x' << width;
  return oss.str();
}

bool is_mappable(const GraphNode& node) noexcept {
  return node.kind == OpKind::kLayer && is_mappable(node.layer.type);
}

std::int64_t Graph::edge_count() const {
  std::int64_t edges = 0;
  for (const GraphNode& node : nodes_) {
    edges += static_cast<std::int64_t>(node.inputs.size());
  }
  return edges;
}

std::vector<std::int64_t> Graph::mappable_node_ids() const {
  std::vector<std::int64_t> ids;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (is_mappable(nodes_[i])) ids.push_back(static_cast<std::int64_t>(i));
  }
  return ids;
}

std::vector<LayerSpec> Graph::mappable_layers() const {
  std::vector<LayerSpec> layers;
  for (const GraphNode& node : nodes_) {
    if (is_mappable(node)) layers.push_back(node.layer);
  }
  return layers;
}

std::int64_t Graph::output_node() const {
  std::vector<bool> consumed(nodes_.size(), false);
  for (const GraphNode& node : nodes_) {
    for (const std::int64_t in : node.inputs) {
      consumed[static_cast<std::size_t>(in)] = true;
    }
  }
  std::int64_t sink = -1;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (consumed[i]) continue;
    if (sink >= 0) fail("graph '" + name_ + "' has more than one sink");
    sink = static_cast<std::int64_t>(i);
  }
  if (sink < 0) fail("graph '" + name_ + "' has no sink");
  return sink;
}

bool Graph::is_chain() const {
  if (nodes_.empty() || nodes_[0].kind != OpKind::kInput) return false;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const GraphNode& node = nodes_[i];
    if (node.kind != OpKind::kLayer) return false;
    if (node.inputs.size() != 1 ||
        node.inputs[0] != static_cast<std::int64_t>(i) - 1) {
      return false;
    }
  }
  return true;
}

NetworkSpec Graph::linearize() const {
  if (!is_chain()) {
    fail("graph '" + name_ + "' is not chain-shaped; linearize() undefined");
  }
  NetworkSpec net;
  net.name = name_;
  net.sequential_runnable = true;
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    net.layers.push_back(nodes_[i].layer);
  }
  return net;
}

NetworkSpec Graph::skeleton() const {
  NetworkSpec net;
  net.name = name_;
  net.sequential_runnable = is_chain();
  for (const GraphNode& node : nodes_) {
    if (node.kind == OpKind::kLayer) net.layers.push_back(node.layer);
  }
  return net;
}

void Graph::validate() const {
  // Rebuild through the builder: it re-runs every structural and shape
  // check, and the result must reproduce this graph exactly.
  GraphBuilder builder(name_);
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const GraphNode& node = nodes_[i];
    if (!names.insert(node.name).second) {
      fail("duplicate node name '" + node.name + "'");
    }
    std::int64_t id = -1;
    switch (node.kind) {
      case OpKind::kInput:
        if (i != 0) fail("input node must be node 0");
        id = builder.input(node.shape.channels, node.shape.height,
                           node.shape.width);
        break;
      case OpKind::kLayer:
        if (node.inputs.size() != 1) fail("layer node needs exactly 1 input");
        id = builder.layer(node.inputs[0], node.layer);
        break;
      case OpKind::kResidualAdd:
        if (node.inputs.size() != 2) {
          fail("residual_add node needs exactly 2 inputs");
        }
        id = builder.residual_add(node.inputs[0], node.inputs[1]);
        break;
      case OpKind::kConcat:
        id = builder.concat(node.inputs);
        break;
      case OpKind::kActivation:
        if (node.inputs.size() != 1) {
          fail("activation node needs exactly 1 input");
        }
        id = builder.activation(node.inputs[0]);
        break;
      case OpKind::kGlobalAvgPool:
        if (node.inputs.size() != 1) {
          fail("global_avg_pool node needs exactly 1 input");
        }
        id = builder.global_avg_pool(node.inputs[0]);
        break;
    }
    builder.rename_last(node.name);
    if (id != static_cast<std::int64_t>(i)) fail("node ids not dense");
    if (!(builder.shape_of(id) == node.shape)) {
      fail("node '" + node.name + "' stored shape " + node.shape.to_string() +
           " does not match inferred " + builder.shape_of(id).to_string());
    }
  }
  const Graph rebuilt = builder.build();
  if (!(rebuilt == *this)) fail("stored graph differs from rebuilt graph");
}

GraphBuilder::GraphBuilder(std::string name) { graph_.name_ = std::move(name); }

const GraphNode& GraphBuilder::node_at(std::int64_t id,
                                       const char* role) const {
  if (id < 0 || id >= static_cast<std::int64_t>(graph_.nodes_.size())) {
    fail(std::string(role) + " references unknown node id " +
         std::to_string(id));
  }
  return graph_.nodes_[static_cast<std::size_t>(id)];
}

std::int64_t GraphBuilder::add_node(GraphNode node) {
  const std::int64_t id = static_cast<std::int64_t>(graph_.nodes_.size());
  if (node.name.empty()) {
    node.name = std::string(op_kind_name(node.kind)) + "_" +
                std::to_string(id);
  }
  graph_.nodes_.push_back(std::move(node));
  return id;
}

std::int64_t GraphBuilder::input(std::int64_t channels, std::int64_t height,
                                 std::int64_t width) {
  if (!graph_.nodes_.empty()) fail("input must be the first node");
  if (channels <= 0 || height <= 0 || width <= 0) {
    fail("input shape must be positive");
  }
  GraphNode node;
  node.kind = OpKind::kInput;
  node.shape = {channels, height, width};
  return add_node(std::move(node));
}

std::int64_t GraphBuilder::layer(std::int64_t from, const LayerSpec& spec) {
  const GraphNode& producer = node_at(from, "layer");
  GraphNode node;
  node.kind = OpKind::kLayer;
  node.layer = spec;
  node.inputs = {from};
  node.name = std::string(op_kind_name(OpKind::kLayer)) + "_" +
              std::to_string(graph_.nodes_.size());
  check_layer_input(spec, producer.shape, node.name);
  node.shape = layer_output_shape(spec);
  return add_node(std::move(node));
}

std::int64_t GraphBuilder::residual_add(std::int64_t a, std::int64_t b) {
  const GraphNode& lhs = node_at(a, "residual_add");
  const GraphNode& rhs = node_at(b, "residual_add");
  if (!(lhs.shape == rhs.shape)) {
    fail("residual_add inputs disagree: " + lhs.shape.to_string() + " vs " +
         rhs.shape.to_string());
  }
  GraphNode node;
  node.kind = OpKind::kResidualAdd;
  node.inputs = {a, b};
  node.shape = lhs.shape;
  return add_node(std::move(node));
}

std::int64_t GraphBuilder::concat(const std::vector<std::int64_t>& from) {
  if (from.size() < 2) fail("concat needs at least 2 inputs");
  TensorShape shape = node_at(from[0], "concat").shape;
  for (std::size_t i = 1; i < from.size(); ++i) {
    const TensorShape& next = node_at(from[i], "concat").shape;
    if (next.height != shape.height || next.width != shape.width) {
      fail("concat inputs disagree on spatial size: " + shape.to_string() +
           " vs " + next.to_string());
    }
    shape.channels += next.channels;
  }
  GraphNode node;
  node.kind = OpKind::kConcat;
  node.inputs = from;
  node.shape = shape;
  return add_node(std::move(node));
}

std::int64_t GraphBuilder::activation(std::int64_t from) {
  const GraphNode& producer = node_at(from, "activation");
  GraphNode node;
  node.kind = OpKind::kActivation;
  node.inputs = {from};
  node.shape = producer.shape;
  return add_node(std::move(node));
}

std::int64_t GraphBuilder::global_avg_pool(std::int64_t from) {
  const GraphNode& producer = node_at(from, "global_avg_pool");
  GraphNode node;
  node.kind = OpKind::kGlobalAvgPool;
  node.inputs = {from};
  node.shape = {producer.shape.channels, 1, 1};
  return add_node(std::move(node));
}

GraphBuilder& GraphBuilder::rename_last(std::string name) {
  if (graph_.nodes_.empty()) fail("rename_last on empty graph");
  if (name.empty()) fail("node name must be non-empty");
  graph_.nodes_.back().name = std::move(name);
  return *this;
}

const TensorShape& GraphBuilder::shape_of(std::int64_t node) const {
  return node_at(node, "shape_of").shape;
}

Graph GraphBuilder::build() const {
  if (graph_.nodes_.empty() || graph_.nodes_[0].kind != OpKind::kInput) {
    fail("graph '" + graph_.name_ + "' must start with an input node");
  }
  graph_.output_node();  // throws unless there is exactly one sink
  return graph_;
}

Graph graph_from_network(const NetworkSpec& net) {
  if (net.layers.empty()) {
    throw std::invalid_argument("graph_from_network: empty network " +
                                net.name);
  }
  GraphBuilder builder(net.name);
  const LayerSpec& first = net.layers.front();
  std::int64_t prev =
      builder.input(first.in_channels, first.in_height, first.in_width);
  for (const LayerSpec& spec : net.layers) {
    prev = builder.layer(prev, spec);
  }
  return builder.build();
}

void write_graph_dot(std::ostream& out, const Graph& graph) {
  out << "digraph \"" << graph.name() << "\" {\n"
      << "  rankdir=TB;\n"
      << "  node [shape=box, fontname=\"monospace\"];\n";
  const std::vector<GraphNode>& nodes = graph.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GraphNode& node = nodes[i];
    out << "  n" << i << " [label=\"" << node.name << "\\n";
    if (node.kind == OpKind::kLayer) {
      out << node.layer.to_string();
    } else {
      out << op_kind_name(node.kind);
    }
    out << "\\n" << node.shape.to_string() << "\"";
    if (is_mappable(node)) out << ", style=filled, fillcolor=lightblue";
    out << "];\n";
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (const std::int64_t in : nodes[i].inputs) {
      out << "  n" << in << " -> n" << i << ";\n";
    }
  }
  out << "}\n";
}

}  // namespace autohet::nn
