// DAG computation-graph IR.
//
// The flat NetworkSpec chain describes only the conv/FC skeleton of a
// network; residual adds, branches, concats and standalone nonlinearities
// are invisible to it. The Graph here is a small immutable DAG whose nodes
// are either the existing mappable LayerSpecs (kLayer — conv, FC, and the
// pooling layers that ride along in a NetworkSpec) or non-mappable graph
// ops (residual add, channel concat, elementwise activation, global average
// pool). Nodes are stored in topological order by construction: the
// GraphBuilder only lets a node reference already-built nodes, and infers
// and validates the output shape of every node as it is added.
//
// Chain-shaped graphs (kInput followed by a single path of kLayer nodes)
// are exactly today's NetworkSpec chains: linearize() recovers the
// NetworkSpec, and every consumer (mapping, hardware model, functional sim,
// scheduler) is required to treat such graphs bit-identically to the
// legacy linear path. Branchy graphs add non-mappable ops that the
// hardware model accounts NEON-style (see reram/hardware_model.hpp) and
// the functional simulator executes with exact integer residual adds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace autohet::nn {

enum class OpKind {
  kInput,          ///< graph entry; carries the input tensor shape
  kLayer,          ///< an existing LayerSpec (conv / FC / pooling)
  kResidualAdd,    ///< elementwise sum of two same-shape tensors
  kConcat,         ///< channel-axis concatenation of 2+ tensors
  kActivation,     ///< standalone elementwise ReLU
  kGlobalAvgPool,  ///< spatial mean over the whole feature map -> Cx1x1
};

/// Stable lower-snake name used in JSON, Graphviz and reports.
const char* op_kind_name(OpKind kind) noexcept;
/// Inverse of op_kind_name; throws std::invalid_argument on unknown names.
OpKind op_kind_from_name(const std::string& name);

/// CHW shape of a node's output tensor.
struct TensorShape {
  std::int64_t channels = 0;
  std::int64_t height = 0;
  std::int64_t width = 0;

  std::int64_t numel() const noexcept { return channels * height * width; }
  std::string to_string() const;
  bool operator==(const TensorShape&) const = default;
};

struct GraphNode {
  OpKind kind = OpKind::kInput;
  std::string name;          ///< unique, deterministic (builder-assigned)
  LayerSpec layer;           ///< meaningful only for kLayer nodes
  std::vector<std::int64_t> inputs;  ///< producer node ids (all < this id)
  TensorShape shape;         ///< inferred output shape

  bool operator==(const GraphNode&) const = default;
};

/// True for nodes whose weights occupy crossbars.
bool is_mappable(const GraphNode& node) noexcept;

class Graph {
 public:
  Graph() = default;

  const std::string& name() const noexcept { return name_; }
  const std::vector<GraphNode>& nodes() const noexcept { return nodes_; }
  std::int64_t node_count() const noexcept {
    return static_cast<std::int64_t>(nodes_.size());
  }
  /// Total number of producer->consumer edges.
  std::int64_t edge_count() const;

  /// Node ids of the mappable (conv/FC) nodes, in topological order. This
  /// order is the layer order every mapping/plan/report consumer sees.
  std::vector<std::int64_t> mappable_node_ids() const;
  /// The mappable LayerSpecs themselves, in topological order.
  std::vector<LayerSpec> mappable_layers() const;

  /// The unique sink (node consumed by no other node).
  std::int64_t output_node() const;

  /// True when the graph is kInput followed by a single unbranched path of
  /// kLayer nodes — i.e. exactly a legacy NetworkSpec chain.
  bool is_chain() const;

  /// Recovers the legacy NetworkSpec for a chain-shaped graph (the exact
  /// inverse of graph_from_network). Throws std::invalid_argument when the
  /// graph is not a chain.
  NetworkSpec linearize() const;

  /// The conv/FC/pool skeleton: all kLayer specs in topological order, as a
  /// NetworkSpec. sequential_runnable is true only for chain graphs.
  NetworkSpec skeleton() const;

  /// Re-runs the builder's structural and shape checks over the stored
  /// nodes; throws std::invalid_argument on any violation. Used after
  /// deserialization.
  void validate() const;

  bool operator==(const Graph&) const = default;

 private:
  friend class GraphBuilder;
  std::string name_;
  std::vector<GraphNode> nodes_;
};

/// Builds a Graph incrementally in topological order. Every method returns
/// the id of the node it created; shape inference and validation happen at
/// each step, so an invalid wiring throws immediately with the offending
/// node named.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::string name);

  /// The graph entry. Exactly one input node is required.
  std::int64_t input(std::int64_t channels, std::int64_t height,
                     std::int64_t width);
  /// A LayerSpec node (conv / FC / pooling). The producer's shape must
  /// match the spec's expected input geometry.
  std::int64_t layer(std::int64_t from, const LayerSpec& spec);
  /// Elementwise sum; both producers must have identical shapes.
  std::int64_t residual_add(std::int64_t a, std::int64_t b);
  /// Channel concat; producers must agree on height and width.
  std::int64_t concat(const std::vector<std::int64_t>& from);
  /// Standalone elementwise ReLU.
  std::int64_t activation(std::int64_t from);
  /// Spatial mean over the whole feature map: CxHxW -> Cx1x1.
  std::int64_t global_avg_pool(std::int64_t from);

  /// Overrides the auto-assigned name of the most recently added node.
  GraphBuilder& rename_last(std::string name);

  const TensorShape& shape_of(std::int64_t node) const;

  /// Finalizes the graph. Throws unless the graph has exactly one sink.
  Graph build() const;

 private:
  std::int64_t add_node(GraphNode node);
  const GraphNode& node_at(std::int64_t id, const char* role) const;

  Graph graph_;
};

/// Wraps a legacy sequential NetworkSpec as a chain graph (kInput followed
/// by one kLayer node per layer). linearize() of the result recovers `net`.
Graph graph_from_network(const NetworkSpec& net);

/// Deterministic Graphviz rendering (stable node ids, names, shapes).
void write_graph_dot(std::ostream& out, const Graph& graph);

}  // namespace autohet::nn
