// Human-readable network summaries (torchsummary-style).
#pragma once

#include <iosfwd>

#include "nn/layer.hpp"

namespace autohet::nn {

/// Prints a per-layer table: index, layer, output shape, weights, MVMs per
/// inference, followed by totals.
void describe(const NetworkSpec& net, std::ostream& os);

}  // namespace autohet::nn
