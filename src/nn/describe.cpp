#include "nn/describe.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace autohet::nn {

void describe(const NetworkSpec& net, std::ostream& os) {
  os << net.name << " (" << net.layers.size() << " layers, "
     << net.mappable_layers().size() << " mappable, "
     << (net.sequential_runnable ? "sequential" : "non-sequential")
     << ")\n";
  os << std::left << std::setw(5) << "#" << std::setw(30) << "layer"
     << std::setw(16) << "output" << std::setw(14) << "weights"
     << std::setw(10) << "MVMs" << '\n';
  os << std::string(75, '-') << '\n';
  std::int64_t total_weights = 0;
  std::int64_t total_mvms = 0;
  int mappable_index = 0;
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const LayerSpec& layer = net.layers[i];
    std::ostringstream out_shape;
    out_shape << layer.out_channels << 'x' << layer.out_height() << 'x'
              << layer.out_width();
    const bool mappable = is_mappable(layer.type);
    std::ostringstream idx;
    if (mappable) {
      idx << 'L' << ++mappable_index;
    } else {
      idx << '-';
    }
    os << std::left << std::setw(5) << idx.str() << std::setw(30)
       << layer.to_string() << std::setw(16) << out_shape.str()
       << std::setw(14) << (mappable ? layer.weight_count() : 0)
       << std::setw(10) << (mappable ? layer.mvm_count() : 0) << '\n';
    if (mappable) {
      total_weights += layer.weight_count();
      total_mvms += layer.mvm_count();
    }
  }
  os << std::string(75, '-') << '\n';
  os << "total weights: " << total_weights
     << "   total MVMs per inference: " << total_mvms << '\n';
}

}  // namespace autohet::nn
