#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace autohet::nn {

QuantizedWeights quantize_weights(const tensor::Tensor& t, int bits) {
  AUTOHET_CHECK(bits >= 2 && bits <= 8, "weight bits must be in [2, 8]");
  QuantizedWeights q;
  q.shape = t.shape();
  q.bits = bits;
  const float qmax = static_cast<float>((1 << (bits - 1)) - 1);
  const float abs_max = t.abs_max();
  q.scale = (abs_max > 0.0f) ? abs_max / qmax : 1.0f;
  q.values.resize(static_cast<std::size_t>(t.numel()));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float scaled = t[i] / q.scale;
    const float clamped = std::clamp(std::round(scaled), -qmax, qmax);
    q.values[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(clamped);
  }
  return q;
}

QuantizedActivations quantize_activations(const tensor::Tensor& t, int bits) {
  AUTOHET_CHECK(bits >= 2 && bits <= 8, "activation bits must be in [2, 8]");
  QuantizedActivations q;
  q.shape = t.shape();
  q.bits = bits;
  const float qmax = static_cast<float>((1 << bits) - 1);
  float vmax = 0.0f;
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    AUTOHET_CHECK(t[i] >= 0.0f, "activation quantization expects x >= 0");
    vmax = std::max(vmax, t[i]);
  }
  q.scale = (vmax > 0.0f) ? vmax / qmax : 1.0f;
  q.values.resize(static_cast<std::size_t>(t.numel()));
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    const float clamped = std::clamp(std::round(t[i] / q.scale), 0.0f, qmax);
    q.values[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(clamped);
  }
  return q;
}

tensor::Tensor dequantize(const QuantizedWeights& q) {
  tensor::Tensor t(q.shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(q.values[static_cast<std::size_t>(i)]) * q.scale;
  }
  return t;
}

tensor::Tensor dequantize(const QuantizedActivations& q) {
  tensor::Tensor t(q.shape);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(q.values[static_cast<std::size_t>(i)]) * q.scale;
  }
  return t;
}

std::vector<std::uint8_t> activation_bit_plane(const QuantizedActivations& q,
                                               int bit) {
  AUTOHET_CHECK(bit >= 0 && bit < q.bits, "bit plane out of range");
  std::vector<std::uint8_t> plane(q.values.size());
  for (std::size_t i = 0; i < q.values.size(); ++i) {
    plane[i] = static_cast<std::uint8_t>((q.values[i] >> bit) & 1u);
  }
  return plane;
}

}  // namespace autohet::nn
