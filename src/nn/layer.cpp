#include "nn/layer.hpp"

#include <sstream>

#include "common/error.hpp"

namespace autohet::nn {

std::string LayerSpec::to_string() const {
  std::ostringstream oss;
  switch (type) {
    case LayerType::kConv:
      oss << "Conv" << kernel << 'x' << kernel << ' ' << in_channels << "->"
          << out_channels << " s" << stride << " @" << in_height << 'x'
          << in_width;
      break;
    case LayerType::kFullyConnected:
      oss << "FC " << in_channels << "->" << out_channels;
      break;
    case LayerType::kMaxPool:
      oss << "MaxPool" << kernel << 'x' << kernel << " s" << stride << " @"
          << in_height << 'x' << in_width;
      break;
    case LayerType::kAvgPool:
      oss << "AvgPool" << kernel << 'x' << kernel << " s" << stride << " @"
          << in_height << 'x' << in_width;
      break;
  }
  return oss.str();
}

std::vector<std::size_t> NetworkSpec::mappable_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    if (is_mappable(layers[i].type)) out.push_back(i);
  }
  return out;
}

std::vector<LayerSpec> NetworkSpec::mappable_layers() const {
  std::vector<LayerSpec> out;
  for (const auto& layer : layers) {
    if (is_mappable(layer.type)) out.push_back(layer);
  }
  return out;
}

std::int64_t NetworkSpec::total_weights() const {
  std::int64_t total = 0;
  for (const auto& layer : layers) {
    if (is_mappable(layer.type)) total += layer.weight_count();
  }
  return total;
}

LayerSpec make_conv(std::int64_t in_c, std::int64_t out_c, std::int64_t k,
                    std::int64_t stride, std::int64_t pad, std::int64_t in_h,
                    std::int64_t in_w, bool relu) {
  AUTOHET_CHECK(in_c > 0 && out_c > 0 && k > 0 && stride > 0 && pad >= 0 &&
                    in_h > 0 && in_w > 0,
                "invalid conv spec");
  LayerSpec s;
  s.type = LayerType::kConv;
  s.in_channels = in_c;
  s.out_channels = out_c;
  s.kernel = k;
  s.stride = stride;
  s.pad = pad;
  s.in_height = in_h;
  s.in_width = in_w;
  s.relu_after = relu;
  AUTOHET_CHECK(s.out_height() > 0 && s.out_width() > 0,
                "conv output collapses to zero");
  return s;
}

LayerSpec make_fc(std::int64_t in_n, std::int64_t out_n, bool relu) {
  AUTOHET_CHECK(in_n > 0 && out_n > 0, "invalid fc spec");
  LayerSpec s;
  s.type = LayerType::kFullyConnected;
  s.in_channels = in_n;
  s.out_channels = out_n;
  s.kernel = 1;
  s.stride = 1;
  s.pad = 0;
  s.in_height = 1;
  s.in_width = 1;
  s.relu_after = relu;
  return s;
}

namespace {
LayerSpec make_pool(LayerType type, std::int64_t channels, std::int64_t window,
                    std::int64_t stride, std::int64_t in_h, std::int64_t in_w) {
  AUTOHET_CHECK(channels > 0 && window > 0 && stride > 0 && in_h >= window &&
                    in_w >= window,
                "invalid pool spec");
  LayerSpec s;
  s.type = type;
  s.in_channels = channels;
  s.out_channels = channels;
  s.kernel = window;
  s.stride = stride;
  s.pad = 0;
  s.in_height = in_h;
  s.in_width = in_w;
  s.relu_after = false;
  return s;
}
}  // namespace

LayerSpec make_maxpool(std::int64_t channels, std::int64_t window,
                       std::int64_t stride, std::int64_t in_h,
                       std::int64_t in_w) {
  return make_pool(LayerType::kMaxPool, channels, window, stride, in_h, in_w);
}

LayerSpec make_avgpool(std::int64_t channels, std::int64_t window,
                       std::int64_t stride, std::int64_t in_h,
                       std::int64_t in_w) {
  return make_pool(LayerType::kAvgPool, channels, window, stride, in_h, in_w);
}

}  // namespace autohet::nn
