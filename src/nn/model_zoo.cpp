#include "nn/model_zoo.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace autohet::nn {

NetworkSpec lenet5() {
  NetworkSpec net;
  net.name = "LeNet5";
  std::int64_t h = 32, w = 32;
  net.layers.push_back(make_conv(1, 6, 5, 1, 0, h, w));
  h = 28;
  w = 28;
  net.layers.push_back(make_maxpool(6, 2, 2, h, w));
  h = 14;
  w = 14;
  net.layers.push_back(make_conv(6, 16, 5, 1, 0, h, w));
  h = 10;
  w = 10;
  net.layers.push_back(make_maxpool(16, 2, 2, h, w));
  net.layers.push_back(make_fc(16 * 5 * 5, 120));
  net.layers.push_back(make_fc(120, 84));
  net.layers.push_back(make_fc(84, 10, /*relu=*/false));
  return net;
}

NetworkSpec alexnet() {
  NetworkSpec net;
  net.name = "AlexNet";
  // MNIST-shaped input: 1x28x28 (§4.1: "AlexNet on MNIST").
  net.layers.push_back(make_conv(1, 64, 3, 1, 1, 28, 28));
  net.layers.push_back(make_maxpool(64, 2, 2, 28, 28));
  net.layers.push_back(make_conv(64, 192, 3, 1, 1, 14, 14));
  net.layers.push_back(make_maxpool(192, 2, 2, 14, 14));
  net.layers.push_back(make_conv(192, 384, 3, 1, 1, 7, 7));
  net.layers.push_back(make_conv(384, 256, 3, 1, 1, 7, 7));
  net.layers.push_back(make_conv(256, 256, 3, 1, 1, 7, 7));
  net.layers.push_back(make_maxpool(256, 2, 2, 7, 7));
  net.layers.push_back(make_fc(256 * 3 * 3, 4096));
  net.layers.push_back(make_fc(4096, 4096));
  net.layers.push_back(make_fc(4096, 10, /*relu=*/false));
  return net;
}

NetworkSpec vgg16() {
  NetworkSpec net;
  net.name = "VGG16";
  // CIFAR-10-shaped input: 3x32x32 (§4.1: "VGG16 on CIFAR-10").
  struct Block {
    int convs;
    std::int64_t out_c;
  };
  static constexpr Block kBlocks[] = {{2, 64}, {2, 128}, {3, 256}, {3, 512},
                                      {3, 512}};
  std::int64_t c = 3, h = 32, w = 32;
  for (const auto& block : kBlocks) {
    for (int i = 0; i < block.convs; ++i) {
      net.layers.push_back(make_conv(c, block.out_c, 3, 1, 1, h, w));
      c = block.out_c;
    }
    net.layers.push_back(make_maxpool(c, 2, 2, h, w));
    h /= 2;
    w /= 2;
  }
  net.layers.push_back(make_fc(512, 4096));
  net.layers.push_back(make_fc(4096, 1000));
  net.layers.push_back(make_fc(1000, 10, /*relu=*/false));
  return net;
}

namespace {

/// Appends one bottleneck stage of ResNet152. Each block is C1 (reduce),
/// C3 (spatial, carries the stage's downsampling stride in its first block),
/// C1 (expand); the first block also carries a C1 projection shortcut.
void append_bottleneck_stage(NetworkSpec& net, std::int64_t& in_c,
                             std::int64_t& h, std::int64_t& w,
                             std::int64_t width, int blocks,
                             std::int64_t first_stride) {
  const std::int64_t out_c = 4 * width;
  for (int b = 0; b < blocks; ++b) {
    const std::int64_t stride = (b == 0) ? first_stride : 1;
    net.layers.push_back(make_conv(in_c, width, 1, 1, 0, h, w));
    net.layers.push_back(make_conv(width, width, 3, stride, 1, h, w));
    const std::int64_t oh = (h + 2 - 3) / stride + 1;
    const std::int64_t ow = (w + 2 - 3) / stride + 1;
    net.layers.push_back(make_conv(width, out_c, 1, 1, 0, oh, ow));
    if (b == 0) {
      // Projection shortcut for the dimension change.
      net.layers.push_back(make_conv(in_c, out_c, 1, stride, 0, h, w));
    }
    h = oh;
    w = ow;
    in_c = out_c;
  }
}

}  // namespace

NetworkSpec resnet152() {
  NetworkSpec net;
  net.name = "ResNet152";
  net.sequential_runnable = false;  // residual adds are not sequential
  // ImageNet-shaped input: 3x224x224 (§4.1: "ResNet152 on ImageNet").
  std::int64_t c = 3, h = 224, w = 224;
  net.layers.push_back(make_conv(c, 64, 7, 2, 3, h, w));
  c = 64;
  h = 112;
  w = 112;
  net.layers.push_back(make_maxpool(c, 2, 2, h, w));
  h = 56;
  w = 56;
  append_bottleneck_stage(net, c, h, w, /*width=*/64, /*blocks=*/3, 1);
  append_bottleneck_stage(net, c, h, w, /*width=*/128, /*blocks=*/8, 2);
  append_bottleneck_stage(net, c, h, w, /*width=*/256, /*blocks=*/36, 2);
  append_bottleneck_stage(net, c, h, w, /*width=*/512, /*blocks=*/3, 2);
  net.layers.push_back(make_avgpool(c, 7, 7, h, w));
  net.layers.push_back(make_fc(2048, 1000, /*relu=*/false));
  return net;
}

namespace {

/// Appends one residual bottleneck stage to the graph builder. The conv
/// insertion order (reduce, spatial, expand, then the first block's
/// projection) matches append_bottleneck_stage exactly, so the graph's
/// mappable layer order equals the legacy chain's.
std::int64_t append_graph_bottleneck_stage(GraphBuilder& builder,
                                           std::int64_t in, std::int64_t& in_c,
                                           std::int64_t& h, std::int64_t& w,
                                           std::int64_t width, int blocks,
                                           std::int64_t first_stride) {
  const std::int64_t out_c = 4 * width;
  for (int b = 0; b < blocks; ++b) {
    const std::int64_t stride = (b == 0) ? first_stride : 1;
    const std::int64_t reduce =
        builder.layer(in, make_conv(in_c, width, 1, 1, 0, h, w));
    const std::int64_t spatial =
        builder.layer(reduce, make_conv(width, width, 3, stride, 1, h, w));
    const std::int64_t oh = (h + 2 - 3) / stride + 1;
    const std::int64_t ow = (w + 2 - 3) / stride + 1;
    const std::int64_t expand = builder.layer(
        spatial, make_conv(width, out_c, 1, 1, 0, oh, ow, /*relu=*/false));
    std::int64_t shortcut = in;
    if (b == 0) {
      shortcut = builder.layer(
          in, make_conv(in_c, out_c, 1, stride, 0, h, w, /*relu=*/false));
    }
    in = builder.activation(builder.residual_add(expand, shortcut));
    h = oh;
    w = ow;
    in_c = out_c;
  }
  return in;
}

}  // namespace

Graph resnet152_graph() {
  GraphBuilder builder("ResNet152");
  std::int64_t c = 3, h = 224, w = 224;
  std::int64_t cur = builder.input(c, h, w);
  cur = builder.layer(cur, make_conv(c, 64, 7, 2, 3, h, w));
  c = 64;
  h = 112;
  w = 112;
  cur = builder.layer(cur, make_maxpool(c, 2, 2, h, w));
  h = 56;
  w = 56;
  cur = append_graph_bottleneck_stage(builder, cur, c, h, w, /*width=*/64,
                                      /*blocks=*/3, 1);
  cur = append_graph_bottleneck_stage(builder, cur, c, h, w, /*width=*/128,
                                      /*blocks=*/8, 2);
  cur = append_graph_bottleneck_stage(builder, cur, c, h, w, /*width=*/256,
                                      /*blocks=*/36, 2);
  cur = append_graph_bottleneck_stage(builder, cur, c, h, w, /*width=*/512,
                                      /*blocks=*/3, 2);
  cur = builder.global_avg_pool(cur);
  builder.layer(cur, make_fc(2048, 1000, /*relu=*/false));
  return builder.build();
}

Graph cifar_resnet_graph() {
  GraphBuilder builder("CifarResNet");
  std::int64_t cur = builder.input(3, 32, 32);
  cur = builder.layer(cur, make_conv(3, 16, 3, 1, 1, 32, 32));
  // Identity block: two 3x3 convs, shortcut straight from the stem.
  {
    const std::int64_t c1 =
        builder.layer(cur, make_conv(16, 16, 3, 1, 1, 32, 32));
    const std::int64_t c2 = builder.layer(
        c1, make_conv(16, 16, 3, 1, 1, 32, 32, /*relu=*/false));
    cur = builder.activation(builder.residual_add(c2, cur));
  }
  // Downsampling block: strided 3x3 pair with a 1x1 projection shortcut.
  {
    const std::int64_t c1 =
        builder.layer(cur, make_conv(16, 32, 3, 2, 1, 32, 32));
    const std::int64_t c2 = builder.layer(
        c1, make_conv(32, 32, 3, 1, 1, 16, 16, /*relu=*/false));
    const std::int64_t proj = builder.layer(
        cur, make_conv(16, 32, 1, 2, 0, 32, 32, /*relu=*/false));
    cur = builder.activation(builder.residual_add(c2, proj));
  }
  cur = builder.global_avg_pool(cur);
  builder.layer(cur, make_fc(32, 10, /*relu=*/false));
  return builder.build();
}

Graph graph_by_name(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  if (lower == "resnet152" || lower == "resnet") return resnet152_graph();
  if (lower == "cifar-resnet" || lower == "cifar_resnet" ||
      lower == "cifarresnet") {
    return cifar_resnet_graph();
  }
  return graph_from_network(network_by_name(lower));
}

NetworkSpec network_by_name(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  if (lower == "lenet5" || lower == "lenet") return lenet5();
  if (lower == "alexnet") return alexnet();
  if (lower == "vgg16" || lower == "vgg") return vgg16();
  if (lower == "resnet152" || lower == "resnet") return resnet152();
  AUTOHET_CHECK(false, "unknown network: " + lower);
  return {};  // unreachable
}

std::vector<NetworkSpec> paper_workloads() {
  return {alexnet(), vgg16(), resnet152()};
}

}  // namespace autohet::nn
