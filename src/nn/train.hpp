// Training support for the reference models.
//
// The paper deploys pre-trained networks; since the original datasets and
// checkpoints are unavailable offline, we substitute a synthetic labeled
// classification task (class-conditional prototype patterns plus noise) and
// train the model on it with SGD + momentum. Deployment examples then
// measure real accuracy — float vs the quantized simulated fabric — instead
// of comparing logits of random weights.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/model.hpp"

namespace autohet::nn {

/// A labeled synthetic classification dataset: per-class prototype patterns
/// with additive noise, linearly separable enough for small CNNs to learn
/// quickly and deterministically.
struct SyntheticDataset {
  std::vector<tensor::Tensor> images;  ///< CHW, values clamped to [0, 1]
  std::vector<std::int64_t> labels;
  /// The class prototypes the samples were drawn from; pass them to
  /// sample_from_prototypes to draw a held-out set of the same task.
  std::vector<tensor::Tensor> prototypes;

  std::size_t size() const noexcept { return images.size(); }
};

/// Generates `count` samples over `classes` fresh class prototypes of shape
/// c×h×w. `noise` is the per-pixel uniform noise amplitude (0.25 keeps the
/// task easy, 0.5 makes it genuinely hard).
SyntheticDataset make_synthetic_dataset(common::Rng& rng,
                                        std::int64_t count,
                                        std::int64_t classes,
                                        std::int64_t channels,
                                        std::int64_t height,
                                        std::int64_t width,
                                        float noise = 0.25f);

/// Draws `count` fresh samples from existing prototypes — a held-out set
/// of the same classification task.
SyntheticDataset sample_from_prototypes(
    common::Rng& rng, std::int64_t count,
    const std::vector<tensor::Tensor>& prototypes, float noise = 0.25f);

struct TrainConfig {
  int epochs = 3;
  float learning_rate = 0.01f;
  float momentum = 0.9f;
  /// Gradient-norm clip per sample (0 disables). Keeps fresh He-initialized
  /// nets from diverging on the first noisy samples.
  float grad_clip = 5.0f;
};

struct TrainStats {
  std::vector<float> epoch_loss;      ///< mean per-sample loss per epoch
  std::vector<float> epoch_accuracy;  ///< train accuracy per epoch
};

/// One forward+backward pass for a single sample; returns the loss and
/// accumulates parameter gradients into `grads` (same shapes as the model's
/// weights). Exposed for the gradient-check tests.
float backprop_sample(const Model& model, const tensor::Tensor& image,
                      std::int64_t label,
                      std::vector<tensor::Tensor>& grads);

/// Plain SGD(+momentum) training over the dataset (sample at a time; the
/// models and datasets here are small). Mutates the model's weights.
TrainStats train(Model& model, const SyntheticDataset& data,
                 const TrainConfig& config, common::Rng& rng);

/// Top-1 accuracy of `model` on the dataset.
double evaluate_accuracy(const Model& model, const SyntheticDataset& data);

/// Top-1 accuracy of an arbitrary classifier functor (e.g. the simulated
/// fabric) on the dataset.
template <typename ForwardFn>
double evaluate_accuracy_with(ForwardFn&& forward,
                              const SyntheticDataset& data) {
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (forward(data.images[i]) == data.labels[i]) ++correct;
  }
  return data.size() ? static_cast<double>(correct) /
                           static_cast<double>(data.size())
                     : 0.0;
}

}  // namespace autohet::nn
