// DNN layer and network descriptors.
//
// A LayerSpec carries everything both consumers need:
//   * the mapping/energy models (src/mapping, src/reram) use the *shape*
//     (kernel size, channels, stride, input feature-map size) — this is the
//     state the paper's RL agent observes (Table 1);
//   * the functional inference path (src/nn/model) additionally uses the
//     geometry to run the layer forward.
//
// FC layers are treated as 1x1 convolutions over a 1x1 feature map with
// in/out channels equal to the neuron counts, exactly as the paper does
// (§3.2: "we consider the FC layer as a special kind of CONV layer").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autohet::nn {

enum class LayerType { kConv, kFullyConnected, kMaxPool, kAvgPool };

/// True for layers whose weights occupy crossbars (CONV and FC).
constexpr bool is_mappable(LayerType t) noexcept {
  return t == LayerType::kConv || t == LayerType::kFullyConnected;
}

struct LayerSpec {
  LayerType type = LayerType::kConv;
  std::int64_t in_channels = 0;   ///< Cin (FC: input neurons)
  std::int64_t out_channels = 0;  ///< Cout (FC: output neurons)
  std::int64_t kernel = 1;        ///< k for k×k kernels; pool window for pools
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  std::int64_t in_height = 1;  ///< input feature-map height
  std::int64_t in_width = 1;   ///< input feature-map width
  bool relu_after = true;      ///< apply ReLU after this layer (conv/fc only)

  std::int64_t out_height() const noexcept {
    return (in_height + 2 * pad - kernel) / stride + 1;
  }
  std::int64_t out_width() const noexcept {
    return (in_width + 2 * pad - kernel) / stride + 1;
  }

  /// Rows of the unfolded weight matrix: Cin * k^2 (paper Fig. 7).
  std::int64_t weight_rows() const noexcept {
    return in_channels * kernel * kernel;
  }
  /// Columns of the unfolded weight matrix: Cout.
  std::int64_t weight_cols() const noexcept { return out_channels; }
  /// Total weights in the layer (paper state feature `w`).
  std::int64_t weight_count() const noexcept {
    return weight_rows() * weight_cols();
  }
  /// Input feature-map size (paper state feature `ins`).
  std::int64_t input_size() const noexcept {
    return in_channels * in_height * in_width;
  }
  /// Number of MVM invocations needed for one inference pass: one per output
  /// spatial position (FC layers: exactly one).
  std::int64_t mvm_count() const noexcept {
    return out_height() * out_width();
  }

  std::string to_string() const;

  /// Exact field equality — used by plan validation to match a compiled
  /// plan's layer snapshot against a live NetworkSpec.
  bool operator==(const LayerSpec&) const = default;
};

/// A whole network: ordered layers, plus metadata.
struct NetworkSpec {
  std::string name;
  std::vector<LayerSpec> layers;
  /// True when the layer list is a faithful sequential dataflow that the
  /// functional Model can execute end-to-end (LeNet/AlexNet/VGG16). ResNet152
  /// carries residual adds we model for mapping/energy only.
  bool sequential_runnable = true;

  /// Indices (into `layers`) of the mappable (CONV/FC) layers, in order.
  std::vector<std::size_t> mappable_indices() const;
  /// The mappable layers themselves, in order.
  std::vector<LayerSpec> mappable_layers() const;
  /// Total weights across mappable layers.
  std::int64_t total_weights() const;
};

/// Builders for a CONV layer / FC layer / pooling layer with the feature-map
/// geometry filled in. FC layers follow the paper's convention (k=1, s=1,
/// 1×1 feature map).
LayerSpec make_conv(std::int64_t in_c, std::int64_t out_c, std::int64_t k,
                    std::int64_t stride, std::int64_t pad, std::int64_t in_h,
                    std::int64_t in_w, bool relu = true);
LayerSpec make_fc(std::int64_t in_n, std::int64_t out_n, bool relu = true);
LayerSpec make_maxpool(std::int64_t channels, std::int64_t window,
                       std::int64_t stride, std::int64_t in_h,
                       std::int64_t in_w);
LayerSpec make_avgpool(std::int64_t channels, std::int64_t window,
                       std::int64_t stride, std::int64_t in_h,
                       std::int64_t in_w);

}  // namespace autohet::nn
