// Symmetric fixed-point quantization.
//
// The paper quantizes DNN weights to 8 bits (§4.1) and represents each
// weight with a group of eight 1-bit ReRAM cells (one bit plane per physical
// crossbar in a PE). Inputs are likewise quantized to 8 bits and fed to the
// 1-bit DACs one bit per cycle. These helpers provide the weight-side
// (signed symmetric) and activation-side (unsigned) schemes plus the exact
// integer reference the crossbar datapath is checked against.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace autohet::nn {

/// Signed symmetric per-tensor quantization: q = clamp(round(x/scale)) with
/// scale = abs_max / (2^(bits-1) - 1). Dequantize as q * scale.
struct QuantizedWeights {
  std::vector<std::int8_t> values;
  std::vector<std::int64_t> shape;
  float scale = 1.0f;
  int bits = 8;

  std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(values.size());
  }
};

/// Unsigned per-tensor quantization for non-negative activations:
/// q = clamp(round(x/scale), 0, 2^bits - 1) with scale = max / (2^bits - 1).
struct QuantizedActivations {
  std::vector<std::uint8_t> values;
  std::vector<std::int64_t> shape;
  float scale = 1.0f;
  int bits = 8;

  std::int64_t numel() const noexcept {
    return static_cast<std::int64_t>(values.size());
  }
};

QuantizedWeights quantize_weights(const tensor::Tensor& t, int bits = 8);
QuantizedActivations quantize_activations(const tensor::Tensor& t,
                                          int bits = 8);

tensor::Tensor dequantize(const QuantizedWeights& q);
tensor::Tensor dequantize(const QuantizedActivations& q);

/// Extracts bit plane `bit` (0 = LSB) of an unsigned activation vector;
/// used to drive the 1-bit DAC cycles of the functional crossbar model.
std::vector<std::uint8_t> activation_bit_plane(const QuantizedActivations& q,
                                               int bit);

}  // namespace autohet::nn
