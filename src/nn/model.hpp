// Functional model: a NetworkSpec plus concrete weights, with float forward
// inference. Used as the numerical reference the simulated crossbar datapath
// is validated against, and by the end-to-end inference examples.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "nn/graph.hpp"
#include "nn/layer.hpp"
#include "tensor/tensor.hpp"

namespace autohet::nn {

class Model {
 public:
  /// Builds the model with He-style random weights drawn from `rng`
  /// (deterministic for a given seed). Weight tensors are only materialized
  /// for mappable layers.
  Model(NetworkSpec spec, common::Rng& rng);

  const NetworkSpec& spec() const noexcept { return spec_; }

  /// Weight tensor of the `i`-th *mappable* layer
  /// ([Cout,Cin,k,k] for CONV, [out,in] for FC).
  const tensor::Tensor& weight(std::size_t mappable_index) const;
  tensor::Tensor& weight(std::size_t mappable_index);
  std::size_t mappable_count() const noexcept { return weights_.size(); }

  /// Float forward pass over the whole network (CHW input). Requires
  /// spec().sequential_runnable.
  tensor::Tensor forward(const tensor::Tensor& input) const;

  /// Float forward pass of a single layer (by position in spec().layers),
  /// without the trailing ReLU. Pools are executed directly; CONV/FC use the
  /// stored weights.
  tensor::Tensor forward_layer(std::size_t layer_index,
                               const tensor::Tensor& input) const;

  /// Float forward pass over a DAG `graph` whose kLayer skeleton equals
  /// spec().layers (checked) — the weights programmed for layer j serve the
  /// j-th kLayer node. Residual adds, concats, standalone activations and
  /// global average pools run in plain float; this is the numerical
  /// reference for SimulatedModel::forward_graph. For chain graphs it is
  /// bit-identical to forward().
  tensor::Tensor forward_graph(const Graph& graph,
                               const tensor::Tensor& input) const;

 private:
  NetworkSpec spec_;
  std::vector<tensor::Tensor> weights_;       // one per mappable layer
  std::vector<std::int64_t> weight_of_layer_; // layer idx -> mappable idx or -1
};

/// Deterministic synthetic input image (CHW, values in [0, 1)); substitutes
/// for the MNIST/CIFAR/ImageNet samples the paper uses (see DESIGN.md §1).
tensor::Tensor synthetic_image(common::Rng& rng, std::int64_t channels,
                               std::int64_t height, std::int64_t width);

}  // namespace autohet::nn
