// The compiled deployment artifact: an immutable IR that pins the physical
// mapping of one searched strategy onto one accelerator configuration.
//
// AutoHet's search produces a Strategy (a crossbar shape per layer, Fig. 6),
// but a strategy alone is not deployable: every consumer — analytical
// evaluation, functional inference, fault injection, pipeline scheduling —
// still has to re-derive the physical layout (kernel-to-crossbar geometry,
// tile allocation, tile-shared draining) from `(layer, shape)`. Full-stack
// ReRAM systems separate the *compile* step that fixes the physical mapping
// from the *runtime* that executes it (FPSA; CIM-Explorer's RRAM compiler
// toolchain). `compile_plan` is that compile step: it runs the mapping
// machinery once and freezes the result into a `DeploymentPlan` that can be
// validated, serialized (report/serialize.hpp), shipped, and replayed —
// search once, compile once, deploy many times.
//
// Consumers take the plan instead of re-deriving:
//   * `evaluate_plan` / `EvaluationEngine::evaluate(plan)` — hardware report,
//     bit-identical to the legacy `evaluate_network` path (tested);
//   * `SimulatedModel(model, plan)` — programs crossbars from the plan's
//     stored per-layer geometry (functional.hpp);
//   * `monte_carlo_robustness(model, plan, ...)` — fault injection under the
//     plan's burned-in FaultConfig;
//   * `evaluate_pipeline` / `schedule_batch` / `balance_replication` — walk
//     plan layers, never calling `map_layer` themselves;
//   * placement / Global Controller / NoC / programming consumers reuse the
//     plan's embedded `AllocationResult` verbatim.
//
// The plan lives (file-wise) next to the mapping machinery it freezes, but
// sits architecturally above both src/mapping and src/reram; it is compiled
// into the autohet_reram library (see src/reram/CMakeLists.txt).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mapping/crossbar_shape.hpp"
#include "mapping/layer_mapping.hpp"
#include "mapping/tile_allocator.hpp"
#include "nn/graph.hpp"
#include "nn/layer.hpp"
#include "reram/hardware_model.hpp"

namespace autohet::core {
struct Strategy;  // autohet/strategy.hpp; full include only in plan.cpp
}

namespace autohet::plan {

/// Plan IR version of linear-chain plans (the original schema; still fully
/// supported, serialized byte-identically to every historical document).
inline constexpr int kPlanVersion = 1;
/// Plan IR version of plans compiled from a DAG computation graph
/// (nn::Graph): same payload as v1 plus the embedded graph, whose
/// non-mappable ops are accounted by evaluate_plan and whose edges drive
/// the scheduler/pipeline dataflow.
inline constexpr int kPlanVersionGraph = 2;

/// Order-independent fingerprint of a fault configuration, stored in the
/// plan so a replayed artifact can prove it was compiled under the same
/// device non-ideality assumptions it is executed with.
std::uint64_t fault_fingerprint(const reram::FaultConfig& faults);

struct DeploymentPlan {
  int version = kPlanVersion;
  std::string network;  ///< workload name ("" for anonymous layer lists)
  /// Snapshot of the mappable layers the plan was compiled for, in order.
  std::vector<nn::LayerSpec> layers;
  /// The full fabric configuration: device (ADC/DAC/cell) parameters,
  /// PEs per tile, tile-shared allocation, and the FaultConfig.
  reram::AcceleratorConfig accel;
  /// fault_fingerprint(accel.faults), fixed at compile time.
  std::uint64_t fault_fingerprint = 0;
  /// The frozen physical layout: per-layer mapping geometry, tile states
  /// after the (optional) tile-shared pass, and Algorithm 1's combMap.
  mapping::AllocationResult allocation;
  /// v2 (kPlanVersionGraph) only: the DAG computation graph the plan was
  /// compiled from. Its mappable layers equal `layers` in order. Empty
  /// (zero nodes) for v1 linear-chain plans.
  nn::Graph graph;

  /// True when the plan carries a computation graph (version >= 2).
  bool has_graph() const noexcept { return version >= kPlanVersionGraph; }

  /// The per-layer crossbar shapes (the strategy the plan was compiled
  /// from), recovered from the stored mappings.
  std::vector<mapping::CrossbarShape> shapes() const;

  /// Consistency check: throws std::invalid_argument when the plan is
  /// internally inconsistent — version mismatch, layer/allocation length
  /// mismatch, non-mappable layers, stored geometry that disagrees with
  /// `map_layer` on the stored layer specs, tile bookkeeping that does not
  /// conserve each layer's crossbars, a stale fault fingerprint, or an
  /// allocation granularity that contradicts the accelerator config.
  void validate() const;

  /// validate() plus a match against a concrete workload: the network name
  /// (case-insensitive) and every mappable layer spec must agree.
  void validate_against(const nn::NetworkSpec& net) const;
};

/// Compiles one per-layer shape assignment onto the accelerator: derives
/// every layer's mapping geometry, runs the tile allocator (tile-based or
/// tile-shared per `accel`), and freezes the result. The single entry point
/// through which all physical-layout derivation flows.
DeploymentPlan compile_plan(std::string network,
                            const std::vector<nn::LayerSpec>& mappable_layers,
                            const std::vector<mapping::CrossbarShape>& shapes,
                            const reram::AcceleratorConfig& accel);

/// Convenience entry point over a searched Strategy (autohet/strategy.hpp):
/// checks the strategy names `model` and covers all its mappable layers.
DeploymentPlan compile_plan(const nn::NetworkSpec& model,
                            const core::Strategy& strategy,
                            const reram::AcceleratorConfig& accel);

/// Compiles a DAG computation graph: maps the graph's mappable subset with
/// the same allocator as the chain path (one shape per mappable layer, in
/// graph.mappable_layers() order) and embeds the graph in a v2 plan. For a
/// chain-shaped graph the allocation — and every downstream report — is
/// bit-identical to compiling graph.linearize() through the v1 path.
DeploymentPlan compile_plan(const nn::Graph& graph,
                            const std::vector<mapping::CrossbarShape>& shapes,
                            const reram::AcceleratorConfig& accel);

/// Hardware report of a compiled plan; bit-identical to `evaluate_network`
/// on the inputs the plan was compiled from (same per-layer reports, same
/// tile-id-order area aggregation, same utilization division). Validates
/// the plan first.
reram::NetworkReport evaluate_plan(const DeploymentPlan& plan);

/// Per-layer serial latency and tile cost, read off the plan — what the
/// pipeline/scheduler consumers need to build stage intervals without
/// re-deriving the mapping.
struct LayerCost {
  double latency_ns = 0.0;
  std::int64_t tiles = 0;
};
std::vector<LayerCost> plan_layer_costs(const DeploymentPlan& plan);

/// One dataflow edge into a mappable layer: the producing mappable layer
/// and the summed vector-unit latency of the non-mappable ops (residual
/// adds, concats, activations, pools) on the path between them.
struct LayerDep {
  std::int64_t layer = 0;
  double delay_ns = 0.0;
};

/// The dataflow the scheduler/pipeline consume instead of implicit
/// index-ordering. For v1 linear-chain plans this is exactly the chain:
/// deps[k] = {{k-1, 0.0}} and every tail delay is 0, which keeps the
/// schedule arithmetic bit-identical to the historical k-1 rule. For v2
/// graph plans the edges come from the graph, with non-mappable op
/// latencies (evaluate_graph_op) as inter-stage delays.
struct PlanDataflow {
  /// Per mappable layer (graph order): its producing mappable layers, each
  /// with the non-mappable-op delay on the connecting path (max over
  /// parallel paths), sorted by producer index.
  std::vector<std::vector<LayerDep>> deps;
  /// Per mappable layer: the non-mappable-op delay from its output to the
  /// graph output along layer-free paths (0 when none exists).
  std::vector<double> tail_delay_ns;
};
PlanDataflow plan_dataflow(const DeploymentPlan& plan);

/// Case-insensitive network-name comparison used by plan/strategy checks
/// (network_by_name is case-insensitive, so names compare likewise).
bool same_network_name(std::string_view a, std::string_view b);

}  // namespace autohet::plan
