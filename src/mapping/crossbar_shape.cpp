#include "mapping/crossbar_shape.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace autohet::mapping {

std::vector<CrossbarShape> square_candidates() {
  return {{32, 32}, {64, 64}, {128, 128}, {256, 256}, {512, 512}};
}

std::vector<CrossbarShape> rectangle_candidates() {
  return {{36, 32}, {72, 64}, {144, 128}, {288, 256}, {576, 512}};
}

std::vector<CrossbarShape> hybrid_candidates() {
  return {{32, 32}, {36, 32}, {72, 64}, {288, 256}, {576, 512}};
}

std::vector<CrossbarShape> all_candidates() {
  auto out = square_candidates();
  const auto rect = rectangle_candidates();
  out.insert(out.end(), rect.begin(), rect.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<CrossbarShape> mixed_candidates(int num_square, int num_rect) {
  const auto squares = square_candidates();
  const auto rects = rectangle_candidates();
  AUTOHET_CHECK(num_square >= 0 &&
                    num_square <= static_cast<int>(squares.size()),
                "num_square out of range");
  AUTOHET_CHECK(num_rect >= 0 && num_rect <= static_cast<int>(rects.size()),
                "num_rect out of range");
  std::vector<CrossbarShape> out;
  // Largest-first: big crossbars carry the energy advantage, so every mixed
  // set keeps the energy-efficient end of each family.
  for (int i = 0; i < num_square; ++i) {
    out.push_back(squares[squares.size() - 1 - static_cast<std::size_t>(i)]);
  }
  for (int i = 0; i < num_rect; ++i) {
    out.push_back(rects[rects.size() - 1 - static_cast<std::size_t>(i)]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace autohet::mapping
