#include "mapping/multi_model.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace autohet::mapping {

std::int64_t MultiModelResult::occupied_tiles() const {
  std::int64_t n = 0;
  for (const auto& t : tiles) n += t.released ? 0 : 1;
  return n;
}

std::int64_t MultiModelResult::released_tiles() const {
  return static_cast<std::int64_t>(tiles.size()) - occupied_tiles();
}

std::int64_t MultiModelResult::useful_cells() const {
  std::int64_t n = 0;
  for (const auto& m : models) {
    for (const auto& l : m.layers) n += l.mapping.useful_cells;
  }
  return n;
}

std::int64_t MultiModelResult::allocated_cells() const {
  std::int64_t n = 0;
  for (const auto& t : tiles) {
    if (!t.released) n += xbs_per_tile * t.shape.cells();
  }
  return n;
}

double MultiModelResult::system_utilization() const {
  const std::int64_t cells = allocated_cells();
  return cells > 0 ? static_cast<double>(useful_cells()) /
                         static_cast<double>(cells)
                   : 0.0;
}

MultiModelAllocator::MultiModelAllocator(std::int64_t xbs_per_tile,
                                         SharingScope scope)
    : xbs_per_tile_(xbs_per_tile), scope_(scope) {
  AUTOHET_CHECK(xbs_per_tile > 0, "xbs_per_tile must be positive");
}

MultiModelResult MultiModelAllocator::allocate(
    const std::vector<ResidentModel>& models) const {
  AUTOHET_CHECK(!models.empty(), "at least one resident model required");
  MultiModelResult result;
  result.xbs_per_tile = xbs_per_tile_;

  // Phase 1: tile-based allocation of every model into the global list.
  std::int64_t next_tile_id = 0;
  for (std::size_t mi = 0; mi < models.size(); ++mi) {
    const auto& model = models[mi];
    AUTOHET_CHECK(model.layers.size() == model.shapes.size(),
                  "layers and shapes must be the same length for model " +
                      model.name);
    AUTOHET_CHECK(static_cast<std::int64_t>(model.layers.size()) <
                      kModelStride,
                  "model too large for layer-id encoding");
    MultiModelResult::PerModel per;
    per.name = model.name;
    for (std::size_t li = 0; li < model.layers.size(); ++li) {
      LayerAllocation alloc;
      alloc.layer_id = static_cast<std::int64_t>(mi) * kModelStride +
                       static_cast<std::int64_t>(li);
      alloc.mapping = map_layer(model.layers[li], model.shapes[li]);
      const std::int64_t needed = alloc.mapping.logical_crossbars();
      alloc.tiles_allocated = (needed + xbs_per_tile_ - 1) / xbs_per_tile_;
      std::int64_t remaining = needed;
      for (std::int64_t t = 0; t < alloc.tiles_allocated; ++t) {
        Tile tile;
        tile.id = next_tile_id++;
        tile.shape = model.shapes[li];
        const std::int64_t used = std::min(remaining, xbs_per_tile_);
        tile.empty_xbs = xbs_per_tile_ - used;
        tile.layer_ids.push_back(alloc.layer_id);
        tile.layer_xbs.push_back(used);
        remaining -= used;
        result.tiles.push_back(std::move(tile));
      }
      per.tiles_before_sharing += alloc.tiles_allocated;
      per.layers.push_back(std::move(alloc));
    }
    result.models.push_back(std::move(per));
  }

  if (scope_ == SharingScope::kNone) return result;

  // Phase 2: Algorithm 1 per shape group. Grouping keys additionally carry
  // the model index when sharing is per-model only.
  std::map<std::tuple<std::int64_t, std::int64_t, std::int64_t>,
           std::vector<Tile*>>
      groups;
  for (auto& tile : result.tiles) {
    const std::int64_t model_key =
        (scope_ == SharingScope::kPerModel)
            ? tile.layer_ids.front() / kModelStride
            : 0;
    groups[{tile.shape.rows, tile.shape.cols, model_key}].push_back(&tile);
  }
  for (auto& [key, group] : groups) {
    CombMap comb = tile_shared_remap(group, xbs_per_tile_);
    for (auto& [receiver, drained] : comb) {
      auto& entry = result.remap[receiver];
      entry.insert(entry.end(), drained.begin(), drained.end());
    }
  }
  return result;
}

}  // namespace autohet::mapping
