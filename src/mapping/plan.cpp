#include "mapping/plan.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <utility>

#include "autohet/strategy.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace autohet::plan {

namespace {

/// FNV-1a over a stream of 64-bit words.
class Fnv1a {
 public:
  void mix(std::uint64_t word) noexcept {
    hash_ ^= word;
    hash_ *= 1099511628211ull;
  }
  void mix(double value) noexcept { mix(std::bit_cast<std::uint64_t>(value)); }
  std::uint64_t hash() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ull;
};

std::string layer_tag(std::size_t i) {
  return "layer " + std::to_string(i + 1) + ": ";
}

}  // namespace

std::uint64_t fault_fingerprint(const reram::FaultConfig& faults) {
  Fnv1a h;
  h.mix(faults.stuck_at_zero_rate);
  h.mix(faults.stuck_at_one_rate);
  h.mix(faults.program_sigma);
  h.mix(faults.read_sigma);
  h.mix(faults.drift_time_s);
  h.mix(faults.drift_nu);
  h.mix(static_cast<std::uint64_t>(faults.cell_bits));
  h.mix(faults.seed);
  return h.hash();
}

bool same_network_name(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<mapping::CrossbarShape> DeploymentPlan::shapes() const {
  std::vector<mapping::CrossbarShape> result;
  result.reserve(allocation.layers.size());
  for (const auto& layer : allocation.layers) {
    result.push_back(layer.mapping.shape);
  }
  return result;
}

void DeploymentPlan::validate() const {
  AUTOHET_CHECK(version == kPlanVersion || version == kPlanVersionGraph,
                "unsupported plan version " + std::to_string(version) +
                    " (this build understands v" +
                    std::to_string(kPlanVersion) + " and v" +
                    std::to_string(kPlanVersionGraph) + ")");
  if (version == kPlanVersion) {
    AUTOHET_CHECK(graph.nodes().empty(),
                  "v1 plans must not carry a computation graph");
  } else {
    graph.validate();
    AUTOHET_CHECK(graph.mappable_layers() == layers,
                  "plan graph's mappable layers do not match the plan's "
                  "layer snapshot");
    AUTOHET_CHECK(network.empty() || same_network_name(network, graph.name()),
                  "plan graph names '" + graph.name() + "', not '" + network +
                      "'");
  }
  accel.validate();
  AUTOHET_CHECK(!layers.empty(), "plan has no layers");
  AUTOHET_CHECK(layers.size() == allocation.layers.size(),
                "plan layer specs and allocation disagree on layer count");
  AUTOHET_CHECK(allocation.xbs_per_tile == accel.pes_per_tile,
                "allocation granularity (" +
                    std::to_string(allocation.xbs_per_tile) +
                    " PEs/tile) contradicts the accelerator config (" +
                    std::to_string(accel.pes_per_tile) + ")");
  AUTOHET_CHECK(fault_fingerprint == plan::fault_fingerprint(accel.faults),
                "stale fault fingerprint: the plan was compiled under a "
                "different FaultConfig");
  AUTOHET_CHECK(accel.tile_shared || allocation.remap.empty(),
                "plan carries a tile-shared combMap but tile sharing is off");

  // Per-layer geometry must be exactly what map_layer derives from the
  // stored spec and shape — a plan whose frozen mapping drifted from the
  // mapping machinery must not be deployed.
  std::vector<std::int64_t> layer_xbs(layers.size(), 0);
  std::int64_t expected_tiles = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    AUTOHET_CHECK(nn::is_mappable(layers[i].type),
                  layer_tag(i) + "plan layers must be CONV/FC");
    const auto& alloc = allocation.layers[i];
    AUTOHET_CHECK(alloc.layer_id == static_cast<std::int64_t>(i),
                  layer_tag(i) + "allocation layer ids must be consecutive");
    const mapping::LayerMapping derived =
        mapping::map_layer(layers[i], alloc.mapping.shape);
    AUTOHET_CHECK(derived == alloc.mapping,
                  layer_tag(i) + "stored mapping geometry disagrees with "
                                 "map_layer for shape " +
                      alloc.mapping.shape.name());
    const std::int64_t needed = alloc.mapping.logical_crossbars();
    AUTOHET_CHECK(alloc.tiles_allocated ==
                      (needed + accel.pes_per_tile - 1) / accel.pes_per_tile,
                  layer_tag(i) + "tile count disagrees with the mapping");
    expected_tiles += alloc.tiles_allocated;
  }
  AUTOHET_CHECK(
      static_cast<std::int64_t>(allocation.tiles.size()) == expected_tiles,
      "plan tile list does not cover the per-layer tile allocations");

  // Tile bookkeeping must conserve every layer's crossbars: summed over
  // tiles, layer l holds exactly its mapping's logical crossbar count.
  for (const auto& tile : allocation.tiles) {
    AUTOHET_CHECK(tile.layer_ids.size() == tile.layer_xbs.size(),
                  "tile " + std::to_string(tile.id) +
                      ": occupant lists out of sync");
    std::int64_t held = 0;
    for (std::size_t o = 0; o < tile.layer_ids.size(); ++o) {
      const std::int64_t l = tile.layer_ids[o];
      AUTOHET_CHECK(l >= 0 && l < static_cast<std::int64_t>(layers.size()),
                    "tile " + std::to_string(tile.id) +
                        ": occupant layer id out of range");
      layer_xbs[static_cast<std::size_t>(l)] += tile.layer_xbs[o];
      held += tile.layer_xbs[o];
    }
    if (tile.released) {
      AUTOHET_CHECK(held == 0 && tile.empty_xbs == 0,
                    "tile " + std::to_string(tile.id) +
                        ": released tiles must be fully drained");
    } else {
      AUTOHET_CHECK(held + tile.empty_xbs == accel.pes_per_tile,
                    "tile " + std::to_string(tile.id) +
                        ": occupancy does not add up to PEs/tile");
    }
  }
  for (std::size_t i = 0; i < layers.size(); ++i) {
    AUTOHET_CHECK(
        layer_xbs[i] == allocation.layers[i].mapping.logical_crossbars(),
        layer_tag(i) + "tiles do not conserve the layer's crossbars");
  }

  // Finally, the frozen allocation must be exactly what the allocator
  // derives today from the stored specs/shapes under the stored config —
  // the structural checks above localize most tampering, this one closes
  // every remaining gap (and is what makes replayed numbers bit-identical
  // to a fresh compile by construction).
  const mapping::TileAllocator allocator(accel.pes_per_tile,
                                         accel.tile_shared);
  AUTOHET_CHECK(allocator.allocate(layers, shapes()) == allocation,
                "plan allocation does not match re-derivation: the plan is "
                "stale or was edited by hand");
}

void DeploymentPlan::validate_against(const nn::NetworkSpec& net) const {
  validate();
  AUTOHET_CHECK(network.empty() || same_network_name(network, net.name),
                "plan was compiled for '" + network + "', not '" + net.name +
                    "'");
  const auto mappable = net.mappable_layers();
  AUTOHET_CHECK(mappable.size() == layers.size(),
                "plan layer count (" + std::to_string(layers.size()) +
                    ") does not match " + net.name + " (" +
                    std::to_string(mappable.size()) + " mappable layers)");
  for (std::size_t i = 0; i < mappable.size(); ++i) {
    AUTOHET_CHECK(mappable[i] == layers[i],
                  layer_tag(i) + "plan layer spec does not match " + net.name);
  }
}

DeploymentPlan compile_plan(std::string network,
                            const std::vector<nn::LayerSpec>& mappable_layers,
                            const std::vector<mapping::CrossbarShape>& shapes,
                            const reram::AcceleratorConfig& accel) {
  accel.validate();
  AUTOHET_CHECK(!mappable_layers.empty(), "cannot compile an empty network");
  AUTOHET_CHECK(mappable_layers.size() == shapes.size(),
                "one crossbar shape per mappable layer required");
  DeploymentPlan plan;
  plan.network = std::move(network);
  plan.layers = mappable_layers;
  plan.accel = accel;
  plan.fault_fingerprint = fault_fingerprint(accel.faults);
  const mapping::TileAllocator allocator(accel.pes_per_tile,
                                         accel.tile_shared);
  plan.allocation = allocator.allocate(mappable_layers, shapes);
  return plan;
}

DeploymentPlan compile_plan(const nn::NetworkSpec& model,
                            const core::Strategy& strategy,
                            const reram::AcceleratorConfig& accel) {
  AUTOHET_CHECK(same_network_name(strategy.network, model.name),
                "strategy names '" + strategy.network + "', not '" +
                    model.name + "'");
  return compile_plan(model.name, model.mappable_layers(), strategy.shapes,
                      accel);
}

DeploymentPlan compile_plan(const nn::Graph& graph,
                            const std::vector<mapping::CrossbarShape>& shapes,
                            const reram::AcceleratorConfig& accel) {
  graph.validate();
  DeploymentPlan plan =
      compile_plan(graph.name(), graph.mappable_layers(), shapes, accel);
  plan.version = kPlanVersionGraph;
  plan.graph = graph;
  return plan;
}

reram::NetworkReport evaluate_plan(const DeploymentPlan& plan) {
  OBS_SPAN("evaluate_plan");
  OBS_PROFILE_RECORD(obs::ProfileKind::kPlanEval, -1, 0, 1);
  plan.validate();
  if (plan.has_graph()) {
    return reram::evaluate_graph_allocation(plan.graph, plan.allocation,
                                            plan.accel);
  }
  return reram::evaluate_allocation(plan.layers, plan.allocation, plan.accel);
}

PlanDataflow plan_dataflow(const DeploymentPlan& plan) {
  PlanDataflow flow;
  const std::size_t n = plan.layers.size();
  flow.deps.resize(n);
  flow.tail_delay_ns.assign(n, 0.0);
  if (!plan.has_graph()) {
    // v1 linear chain: layer k waits on layer k-1 with zero extra delay —
    // the historical implicit index-ordering, expressed as edges.
    for (std::size_t k = 1; k < n; ++k) {
      flow.deps[k] = {{static_cast<std::int64_t>(k) - 1, 0.0}};
    }
    return flow;
  }

  const nn::Graph& graph = plan.graph;
  const auto& nodes = graph.nodes();
  const std::size_t node_count = nodes.size();

  // Vector-unit latency of each non-mappable op node; 0 for everything the
  // v1 path also treats as free (inputs, mappable layers, pooling layers).
  std::vector<double> op_latency(node_count, 0.0);
  for (std::size_t id = 0; id < node_count; ++id) {
    const nn::GraphNode& node = nodes[id];
    if (node.kind == nn::OpKind::kInput || node.kind == nn::OpKind::kLayer) {
      continue;
    }
    op_latency[id] = reram::evaluate_graph_op(
                         graph, static_cast<std::int64_t>(id),
                         plan.accel.device)
                         .latency_ns;
  }

  // Mappable ordinal of each node (-1 otherwise), in graph order.
  std::vector<std::int64_t> ordinal(node_count, -1);
  {
    std::int64_t next = 0;
    for (std::size_t id = 0; id < node_count; ++id) {
      if (nn::is_mappable(nodes[id])) ordinal[id] = next++;
    }
  }

  // Forward pass: frontier[id] maps each nearest mappable ancestor to the
  // max summed op delay between that ancestor's output and node id's
  // output. A mappable node resets the frontier to itself.
  std::vector<std::vector<LayerDep>> frontier(node_count);
  auto merge_into = [](std::vector<LayerDep>& into, std::int64_t layer,
                       double delay) {
    for (LayerDep& d : into) {
      if (d.layer == layer) {
        d.delay_ns = std::max(d.delay_ns, delay);
        return;
      }
    }
    into.push_back({layer, delay});
  };
  for (std::size_t id = 0; id < node_count; ++id) {
    const nn::GraphNode& node = nodes[id];
    if (nn::is_mappable(node)) {
      // Dependencies of this layer: the merged input frontiers.
      std::vector<LayerDep> deps;
      for (const std::int64_t in : node.inputs) {
        for (const LayerDep& d : frontier[static_cast<std::size_t>(in)]) {
          merge_into(deps, d.layer, d.delay_ns);
        }
      }
      std::sort(deps.begin(), deps.end(),
                [](const LayerDep& a, const LayerDep& b) {
                  return a.layer < b.layer;
                });
      flow.deps[static_cast<std::size_t>(ordinal[id])] = std::move(deps);
      frontier[id] = {{ordinal[id], 0.0}};
      continue;
    }
    for (const std::int64_t in : node.inputs) {
      for (const LayerDep& d : frontier[static_cast<std::size_t>(in)]) {
        merge_into(frontier[id], d.layer, d.delay_ns + op_latency[id]);
      }
    }
  }

  // Backward pass: tail[id] = max op delay from node id's output to the
  // graph output along mappable-free paths (a downstream mappable layer is
  // a scheduled stage of its own and cuts the path).
  std::vector<double> tail(node_count, 0.0);
  for (std::size_t id = node_count; id-- > 0;) {
    const nn::GraphNode& node = nodes[id];
    if (nn::is_mappable(node)) continue;
    for (const std::int64_t in : node.inputs) {
      tail[static_cast<std::size_t>(in)] =
          std::max(tail[static_cast<std::size_t>(in)],
                   tail[id] + op_latency[id]);
    }
  }
  for (std::size_t id = 0; id < node_count; ++id) {
    if (ordinal[id] >= 0) {
      flow.tail_delay_ns[static_cast<std::size_t>(ordinal[id])] = tail[id];
    }
  }
  return flow;
}

std::vector<LayerCost> plan_layer_costs(const DeploymentPlan& plan) {
  std::vector<LayerCost> costs;
  costs.reserve(plan.layers.size());
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    const auto& alloc = plan.allocation.layers[i];
    const reram::LayerReport report =
        reram::evaluate_layer(plan.layers[i], alloc.mapping,
                              alloc.tiles_allocated, plan.accel.device);
    costs.push_back({report.latency_ns, alloc.tiles_allocated});
  }
  return costs;
}

}  // namespace autohet::plan
