// Tile-level crossbar allocation: the conventional tile-based scheme and the
// paper's tile-shared scheme (§3.4, Algorithm 1).
//
// Terminology: a *logical crossbar* is one PE's worth of storage — a group
// of eight 1-bit physical crossbars holding the eight bit planes of an 8-bit
// weight (paper §4.1). A tile integrates `xbs_per_tile` logical crossbars
// (the paper's default is 4 PEs/tile) and is the minimum allocation unit.
//
// Tile-based: each layer receives ceil(needed / xbs_per_tile) exclusive
// tiles; surplus crossbars in the last tile are wasted.
//
// Tile-shared: after tile-based allocation, tiles are grouped by crossbar
// shape (layers sharing a tile must use the same crossbar size) and
// Algorithm 1's two-pointer pass drains nearly-empty tiles into the empty
// slots of nearly-full ones, releasing the drained tiles.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mapping/layer_mapping.hpp"
#include "nn/layer.hpp"

namespace autohet::mapping {

struct Tile {
  std::int64_t id = 0;
  CrossbarShape shape;
  std::int64_t empty_xbs = 0;           ///< free logical crossbars
  std::vector<std::int64_t> layer_ids;  ///< layers with data in this tile
  /// Logical crossbars each occupant layer holds in this tile; parallel to
  /// layer_ids when populated by the allocator (Algorithm 1 merges both).
  std::vector<std::int64_t> layer_xbs;
  bool released = false;                ///< drained by tile sharing

  bool operator==(const Tile&) const = default;
};

struct LayerAllocation {
  std::int64_t layer_id = 0;  ///< index among the network's mappable layers
  LayerMapping mapping;
  std::int64_t tiles_allocated = 0;  ///< exclusive tiles before sharing

  bool operator==(const LayerAllocation&) const = default;
};

/// combMap from Algorithm 1: receiving tile id -> drained tile ids.
using CombMap = std::map<std::int64_t, std::vector<std::int64_t>>;

struct AllocationResult {
  std::vector<LayerAllocation> layers;
  std::vector<Tile> tiles;
  CombMap remap;  ///< empty when tile sharing is disabled
  std::int64_t xbs_per_tile = 0;

  /// Tiles still holding data after (optional) sharing.
  std::int64_t occupied_tiles() const;
  /// Logical crossbars inside occupied tiles.
  std::int64_t total_logical_crossbars() const;
  /// Free logical crossbars inside occupied tiles.
  std::int64_t empty_crossbars() const;
  /// Sum of Cin·k²·Cout over all layers.
  std::int64_t useful_cells() const;
  /// All cells inside occupied tiles (per bit plane).
  std::int64_t allocated_cells() const;
  /// System-level utilization in [0, 1]: useful cells over cells in occupied
  /// tiles — empty crossbars inside an allocated tile count as waste.
  double system_utilization() const;

  bool operator==(const AllocationResult&) const = default;
};

/// Algorithm 1 (two-pointer tile-shared remapping) applied to one
/// same-shape tile group. Mutates empty counts / layer lists / released
/// flags of `tiles` and returns the combMap. `xb_num` is the number of
/// logical crossbars per tile.
CombMap tile_shared_remap(std::vector<Tile*>& tiles, std::int64_t xb_num);

class TileAllocator {
 public:
  /// `xbs_per_tile`: logical crossbars (PEs) per tile; `tile_shared`:
  /// enable the §3.4 remapping pass.
  TileAllocator(std::int64_t xbs_per_tile, bool tile_shared);

  /// Allocates tiles for `layers[i]` mapped with `shapes[i]`. The two spans
  /// must be the same length and contain only mappable layers.
  AllocationResult allocate(const std::vector<nn::LayerSpec>& layers,
                            const std::vector<CrossbarShape>& shapes) const;

  std::int64_t xbs_per_tile() const noexcept { return xbs_per_tile_; }
  bool tile_shared() const noexcept { return tile_shared_; }

 private:
  std::int64_t xbs_per_tile_;
  bool tile_shared_;
};

}  // namespace autohet::mapping
