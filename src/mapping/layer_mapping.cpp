#include "mapping/layer_mapping.hpp"

#include "common/error.hpp"

namespace autohet::mapping {

namespace {
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) noexcept {
  return (a + b - 1) / b;
}
}  // namespace

LayerMapping map_layer(const nn::LayerSpec& layer, const CrossbarShape& shape) {
  AUTOHET_CHECK(nn::is_mappable(layer.type),
                "only CONV/FC layers map onto crossbars");
  AUTOHET_CHECK(shape.rows > 0 && shape.cols > 0, "invalid crossbar shape");

  const std::int64_t k2 = layer.kernel * layer.kernel;
  const std::int64_t cin = layer.in_channels;
  const std::int64_t cout = layer.out_channels;

  LayerMapping m;
  m.shape = shape;
  m.useful_cells = cin * k2 * cout;
  m.weight_rows = cin * k2;
  m.weight_cols = cout;
  m.col_blocks = ceil_div(cout, shape.cols);

  const std::int64_t kernels_per_block = shape.rows / k2;  // floor(r/k²)
  if (kernels_per_block >= 1) {
    m.kernels_per_row_block = kernels_per_block;
    m.row_blocks = ceil_div(cin, kernels_per_block);
  } else {
    // Split-kernel fallback: wrap the Cin·k² weight rows across vertically
    // adjacent crossbars without kernel alignment.
    m.split_kernel = true;
    m.kernels_per_row_block = 0;
    m.row_blocks = ceil_div(cin * k2, shape.rows);
  }
  return m;
}

double utilization_eq4(std::int64_t cin, std::int64_t k, std::int64_t cout,
                       std::int64_t r, std::int64_t c) {
  AUTOHET_CHECK(cin > 0 && k > 0 && cout > 0 && r > 0 && c > 0,
                "Eq.4 arguments must be positive");
  const std::int64_t k2 = k * k;
  AUTOHET_CHECK(r >= k2, "Eq.4 requires r >= k^2 (kernel-aligned mapping)");
  const std::int64_t per_block = r / k2;
  const std::int64_t denom =
      r * ceil_div(cin, per_block) * c * ceil_div(cout, c);
  return static_cast<double>(cin * k2 * cout) / static_cast<double>(denom);
}

}  // namespace autohet::mapping
