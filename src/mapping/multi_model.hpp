// Multi-model co-residency: several DNNs resident on one accelerator.
//
// §3.4 motivates tile sharing with "Tiles 2 and 3 become available for other
// layers in the DNN model or other models". This module realizes that: each
// network is allocated tiles for its own per-layer crossbar configuration,
// and the tile-shared pass (Algorithm 1) can then run either per model or
// across the union of all resident models' tiles (cross-model sharing),
// grouped by crossbar shape as always.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/tile_allocator.hpp"

namespace autohet::mapping {

struct ResidentModel {
  std::string name;
  std::vector<nn::LayerSpec> layers;       ///< mappable layers only
  std::vector<CrossbarShape> shapes;       ///< one per layer
};

enum class SharingScope {
  kNone,       ///< plain tile-based allocation
  kPerModel,   ///< Algorithm 1 within each model separately
  kCrossModel  ///< Algorithm 1 across all resident models
};

struct MultiModelResult {
  /// Per-model allocation (tiles reference the global tile list below).
  struct PerModel {
    std::string name;
    std::vector<LayerAllocation> layers;
    std::int64_t tiles_before_sharing = 0;
  };
  std::vector<PerModel> models;
  std::vector<Tile> tiles;  ///< global tile list across all models
  CombMap remap;
  std::int64_t xbs_per_tile = 0;

  std::int64_t occupied_tiles() const;
  std::int64_t released_tiles() const;
  double system_utilization() const;
  std::int64_t useful_cells() const;
  std::int64_t allocated_cells() const;
};

class MultiModelAllocator {
 public:
  MultiModelAllocator(std::int64_t xbs_per_tile, SharingScope scope);

  /// Allocates every model's layers; layer_ids in the global tile list are
  /// encoded as model_index * kModelStride + layer_index.
  MultiModelResult allocate(const std::vector<ResidentModel>& models) const;

  static constexpr std::int64_t kModelStride = 1'000'000;

 private:
  std::int64_t xbs_per_tile_;
  SharingScope scope_;
};

}  // namespace autohet::mapping
