#include "mapping/tile_allocator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace autohet::mapping {

std::int64_t AllocationResult::occupied_tiles() const {
  std::int64_t n = 0;
  for (const auto& tile : tiles) {
    if (!tile.released) ++n;
  }
  return n;
}

std::int64_t AllocationResult::total_logical_crossbars() const {
  return occupied_tiles() * xbs_per_tile;
}

std::int64_t AllocationResult::empty_crossbars() const {
  std::int64_t n = 0;
  for (const auto& tile : tiles) {
    if (!tile.released) n += tile.empty_xbs;
  }
  return n;
}

std::int64_t AllocationResult::useful_cells() const {
  std::int64_t n = 0;
  for (const auto& layer : layers) n += layer.mapping.useful_cells;
  return n;
}

std::int64_t AllocationResult::allocated_cells() const {
  std::int64_t n = 0;
  for (const auto& tile : tiles) {
    if (!tile.released) n += xbs_per_tile * tile.shape.cells();
  }
  return n;
}

double AllocationResult::system_utilization() const {
  const std::int64_t cells = allocated_cells();
  return cells > 0 ? static_cast<double>(useful_cells()) /
                         static_cast<double>(cells)
                   : 0.0;
}

CombMap tile_shared_remap(std::vector<Tile*>& tiles, std::int64_t xb_num) {
  AUTOHET_CHECK(xb_num > 0, "xb_num must be positive");
  OBS_SPAN("tile_shared_remap");
  OBS_COUNTER_ADD("autohet_tile_remap_passes_total", 1);
  CombMap comb_map;
  // Line 2: sort ascending by empty-crossbar count.
  std::sort(tiles.begin(), tiles.end(), [](const Tile* a, const Tile* b) {
    if (a->empty_xbs != b->empty_xbs) return a->empty_xbs < b->empty_xbs;
    return a->id < b->id;  // deterministic tie-break
  });
  std::size_t head = 0;
  std::size_t tail = tiles.empty() ? 0 : tiles.size() - 1;
  // Lines 5-16: two-pointer pass. The condition
  //   head.empty + tail.empty >= XBNum
  // is equivalent to "tail's occupied crossbars fit into head's empties",
  // so the tail tile can be drained into the head tile and released.
  while (head < tail) {
    Tile* h = tiles[head];
    Tile* t = tiles[tail];
    if (h->empty_xbs + t->empty_xbs >= xb_num) {
      h->empty_xbs = h->empty_xbs + t->empty_xbs - xb_num;
      t->empty_xbs = 0;
      t->released = true;
      h->layer_ids.insert(h->layer_ids.end(), t->layer_ids.begin(),
                          t->layer_ids.end());
      h->layer_xbs.insert(h->layer_xbs.end(), t->layer_xbs.begin(),
                          t->layer_xbs.end());
      t->layer_ids.clear();
      t->layer_xbs.clear();
      comb_map[h->id].push_back(t->id);
      OBS_COUNTER_ADD("autohet_tiles_released_total", 1);
      --tail;
    } else {
      ++head;
    }
  }
  return comb_map;
}

TileAllocator::TileAllocator(std::int64_t xbs_per_tile, bool tile_shared)
    : xbs_per_tile_(xbs_per_tile), tile_shared_(tile_shared) {
  AUTOHET_CHECK(xbs_per_tile > 0, "xbs_per_tile must be positive");
}

AllocationResult TileAllocator::allocate(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<CrossbarShape>& shapes) const {
  AUTOHET_CHECK(layers.size() == shapes.size(),
                "layers and shapes must be the same length");
  OBS_SPAN("tile_alloc");
  AllocationResult result;
  result.xbs_per_tile = xbs_per_tile_;

  // Tile-based allocation: exclusive, round-up tiles per layer.
  std::int64_t next_tile_id = 0;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    LayerAllocation alloc;
    alloc.layer_id = static_cast<std::int64_t>(i);
    alloc.mapping = map_layer(layers[i], shapes[i]);
    const std::int64_t needed = alloc.mapping.logical_crossbars();
    alloc.tiles_allocated = (needed + xbs_per_tile_ - 1) / xbs_per_tile_;
    std::int64_t remaining = needed;
    for (std::int64_t t = 0; t < alloc.tiles_allocated; ++t) {
      Tile tile;
      tile.id = next_tile_id++;
      tile.shape = shapes[i];
      const std::int64_t used = std::min(remaining, xbs_per_tile_);
      tile.empty_xbs = xbs_per_tile_ - used;
      tile.layer_ids.push_back(alloc.layer_id);
      tile.layer_xbs.push_back(used);
      remaining -= used;
      result.tiles.push_back(std::move(tile));
    }
    result.layers.push_back(std::move(alloc));
  }

  if (!tile_shared_) return result;

  // Tile-shared pass: group by crossbar shape (layers may only share tiles
  // of identical crossbar size, §3.4), then run Algorithm 1 per group.
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<Tile*>> groups;
  for (auto& tile : result.tiles) {
    groups[{tile.shape.rows, tile.shape.cols}].push_back(&tile);
  }
  for (auto& [shape_key, group] : groups) {
    CombMap comb = tile_shared_remap(group, xbs_per_tile_);
    for (auto& [receiver, drained] : comb) {
      auto& entry = result.remap[receiver];
      entry.insert(entry.end(), drained.begin(), drained.end());
    }
  }
  return result;
}

}  // namespace autohet::mapping
