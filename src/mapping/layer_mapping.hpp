// Kernel-to-crossbar mapping geometry and the paper's utilization formula.
//
// A CONV layer with kernel k×k, Cin input channels and Cout output channels
// unfolds into a (Cin·k²) × Cout weight matrix (paper Fig. 7). To preserve
// computational parallelism the paper maps whole kernels onto single
// crossbars: an r×c crossbar holds floor(r/k²) kernels per column and c
// kernel columns, so the crossbar array needs
//     ceil(Cin / floor(r/k²))  rows of crossbars   (row blocks) and
//     ceil(Cout / c)           columns of crossbars (column blocks),
// which yields Eq. 4:
//     u = (Cin·k²·Cout) / (r · ceil(Cin/floor(r/k²)) · c · ceil(Cout/c)).
//
// When r < k² a kernel column does not fit a single crossbar; the paper's
// candidate sets avoid this case for its workloads except ResNet152's 7×7
// stem on 32-row crossbars. We then fall back to a split-kernel mapping
// (kernel columns wrap across vertically adjacent crossbars), the natural
// generalization used by ISAAC-style mappings, and flag it in the result.
#pragma once

#include <cstdint>

#include "mapping/crossbar_shape.hpp"
#include "nn/layer.hpp"

namespace autohet::mapping {

struct LayerMapping {
  CrossbarShape shape;              ///< logical crossbar type used
  std::int64_t row_blocks = 0;      ///< crossbar rows in the array
  std::int64_t col_blocks = 0;      ///< crossbar columns in the array
  std::int64_t kernels_per_row_block = 0;  ///< floor(r/k²); 0 when split
  bool split_kernel = false;        ///< fallback mapping was used (r < k²)

  std::int64_t useful_cells = 0;    ///< Cin·k²·Cout
  std::int64_t weight_rows = 0;     ///< Cin·k² (unfolded matrix height)
  std::int64_t weight_cols = 0;     ///< Cout (unfolded matrix width)
  std::int64_t logical_crossbars() const noexcept {
    return row_blocks * col_blocks;
  }
  std::int64_t total_cells() const noexcept {
    return logical_crossbars() * shape.cells();
  }
  /// Eq. 4 utilization in [0, 1].
  double utilization() const noexcept {
    return total_cells() > 0
               ? static_cast<double>(useful_cells) /
                     static_cast<double>(total_cells())
               : 0.0;
  }
  /// One ADC per bitline of every allocated logical crossbar (Fig. 5).
  std::int64_t adc_count() const noexcept {
    return logical_crossbars() * shape.cols;
  }

  /// Exact geometric equality — lets a DeploymentPlan prove its frozen
  /// mapping still matches what map_layer derives.
  bool operator==(const LayerMapping&) const = default;
};

/// Computes the mapping geometry of one CONV/FC layer onto crossbars of the
/// given shape. FC layers follow the k=1 convention. Throws for non-mappable
/// (pooling) layers.
LayerMapping map_layer(const nn::LayerSpec& layer, const CrossbarShape& shape);

/// Eq. 4 evaluated directly (kernel-aligned path only; requires r >= k²).
double utilization_eq4(std::int64_t cin, std::int64_t k, std::int64_t cout,
                       std::int64_t r, std::int64_t c);

}  // namespace autohet::mapping
