// Crossbar shapes and the candidate sets used throughout the paper.
//
// The paper distinguishes square crossbars (SXB, side lengths powers of 2 —
// the sizes used by ISAAC/PRIME-class homogeneous accelerators) from
// rectangle crossbars (RXB, §3.3) whose *height* is a multiple of 9 so that
// unfolded 3x3-kernel columns tile the wordlines without waste.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace autohet::mapping {

struct CrossbarShape {
  std::int64_t rows = 0;  ///< wordlines (r in Eq. 4)
  std::int64_t cols = 0;  ///< bitlines  (c in Eq. 4)

  std::int64_t cells() const noexcept { return rows * cols; }
  bool is_square() const noexcept { return rows == cols; }

  std::string name() const {
    return std::to_string(rows) + "x" + std::to_string(cols);
  }

  friend bool operator==(const CrossbarShape&, const CrossbarShape&) = default;
  /// Orders by cell count, then rows; gives candidate lists a canonical order.
  friend bool operator<(const CrossbarShape& a, const CrossbarShape& b) {
    if (a.cells() != b.cells()) return a.cells() < b.cells();
    return a.rows < b.rows;
  }
};

/// The five square sizes used by the homogeneous baselines (§4.1):
/// 32x32, 64x64, 128x128, 256x256, 512x512.
std::vector<CrossbarShape> square_candidates();

/// The five rectangle shapes (§4.3): 36x32, 72x64, 144x128, 288x256, 576x512.
std::vector<CrossbarShape> rectangle_candidates();

/// The paper's default heterogeneous candidate set (§3.3 / §4.1):
/// 32x32, 36x32, 72x64, 288x256, 576x512.
std::vector<CrossbarShape> hybrid_candidates();

/// All ten shapes (5 SXB + 5 RXB) used by the Fig. 11 sensitivity study.
std::vector<CrossbarShape> all_candidates();

/// Picks `num_square` SXBs + `num_rect` RXBs (largest-first from each family)
/// for the Fig. 11(a) aSbR sweeps.
std::vector<CrossbarShape> mixed_candidates(int num_square, int num_rect);

}  // namespace autohet::mapping
