// Functional execution of a DNN on the simulated crossbar fabric.
//
// MappedLayer programs a layer's quantized weights into a grid of logical
// crossbars following the paper's kernel-aligned mapping (Fig. 7): row block
// `rb` holds floor(r/k²) whole kernels per column, column block `cb` holds a
// c-wide slice of the output channels. SimulatedModel then runs a whole
// network forward pass where every CONV/FC MVM goes through the crossbars
// (bit-serial or integer datapath — bit-exact to each other), with
// activations quantized to 8 bits per layer, exactly the datapath the
// accelerator implements. Pooling layers run on the tile's pooling module
// (plain float here).
//
// Two kernel policies exist: KernelPolicy::kFast (packed bit-plane kernels,
// allocation-free accumulation, fast fault burn-in) and
// KernelPolicy::kScalarReference (the retained per-cell datapaths and
// per-crossbar partial vectors). They produce bit-identical numbers
// (tested); the scalar policy is the equivalence oracle and the
// speedup-measurement baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "mapping/layer_mapping.hpp"
#include "mapping/plan.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "reram/crossbar.hpp"
#include "tensor/tensor.hpp"

namespace autohet::reram {

enum class DatapathMode {
  kBitSerial,  ///< faithful 1-bit-DAC / 1-bit-cell shift-add datapath
  kInteger     ///< int32 GEMV shortcut (bit-exact to kBitSerial)
};

enum class KernelPolicy {
  kFast,            ///< packed bit-plane kernels + fast fault burn-in
  kScalarReference  ///< retained scalar datapaths (oracle / baseline)
};

/// One crossbar's recorded fault burn-in: the variation-only stats of the
/// recording pass plus the stuck-draw candidates captured from the stream
/// (see FaultModel::apply_recording).
struct CrossbarBurnRecord {
  FaultMapStats variation;
  std::vector<StuckCandidate> hits;
};

/// One recorded trial burn across a whole fabric, indexed [layer][crossbar].
/// Together with the post-variation fabric clone this replays the burn-in
/// for any stuck-at rates within FaultModel::kRecordCap53.
struct TrialBurnRecord {
  std::vector<std::vector<CrossbarBurnRecord>> layers;
};

class MappedLayer {
 public:
  /// Quantizes `weight` ([Cout,Cin,k,k] or [out,in]) to 8 bits and programs
  /// it across crossbars of the given shape. When `faults` is non-null and
  /// non-ideal, stuck-at maps / programming variation / drift are burned
  /// into the arrays at this programming step (deterministic in the fault
  /// seed and `layer_id`), and MVMs sample the configured read noise.
  MappedLayer(const nn::LayerSpec& spec, const tensor::Tensor& weight,
              const mapping::CrossbarShape& shape,
              const FaultModel* faults = nullptr, std::uint64_t layer_id = 0,
              KernelPolicy policy = KernelPolicy::kFast);

  /// Programs from an already-derived mapping geometry (a DeploymentPlan's
  /// frozen per-layer mapping) instead of re-deriving it from the shape.
  /// `mapping` must equal what map_layer derives for (spec, mapping.shape)
  /// — checked, so a stale plan cannot silently program a different layout.
  MappedLayer(const nn::LayerSpec& spec, const tensor::Tensor& weight,
              const mapping::LayerMapping& mapping,
              const FaultModel* faults = nullptr, std::uint64_t layer_id = 0,
              KernelPolicy policy = KernelPolicy::kFast);

  const mapping::LayerMapping& mapping() const noexcept { return mapping_; }
  float weight_scale() const noexcept { return weight_scale_; }
  const nn::LayerSpec& spec() const noexcept { return spec_; }
  KernelPolicy policy() const noexcept { return policy_; }

  /// Integer MVM of one unfolded input column (length Cin·k², 8-bit).
  /// Returns one int32 accumulation per output channel: partial sums from
  /// the row blocks are merged by the adder tree. Convenience wrapper over
  /// mvm_into (call_key 0).
  std::vector<std::int32_t> mvm(std::span<const std::uint8_t> input_column,
                                DatapathMode mode) const;

  /// Allocation-free MVM: writes the merged accumulation into `out`
  /// (length weight_cols(), zero-filled here), accumulating row-block
  /// partials directly in the caller's buffer — no per-crossbar vectors.
  /// `scratch` is per-thread kernel scratch (packed input planes etc.).
  ///
  /// `call_key` seeds this call's read-noise stream: noise is drawn from an
  /// RNG derived from (fault seed, layer id, call_key, crossbar index), so
  /// the method is const in the strict sense — concurrent forwards on one
  /// fabric are race-free and deterministic. Callers that want independent
  /// noise across MVMs pass distinct keys (SimulatedModel derives them from
  /// the sample/noise stream and the output position); identical keys
  /// reproduce identical noise. Ignored on noise-free fabrics.
  void mvm_into(std::span<const std::uint8_t> input_column, DatapathMode mode,
                std::span<std::int32_t> out, kernels::KernelScratch& scratch,
                std::uint64_t call_key = 0) const;

  /// Batched MVM over `count` input columns in transposed layout:
  /// columns_t is weight_rows() × count row-major (input row i for every
  /// column at columns_t[i·count ..]); accs_t is weight_cols() × count
  /// (output col j for every column at accs_t[j·count ..], zero-filled
  /// here). The batch dimension is innermost and contiguous, so the kernel
  /// vectorizes even on narrow crossbars and the per-call overhead of
  /// `count` separate mvm_into calls is amortized away. Supports the
  /// integer datapath (batched GEMM kernel) and the bit-serial datapath
  /// (all samples' packed input planes pushed through one dispatched
  /// AND+popcount kernel; requires prepare_packed()). Integer sums are
  /// exact — results are bit-identical to per-column mvm_into. Noise-free
  /// fabrics only (checked).
  void mvm_batch_into(const std::uint8_t* columns_t, std::int64_t count,
                      DatapathMode mode, std::span<std::int32_t> accs_t,
                      kernels::KernelScratch& scratch) const;

  /// True when this layer's fabric carries read noise (the per-call keyed
  /// RNG path); batched MVMs are unavailable then.
  bool read_noisy() const noexcept { return read_sigma_weights_ > 0.0; }

  /// Number of row blocks in the mapping — the intra-MVM parallel axis: a
  /// row block's partial sums touch only its own crossbars, so distinct
  /// blocks can run concurrently and merge by exact integer addition.
  std::int64_t row_block_count() const noexcept { return mapping_.row_blocks; }

  /// Accumulates row block `rb`'s partial MVM into `out` (length
  /// weight_cols(), NOT zero-filled — accumulates on top). mvm_into equals
  /// zero-fill + this for rb = 0 .. row_block_count()-1 in any order (the
  /// read-noise stream is keyed per crossbar, not per execution order, so
  /// even noisy partials are order-free).
  void mvm_row_block_accum(std::int64_t rb,
                           std::span<const std::uint8_t> input_column,
                           DatapathMode mode, std::int32_t* out,
                           kernels::KernelScratch& scratch,
                           std::uint64_t call_key = 0) const;

  /// The retained pre-packing datapath: scalar kernels, one partial vector
  /// per crossbar, merged into a freshly allocated output — the
  /// KernelPolicy::kScalarReference path. Bit-identical to mvm_into.
  std::vector<std::int32_t> mvm_scalar(
      std::span<const std::uint8_t> input_column, DatapathMode mode,
      std::uint64_t call_key = 0) const;

  /// Packs every crossbar's weight bit planes (idempotent) so bit-serial /
  /// multilevel MVMs take the AND+popcount kernels.
  void prepare_packed();

  /// Burns a fault model into the (clean) programmed arrays: the same
  /// operation the fault-model constructor path performs, exposed so a
  /// fabric clone can re-burn per-trial faults without re-quantizing and
  /// re-programming the weights. `reference_path` forces the retained
  /// per-cell burn-in kernel (bit-identical, slower).
  void burn_faults(const FaultModel& faults, std::uint64_t layer_id,
                   bool reference_path = false);

  /// burn_faults variant that applies programming variation and *records*
  /// the stuck-draw stream per crossbar instead of applying it (see
  /// FaultModel::apply_recording). Fault stats hold the variation-only
  /// counts until replay_faults completes the burn.
  void burn_faults_recording(const FaultModel& faults, std::uint64_t layer_id,
                             std::vector<CrossbarBurnRecord>& out);

  /// Completes a recorded burn on this layer (a clone of the recording's
  /// post-variation state): forces the recorded candidates that fall under
  /// `faults`' stuck thresholds and installs exactly the fault stats and
  /// read-noise streams burn_faults would have produced.
  void replay_faults(const FaultModel& faults, std::uint64_t layer_id,
                     const std::vector<CrossbarBurnRecord>& recorded);

  /// Perturbs every programmed cell with conductance variation of relative
  /// magnitude `sigma` (see LogicalCrossbar::apply_variation).
  void apply_variation(common::Rng& rng, double sigma);

  /// Stuck-at / variation counts burned in at construction (all zero when
  /// the layer was programmed without a fault model).
  const FaultMapStats& fault_stats() const noexcept { return fault_stats_; }

 private:
  nn::LayerSpec spec_;
  mapping::LayerMapping mapping_;
  float weight_scale_ = 1.0f;
  KernelPolicy policy_ = KernelPolicy::kFast;
  // Crossbar grid, row-major: crossbars_[rb * col_blocks + cb].
  std::vector<LogicalCrossbar> crossbars_;
  // Channel range [start, end) of each row block (kernel-aligned path) or
  // row range (split path).
  std::vector<std::pair<std::int64_t, std::int64_t>> row_ranges_;
  FaultMapStats fault_stats_;
  double read_sigma_weights_ = 0.0;  ///< per-read weight-LSB noise rms
  /// Base of the cycle-to-cycle read-noise stream, seeded from the fault
  /// seed and layer id. Never advanced in place: each MVM derives a child
  /// stream from (call_key, crossbar index), keeping const methods
  /// genuinely read-only so concurrent forwards are safe.
  common::Rng read_base_;
};

/// Whole-network functional simulation on the heterogeneous fabric.
class SimulatedModel {
 public:
  /// `shapes` assigns a crossbar shape to each mappable layer (same order
  /// as NetworkSpec::mappable_layers()). A non-ideal `faults` config runs
  /// the whole network on a faulty fabric: stuck-at maps and programming
  /// variation are burned in at construction, read noise is sampled at MVM
  /// time (integer datapath only). The default ideal config is bit-identical
  /// to the fault-free fabric.
  SimulatedModel(const nn::Model& model,
                 const std::vector<mapping::CrossbarShape>& shapes,
                 DatapathMode mode = DatapathMode::kInteger,
                 const FaultConfig& faults = {},
                 KernelPolicy policy = KernelPolicy::kFast);

  /// Builds the fabric from a compiled DeploymentPlan: each mappable layer
  /// is programmed from the plan's frozen per-layer geometry and the plan's
  /// FaultConfig (`plan.accel.faults`). The plan is validated against the
  /// model first. Bit-identical to the shape-list constructor on the inputs
  /// the plan was compiled from.
  SimulatedModel(const nn::Model& model, const plan::DeploymentPlan& plan,
                 DatapathMode mode = DatapathMode::kInteger,
                 KernelPolicy policy = KernelPolicy::kFast);

  /// Clones this (clean) fabric and burns `faults` into the copy — the
  /// quantization and weight-programming work is reused, only the fault
  /// burn-in runs. Bit-identical to constructing a fresh SimulatedModel
  /// with the same faults (the programmed cells and the fault RNG streams
  /// are both pure functions of their seeds). Requires an ideal fabric.
  SimulatedModel with_faults(const FaultConfig& faults) const;

  /// with_faults variant that burns `faults`' programming variation while
  /// *recording* the stuck-draw stream into `record`: the returned fabric is
  /// the post-variation state, completed per-rate by replay_faults. Requires
  /// an ideal source fabric and FaultModel(faults).record_eligible().
  SimulatedModel with_faults_recorded(const FaultConfig& faults,
                                      TrialBurnRecord& record) const;

  /// Completes a recorded burn: clones this post-variation fabric (the
  /// with_faults_recorded result) and forces the recorded candidates under
  /// `faults`' stuck thresholds. Bit-identical to with_faults(faults) on
  /// the original ideal fabric for any `faults` sharing the recording's RNG
  /// stream — same seed, program_sigma and cell_bits, any stuck rates
  /// within the recording cap (tested).
  SimulatedModel replay_faults(const FaultConfig& faults,
                               const TrialBurnRecord& record) const;

  /// Forward pass (CHW input). Requires a sequentially runnable network.
  /// `noise_stream` selects the read-noise stream for this pass (see
  /// MappedLayer::mvm_into); passes with equal streams are identical,
  /// distinct streams draw independent noise. Irrelevant without read
  /// noise. Concurrent forwards on one instance are safe.
  ///
  /// A non-null `pool` splits each mappable layer's work across the pool
  /// *within* this single forward: conv position tiles and FC row blocks
  /// run as independent integer partials, so a lone trial can use every
  /// worker. Integer sums reassociate exactly — outputs are bit-identical
  /// to the serial pass for every pool size.
  tensor::Tensor forward(const tensor::Tensor& input,
                         std::uint64_t noise_stream = 0,
                         common::ThreadPool* pool = nullptr) const;

  /// Forward pass that also captures each mappable layer's raw output
  /// (pre-activation) — the per-layer hooks the robustness metric compares
  /// against an ideal fabric to attribute fault-induced error to layers.
  struct ForwardTrace {
    tensor::Tensor output;
    std::vector<tensor::Tensor> mappable_outputs;
  };
  ForwardTrace forward_traced(const tensor::Tensor& input,
                              std::uint64_t noise_stream = 0,
                              common::ThreadPool* pool = nullptr) const;

  /// DAG forward pass: executes `graph` (whose kLayer skeleton must equal
  /// the model's spec().layers — checked) on the crossbar fabric. Mappable
  /// nodes run through their MappedLayer exactly as in forward_traced;
  /// pooling nodes run on the tile's pooling module; residual adds execute
  /// on the vector unit in *exact integer arithmetic* (both operands
  /// quantized to a shared symmetric 8-bit grid, summed in int32, one
  /// dequantization); concat/activation/global-avg-pool are elementwise or
  /// exact-copy ops. Intermediate tensors are held only until their last
  /// consumer reads them (fan-out buffering). For chain graphs the result
  /// is bit-identical to forward_traced on the same inputs.
  ForwardTrace forward_graph_traced(const nn::Graph& graph,
                                    const tensor::Tensor& input,
                                    std::uint64_t noise_stream = 0,
                                    common::ThreadPool* pool = nullptr) const;
  tensor::Tensor forward_graph(const nn::Graph& graph,
                               const tensor::Tensor& input,
                               std::uint64_t noise_stream = 0,
                               common::ThreadPool* pool = nullptr) const;

  /// Traced forward over a batch of inputs (sample i uses noise stream
  /// `noise_stream0 + i`). Fully-connected layers on a noise-free fast-path
  /// fabric run all samples through one batched MVM per layer (per-sample
  /// activation scales are applied after the exact integer accumulation);
  /// everything else runs per sample. Results are bit-identical to calling
  /// forward_traced(inputs[i], noise_stream0 + i) one sample at a time.
  std::vector<ForwardTrace> forward_traced_batch(
      std::span<const tensor::Tensor> inputs, std::uint64_t noise_stream0 = 0,
      common::ThreadPool* pool = nullptr) const;

  const std::vector<MappedLayer>& mapped_layers() const noexcept {
    return layers_;
  }
  KernelPolicy policy() const noexcept { return policy_; }

  /// Assembles a fabric from prebuilt per-layer fabrics (the
  /// LayerFabricCache path). `layers[i]` must have been built from this
  /// model's mappable layer i (same spec, weight, shape) under `faults`
  /// with layer id i and `policy` — then the result is bit-identical to
  /// the shape-list constructor: per-layer programming and burn-in are
  /// pure functions of exactly those inputs.
  SimulatedModel(const nn::Model& model, DatapathMode mode,
                 const FaultConfig& faults, KernelPolicy policy,
                 std::vector<MappedLayer> layers);

  /// Aggregate stuck-at / variation counts over all layers (zero when the
  /// fabric is ideal).
  FaultMapStats fault_stats() const noexcept;

  /// Applies conductance variation to every mapped layer — the device
  /// non-ideality study of the variation example/bench. Irreversible on
  /// this instance; construct a fresh SimulatedModel for a clean fabric.
  void apply_variation(common::Rng& rng, double sigma);

 private:
  tensor::Tensor run_mappable(const MappedLayer& layer,
                              const tensor::Tensor& input,
                              std::uint64_t noise_stream,
                              common::ThreadPool* pool) const;

  const nn::Model* model_;
  DatapathMode mode_;
  FaultModel fault_model_;
  KernelPolicy policy_ = KernelPolicy::kFast;
  std::vector<MappedLayer> layers_;  // one per mappable layer
};

/// Cross-rate Monte-Carlo fabric cache (the trial-fabric cache).
///
/// FaultConfig::for_trial derives trial seeds from the base seed alone, and
/// the burn-in stream consumes draws identically for every nonzero stuck
/// rate (one uniform per physical cell — the thresholds move, the stream
/// does not). Across a fault sweep's rate grid the per-trial RNG streams
/// are therefore *identical*, and one recorded burn per (workload, trial)
/// serves every rate point: the post-variation fabric is cached together
/// with the sparse stuck-candidate list, and each rate point replays in a
/// single clone-and-patch pass instead of re-burning millions of cells.
/// The ideal reference fabric, its synthetic inputs and traced reference
/// outputs (independent of every fault knob) are cached alongside and
/// shared across the whole grid.
///
/// Reports stay byte-identical to the uncached path (tested); the cache is
/// purely a wall-time optimization. Thread-safe. Holds one workload at a
/// time — a new WorkloadKey drops all previous state, matching the sweep
/// access pattern (all rate/cell-bits points of one configuration, then the
/// next configuration).
class TrialFabricCache {
 public:
  /// Everything that identifies one MC workload besides the fault config.
  struct WorkloadKey {
    const nn::Model* model = nullptr;
    std::vector<mapping::CrossbarShape> shapes;
    DatapathMode mode = DatapathMode::kInteger;
    int samples = 0;
    std::uint64_t input_seed = 0;
    bool operator==(const WorkloadKey&) const = default;
  };

  /// Per-workload ideal references: the clean fabric, the synthetic inputs
  /// and their traced reference outputs.
  struct IdealRefs {
    SimulatedModel ideal;
    std::vector<tensor::Tensor> images;
    std::vector<SimulatedModel::ForwardTrace> references;
    std::vector<std::int64_t> reference_classes;
  };

  /// One recorded trial burn: the post-variation fabric plus the recorded
  /// stuck candidates, replayable for any rates within the cap.
  struct TrialFabric {
    SimulatedModel fabric;
    TrialBurnRecord record;
  };

  /// Returns the ideal-reference slot for `key`, building it via `build` on
  /// first use of this workload (a different key evicts everything).
  std::shared_ptr<const IdealRefs> ideal_refs(
      const WorkloadKey& key, const std::function<IdealRefs()>& build);

  /// Returns the recorded trial fabric for `trial_faults` (a for_trial-
  /// derived, record-eligible config), recording via `build` on first use.
  /// Keyed by (cell_bits, program_sigma, seed), so one recording per trial
  /// serves every stuck-rate point of a sweep grid. Builds for distinct
  /// trials proceed concurrently (per-slot locking).
  std::shared_ptr<const TrialFabric> trial_fabric(
      const FaultConfig& trial_faults,
      const std::function<TrialFabric()>& build);

  struct Stats {
    std::uint64_t ideal_builds = 0;
    std::uint64_t ideal_hits = 0;
    std::uint64_t trial_records = 0;  ///< recording burns executed
    std::uint64_t trial_replays = 0;  ///< cache hits replayed instead
  };
  Stats stats() const;
  void clear();

 private:
  /// The fault knobs that pin a trial's burn-in RNG stream.
  struct TrialKey {
    int cell_bits = 0;
    double program_sigma = 0.0;
    std::uint64_t seed = 0;
    bool operator==(const TrialKey&) const = default;
  };
  struct IdealSlot {
    std::mutex m;
    std::shared_ptr<const IdealRefs> value;
  };
  struct TrialSlot {
    std::mutex m;
    std::shared_ptr<const TrialFabric> value;
  };
  /// Hard slot cap: a sweep holds trials × one (cell_bits, sigma) generation
  /// at a time; stale generations are evicted on insert.
  static constexpr std::size_t kMaxTrialSlots = 64;

  mutable std::mutex mutex_;  ///< guards the slot maps, not the builds
  bool has_workload_ = false;
  WorkloadKey key_;
  std::shared_ptr<IdealSlot> ideal_slot_;
  std::vector<std::pair<TrialKey, std::shared_ptr<TrialSlot>>> trials_;
  Stats stats_;
};

/// Cross-allocation per-layer fabric cache (the in-search fabric cache).
///
/// A programmed-and-burned MappedLayer is a pure function of (layer spec +
/// weights, crossbar shape, fault config, layer id, kernel policy): the
/// burn-in RNG stream is seeded per layer, independent of the rest of the
/// allocation. An RL search revisits the same per-layer (layer, candidate)
/// choices under one fixed FaultConfig even though whole allocations rarely
/// repeat, so an L×C table of prebuilt layers turns the per-episode
/// Monte-Carlo fabric construction into plain copies — no re-quantization,
/// no burn-in RNG. Fabrics assembled from cached layers are bit-identical
/// to constructor-built ones (tested).
///
/// Thread-safe; bounded (all entries are dropped when the cap is hit — the
/// steady state of one search is a few dozen entries, so eviction only
/// fires when workloads churn).
class LayerFabricCache {
 public:
  /// Returns the (shared, immutable) prebuilt layer for the key, building
  /// it via `build` on first use. Builds for distinct keys proceed
  /// concurrently (per-slot locking).
  std::shared_ptr<const MappedLayer> layer(
      const nn::Model& model, std::size_t layer_index,
      const mapping::CrossbarShape& shape, const FaultConfig& faults,
      KernelPolicy policy, const std::function<MappedLayer()>& build);

  /// Allocation-invariant ideal references for the assembly path, keyed by
  /// (model, mode, samples, input_seed, policy) — no shapes. One reference
  /// set serves every allocation: the ideal fabric's forward is
  /// partition-exact on both datapaths (integer sums reassociate exactly
  /// and an ideal fabric has no read noise), so reference outputs are
  /// bit-identical across crossbar tilings (tested).
  std::shared_ptr<const TrialFabricCache::IdealRefs> ideal_refs(
      const nn::Model& model, DatapathMode mode, int samples,
      std::uint64_t input_seed, KernelPolicy policy,
      const std::function<TrialFabricCache::IdealRefs()>& build);

  struct Stats {
    std::uint64_t builds = 0;
    std::uint64_t hits = 0;
    std::uint64_t refs_builds = 0;
    std::uint64_t refs_hits = 0;
  };
  Stats stats() const;
  void clear();

 private:
  struct Key {
    const nn::Model* model = nullptr;
    std::size_t layer_index = 0;
    std::int64_t rows = 0;
    std::int64_t cols = 0;
    FaultConfig faults;
    KernelPolicy policy = KernelPolicy::kFast;
    bool operator==(const Key&) const = default;
  };
  struct Slot {
    std::mutex m;
    std::shared_ptr<const MappedLayer> value;
  };
  struct RefsKey {
    const nn::Model* model = nullptr;
    DatapathMode mode = DatapathMode::kInteger;
    int samples = 0;
    std::uint64_t input_seed = 0;
    KernelPolicy policy = KernelPolicy::kFast;
    bool operator==(const RefsKey&) const = default;
  };
  struct RefsSlot {
    std::mutex m;
    std::shared_ptr<const TrialFabricCache::IdealRefs> value;
  };
  /// Hard entry cap: one search holds L layers × C candidates × (ideal +
  /// one trial config) ≈ dozens; 512 leaves room for several concurrent
  /// workloads before wholesale eviction.
  static constexpr std::size_t kMaxSlots = 512;
  static constexpr std::size_t kMaxRefsSlots = 8;

  mutable std::mutex mutex_;  ///< guards the slot lists, not the builds
  std::vector<std::pair<Key, std::shared_ptr<Slot>>> slots_;
  std::vector<std::pair<RefsKey, std::shared_ptr<RefsSlot>>> refs_slots_;
  Stats stats_;
};

/// Knobs of the Monte-Carlo robustness evaluation.
struct RobustnessOptions {
  int trials = 8;    ///< independent fault-map seeds
  int samples = 16;  ///< synthetic inputs evaluated per trial
  /// Trial budget (reram/faults.hpp). The default kFixed runs exactly
  /// `trials` — byte-identical reports. kAdaptive runs the same seeded
  /// trial stream but stops at the first chunk boundary where the pooled
  /// agreement's Wilson CI half-width meets `budget.ci_halfwidth`
  /// (`trials` caps the spend unless budget.max_trials overrides it), and
  /// unlocks zero-stuck-rate cache spanning when a cache is supplied.
  RobustnessBudget budget;
  std::uint64_t input_seed = 0x1a9e5ULL;
  DatapathMode mode = DatapathMode::kInteger;
  /// Worker threads for the trial fan-out: 1 = serial (default), 0 = one
  /// per hardware thread, n > 1 = exactly n. Every thread count produces
  /// byte-identical reports (trials are independently seeded and the
  /// reduction replays the serial accumulation order).
  int threads = 1;
  /// kScalarReference runs the retained scalar kernels with per-trial
  /// fabric reconstruction, always serially — the measurement baseline and
  /// equivalence oracle for the fast path. Reports are bit-identical.
  KernelPolicy kernels = KernelPolicy::kFast;
  /// Optional cross-call fabric cache. When set, the ideal references are
  /// shared across calls and — for record-eligible fault configs — trial
  /// fabrics are recorded once and replayed per rate point. Reports stay
  /// byte-identical to the uncached path (tested). Ignored by the scalar
  /// baseline. EvaluationEngine::evaluate_robustness supplies its own
  /// cache automatically.
  TrialFabricCache* cache = nullptr;
  /// Optional cross-allocation per-layer fabric cache (see
  /// LayerFabricCache). When set (and the fast kernels are active), the
  /// ideal fabric and every trial fabric are assembled from shared
  /// prebuilt layers instead of re-programming and re-burning per call —
  /// the fast path for the per-episode in-search robustness reward, where
  /// consecutive calls differ in allocation but share per-layer choices.
  /// Reports are bit-identical to the uncached path (tested). Ignored by
  /// the scalar baseline. EvaluationEngine::evaluate_robustness_cached
  /// supplies the engine's cache automatically.
  LayerFabricCache* layer_cache = nullptr;
  /// Optional externally owned worker pool for the parallel fan-out. When
  /// null and threads > 1, a pool of `threads` workers is created for the
  /// call; when set, `pool` is used as-is (its size wins over `threads`
  /// for actual concurrency — `threads` still gates whether the parallel
  /// path is taken at all). EvaluationEngine passes its shared pool so MC
  /// calls don't re-spawn workers. Reports stay byte-identical either way.
  common::ThreadPool* pool = nullptr;
};

/// Accuracy-under-faults over N seeded trials: for each trial a fresh
/// faulty fabric (fault seed = faults.for_trial(t)) classifies `samples`
/// synthetic inputs; accuracy is argmax agreement with the *ideal* fabric
/// (isolating device non-ideality from quantization). Reports mean/stddev
/// across trials plus each layer's mean relative output error.
/// Deterministic: same model, shapes, faults and options ⇒ same report,
/// regardless of options.threads and options.kernels.
RobustnessReport monte_carlo_robustness(
    const nn::Model& model, const std::vector<mapping::CrossbarShape>& shapes,
    const FaultConfig& faults, const RobustnessOptions& options = {});

/// Plan-based robustness MC: the shapes and FaultConfig come from the
/// compiled plan (validated against `model` first). Bit-identical to the
/// explicit-shapes overload on the inputs the plan was compiled from.
RobustnessReport monte_carlo_robustness(const nn::Model& model,
                                        const plan::DeploymentPlan& plan,
                                        const RobustnessOptions& options = {});

}  // namespace autohet::reram
