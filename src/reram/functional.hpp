// Functional execution of a DNN on the simulated crossbar fabric.
//
// MappedLayer programs a layer's quantized weights into a grid of logical
// crossbars following the paper's kernel-aligned mapping (Fig. 7): row block
// `rb` holds floor(r/k²) whole kernels per column, column block `cb` holds a
// c-wide slice of the output channels. SimulatedModel then runs a whole
// network forward pass where every CONV/FC MVM goes through the crossbars
// (bit-serial or integer datapath — bit-exact to each other), with
// activations quantized to 8 bits per layer, exactly the datapath the
// accelerator implements. Pooling layers run on the tile's pooling module
// (plain float here).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mapping/layer_mapping.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "reram/crossbar.hpp"
#include "tensor/tensor.hpp"

namespace autohet::reram {

enum class DatapathMode {
  kBitSerial,  ///< faithful 1-bit-DAC / 1-bit-cell shift-add datapath
  kInteger     ///< int32 GEMV shortcut (bit-exact to kBitSerial)
};

class MappedLayer {
 public:
  /// Quantizes `weight` ([Cout,Cin,k,k] or [out,in]) to 8 bits and programs
  /// it across crossbars of the given shape.
  MappedLayer(const nn::LayerSpec& spec, const tensor::Tensor& weight,
              const mapping::CrossbarShape& shape);

  const mapping::LayerMapping& mapping() const noexcept { return mapping_; }
  float weight_scale() const noexcept { return weight_scale_; }
  const nn::LayerSpec& spec() const noexcept { return spec_; }

  /// Integer MVM of one unfolded input column (length Cin·k², 8-bit).
  /// Returns one int32 accumulation per output channel: partial sums from
  /// the row blocks are merged by the adder tree.
  std::vector<std::int32_t> mvm(std::span<const std::uint8_t> input_column,
                                DatapathMode mode) const;

  /// Perturbs every programmed cell with conductance variation of relative
  /// magnitude `sigma` (see LogicalCrossbar::apply_variation).
  void apply_variation(common::Rng& rng, double sigma);

 private:
  nn::LayerSpec spec_;
  mapping::LayerMapping mapping_;
  float weight_scale_ = 1.0f;
  // Crossbar grid, row-major: crossbars_[rb * col_blocks + cb].
  std::vector<LogicalCrossbar> crossbars_;
  // Channel range [start, end) of each row block (kernel-aligned path) or
  // row range (split path).
  std::vector<std::pair<std::int64_t, std::int64_t>> row_ranges_;
};

/// Whole-network functional simulation on the heterogeneous fabric.
class SimulatedModel {
 public:
  /// `shapes` assigns a crossbar shape to each mappable layer (same order
  /// as NetworkSpec::mappable_layers()).
  SimulatedModel(const nn::Model& model,
                 const std::vector<mapping::CrossbarShape>& shapes,
                 DatapathMode mode = DatapathMode::kInteger);

  /// Forward pass (CHW input). Requires a sequentially runnable network.
  tensor::Tensor forward(const tensor::Tensor& input) const;

  const std::vector<MappedLayer>& mapped_layers() const noexcept {
    return layers_;
  }

  /// Applies conductance variation to every mapped layer — the device
  /// non-ideality study of the variation example/bench. Irreversible on
  /// this instance; construct a fresh SimulatedModel for a clean fabric.
  void apply_variation(common::Rng& rng, double sigma);

 private:
  tensor::Tensor run_mappable(const MappedLayer& layer,
                              const tensor::Tensor& input) const;

  const nn::Model* model_;
  DatapathMode mode_;
  std::vector<MappedLayer> layers_;  // one per mappable layer
};

}  // namespace autohet::reram
