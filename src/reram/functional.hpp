// Functional execution of a DNN on the simulated crossbar fabric.
//
// MappedLayer programs a layer's quantized weights into a grid of logical
// crossbars following the paper's kernel-aligned mapping (Fig. 7): row block
// `rb` holds floor(r/k²) whole kernels per column, column block `cb` holds a
// c-wide slice of the output channels. SimulatedModel then runs a whole
// network forward pass where every CONV/FC MVM goes through the crossbars
// (bit-serial or integer datapath — bit-exact to each other), with
// activations quantized to 8 bits per layer, exactly the datapath the
// accelerator implements. Pooling layers run on the tile's pooling module
// (plain float here).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mapping/layer_mapping.hpp"
#include "mapping/plan.hpp"
#include "nn/model.hpp"
#include "nn/quantize.hpp"
#include "reram/crossbar.hpp"
#include "tensor/tensor.hpp"

namespace autohet::reram {

enum class DatapathMode {
  kBitSerial,  ///< faithful 1-bit-DAC / 1-bit-cell shift-add datapath
  kInteger     ///< int32 GEMV shortcut (bit-exact to kBitSerial)
};

class MappedLayer {
 public:
  /// Quantizes `weight` ([Cout,Cin,k,k] or [out,in]) to 8 bits and programs
  /// it across crossbars of the given shape. When `faults` is non-null and
  /// non-ideal, stuck-at maps / programming variation / drift are burned
  /// into the arrays at this programming step (deterministic in the fault
  /// seed and `layer_id`), and MVMs sample the configured read noise.
  MappedLayer(const nn::LayerSpec& spec, const tensor::Tensor& weight,
              const mapping::CrossbarShape& shape,
              const FaultModel* faults = nullptr, std::uint64_t layer_id = 0);

  /// Programs from an already-derived mapping geometry (a DeploymentPlan's
  /// frozen per-layer mapping) instead of re-deriving it from the shape.
  /// `mapping` must equal what map_layer derives for (spec, mapping.shape)
  /// — checked, so a stale plan cannot silently program a different layout.
  MappedLayer(const nn::LayerSpec& spec, const tensor::Tensor& weight,
              const mapping::LayerMapping& mapping,
              const FaultModel* faults = nullptr, std::uint64_t layer_id = 0);

  const mapping::LayerMapping& mapping() const noexcept { return mapping_; }
  float weight_scale() const noexcept { return weight_scale_; }
  const nn::LayerSpec& spec() const noexcept { return spec_; }

  /// Integer MVM of one unfolded input column (length Cin·k², 8-bit).
  /// Returns one int32 accumulation per output channel: partial sums from
  /// the row blocks are merged by the adder tree.
  std::vector<std::int32_t> mvm(std::span<const std::uint8_t> input_column,
                                DatapathMode mode) const;

  /// Perturbs every programmed cell with conductance variation of relative
  /// magnitude `sigma` (see LogicalCrossbar::apply_variation).
  void apply_variation(common::Rng& rng, double sigma);

  /// Stuck-at / variation counts burned in at construction (all zero when
  /// the layer was programmed without a fault model).
  const FaultMapStats& fault_stats() const noexcept { return fault_stats_; }

 private:
  nn::LayerSpec spec_;
  mapping::LayerMapping mapping_;
  float weight_scale_ = 1.0f;
  // Crossbar grid, row-major: crossbars_[rb * col_blocks + cb].
  std::vector<LogicalCrossbar> crossbars_;
  // Channel range [start, end) of each row block (kernel-aligned path) or
  // row range (split path).
  std::vector<std::pair<std::int64_t, std::int64_t>> row_ranges_;
  FaultMapStats fault_stats_;
  double read_sigma_weights_ = 0.0;  ///< per-read weight-LSB noise rms
  /// Cycle-to-cycle read noise stream; advanced per MVM, seeded from the
  /// fault seed and layer id so full forward passes stay deterministic.
  mutable common::Rng read_rng_;
};

/// Whole-network functional simulation on the heterogeneous fabric.
class SimulatedModel {
 public:
  /// `shapes` assigns a crossbar shape to each mappable layer (same order
  /// as NetworkSpec::mappable_layers()). A non-ideal `faults` config runs
  /// the whole network on a faulty fabric: stuck-at maps and programming
  /// variation are burned in at construction, read noise is sampled at MVM
  /// time (integer datapath only). The default ideal config is bit-identical
  /// to the fault-free fabric.
  SimulatedModel(const nn::Model& model,
                 const std::vector<mapping::CrossbarShape>& shapes,
                 DatapathMode mode = DatapathMode::kInteger,
                 const FaultConfig& faults = {});

  /// Builds the fabric from a compiled DeploymentPlan: each mappable layer
  /// is programmed from the plan's frozen per-layer geometry and the plan's
  /// FaultConfig (`plan.accel.faults`). The plan is validated against the
  /// model first. Bit-identical to the shape-list constructor on the inputs
  /// the plan was compiled from.
  SimulatedModel(const nn::Model& model, const plan::DeploymentPlan& plan,
                 DatapathMode mode = DatapathMode::kInteger);

  /// Forward pass (CHW input). Requires a sequentially runnable network.
  tensor::Tensor forward(const tensor::Tensor& input) const;

  /// Forward pass that also captures each mappable layer's raw output
  /// (pre-activation) — the per-layer hooks the robustness metric compares
  /// against an ideal fabric to attribute fault-induced error to layers.
  struct ForwardTrace {
    tensor::Tensor output;
    std::vector<tensor::Tensor> mappable_outputs;
  };
  ForwardTrace forward_traced(const tensor::Tensor& input) const;

  const std::vector<MappedLayer>& mapped_layers() const noexcept {
    return layers_;
  }

  /// Aggregate stuck-at / variation counts over all layers (zero when the
  /// fabric is ideal).
  FaultMapStats fault_stats() const noexcept;

  /// Applies conductance variation to every mapped layer — the device
  /// non-ideality study of the variation example/bench. Irreversible on
  /// this instance; construct a fresh SimulatedModel for a clean fabric.
  void apply_variation(common::Rng& rng, double sigma);

 private:
  tensor::Tensor run_mappable(const MappedLayer& layer,
                              const tensor::Tensor& input) const;

  const nn::Model* model_;
  DatapathMode mode_;
  FaultModel fault_model_;
  std::vector<MappedLayer> layers_;  // one per mappable layer
};

/// Knobs of the Monte-Carlo robustness evaluation.
struct RobustnessOptions {
  int trials = 8;    ///< independent fault-map seeds
  int samples = 16;  ///< synthetic inputs evaluated per trial
  std::uint64_t input_seed = 0x1a9e5ULL;
  DatapathMode mode = DatapathMode::kInteger;
};

/// Accuracy-under-faults over N seeded trials: for each trial a fresh
/// faulty fabric (fault seed = faults.for_trial(t)) classifies `samples`
/// synthetic inputs; accuracy is argmax agreement with the *ideal* fabric
/// (isolating device non-ideality from quantization). Reports mean/stddev
/// across trials plus each layer's mean relative output error.
/// Deterministic: same model, shapes, faults and options ⇒ same report.
RobustnessReport monte_carlo_robustness(
    const nn::Model& model, const std::vector<mapping::CrossbarShape>& shapes,
    const FaultConfig& faults, const RobustnessOptions& options = {});

/// Plan-based robustness MC: the shapes and FaultConfig come from the
/// compiled plan (validated against `model` first). Bit-identical to the
/// explicit-shapes overload on the inputs the plan was compiled from.
RobustnessReport monte_carlo_robustness(const nn::Model& model,
                                        const plan::DeploymentPlan& plan,
                                        const RobustnessOptions& options = {});

}  // namespace autohet::reram
