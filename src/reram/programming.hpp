// Crossbar programming (weight-write) cost model.
//
// Inference-time metrics dominate the paper's evaluation, but deploying or
// swapping a model costs real time and energy: every occupied cell must be
// SET/RESET-programmed, typically with several verify pulses. This model
// prices the Global Controller's PROGRAM_WEIGHTS phase — per-network
// deployment energy/latency — and the reconfiguration delta when a resident
// model is replaced (relevant to the multi-model residency extension; tiles
// freed by the tile-shared scheme avoid reprogramming entirely).
#pragma once

#include <cstdint>

#include "mapping/tile_allocator.hpp"
#include "reram/device_params.hpp"
#include "reram/faults.hpp"

namespace autohet::reram {

struct ProgrammingParams {
  double write_energy_pj_per_cell = 10.0;  ///< per pulse (SET/RESET avg)
  double write_latency_ns = 50.0;          ///< per pulse
  double verify_pulses = 3.0;              ///< mean program-and-verify count
  /// Extra program-and-verify pulses the write driver spends on a cell
  /// whose verify read keeps failing (stuck-at fault) before the controller
  /// marks it defective and moves on.
  double fault_retry_pulses = 5.0;
  /// Cells programmed concurrently (one row of one crossbar per step is
  /// typical; parallelism across crossbars is free — they have independent
  /// drivers).
  bool row_parallel = true;
};

struct ProgrammingReport {
  std::int64_t cells_programmed = 0;  ///< physical cells incl. bit planes
  /// Expected stuck-at cells among the programmed ones (deterministic
  /// expectation under the FaultConfig's Bernoulli rates; 0 when ideal).
  std::int64_t cells_stuck = 0;
  double energy_nj = 0.0;
  /// Wall-clock to program the whole network; crossbars program in
  /// parallel, rows within a crossbar serially.
  double latency_ns = 0.0;
};

/// Cost of programming every layer of an allocation onto its crossbars
/// (the initial deployment; the GC's phase-1 PROGRAM_WEIGHTS stream).
/// A non-ideal `faults` config adds the expected-value cost of stuck-at
/// cells — `fault_retry_pulses` wasted pulses per expected stuck cell, and
/// per-row serial retries that inflate the critical path. Deterministic
/// (no sampling); the default ideal config leaves every figure untouched.
ProgrammingReport evaluate_programming(
    const mapping::AllocationResult& allocation, const DeviceParams& device,
    const ProgrammingParams& params = {}, const FaultConfig& faults = {});

}  // namespace autohet::reram
