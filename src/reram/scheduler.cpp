#include "reram/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace autohet::reram {

ScheduleReport schedule_batch(const plan::DeploymentPlan& plan,
                              std::int64_t batch,
                              const std::vector<std::int64_t>& replication) {
  OBS_SPAN("schedule_batch");
  plan.validate();
  AUTOHET_CHECK(batch > 0, "batch must be positive");
  AUTOHET_CHECK(replication.empty() || replication.size() == plan.layers.size(),
                "replication must be empty or one entry per layer");

  const std::vector<plan::LayerCost> costs = plan::plan_layer_costs(plan);
  const auto n = static_cast<std::int64_t>(costs.size());
  std::vector<double> interval(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    const std::int64_t rep =
        replication.empty() ? 1 : replication[static_cast<std::size_t>(k)];
    AUTOHET_CHECK(rep >= 1, "replication factors must be >= 1");
    interval[static_cast<std::size_t>(k)] =
        costs[static_cast<std::size_t>(k)].latency_ns /
        static_cast<double>(rep);
  }
  // Graph dependency edges (for v1 chains: exactly the historical k-1
  // rule with zero delay, so the arithmetic below is bit-identical).
  const plan::PlanDataflow flow = plan::plan_dataflow(plan);

  ScheduleReport report;
  report.tasks.resize(static_cast<std::size_t>(batch * n));
  std::vector<double> stage_busy(static_cast<std::size_t>(n), 0.0);
  for (std::int64_t i = 0; i < batch; ++i) {
    for (std::int64_t k = 0; k < n; ++k) {
      double start = 0.0;
      for (const plan::LayerDep& dep :
           flow.deps[static_cast<std::size_t>(k)]) {
        // Dataflow dependency: every producing layer's output, plus the
        // vector-unit delay of the non-mappable ops on the path.
        start = std::max(start, report.task(i, dep.layer, n).finish_ns +
                                    dep.delay_ns);
      }
      if (i > 0) {
        start = std::max(start, report.task(i - 1, k, n).start_ns +
                                    interval[static_cast<std::size_t>(k)]);
      }
      TaskTiming& t =
          report.tasks[static_cast<std::size_t>(i * n + k)];
      t.image = i;
      t.layer = k;
      t.start_ns = start;
      t.finish_ns = start + interval[static_cast<std::size_t>(k)];
      stage_busy[static_cast<std::size_t>(k)] +=
          interval[static_cast<std::size_t>(k)];
      report.makespan_ns = std::max(
          report.makespan_ns,
          t.finish_ns + flow.tail_delay_ns[static_cast<std::size_t>(k)]);
    }
  }
  if (batch > 1) {
    const double first_start = report.task(0, n - 1, n).start_ns;
    const double last_start = report.task(batch - 1, n - 1, n).start_ns;
    const double gap = (last_start - first_start) /
                       static_cast<double>(batch - 1);
    if (gap > 0.0) {
      report.steady_throughput_inferences_per_s = 1e9 / gap;
    }
  }
  report.stage_busy_fraction.reserve(static_cast<std::size_t>(n));
  for (std::int64_t k = 0; k < n; ++k) {
    report.stage_busy_fraction.push_back(
        report.makespan_ns > 0.0
            ? stage_busy[static_cast<std::size_t>(k)] / report.makespan_ns
            : 0.0);
    OBS_PROFILE_RECORD(obs::ProfileKind::kScheduleTask, k, 0, batch);
    OBS_PROFILE_RECORD(
        obs::ProfileKind::kStageBusyNs, k, 0,
        std::llround(stage_busy[static_cast<std::size_t>(k)]));
  }
  return report;
}

ScheduleReport schedule_batch(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config, std::int64_t batch,
    const std::vector<std::int64_t>& replication) {
  return schedule_batch(plan::compile_plan("", layers, shapes, config), batch,
                        replication);
}

}  // namespace autohet::reram
