#include "reram/functional.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <optional>
#include <thread>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"
#include "tensor/ops.hpp"

namespace autohet::reram {

namespace {
/// Crossbar-id stride between layers: fault maps stay stable per crossbar
/// as long as no layer spans more than 2^20 logical crossbars.
constexpr std::uint64_t kFaultIdStride = std::uint64_t{1} << 20;

/// Read-noise stream key for one MVM call: the per-pass noise stream in the
/// high bits, the output-position ordinal in the low 20 (no conv in the zoo
/// comes near 2^20 output positions).
constexpr std::uint64_t make_call_key(std::uint64_t noise_stream,
                                      std::uint64_t position) noexcept {
  return (noise_stream << 20) | position;
}
}  // namespace

MappedLayer::MappedLayer(const nn::LayerSpec& spec,
                         const tensor::Tensor& weight,
                         const mapping::CrossbarShape& shape,
                         const FaultModel* faults, std::uint64_t layer_id,
                         KernelPolicy policy)
    : MappedLayer(spec, weight, mapping::map_layer(spec, shape), faults,
                  layer_id, policy) {}

MappedLayer::MappedLayer(const nn::LayerSpec& spec,
                         const tensor::Tensor& weight,
                         const mapping::LayerMapping& mapping,
                         const FaultModel* faults, std::uint64_t layer_id,
                         KernelPolicy policy)
    : spec_(spec), mapping_(mapping), policy_(policy) {
  AUTOHET_CHECK(mapping_ == mapping::map_layer(spec, mapping_.shape),
                "mapping geometry disagrees with map_layer for this layer");
  const mapping::CrossbarShape& shape = mapping_.shape;
  const std::int64_t k2 = spec.kernel * spec.kernel;
  const std::int64_t wrows = spec.weight_rows();
  const std::int64_t wcols = spec.weight_cols();
  AUTOHET_CHECK(weight.numel() == wrows * wcols, "weight shape mismatch");

  // Quantize the whole layer once (per-tensor symmetric 8-bit); the unfolded
  // row order (channel-major, then kernel position) matches tensor::im2col.
  const nn::QuantizedWeights qw = nn::quantize_weights(
      weight.reshaped({wcols, wrows}), /*bits=*/8);
  weight_scale_ = qw.scale;
  const auto wq = [&](std::int64_t row, std::int64_t col) {
    // qw is laid out [Cout, Cin*k*k]; we address it transposed.
    return qw.values[static_cast<std::size_t>(col * wrows + row)];
  };

  const std::int64_t rb_count = mapping_.row_blocks;
  const std::int64_t cb_count = mapping_.col_blocks;
  crossbars_.reserve(static_cast<std::size_t>(rb_count * cb_count));
  row_ranges_.reserve(static_cast<std::size_t>(rb_count));

  // The two mapping paths differ only in how a row block's weight-row range
  // is derived: whole kernels per block (kernel-aligned, Fig. 7) vs a plain
  // row partition (split-kernel fallback).
  if (!mapping_.split_kernel) {
    const std::int64_t kpb = mapping_.kernels_per_row_block;
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const std::int64_t ch0 = rb * kpb;
      const std::int64_t ch1 = std::min(spec.in_channels, ch0 + kpb);
      row_ranges_.emplace_back(ch0 * k2, ch1 * k2);
    }
  } else {
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const std::int64_t r0 = rb * shape.rows;
      const std::int64_t r1 = std::min(wrows, r0 + shape.rows);
      row_ranges_.emplace_back(r0, r1);
    }
  }
  for (std::int64_t rb = 0; rb < rb_count; ++rb) {
    const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
    for (std::int64_t cb = 0; cb < cb_count; ++cb) {
      const std::int64_t c0 = cb * shape.cols;
      const std::int64_t c1 = std::min(wcols, c0 + shape.cols);
      LogicalCrossbar xb(shape);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          xb.program_cell(r - r0, c - c0, wq(r, c));
        }
      }
      OBS_PROFILE_RECORD(obs::ProfileKind::kProgramWrite, layer_id,
                         rb * cb_count + cb, (r1 - r0) * (c1 - c0));
      crossbars_.push_back(std::move(xb));
    }
  }

  // Device non-ideality enters at this programming step: the seeded fault
  // maps and programming variation are burned into the arrays the moment
  // the weights are written (reram/faults.hpp).
  if (faults != nullptr && !faults->ideal()) {
    burn_faults(*faults, layer_id,
                policy_ == KernelPolicy::kScalarReference);
  }
}

void MappedLayer::burn_faults(const FaultModel& faults, std::uint64_t layer_id,
                              bool reference_path) {
  fault_stats_ = {};
  read_sigma_weights_ = 0.0;
  if (faults.ideal()) return;
  const std::uint64_t base_id = layer_id * kFaultIdStride;
  for (std::size_t i = 0; i < crossbars_.size(); ++i) {
    fault_stats_ += crossbars_[i].apply_faults(
        faults, base_id + static_cast<std::uint64_t>(i), reference_path);
  }
  read_sigma_weights_ = faults.read_noise_weight_sigma();
  read_base_ = common::Rng(faults.config().seed ^ 0x5eadbeefcafeULL)
                   .child(layer_id);
}

void MappedLayer::burn_faults_recording(const FaultModel& faults,
                                        std::uint64_t layer_id,
                                        std::vector<CrossbarBurnRecord>& out) {
  fault_stats_ = {};
  out.clear();
  out.resize(crossbars_.size());
  const std::uint64_t base_id = layer_id * kFaultIdStride;
  for (std::size_t i = 0; i < crossbars_.size(); ++i) {
    out[i].variation = crossbars_[i].apply_faults_recording(
        faults, base_id + static_cast<std::uint64_t>(i), out[i].hits);
    fault_stats_ += out[i].variation;
  }
  read_sigma_weights_ = faults.read_noise_weight_sigma();
  read_base_ = common::Rng(faults.config().seed ^ 0x5eadbeefcafeULL)
                   .child(layer_id);
}

void MappedLayer::replay_faults(
    const FaultModel& faults, std::uint64_t layer_id,
    const std::vector<CrossbarBurnRecord>& recorded) {
  AUTOHET_CHECK(recorded.size() == crossbars_.size(),
                "recorded burn does not match this layer's crossbar grid");
  fault_stats_ = {};
  for (std::size_t i = 0; i < crossbars_.size(); ++i) {
    fault_stats_ += recorded[i].variation;
    fault_stats_ += crossbars_[i].replay_stuck_faults(faults,
                                                      recorded[i].hits);
  }
  read_sigma_weights_ = faults.read_noise_weight_sigma();
  read_base_ = common::Rng(faults.config().seed ^ 0x5eadbeefcafeULL)
                   .child(layer_id);
}

void MappedLayer::prepare_packed() {
  for (auto& xb : crossbars_) xb.ensure_packed();
}

std::vector<std::int32_t> MappedLayer::mvm(
    std::span<const std::uint8_t> input_column, DatapathMode mode) const {
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(spec_.weight_cols()), 0);
  thread_local kernels::KernelScratch scratch;
  mvm_into(input_column, mode, out, scratch, /*call_key=*/0);
  return out;
}

void MappedLayer::mvm_into(std::span<const std::uint8_t> input_column,
                           DatapathMode mode, std::span<std::int32_t> out,
                           kernels::KernelScratch& scratch,
                           std::uint64_t call_key) const {
  AUTOHET_CHECK(
      static_cast<std::int64_t>(input_column.size()) == spec_.weight_rows(),
      "input column length mismatch");
  AUTOHET_CHECK(
      static_cast<std::int64_t>(out.size()) == spec_.weight_cols(),
      "output span length mismatch");
  OBS_COUNTER_ADD("autohet_functional_mvm_total", 1);
  std::fill(out.begin(), out.end(), 0);
  for (std::int64_t rb = 0; rb < mapping_.row_blocks; ++rb) {
    mvm_row_block_accum(rb, input_column, mode, out.data(), scratch, call_key);
  }
}

void MappedLayer::mvm_row_block_accum(std::int64_t rb,
                                      std::span<const std::uint8_t>
                                          input_column,
                                      DatapathMode mode, std::int32_t* out,
                                      kernels::KernelScratch& scratch,
                                      std::uint64_t call_key) const {
  const bool noisy = read_sigma_weights_ > 0.0;
  // One child derivation per call keeps concurrent forwards deterministic
  // without mutating shared state (the old advanced-in-place stream raced);
  // Rng::child is pure, so deriving per row block repeats the same stream.
  const common::Rng call_base =
      noisy ? read_base_.child(call_key) : common::Rng();
  const std::int64_t cb_count = mapping_.col_blocks;
  const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
  const std::span<const std::uint8_t> slice =
      input_column.subspan(static_cast<std::size_t>(r0),
                           static_cast<std::size_t>(r1 - r0));
  for (std::int64_t cb = 0; cb < cb_count; ++cb) {
    const std::size_t idx = static_cast<std::size_t>(rb * cb_count + cb);
    const auto& xb = crossbars_[idx];
    // Adder tree: row-block partials accumulate straight into the output
    // slice for this column block — no per-crossbar partial vectors.
    std::int32_t* outp = out + cb * mapping_.shape.cols;
    if (mode == DatapathMode::kBitSerial) {
      xb.mvm_bit_serial_accum(slice, outp, scratch);
    } else if (noisy) {
      // Read variation is sampled at MVM time (per read, per sensed
      // cell); it requires the integer datapath — SimulatedModel
      // enforces that.
      common::Rng rng = call_base.child(static_cast<std::uint64_t>(idx));
      xb.mvm_read_noisy_accum(slice, rng, read_sigma_weights_, outp);
    } else {
      xb.mvm_reference_accum(slice, outp);
    }
  }
}

void MappedLayer::mvm_batch_into(const std::uint8_t* columns_t,
                                 std::int64_t count, DatapathMode mode,
                                 std::span<std::int32_t> accs_t,
                                 kernels::KernelScratch& scratch) const {
  const std::int64_t cols = spec_.weight_cols();
  AUTOHET_CHECK(static_cast<std::int64_t>(accs_t.size()) == count * cols,
                "accumulator span must be weight_cols x count");
  AUTOHET_CHECK(read_sigma_weights_ == 0.0,
                "batched MVMs require a noise-free fabric");
  OBS_COUNTER_ADD("autohet_functional_mvm_total",
                  static_cast<std::uint64_t>(count));
  std::fill(accs_t.begin(), accs_t.end(), 0);
  const std::int64_t cb_count = mapping_.col_blocks;
  for (std::int64_t rb = 0; rb < mapping_.row_blocks; ++rb) {
    const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
    (void)r1;
    for (std::int64_t cb = 0; cb < cb_count; ++cb) {
      const std::size_t idx = static_cast<std::size_t>(rb * cb_count + cb);
      std::int32_t* acc = accs_t.data() + cb * mapping_.shape.cols * count;
      if (mode == DatapathMode::kBitSerial) {
        crossbars_[idx].mvm_bit_serial_batch_accum(columns_t + r0 * count,
                                                   count, acc, scratch);
      } else {
        crossbars_[idx].mvm_reference_batch_accum(columns_t + r0 * count,
                                                  count, acc);
      }
    }
  }
}

std::vector<std::int32_t> MappedLayer::mvm_scalar(
    std::span<const std::uint8_t> input_column, DatapathMode mode,
    std::uint64_t call_key) const {
  AUTOHET_CHECK(
      static_cast<std::int64_t>(input_column.size()) == spec_.weight_rows(),
      "input column length mismatch");
  OBS_COUNTER_ADD("autohet_functional_mvm_total", 1);
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(spec_.weight_cols()), 0);
  const bool noisy = read_sigma_weights_ > 0.0;
  const common::Rng call_base =
      noisy ? read_base_.child(call_key) : common::Rng();
  const std::int64_t cb_count = mapping_.col_blocks;
  for (std::int64_t rb = 0; rb < mapping_.row_blocks; ++rb) {
    const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
    const std::span<const std::uint8_t> slice =
        input_column.subspan(static_cast<std::size_t>(r0),
                             static_cast<std::size_t>(r1 - r0));
    for (std::int64_t cb = 0; cb < cb_count; ++cb) {
      const std::size_t idx = static_cast<std::size_t>(rb * cb_count + cb);
      const auto& xb = crossbars_[idx];
      std::vector<std::int32_t> partial;
      if (mode == DatapathMode::kBitSerial) {
        partial = xb.mvm_bit_serial_scalar(slice);
      } else if (noisy) {
        common::Rng rng = call_base.child(static_cast<std::uint64_t>(idx));
        partial = xb.mvm_read_noisy(slice, rng, read_sigma_weights_);
      } else {
        partial = xb.mvm_reference_scalar(slice);
      }
      const std::int64_t c0 = cb * mapping_.shape.cols;
      for (std::size_t j = 0; j < partial.size(); ++j) {
        out[static_cast<std::size_t>(c0) + j] += partial[j];
      }
    }
  }
  return out;
}

void MappedLayer::apply_variation(common::Rng& rng, double sigma) {
  for (auto& xb : crossbars_) xb.apply_variation(rng, sigma);
}

void SimulatedModel::apply_variation(common::Rng& rng, double sigma) {
  for (auto& layer : layers_) layer.apply_variation(rng, sigma);
}

FaultMapStats SimulatedModel::fault_stats() const noexcept {
  FaultMapStats total;
  for (const auto& layer : layers_) total += layer.fault_stats();
  return total;
}

SimulatedModel::SimulatedModel(
    const nn::Model& model,
    const std::vector<mapping::CrossbarShape>& shapes, DatapathMode mode,
    const FaultConfig& faults, KernelPolicy policy)
    : model_(&model), mode_(mode), fault_model_(faults), policy_(policy) {
  const auto mappable = model.spec().mappable_layers();
  AUTOHET_CHECK(shapes.size() == mappable.size(),
                "one crossbar shape per mappable layer required");
  AUTOHET_CHECK(faults.read_sigma == 0.0 || mode == DatapathMode::kInteger,
                "read noise requires the integer datapath");
  const FaultModel* fm = fault_model_.ideal() ? nullptr : &fault_model_;
  layers_.reserve(mappable.size());
  for (std::size_t i = 0; i < mappable.size(); ++i) {
    layers_.emplace_back(mappable[i], model.weight(i), shapes[i], fm,
                         static_cast<std::uint64_t>(i), policy_);
  }
  // The integer datapath never reads the packed planes; pack only when the
  // bit-serial fast kernels will actually run (packing costs a pass per
  // crossbar, wasted on every Monte-Carlo trial fabric otherwise).
  if (mode_ == DatapathMode::kBitSerial && policy_ == KernelPolicy::kFast) {
    for (auto& layer : layers_) layer.prepare_packed();
  }
}

SimulatedModel::SimulatedModel(const nn::Model& model,
                               const plan::DeploymentPlan& plan,
                               DatapathMode mode, KernelPolicy policy)
    : model_(&model),
      mode_(mode),
      fault_model_(plan.accel.faults),
      policy_(policy) {
  plan.validate_against(model.spec());
  AUTOHET_CHECK(
      plan.accel.faults.read_sigma == 0.0 || mode == DatapathMode::kInteger,
      "read noise requires the integer datapath");
  const FaultModel* fm = fault_model_.ideal() ? nullptr : &fault_model_;
  layers_.reserve(plan.layers.size());
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    // Program straight from the plan's frozen geometry — no map_layer here.
    layers_.emplace_back(plan.layers[i], model.weight(i),
                         plan.allocation.layers[i].mapping, fm,
                         static_cast<std::uint64_t>(i), policy_);
  }
  if (mode_ == DatapathMode::kBitSerial && policy_ == KernelPolicy::kFast) {
    for (auto& layer : layers_) layer.prepare_packed();
  }
}

SimulatedModel::SimulatedModel(const nn::Model& model, DatapathMode mode,
                               const FaultConfig& faults, KernelPolicy policy,
                               std::vector<MappedLayer> layers)
    : model_(&model),
      mode_(mode),
      fault_model_(faults),
      policy_(policy),
      layers_(std::move(layers)) {
  AUTOHET_CHECK(layers_.size() == model.spec().mappable_layers().size(),
                "one prebuilt layer per mappable layer required");
  AUTOHET_CHECK(faults.read_sigma == 0.0 || mode == DatapathMode::kInteger,
                "read noise requires the integer datapath");
  // Mirrors the shape-list constructor; packing is idempotent, so layers
  // prebuilt packed pass through untouched.
  if (mode_ == DatapathMode::kBitSerial && policy_ == KernelPolicy::kFast) {
    for (auto& layer : layers_) layer.prepare_packed();
  }
}

SimulatedModel SimulatedModel::with_faults(const FaultConfig& faults) const {
  AUTOHET_CHECK(fault_model_.ideal(),
                "with_faults requires a clean (ideal) fabric to clone");
  AUTOHET_CHECK(faults.read_sigma == 0.0 || mode_ == DatapathMode::kInteger,
                "read noise requires the integer datapath");
  SimulatedModel out = *this;  // reuses quantization + programmed cells
  out.fault_model_ = FaultModel(faults);
  if (out.fault_model_.ideal()) return out;
  for (std::size_t i = 0; i < out.layers_.size(); ++i) {
    out.layers_[i].burn_faults(out.fault_model_,
                               static_cast<std::uint64_t>(i));
  }
  return out;
}

SimulatedModel SimulatedModel::with_faults_recorded(
    const FaultConfig& faults, TrialBurnRecord& record) const {
  AUTOHET_CHECK(fault_model_.ideal(),
                "recording requires a clean (ideal) fabric to clone");
  AUTOHET_CHECK(faults.read_sigma == 0.0 || mode_ == DatapathMode::kInteger,
                "read noise requires the integer datapath");
  SimulatedModel out = *this;
  out.fault_model_ = FaultModel(faults);
  AUTOHET_CHECK(out.fault_model_.record_eligible(),
                "fault config is not record-eligible");
  record.layers.clear();
  record.layers.resize(out.layers_.size());
  for (std::size_t i = 0; i < out.layers_.size(); ++i) {
    out.layers_[i].burn_faults_recording(
        out.fault_model_, static_cast<std::uint64_t>(i), record.layers[i]);
  }
  return out;
}

SimulatedModel SimulatedModel::replay_faults(
    const FaultConfig& faults, const TrialBurnRecord& record) const {
  AUTOHET_CHECK(record.layers.size() == layers_.size(),
                "burn record does not match this fabric's layer count");
  AUTOHET_CHECK(faults.read_sigma == 0.0 || mode_ == DatapathMode::kInteger,
                "read noise requires the integer datapath");
  SimulatedModel out = *this;  // clone of the post-variation fabric
  out.fault_model_ = FaultModel(faults);
  for (std::size_t i = 0; i < out.layers_.size(); ++i) {
    out.layers_[i].replay_faults(out.fault_model_,
                                 static_cast<std::uint64_t>(i),
                                 record.layers[i]);
  }
  return out;
}

tensor::Tensor SimulatedModel::run_mappable(
    const MappedLayer& layer, const tensor::Tensor& input,
    std::uint64_t noise_stream, common::ThreadPool* pool) const {
  const nn::LayerSpec& spec = layer.spec();
  OBS_PROFILE_RECORD(obs::ProfileKind::kFunctionalMvm,
                     &layer - layers_.data(), 0, spec.mvm_count());
  // Quantize the whole activation tensor once (8-bit, unsigned: inputs are
  // post-ReLU or raw non-negative pixels).
  const nn::QuantizedActivations qa = nn::quantize_activations(
      spec.type == nn::LayerType::kConv
          ? input
          : input.reshaped({input.numel()}),
      /*bits=*/8);
  const float out_scale = layer.weight_scale() * qa.scale;
  const bool scalar = policy_ == KernelPolicy::kScalarReference;
  if (scalar) pool = nullptr;  // the baseline stays honestly serial
  thread_local kernels::KernelScratch scratch;

  if (spec.type == nn::LayerType::kFullyConnected) {
    const std::uint64_t key = make_call_key(noise_stream, 0);
    const std::int64_t cols = spec.weight_cols();
    const std::int64_t rbs = layer.row_block_count();
    std::vector<std::int32_t> acc;
    if (scalar) {
      acc = layer.mvm_scalar(std::span<const std::uint8_t>(qa.values), mode_,
                             key);
    } else if (pool != nullptr && rbs > 1) {
      // Row-block split: each block's partial lands in its own slice, then
      // the slices merge in block order — exact integer sums, so the result
      // is bit-identical to the serial accumulation for any pool size.
      std::vector<std::int32_t> partials(
          static_cast<std::size_t>(rbs * cols), 0);
      const std::span<const std::uint8_t> col_span(qa.values);
      pool->parallel_for(0, static_cast<std::size_t>(rbs), [&](std::size_t rb) {
        thread_local kernels::KernelScratch rb_scratch;
        layer.mvm_row_block_accum(
            static_cast<std::int64_t>(rb), col_span, mode_,
            partials.data() + static_cast<std::int64_t>(rb) * cols, rb_scratch,
            key);
      });
      acc.assign(static_cast<std::size_t>(cols), 0);
      for (std::int64_t rb = 0; rb < rbs; ++rb) {
        const std::int32_t* p = partials.data() + rb * cols;
        for (std::int64_t j = 0; j < cols; ++j) acc[j] += p[j];
      }
    } else {
      acc.resize(static_cast<std::size_t>(cols));
      layer.mvm_into(std::span<const std::uint8_t>(qa.values), mode_, acc,
                     scratch, key);
    }
    tensor::Tensor out({spec.out_channels});
    for (std::int64_t j = 0; j < spec.out_channels; ++j) {
      out[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]) * out_scale;
    }
    return out;
  }

  // CONV: integer im2col over the quantized activations, one MVM per output
  // position (spec.mvm_count() invocations, as the hardware model charges).
  const std::int64_t k = spec.kernel;
  const std::int64_t oh = spec.out_height();
  const std::int64_t ow = spec.out_width();
  const std::int64_t h = spec.in_height;
  const std::int64_t w = spec.in_width;
  tensor::Tensor out({spec.out_channels, oh, ow});
  const std::int64_t plane = oh * ow;
  float* const out_base = out.data();
  const auto fill_column = [&](std::int64_t oi, std::int64_t oj,
                               std::uint8_t* col) {
    const std::int64_t i0 = oi * spec.stride - spec.pad;
    const std::int64_t j0 = oj * spec.stride - spec.pad;
    if (i0 >= 0 && j0 >= 0 && i0 + k <= h && j0 + k <= w) {
      // Interior window (every window when pad == 0): each kernel row is a
      // contiguous k-byte slice of the activation plane.
      for (std::int64_t ch = 0; ch < spec.in_channels; ++ch) {
        const std::uint8_t* src =
            qa.values.data() +
            static_cast<std::size_t>((ch * h + i0) * w + j0);
        for (std::int64_t ki = 0; ki < k; ++ki, src += w, col += k) {
          std::memcpy(col, src, static_cast<std::size_t>(k));
        }
      }
    } else {
      for (std::int64_t ch = 0; ch < spec.in_channels; ++ch) {
        for (std::int64_t ki = 0; ki < k; ++ki) {
          for (std::int64_t kj = 0; kj < k; ++kj, ++col) {
            const std::int64_t ii = i0 + ki;
            const std::int64_t jj = j0 + kj;
            *col = (ii >= 0 && ii < h && jj >= 0 && jj < w)
                       ? qa.values[static_cast<std::size_t>(
                             (ch * h + ii) * w + jj)]
                       : std::uint8_t{0};
          }
        }
      }
    }
  };

  // GEMM-shaped fast path (integer or bit-serial datapath, noise-free
  // fabric): im2col a tile of output positions and push them through one
  // batched MVM per crossbar. Integer sums are exact, so the results are
  // bit-identical to the per-position loop below — only per-position call
  // overhead goes. Tiles write disjoint output slices, so a pool runs them
  // concurrently with no reduction step at all.
  if (!scalar && !layer.read_noisy()) {
    constexpr std::int64_t kTile = 96;
    const std::int64_t positions = oh * ow;
    const std::int64_t rows = spec.weight_rows();
    const std::int64_t cols = spec.weight_cols();
    const std::int64_t tiles = (positions + kTile - 1) / kTile;
    const auto run_tile = [&](std::size_t tile_idx) {
      thread_local kernels::KernelScratch tile_scratch;
      const std::int64_t p0 = static_cast<std::int64_t>(tile_idx) * kTile;
      const std::int64_t n = std::min(kTile, positions - p0);
      std::uint8_t* column =
          tile_scratch.column(static_cast<std::size_t>(rows));
      std::uint8_t* cols_t =
          tile_scratch.columns_t(static_cast<std::size_t>(n * rows));
      std::int32_t* accs_t =
          tile_scratch.accs_t(static_cast<std::size_t>(n * cols));
      for (std::int64_t t = 0; t < n; ++t) {
        fill_column((p0 + t) / ow, (p0 + t) % ow, column);
        for (std::int64_t i = 0; i < rows; ++i) {
          cols_t[static_cast<std::size_t>(i * n + t)] =
              column[static_cast<std::size_t>(i)];
        }
      }
      layer.mvm_batch_into(
          cols_t, n, mode_,
          std::span(accs_t, static_cast<std::size_t>(n * cols)),
          tile_scratch);
      for (std::int64_t co = 0; co < spec.out_channels; ++co) {
        float* const op = out_base + co * plane + p0;
        const std::int32_t* a = accs_t + co * n;
        for (std::int64_t t = 0; t < n; ++t) {
          op[t] = static_cast<float>(a[t]) * out_scale;
        }
      }
    };
    if (pool != nullptr && tiles > 1) {
      pool->parallel_for(0, static_cast<std::size_t>(tiles), run_tile);
    } else {
      for (std::int64_t t = 0; t < tiles; ++t) {
        run_tile(static_cast<std::size_t>(t));
      }
    }
    return out;
  }

  // Per-position fallback (read-noisy fabrics and the scalar baseline).
  // The read-noise stream is keyed on the output position, not on
  // execution order, so parallel rows reproduce the serial pass exactly.
  const auto run_row = [&](std::size_t oi_idx) {
    const auto oi = static_cast<std::int64_t>(oi_idx);
    thread_local kernels::KernelScratch row_scratch;
    std::vector<std::uint8_t> column(
        static_cast<std::size_t>(spec.weight_rows()));
    std::vector<std::int32_t> acc(
        static_cast<std::size_t>(spec.weight_cols()));
    for (std::int64_t oj = 0; oj < ow; ++oj) {
      fill_column(oi, oj, column.data());
      const std::uint64_t key =
          make_call_key(noise_stream, static_cast<std::uint64_t>(oi * ow + oj));
      float* const op = out_base + oi * ow + oj;
      if (scalar) {
        const std::vector<std::int32_t> acc_s =
            layer.mvm_scalar(column, mode_, key);
        for (std::int64_t co = 0; co < spec.out_channels; ++co) {
          op[co * plane] =
              static_cast<float>(acc_s[static_cast<std::size_t>(co)]) *
              out_scale;
        }
      } else {
        layer.mvm_into(column, mode_, acc, row_scratch, key);
        for (std::int64_t co = 0; co < spec.out_channels; ++co) {
          op[co * plane] =
              static_cast<float>(acc[static_cast<std::size_t>(co)]) *
              out_scale;
        }
      }
    }
  };
  if (pool != nullptr && oh > 1) {
    pool->parallel_for(0, static_cast<std::size_t>(oh), run_row);
  } else {
    for (std::int64_t oi = 0; oi < oh; ++oi) {
      run_row(static_cast<std::size_t>(oi));
    }
  }
  return out;
}

tensor::Tensor SimulatedModel::forward(const tensor::Tensor& input,
                                       std::uint64_t noise_stream,
                                       common::ThreadPool* pool) const {
  return forward_traced(input, noise_stream, pool).output;
}

SimulatedModel::ForwardTrace SimulatedModel::forward_traced(
    const tensor::Tensor& input, std::uint64_t noise_stream,
    common::ThreadPool* pool) const {
  const nn::NetworkSpec& spec = model_->spec();
  AUTOHET_CHECK(spec.sequential_runnable,
                "network is not sequentially runnable (" + spec.name + ")");
  ForwardTrace trace;
  trace.mappable_outputs.reserve(layers_.size());
  tensor::Tensor x = input;
  std::size_t mappable_idx = 0;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const nn::LayerSpec& layer = spec.layers[i];
    if (nn::is_mappable(layer.type)) {
      x = run_mappable(layers_[mappable_idx++], x, noise_stream, pool);
      trace.mappable_outputs.push_back(x);  // pre-activation layer output
    } else {
      x = model_->forward_layer(i, x);
    }
    if (layer.relu_after) tensor::relu_inplace(x);
  }
  trace.output = std::move(x);
  return trace;
}

namespace {

/// Vector-unit residual add: both operands quantized to a shared symmetric
/// 8-bit grid, summed in int32 (exact), dequantized once. Deterministic and
/// order-free — the accelerator's SIMD unit computes the same sums.
tensor::Tensor residual_add_exact(const tensor::Tensor& a,
                                  const tensor::Tensor& b) {
  AUTOHET_CHECK(a.numel() == b.numel(),
                "residual add operands must have equal element counts");
  tensor::Tensor out(a.shape());
  const float absmax = std::max(a.abs_max(), b.abs_max());
  if (absmax == 0.0f) return out;  // both zero
  const float scale = absmax / 127.0f;
  const float inv = 127.0f / absmax;
  for (std::int64_t j = 0; j < out.numel(); ++j) {
    const auto qa = static_cast<std::int32_t>(std::lroundf(a[j] * inv));
    const auto qb = static_cast<std::int32_t>(std::lroundf(b[j] * inv));
    out[j] = static_cast<float>(qa + qb) * scale;
  }
  return out;
}

}  // namespace

SimulatedModel::ForwardTrace SimulatedModel::forward_graph_traced(
    const nn::Graph& graph, const tensor::Tensor& input,
    std::uint64_t noise_stream, common::ThreadPool* pool) const {
  AUTOHET_CHECK(graph.skeleton().layers == model_->spec().layers,
                "graph '" + graph.name() +
                    "' skeleton does not match the model this fabric was "
                    "programmed from");
  const std::vector<nn::GraphNode>& nodes = graph.nodes();
  AUTOHET_CHECK(!nodes.empty(), "cannot run an empty graph");

  // Fan-out buffering: consumer refcounts release each intermediate tensor
  // after its last read, so memory tracks the live frontier, not the graph.
  std::vector<std::int64_t> uses(nodes.size(), 0);
  for (const nn::GraphNode& node : nodes) {
    for (const std::int64_t in : node.inputs) {
      ++uses[static_cast<std::size_t>(in)];
    }
  }
  const std::int64_t out_id = graph.output_node();
  ++uses[static_cast<std::size_t>(out_id)];

  ForwardTrace trace;
  trace.mappable_outputs.reserve(layers_.size());
  std::vector<tensor::Tensor> values(nodes.size());
  std::size_t mappable_idx = 0;
  std::size_t skeleton_idx = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const nn::GraphNode& node = nodes[i];
    tensor::Tensor v;
    switch (node.kind) {
      case nn::OpKind::kInput:
        AUTOHET_CHECK(input.numel() == node.shape.numel(),
                      "input tensor does not match graph input shape " +
                          node.shape.to_string());
        v = input;
        break;
      case nn::OpKind::kLayer: {
        const tensor::Tensor& x =
            values[static_cast<std::size_t>(node.inputs[0])];
        if (nn::is_mappable(node.layer.type)) {
          v = run_mappable(layers_[mappable_idx++], x, noise_stream, pool);
          trace.mappable_outputs.push_back(v);  // pre-activation output
        } else {
          v = model_->forward_layer(skeleton_idx, x);
        }
        ++skeleton_idx;
        if (node.layer.relu_after) tensor::relu_inplace(v);
        break;
      }
      case nn::OpKind::kResidualAdd:
        v = residual_add_exact(
            values[static_cast<std::size_t>(node.inputs[0])],
            values[static_cast<std::size_t>(node.inputs[1])]);
        break;
      case nn::OpKind::kActivation:
        v = values[static_cast<std::size_t>(node.inputs[0])];
        tensor::relu_inplace(v);
        break;
      case nn::OpKind::kGlobalAvgPool: {
        const tensor::Tensor& x =
            values[static_cast<std::size_t>(node.inputs[0])];
        const std::int64_t channels = node.shape.channels;
        const std::int64_t plane = x.numel() / channels;
        v = tensor::Tensor({channels, 1, 1});
        for (std::int64_t c = 0; c < channels; ++c) {
          float sum = 0.0f;
          for (std::int64_t p = 0; p < plane; ++p) sum += x[c * plane + p];
          v[c] = sum / static_cast<float>(plane);
        }
        break;
      }
      case nn::OpKind::kConcat: {
        v = tensor::Tensor(
            {node.shape.channels, node.shape.height, node.shape.width});
        std::int64_t off = 0;
        for (const std::int64_t in : node.inputs) {
          const tensor::Tensor& x = values[static_cast<std::size_t>(in)];
          for (std::int64_t j = 0; j < x.numel(); ++j) v[off + j] = x[j];
          off += x.numel();
        }
        break;
      }
    }
    values[i] = std::move(v);
    for (const std::int64_t in : node.inputs) {
      if (--uses[static_cast<std::size_t>(in)] == 0) {
        values[static_cast<std::size_t>(in)] = tensor::Tensor();
      }
    }
  }
  AUTOHET_CHECK(mappable_idx == layers_.size(),
                "graph mappable count does not match the programmed fabric");
  trace.output = std::move(values[static_cast<std::size_t>(out_id)]);
  return trace;
}

tensor::Tensor SimulatedModel::forward_graph(const nn::Graph& graph,
                                             const tensor::Tensor& input,
                                             std::uint64_t noise_stream,
                                             common::ThreadPool* pool) const {
  return forward_graph_traced(graph, input, noise_stream, pool).output;
}

std::vector<SimulatedModel::ForwardTrace> SimulatedModel::forward_traced_batch(
    std::span<const tensor::Tensor> inputs, std::uint64_t noise_stream0,
    common::ThreadPool* pool) const {
  const nn::NetworkSpec& spec = model_->spec();
  AUTOHET_CHECK(spec.sequential_runnable,
                "network is not sequentially runnable (" + spec.name + ")");
  const auto count = static_cast<std::int64_t>(inputs.size());
  std::vector<ForwardTrace> traces(inputs.size());
  if (count == 0) return traces;
  const bool scalar = policy_ == KernelPolicy::kScalarReference;
  if (scalar) pool = nullptr;  // the baseline stays honestly serial
  for (auto& t : traces) t.mappable_outputs.reserve(layers_.size());

  std::vector<tensor::Tensor> xs(inputs.begin(), inputs.end());
  std::size_t mappable_idx = 0;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const nn::LayerSpec& layer_spec = spec.layers[i];
    if (nn::is_mappable(layer_spec.type)) {
      const MappedLayer& layer = layers_[mappable_idx++];
      const bool batch_fc =
          !scalar && count > 1 &&
          layer_spec.type == nn::LayerType::kFullyConnected &&
          !layer.read_noisy();
      if (batch_fc) {
        // All samples through one batched MVM per crossbar. Quantization is
        // per sample (its own scale), so packing the quantized columns
        // transposed and scaling each sample's integer outputs by its own
        // out_scale reproduces the per-sample path bit for bit.
        const std::int64_t rows = layer_spec.weight_rows();
        const std::int64_t cols = layer_spec.weight_cols();
        thread_local kernels::KernelScratch scratch;
        std::vector<nn::QuantizedActivations> qas;
        qas.reserve(static_cast<std::size_t>(count));
        for (std::int64_t s = 0; s < count; ++s) {
          qas.push_back(nn::quantize_activations(
              xs[static_cast<std::size_t>(s)].reshaped(
                  {xs[static_cast<std::size_t>(s)].numel()}),
              /*bits=*/8));
        }
        std::uint8_t* cols_t =
            scratch.columns_t(static_cast<std::size_t>(rows * count));
        for (std::int64_t r = 0; r < rows; ++r) {
          for (std::int64_t s = 0; s < count; ++s) {
            cols_t[static_cast<std::size_t>(r * count + s)] =
                qas[static_cast<std::size_t>(s)]
                    .values[static_cast<std::size_t>(r)];
          }
        }
        std::int32_t* accs_t =
            scratch.accs_t(static_cast<std::size_t>(cols * count));
        layer.mvm_batch_into(
            cols_t, count, mode_,
            std::span(accs_t, static_cast<std::size_t>(cols * count)),
            scratch);
        OBS_PROFILE_RECORD(obs::ProfileKind::kFunctionalMvm,
                           mappable_idx - 1, 0, count);
        for (std::int64_t s = 0; s < count; ++s) {
          const auto si = static_cast<std::size_t>(s);
          const float out_scale = layer.weight_scale() * qas[si].scale;
          tensor::Tensor out({layer_spec.out_channels});
          for (std::int64_t j = 0; j < layer_spec.out_channels; ++j) {
            out[j] = static_cast<float>(
                         accs_t[static_cast<std::size_t>(j * count + s)]) *
                     out_scale;
          }
          xs[si] = std::move(out);
          traces[si].mappable_outputs.push_back(xs[si]);
        }
      } else {
        for (std::int64_t s = 0; s < count; ++s) {
          const auto si = static_cast<std::size_t>(s);
          xs[si] = run_mappable(layer, xs[si],
                                noise_stream0 + static_cast<std::uint64_t>(s),
                                pool);
          traces[si].mappable_outputs.push_back(xs[si]);
        }
      }
    } else {
      for (auto& x : xs) x = model_->forward_layer(i, x);
    }
    if (layer_spec.relu_after) {
      for (auto& x : xs) tensor::relu_inplace(x);
    }
  }
  for (std::int64_t s = 0; s < count; ++s) {
    traces[static_cast<std::size_t>(s)].output =
        std::move(xs[static_cast<std::size_t>(s)]);
  }
  return traces;
}

std::shared_ptr<const TrialFabricCache::IdealRefs>
TrialFabricCache::ideal_refs(const WorkloadKey& key,
                             const std::function<IdealRefs()>& build) {
  std::shared_ptr<IdealSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!has_workload_ || !(key_ == key)) {
      key_ = key;
      has_workload_ = true;
      ideal_slot_.reset();
      trials_.clear();
    }
    if (!ideal_slot_) ideal_slot_ = std::make_shared<IdealSlot>();
    slot = ideal_slot_;
  }
  // The build runs outside the map lock so concurrent calls for other slots
  // are never serialized behind it; duplicate calls for *this* slot queue on
  // the slot mutex and find the value filled.
  std::lock_guard<std::mutex> fill(slot->m);
  const bool hit = slot->value != nullptr;
  if (!hit) slot->value = std::make_shared<const IdealRefs>(build());
  std::lock_guard<std::mutex> lock(mutex_);
  hit ? ++stats_.ideal_hits : ++stats_.ideal_builds;
  return slot->value;
}

std::shared_ptr<const TrialFabricCache::TrialFabric>
TrialFabricCache::trial_fabric(const FaultConfig& trial_faults,
                               const std::function<TrialFabric()>& build) {
  const TrialKey key{trial_faults.cell_bits, trial_faults.program_sigma,
                     trial_faults.seed};
  std::shared_ptr<TrialSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, s] : trials_) {
      if (k == key) {
        slot = s;
        break;
      }
    }
    if (!slot) {
      // A different (cell_bits, sigma) generation can never hit again
      // within this workload's sweep — drop stale fabrics eagerly.
      std::erase_if(trials_, [&](const auto& entry) {
        return entry.first.cell_bits != key.cell_bits ||
               entry.first.program_sigma != key.program_sigma;
      });
      if (trials_.size() >= kMaxTrialSlots) trials_.clear();
      slot = std::make_shared<TrialSlot>();
      trials_.emplace_back(key, slot);
    }
  }
  std::lock_guard<std::mutex> fill(slot->m);
  const bool hit = slot->value != nullptr;
  if (!hit) slot->value = std::make_shared<const TrialFabric>(build());
  std::lock_guard<std::mutex> lock(mutex_);
  hit ? ++stats_.trial_replays : ++stats_.trial_records;
  return slot->value;
}

TrialFabricCache::Stats TrialFabricCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TrialFabricCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  has_workload_ = false;
  ideal_slot_.reset();
  trials_.clear();
}

std::shared_ptr<const MappedLayer> LayerFabricCache::layer(
    const nn::Model& model, std::size_t layer_index,
    const mapping::CrossbarShape& shape, const FaultConfig& faults,
    KernelPolicy policy, const std::function<MappedLayer()>& build) {
  const Key key{&model, layer_index, shape.rows, shape.cols, faults, policy};
  std::shared_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, s] : slots_) {
      if (k == key) {
        slot = s;
        break;
      }
    }
    if (!slot) {
      if (slots_.size() >= kMaxSlots) slots_.clear();
      slot = std::make_shared<Slot>();
      slots_.emplace_back(key, slot);
    }
  }
  // Build outside the list lock (per-slot serialization only), exactly as
  // TrialFabricCache does.
  std::lock_guard<std::mutex> fill(slot->m);
  const bool hit = slot->value != nullptr;
  if (!hit) slot->value = std::make_shared<const MappedLayer>(build());
  std::lock_guard<std::mutex> lock(mutex_);
  hit ? ++stats_.hits : ++stats_.builds;
  return slot->value;
}

std::shared_ptr<const TrialFabricCache::IdealRefs>
LayerFabricCache::ideal_refs(
    const nn::Model& model, DatapathMode mode, int samples,
    std::uint64_t input_seed, KernelPolicy policy,
    const std::function<TrialFabricCache::IdealRefs()>& build) {
  const RefsKey key{&model, mode, samples, input_seed, policy};
  std::shared_ptr<RefsSlot> slot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [k, s] : refs_slots_) {
      if (k == key) {
        slot = s;
        break;
      }
    }
    if (!slot) {
      if (refs_slots_.size() >= kMaxRefsSlots) refs_slots_.clear();
      slot = std::make_shared<RefsSlot>();
      refs_slots_.emplace_back(key, slot);
    }
  }
  std::lock_guard<std::mutex> fill(slot->m);
  const bool hit = slot->value != nullptr;
  if (!hit) {
    slot->value = std::make_shared<const TrialFabricCache::IdealRefs>(build());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  hit ? ++stats_.refs_hits : ++stats_.refs_builds;
  return slot->value;
}

LayerFabricCache::Stats LayerFabricCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void LayerFabricCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_.clear();
  refs_slots_.clear();
}

RobustnessReport monte_carlo_robustness(
    const nn::Model& model, const std::vector<mapping::CrossbarShape>& shapes,
    const FaultConfig& faults, const RobustnessOptions& options) {
  OBS_SPAN("mc_robustness");
  AUTOHET_CHECK(options.trials > 0 && options.samples > 0,
                "robustness needs at least one trial and one sample");
  AUTOHET_CHECK(options.threads >= 0, "threads must be non-negative");
  faults.validate();
  options.budget.validate();
  const bool adaptive =
      options.budget.mode == RobustnessBudget::Mode::kAdaptive;
  // The stopper owns the budget arithmetic: the effective cap (max_trials,
  // falling back to options.trials) and the chunk-boundary schedule. Fixed
  // mode ignores it for decisions and only reads the final CI off it.
  SequentialStopper stopper(options.budget, options.trials);
  const int requested = adaptive ? stopper.cap() : options.trials;
  const bool scalar = options.kernels == KernelPolicy::kScalarReference;
  // The scalar baseline must measure the honest uncached path; the cache
  // only ever accelerates the fast kernels.
  TrialFabricCache* cache = scalar ? nullptr : options.cache;
  const bool cache_trials =
      cache != nullptr && FaultModel(faults).record_eligible();
  // Adaptive-only cross-rate spanning: a zero-stuck-rate config cannot be
  // recorded from its own stream (the stuck draws are skipped entirely),
  // but it *can* replay the shared recorded family — the probe recording is
  // rate-independent and replaying it under zero thresholds forces nothing.
  // Statistically equivalent, not byte-identical, so kFixed never takes it.
  const bool span_zero =
      adaptive && options.budget.span_zero_rate && cache != nullptr &&
      !cache_trials && faults.stuck_at_zero_rate == 0.0 &&
      faults.stuck_at_one_rate == 0.0 && faults.program_sigma > 0.0 &&
      FaultModel(spanning_probe(faults)).record_eligible();

  RobustnessReport report;
  report.trials_requested = requested;
  report.samples = options.samples;
  report.min_accuracy = 1.0;

  // Cross-allocation per-layer assembly (the in-search fast path): with a
  // LayerFabricCache, ideal and trial fabrics are stitched together from
  // shared prebuilt layers — bit-identical to a fresh build, because
  // programming and burn-in are pure per-layer functions of the key.
  LayerFabricCache* layer_cache = scalar ? nullptr : options.layer_cache;
  const auto assemble = [&](const FaultConfig& fc) -> SimulatedModel {
    const auto mappable = model.spec().mappable_layers();
    std::vector<MappedLayer> prebuilt;
    prebuilt.reserve(shapes.size());
    for (std::size_t i = 0; i < shapes.size(); ++i) {
      const auto shared = layer_cache->layer(
          model, i, shapes[i], fc, options.kernels, [&] {
            const FaultModel fm(fc);
            return MappedLayer(mappable[i], model.weight(i), shapes[i],
                               fm.ideal() ? nullptr : &fm,
                               static_cast<std::uint64_t>(i),
                               options.kernels);
          });
      prebuilt.push_back(*shared);
    }
    return SimulatedModel(model, options.mode, fc, options.kernels,
                          std::move(prebuilt));
  };

  // The ideal fabric is the reference: agreement with it isolates device
  // non-ideality from the (always present) 8-bit quantization error. The
  // references depend on no fault knob, so a cache shares one build across
  // a sweep's whole rate × cell-bits grid.
  const auto build_refs = [&]() {
    TrialFabricCache::IdealRefs refs{
        layer_cache != nullptr
            ? assemble({})
            : SimulatedModel(model, shapes, options.mode, {},
                             options.kernels),
        {},
        {},
        {}};
    const nn::LayerSpec& first = model.spec().layers.front();
    common::Rng img_rng(options.input_seed);
    refs.images.reserve(static_cast<std::size_t>(options.samples));
    for (int s = 0; s < options.samples; ++s) {
      refs.images.push_back(nn::synthetic_image(
          img_rng, first.in_channels, first.in_height, first.in_width));
      refs.references.push_back(refs.ideal.forward_traced(refs.images.back()));
      refs.reference_classes.push_back(
          tensor::argmax(refs.references.back().output));
    }
    return refs;
  };
  // The layer cache's reference store wins when present: references are
  // allocation-invariant (partition-exact ideal forward), so one set
  // serves every allocation a search visits — the workload-keyed
  // TrialFabricCache would rebuild them on each new allocation.
  const std::shared_ptr<const TrialFabricCache::IdealRefs> refs =
      layer_cache != nullptr
          ? layer_cache->ideal_refs(model, options.mode, options.samples,
                                    options.input_seed, options.kernels,
                                    build_refs)
      : cache != nullptr
          ? cache->ideal_refs({&model, shapes, options.mode, options.samples,
                               options.input_seed},
                              build_refs)
          : std::make_shared<const TrialFabricCache::IdealRefs>(build_refs());
  const std::vector<tensor::Tensor>& images = refs->images;
  const std::vector<SimulatedModel::ForwardTrace>& references =
      refs->references;
  const std::vector<std::int64_t>& reference_classes =
      refs->reference_classes;

  const std::size_t num_layers = refs->ideal.mapped_layers().size();
  report.layer_error.assign(num_layers, 0.0);

  // The parallel unit is a (trial, sample-chunk) item, not a whole trial:
  // splitting trials into chunks of a few samples keeps every worker busy
  // even when trials ≈ threads or trials == 1, and each sample writes its
  // own result slot so the reduction below can replay the serial
  // accumulation order exactly — floating-point sums are order-sensitive,
  // and the report must not depend on the thread count.
  constexpr int kSampleChunk = 4;
  const int chunks_per_trial =
      (options.samples + kSampleChunk - 1) / kSampleChunk;
  struct TrialResult {
    FaultMapStats stats;
    std::vector<char> agree;        // per sample: argmax matched reference
    std::vector<double> logit_err;  // per sample: max |logit diff|
    std::vector<double> layer_err;  // samples × num_layers, row-major
    double wall_ms = 0.0;           // build + sum of this trial's chunks
  };
  std::vector<TrialResult> trials(static_cast<std::size_t>(requested));
  for (auto& res : trials) {
    res.agree.assign(static_cast<std::size_t>(options.samples), 0);
    res.logit_err.resize(static_cast<std::size_t>(options.samples));
    res.layer_err.resize(static_cast<std::size_t>(options.samples) *
                         num_layers);
  }

  // Phase A body: build one trial's faulty fabric. Cloning the clean fabric
  // and burning this trial's faults is bit-identical to a fresh build (both
  // are pure functions of the seeds); with a cache, the burn is recorded
  // once and replayed per rate point. The scalar baseline reconstructs from
  // scratch, as before.
  const auto build_fabric = [&](std::size_t t) -> SimulatedModel {
    const FaultConfig trial_faults =
        faults.for_trial(static_cast<std::uint64_t>(t));
    if (scalar) {
      return SimulatedModel(model, shapes, options.mode, trial_faults,
                            options.kernels);
    }
    // Layer assembly beats the record/replay machinery when allocations
    // churn (the trial seed stream is fixed, so every layer burn is shared
    // across episodes); the workload-keyed TrialFabricCache would evict on
    // every new allocation anyway.
    if (layer_cache != nullptr) return assemble(trial_faults);
    if (cache_trials || span_zero) {
      const auto slot = cache->trial_fabric(trial_faults, [&] {
        TrialBurnRecord rec;
        // A spanning (zero-rate) point burns the canonical probe config so
        // the recording it leaves behind is the exact one every in-cap
        // nonzero-rate point of this (seed, sigma, bits) generation records
        // — one burned fabric family serves the whole rate row.
        const FaultConfig burn =
            span_zero ? spanning_probe(trial_faults) : trial_faults;
        SimulatedModel fabric = refs->ideal.with_faults_recorded(burn, rec);
        return TrialFabricCache::TrialFabric{std::move(fabric),
                                             std::move(rec)};
      });
      return slot->fabric.replay_faults(trial_faults, slot->record);
    }
    return refs->ideal.with_faults(trial_faults);
  };

  // Phase B body: run one chunk of samples through an already-built trial
  // fabric. Sample s keeps noise stream s and its own result slots, so
  // chunks of one trial can run concurrently — and forward_traced_batch is
  // bit-identical to per-sample forward_traced. Returns the chunk's wall
  // time so the per-trial total can be folded deterministically later.
  const auto run_chunk = [&](const SimulatedModel& faulty, TrialResult& res,
                             int c, common::ThreadPool* pool) -> double {
    const auto t0 = std::chrono::steady_clock::now();
    const int s0 = c * kSampleChunk;
    const int s1 = std::min(options.samples, s0 + kSampleChunk);
    const auto traces = faulty.forward_traced_batch(
        std::span(images).subspan(static_cast<std::size_t>(s0),
                                  static_cast<std::size_t>(s1 - s0)),
        /*noise_stream0=*/static_cast<std::uint64_t>(s0), pool);
    for (int s = s0; s < s1; ++s) {
      const auto si = static_cast<std::size_t>(s);
      const auto& trace = traces[static_cast<std::size_t>(s - s0)];
      res.agree[si] =
          tensor::argmax(trace.output) == reference_classes[si] ? 1 : 0;
      res.logit_err[si] =
          tensor::max_abs_diff(trace.output, references[si].output);
      for (std::size_t l = 0; l < num_layers; ++l) {
        const float ref_scale =
            std::max(1.0f, references[si].mappable_outputs[l].abs_max());
        res.layer_err[si * num_layers + l] =
            tensor::max_abs_diff(trace.mappable_outputs[l],
                                 references[si].mappable_outputs[l]) /
            ref_scale;
      }
    }
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  int threads = options.threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  // Chunking makes the parallel path worthwhile even for a single trial
  // with enough samples; intra-forward row-block/tile splitting (the pool
  // handed down to forward_traced_batch) covers the rest, so threads > 1
  // alone justifies the parallel path — even for a lone trial and sample.
  const bool parallel = !scalar && threads > 1;
  std::optional<common::ThreadPool> local_pool;
  common::ThreadPool* pool = options.pool;
  if (parallel && pool == nullptr) {
    local_pool.emplace(static_cast<std::size_t>(threads));
    pool = &*local_pool;
  }

  // Runs trials [w0, w1), filling their result slots. Parallel trials are
  // processed in generations: phase A builds a block of trial fabrics
  // concurrently, phase B fans the block's flattened (trial, chunk) items
  // across the pool. Blocking bounds peak fabric memory at ~block fabrics
  // instead of the whole budget.
  const auto run_trials = [&](std::size_t w0, std::size_t w1) {
    if (parallel) {
      const std::size_t block = std::max<std::size_t>(pool->size(), 8);
      for (std::size_t b0 = w0; b0 < w1; b0 += block) {
        const std::size_t b1 = std::min(w1, b0 + block);
        std::vector<std::optional<SimulatedModel>> fabrics(b1 - b0);
        std::vector<double> build_ms(b1 - b0, 0.0);
        pool->parallel_for(b0, b1, [&](std::size_t t) {
          OBS_SPAN("fault_trial_build");
          const auto t0 = std::chrono::steady_clock::now();
          fabrics[t - b0].emplace(build_fabric(t));
          trials[t].stats = fabrics[t - b0]->fault_stats();
          build_ms[t - b0] = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
        });
        const auto cpt = static_cast<std::size_t>(chunks_per_trial);
        std::vector<double> chunk_ms((b1 - b0) * cpt, 0.0);
        pool->parallel_for(0, (b1 - b0) * cpt, [&](std::size_t item) {
          OBS_SPAN("fault_trial_chunk");
          const std::size_t t = b0 + item / cpt;
          const int c = static_cast<int>(item % cpt);
          chunk_ms[item] = run_chunk(*fabrics[t - b0], trials[t], c, pool);
        });
        for (std::size_t t = b0; t < b1; ++t) {
          double ms = build_ms[t - b0];
          for (std::size_t c = 0; c < cpt; ++c) {
            ms += chunk_ms[(t - b0) * cpt + c];
          }
          trials[t].wall_ms = ms;
        }
      }
    } else {
      for (std::size_t t = w0; t < w1; ++t) {
        OBS_SPAN("fault_trial");
        const auto t0 = std::chrono::steady_clock::now();
        const SimulatedModel faulty = build_fabric(t);
        trials[t].stats = faulty.fault_stats();
        for (int c = 0; c < chunks_per_trial; ++c) {
          run_chunk(faulty, trials[t], c, /*pool=*/nullptr);
        }
        trials[t].wall_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
      }
    }
  };

  // Wave loop. Fixed mode runs one wave over the whole budget — identical
  // work, scheduling and reduction order to the fixed-product code, so
  // reports stay byte-identical. Adaptive mode runs to the next decision
  // boundary, feeds the pooled per-sample agreement to the stopping rule
  // (integer sums — thread-order free) and stops once the CI resolves or
  // the cap fires. Executed trials are a prefix of the fixed-mode stream.
  std::size_t executed = 0;
  const auto n_requested = static_cast<std::size_t>(requested);
  while (executed < n_requested) {
    const std::size_t wave_end =
        adaptive ? static_cast<std::size_t>(
                       stopper.next_boundary(static_cast<int>(executed)))
                 : n_requested;
    if (adaptive) {
      OBS_SPAN("mc_budget_wave");
      run_trials(executed, wave_end);
    } else {
      run_trials(executed, wave_end);
    }
    for (std::size_t t = executed; t < wave_end; ++t) {
      std::int64_t agree = 0;
      for (const char a : trials[t].agree) agree += a;
      stopper.add_trial(agree, options.samples);
    }
    executed = wave_end;
    if (adaptive && stopper.should_stop()) break;
  }
  report.trials = static_cast<int>(executed);
  report.early_stopped = adaptive && stopper.stopped_early();
  const WilsonInterval pooled_ci = stopper.interval();
  report.accuracy_ci_lower = pooled_ci.lower;
  report.accuracy_ci_upper = pooled_ci.upper;
  if (report.early_stopped) {
    OBS_SPAN("mc_early_stop");
    OBS_COUNTER_ADD("autohet_mc_early_stops_total", 1);
  }
  OBS_COUNTER_ADD("autohet_mc_trials_saved_total",
                  static_cast<std::int64_t>(n_requested - executed));

  // Ordered reduction over the executed trials: every accumulator sees its
  // terms in the exact (t, s, l) order of the serial loop, so reports are
  // byte-identical across thread counts and kernel policies.
  double acc_sum = 0.0;
  double acc_sq_sum = 0.0;
  double logit_err_sum = 0.0;
  for (std::size_t t = 0; t < executed; ++t) {
    const TrialResult& res = trials[t];
    report.fault_stats += res.stats;
    int agree = 0;
    for (int s = 0; s < options.samples; ++s) {
      const auto si = static_cast<std::size_t>(s);
      agree += res.agree[si];
      logit_err_sum += res.logit_err[si];
      for (std::size_t l = 0; l < num_layers; ++l) {
        report.layer_error[l] += res.layer_err[si * num_layers + l];
      }
    }
    const double accuracy =
        static_cast<double>(agree) / static_cast<double>(options.samples);
    acc_sum += accuracy;
    acc_sq_sum += accuracy * accuracy;
    report.min_accuracy = std::min(report.min_accuracy, accuracy);
    report.max_accuracy = std::max(report.max_accuracy, accuracy);
    OBS_COUNTER_ADD("autohet_fault_trials_total", 1);
    OBS_PROFILE_RECORD(obs::ProfileKind::kMcTrial, -1, 0, 1);
    OBS_HIST_RECORD("autohet_fault_trial_agreement_permille",
                    accuracy * 1000.0);
    OBS_HIST_RECORD("autohet_mc_trial_ms", res.wall_ms);
  }

  const double n = static_cast<double>(executed);
  report.mean_accuracy = acc_sum / n;
  report.stddev_accuracy = std::sqrt(
      std::max(0.0, acc_sq_sum / n - report.mean_accuracy *
                                         report.mean_accuracy));
  report.mean_logit_error =
      logit_err_sum / (n * static_cast<double>(options.samples));
  for (auto& e : report.layer_error) {
    e /= n * static_cast<double>(options.samples);
  }
  OBS_GAUGE_SET("autohet_fault_accuracy_mean", report.mean_accuracy);
  OBS_GAUGE_SET("autohet_fault_accuracy_stddev", report.stddev_accuracy);
  return report;
}

RobustnessReport monte_carlo_robustness(const nn::Model& model,
                                        const plan::DeploymentPlan& plan,
                                        const RobustnessOptions& options) {
  plan.validate_against(model.spec());
  // The plan's stored geometry equals map_layer on its shapes (validated),
  // so the shapes overload runs the same trial fabrics bit-identically.
  return monte_carlo_robustness(model, plan.shapes(), plan.accel.faults,
                                options);
}

}  // namespace autohet::reram
