#include "reram/functional.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "tensor/ops.hpp"

namespace autohet::reram {

namespace {
/// Crossbar-id stride between layers: fault maps stay stable per crossbar
/// as long as no layer spans more than 2^20 logical crossbars.
constexpr std::uint64_t kFaultIdStride = std::uint64_t{1} << 20;
}  // namespace

MappedLayer::MappedLayer(const nn::LayerSpec& spec,
                         const tensor::Tensor& weight,
                         const mapping::CrossbarShape& shape,
                         const FaultModel* faults, std::uint64_t layer_id)
    : MappedLayer(spec, weight, mapping::map_layer(spec, shape), faults,
                  layer_id) {}

MappedLayer::MappedLayer(const nn::LayerSpec& spec,
                         const tensor::Tensor& weight,
                         const mapping::LayerMapping& mapping,
                         const FaultModel* faults, std::uint64_t layer_id)
    : spec_(spec), mapping_(mapping) {
  AUTOHET_CHECK(mapping_ == mapping::map_layer(spec, mapping_.shape),
                "mapping geometry disagrees with map_layer for this layer");
  const mapping::CrossbarShape& shape = mapping_.shape;
  const std::int64_t k2 = spec.kernel * spec.kernel;
  const std::int64_t wrows = spec.weight_rows();
  const std::int64_t wcols = spec.weight_cols();
  AUTOHET_CHECK(weight.numel() == wrows * wcols, "weight shape mismatch");

  // Quantize the whole layer once (per-tensor symmetric 8-bit); the unfolded
  // row order (channel-major, then kernel position) matches tensor::im2col.
  const nn::QuantizedWeights qw = nn::quantize_weights(
      weight.reshaped({wcols, wrows}), /*bits=*/8);
  weight_scale_ = qw.scale;
  const auto wq = [&](std::int64_t row, std::int64_t col) {
    // qw is laid out [Cout, Cin*k*k]; we address it transposed.
    return qw.values[static_cast<std::size_t>(col * wrows + row)];
  };

  const std::int64_t rb_count = mapping_.row_blocks;
  const std::int64_t cb_count = mapping_.col_blocks;
  crossbars_.reserve(static_cast<std::size_t>(rb_count * cb_count));
  row_ranges_.reserve(static_cast<std::size_t>(rb_count));

  if (!mapping_.split_kernel) {
    const std::int64_t kpb = mapping_.kernels_per_row_block;
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const std::int64_t ch0 = rb * kpb;
      const std::int64_t ch1 = std::min(spec.in_channels, ch0 + kpb);
      row_ranges_.emplace_back(ch0 * k2, ch1 * k2);
    }
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
      for (std::int64_t cb = 0; cb < cb_count; ++cb) {
        const std::int64_t c0 = cb * shape.cols;
        const std::int64_t c1 = std::min(wcols, c0 + shape.cols);
        LogicalCrossbar xb(shape);
        for (std::int64_t r = r0; r < r1; ++r) {
          for (std::int64_t c = c0; c < c1; ++c) {
            xb.program_cell(r - r0, c - c0, wq(r, c));
          }
        }
        crossbars_.push_back(std::move(xb));
      }
    }
  } else {
    // Split-kernel fallback: plain row-wise partition of the weight matrix.
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const std::int64_t r0 = rb * shape.rows;
      const std::int64_t r1 = std::min(wrows, r0 + shape.rows);
      row_ranges_.emplace_back(r0, r1);
      // (crossbars appended below, after all ranges, to keep rb-major order)
    }
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
      for (std::int64_t cb = 0; cb < cb_count; ++cb) {
        const std::int64_t c0 = cb * shape.cols;
        const std::int64_t c1 = std::min(wcols, c0 + shape.cols);
        LogicalCrossbar xb(shape);
        for (std::int64_t r = r0; r < r1; ++r) {
          for (std::int64_t c = c0; c < c1; ++c) {
            xb.program_cell(r - r0, c - c0, wq(r, c));
          }
        }
        crossbars_.push_back(std::move(xb));
      }
    }
  }

  // Device non-ideality enters at this programming step: the seeded fault
  // maps and programming variation are burned into the arrays the moment
  // the weights are written (reram/faults.hpp).
  if (faults != nullptr && !faults->ideal()) {
    const std::uint64_t base_id = layer_id * kFaultIdStride;
    for (std::size_t i = 0; i < crossbars_.size(); ++i) {
      fault_stats_ += crossbars_[i].apply_faults(
          *faults, base_id + static_cast<std::uint64_t>(i));
    }
    read_sigma_weights_ = faults->read_noise_weight_sigma();
    read_rng_ = common::Rng(faults->config().seed ^ 0x5eadbeefcafeULL)
                    .child(layer_id);
  }
}

std::vector<std::int32_t> MappedLayer::mvm(
    std::span<const std::uint8_t> input_column, DatapathMode mode) const {
  AUTOHET_CHECK(
      static_cast<std::int64_t>(input_column.size()) == spec_.weight_rows(),
      "input column length mismatch");
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(spec_.weight_cols()), 0);
  const std::int64_t cb_count = mapping_.col_blocks;
  for (std::int64_t rb = 0; rb < mapping_.row_blocks; ++rb) {
    const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
    const std::span<const std::uint8_t> slice =
        input_column.subspan(static_cast<std::size_t>(r0),
                             static_cast<std::size_t>(r1 - r0));
    for (std::int64_t cb = 0; cb < cb_count; ++cb) {
      const auto& xb = crossbars_[static_cast<std::size_t>(rb * cb_count + cb)];
      // Read variation is sampled at MVM time (per read, per sensed cell);
      // it requires the integer datapath — SimulatedModel enforces that.
      const std::vector<std::int32_t> partial =
          (mode == DatapathMode::kBitSerial)
              ? xb.mvm_bit_serial(slice)
              : (read_sigma_weights_ > 0.0
                     ? xb.mvm_read_noisy(slice, read_rng_,
                                         read_sigma_weights_)
                     : xb.mvm_reference(slice));
      const std::int64_t c0 = cb * mapping_.shape.cols;
      for (std::size_t j = 0; j < partial.size(); ++j) {
        // Adder tree: merge row-block partial sums per output channel.
        out[static_cast<std::size_t>(c0) + j] += partial[j];
      }
    }
  }
  return out;
}

void MappedLayer::apply_variation(common::Rng& rng, double sigma) {
  for (auto& xb : crossbars_) xb.apply_variation(rng, sigma);
}

void SimulatedModel::apply_variation(common::Rng& rng, double sigma) {
  for (auto& layer : layers_) layer.apply_variation(rng, sigma);
}

FaultMapStats SimulatedModel::fault_stats() const noexcept {
  FaultMapStats total;
  for (const auto& layer : layers_) total += layer.fault_stats();
  return total;
}

SimulatedModel::SimulatedModel(
    const nn::Model& model,
    const std::vector<mapping::CrossbarShape>& shapes, DatapathMode mode,
    const FaultConfig& faults)
    : model_(&model), mode_(mode), fault_model_(faults) {
  const auto mappable = model.spec().mappable_layers();
  AUTOHET_CHECK(shapes.size() == mappable.size(),
                "one crossbar shape per mappable layer required");
  AUTOHET_CHECK(faults.read_sigma == 0.0 || mode == DatapathMode::kInteger,
                "read noise requires the integer datapath");
  const FaultModel* fm = fault_model_.ideal() ? nullptr : &fault_model_;
  layers_.reserve(mappable.size());
  for (std::size_t i = 0; i < mappable.size(); ++i) {
    layers_.emplace_back(mappable[i], model.weight(i), shapes[i], fm,
                         static_cast<std::uint64_t>(i));
  }
}

SimulatedModel::SimulatedModel(const nn::Model& model,
                               const plan::DeploymentPlan& plan,
                               DatapathMode mode)
    : model_(&model), mode_(mode), fault_model_(plan.accel.faults) {
  plan.validate_against(model.spec());
  AUTOHET_CHECK(
      plan.accel.faults.read_sigma == 0.0 || mode == DatapathMode::kInteger,
      "read noise requires the integer datapath");
  const FaultModel* fm = fault_model_.ideal() ? nullptr : &fault_model_;
  layers_.reserve(plan.layers.size());
  for (std::size_t i = 0; i < plan.layers.size(); ++i) {
    // Program straight from the plan's frozen geometry — no map_layer here.
    layers_.emplace_back(plan.layers[i], model.weight(i),
                         plan.allocation.layers[i].mapping, fm,
                         static_cast<std::uint64_t>(i));
  }
}

tensor::Tensor SimulatedModel::run_mappable(const MappedLayer& layer,
                                            const tensor::Tensor& input) const {
  const nn::LayerSpec& spec = layer.spec();
  // Quantize the whole activation tensor once (8-bit, unsigned: inputs are
  // post-ReLU or raw non-negative pixels).
  const nn::QuantizedActivations qa = nn::quantize_activations(
      spec.type == nn::LayerType::kConv
          ? input
          : input.reshaped({input.numel()}),
      /*bits=*/8);
  const float out_scale = layer.weight_scale() * qa.scale;

  if (spec.type == nn::LayerType::kFullyConnected) {
    const std::vector<std::int32_t> acc =
        layer.mvm(std::span<const std::uint8_t>(qa.values), mode_);
    tensor::Tensor out({spec.out_channels});
    for (std::int64_t j = 0; j < spec.out_channels; ++j) {
      out[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]) * out_scale;
    }
    return out;
  }

  // CONV: integer im2col over the quantized activations, one MVM per output
  // position (spec.mvm_count() invocations, as the hardware model charges).
  const std::int64_t k = spec.kernel;
  const std::int64_t oh = spec.out_height();
  const std::int64_t ow = spec.out_width();
  const std::int64_t h = spec.in_height;
  const std::int64_t w = spec.in_width;
  tensor::Tensor out({spec.out_channels, oh, ow});
  std::vector<std::uint8_t> column(
      static_cast<std::size_t>(spec.weight_rows()));
  for (std::int64_t oi = 0; oi < oh; ++oi) {
    for (std::int64_t oj = 0; oj < ow; ++oj) {
      std::size_t idx = 0;
      for (std::int64_t ch = 0; ch < spec.in_channels; ++ch) {
        for (std::int64_t ki = 0; ki < k; ++ki) {
          for (std::int64_t kj = 0; kj < k; ++kj, ++idx) {
            const std::int64_t ii = oi * spec.stride + ki - spec.pad;
            const std::int64_t jj = oj * spec.stride + kj - spec.pad;
            std::uint8_t v = 0;
            if (ii >= 0 && ii < h && jj >= 0 && jj < w) {
              v = qa.values[static_cast<std::size_t>((ch * h + ii) * w + jj)];
            }
            column[idx] = v;
          }
        }
      }
      const std::vector<std::int32_t> acc = layer.mvm(column, mode_);
      for (std::int64_t co = 0; co < spec.out_channels; ++co) {
        out.at(co, oi, oj) =
            static_cast<float>(acc[static_cast<std::size_t>(co)]) * out_scale;
      }
    }
  }
  return out;
}

tensor::Tensor SimulatedModel::forward(const tensor::Tensor& input) const {
  return forward_traced(input).output;
}

SimulatedModel::ForwardTrace SimulatedModel::forward_traced(
    const tensor::Tensor& input) const {
  const nn::NetworkSpec& spec = model_->spec();
  AUTOHET_CHECK(spec.sequential_runnable,
                "network is not sequentially runnable (" + spec.name + ")");
  ForwardTrace trace;
  trace.mappable_outputs.reserve(layers_.size());
  tensor::Tensor x = input;
  std::size_t mappable_idx = 0;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const nn::LayerSpec& layer = spec.layers[i];
    if (nn::is_mappable(layer.type)) {
      x = run_mappable(layers_[mappable_idx++], x);
      trace.mappable_outputs.push_back(x);  // pre-activation layer output
    } else {
      x = model_->forward_layer(i, x);
    }
    if (layer.relu_after) tensor::relu_inplace(x);
  }
  trace.output = std::move(x);
  return trace;
}

RobustnessReport monte_carlo_robustness(
    const nn::Model& model, const std::vector<mapping::CrossbarShape>& shapes,
    const FaultConfig& faults, const RobustnessOptions& options) {
  OBS_SPAN("mc_robustness");
  AUTOHET_CHECK(options.trials > 0 && options.samples > 0,
                "robustness needs at least one trial and one sample");
  faults.validate();

  RobustnessReport report;
  report.trials = options.trials;
  report.samples = options.samples;
  report.min_accuracy = 1.0;

  // The ideal fabric is the reference: agreement with it isolates device
  // non-ideality from the (always present) 8-bit quantization error.
  const SimulatedModel ideal(model, shapes, options.mode);
  const nn::LayerSpec& first = model.spec().layers.front();
  common::Rng img_rng(options.input_seed);
  std::vector<tensor::Tensor> images;
  std::vector<SimulatedModel::ForwardTrace> references;
  std::vector<std::int64_t> reference_classes;
  images.reserve(static_cast<std::size_t>(options.samples));
  for (int s = 0; s < options.samples; ++s) {
    images.push_back(nn::synthetic_image(img_rng, first.in_channels,
                                         first.in_height, first.in_width));
    references.push_back(ideal.forward_traced(images.back()));
    reference_classes.push_back(tensor::argmax(references.back().output));
  }

  const std::size_t num_layers = ideal.mapped_layers().size();
  report.layer_error.assign(num_layers, 0.0);
  double acc_sum = 0.0;
  double acc_sq_sum = 0.0;
  double logit_err_sum = 0.0;
  for (int t = 0; t < options.trials; ++t) {
    OBS_SPAN("fault_trial");
    const SimulatedModel faulty(model, shapes, options.mode,
                                faults.for_trial(static_cast<std::uint64_t>(t)));
    report.fault_stats += faulty.fault_stats();
    int agree = 0;
    for (int s = 0; s < options.samples; ++s) {
      const auto si = static_cast<std::size_t>(s);
      const auto trace = faulty.forward_traced(images[si]);
      if (tensor::argmax(trace.output) == reference_classes[si]) ++agree;
      logit_err_sum += tensor::max_abs_diff(trace.output,
                                            references[si].output);
      for (std::size_t l = 0; l < num_layers; ++l) {
        const float ref_scale =
            std::max(1.0f, references[si].mappable_outputs[l].abs_max());
        report.layer_error[l] +=
            tensor::max_abs_diff(trace.mappable_outputs[l],
                                 references[si].mappable_outputs[l]) /
            ref_scale;
      }
    }
    const double accuracy =
        static_cast<double>(agree) / static_cast<double>(options.samples);
    acc_sum += accuracy;
    acc_sq_sum += accuracy * accuracy;
    report.min_accuracy = std::min(report.min_accuracy, accuracy);
    report.max_accuracy = std::max(report.max_accuracy, accuracy);
    OBS_COUNTER_ADD("autohet_fault_trials_total", 1);
    OBS_HIST_RECORD("autohet_fault_trial_agreement_permille",
                    accuracy * 1000.0);
  }

  const double n = static_cast<double>(options.trials);
  report.mean_accuracy = acc_sum / n;
  report.stddev_accuracy = std::sqrt(
      std::max(0.0, acc_sq_sum / n - report.mean_accuracy *
                                         report.mean_accuracy));
  report.mean_logit_error =
      logit_err_sum / (n * static_cast<double>(options.samples));
  for (auto& e : report.layer_error) {
    e /= n * static_cast<double>(options.samples);
  }
  OBS_GAUGE_SET("autohet_fault_accuracy_mean", report.mean_accuracy);
  OBS_GAUGE_SET("autohet_fault_accuracy_stddev", report.stddev_accuracy);
  return report;
}

RobustnessReport monte_carlo_robustness(const nn::Model& model,
                                        const plan::DeploymentPlan& plan,
                                        const RobustnessOptions& options) {
  plan.validate_against(model.spec());
  // The plan's stored geometry equals map_layer on its shapes (validated),
  // so the shapes overload runs the same trial fabrics bit-identically.
  return monte_carlo_robustness(model, plan.shapes(), plan.accel.faults,
                                options);
}

}  // namespace autohet::reram
