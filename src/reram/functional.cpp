#include "reram/functional.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "tensor/ops.hpp"

namespace autohet::reram {

MappedLayer::MappedLayer(const nn::LayerSpec& spec,
                         const tensor::Tensor& weight,
                         const mapping::CrossbarShape& shape)
    : spec_(spec), mapping_(mapping::map_layer(spec, shape)) {
  const std::int64_t k2 = spec.kernel * spec.kernel;
  const std::int64_t wrows = spec.weight_rows();
  const std::int64_t wcols = spec.weight_cols();
  AUTOHET_CHECK(weight.numel() == wrows * wcols, "weight shape mismatch");

  // Quantize the whole layer once (per-tensor symmetric 8-bit); the unfolded
  // row order (channel-major, then kernel position) matches tensor::im2col.
  const nn::QuantizedWeights qw = nn::quantize_weights(
      weight.reshaped({wcols, wrows}), /*bits=*/8);
  weight_scale_ = qw.scale;
  const auto wq = [&](std::int64_t row, std::int64_t col) {
    // qw is laid out [Cout, Cin*k*k]; we address it transposed.
    return qw.values[static_cast<std::size_t>(col * wrows + row)];
  };

  const std::int64_t rb_count = mapping_.row_blocks;
  const std::int64_t cb_count = mapping_.col_blocks;
  crossbars_.reserve(static_cast<std::size_t>(rb_count * cb_count));
  row_ranges_.reserve(static_cast<std::size_t>(rb_count));

  if (!mapping_.split_kernel) {
    const std::int64_t kpb = mapping_.kernels_per_row_block;
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const std::int64_t ch0 = rb * kpb;
      const std::int64_t ch1 = std::min(spec.in_channels, ch0 + kpb);
      row_ranges_.emplace_back(ch0 * k2, ch1 * k2);
    }
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
      for (std::int64_t cb = 0; cb < cb_count; ++cb) {
        const std::int64_t c0 = cb * shape.cols;
        const std::int64_t c1 = std::min(wcols, c0 + shape.cols);
        LogicalCrossbar xb(shape);
        for (std::int64_t r = r0; r < r1; ++r) {
          for (std::int64_t c = c0; c < c1; ++c) {
            xb.program_cell(r - r0, c - c0, wq(r, c));
          }
        }
        crossbars_.push_back(std::move(xb));
      }
    }
  } else {
    // Split-kernel fallback: plain row-wise partition of the weight matrix.
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const std::int64_t r0 = rb * shape.rows;
      const std::int64_t r1 = std::min(wrows, r0 + shape.rows);
      row_ranges_.emplace_back(r0, r1);
      // (crossbars appended below, after all ranges, to keep rb-major order)
    }
    for (std::int64_t rb = 0; rb < rb_count; ++rb) {
      const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
      for (std::int64_t cb = 0; cb < cb_count; ++cb) {
        const std::int64_t c0 = cb * shape.cols;
        const std::int64_t c1 = std::min(wcols, c0 + shape.cols);
        LogicalCrossbar xb(shape);
        for (std::int64_t r = r0; r < r1; ++r) {
          for (std::int64_t c = c0; c < c1; ++c) {
            xb.program_cell(r - r0, c - c0, wq(r, c));
          }
        }
        crossbars_.push_back(std::move(xb));
      }
    }
  }
}

std::vector<std::int32_t> MappedLayer::mvm(
    std::span<const std::uint8_t> input_column, DatapathMode mode) const {
  AUTOHET_CHECK(
      static_cast<std::int64_t>(input_column.size()) == spec_.weight_rows(),
      "input column length mismatch");
  std::vector<std::int32_t> out(
      static_cast<std::size_t>(spec_.weight_cols()), 0);
  const std::int64_t cb_count = mapping_.col_blocks;
  for (std::int64_t rb = 0; rb < mapping_.row_blocks; ++rb) {
    const auto [r0, r1] = row_ranges_[static_cast<std::size_t>(rb)];
    const std::span<const std::uint8_t> slice =
        input_column.subspan(static_cast<std::size_t>(r0),
                             static_cast<std::size_t>(r1 - r0));
    for (std::int64_t cb = 0; cb < cb_count; ++cb) {
      const auto& xb = crossbars_[static_cast<std::size_t>(rb * cb_count + cb)];
      const std::vector<std::int32_t> partial =
          (mode == DatapathMode::kBitSerial) ? xb.mvm_bit_serial(slice)
                                             : xb.mvm_reference(slice);
      const std::int64_t c0 = cb * mapping_.shape.cols;
      for (std::size_t j = 0; j < partial.size(); ++j) {
        // Adder tree: merge row-block partial sums per output channel.
        out[static_cast<std::size_t>(c0) + j] += partial[j];
      }
    }
  }
  return out;
}

void MappedLayer::apply_variation(common::Rng& rng, double sigma) {
  for (auto& xb : crossbars_) xb.apply_variation(rng, sigma);
}

void SimulatedModel::apply_variation(common::Rng& rng, double sigma) {
  for (auto& layer : layers_) layer.apply_variation(rng, sigma);
}

SimulatedModel::SimulatedModel(
    const nn::Model& model,
    const std::vector<mapping::CrossbarShape>& shapes, DatapathMode mode)
    : model_(&model), mode_(mode) {
  const auto mappable = model.spec().mappable_layers();
  AUTOHET_CHECK(shapes.size() == mappable.size(),
                "one crossbar shape per mappable layer required");
  layers_.reserve(mappable.size());
  for (std::size_t i = 0; i < mappable.size(); ++i) {
    layers_.emplace_back(mappable[i], model.weight(i), shapes[i]);
  }
}

tensor::Tensor SimulatedModel::run_mappable(const MappedLayer& layer,
                                            const tensor::Tensor& input) const {
  const nn::LayerSpec& spec = layer.spec();
  // Quantize the whole activation tensor once (8-bit, unsigned: inputs are
  // post-ReLU or raw non-negative pixels).
  const nn::QuantizedActivations qa = nn::quantize_activations(
      spec.type == nn::LayerType::kConv
          ? input
          : input.reshaped({input.numel()}),
      /*bits=*/8);
  const float out_scale = layer.weight_scale() * qa.scale;

  if (spec.type == nn::LayerType::kFullyConnected) {
    const std::vector<std::int32_t> acc =
        layer.mvm(std::span<const std::uint8_t>(qa.values), mode_);
    tensor::Tensor out({spec.out_channels});
    for (std::int64_t j = 0; j < spec.out_channels; ++j) {
      out[j] = static_cast<float>(acc[static_cast<std::size_t>(j)]) * out_scale;
    }
    return out;
  }

  // CONV: integer im2col over the quantized activations, one MVM per output
  // position (spec.mvm_count() invocations, as the hardware model charges).
  const std::int64_t k = spec.kernel;
  const std::int64_t oh = spec.out_height();
  const std::int64_t ow = spec.out_width();
  const std::int64_t h = spec.in_height;
  const std::int64_t w = spec.in_width;
  tensor::Tensor out({spec.out_channels, oh, ow});
  std::vector<std::uint8_t> column(
      static_cast<std::size_t>(spec.weight_rows()));
  for (std::int64_t oi = 0; oi < oh; ++oi) {
    for (std::int64_t oj = 0; oj < ow; ++oj) {
      std::size_t idx = 0;
      for (std::int64_t ch = 0; ch < spec.in_channels; ++ch) {
        for (std::int64_t ki = 0; ki < k; ++ki) {
          for (std::int64_t kj = 0; kj < k; ++kj, ++idx) {
            const std::int64_t ii = oi * spec.stride + ki - spec.pad;
            const std::int64_t jj = oj * spec.stride + kj - spec.pad;
            std::uint8_t v = 0;
            if (ii >= 0 && ii < h && jj >= 0 && jj < w) {
              v = qa.values[static_cast<std::size_t>((ch * h + ii) * w + jj)];
            }
            column[idx] = v;
          }
        }
      }
      const std::vector<std::int32_t> acc = layer.mvm(column, mode_);
      for (std::int64_t co = 0; co < spec.out_channels; ++co) {
        out.at(co, oi, oj) =
            static_cast<float>(acc[static_cast<std::size_t>(co)]) * out_scale;
      }
    }
  }
  return out;
}

tensor::Tensor SimulatedModel::forward(const tensor::Tensor& input) const {
  const nn::NetworkSpec& spec = model_->spec();
  AUTOHET_CHECK(spec.sequential_runnable,
                "network is not sequentially runnable (" + spec.name + ")");
  tensor::Tensor x = input;
  std::size_t mappable_idx = 0;
  for (std::size_t i = 0; i < spec.layers.size(); ++i) {
    const nn::LayerSpec& layer = spec.layers[i];
    if (nn::is_mappable(layer.type)) {
      x = run_mappable(layers_[mappable_idx++], x);
    } else {
      x = model_->forward_layer(i, x);
    }
    if (layer.relu_after) tensor::relu_inplace(x);
  }
  return x;
}

}  // namespace autohet::reram
