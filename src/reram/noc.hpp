// Inter-tile interconnect (bus/NoC) traffic model.
//
// The GC "signals the input/output buffer and tiles through the bus"
// (§3.1): every layer's output feature map crosses the interconnect from
// its producing tiles to the consumer layer's tiles. This model computes,
// for a placed allocation, the bytes moved per inference, the average hop
// distance of each producer->consumer transfer, and the resulting
// interconnect energy — an additive refinement on top of the core
// energy model (benched as an ablation).
#pragma once

#include <cstdint>
#include <vector>

#include "mapping/tile_allocator.hpp"
#include "nn/layer.hpp"
#include "reram/bank.hpp"

namespace autohet::reram {

struct NocParams {
  double energy_pj_per_byte_hop = 0.05;
  std::int64_t inter_bank_penalty_hops = 64;
};

struct LinkReport {
  std::int64_t producer_layer = 0;
  std::int64_t consumer_layer = 0;
  std::int64_t bytes = 0;         ///< per inference
  double mean_hops = 0.0;
  double energy_nj = 0.0;
};

struct NocReport {
  std::vector<LinkReport> links;
  std::int64_t total_bytes = 0;
  double total_energy_nj = 0.0;
  double mean_hops = 0.0;  ///< traffic-weighted
};

/// Evaluates interconnect traffic for a chain of layers placed on a chip.
/// `layers`/`allocation` as produced by the tile allocator; placement from
/// place_tiles(). Layer k feeds layer k+1 (the sequential dataflow the
/// paper's accelerators use); each transfer carries the producer's output
/// feature map (out_channels × out_h × out_w bytes at 8-bit activations)
/// over the mean distance between the two layers' tiles.
NocReport evaluate_noc(const std::vector<nn::LayerSpec>& layers,
                       const mapping::AllocationResult& allocation,
                       const PlacementResult& placement,
                       const NocParams& params = {});

}  // namespace autohet::reram
