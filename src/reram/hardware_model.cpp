#include "reram/hardware_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "reram/components.hpp"

namespace autohet::reram {

LayerLatencyTerms layer_latency_terms(const mapping::LayerMapping& m,
                                      std::int64_t tiles_spanned,
                                      const DeviceParams& params) noexcept {
  const double rows = static_cast<double>(m.shape.rows);
  const double read_cycle_ns =
      params.base_cycle_ns + params.wire_delay_ns_per_row * rows;
  const double merge_levels =
      ceil_log2(m.row_blocks) + ceil_log2(params.bit_planes());
  LayerLatencyTerms terms;
  terms.compute_ns = params.input_cycles() * read_cycle_ns;
  // ADC sharing serializes the conversions of the muxed bitlines.
  terms.adc_ns =
      params.adc_latency_ns * static_cast<double>(params.adc_share);
  terms.merge_ns = params.merge_latency_ns * merge_levels;
  terms.bus_ns = params.bus_latency_ns * ceil_log2(tiles_spanned);
  return terms;
}

LayerReport evaluate_layer(const nn::LayerSpec& layer,
                           const mapping::LayerMapping& m,
                           std::int64_t tiles_spanned,
                           const DeviceParams& params,
                           const FaultConfig& faults) {
  AUTOHET_CHECK(nn::is_mappable(layer.type), "layer does not occupy crossbars");
  LayerReport report;
  report.shape = m.shape;
  report.logical_crossbars = m.logical_crossbars();
  report.adc_instances = m.adc_count();
  report.tiles = tiles_spanned;
  report.mvm_invocations = layer.mvm_count();
  report.utilization = m.utilization();
  report.fault_vulnerability = analytic_layer_vulnerability(m, faults);

  const double planes = params.bit_planes();
  const double cycles = params.input_cycles();
  const double mvms = static_cast<double>(layer.mvm_count());

  // ---- energy (nJ) ----
  // Unused bitlines/wordlines are gated: only the layer's output columns
  // are converted (once per row block, whose partial sums merge in the
  // adder tree) and only the occupied wordlines are driven (once per column
  // block, which each hold a copy of the input).
  const double adc_conversions =
      planes * static_cast<double>(m.row_blocks) *
      static_cast<double>(layer.weight_cols());                 // per cycle
  const double dac_drives =
      planes * static_cast<double>(m.col_blocks) *
      static_cast<double>(layer.weight_rows());                 // per cycle
  const double cell_reads =
      planes * static_cast<double>(m.useful_cells);             // per cycle
  const double sa_ops = adc_conversions;                        // per cycle
  // Buffer traffic per MVM: the unfolded input vector in, outputs out.
  const double buffer_bytes = static_cast<double>(layer.weight_rows()) +
                              static_cast<double>(layer.out_channels);

  report.energy.adc_nj =
      mvms * cycles * adc_conversions * params.adc_energy_pj * kPjToNj;
  report.energy.dac_nj =
      mvms * cycles * dac_drives * params.dac_energy_pj * kPjToNj;
  report.energy.cell_nj =
      mvms * cycles * cell_reads * params.cell_read_energy_pj * kPjToNj;
  report.energy.shift_add_nj =
      mvms * cycles * sa_ops * params.shift_add_energy_pj * kPjToNj;
  report.energy.buffer_nj =
      mvms * buffer_bytes * params.buffer_rw_energy_pj * kPjToNj;

  // ---- latency (ns) ----
  report.latency_ns =
      mvms * layer_latency_terms(m, tiles_spanned, params).per_mvm_ns();
  return report;
}

NetworkReport evaluate_allocation(const std::vector<nn::LayerSpec>& layers,
                                  const mapping::AllocationResult& alloc,
                                  const AcceleratorConfig& config) {
  AUTOHET_CHECK(layers.size() == alloc.layers.size(),
                "layers and allocation must be the same length");
  NetworkReport report;
  report.layers.reserve(layers.size());
  std::vector<double> layer_vuln;
  layer_vuln.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const auto& layer_alloc = alloc.layers[i];
    OBS_PROFILE_RECORD(obs::ProfileKind::kAnalyticEval, i, 0, 1);
    LayerReport lr = evaluate_layer(layers[i], layer_alloc.mapping,
                                    layer_alloc.tiles_allocated,
                                    config.device, config.faults);
    report.energy += lr.energy;
    report.latency_ns += lr.latency_ns;
    layer_vuln.push_back(lr.fault_vulnerability);
    report.layers.push_back(std::move(lr));
  }
  report.fault_vulnerability = aggregate_network_vulnerability(layer_vuln);

  // ---- area (µm²): tile-provisioned ----
  // Higher utilization, rectangle shapes, and tile sharing shrink the chip
  // (Table 5 discussion) because released tiles contribute nothing.
  for (const auto& tile : alloc.tiles) {
    if (tile.released) continue;
    const TileAreaContribution a = tile_area_contribution(
        tile.shape, config.device, config.pes_per_tile);
    report.area.crossbar_um2 += a.crossbar_um2;
    report.area.adc_um2 += a.adc_um2;
    report.area.dac_um2 += a.dac_um2;
    report.area.shift_add_um2 += a.shift_add_um2;
    report.area.tile_overhead_um2 += a.tile_overhead_um2;
  }
  report.occupied_tiles = alloc.occupied_tiles();
  report.empty_crossbars = alloc.empty_crossbars();

  report.utilization = alloc.system_utilization();
  return report;
}

GraphOpReport evaluate_graph_op(const nn::Graph& graph, std::int64_t node_id,
                                const DeviceParams& params) {
  AUTOHET_CHECK(node_id >= 0 && node_id < graph.node_count(),
                "graph op node id out of range");
  const nn::GraphNode& node =
      graph.nodes()[static_cast<std::size_t>(node_id)];
  AUTOHET_CHECK(node.kind != nn::OpKind::kInput &&
                    node.kind != nn::OpKind::kLayer,
                "evaluate_graph_op expects a non-mappable op node");

  std::int64_t reads = 0;
  for (const std::int64_t in : node.inputs) {
    reads += graph.nodes()[static_cast<std::size_t>(in)].shape.numel();
  }
  const std::int64_t writes = node.shape.numel();
  // ALU work: one op per output element for adds and activations, one per
  // accumulated input element for the global average pool; concat is pure
  // data movement through the tile buffers.
  std::int64_t alu_ops = 0;
  switch (node.kind) {
    case nn::OpKind::kResidualAdd:
    case nn::OpKind::kActivation:
      alu_ops = writes;
      break;
    case nn::OpKind::kGlobalAvgPool:
      alu_ops = reads;
      break;
    case nn::OpKind::kConcat:
      alu_ops = 0;
      break;
    case nn::OpKind::kInput:
    case nn::OpKind::kLayer:
      break;  // unreachable (checked above)
  }

  GraphOpReport report;
  report.node = node_id;
  report.op = nn::op_kind_name(node.kind);
  report.elements = alu_ops;
  report.bytes_moved = reads + writes;  // 8-bit activations: 1 byte each
  report.energy.shift_add_nj = static_cast<double>(alu_ops) *
                               params.vector_op_energy_pj * kPjToNj;
  report.energy.buffer_nj = static_cast<double>(report.bytes_moved) *
                            params.buffer_rw_energy_pj * kPjToNj;
  const double work = static_cast<double>(std::max(alu_ops, reads));
  report.latency_ns =
      std::ceil(work / static_cast<double>(params.vector_lanes)) *
      params.vector_cycle_ns;
  return report;
}

NetworkReport evaluate_graph_allocation(const nn::Graph& graph,
                                        const mapping::AllocationResult& alloc,
                                        const AcceleratorConfig& config) {
  NetworkReport report =
      evaluate_allocation(graph.mappable_layers(), alloc, config);
  for (std::int64_t id = 0; id < graph.node_count(); ++id) {
    const nn::GraphNode& node = graph.nodes()[static_cast<std::size_t>(id)];
    if (node.kind == nn::OpKind::kInput || node.kind == nn::OpKind::kLayer) {
      continue;
    }
    GraphOpReport op = evaluate_graph_op(graph, id, config.device);
    report.energy += op.energy;
    report.latency_ns += op.latency_ns;
    report.graph_ops.push_back(std::move(op));
  }
  return report;
}

NetworkReport evaluate_network(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config) {
  config.validate();
  AUTOHET_CHECK(layers.size() == shapes.size(),
                "layers and shapes must be the same length");

  const mapping::TileAllocator allocator(config.pes_per_tile,
                                         config.tile_shared);
  const mapping::AllocationResult alloc = allocator.allocate(layers, shapes);
  return evaluate_allocation(layers, alloc, config);
}

NetworkReport evaluate_homogeneous(const std::vector<nn::LayerSpec>& layers,
                                   const mapping::CrossbarShape& shape,
                                   const AcceleratorConfig& config) {
  const std::vector<mapping::CrossbarShape> shapes(layers.size(), shape);
  return evaluate_network(layers, shapes, config);
}

}  // namespace autohet::reram
