#include "reram/faults.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace autohet::reram {

namespace {
/// E[v²] for v uniform over {0, …, 2^b − 1}: (2^b−1)(2^{b+1}−1)/6.
double mean_square_level(int bits) noexcept {
  const double top = static_cast<double>((1 << bits) - 1);
  return top * (2.0 * top + 1.0) / 6.0;
}
}  // namespace

FaultConfig FaultConfig::for_trial(std::uint64_t trial) const noexcept {
  FaultConfig out = *this;
  // SplitMix the trial index into an independent seed stream.
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
  out.seed = common::splitmix64(sm);
  return out;
}

void FaultConfig::validate() const {
  AUTOHET_CHECK(stuck_at_zero_rate >= 0.0 && stuck_at_zero_rate <= 1.0 &&
                    stuck_at_one_rate >= 0.0 && stuck_at_one_rate <= 1.0 &&
                    stuck_at_zero_rate + stuck_at_one_rate <= 1.0,
                "stuck-at rates must be probabilities summing to <= 1");
  AUTOHET_CHECK(program_sigma >= 0.0 && read_sigma >= 0.0,
                "variation sigmas must be non-negative");
  AUTOHET_CHECK(drift_time_s >= 0.0 && drift_nu >= 0.0,
                "drift parameters must be non-negative");
  AUTOHET_CHECK(cell_bits > 0 && cell_bits <= 8 && 8 % cell_bits == 0,
                "cell_bits must divide 8");
}

WilsonInterval wilson_interval(double successes, double n, double z) {
  if (n <= 0.0) return {};
  const double p = successes / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      z * std::sqrt((p * (1.0 - p) + z2 / (4.0 * n)) / n) / denom;
  return {std::max(0.0, center - spread), std::min(1.0, center + spread)};
}

void RobustnessBudget::validate() const {
  AUTOHET_CHECK(ci_halfwidth > 0.0 && ci_halfwidth < 1.0,
                "ci_halfwidth must be in (0, 1)");
  AUTOHET_CHECK(min_trials > 0, "min_trials must be positive");
  AUTOHET_CHECK(max_trials >= 0, "max_trials must be non-negative");
  AUTOHET_CHECK(max_trials == 0 || max_trials >= min_trials,
                "max_trials must be 0 or >= min_trials");
  AUTOHET_CHECK(chunk_trials > 0, "chunk_trials must be positive");
}

SequentialStopper::SequentialStopper(const RobustnessBudget& budget,
                                     int requested)
    : budget_(budget) {
  budget_.validate();
  AUTOHET_CHECK(requested > 0, "stopper needs a positive trial cap");
  cap_ = budget_.max_trials > 0 ? budget_.max_trials : requested;
  min_ = std::min(budget_.min_trials, cap_);
}

void SequentialStopper::add_trial(std::int64_t successes,
                                  std::int64_t samples) {
  AUTOHET_CHECK(samples > 0 && successes >= 0 && successes <= samples,
                "trial successes must be within the sample count");
  AUTOHET_CHECK(m_ == 0 || m_ == samples,
                "every trial must contribute the same sample count");
  m_ = samples;
  ++trials_;
  successes_ += successes;
  n_ += samples;
  const double p_t =
      static_cast<double>(successes) / static_cast<double>(samples);
  sum_p_ += p_t;
  sum_p2_ += p_t * p_t;
}

double SequentialStopper::design_effect() const noexcept {
  if (trials_ < 2 || m_ < 2) return 1.0;
  const double p = static_cast<double>(successes_) /
                   static_cast<double>(n_);
  if (p <= 0.0 || p >= 1.0) return 1.0;  // no spread ⇒ no clustering signal
  const double t = static_cast<double>(trials_);
  const double m = static_cast<double>(m_);
  // Unbiased between-trial variance of the per-trial proportions; p equals
  // their mean because every trial carries the same m.
  const double var_b =
      std::max(0.0, (sum_p2_ - t * p * p) / (t - 1.0));
  // Moment estimator: Var(p_t) = p(1−p)/m · (1 + (m−1)ρ), clamped to a
  // valid correlation.
  const double rho = std::clamp(
      (m * var_b / (p * (1.0 - p)) - 1.0) / (m - 1.0), 0.0, 1.0);
  return 1.0 + (m - 1.0) * rho;
}

WilsonInterval SequentialStopper::pooled_interval() const {
  if (n_ <= 0) return {};
  return wilson_interval(static_cast<double>(successes_),
                         static_cast<double>(n_));
}

WilsonInterval SequentialStopper::interval() const {
  if (n_ <= 0) return {};
  const double deff = design_effect();
  const double n_eff = static_cast<double>(n_) / deff;
  const double p = static_cast<double>(successes_) /
                   static_cast<double>(n_);
  return wilson_interval(p * n_eff, n_eff);
}

int SequentialStopper::next_boundary(int executed) const noexcept {
  const int target = executed < min_ ? min_ : executed + budget_.chunk_trials;
  return std::min(cap_, target);
}

bool SequentialStopper::should_stop() const noexcept {
  if (trials_ >= cap_) return true;
  if (trials_ < min_) return false;
  return pooled_interval().halfwidth() <= budget_.ci_halfwidth;
}

FaultConfig spanning_probe(const FaultConfig& config) noexcept {
  FaultConfig probe = config;
  // kRecordCap53 · 2⁻⁵³ = 2⁻⁴ exactly, so thr53(rate) lands on the cap.
  probe.stuck_at_zero_rate =
      static_cast<double>(FaultModel::kRecordCap53) * 0x1.0p-53;
  probe.stuck_at_one_rate = 0.0;
  return probe;
}

double FaultModel::level_noise_amplification(int cell_bits) noexcept {
  double scale_sum = 0.0;  // Σ_p 4^{p·b} over the 8/b planes
  for (int p = 0; p < 8 / cell_bits; ++p) {
    scale_sum += std::pow(4.0, static_cast<double>(p * cell_bits));
  }
  return std::sqrt(mean_square_level(cell_bits) * scale_sum);
}

FaultModel::FaultModel(const FaultConfig& config) : config_(config) {
  config_.validate();
  planes_ = 8 / config_.cell_bits;
  level_mask_ = (1u << config_.cell_bits) - 1u;
  drift_factor_ =
      (config_.drift_time_s > 0.0 && config_.drift_nu > 0.0)
          ? std::pow(1.0 + config_.drift_time_s, -config_.drift_nu)
          : 1.0;
  read_sigma_weights_ =
      config_.read_sigma * level_noise_amplification(config_.cell_bits);

  // Fast-kernel precompute. Retention drift multiplies every level by a
  // constant != 1, defeating the "level provably unchanged" shortcut, so
  // drifted configs stay on the reference path.
  fast_eligible_ = drift_factor_ == 1.0;
  // uniform() returns k·2⁻⁵³ with k = uniform_bits53(); multiplying a rate
  // by 2⁵³ is exact (pure exponent shift), so k·2⁻⁵³ < rate ⟺ k < ceil(T).
  const auto thr53 = [](double rate) {
    return static_cast<std::uint64_t>(std::ceil(rate * 0x1.0p53));
  };
  stuck_zero_thr53_ = thr53(config_.stuck_at_zero_rate);
  // The sum is rounded in double first, exactly as perturb_weight compares.
  stuck_sum_thr53_ =
      thr53(config_.stuck_at_zero_rate + config_.stuck_at_one_rate);
  if (fast_eligible_ && config_.program_sigma > 0.0) {
    // Marsaglia polar: the accepted pair (u, v) with s = u²+v² yields
    // deviates u·m and v·m with m = sqrt(−2 ln s / s), so |N| ≤ sqrt(−2 ln s)
    // (since |u|,|v| ≤ √s). Level L survives lround(L·exp(σN)) == L whenever
    // |σN| < ln(1 + 1/(2L)) — the tighter of the two rounding boundaries —
    // giving the sufficient condition s > exp(−(ln(1+1/(2L))/σ)²/2).
    level_s_safe_.assign(level_mask_ + 1u, 1.0);  // level 0 draws no normal
    for (unsigned level = 1; level <= level_mask_; ++level) {
      // The 1−1e−9 shrink keeps the bound conservative against the ~1-ulp
      // rounding of this precompute chain: borderline cells take the exact
      // slow path instead of being (wrongly) skipped.
      const double bound = (1.0 - 1e-9) *
                           std::log1p(0.5 / static_cast<double>(level)) /
                           config_.program_sigma;
      level_s_safe_[level] = std::exp(-0.5 * bound * bound);
    }
  }
}

std::int8_t FaultModel::perturb_weight(std::int8_t weight, common::Rng& rng,
                                       FaultMapStats& stats) const {
  const int b = config_.cell_bits;
  const auto offset = static_cast<unsigned>(static_cast<int>(weight) + 128);
  unsigned out = 0;
  for (int p = 0; p < planes_; ++p, ++stats.physical_cells) {
    double level = static_cast<double>((offset >> (p * b)) & level_mask_);
    // Programming variation: lognormal on the stored conductance level
    // (HRS level 0 stays 0 — an off cell has nothing to vary).
    if (config_.program_sigma > 0.0 && level > 0.0) {
      level *= std::exp(rng.normal(0.0, config_.program_sigma));
    }
    level *= drift_factor_;  // deterministic retention decay
    auto quantized = static_cast<unsigned>(std::clamp(
        std::lround(level), 0l, static_cast<long>(level_mask_)));
    // Stuck-at faults override whatever was programmed. One uniform draw
    // per physical cell whenever either rate is nonzero keeps the map a
    // pure function of the RNG stream position.
    if (config_.stuck_at_zero_rate > 0.0 || config_.stuck_at_one_rate > 0.0) {
      const double u = rng.uniform();
      if (u < config_.stuck_at_zero_rate) {
        quantized = 0;
        ++stats.stuck_at_zero;
      } else if (u < config_.stuck_at_zero_rate + config_.stuck_at_one_rate) {
        quantized = level_mask_;
        ++stats.stuck_at_one;
      }
    }
    out |= (quantized & level_mask_) << (p * b);
  }
  const auto perturbed =
      static_cast<std::int8_t>(static_cast<int>(out) - 128);
  if (perturbed != weight) ++stats.weights_changed;
  return perturbed;
}

FaultMapStats FaultModel::apply(std::span<std::int8_t> cells,
                                std::int64_t rows, std::int64_t cols,
                                std::int64_t row_stride,
                                std::uint64_t crossbar_id) const {
  if (!fast_eligible_) {
    return apply_reference(cells, rows, cols, row_stride, crossbar_id);
  }
  FaultMapStats stats;
  if (ideal()) return stats;
  AUTOHET_CHECK(rows >= 0 && cols >= 0 && row_stride >= cols,
                "invalid fault-map geometry");
  common::Rng rng = common::Rng(config_.seed).child(crossbar_id);
  stats = apply_fast(cells, rows, cols, row_stride, rng);
  OBS_COUNTER_ADD("autohet_fault_cells_total",
                  static_cast<std::uint64_t>(stats.physical_cells));
  OBS_COUNTER_ADD("autohet_fault_stuck_cells_total",
                  static_cast<std::uint64_t>(stats.stuck_at_zero +
                                             stats.stuck_at_one));
  return stats;
}

FaultMapStats FaultModel::apply_reference(std::span<std::int8_t> cells,
                                          std::int64_t rows, std::int64_t cols,
                                          std::int64_t row_stride,
                                          std::uint64_t crossbar_id) const {
  FaultMapStats stats;
  if (ideal()) return stats;
  AUTOHET_CHECK(rows >= 0 && cols >= 0 && row_stride >= cols,
                "invalid fault-map geometry");
  common::Rng rng = common::Rng(config_.seed).child(crossbar_id);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int8_t* row = cells.data() + r * row_stride;
    for (std::int64_t c = 0; c < cols; ++c) {
      row[c] = perturb_weight(row[c], rng, stats);
    }
  }
  OBS_COUNTER_ADD("autohet_fault_cells_total",
                  static_cast<std::uint64_t>(stats.physical_cells));
  OBS_COUNTER_ADD("autohet_fault_stuck_cells_total",
                  static_cast<std::uint64_t>(stats.stuck_at_zero +
                                             stats.stuck_at_one));
  return stats;
}

FaultMapStats FaultModel::apply_fast(std::span<std::int8_t> cells,
                                     std::int64_t rows, std::int64_t cols,
                                     std::int64_t row_stride,
                                     common::Rng& rng) const {
  switch (planes_) {
    case 8:
      return apply_fast_impl<8, false>(cells, rows, cols, row_stride, rng,
                                       nullptr);
    case 4:
      return apply_fast_impl<4, false>(cells, rows, cols, row_stride, rng,
                                       nullptr);
    case 2:
      return apply_fast_impl<2, false>(cells, rows, cols, row_stride, rng,
                                       nullptr);
    default:
      return apply_fast_impl<1, false>(cells, rows, cols, row_stride, rng,
                                       nullptr);
  }
}

FaultMapStats FaultModel::apply_recording(
    std::span<std::int8_t> cells, std::int64_t rows, std::int64_t cols,
    std::int64_t row_stride, std::uint64_t crossbar_id,
    std::vector<StuckCandidate>& out) const {
  AUTOHET_CHECK(record_eligible(),
                "this fault config cannot be recorded (drift, zero stuck "
                "rates, or rates beyond the recording cap)");
  AUTOHET_CHECK(rows >= 0 && cols >= 0 && row_stride >= cols,
                "invalid fault-map geometry");
  AUTOHET_CHECK(rows * cols * planes_ <= 0xffffffffll,
                "crossbar too large for 32-bit plane indices");
  common::Rng rng = common::Rng(config_.seed).child(crossbar_id);
  switch (planes_) {
    case 8:
      return apply_fast_impl<8, true>(cells, rows, cols, row_stride, rng,
                                      &out);
    case 4:
      return apply_fast_impl<4, true>(cells, rows, cols, row_stride, rng,
                                      &out);
    case 2:
      return apply_fast_impl<2, true>(cells, rows, cols, row_stride, rng,
                                      &out);
    default:
      return apply_fast_impl<1, true>(cells, rows, cols, row_stride, rng,
                                      &out);
  }
}

FaultMapStats FaultModel::replay_stuck(
    std::span<std::int8_t> cells, std::int64_t cols, std::int64_t row_stride,
    std::span<const StuckCandidate> hits) const {
  FaultMapStats delta;
  const int b = config_.cell_bits;
  const auto planes = static_cast<std::uint32_t>(planes_);
  std::size_t i = 0;
  while (i < hits.size()) {
    // Candidates are in stream order, so same-cell hits are adjacent: patch
    // the byte once per touched cell and correct weights_changed exactly
    // (the recording counted post-variation vs original).
    const std::uint32_t cell = hits[i].plane / planes;
    const std::int8_t original = hits[i].original;
    const std::int64_t r = cell / cols;
    const std::int64_t c = cell % cols;
    std::int8_t& byte = cells[static_cast<std::size_t>(r * row_stride + c)];
    const std::int8_t post_var = byte;
    auto offset = static_cast<unsigned>(static_cast<int>(byte) + 128);
    bool touched = false;
    for (; i < hits.size() && hits[i].plane / planes == cell; ++i) {
      const std::uint64_t k = hits[i].k;
      if (k >= stuck_sum_thr53_) continue;
      const auto p = static_cast<int>(hits[i].plane % planes);
      unsigned forced;
      if (k < stuck_zero_thr53_) {
        forced = 0;
        ++delta.stuck_at_zero;
      } else {
        forced = level_mask_;
        ++delta.stuck_at_one;
      }
      offset = (offset & ~(level_mask_ << (p * b))) | (forced << (p * b));
      touched = true;
    }
    if (touched) {
      const auto final_w =
          static_cast<std::int8_t>(static_cast<int>(offset) - 128);
      byte = final_w;
      delta.weights_changed +=
          static_cast<int>(final_w != original) -
          static_cast<int>(post_var != original);
    }
  }
  return delta;
}

template <int kPlanes, bool kRecord>
FaultMapStats FaultModel::apply_fast_impl(
    std::span<std::int8_t> cells, std::int64_t rows, std::int64_t cols,
    std::int64_t row_stride, common::Rng& rng,
    std::vector<StuckCandidate>* rec) const {
  // Burn-in dominates Monte-Carlo robustness wall time (it touches every
  // physical cell of every trial fabric), so this kernel strips the per-cell
  // cost to raw RNG stream advancement wherever the result provably cannot
  // change. It replicates perturb_weight's stream consumption draw for draw:
  //   * the lognormal variation draws one polar-method normal per nonzero
  //     level — here the rejection loop runs identically, but the sqrt/log/
  //     exp/lround are skipped whenever s > level_s_safe_[L] proves the
  //     rounded level is unchanged (the overwhelmingly common case at
  //     realistic σ). The polar pair cache lives in locals: legal because
  //     this rng is crossbar-local and discarded when apply() returns.
  //   * the stuck-at uniform compares raw 53-bit draws against precomputed
  //     integer thresholds instead of materializing doubles.
  const int b = 8 / kPlanes;
  constexpr int planes = kPlanes;
  const unsigned mask = level_mask_;
  const double sigma = config_.program_sigma;
  const bool variation = sigma > 0.0;
  const bool stuck =
      config_.stuck_at_zero_rate > 0.0 || config_.stuck_at_one_rate > 0.0;
  // A zero weight encodes as offset 128 = top_level in the top plane alone
  // (for every cell_bits dividing 8), so its draw pattern is fixed.
  const unsigned top_level = 1u << (b - 1);
  const int top_shift = (planes - 1) * b;
  const double s_safe_top = variation ? level_s_safe_[top_level] : 1.0;
  FaultMapStats stats;
  stats.physical_cells = rows * cols * planes;
  // Polar pair cache (mirrors Rng::normal's cached second deviate, with the
  // value deferred: only s and the pair are kept until someone needs it).
  bool has_pending = false;
  double pu = 0.0, pv = 0.0, ps = 0.0;
  // Recording locals: flat plane-index base and original weight of the cell
  // currently being processed (unused when !kRecord).
  std::uint64_t rec_base = 0;
  std::int8_t rec_orig = 0;
  // uniform(-1, 1) = -1 + 2·(k·2⁻⁵³) with k = uniform_bits53(). The doubling
  // and the subtraction are both exact (k·2⁻⁵² and k·2⁻⁵² − 1 each fit in 53
  // significant bits since |k − 2⁵²| ≤ 2⁵²), so the single convert+multiply
  // below is bit-identical with a shorter dependency chain in the rejection
  // loop.
  const auto unit_draw = [&rng]() {
    return static_cast<double>(static_cast<std::int64_t>(rng.uniform_bits53()) -
                               (std::int64_t{1} << 52)) *
           0x1.0p-52;
  };
  const auto next_normal_su = [&](double& s, double& uv) {
    if (has_pending) {
      has_pending = false;
      s = ps;
      uv = pv;  // second deviate of the pair, as Rng::normal caches
    } else {
      do {
        pu = unit_draw();
        pv = unit_draw();
        ps = pu * pu + pv * pv;
      } while (ps >= 1.0 || ps == 0.0);
      has_pending = true;
      s = ps;
      uv = pu;
    }
  };
  // Rare: the deviate is large enough to possibly move the level.
  const auto requantize = [&](unsigned level, double s, double uv) {
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    const double noisy =
        static_cast<double>(level) * std::exp(sigma * (uv * m));
    return static_cast<unsigned>(
        std::clamp(std::lround(noisy), 0l, static_cast<long>(mask)));
  };
  const auto stuck_override = [&](unsigned& quantized, int p) {
    const std::uint64_t k = rng.uniform_bits53();
    if constexpr (kRecord) {
      (void)quantized;
      if (k < kRecordCap53) [[unlikely]] {
        rec->push_back(
            {k,
             static_cast<std::uint32_t>(rec_base +
                                        static_cast<std::uint64_t>(p)),
             rec_orig});
      }
    } else {
      (void)p;
      if (k < stuck_sum_thr53_) {
        if (k < stuck_zero_thr53_) {
          quantized = 0;
          ++stats.stuck_at_zero;
        } else {
          quantized = mask;
          ++stats.stuck_at_one;
        }
      }
    }
  };
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int8_t* row = cells.data() + r * row_stride;
    for (std::int64_t c = 0; c < cols; ++c) {
      const std::int8_t weight = row[c];
      if (weight == 0) {
        // Zero weight — the vast majority of a sparsely used physical array
        // (stuck-at maps cover every cell, used or not). Its plane pattern
        // is known up front, so the per-plane `level > 0` test that costs
        // the generic path a mispredict per plane disappears: the lower
        // planes collapse to a straight run of stuck draws and only the top
        // plane draws variation. Stream consumption is identical.
        unsigned out = 0;
        if constexpr (kRecord) {
          rec_base =
              static_cast<std::uint64_t>(r * cols + c) * planes;
          rec_orig = 0;
        }
        if (stuck) {
          for (int p = 0; p < planes - 1; ++p) {
            const std::uint64_t k = rng.uniform_bits53();
            if constexpr (kRecord) {
              if (k < kRecordCap53) [[unlikely]] {
                rec->push_back(
                    {k,
                     static_cast<std::uint32_t>(
                         rec_base + static_cast<std::uint64_t>(p)),
                     rec_orig});
              }
            } else if (k < stuck_sum_thr53_) [[unlikely]] {
              if (k < stuck_zero_thr53_) {
                ++stats.stuck_at_zero;  // level was already 0
              } else {
                out |= mask << (p * b);
                ++stats.stuck_at_one;
              }
            }
          }
        }
        unsigned quantized = top_level;
        if (variation) {
          double s, uv;
          next_normal_su(s, uv);
          if (s <= s_safe_top) [[unlikely]] {
            quantized = requantize(top_level, s, uv);
          }
        }
        if (stuck) stuck_override(quantized, planes - 1);
        out |= (quantized & mask) << top_shift;
        const auto perturbed =
            static_cast<std::int8_t>(static_cast<int>(out) - 128);
        if (perturbed != 0) ++stats.weights_changed;
        row[c] = perturbed;
        continue;
      }
      const auto offset = static_cast<unsigned>(static_cast<int>(weight) + 128);
      if constexpr (kRecord) {
        rec_base = static_cast<std::uint64_t>(r * cols + c) * planes;
        rec_orig = weight;
      }
      // Branchless mask of planes holding a nonzero level. Iterating its set
      // bits (below) replaces `planes` unpredictable per-plane `level > 0`
      // branches — the dominant cost on random weights, where each plane
      // mispredicts half the time — with one loop whose trip count is the
      // set-plane count.
      unsigned plane_mask = 0;
      for (int p = 0; p < planes; ++p) {
        plane_mask |= ((offset >> (p * b)) & mask) ? 1u << p : 0u;
      }
      if (!variation) plane_mask = 0;  // no draws → every plane is stuck-only
      unsigned out = offset;
      // Planes outside the draw mask keep their stored level unless a stuck
      // draw hits (rare), so the run loops touch `out` only on a hit.
      const auto stuck_run = [&](int from, int to) {
        for (int rp = from; rp < to; ++rp) {
          const std::uint64_t k = rng.uniform_bits53();
          if constexpr (kRecord) {
            if (k < kRecordCap53) [[unlikely]] {
              rec->push_back(
                  {k,
                   static_cast<std::uint32_t>(
                       rec_base + static_cast<std::uint64_t>(rp)),
                   rec_orig});
            }
          } else if (k < stuck_sum_thr53_) [[unlikely]] {
            unsigned forced;
            if (k < stuck_zero_thr53_) {
              forced = 0;
              ++stats.stuck_at_zero;
            } else {
              forced = mask;
              ++stats.stuck_at_one;
            }
            out = (out & ~(mask << (rp * b))) | (forced << (rp * b));
          }
        }
      };
      int p = 0;
      unsigned pending_planes = plane_mask;
      while (pending_planes) {
        const int q = std::countr_zero(pending_planes);
        pending_planes &= pending_planes - 1;
        if (stuck) stuck_run(p, q);
        const unsigned level = (offset >> (q * b)) & mask;
        unsigned quantized = level;
        double s, uv;
        next_normal_su(s, uv);
        if (s <= level_s_safe_[level]) {
          quantized = requantize(level, s, uv);
        }
        if (stuck) stuck_override(quantized, q);
        out = (out & ~(mask << (q * b))) | (quantized << (q * b));
        p = q + 1;
      }
      if (stuck) stuck_run(p, planes);
      const auto perturbed =
          static_cast<std::int8_t>(static_cast<int>(out) - 128);
      if (perturbed != weight) ++stats.weights_changed;
      row[c] = perturbed;
    }
  }
  return stats;
}

double analytic_layer_vulnerability(const mapping::LayerMapping& m,
                                    const FaultConfig& faults) {
  if (faults.ideal()) return 0.0;
  faults.validate();
  const double drift_loss =
      (faults.drift_time_s > 0.0 && faults.drift_nu > 0.0)
          ? 1.0 - std::pow(1.0 + faults.drift_time_s, -faults.drift_nu)
          : 0.0;
  const double per_level_variance =
      faults.stuck_at_zero_rate + faults.stuck_at_one_rate +
      faults.program_sigma * faults.program_sigma +
      faults.read_sigma * faults.read_sigma + drift_loss * drift_loss;
  const double cell_error =
      std::sqrt(per_level_variance) *
      FaultModel::level_noise_amplification(faults.cell_bits) / 127.0;
  const double blocks = static_cast<double>(std::max<std::int64_t>(
      m.row_blocks, 1));
  return std::min(1.0, cell_error * std::sqrt(blocks));
}

double aggregate_network_vulnerability(const std::vector<double>& layer_vuln) {
  if (layer_vuln.empty()) return 0.0;
  double sum_sq = 0.0;
  for (const double v : layer_vuln) sum_sq += v * v;
  return std::min(1.0,
                  std::sqrt(sum_sq / static_cast<double>(layer_vuln.size())));
}

double analytic_network_vulnerability(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const FaultConfig& faults) {
  AUTOHET_CHECK(layers.size() == shapes.size(),
                "layers and shapes must be the same length");
  std::vector<double> vuln;
  vuln.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    vuln.push_back(analytic_layer_vulnerability(
        mapping::map_layer(layers[i], shapes[i]), faults));
  }
  return aggregate_network_vulnerability(vuln);
}

}  // namespace autohet::reram
