#include "reram/faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace autohet::reram {

namespace {
/// E[v²] for v uniform over {0, …, 2^b − 1}: (2^b−1)(2^{b+1}−1)/6.
double mean_square_level(int bits) noexcept {
  const double top = static_cast<double>((1 << bits) - 1);
  return top * (2.0 * top + 1.0) / 6.0;
}
}  // namespace

FaultConfig FaultConfig::for_trial(std::uint64_t trial) const noexcept {
  FaultConfig out = *this;
  // SplitMix the trial index into an independent seed stream.
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
  out.seed = common::splitmix64(sm);
  return out;
}

void FaultConfig::validate() const {
  AUTOHET_CHECK(stuck_at_zero_rate >= 0.0 && stuck_at_zero_rate <= 1.0 &&
                    stuck_at_one_rate >= 0.0 && stuck_at_one_rate <= 1.0 &&
                    stuck_at_zero_rate + stuck_at_one_rate <= 1.0,
                "stuck-at rates must be probabilities summing to <= 1");
  AUTOHET_CHECK(program_sigma >= 0.0 && read_sigma >= 0.0,
                "variation sigmas must be non-negative");
  AUTOHET_CHECK(drift_time_s >= 0.0 && drift_nu >= 0.0,
                "drift parameters must be non-negative");
  AUTOHET_CHECK(cell_bits > 0 && cell_bits <= 8 && 8 % cell_bits == 0,
                "cell_bits must divide 8");
}

double FaultModel::level_noise_amplification(int cell_bits) noexcept {
  double scale_sum = 0.0;  // Σ_p 4^{p·b} over the 8/b planes
  for (int p = 0; p < 8 / cell_bits; ++p) {
    scale_sum += std::pow(4.0, static_cast<double>(p * cell_bits));
  }
  return std::sqrt(mean_square_level(cell_bits) * scale_sum);
}

FaultModel::FaultModel(const FaultConfig& config) : config_(config) {
  config_.validate();
  planes_ = 8 / config_.cell_bits;
  level_mask_ = (1u << config_.cell_bits) - 1u;
  drift_factor_ =
      (config_.drift_time_s > 0.0 && config_.drift_nu > 0.0)
          ? std::pow(1.0 + config_.drift_time_s, -config_.drift_nu)
          : 1.0;
  read_sigma_weights_ =
      config_.read_sigma * level_noise_amplification(config_.cell_bits);
}

std::int8_t FaultModel::perturb_weight(std::int8_t weight, common::Rng& rng,
                                       FaultMapStats& stats) const {
  const int b = config_.cell_bits;
  const auto offset = static_cast<unsigned>(static_cast<int>(weight) + 128);
  unsigned out = 0;
  for (int p = 0; p < planes_; ++p, ++stats.physical_cells) {
    double level = static_cast<double>((offset >> (p * b)) & level_mask_);
    // Programming variation: lognormal on the stored conductance level
    // (HRS level 0 stays 0 — an off cell has nothing to vary).
    if (config_.program_sigma > 0.0 && level > 0.0) {
      level *= std::exp(rng.normal(0.0, config_.program_sigma));
    }
    level *= drift_factor_;  // deterministic retention decay
    auto quantized = static_cast<unsigned>(std::clamp(
        std::lround(level), 0l, static_cast<long>(level_mask_)));
    // Stuck-at faults override whatever was programmed. One uniform draw
    // per physical cell whenever either rate is nonzero keeps the map a
    // pure function of the RNG stream position.
    if (config_.stuck_at_zero_rate > 0.0 || config_.stuck_at_one_rate > 0.0) {
      const double u = rng.uniform();
      if (u < config_.stuck_at_zero_rate) {
        quantized = 0;
        ++stats.stuck_at_zero;
      } else if (u < config_.stuck_at_zero_rate + config_.stuck_at_one_rate) {
        quantized = level_mask_;
        ++stats.stuck_at_one;
      }
    }
    out |= (quantized & level_mask_) << (p * b);
  }
  const auto perturbed =
      static_cast<std::int8_t>(static_cast<int>(out) - 128);
  if (perturbed != weight) ++stats.weights_changed;
  return perturbed;
}

FaultMapStats FaultModel::apply(std::span<std::int8_t> cells,
                                std::int64_t rows, std::int64_t cols,
                                std::int64_t row_stride,
                                std::uint64_t crossbar_id) const {
  FaultMapStats stats;
  if (ideal()) return stats;
  AUTOHET_CHECK(rows >= 0 && cols >= 0 && row_stride >= cols,
                "invalid fault-map geometry");
  common::Rng rng = common::Rng(config_.seed).child(crossbar_id);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int8_t* row = cells.data() + r * row_stride;
    for (std::int64_t c = 0; c < cols; ++c) {
      row[c] = perturb_weight(row[c], rng, stats);
    }
  }
  OBS_COUNTER_ADD("autohet_fault_cells_total",
                  static_cast<std::uint64_t>(stats.physical_cells));
  OBS_COUNTER_ADD("autohet_fault_stuck_cells_total",
                  static_cast<std::uint64_t>(stats.stuck_at_zero +
                                             stats.stuck_at_one));
  return stats;
}

double analytic_layer_vulnerability(const mapping::LayerMapping& m,
                                    const FaultConfig& faults) {
  if (faults.ideal()) return 0.0;
  faults.validate();
  const double drift_loss =
      (faults.drift_time_s > 0.0 && faults.drift_nu > 0.0)
          ? 1.0 - std::pow(1.0 + faults.drift_time_s, -faults.drift_nu)
          : 0.0;
  const double per_level_variance =
      faults.stuck_at_zero_rate + faults.stuck_at_one_rate +
      faults.program_sigma * faults.program_sigma +
      faults.read_sigma * faults.read_sigma + drift_loss * drift_loss;
  const double cell_error =
      std::sqrt(per_level_variance) *
      FaultModel::level_noise_amplification(faults.cell_bits) / 127.0;
  const double blocks = static_cast<double>(std::max<std::int64_t>(
      m.row_blocks, 1));
  return std::min(1.0, cell_error * std::sqrt(blocks));
}

double aggregate_network_vulnerability(const std::vector<double>& layer_vuln) {
  if (layer_vuln.empty()) return 0.0;
  double sum_sq = 0.0;
  for (const double v : layer_vuln) sum_sq += v * v;
  return std::min(1.0,
                  std::sqrt(sum_sq / static_cast<double>(layer_vuln.size())));
}

double analytic_network_vulnerability(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const FaultConfig& faults) {
  AUTOHET_CHECK(layers.size() == shapes.size(),
                "layers and shapes must be the same length");
  std::vector<double> vuln;
  vuln.reserve(layers.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    vuln.push_back(analytic_layer_vulnerability(
        mapping::map_layer(layers[i], shapes[i]), faults));
  }
  return aggregate_network_vulnerability(vuln);
}

}  // namespace autohet::reram
