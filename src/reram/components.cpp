#include "reram/components.hpp"

#include <cmath>

#include "common/error.hpp"

namespace autohet::reram {

namespace {
// Linear/quadratic technology scaling relative to the 32 nm reference node.
double scale1(double feature_nm) { return feature_nm / 32.0; }
double scale2(double feature_nm) {
  return (feature_nm / 32.0) * (feature_nm / 32.0);
}
}  // namespace

AdcModel::AdcModel(int resolution_bits, double feature_nm)
    : bits_(resolution_bits), feature_nm_(feature_nm) {
  AUTOHET_CHECK(resolution_bits >= 1 && resolution_bits <= 16,
                "ADC resolution must be in [1, 16]");
  AUTOHET_CHECK(feature_nm > 0.0, "feature size must be positive");
}

double AdcModel::energy_pj() const noexcept {
  // Capacitive-DAC switching energy doubles per resolution bit; calibrated
  // to 3.1 pJ at 10 bits / 32 nm (the DeviceParams default).
  return 0.00302734375 * std::pow(2.0, bits_) * scale1(feature_nm_);
}

double AdcModel::area_um2() const noexcept {
  // Capacitor array dominates: ~2^bits unit caps plus fixed comparator/SAR
  // logic; 1500 um^2 at 10 bits / 32 nm.
  return (40.0 * std::pow(2.0, bits_ - 5) + 220.0) * scale2(feature_nm_);
}

double AdcModel::latency_ns() const noexcept {
  // One comparator decision per bit at ~1 GHz.
  return 1.0 * static_cast<double>(bits_);
}

DacModel::DacModel(int resolution_bits, double feature_nm)
    : bits_(resolution_bits), feature_nm_(feature_nm) {
  AUTOHET_CHECK(resolution_bits >= 1 && resolution_bits <= 8,
                "DAC resolution must be in [1, 8]");
  AUTOHET_CHECK(feature_nm > 0.0, "feature size must be positive");
}

double DacModel::energy_pj() const noexcept {
  // 0.002 pJ for the paper's 1-bit wordline driver.
  return 0.002 * std::pow(2.0, bits_ - 1) * scale1(feature_nm_);
}

double DacModel::area_um2() const noexcept {
  return 0.17 * static_cast<double>(bits_) * scale2(feature_nm_);
}

CrossbarModel::CrossbarModel(mapping::CrossbarShape shape, double feature_nm)
    : shape_(shape), feature_nm_(feature_nm) {
  AUTOHET_CHECK(shape.rows > 0 && shape.cols > 0, "invalid crossbar shape");
  AUTOHET_CHECK(feature_nm > 0.0, "feature size must be positive");
}

double CrossbarModel::cell_area_um2() const noexcept {
  // 4F^2-class memristor footprint; 0.0025 um^2 at 32 nm.
  return 0.0025 * scale2(feature_nm_);
}

double CrossbarModel::cell_read_energy_pj() const noexcept {
  return 0.0002 * scale1(feature_nm_);
}

double CrossbarModel::read_cycle_ns() const noexcept {
  // Charge/settle plus wordline RC that grows with the number of rows the
  // driver sees.
  return 100.0 +
         0.05 * scale1(feature_nm_) * static_cast<double>(shape_.rows);
}

double CrossbarModel::array_area_um2() const noexcept {
  return cell_area_um2() * static_cast<double>(shape_.cells());
}

SramBufferModel::SramBufferModel(std::int64_t capacity_bytes,
                                 double feature_nm)
    : capacity_(capacity_bytes), feature_nm_(feature_nm) {
  AUTOHET_CHECK(capacity_bytes > 0, "buffer capacity must be positive");
  AUTOHET_CHECK(feature_nm > 0.0, "feature size must be positive");
}

double SramBufferModel::access_energy_pj_per_byte() const noexcept {
  return 0.02 * scale1(feature_nm_);
}

double SramBufferModel::area_um2() const noexcept {
  // 0.55 um^2/byte cell array plus fixed decode/sense overhead; 5000 um^2
  // for the default 8 KiB tile buffer at 32 nm.
  return (0.55 * static_cast<double>(capacity_) + 494.4) * scale2(feature_nm_);
}

DeviceParams derive_device_params(const ComponentConfig& config) {
  const AdcModel adc(config.adc_resolution_bits, config.feature_nm);
  const DacModel dac(config.dac_bits, config.feature_nm);
  // The per-row wire coefficient is shape-independent; evaluate the RC
  // model at two row counts to extract it.
  const CrossbarModel xb_small({32, 32}, config.feature_nm);
  const CrossbarModel xb_large({544, 32}, config.feature_nm);
  const double wire_per_row =
      (xb_large.read_cycle_ns() - xb_small.read_cycle_ns()) / (544.0 - 32.0);
  const double base_cycle =
      xb_small.read_cycle_ns() - wire_per_row * 32.0;
  const SramBufferModel buffer(config.tile_buffer_bytes, config.feature_nm);

  DeviceParams params;
  params.weight_bits = config.weight_bits;
  params.input_bits = config.input_bits;
  params.cell_bits = config.cell_bits;
  params.dac_bits = config.dac_bits;
  params.adc_resolution_bits = config.adc_resolution_bits;

  params.adc_energy_pj = adc.energy_pj();
  params.dac_energy_pj = dac.energy_pj();
  params.cell_read_energy_pj = xb_small.cell_read_energy_pj();
  params.buffer_rw_energy_pj = buffer.access_energy_pj_per_byte();

  params.adc_area_um2 = adc.area_um2();
  params.dac_area_um2 = dac.area_um2();
  params.cell_area_um2 = xb_small.cell_area_um2();
  // Tile overhead: input + output buffers plus fixed control/pooling logic.
  params.tile_overhead_area_um2 = 2.0 * buffer.area_um2() + 5000.0;

  params.base_cycle_ns = base_cycle;
  params.wire_delay_ns_per_row = wire_per_row;
  params.adc_latency_ns = adc.latency_ns();

  params.validate();
  return params;
}

}  // namespace autohet::reram
