#include "reram/controller.hpp"

#include <map>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace autohet::reram {

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kConfigureTile:
      return "CONFIGURE_TILE";
    case Opcode::kProgramWeights:
      return "PROGRAM_WEIGHTS";
    case Opcode::kLoadInput:
      return "LOAD_INPUT";
    case Opcode::kExecuteLayer:
      return "EXECUTE_LAYER";
    case Opcode::kMergeOutputs:
      return "MERGE_OUTPUTS";
    case Opcode::kStoreOutput:
      return "STORE_OUTPUT";
    case Opcode::kBarrier:
      return "BARRIER";
  }
  return "UNKNOWN";
}

std::string Instruction::to_string() const {
  std::ostringstream oss;
  oss << opcode_name(op) << ' ' << a << ' ' << b << ' ' << c;
  return oss.str();
}

std::vector<Instruction> compile_program(
    const std::vector<nn::LayerSpec>& layers,
    const mapping::AllocationResult& allocation) {
  AUTOHET_CHECK(layers.size() == allocation.layers.size(),
                "layer list does not match allocation");
  std::vector<Instruction> program;

  // Tiles hosting each layer, discovered from occupant bookkeeping.
  std::map<std::int64_t, std::vector<std::int64_t>> tiles_of_layer;

  // Phase 1: configure occupied tiles and program every occupant layer.
  for (const auto& tile : allocation.tiles) {
    if (tile.released) continue;
    program.push_back({Opcode::kConfigureTile, tile.id, tile.shape.rows,
                       tile.shape.cols});
    AUTOHET_CHECK(tile.layer_ids.size() == tile.layer_xbs.size(),
                  "tile occupant bookkeeping is inconsistent");
    for (std::size_t i = 0; i < tile.layer_ids.size(); ++i) {
      program.push_back({Opcode::kProgramWeights, tile.id, tile.layer_ids[i],
                         tile.layer_xbs[i]});
      tiles_of_layer[tile.layer_ids[i]].push_back(tile.id);
    }
  }
  program.push_back({Opcode::kBarrier, 0, 0, 0});

  // Phase 2: layer-ordered inference schedule.
  for (std::size_t k = 0; k < layers.size(); ++k) {
    const auto layer_id = static_cast<std::int64_t>(k);
    const auto host_tiles = tiles_of_layer.find(layer_id);
    AUTOHET_CHECK(host_tiles != tiles_of_layer.end(),
                  "layer " + std::to_string(k) + " has no hosting tile");
    program.push_back(
        {Opcode::kLoadInput, layer_id, layers[k].weight_rows(), 0});
    for (std::int64_t tile : host_tiles->second) {
      program.push_back(
          {Opcode::kExecuteLayer, tile, layer_id, layers[k].mvm_count()});
    }
    program.push_back(
        {Opcode::kMergeOutputs, layer_id,
         static_cast<std::int64_t>(host_tiles->second.size()), 0});
    program.push_back(
        {Opcode::kStoreOutput, layer_id, layers[k].out_channels, 0});
    program.push_back({Opcode::kBarrier, 0, 0, 0});
  }
  return program;
}

ExecutionStats execute_program(const std::vector<Instruction>& program) {
  ExecutionStats stats;
  std::map<std::int64_t, std::pair<std::int64_t, std::int64_t>> configured;
  std::set<std::pair<std::int64_t, std::int64_t>> programmed;  // (tile,layer)
  std::set<std::int64_t> loaded;
  std::map<std::int64_t, std::int64_t> executed_on;  // layer -> tile count
  std::set<std::int64_t> merged;

  for (const auto& inst : program) {
    ++stats.instructions;
    switch (inst.op) {
      case Opcode::kConfigureTile:
        AUTOHET_CHECK(!configured.contains(inst.a),
                      "tile " + std::to_string(inst.a) +
                          " configured twice");
        AUTOHET_CHECK(inst.b > 0 && inst.c > 0,
                      "tile geometry must be positive");
        configured[inst.a] = {inst.b, inst.c};
        ++stats.tiles_configured;
        break;
      case Opcode::kProgramWeights:
        AUTOHET_CHECK(configured.contains(inst.a),
                      "programming unconfigured tile " +
                          std::to_string(inst.a));
        AUTOHET_CHECK(programmed.insert({inst.a, inst.b}).second,
                      "layer " + std::to_string(inst.b) +
                          " programmed twice on tile " +
                          std::to_string(inst.a));
        break;
      case Opcode::kLoadInput:
        loaded.insert(inst.a);
        stats.input_bytes += inst.b;
        break;
      case Opcode::kExecuteLayer:
        AUTOHET_CHECK(configured.contains(inst.a),
                      "executing on unconfigured tile " +
                          std::to_string(inst.a));
        AUTOHET_CHECK(programmed.contains({inst.a, inst.b}),
                      "executing unprogrammed layer " +
                          std::to_string(inst.b) + " on tile " +
                          std::to_string(inst.a));
        AUTOHET_CHECK(loaded.contains(inst.b),
                      "executing layer " + std::to_string(inst.b) +
                          " before its input is loaded");
        ++executed_on[inst.b];
        stats.mvms_issued += inst.c;
        break;
      case Opcode::kMergeOutputs:
        AUTOHET_CHECK(executed_on[inst.a] >= 1,
                      "merging layer " + std::to_string(inst.a) +
                          " before execution");
        AUTOHET_CHECK(executed_on[inst.a] == inst.b,
                      "merge fan-in mismatch for layer " +
                          std::to_string(inst.a));
        merged.insert(inst.a);
        ++stats.merges;
        break;
      case Opcode::kStoreOutput:
        AUTOHET_CHECK(merged.contains(inst.a),
                      "storing layer " + std::to_string(inst.a) +
                          " before merge");
        stats.output_bytes += inst.b;
        break;
      case Opcode::kBarrier:
        ++stats.barriers;
        break;
    }
  }
  stats.layers_executed = static_cast<std::int64_t>(merged.size());
  return stats;
}

}  // namespace autohet::reram
