// Layer-pipelined throughput model.
//
// ReRAM accelerators process a stream of inferences with one pipeline stage
// per layer (PipeLayer-style): stage k works on image i while stage k+1
// works on image i-1. The initiation interval of a stage is the layer's
// serial MVM latency divided by its replication factor (duplicating a
// layer's weights across additional tiles lets it serve multiple output
// positions concurrently — the standard ISAAC/MNSIM balancing lever).
//
// balance_replication() greedily duplicates the bottleneck stage until an
// extra-tile budget is exhausted, the classic throughput/area trade.
#pragma once

#include <cstdint>
#include <vector>

#include "mapping/crossbar_shape.hpp"
#include "mapping/plan.hpp"
#include "nn/layer.hpp"
#include "reram/hardware_model.hpp"

namespace autohet::reram {

struct StageReport {
  std::int64_t layer = 0;
  double serial_latency_ns = 0.0;   ///< full layer latency, one copy
  std::int64_t replication = 1;     ///< weight copies of this layer
  double interval_ns = 0.0;         ///< serial latency / replication
  std::int64_t extra_tiles = 0;     ///< tiles added by replication
};

struct PipelineReport {
  std::vector<StageReport> stages;
  double bottleneck_interval_ns = 0.0;
  double throughput_inferences_per_s = 0.0;
  double fill_latency_ns = 0.0;  ///< first-inference end-to-end latency
  std::int64_t total_extra_tiles = 0;
};

/// Evaluates the pipeline of a compiled plan with the given per-layer
/// replication factors (empty = all ones). Stage latencies and tile costs
/// are read off the plan; no mapping is re-derived here.
PipelineReport evaluate_pipeline(
    const plan::DeploymentPlan& plan,
    const std::vector<std::int64_t>& replication = {});

/// Convenience wrapper: compiles `(layers, shapes, config)` into a plan
/// and evaluates it. Bit-identical to the plan overload.
PipelineReport evaluate_pipeline(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config,
    const std::vector<std::int64_t>& replication = {});

/// Greedy throughput balancing: repeatedly duplicates the current
/// bottleneck layer while its tile cost fits in `extra_tile_budget`.
/// Returns the chosen replication factors.
std::vector<std::int64_t> balance_replication(const plan::DeploymentPlan& plan,
                                              std::int64_t extra_tile_budget);

/// Convenience wrapper over a freshly compiled plan.
std::vector<std::int64_t> balance_replication(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config, std::int64_t extra_tile_budget);

}  // namespace autohet::reram
