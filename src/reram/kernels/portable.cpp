// Portable kernel variant: plain C++ word loops under the project's
// baseline compiler flags. Always compiled in; the dispatch fallback, the
// AUTOHET_KERNEL=portable CI baseline, and the denominator of the bench's
// packed-vs-portable throughput ratio.
#include <bit>
#include <cstdint>

#include "reram/kernels/kernels.hpp"

#include "reram/kernels/kernel_ops.inl"

namespace autohet::reram::kernels {
namespace {

struct PortableCore {
  static std::int64_t and_popcount(const std::uint64_t* x,
                                   const std::uint64_t* p,
                                   std::int64_t words) {
    std::int64_t n = 0;
    for (std::int64_t w = 0; w < words; ++w) n += std::popcount(x[w] & p[w]);
    return n;
  }
  static std::int64_t weighted_and_popcount(const std::uint64_t* x8,
                                            const std::uint64_t* p,
                                            std::int64_t words) {
    std::int64_t n = 0;
    for (int xb = 0; xb < 8; ++xb) {
      const std::uint64_t* x = x8 + xb * words;
      std::int64_t c = 0;
      for (std::int64_t w = 0; w < words; ++w) {
        c += std::popcount(x[w] & p[w]);
      }
      n += c << xb;
    }
    return n;
  }
  static std::int64_t popcount(const std::uint64_t* x, std::int64_t words) {
    std::int64_t n = 0;
    for (std::int64_t w = 0; w < words; ++w) n += std::popcount(x[w]);
    return n;
  }
  static void madd(std::int32_t* acc, const std::uint8_t* xs, std::int32_t w,
                   std::int64_t count) {
    for (std::int64_t s = 0; s < count; ++s) {
      acc[s] += w * static_cast<std::int32_t>(xs[s]);
    }
  }
};

void bit_serial_mvm(const std::uint64_t* planes, std::int64_t plane_cols,
                    std::int64_t col_words, std::int64_t cols,
                    std::int64_t words, const std::uint64_t* xbits,
                    std::int64_t count, std::int32_t* acc_t) {
  detail::bit_serial_mvm_impl<PortableCore>(planes, plane_cols, col_words,
                                            cols, words, xbits, count, acc_t);
}

void multilevel_mvm(const std::uint64_t* planes, std::int64_t plane_cols,
                    std::int64_t col_words, std::int64_t cols,
                    std::int64_t words, const std::uint64_t* xbits,
                    std::int64_t count, const std::int64_t* popx,
                    const std::int64_t* refs, std::int32_t* acc_t) {
  detail::multilevel_mvm_impl<PortableCore>(planes, plane_cols, col_words,
                                            cols, words, xbits, count, popx,
                                            refs, acc_t);
}

void reference_batch(const std::int8_t* cells, std::int64_t row_stride,
                     std::int64_t rows, std::int64_t cols,
                     const std::uint8_t* inputs_t, std::int64_t count,
                     std::int32_t* acc_t) {
  detail::reference_batch_impl<PortableCore>(cells, row_stride, rows, cols,
                                             inputs_t, count, acc_t);
}

std::int64_t popcount_words(const std::uint64_t* x, std::int64_t words) {
  return detail::popcount_words_impl<PortableCore>(x, words);
}

}  // namespace

namespace detail {
const Ops kPortableOps = {"portable", bit_serial_mvm, multilevel_mvm,
                          reference_batch, popcount_words};
}  // namespace detail

}  // namespace autohet::reram::kernels
