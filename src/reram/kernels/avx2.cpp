// AVX2 kernel variant. Compiled with -mavx2 -mpopcnt (per-file flags in
// src/reram/CMakeLists.txt — never globally); the whole body is gated on
// AUTOHET_KERNELS_AVX2 so builds whose compiler lacks the flags still link
// (the table's function pointers stay null and dispatch skips the variant).
//
// Popcount uses the nibble-LUT technique (Mula): vpshufb maps each nibble
// to its bit count, vpsadbw folds the byte counts into per-64-bit-lane
// sums — 256 bits per iteration against the portable path's 64.
#include <cstdint>

#include "reram/kernels/kernels.hpp"

#if defined(AUTOHET_KERNELS_AVX2)

#include <immintrin.h>

#include <bit>

#include "reram/kernels/kernel_ops.inl"

namespace autohet::reram::kernels {
namespace {

inline __m256i popcount_bytes(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

inline std::int64_t hsum_epi64(__m256i v) {
  const __m128i lo = _mm256_castsi256_si128(v);
  const __m128i hi = _mm256_extracti128_si256(v, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return _mm_cvtsi128_si64(sum) +
         _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum));
}

struct Avx2Core {
  static std::int64_t and_popcount(const std::uint64_t* x,
                                   const std::uint64_t* p,
                                   std::int64_t words) {
    __m256i acc = _mm256_setzero_si256();
    std::int64_t w = 0;
    for (; w + 4 <= words; w += 4) {
      const __m256i v = _mm256_and_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w)),
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + w)));
      acc = _mm256_add_epi64(
          acc, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
    }
    std::int64_t n = hsum_epi64(acc);
    for (; w < words; ++w) n += std::popcount(x[w] & p[w]);
    return n;
  }
  static std::int64_t weighted_and_popcount(const std::uint64_t* x8,
                                            const std::uint64_t* p,
                                            std::int64_t words) {
    // One weight-plane chunk load serves all 8 input planes, and the 2^xb
    // weighting happens on the vpsadbw lane counts inside the vector
    // accumulator — one horizontal reduction per column, not eight.
    __m256i acc = _mm256_setzero_si256();
    const __m256i zero = _mm256_setzero_si256();
    std::int64_t w = 0;
    for (; w + 4 <= words; w += 4) {
      const __m256i pv =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + w));
      for (int xb = 0; xb < 8; ++xb) {
        const __m256i v = _mm256_and_si256(
            _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(x8 + xb * words + w)),
            pv);
        const __m256i cnt = _mm256_sad_epu8(popcount_bytes(v), zero);
        acc = _mm256_add_epi64(acc, _mm256_slli_epi64(cnt, xb));
      }
    }
    std::int64_t n = hsum_epi64(acc);
    for (; w < words; ++w) {
      for (int xb = 0; xb < 8; ++xb) {
        n += static_cast<std::int64_t>(
                 std::popcount(x8[xb * words + w] & p[w]))
             << xb;
      }
    }
    return n;
  }
  static std::int64_t popcount(const std::uint64_t* x, std::int64_t words) {
    __m256i acc = _mm256_setzero_si256();
    std::int64_t w = 0;
    for (; w + 4 <= words; w += 4) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + w));
      acc = _mm256_add_epi64(
          acc, _mm256_sad_epu8(popcount_bytes(v), _mm256_setzero_si256()));
    }
    std::int64_t n = hsum_epi64(acc);
    for (; w < words; ++w) n += std::popcount(x[w]);
    return n;
  }
  static void madd(std::int32_t* acc, const std::uint8_t* xs, std::int32_t w,
                   std::int64_t count) {
    const __m256i wv = _mm256_set1_epi32(w);
    std::int64_t s = 0;
    for (; s + 8 <= count; s += 8) {
      const __m256i x32 = _mm256_cvtepu8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(xs + s)));
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + s));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(acc + s),
          _mm256_add_epi32(a, _mm256_mullo_epi32(x32, wv)));
    }
    for (; s < count; ++s) acc[s] += w * static_cast<std::int32_t>(xs[s]);
  }
};

void bit_serial_mvm(const std::uint64_t* planes, std::int64_t plane_cols,
                    std::int64_t col_words, std::int64_t cols,
                    std::int64_t words, const std::uint64_t* xbits,
                    std::int64_t count, std::int32_t* acc_t) {
  detail::bit_serial_mvm_impl<Avx2Core>(planes, plane_cols, col_words, cols,
                                        words, xbits, count, acc_t);
}

void multilevel_mvm(const std::uint64_t* planes, std::int64_t plane_cols,
                    std::int64_t col_words, std::int64_t cols,
                    std::int64_t words, const std::uint64_t* xbits,
                    std::int64_t count, const std::int64_t* popx,
                    const std::int64_t* refs, std::int32_t* acc_t) {
  detail::multilevel_mvm_impl<Avx2Core>(planes, plane_cols, col_words, cols,
                                        words, xbits, count, popx, refs,
                                        acc_t);
}

void reference_batch(const std::int8_t* cells, std::int64_t row_stride,
                     std::int64_t rows, std::int64_t cols,
                     const std::uint8_t* inputs_t, std::int64_t count,
                     std::int32_t* acc_t) {
  detail::reference_batch_impl<Avx2Core>(cells, row_stride, rows, cols,
                                         inputs_t, count, acc_t);
}

std::int64_t popcount_words(const std::uint64_t* x, std::int64_t words) {
  return detail::popcount_words_impl<Avx2Core>(x, words);
}

}  // namespace

namespace detail {
const Ops kAvx2Ops = {"avx2", bit_serial_mvm, multilevel_mvm, reference_batch,
                      popcount_words};
}  // namespace detail

}  // namespace autohet::reram::kernels

#else  // !AUTOHET_KERNELS_AVX2

namespace autohet::reram::kernels::detail {
const Ops kAvx2Ops = {};  // not compiled in; dispatch skips it
}  // namespace autohet::reram::kernels::detail

#endif  // AUTOHET_KERNELS_AVX2
