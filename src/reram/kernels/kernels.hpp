// Dispatching kernel backend for the packed bit-plane crossbar primitives.
//
// The functional simulator's hot loops — bit-serial and multilevel
// AND+popcount MVMs over packed uint64 bit planes, and the batched integer
// GEMM over raw cells — are implemented once per ISA variant behind one
// table of function pointers (the ggml idiom: each variant lives in its own
// translation unit compiled with that ISA's flags, and the best supported
// variant is selected by CPUID at startup). Three variants exist:
//
//   portable — plain C++ word loops, compiled with the project's baseline
//              flags; always available and the equivalence baseline.
//   avx2     — 256-bit lanes, popcount via the nibble-LUT (vpshufb) +
//              psadbw byte-sum technique; requires AVX2.
//   avx512   — 512-bit lanes with the VPOPCNTDQ instruction; requires
//              AVX-512 F/BW/VL/VPOPCNTDQ.
//
// Every op is integer-exact, so all variants produce bit-identical results
// on identical inputs — the scalar-reference oracle and the byte-identical
// Monte-Carlo report gates hold for every variant (tested per variant in
// tests/test_kernels.cpp).
//
// Selection: the best supported variant wins at first use. The environment
// variable AUTOHET_KERNEL (or the drivers' --kernel flag) forces a specific
// variant by name; naming an unknown or unsupported variant is a hard error
// (a forced run must never silently fall back). The active variant is
// exported as the `autohet_kernel_dispatch` gauge.
//
// Data layouts (all strides in uint64 words unless noted):
//   * weight planes: planes[(wb * plane_cols + j) * col_words + w] — bit
//     plane wb of column j; kernels read words [0, words) of each column
//     (words <= col_words; trailing words cover unused rows and are zero in
//     the input masks).
//   * packed inputs: xbits[(s * 8 + xb) * words + w] — 8 contiguous input
//     bit planes per sample; a single sample (count == 1) is the classic
//     xbits[xb * words + w] layout.
//   * accumulators: acc_t[j * count + s] — transposed, batch innermost, so
//     the batch dimension vectorizes even on narrow crossbars. All ops
//     accumulate (+=) on top of the caller's contents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace autohet::reram::kernels {

enum class Variant : int { kPortable = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr int kVariantCount = 3;

/// The per-variant kernel table. Every op accumulates into acc_t in the
/// transposed [col][sample] layout documented above and is integer-exact:
/// results are bit-identical across variants.
struct Ops {
  const char* name = nullptr;

  /// Packed bit-serial MVM of `count` samples against `cols` columns:
  ///   acc_t[j*count+s] += Σ_wb sign(wb)·2^wb · Σ_xb 2^xb ·
  ///                       popcount(xbits[s,xb] & planes[wb,j])
  /// where sign(7) = -1 (two's-complement sign plane).
  void (*bit_serial_mvm)(const std::uint64_t* planes, std::int64_t plane_cols,
                         std::int64_t col_words, std::int64_t cols,
                         std::int64_t words, const std::uint64_t* xbits,
                         std::int64_t count, std::int32_t* acc_t) = nullptr;

  /// Packed multilevel (offset-binary) MVM: plane 7 contributes through its
  /// complement (bitline = popx - popcount), and 128·Σ input is subtracted
  /// per sample via the reference column. popx is [s*8 + xb] (per-sample
  /// input-plane popcounts), refs is [s] (128·Σ input_s).
  void (*multilevel_mvm)(const std::uint64_t* planes, std::int64_t plane_cols,
                         std::int64_t col_words, std::int64_t cols,
                         std::int64_t words, const std::uint64_t* xbits,
                         std::int64_t count, const std::int64_t* popx,
                         const std::int64_t* refs,
                         std::int32_t* acc_t) = nullptr;

  /// Batched integer GEMM over the raw cells (skip-zero weights):
  ///   acc_t[j*count+s] += cells[i*row_stride+j] · inputs_t[i*count+s]
  void (*reference_batch)(const std::int8_t* cells, std::int64_t row_stride,
                          std::int64_t rows, std::int64_t cols,
                          const std::uint8_t* inputs_t, std::int64_t count,
                          std::int32_t* acc_t) = nullptr;

  /// Plain popcount over a word run (input-plane popcounts for multilevel).
  std::int64_t (*popcount_words)(const std::uint64_t* x,
                                 std::int64_t words) = nullptr;
};

/// The active kernel table. First call resolves the AUTOHET_KERNEL override
/// (hard error on an unknown or unsupported name) or picks the best
/// CPUID-supported variant.
const Ops& ops();

/// The variant ops() currently dispatches to.
Variant active_variant();

/// True when `v` is compiled in *and* the host CPU supports it.
bool supported(Variant v);

/// Every supported variant, portable first.
std::vector<Variant> supported_variants();

/// Forces the active variant. Hard error (AUTOHET_CHECK) when unsupported —
/// a forced variant must never silently fall back.
void set_variant(Variant v);

const char* variant_name(Variant v);

/// Parses "portable" / "avx2" / "avx512" into *out; false on unknown names.
bool variant_from_name(std::string_view name, Variant* out);

/// Applies a `--kernel <name>` / `--kernel=<name>` override found anywhere
/// on a raw argv (the bench binaries' positional conventions predate flag
/// parsing). Hard error on unknown/unsupported names; no-op when absent.
void apply_argv_override(int argc, const char* const* argv);

/// Caller-owned scratch for the packed/batched kernel paths: one object
/// holds every buffer the bit-serial, multilevel and batched datapaths
/// need, so call sites stop hand-rolling per-purpose vectors. Buffers grow
/// monotonically and are never shrunk; contents are unspecified on return
/// (the pack/compute routines overwrite what they use). Keep one instance
/// per thread (thread_local at the call sites) for allocation-free loops.
class KernelScratch {
 public:
  /// Packed input bit planes: 8·words uint64 per sample.
  std::uint64_t* input_planes(std::size_t words) {
    return grown(planes_, words);
  }
  /// One unfolded im2col column (weight_rows bytes).
  std::uint8_t* column(std::size_t n) { return grown(column_, n); }
  /// Transposed input tile (rows × count bytes, batch innermost).
  std::uint8_t* columns_t(std::size_t n) { return grown(columns_t_, n); }
  /// Transposed accumulator tile (cols × count int32).
  std::int32_t* accs_t(std::size_t n) { return grown(accs_t_, n); }
  /// Per-sample int64 terms (multilevel popx / reference sums, row-block
  /// partials).
  std::int64_t* sample_terms(std::size_t n) { return grown(terms_, n); }

 private:
  template <typename T>
  static T* grown(std::vector<T>& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
    return v.data();
  }
  std::vector<std::uint64_t> planes_;
  std::vector<std::uint8_t> column_;
  std::vector<std::uint8_t> columns_t_;
  std::vector<std::int32_t> accs_t_;
  std::vector<std::int64_t> terms_;
};

namespace detail {
// Variant tables, defined one per translation unit (so each can be compiled
// with its own ISA flags). A variant that is not compiled in leaves its
// function pointers null.
extern const Ops kPortableOps;
extern const Ops kAvx2Ops;
extern const Ops kAvx512Ops;
}  // namespace detail

}  // namespace autohet::reram::kernels
