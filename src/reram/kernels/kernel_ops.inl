// Shared loop bodies for the per-ISA kernel variants (included by each
// variant's translation unit so the whole body compiles under that unit's
// ISA flags). A variant supplies a Core with three primitives:
//
//   static std::int64_t and_popcount(const std::uint64_t* x,
//                                    const std::uint64_t* p,
//                                    std::int64_t words);
//   static std::int64_t weighted_and_popcount(const std::uint64_t* x8,
//                                             const std::uint64_t* p,
//                                             std::int64_t words);
//   static std::int64_t popcount(const std::uint64_t* x, std::int64_t words);
//   static void madd(std::int32_t* acc, const std::uint8_t* xs,
//                    std::int32_t w, std::int64_t count);
//
// weighted_and_popcount processes all 8 input bit planes of one sample
// against one weight-plane column in a single call, returning
// Σ_xb popcount(x8[xb·words..] & p) << xb. Crossbar columns are short
// (words = ceil(rows/64) is single digits for every candidate shape), so
// folding the 8 plane passes into one call lets a SIMD core keep its
// vector accumulator live across the whole column and pay ONE horizontal
// reduction per (weight plane, column, sample) instead of eight — that,
// not the word loop, is where the small-column cycles go.
//
// and the templates below instantiate the kernel loops over it. Every
// primitive returns/accumulates exact integers, so all instantiations are
// bit-identical — the loop *structure* is shared precisely so a variant can
// only differ in how it counts bits and multiplies bytes, never in what it
// sums.
//
// This file is an .inl, not a header: it must only ever be included from
// the kernels/*.cpp variant units (after <cstdint> and kernels.hpp).

namespace autohet::reram::kernels::detail {

template <typename Core>
void bit_serial_mvm_impl(const std::uint64_t* planes, std::int64_t plane_cols,
                         std::int64_t col_words, std::int64_t cols,
                         std::int64_t words, const std::uint64_t* xbits,
                         std::int64_t count, std::int32_t* acc_t) {
  // One AND+popcount pass per (weight plane, column, sample, input plane).
  // Weight plane 7 is the two's-complement sign plane (value -2^7); the
  // Σ_xb 2^xb · bitline sum is exact in int64 before the final int32
  // accumulate, exactly as the retained scalar datapath computes it.
  for (int wb = 0; wb < 8; ++wb) {
    const std::int64_t neg = (wb == 7) ? -1 : 1;
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::uint64_t* p = planes + (wb * plane_cols + j) * col_words;
      for (std::int64_t s = 0; s < count; ++s) {
        const std::int64_t shifted =
            Core::weighted_and_popcount(xbits + s * 8 * words, p, words);
        acc_t[j * count + s] +=
            static_cast<std::int32_t>(neg * (shifted << wb));
      }
    }
  }
}

template <typename Core>
void multilevel_mvm_impl(const std::uint64_t* planes, std::int64_t plane_cols,
                         std::int64_t col_words, std::int64_t cols,
                         std::int64_t words, const std::uint64_t* xbits,
                         std::int64_t count, const std::int64_t* popx,
                         const std::int64_t* refs, std::int32_t* acc_t) {
  // Offset-binary: bit k of v = w + 128 is weight plane k for k < 7 and the
  // complement of the sign plane for k = 7 (v = w ^ 0x80), kept implicit via
  // popcount(x & ~p7) = popcount(x) - popcount(x & p7). The 128·Σx reference
  // column is subtracted once per (column, sample) at the end.
  for (int k = 0; k < 8; ++k) {
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::uint64_t* p = planes + (k * plane_cols + j) * col_words;
      for (std::int64_t s = 0; s < count; ++s) {
        std::int64_t shifted = Core::weighted_and_popcount(
            xbits + s * 8 * words, p, words);
        if (k == 7) {
          // Σ_xb (popx − bitline) << xb, with the bitline sum already
          // folded: subtract it from the weighted input popcounts.
          std::int64_t pw = 0;
          for (int xb = 0; xb < 8; ++xb) pw += popx[s * 8 + xb] << xb;
          shifted = pw - shifted;
        }
        acc_t[j * count + s] += static_cast<std::int32_t>(shifted << k);
      }
    }
  }
  for (std::int64_t j = 0; j < cols; ++j) {
    for (std::int64_t s = 0; s < count; ++s) {
      acc_t[j * count + s] -= static_cast<std::int32_t>(refs[s]);
    }
  }
}

template <typename Core>
void reference_batch_impl(const std::int8_t* cells, std::int64_t row_stride,
                          std::int64_t rows, std::int64_t cols,
                          const std::uint8_t* inputs_t, std::int64_t count,
                          std::int32_t* acc_t) {
  for (std::int64_t i = 0; i < rows; ++i) {
    const std::uint8_t* xs = inputs_t + i * count;
    const std::int8_t* row = cells + i * row_stride;
    for (std::int64_t j = 0; j < cols; ++j) {
      const std::int32_t w = row[j];
      if (w == 0) continue;  // a zero cell contributes exactly zero
      Core::madd(acc_t + j * count, xs, w, count);
    }
  }
}

template <typename Core>
std::int64_t popcount_words_impl(const std::uint64_t* x, std::int64_t words) {
  return Core::popcount(x, words);
}

}  // namespace autohet::reram::kernels::detail
