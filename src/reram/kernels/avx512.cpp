// AVX-512 kernel variant: 512-bit lanes with the dedicated VPOPCNTDQ
// per-64-bit popcount instruction and masked loads for ragged word tails.
// Compiled with -mavx512f -mavx512bw -mavx512vl -mavx512vpopcntdq (per-file
// flags in src/reram/CMakeLists.txt — never globally); gated on
// AUTOHET_KERNELS_AVX512 exactly like the AVX2 unit.
#include <cstdint>

#include "reram/kernels/kernels.hpp"

#if defined(AUTOHET_KERNELS_AVX512)

#include <immintrin.h>

#include "reram/kernels/kernel_ops.inl"

// GCC's AVX-512 intrinsic headers model "don't care" merge operands as
// deliberately-uninitialized __m256i/__m512i locals (__Y = __Y), which
// -Wmaybe-uninitialized flags once the wrappers inline (seen with
// _mm512_cvtepu8_epi32 and the extract helpers on GCC 12). These are header
// false positives, not bugs in this unit.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
#endif

namespace autohet::reram::kernels {
namespace {

// Store-and-sum horizontal reduction. _mm512_reduce_add_epi64 would be the
// obvious choice, but GCC implements it via _mm256_undefined_si256() and
// flags the deliberately-uninitialized merge operand under
// -Wmaybe-uninitialized; this compiles to the same extract/add sequence.
inline std::int64_t hsum512(__m512i v) {
  alignas(64) std::int64_t lanes[8];
  _mm512_store_si512(lanes, v);
  return ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3])) +
         ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
}

struct Avx512Core {
  static std::int64_t and_popcount(const std::uint64_t* x,
                                   const std::uint64_t* p,
                                   std::int64_t words) {
    __m512i acc = _mm512_setzero_si512();
    std::int64_t w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i v = _mm512_and_si512(_mm512_loadu_si512(x + w),
                                         _mm512_loadu_si512(p + w));
      acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
    }
    if (w < words) {
      const __mmask8 m =
          static_cast<__mmask8>((1u << (words - w)) - 1u);
      const __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(m, x + w),
                                         _mm512_maskz_loadu_epi64(m, p + w));
      acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
    }
    return hsum512(acc);
  }
  static std::int64_t weighted_and_popcount(const std::uint64_t* x8,
                                            const std::uint64_t* p,
                                            std::int64_t words) {
    // All 8 input planes against one loaded weight-plane chunk; the 2^xb
    // weights ride in the vector accumulator (counts ≤ 64 << 7 per lane
    // per add — nowhere near i64 overflow), so the whole column costs a
    // single horizontal reduction.
    __m512i acc = _mm512_setzero_si512();
    std::int64_t w = 0;
    for (; w + 8 <= words; w += 8) {
      const __m512i pv = _mm512_loadu_si512(p + w);
      for (int xb = 0; xb < 8; ++xb) {
        const __m512i v = _mm512_and_si512(
            _mm512_loadu_si512(x8 + xb * words + w), pv);
        acc = _mm512_add_epi64(
            acc, _mm512_slli_epi64(_mm512_popcnt_epi64(v),
                                   static_cast<unsigned int>(xb)));
      }
    }
    if (w < words) {
      const __mmask8 m = static_cast<__mmask8>((1u << (words - w)) - 1u);
      const __m512i pv = _mm512_maskz_loadu_epi64(m, p + w);
      for (int xb = 0; xb < 8; ++xb) {
        const __m512i v = _mm512_and_si512(
            _mm512_maskz_loadu_epi64(m, x8 + xb * words + w), pv);
        acc = _mm512_add_epi64(
            acc, _mm512_slli_epi64(_mm512_popcnt_epi64(v),
                                   static_cast<unsigned int>(xb)));
      }
    }
    return hsum512(acc);
  }
  static std::int64_t popcount(const std::uint64_t* x, std::int64_t words) {
    __m512i acc = _mm512_setzero_si512();
    std::int64_t w = 0;
    for (; w + 8 <= words; w += 8) {
      acc = _mm512_add_epi64(acc,
                             _mm512_popcnt_epi64(_mm512_loadu_si512(x + w)));
    }
    if (w < words) {
      const __mmask8 m =
          static_cast<__mmask8>((1u << (words - w)) - 1u);
      acc = _mm512_add_epi64(
          acc, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(m, x + w)));
    }
    return hsum512(acc);
  }
  static void madd(std::int32_t* acc, const std::uint8_t* xs, std::int32_t w,
                   std::int64_t count) {
    const __m512i wv = _mm512_set1_epi32(w);
    std::int64_t s = 0;
    for (; s + 16 <= count; s += 16) {
      const __m512i x32 = _mm512_cvtepu8_epi32(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(xs + s)));
      const __m512i a = _mm512_loadu_si512(acc + s);
      _mm512_storeu_si512(acc + s,
                          _mm512_add_epi32(a, _mm512_mullo_epi32(x32, wv)));
    }
    if (s < count) {
      const __mmask16 m =
          static_cast<__mmask16>((1u << (count - s)) - 1u);
      const __m512i x32 =
          _mm512_cvtepu8_epi32(_mm_maskz_loadu_epi8(m, xs + s));
      const __m512i a = _mm512_maskz_loadu_epi32(m, acc + s);
      _mm512_mask_storeu_epi32(
          acc + s, m, _mm512_add_epi32(a, _mm512_mullo_epi32(x32, wv)));
    }
  }
};

void bit_serial_mvm(const std::uint64_t* planes, std::int64_t plane_cols,
                    std::int64_t col_words, std::int64_t cols,
                    std::int64_t words, const std::uint64_t* xbits,
                    std::int64_t count, std::int32_t* acc_t) {
  detail::bit_serial_mvm_impl<Avx512Core>(planes, plane_cols, col_words, cols,
                                          words, xbits, count, acc_t);
}

void multilevel_mvm(const std::uint64_t* planes, std::int64_t plane_cols,
                    std::int64_t col_words, std::int64_t cols,
                    std::int64_t words, const std::uint64_t* xbits,
                    std::int64_t count, const std::int64_t* popx,
                    const std::int64_t* refs, std::int32_t* acc_t) {
  detail::multilevel_mvm_impl<Avx512Core>(planes, plane_cols, col_words, cols,
                                          words, xbits, count, popx, refs,
                                          acc_t);
}

void reference_batch(const std::int8_t* cells, std::int64_t row_stride,
                     std::int64_t rows, std::int64_t cols,
                     const std::uint8_t* inputs_t, std::int64_t count,
                     std::int32_t* acc_t) {
  detail::reference_batch_impl<Avx512Core>(cells, row_stride, rows, cols,
                                           inputs_t, count, acc_t);
}

std::int64_t popcount_words(const std::uint64_t* x, std::int64_t words) {
  return detail::popcount_words_impl<Avx512Core>(x, words);
}

}  // namespace

namespace detail {
const Ops kAvx512Ops = {"avx512", bit_serial_mvm, multilevel_mvm,
                        reference_batch, popcount_words};
}  // namespace detail

}  // namespace autohet::reram::kernels

#else  // !AUTOHET_KERNELS_AVX512

namespace autohet::reram::kernels::detail {
const Ops kAvx512Ops = {};  // not compiled in; dispatch skips it
}  // namespace autohet::reram::kernels::detail

#endif  // AUTOHET_KERNELS_AVX512
