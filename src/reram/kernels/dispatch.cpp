// Runtime kernel dispatch: CPUID-probed variant selection, the
// AUTOHET_KERNEL environment override, and the --kernel argv override the
// bench binaries use. The selected variant index is exported as the
// `autohet_kernel_dispatch` gauge (0 = portable, 1 = avx2, 2 = avx512).
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "reram/kernels/kernels.hpp"

namespace autohet::reram::kernels {
namespace {

const Ops* variant_table(Variant v) {
  switch (v) {
    case Variant::kPortable:
      return &detail::kPortableOps;
    case Variant::kAvx2:
      return &detail::kAvx2Ops;
    case Variant::kAvx512:
      return &detail::kAvx512Ops;
  }
  return &detail::kPortableOps;
}

bool cpu_supports(Variant v) {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (v) {
    case Variant::kPortable:
      return true;
    case Variant::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Variant::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0 &&
             __builtin_cpu_supports("avx512vpopcntdq") != 0;
  }
  return false;
#else
  return v == Variant::kPortable;
#endif
}

std::atomic<int> g_active{-1};  // -1 = not yet resolved
std::once_flag g_init_once;

void activate(Variant v) {
  g_active.store(static_cast<int>(v), std::memory_order_release);
  OBS_GAUGE_SET("autohet_kernel_dispatch", static_cast<int>(v));
}

/// Resolves the initial variant: AUTOHET_KERNEL wins (hard error on unknown
/// or unsupported names — a forced run must never silently fall back), else
/// the best CPUID-supported variant.
void resolve_initial() {
  if (const char* env = std::getenv("AUTOHET_KERNEL");
      env != nullptr && *env != '\0') {
    Variant v = Variant::kPortable;
    AUTOHET_CHECK(variant_from_name(env, &v),
                  std::string("AUTOHET_KERNEL: unknown kernel variant '") +
                      env + "' (want portable, avx2 or avx512)");
    AUTOHET_CHECK(supported(v),
                  std::string("AUTOHET_KERNEL: variant '") + env +
                      "' is not supported on this host/build");
    activate(v);
    return;
  }
  Variant best = Variant::kPortable;
  for (const Variant v : {Variant::kAvx2, Variant::kAvx512}) {
    if (supported(v)) best = v;
  }
  activate(best);
}

}  // namespace

bool supported(Variant v) {
  return variant_table(v)->bit_serial_mvm != nullptr && cpu_supports(v);
}

std::vector<Variant> supported_variants() {
  std::vector<Variant> out;
  for (const Variant v :
       {Variant::kPortable, Variant::kAvx2, Variant::kAvx512}) {
    if (supported(v)) out.push_back(v);
  }
  return out;
}

const Ops& ops() {
  std::call_once(g_init_once, resolve_initial);
  return *variant_table(
      static_cast<Variant>(g_active.load(std::memory_order_acquire)));
}

Variant active_variant() {
  std::call_once(g_init_once, resolve_initial);
  return static_cast<Variant>(g_active.load(std::memory_order_acquire));
}

void set_variant(Variant v) {
  std::call_once(g_init_once, resolve_initial);
  AUTOHET_CHECK(supported(v), std::string("kernel variant '") +
                                  variant_name(v) +
                                  "' is not supported on this host/build");
  activate(v);
}

const char* variant_name(Variant v) {
  switch (v) {
    case Variant::kPortable:
      return "portable";
    case Variant::kAvx2:
      return "avx2";
    case Variant::kAvx512:
      return "avx512";
  }
  return "portable";
}

bool variant_from_name(std::string_view name, Variant* out) {
  for (const Variant v :
       {Variant::kPortable, Variant::kAvx2, Variant::kAvx512}) {
    if (name == variant_name(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

void apply_argv_override(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string_view value;
    if (std::strcmp(arg, "--kernel") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(arg, "--kernel=", 9) == 0) {
      value = arg + 9;
    } else {
      continue;
    }
    Variant v = Variant::kPortable;
    AUTOHET_CHECK(variant_from_name(value, &v),
                  "--kernel: unknown kernel variant '" + std::string(value) +
                      "' (want portable, avx2 or avx512)");
    set_variant(v);
    return;
  }
}

}  // namespace autohet::reram::kernels
