// Functional model of one logical crossbar (a PE): eight 1-bit physical
// crossbar planes storing the bit planes of 8-bit signed weights, driven
// bit-serially by 1-bit DACs.
//
// Two datapaths are provided:
//   * mvm_bit_serial — the faithful hardware datapath: for every input bit
//     and every weight bit plane, a binary matrix-vector product is formed
//     on the bitlines (Ohm's law + current summation), converted by the
//     ADCs, and shift-added into the accumulator. Weight plane 7 carries the
//     two's-complement sign (contributes with weight -2^7).
//   * mvm_reference — plain int32 GEMV over the programmed weights.
// The two are bit-exact by construction; tests assert it.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "mapping/crossbar_shape.hpp"
#include "reram/faults.hpp"

namespace autohet::reram {

class LogicalCrossbar {
 public:
  explicit LogicalCrossbar(mapping::CrossbarShape shape);

  const mapping::CrossbarShape& shape() const noexcept { return shape_; }
  std::int64_t rows_used() const noexcept { return rows_used_; }
  std::int64_t cols_used() const noexcept { return cols_used_; }

  /// Programs a rows_used × cols_used weight block (row-major) into the
  /// top-left corner of the array; the rest of the cells stay zero
  /// (the wasted cells of Fig. 2 / Fig. 7).
  void program(std::span<const std::int8_t> weights, std::int64_t rows,
               std::int64_t cols);

  /// Places a weight at an explicit (row, col) cell; used by the
  /// kernel-aligned mapper which leaves gaps inside a row block.
  void program_cell(std::int64_t row, std::int64_t col, std::int8_t value);

  /// Bit-serial MVM over the used region. `input` must have rows_used()
  /// entries. Returns one int32 accumulation per used column.
  std::vector<std::int32_t> mvm_bit_serial(
      std::span<const std::uint8_t> input) const;

  /// Direct integer reference MVM (identical results, no bit slicing).
  std::vector<std::int32_t> mvm_reference(
      std::span<const std::uint8_t> input) const;

  /// Multi-level-cell bit-serial MVM: weights are stored offset-binary
  /// (w + 128) across 8/cell_bits planes of cell_bits-bit cells, and the
  /// signed result is recovered by subtracting 128·Σx via a reference
  /// column — the standard ReRAM technique for signed weights on unsigned
  /// conductances. cell_bits must divide 8. Bit-exact to mvm_reference for
  /// every cell precision.
  std::vector<std::int32_t> mvm_multilevel(
      std::span<const std::uint8_t> input, int cell_bits) const;

  /// Applies ReRAM conductance variation: every programmed cell is
  /// perturbed by round(N(0, sigma·2^(weight_bits-1)-1 ... )) — concretely
  /// w' = clamp(w + round(N(0, sigma·127)), -128, 127). sigma = 0 leaves
  /// the array untouched. Models device non-ideality for the accuracy
  /// studies; see reram/variation.hpp helpers.
  void apply_variation(common::Rng& rng, double sigma);

  /// Burns a seeded fault model into the whole physical array (stuck-at
  /// maps, programming variation, retention drift — see reram/faults.hpp).
  /// Deterministic in (model.config().seed, crossbar_id); gap cells inside
  /// the used region are perturbed too (their stuck-at-1 faults inject
  /// spurious bitline current exactly as on real fabric). A no-op for an
  /// ideal model.
  FaultMapStats apply_faults(const FaultModel& model,
                             std::uint64_t crossbar_id);

  /// Integer MVM with cycle-to-cycle read noise: every sensed cell's weight
  /// is perturbed by round(N(0, weight_sigma)) for this read only (the
  /// programmed array is untouched). `weight_sigma` is in weight LSBs —
  /// use FaultModel::read_noise_weight_sigma(). Falls back to
  /// mvm_reference when weight_sigma == 0.
  std::vector<std::int32_t> mvm_read_noisy(std::span<const std::uint8_t> input,
                                           common::Rng& rng,
                                           double weight_sigma) const;

 private:
  mapping::CrossbarShape shape_;
  std::int64_t rows_used_ = 0;
  std::int64_t cols_used_ = 0;
  std::vector<std::int8_t> cells_;  // full r×c array, row-major
};

}  // namespace autohet::reram
