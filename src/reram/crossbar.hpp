// Functional model of one logical crossbar (a PE): eight 1-bit physical
// crossbar planes storing the bit planes of 8-bit signed weights, driven
// bit-serially by 1-bit DACs.
//
// Two datapaths are provided:
//   * mvm_bit_serial — the faithful hardware datapath: for every input bit
//     and every weight bit plane, a binary matrix-vector product is formed
//     on the bitlines (Ohm's law + current summation), converted by the
//     ADCs, and shift-added into the accumulator. Weight plane 7 carries the
//     two's-complement sign (contributes with weight -2^7).
//   * mvm_reference — plain int32 GEMV over the programmed weights.
// The two are bit-exact by construction; tests assert it.
//
// Fast path: the eight weight bit planes can additionally be packed into
// per-column uint64 masks (ensure_packed()), turning the bit-serial and
// multilevel datapaths into AND+popcount over words — the bit-level kernel
// style CIM-Explorer uses. Packed kernels are bit-identical to the retained
// *_scalar paths (tested); bulk program() packs eagerly, program_cell
// updates the pack incrementally, and fault/variation burn-in repacks.
// One packing serves both datapaths because the multilevel offset-binary
// code v = w + 128 equals w ^ 0x80 on the uint8 bit pattern: bit k of v is
// bit k of w for k < 7 and the complement of the sign bit for k = 7.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "mapping/crossbar_shape.hpp"
#include "reram/faults.hpp"
#include "reram/kernels/kernels.hpp"

namespace autohet::reram {

class LogicalCrossbar {
 public:
  explicit LogicalCrossbar(mapping::CrossbarShape shape);

  const mapping::CrossbarShape& shape() const noexcept { return shape_; }
  std::int64_t rows_used() const noexcept { return rows_used_; }
  std::int64_t cols_used() const noexcept { return cols_used_; }

  /// Programs a rows_used × cols_used weight block (row-major) into the
  /// top-left corner of the array; the rest of the cells stay zero
  /// (the wasted cells of Fig. 2 / Fig. 7). Rebuilds the packed bit planes
  /// eagerly so subsequent bit-serial/multilevel MVMs take the fast kernel.
  void program(std::span<const std::int8_t> weights, std::int64_t rows,
               std::int64_t cols);

  /// Places a weight at an explicit (row, col) cell; used by the
  /// kernel-aligned mapper which leaves gaps inside a row block. Updates the
  /// packed planes incrementally when they exist; otherwise stays scalar
  /// (pack later with ensure_packed() only if the fast bit kernels are
  /// wanted — the integer datapath never needs the planes).
  void program_cell(std::int64_t row, std::int64_t col, std::int8_t value);

  /// Builds the packed uint64 bit planes from the current cells. Idempotent;
  /// called automatically by program(). Costs one pass over the array.
  void ensure_packed();
  bool is_packed() const noexcept { return !packed_.empty(); }

  /// Bit-serial MVM over the used region. `input` must have rows_used()
  /// entries. Returns one int32 accumulation per used column. Uses the
  /// packed AND+popcount kernel when the planes are packed, the scalar
  /// datapath otherwise — bit-identical either way.
  std::vector<std::int32_t> mvm_bit_serial(
      std::span<const std::uint8_t> input) const;

  /// Direct integer reference MVM (identical results, no bit slicing).
  std::vector<std::int32_t> mvm_reference(
      std::span<const std::uint8_t> input) const;

  /// Multi-level-cell bit-serial MVM: weights are stored offset-binary
  /// (w + 128) across 8/cell_bits planes of cell_bits-bit cells, and the
  /// signed result is recovered by subtracting 128·Σx via a reference
  /// column — the standard ReRAM technique for signed weights on unsigned
  /// conductances. cell_bits must divide 8. Bit-exact to mvm_reference for
  /// every cell precision.
  std::vector<std::int32_t> mvm_multilevel(
      std::span<const std::uint8_t> input, int cell_bits) const;

  /// Retained scalar datapaths — the equivalence oracles for the packed
  /// kernels and the KernelPolicy::kScalar baseline.
  std::vector<std::int32_t> mvm_bit_serial_scalar(
      std::span<const std::uint8_t> input) const;
  std::vector<std::int32_t> mvm_multilevel_scalar(
      std::span<const std::uint8_t> input, int cell_bits) const;
  std::vector<std::int32_t> mvm_reference_scalar(
      std::span<const std::uint8_t> input) const;

  /// Allocation-free variants: accumulate into out[0 .. cols_used) on top of
  /// whatever is already there (the adder-tree merge happens in the caller's
  /// buffer directly). `scratch` is caller-owned kernel scratch (packed
  /// input planes, per-sample terms), grown as needed — pass a per-thread
  /// instance to keep the hot loop allocation-free.
  void mvm_bit_serial_accum(std::span<const std::uint8_t> input,
                            std::int32_t* out,
                            kernels::KernelScratch& scratch) const;
  void mvm_multilevel_accum(std::span<const std::uint8_t> input, int cell_bits,
                            std::int32_t* out,
                            kernels::KernelScratch& scratch) const;
  void mvm_reference_accum(std::span<const std::uint8_t> input,
                           std::int32_t* out) const;
  /// Batched reference accumulate over `count` input columns in transposed
  /// layout: inputs_t is rows_used × count row-major (input row i for all
  /// columns at inputs_t[i·count ..]), acc_t is cols_used × count (output
  /// col j for all columns at acc_t[j·count ..]). The innermost loop runs
  /// contiguously over the batch dimension, so it vectorizes regardless of
  /// how narrow the crossbar is. Integer sums are exact and reassociate
  /// freely — results are bit-identical to `count` separate
  /// mvm_reference_accum calls (zero weights/activations contribute exactly
  /// zero, so skipping them never changes a sum).
  void mvm_reference_batch_accum(const std::uint8_t* inputs_t,
                                 std::int64_t count,
                                 std::int32_t* acc_t) const;
  /// Batched packed MVMs over `count` input columns in the same transposed
  /// layout as mvm_reference_batch_accum (inputs_t rows_used × count,
  /// acc_t cols_used × count). All `count` samples' input planes are packed
  /// once and run through a single kernel dispatch, so the indirect-call and
  /// weight-plane traffic amortize over the batch. Require is_packed();
  /// bit-identical to `count` separate single-sample accum calls.
  void mvm_bit_serial_batch_accum(const std::uint8_t* inputs_t,
                                  std::int64_t count, std::int32_t* acc_t,
                                  kernels::KernelScratch& scratch) const;
  void mvm_multilevel_batch_accum(const std::uint8_t* inputs_t,
                                  std::int64_t count, int cell_bits,
                                  std::int32_t* acc_t,
                                  kernels::KernelScratch& scratch) const;
  void mvm_read_noisy_accum(std::span<const std::uint8_t> input,
                            common::Rng& rng, double weight_sigma,
                            std::int32_t* out) const;

  /// Applies ReRAM conductance variation: every programmed cell is
  /// perturbed by round(N(0, sigma·2^(weight_bits-1)-1 ... )) — concretely
  /// w' = clamp(w + round(N(0, sigma·127)), -128, 127). sigma = 0 leaves
  /// the array untouched. Models device non-ideality for the accuracy
  /// studies; see reram/variation.hpp helpers.
  void apply_variation(common::Rng& rng, double sigma);

  /// Burns a seeded fault model into the whole physical array (stuck-at
  /// maps, programming variation, retention drift — see reram/faults.hpp).
  /// Deterministic in (model.config().seed, crossbar_id); gap cells inside
  /// the used region are perturbed too (their stuck-at-1 faults inject
  /// spurious bitline current exactly as on real fabric). A no-op for an
  /// ideal model. `reference_path` forces the retained per-cell burn-in
  /// (the KernelPolicy::kScalar baseline); both paths are bit-identical.
  FaultMapStats apply_faults(const FaultModel& model,
                             std::uint64_t crossbar_id,
                             bool reference_path = false);

  /// Recording burn-in (FaultModel::apply_recording): programming variation
  /// is applied, stuck-draw candidates are appended to `out` instead of
  /// being applied. Returns the variation-only stats; replay_stuck_faults
  /// completes the burn for any eligible rate pair. Repacks like
  /// apply_faults.
  FaultMapStats apply_faults_recording(const FaultModel& model,
                                       std::uint64_t crossbar_id,
                                       std::vector<StuckCandidate>& out);

  /// Replays recorded stuck candidates under `model`'s thresholds on this
  /// (post-variation) array — see FaultModel::replay_stuck. Returns the
  /// delta stats; repacks when packed.
  FaultMapStats replay_stuck_faults(const FaultModel& model,
                                    std::span<const StuckCandidate> hits);

  /// Integer MVM with cycle-to-cycle read noise: every sensed cell's weight
  /// is perturbed by round(N(0, weight_sigma)) for this read only (the
  /// programmed array is untouched). `weight_sigma` is in weight LSBs —
  /// use FaultModel::read_noise_weight_sigma(). Falls back to
  /// mvm_reference when weight_sigma == 0.
  std::vector<std::int32_t> mvm_read_noisy(std::span<const std::uint8_t> input,
                                           common::Rng& rng,
                                           double weight_sigma) const;

 private:
  void repack();
  const std::uint64_t* plane(int bit, std::int64_t col) const noexcept {
    return packed_.data() +
           static_cast<std::size_t>((bit * shape_.cols + col) * packed_words_);
  }
  mapping::CrossbarShape shape_;
  std::int64_t rows_used_ = 0;
  std::int64_t cols_used_ = 0;
  std::vector<std::int8_t> cells_;  // full r×c array, row-major
  /// Packed weight bit planes, [bit][col][word] with words covering all
  /// shape_.rows wordlines; empty = not packed (scalar kernels used).
  std::vector<std::uint64_t> packed_;
  std::int64_t packed_words_ = 0;  ///< ceil(shape_.rows / 64)
};

}  // namespace autohet::reram
