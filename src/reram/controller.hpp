// The Global Controller (GC): "We use a global controller to decode CPU
// instructions and control the heterogeneous DNN mapping and inference. The
// GC receives instructions and signals the input/output buffer and tiles
// through the bus." (§3.1)
//
// compile_program() lowers a per-layer crossbar configuration plus its tile
// allocation into a linear instruction stream; execute_program() is the
// decoder — a checked state machine that validates instruction legality
// (tiles configured before programmed, layers programmed before executed,
// merges only after execution, ...) and accumulates bus/buffer statistics.
// It drives the bookkeeping of an inference pass; the numeric datapath
// itself lives in reram/functional.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/tile_allocator.hpp"
#include "nn/layer.hpp"

namespace autohet::reram {

enum class Opcode : std::uint8_t {
  kConfigureTile,   ///< [tile, rows, cols] set a tile's crossbar geometry
  kProgramWeights,  ///< [tile, layer, crossbars] load a layer's weights
  kLoadInput,       ///< [layer, bytes] stream inputs into the input buffer
  kExecuteLayer,    ///< [tile, layer, mvms] run the layer's MVMs on a tile
  kMergeOutputs,    ///< [layer, tiles] adder-tree merge across tiles
  kStoreOutput,     ///< [layer, bytes] drain outputs to the output buffer
  kBarrier          ///< [] all preceding work completes
};

const char* opcode_name(Opcode op);

struct Instruction {
  Opcode op = Opcode::kBarrier;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;

  std::string to_string() const;
};

struct ExecutionStats {
  std::int64_t instructions = 0;
  std::int64_t tiles_configured = 0;
  std::int64_t layers_executed = 0;
  std::int64_t input_bytes = 0;
  std::int64_t output_bytes = 0;
  std::int64_t mvms_issued = 0;
  std::int64_t merges = 0;
  std::int64_t barriers = 0;
};

/// Lowers one network configuration into a GC program:
/// configure + program every occupied tile, then per layer (in order)
/// load-input, execute on each of its tiles, merge, store-output, barrier.
std::vector<Instruction> compile_program(
    const std::vector<nn::LayerSpec>& layers,
    const mapping::AllocationResult& allocation);

/// Decodes and validates a program. Throws std::invalid_argument on any
/// protocol violation (use of an unconfigured tile, executing an
/// unprogrammed layer, merging before execution, double configuration, ...).
ExecutionStats execute_program(const std::vector<Instruction>& program);

}  // namespace autohet::reram
