#include "reram/bank.hpp"

#include <cmath>

namespace autohet::reram {

namespace {

/// Hilbert curve index -> (x, y) on a 2^order x 2^order grid (classic
/// iterative d2xy).
std::pair<std::int64_t, std::int64_t> hilbert_d2xy(std::int64_t side,
                                                   std::int64_t d) {
  std::int64_t rx = 0, ry = 0, x = 0, y = 0;
  std::int64_t t = d;
  for (std::int64_t s = 1; s < side; s *= 2) {
    rx = 1 & (t / 2);
    ry = 1 & (t ^ rx);
    if (ry == 0) {  // rotate quadrant
      if (rx == 1) {
        x = s - 1 - x;
        y = s - 1 - y;
      }
      std::swap(x, y);
    }
    x += s * rx;
    y += s * ry;
    t /= 4;
  }
  return {x, y};
}

std::int64_t next_pow2(std::int64_t n) {
  std::int64_t p = 1;
  while (p < n) p *= 2;
  return p;
}

}  // namespace

std::pair<std::int64_t, std::int64_t> slot_position(const BankSpec& bank,
                                                    PlacementPolicy policy,
                                                    std::int64_t index) {
  bank.validate();
  AUTOHET_CHECK(index >= 0 && index < bank.tiles(), "slot index out of range");
  switch (policy) {
    case PlacementPolicy::kRowMajor:
      return {index / bank.tile_cols, index % bank.tile_cols};
    case PlacementPolicy::kSnake: {
      const std::int64_t row = index / bank.tile_cols;
      const std::int64_t col = index % bank.tile_cols;
      return {row, (row % 2 == 0) ? col : bank.tile_cols - 1 - col};
    }
    case PlacementPolicy::kHilbert: {
      // Walk the Hilbert curve over the enclosing power-of-two square and
      // skip points outside the actual grid, so `index` maps to the
      // index-th in-grid curve point.
      const std::int64_t side =
          next_pow2(std::max(bank.tile_rows, bank.tile_cols));
      std::int64_t seen = -1;
      for (std::int64_t d = 0; d < side * side; ++d) {
        const auto [x, y] = hilbert_d2xy(side, d);
        if (x >= bank.tile_rows || y >= bank.tile_cols) continue;
        if (++seen == index) return {x, y};
      }
      AUTOHET_CHECK(false, "hilbert enumeration exhausted (internal error)");
    }
  }
  return {0, 0};  // unreachable
}

PlacementResult place_tiles(const std::vector<mapping::Tile>& tiles,
                            const ChipSpec& chip, PlacementPolicy policy) {
  chip.validate();
  PlacementResult result;
  std::int64_t cursor = 0;  // global tile slot index across banks
  const std::int64_t per_bank = chip.bank.tiles();

  // Hilbert slot positions are O(side^2) to enumerate; precompute the
  // in-bank order once and reuse it for every bank.
  std::vector<std::pair<std::int64_t, std::int64_t>> order;
  if (policy == PlacementPolicy::kHilbert) {
    const std::int64_t side =
        next_pow2(std::max(chip.bank.tile_rows, chip.bank.tile_cols));
    order.reserve(static_cast<std::size_t>(per_bank));
    for (std::int64_t d = 0;
         d < side * side &&
         static_cast<std::int64_t>(order.size()) < per_bank;
         ++d) {
      const auto [x, y] = hilbert_d2xy(side, d);
      if (x < chip.bank.tile_rows && y < chip.bank.tile_cols) {
        order.emplace_back(x, y);
      }
    }
  }

  for (const auto& tile : tiles) {
    if (tile.released) continue;
    AUTOHET_CHECK(cursor < chip.capacity_tiles(),
                  "chip capacity exhausted: needs more than " +
                      std::to_string(chip.capacity_tiles()) + " tiles");
    TilePlacement p;
    p.tile_id = tile.id;
    p.bank = cursor / per_bank;
    const std::int64_t in_bank = cursor % per_bank;
    if (policy == PlacementPolicy::kHilbert) {
      p.row = order[static_cast<std::size_t>(in_bank)].first;
      p.col = order[static_cast<std::size_t>(in_bank)].second;
    } else {
      const auto [row, col] = slot_position(chip.bank, policy, in_bank);
      p.row = row;
      p.col = col;
    }
    result.placements.push_back(p);
    ++cursor;
  }
  result.tiles_placed = cursor;
  result.banks_used = cursor == 0 ? 0 : (cursor - 1) / per_bank + 1;
  result.chip_occupancy =
      static_cast<double>(cursor) / static_cast<double>(chip.capacity_tiles());
  result.free_tiles = chip.capacity_tiles() - cursor;
  return result;
}

std::int64_t tile_distance(const TilePlacement& a, const TilePlacement& b,
                           std::int64_t inter_bank_penalty) {
  const std::int64_t hops =
      std::llabs(a.row - b.row) + std::llabs(a.col - b.col);
  if (a.bank == b.bank) return hops;
  return hops + inter_bank_penalty * std::llabs(a.bank - b.bank);
}

}  // namespace autohet::reram
