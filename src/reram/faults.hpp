// ReRAM non-ideality model: stuck-at faults, conductance variation and
// retention drift, seeded and deterministic.
//
// The paper evaluates an *ideal* device; multi-bit ReRAM cells are precisely
// the ones most vulnerable to conductance variation and stuck-at defects
// (Hamun, arXiv:2502.01502; CIM-Explorer, arXiv:2505.14303). This module
// makes the fabric's non-ideality a first-class, reproducible axis:
//
//   * Storage model. A logical 8-bit weight w is stored offset-binary
//     (v = w + 128) across `8 / cell_bits` physical cells ("planes") of
//     `cell_bits` bits each — the same encoding the multilevel datapath
//     (`LogicalCrossbar::mvm_multilevel`) computes on. Plane p carries the
//     level v_p = (v >> p·b) & (2^b − 1) with weight-space scale 2^{p·b}.
//
//   * Stuck-at faults. Every physical cell is independently stuck-at-0
//     (level forced to 0, HRS) with probability `stuck_at_zero_rate` and
//     stuck-at-1 (level forced to 2^b − 1, LRS) with probability
//     `stuck_at_one_rate`. The fault map is a pure function of
//     (seed, crossbar_id, cell index): same seed ⇒ same map.
//
//   * Conductance variation. Each programmed level is perturbed
//     lognormally, v' = v · exp(σ·N(0,1)), then rounded back to the level
//     grid. Because plane p re-enters the weight with scale 2^{p·b} and
//     b-bit cells space 2^b − 1 levels across the same conductance window,
//     the *effective* weight-space error grows with bits per cell:
//     σ_w = σ · A(b) with A(b)² = E[v²] · Σ_p 4^{p·b} (see weight_sigma()).
//
//   * Retention drift. Conductance decays with time as the deterministic
//     power law g(t) = g0 · (1 + t)^{−ν} (t in seconds, ν = drift_nu),
//     applied to every nonzero level before rounding.
//
// Faults and programming variation are burned in at weight-programming time
// (`LogicalCrossbar::apply_faults`, called by `MappedLayer`); cycle-to-cycle
// read variation (`read_sigma`) is sampled at MVM time on the integer
// datapath. A default `FaultConfig{}` is ideal: no RNG is consumed and every
// output stays bit-identical to the fault-free build (tested).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "mapping/layer_mapping.hpp"
#include "nn/layer.hpp"

namespace autohet::reram {

/// Device non-ideality knobs. Default-constructed = ideal device.
struct FaultConfig {
  double stuck_at_zero_rate = 0.0;  ///< per physical cell, Bernoulli
  double stuck_at_one_rate = 0.0;   ///< per physical cell, Bernoulli
  double program_sigma = 0.0;  ///< lognormal σ of programmed conductance
  double read_sigma = 0.0;     ///< lognormal σ per MVM read (cycle-to-cycle)
  double drift_time_s = 0.0;   ///< retention time since programming; 0 = off
  double drift_nu = 0.0;       ///< drift exponent ν (typically ~0.1)
  int cell_bits = 1;           ///< bits per physical cell (1, 2, 4 or 8)
  std::uint64_t seed = 0xfa0175eedULL;  // "faults-eed"

  /// True when every non-ideality is off; the fault machinery then never
  /// touches an RNG and programmed arrays stay bit-identical.
  bool ideal() const noexcept {
    return stuck_at_zero_rate == 0.0 && stuck_at_one_rate == 0.0 &&
           program_sigma == 0.0 && read_sigma == 0.0 &&
           (drift_time_s == 0.0 || drift_nu == 0.0);
  }

  /// Derives the trial-t configuration for Monte-Carlo sweeps: identical
  /// rates, independent seed stream.
  FaultConfig for_trial(std::uint64_t trial) const noexcept;

  void validate() const;

  bool operator==(const FaultConfig&) const = default;
};

/// Aggregate counts of one fault-map application (per crossbar, per layer
/// or per fabric depending on who reports them).
struct FaultMapStats {
  std::int64_t physical_cells = 0;  ///< cells visited (rows·cols·planes)
  std::int64_t stuck_at_zero = 0;
  std::int64_t stuck_at_one = 0;
  std::int64_t weights_changed = 0;  ///< logical weights whose value moved

  FaultMapStats& operator+=(const FaultMapStats& o) noexcept {
    physical_cells += o.physical_cells;
    stuck_at_zero += o.stuck_at_zero;
    stuck_at_one += o.stuck_at_one;
    weights_changed += o.weights_changed;
    return *this;
  }
};

/// Wilson score interval for a Bernoulli proportion: the set of p whose
/// z-score test would not reject `successes` hits in `n` draws. Unlike the
/// normal approximation it stays inside [0, 1] and behaves sanely at
/// p̂ ∈ {0, 1}, which is exactly where fault sweeps live (rate-0 points
/// agree on every sample).
struct WilsonInterval {
  double lower = 0.0;
  double upper = 1.0;
  double halfwidth() const noexcept { return 0.5 * (upper - lower); }
};

/// z for the two-sided 95% interval — the sequential stopping rule's
/// confidence level.
inline constexpr double kWilsonZ95 = 1.959963984540054;

/// Wilson interval on `successes` hits in `n` draws (n <= 0 ⇒ [0, 1]).
/// Takes doubles so callers can pass a design-effect-adjusted effective
/// sample size (see SequentialStopper::interval).
WilsonInterval wilson_interval(double successes, double n,
                               double z = kWilsonZ95);

/// Monte-Carlo trial budget: how many fault-map trials a robustness
/// evaluation spends. The default `kFixed` mode runs exactly the configured
/// trial count — reports stay byte-identical to the pre-budget code.
/// `kAdaptive` runs trials in chunks and stops as soon as the Wilson CI
/// half-width of the pooled per-sample agreement falls to `ci_halfwidth`
/// (never before `min_trials`, never past the cap), spending the full
/// budget only on points whose accuracy is genuinely uncertain. Executed
/// trials use the same `FaultConfig::for_trial` seed stream as fixed mode,
/// so an adaptive run that stops after T trials reports exactly the fixed-
/// mode statistics of its first T trials (a prefix, not an approximation).
struct RobustnessBudget {
  enum class Mode { kFixed, kAdaptive };
  Mode mode = Mode::kFixed;
  /// Adaptive target: stop once the pooled agreement CI half-width is ≤
  /// this (95% Wilson).
  double ci_halfwidth = 0.05;
  /// Adaptive clamps: never stop before `min_trials`; `max_trials` caps the
  /// spend (0 = use RobustnessOptions::trials as the cap).
  int min_trials = 2;
  int max_trials = 0;
  /// Trials evaluated between CI checks after `min_trials` — stopping
  /// decisions happen at chunk boundaries only, so the executed trial count
  /// is a pure function of the sample outcomes, never of thread scheduling.
  int chunk_trials = 1;
  /// Adaptive-mode cross-rate cache spanning: serve zero-stuck-rate grid
  /// points by replaying the shared variation-only recording (see
  /// TrialFabricCache) instead of re-burning a fresh fabric per trial.
  /// Statistically equivalent, *not* byte-identical — a zero-rate burn-in
  /// skips the stuck draws and is a different RNG stream — so it never
  /// applies in kFixed mode.
  bool span_zero_rate = true;

  void validate() const;
  bool operator==(const RobustnessBudget&) const = default;
};

/// The sequential stopping rule, factored out of the Monte-Carlo loop so
/// its statistics are unit-testable on raw Bernoulli streams. Feed it one
/// completed trial at a time (`add_trial`); `next_boundary` yields the
/// trial index to run up to before the next decision, and `should_stop`
/// answers the decision. Deterministic: the stop point depends only on the
/// budget and the per-trial success counts.
///
/// Two intervals, two jobs:
///  - `pooled_interval()` treats the n = trials·samples outcomes as
///    independent Bernoulli draws. `should_stop` targets its half-width —
///    this is the budget knob: spend trials until the pooled agreement
///    estimate is tight, then stop.
///  - `interval()` is *cluster-robust* and is what reports carry. Samples
///    within one trial share one fault map, so they are positively
///    correlated and the pooled CI is anti-conservative exactly at the
///    bimodal grid points (a fabric either survives or collapses). The
///    stopper estimates the intra-trial correlation ρ from the
///    between-trial variance of per-trial proportions (moment estimator:
///    Var(p_t) = p(1−p)/m · (1 + (m−1)ρ)), inflates the variance by the
///    Kish design effect DEFF = 1 + (m−1)·ρ̂ and evaluates the Wilson
///    interval at the effective sample size n/DEFF. Consistent trials
///    (ρ̂ = 0) keep the full n; fully clustered trials degrade to one
///    effective draw per trial. At a strongly clustered point the adaptive
///    run stops on the pooled target (bounding cost) while the reported
///    robust CI stays honestly wide — adaptivity never overstates the
///    precision actually achieved.
class SequentialStopper {
 public:
  /// `requested` is the trial cap (RobustnessOptions::trials when the
  /// budget leaves max_trials at 0).
  SequentialStopper(const RobustnessBudget& budget, int requested);

  /// Records one completed trial's pooled sample outcomes.
  void add_trial(std::int64_t successes, std::int64_t samples);

  /// First decision boundary after `executed` trials: min_trials for the
  /// opening chunk, then chunk_trials at a time, clamped to the cap.
  int next_boundary(int executed) const noexcept;

  /// True once the pooled CI half-width target is met (at or past
  /// min_trials) or the trial cap is exhausted.
  bool should_stop() const noexcept;

  /// True when should_stop() fired on the CI target rather than the cap.
  bool stopped_early() const noexcept {
    return should_stop() && trials_ < cap_;
  }

  /// Plain 95% Wilson CI on the pooled per-sample agreement — the stopping
  /// target (see above).
  WilsonInterval pooled_interval() const;
  /// Cluster-robust 95% Wilson CI on the pooled agreement (see above) —
  /// the interval reports carry.
  WilsonInterval interval() const;
  /// The estimated Kish design effect 1 + (m−1)·ρ̂ (1 until two trials
  /// with between-trial spread have been fed).
  double design_effect() const noexcept;
  int trials() const noexcept { return trials_; }
  int cap() const noexcept { return cap_; }

 private:
  RobustnessBudget budget_;
  int cap_ = 0;        ///< effective max trials
  int min_ = 0;        ///< effective min trials (≤ cap)
  int trials_ = 0;     ///< trials fed so far
  std::int64_t successes_ = 0;
  std::int64_t n_ = 0;   ///< pooled sample draws
  std::int64_t m_ = 0;   ///< samples per trial (constant across trials)
  double sum_p_ = 0.0;   ///< Σ per-trial proportions
  double sum_p2_ = 0.0;  ///< Σ squared per-trial proportions
};

/// Monte-Carlo robustness of one configuration (accuracy-under-faults over
/// N seeded trials). Produced by `monte_carlo_robustness` (functional.hpp)
/// and `EvaluationEngine::evaluate_robustness`.
struct RobustnessReport {
  int trials = 0;            ///< trials actually executed
  int trials_requested = 0;  ///< the configured budget (== trials in kFixed)
  bool early_stopped = false;  ///< adaptive CI target met before the cap
  /// 95% Wilson CI on the pooled per-sample agreement across the executed
  /// trials — the quantity the adaptive stopping rule resolves.
  double accuracy_ci_lower = 0.0;
  double accuracy_ci_upper = 1.0;
  int samples = 0;
  double mean_accuracy = 0.0;    ///< mean argmax agreement vs ideal fabric
  double stddev_accuracy = 0.0;  ///< across trials (population stddev)
  double min_accuracy = 0.0;
  double max_accuracy = 0.0;
  double mean_logit_error = 0.0;  ///< mean max-|logit diff| vs ideal fabric
  /// Per-mappable-layer mean relative output error — where the fault
  /// energy enters the network.
  std::vector<double> layer_error;
  FaultMapStats fault_stats;  ///< aggregated over every trial fabric
};

/// One stuck-at draw candidate captured by a recording burn-in pass
/// (FaultModel::apply_recording): the raw 53-bit uniform draw `k`, the flat
/// physical-plane index it targets ((row·cols + col)·planes + plane) and the
/// originally programmed weight of the owning logical cell (needed to
/// recompute weights_changed exactly on replay). Only draws below
/// FaultModel::kRecordCap53 are kept, so at sweep-scale rates the list is a
/// few candidates per thousand cells.
struct StuckCandidate {
  std::uint64_t k = 0;       ///< raw uniform_bits53 draw
  std::uint32_t plane = 0;   ///< (row·cols + col)·planes + plane
  std::int8_t original = 0;  ///< programmed weight before any perturbation
};

/// Seeded sampler that burns a FaultConfig into programmed weight arrays.
/// Stateless across calls: every perturbation is a pure function of
/// (config.seed, crossbar_id), so fabrics rebuilt with the same seed see
/// the same fault maps.
class FaultModel {
 public:
  explicit FaultModel(const FaultConfig& config);

  const FaultConfig& config() const noexcept { return config_; }
  bool ideal() const noexcept { return config_.ideal(); }

  /// Applies stuck-at faults, programming variation and drift to a full
  /// rows×cols two's-complement weight array (row-major, stride
  /// `row_stride`). Deterministic in (config.seed, crossbar_id).
  /// Dispatches to a stream-exact fast kernel when eligible (no drift):
  /// cells, stats and the consumed RNG stream are bit-identical to
  /// apply_reference (tested), only the wall time differs.
  FaultMapStats apply(std::span<std::int8_t> cells, std::int64_t rows,
                      std::int64_t cols, std::int64_t row_stride,
                      std::uint64_t crossbar_id) const;

  /// The straightforward per-cell path (perturb_weight per logical weight).
  /// Retained as the equivalence oracle for the fast kernel and as the
  /// scalar-baseline burn-in for KernelPolicy::kScalar fabrics.
  FaultMapStats apply_reference(std::span<std::int8_t> cells,
                                std::int64_t rows, std::int64_t cols,
                                std::int64_t row_stride,
                                std::uint64_t crossbar_id) const;

  /// Perturbs one weight (used by apply_reference(); exposed for tests).
  std::int8_t perturb_weight(std::int8_t weight, common::Rng& rng,
                             FaultMapStats& stats) const;

  /// Recording cap: stuck draws with k < 2⁵³/16 are captured by
  /// apply_recording, so any config whose summed stuck rate is ≤ 1/16 can be
  /// replayed from one recording (the sweep grids top out around 1e-2).
  static constexpr std::uint64_t kRecordCap53 = std::uint64_t{1} << 49;

  /// True when this config's burn-in can be recorded and later replayed:
  /// fast-kernel eligible (no drift), stuck draws consumed (some stuck rate
  /// > 0 — a zero-rate stream skips the draws entirely and is a different
  /// stream) and thresholds within the recording cap.
  bool record_eligible() const noexcept {
    return fast_eligible_ && stuck_sum_thr53_ > 0 &&
           stuck_sum_thr53_ <= kRecordCap53;
  }

  /// Recording burn-in: consumes the RNG stream exactly as apply() does for
  /// this config, applies programming variation to `cells`, but *records*
  /// every stuck draw below kRecordCap53 into `out` (appended in stream
  /// order) instead of applying any stuck override. The returned stats carry
  /// the variation-only counts (stuck counts zero); replay_stuck() then
  /// completes the burn for any rate pair within the cap. The key property
  /// (tested): the burn-in stream position never depends on the stuck *rate
  /// values*, so one recording serves every nonzero-rate config sharing
  /// (seed, program_sigma, cell_bits). Requires record_eligible().
  FaultMapStats apply_recording(std::span<std::int8_t> cells,
                                std::int64_t rows, std::int64_t cols,
                                std::int64_t row_stride,
                                std::uint64_t crossbar_id,
                                std::vector<StuckCandidate>& out) const;

  /// Completes a recorded burn on a post-variation clone: forces the planes
  /// whose recorded draw falls under this config's thresholds and returns
  /// the *delta* stats (stuck counts plus the weights_changed correction
  /// relative to the recording's variation-only count; physical_cells 0, so
  /// recording stats + delta == apply() stats exactly). `cells` must hold
  /// the recording's post-variation state; `hits` must be the recording's
  /// candidate list for the same geometry.
  FaultMapStats replay_stuck(std::span<std::int8_t> cells, std::int64_t cols,
                             std::int64_t row_stride,
                             std::span<const StuckCandidate> hits) const;

  /// Effective weight-space rms error per unit σ of per-level lognormal
  /// noise: A(b) = sqrt(E[v²] · Σ_p 4^{p·b}) with v uniform over the level
  /// grid. Grows with cell_bits — multi-bit cells pack tighter levels, so
  /// the same conductance spread costs more weight-space error.
  static double level_noise_amplification(int cell_bits) noexcept;

  /// rms weight perturbation (in weight LSBs) the configured read noise
  /// injects per MVM; 0 when read_sigma == 0.
  double read_noise_weight_sigma() const noexcept {
    return read_sigma_weights_;
  }

 private:
  FaultMapStats apply_fast(std::span<std::int8_t> cells, std::int64_t rows,
                           std::int64_t cols, std::int64_t row_stride,
                           common::Rng& rng) const;
  /// apply_fast body with the plane count baked in at compile time so the
  /// per-plane loops fully unroll (defined in faults.cpp; instantiated for
  /// every legal 8 / cell_bits). With kRecord the stuck draws are captured
  /// into `rec` instead of applied (the apply_recording path); the branch is
  /// compile-time, so the hot non-recording kernel is unchanged.
  template <int kPlanes, bool kRecord>
  FaultMapStats apply_fast_impl(std::span<std::int8_t> cells,
                                std::int64_t rows, std::int64_t cols,
                                std::int64_t row_stride, common::Rng& rng,
                                std::vector<StuckCandidate>* rec) const;

  FaultConfig config_;
  int planes_ = 8;           ///< 8 / cell_bits
  unsigned level_mask_ = 1;  ///< 2^cell_bits − 1
  double drift_factor_ = 1.0;
  double read_sigma_weights_ = 0.0;
  // Fast-kernel precompute (see apply_fast): integer stuck-at thresholds on
  // the raw 53-bit uniform draw, and per-level polar-rejection safety bounds
  // s_safe[L] — when the accepted polar s exceeds s_safe[L] the lognormal
  // perturbation provably cannot move level L off its grid point, so the
  // sqrt/log/exp are skipped while the RNG stream advances identically.
  bool fast_eligible_ = false;
  std::uint64_t stuck_zero_thr53_ = 0;  ///< u < z₀ ⟺ bits53 < this
  std::uint64_t stuck_sum_thr53_ = 0;   ///< u < z₀+z₁ ⟺ bits53 < this
  std::vector<double> level_s_safe_;    ///< indexed by level, [0..mask]
};

/// The canonical recording config for cross-rate cache spanning: `config`
/// with its stuck rates replaced by the largest recordable rate (summed
/// threshold == FaultModel::kRecordCap53, i.e. 2⁻⁴). A recording burn
/// captures *every* stuck draw below the cap regardless of the rate values,
/// so the probe's recording is identical to the one any in-cap nonzero-rate
/// config sharing (seed, program_sigma, cell_bits) would produce — it exists
/// so a zero-stuck-rate grid point (whose own burn-in skips the stuck draws
/// entirely and is therefore not recordable) can join the shared recorded
/// fabric family. Replaying it at zero rates forces no candidates.
FaultConfig spanning_probe(const FaultConfig& config) noexcept;

/// Closed-form per-layer fault vulnerability in [0, 1]: the expected
/// relative MVM output error of `layer` mapped as `m` under `faults`.
///
///   ε_cell = sqrt(p₀ + p₁ + σ_prog² + σ_read² + drift_loss²) · A(b) / 127
///   ε_layer = min(1, ε_cell · sqrt(row_blocks))
///
/// The √row_blocks factor models the adder-tree merge of independently
/// converted partial sums: each row block contributes its own
/// conversion-referred error, so configurations that split a layer across
/// more, smaller crossbars accumulate more of it. This is the robustness
/// counterweight to utilization (small crossbars pack tighter but fragment
/// the partial sums), and it is what the robustness-aware reward trades.
/// Returns 0 for an ideal config.
double analytic_layer_vulnerability(const mapping::LayerMapping& m,
                                    const FaultConfig& faults);

/// Network-level aggregation: rms over the per-layer vulnerabilities,
/// clamped to [0, 1]. Both `evaluate_network` and the `EvaluationEngine`
/// use exactly this formula so their reports stay bit-identical.
double aggregate_network_vulnerability(const std::vector<double>& layer_vuln);

/// Convenience: maps every layer and aggregates, without building reports.
double analytic_network_vulnerability(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const FaultConfig& faults);

}  // namespace autohet::reram
