#include "reram/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace autohet::reram {

PipelineReport evaluate_pipeline(const plan::DeploymentPlan& plan,
                                 const std::vector<std::int64_t>& replication) {
  OBS_SPAN("evaluate_pipeline");
  plan.validate();
  AUTOHET_CHECK(replication.empty() || replication.size() == plan.layers.size(),
                "replication must be empty or one entry per layer");
  const std::vector<plan::LayerCost> costs = plan::plan_layer_costs(plan);
  // Graph dependency edges; for v1 chains the critical-path recursion
  // below reduces to the historical left-to-right interval sum exactly.
  const plan::PlanDataflow flow = plan::plan_dataflow(plan);
  PipelineReport report;
  report.stages.reserve(costs.size());
  std::vector<double> fill(costs.size(), 0.0);
  for (std::size_t k = 0; k < costs.size(); ++k) {
    const std::int64_t rep = replication.empty() ? 1 : replication[k];
    AUTOHET_CHECK(rep >= 1, "replication factors must be >= 1");
    StageReport stage;
    stage.layer = static_cast<std::int64_t>(k);
    stage.serial_latency_ns = costs[k].latency_ns;
    stage.replication = rep;
    stage.interval_ns = costs[k].latency_ns / static_cast<double>(rep);
    stage.extra_tiles = (rep - 1) * costs[k].tiles;
    report.bottleneck_interval_ns =
        std::max(report.bottleneck_interval_ns, stage.interval_ns);
    // First-inference fill latency along the dependency critical path.
    double ready = 0.0;
    for (const plan::LayerDep& dep : flow.deps[k]) {
      ready = std::max(
          ready, fill[static_cast<std::size_t>(dep.layer)] + dep.delay_ns);
    }
    fill[k] = ready + stage.interval_ns;
    report.fill_latency_ns =
        std::max(report.fill_latency_ns, fill[k] + flow.tail_delay_ns[k]);
    report.total_extra_tiles += stage.extra_tiles;
    report.stages.push_back(stage);
  }
  if (report.bottleneck_interval_ns > 0.0) {
    report.throughput_inferences_per_s =
        1e9 / report.bottleneck_interval_ns;
  }
  return report;
}

PipelineReport evaluate_pipeline(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config,
    const std::vector<std::int64_t>& replication) {
  return evaluate_pipeline(plan::compile_plan("", layers, shapes, config),
                           replication);
}

std::vector<std::int64_t> balance_replication(const plan::DeploymentPlan& plan,
                                              std::int64_t extra_tile_budget) {
  OBS_SPAN("balance_replication");
  plan.validate();
  AUTOHET_CHECK(extra_tile_budget >= 0, "budget must be non-negative");

  const std::vector<plan::LayerCost> costs = plan::plan_layer_costs(plan);
  std::vector<std::int64_t> replication(costs.size(), 1);
  std::int64_t budget = extra_tile_budget;
  for (;;) {
    // Find the bottleneck stage.
    std::size_t worst = 0;
    double worst_interval = -1.0;
    for (std::size_t k = 0; k < costs.size(); ++k) {
      const double interval =
          costs[k].latency_ns / static_cast<double>(replication[k]);
      if (interval > worst_interval) {
        worst_interval = interval;
        worst = k;
      }
    }
    if (costs[worst].tiles > budget) break;  // cannot afford another copy
    budget -= costs[worst].tiles;
    ++replication[worst];
  }
  return replication;
}

std::vector<std::int64_t> balance_replication(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config, std::int64_t extra_tile_budget) {
  return balance_replication(plan::compile_plan("", layers, shapes, config),
                             extra_tile_budget);
}

}  // namespace autohet::reram
