#include "reram/pipeline.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "mapping/layer_mapping.hpp"

namespace autohet::reram {

namespace {

/// Serial latency and tile cost of one layer copy under the given config.
struct LayerCost {
  double latency_ns = 0.0;
  std::int64_t tiles = 0;
};

LayerCost layer_cost(const nn::LayerSpec& layer,
                     const mapping::CrossbarShape& shape,
                     const AcceleratorConfig& config) {
  const auto m = mapping::map_layer(layer, shape);
  const std::int64_t tiles =
      (m.logical_crossbars() + config.pes_per_tile - 1) / config.pes_per_tile;
  const auto report = evaluate_layer(layer, m, tiles, config.device);
  return {report.latency_ns, tiles};
}

}  // namespace

PipelineReport evaluate_pipeline(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config,
    const std::vector<std::int64_t>& replication) {
  config.validate();
  AUTOHET_CHECK(layers.size() == shapes.size(),
                "layers and shapes must be the same length");
  AUTOHET_CHECK(replication.empty() || replication.size() == layers.size(),
                "replication must be empty or one entry per layer");
  PipelineReport report;
  report.stages.reserve(layers.size());
  for (std::size_t k = 0; k < layers.size(); ++k) {
    const std::int64_t rep =
        replication.empty() ? 1 : replication[k];
    AUTOHET_CHECK(rep >= 1, "replication factors must be >= 1");
    const LayerCost cost = layer_cost(layers[k], shapes[k], config);
    StageReport stage;
    stage.layer = static_cast<std::int64_t>(k);
    stage.serial_latency_ns = cost.latency_ns;
    stage.replication = rep;
    stage.interval_ns = cost.latency_ns / static_cast<double>(rep);
    stage.extra_tiles = (rep - 1) * cost.tiles;
    report.bottleneck_interval_ns =
        std::max(report.bottleneck_interval_ns, stage.interval_ns);
    report.fill_latency_ns += stage.interval_ns;
    report.total_extra_tiles += stage.extra_tiles;
    report.stages.push_back(stage);
  }
  if (report.bottleneck_interval_ns > 0.0) {
    report.throughput_inferences_per_s =
        1e9 / report.bottleneck_interval_ns;
  }
  return report;
}

std::vector<std::int64_t> balance_replication(
    const std::vector<nn::LayerSpec>& layers,
    const std::vector<mapping::CrossbarShape>& shapes,
    const AcceleratorConfig& config, std::int64_t extra_tile_budget) {
  config.validate();
  AUTOHET_CHECK(layers.size() == shapes.size(),
                "layers and shapes must be the same length");
  AUTOHET_CHECK(extra_tile_budget >= 0, "budget must be non-negative");

  std::vector<LayerCost> costs;
  costs.reserve(layers.size());
  for (std::size_t k = 0; k < layers.size(); ++k) {
    costs.push_back(layer_cost(layers[k], shapes[k], config));
  }
  std::vector<std::int64_t> replication(layers.size(), 1);
  std::int64_t budget = extra_tile_budget;
  for (;;) {
    // Find the bottleneck stage.
    std::size_t worst = 0;
    double worst_interval = -1.0;
    for (std::size_t k = 0; k < layers.size(); ++k) {
      const double interval =
          costs[k].latency_ns / static_cast<double>(replication[k]);
      if (interval > worst_interval) {
        worst_interval = interval;
        worst = k;
      }
    }
    if (costs[worst].tiles > budget) break;  // cannot afford another copy
    budget -= costs[worst].tiles;
    ++replication[worst];
  }
  return replication;
}

}  // namespace autohet::reram
