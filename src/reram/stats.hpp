// Hardware accounting structures produced by the behavioral model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/crossbar_shape.hpp"

namespace autohet::reram {

/// Energy per component class, in nanojoules.
struct EnergyBreakdown {
  double adc_nj = 0.0;
  double dac_nj = 0.0;
  double cell_nj = 0.0;
  double shift_add_nj = 0.0;
  double buffer_nj = 0.0;

  double total_nj() const noexcept {
    return adc_nj + dac_nj + cell_nj + shift_add_nj + buffer_nj;
  }
  EnergyBreakdown& operator+=(const EnergyBreakdown& o) noexcept {
    adc_nj += o.adc_nj;
    dac_nj += o.dac_nj;
    cell_nj += o.cell_nj;
    shift_add_nj += o.shift_add_nj;
    buffer_nj += o.buffer_nj;
    return *this;
  }
};

/// Area per component class, in square micrometres.
struct AreaBreakdown {
  double crossbar_um2 = 0.0;
  double adc_um2 = 0.0;
  double dac_um2 = 0.0;
  double shift_add_um2 = 0.0;
  double tile_overhead_um2 = 0.0;

  double total_um2() const noexcept {
    return crossbar_um2 + adc_um2 + dac_um2 + shift_add_um2 +
           tile_overhead_um2;
  }
  AreaBreakdown& operator+=(const AreaBreakdown& o) noexcept {
    crossbar_um2 += o.crossbar_um2;
    adc_um2 += o.adc_um2;
    dac_um2 += o.dac_um2;
    shift_add_um2 += o.shift_add_um2;
    tile_overhead_um2 += o.tile_overhead_um2;
    return *this;
  }
};

/// Per-layer hardware report for one inference pass.
struct LayerReport {
  mapping::CrossbarShape shape;       ///< crossbar type chosen for the layer
  std::int64_t logical_crossbars = 0;
  std::int64_t adc_instances = 0;     ///< logical ADC count (Fig. 5 metric)
  std::int64_t tiles = 0;             ///< exclusive tiles before sharing
  std::int64_t mvm_invocations = 0;
  double utilization = 0.0;           ///< Eq. 4, in [0, 1]
  EnergyBreakdown energy;
  double latency_ns = 0.0;
  /// Closed-form fault vulnerability in [0, 1] under the accelerator's
  /// FaultConfig (reram/faults.hpp); 0 for an ideal device.
  double fault_vulnerability = 0.0;
};

/// One non-mappable graph op (residual add, concat, standalone activation,
/// global average pool) accounted NEON-style on the tile vector unit.
/// Only DAG-shaped networks have these: chain graphs produce none, so
/// legacy linear-chain reports carry an empty list and unchanged totals.
struct GraphOpReport {
  std::int64_t node = 0;         ///< node id in the computation graph
  std::string op;                ///< nn::op_kind_name of the node
  std::int64_t elements = 0;     ///< elementwise ALU work items
  std::int64_t bytes_moved = 0;  ///< operand + result buffer traffic
  EnergyBreakdown energy;        ///< shift_add (ALU) + buffer components
  double latency_ns = 0.0;
};

/// Whole-network hardware report for one inference pass.
struct NetworkReport {
  std::vector<LayerReport> layers;
  /// Non-mappable graph ops of a DAG network, in topological node order;
  /// their energy/latency are already folded into the totals below. Empty
  /// for chain-shaped (legacy linear) networks.
  std::vector<GraphOpReport> graph_ops;
  EnergyBreakdown energy;
  AreaBreakdown area;
  double latency_ns = 0.0;            ///< sum of layer latencies
  double utilization = 0.0;           ///< system-level (tile-granular), [0,1]
  std::int64_t occupied_tiles = 0;
  std::int64_t empty_crossbars = 0;
  /// Network-level fault vulnerability in [0, 1]: RMS aggregation of the
  /// per-layer values (aggregate_network_vulnerability); 0 when ideal.
  double fault_vulnerability = 0.0;

  /// Paper §2.2 RUE metric: utilization (percent, as plotted in the paper's
  /// figures) over energy (nanojoules).
  double rue() const noexcept {
    const double e = energy.total_nj();
    return e > 0.0 ? (utilization * 100.0) / e : 0.0;
  }
};

}  // namespace autohet::reram
