#include "reram/programming.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace autohet::reram {

ProgrammingReport evaluate_programming(
    const mapping::AllocationResult& allocation, const DeviceParams& device,
    const ProgrammingParams& params, const FaultConfig& faults) {
  device.validate();
  faults.validate();
  AUTOHET_CHECK(params.write_energy_pj_per_cell > 0.0 &&
                    params.write_latency_ns > 0.0 &&
                    params.verify_pulses >= 1.0 &&
                    params.fault_retry_pulses >= 0.0,
                "invalid programming parameters");
  ProgrammingReport report;
  const double planes = device.bit_planes();
  // Stuck-at cells live in the FaultConfig's physical layout: one cell per
  // cell_bits-wide plane of the offset-binary weight (reram/faults.hpp).
  const double stuck_rate =
      faults.stuck_at_zero_rate + faults.stuck_at_one_rate;
  const double fault_planes = 8.0 / static_cast<double>(faults.cell_bits);
  for (const auto& layer : allocation.layers) {
    const auto& m = layer.mapping;
    // Physical cells: every useful cell exists once per bit plane.
    const std::int64_t cells = static_cast<std::int64_t>(
        planes * static_cast<double>(m.useful_cells));
    report.cells_programmed += cells;
    report.energy_nj += static_cast<double>(cells) * params.verify_pulses *
                        params.write_energy_pj_per_cell * 1e-3;
    // Crossbars (and their bit planes) program in parallel; rows within a
    // crossbar serially. The busiest crossbar of this layer writes all its
    // occupied rows: at most one full row block's worth of the unfolded
    // weight-matrix height.
    const std::int64_t serial_rows = std::clamp<std::int64_t>(
        (m.weight_rows + m.row_blocks - 1) / m.row_blocks, 1, m.shape.rows);
    double layer_latency =
        params.row_parallel
            ? static_cast<double>(serial_rows) * params.verify_pulses *
                  params.write_latency_ns
            : static_cast<double>(serial_rows) *
                  static_cast<double>(m.shape.cols) * params.verify_pulses *
                  params.write_latency_ns;
    if (stuck_rate > 0.0) {
      // Expected stuck cells among this layer's useful weights: the write
      // driver burns fault_retry_pulses extra verify attempts on each
      // before declaring it defective.
      const double expected_stuck =
          stuck_rate * fault_planes * static_cast<double>(m.useful_cells);
      report.cells_stuck +=
          static_cast<std::int64_t>(std::llround(expected_stuck));
      report.energy_nj += expected_stuck * params.fault_retry_pulses *
                          params.write_energy_pj_per_cell * 1e-3;
      // A row's write step stalls for the retries if any of its cells is
      // stuck: P_row = 1 − (1 − p)^(cols · planes). Every serial row pays
      // the expected stall on the critical path.
      const double cells_per_row =
          static_cast<double>(m.shape.cols) * fault_planes;
      const double p_row =
          1.0 - std::pow(1.0 - stuck_rate, cells_per_row);
      layer_latency += static_cast<double>(serial_rows) * p_row *
                       params.fault_retry_pulses * params.write_latency_ns;
    }
    report.latency_ns = std::max(report.latency_ns, layer_latency);
  }
  return report;
}

}  // namespace autohet::reram
