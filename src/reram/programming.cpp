#include "reram/programming.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace autohet::reram {

ProgrammingReport evaluate_programming(
    const mapping::AllocationResult& allocation, const DeviceParams& device,
    const ProgrammingParams& params) {
  device.validate();
  AUTOHET_CHECK(params.write_energy_pj_per_cell > 0.0 &&
                    params.write_latency_ns > 0.0 &&
                    params.verify_pulses >= 1.0,
                "invalid programming parameters");
  ProgrammingReport report;
  const double planes = device.bit_planes();
  for (const auto& layer : allocation.layers) {
    const auto& m = layer.mapping;
    // Physical cells: every useful cell exists once per bit plane.
    const std::int64_t cells = static_cast<std::int64_t>(
        planes * static_cast<double>(m.useful_cells));
    report.cells_programmed += cells;
    report.energy_nj += static_cast<double>(cells) * params.verify_pulses *
                        params.write_energy_pj_per_cell * 1e-3;
    // Crossbars (and their bit planes) program in parallel; rows within a
    // crossbar serially. The busiest crossbar of this layer writes all its
    // occupied rows: at most one full row block's worth of the unfolded
    // weight-matrix height.
    const std::int64_t serial_rows = std::clamp<std::int64_t>(
        (m.weight_rows + m.row_blocks - 1) / m.row_blocks, 1, m.shape.rows);
    const double layer_latency =
        params.row_parallel
            ? static_cast<double>(serial_rows) * params.verify_pulses *
                  params.write_latency_ns
            : static_cast<double>(serial_rows) *
                  static_cast<double>(m.shape.cols) * params.verify_pulses *
                  params.write_latency_ns;
    report.latency_ns = std::max(report.latency_ns, layer_latency);
  }
  return report;
}

}  // namespace autohet::reram
