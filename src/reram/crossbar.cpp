#include "reram/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace autohet::reram {

LogicalCrossbar::LogicalCrossbar(mapping::CrossbarShape shape)
    : shape_(shape),
      cells_(static_cast<std::size_t>(shape.cells()), 0) {
  AUTOHET_CHECK(shape.rows > 0 && shape.cols > 0, "invalid crossbar shape");
}

void LogicalCrossbar::program(std::span<const std::int8_t> weights,
                              std::int64_t rows, std::int64_t cols) {
  AUTOHET_CHECK(rows >= 0 && rows <= shape_.rows, "rows exceed crossbar");
  AUTOHET_CHECK(cols >= 0 && cols <= shape_.cols, "cols exceed crossbar");
  AUTOHET_CHECK(static_cast<std::int64_t>(weights.size()) == rows * cols,
                "weight block size mismatch");
  std::fill(cells_.begin(), cells_.end(), static_cast<std::int8_t>(0));
  for (std::int64_t i = 0; i < rows; ++i) {
    for (std::int64_t j = 0; j < cols; ++j) {
      cells_[static_cast<std::size_t>(i * shape_.cols + j)] =
          weights[static_cast<std::size_t>(i * cols + j)];
    }
  }
  rows_used_ = rows;
  cols_used_ = cols;
}

void LogicalCrossbar::program_cell(std::int64_t row, std::int64_t col,
                                   std::int8_t value) {
  AUTOHET_CHECK(row >= 0 && row < shape_.rows && col >= 0 && col < shape_.cols,
                "cell index out of range");
  cells_[static_cast<std::size_t>(row * shape_.cols + col)] = value;
  rows_used_ = std::max(rows_used_, row + 1);
  cols_used_ = std::max(cols_used_, col + 1);
}

std::vector<std::int32_t> LogicalCrossbar::mvm_bit_serial(
    std::span<const std::uint8_t> input) const {
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  // For every input bit cycle (1-bit DAC) and every weight bit plane
  // (1-bit cells), form the binary bitline sums and shift-add them in.
  for (int xb = 0; xb < 8; ++xb) {
    for (int wb = 0; wb < 8; ++wb) {
      // Weight bit 7 is the two's-complement sign plane: value -2^7.
      const std::int64_t scale =
          (wb == 7) ? -(std::int64_t{1} << (xb + wb))
                    : (std::int64_t{1} << (xb + wb));
      for (std::int64_t j = 0; j < cols_used_; ++j) {
        std::int32_t bitline_sum = 0;  // current summation on the bitline
        for (std::int64_t i = 0; i < rows_used_; ++i) {
          const unsigned xbit = (input[static_cast<std::size_t>(i)] >> xb) & 1u;
          if (!xbit) continue;
          const auto cell = static_cast<std::uint8_t>(
              cells_[static_cast<std::size_t>(i * shape_.cols + j)]);
          bitline_sum += static_cast<std::int32_t>((cell >> wb) & 1u);
        }
        acc[static_cast<std::size_t>(j)] +=
            static_cast<std::int32_t>(scale * bitline_sum);
      }
    }
  }
  return acc;
}

std::vector<std::int32_t> LogicalCrossbar::mvm_multilevel(
    std::span<const std::uint8_t> input, int cell_bits) const {
  AUTOHET_CHECK(cell_bits > 0 && cell_bits <= 8 && 8 % cell_bits == 0,
                "cell_bits must divide 8");
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  const int planes = 8 / cell_bits;
  const unsigned cell_mask = (1u << cell_bits) - 1u;
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  // Reference column: 128 · Σx, subtracted once at the end to undo the
  // offset-binary encoding (w + 128 stored as unsigned conductances).
  std::int64_t ref = 0;
  for (std::int64_t i = 0; i < rows_used_; ++i) {
    ref += 128 * static_cast<std::int64_t>(input[static_cast<std::size_t>(i)]);
  }
  for (int xb = 0; xb < 8; ++xb) {
    for (int p = 0; p < planes; ++p) {
      const std::int64_t scale = std::int64_t{1} << (xb + p * cell_bits);
      for (std::int64_t j = 0; j < cols_used_; ++j) {
        std::int64_t bitline_sum = 0;
        for (std::int64_t i = 0; i < rows_used_; ++i) {
          const unsigned xbit = (input[static_cast<std::size_t>(i)] >> xb) & 1u;
          if (!xbit) continue;
          const auto offset = static_cast<unsigned>(
              static_cast<int>(
                  cells_[static_cast<std::size_t>(i * shape_.cols + j)]) +
              128);
          bitline_sum += static_cast<std::int64_t>(
              (offset >> (p * cell_bits)) & cell_mask);
        }
        acc[static_cast<std::size_t>(j)] +=
            static_cast<std::int32_t>(scale * bitline_sum);
      }
    }
  }
  for (auto& v : acc) v -= static_cast<std::int32_t>(ref);
  return acc;
}

void LogicalCrossbar::apply_variation(common::Rng& rng, double sigma) {
  AUTOHET_CHECK(sigma >= 0.0, "variation sigma must be non-negative");
  if (sigma == 0.0) return;
  for (auto& cell : cells_) {
    if (cell == 0) continue;  // unprogrammed (high-resistance) cells stay off
    const double noisy =
        static_cast<double>(cell) + rng.normal(0.0, sigma * 127.0);
    const double clamped = std::clamp(noisy, -128.0, 127.0);
    cell = static_cast<std::int8_t>(std::lround(clamped));
  }
}

FaultMapStats LogicalCrossbar::apply_faults(const FaultModel& model,
                                            std::uint64_t crossbar_id) {
  return model.apply(cells_, shape_.rows, shape_.cols, shape_.cols,
                     crossbar_id);
}

std::vector<std::int32_t> LogicalCrossbar::mvm_read_noisy(
    std::span<const std::uint8_t> input, common::Rng& rng,
    double weight_sigma) const {
  if (weight_sigma == 0.0) return mvm_reference(input);
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  for (std::int64_t i = 0; i < rows_used_; ++i) {
    const std::int32_t x = input[static_cast<std::size_t>(i)];
    if (x == 0) continue;  // gated wordline: cells are not sensed
    const std::int8_t* row = cells_.data() + i * shape_.cols;
    for (std::int64_t j = 0; j < cols_used_; ++j) {
      const double noisy =
          static_cast<double>(row[j]) + rng.normal(0.0, weight_sigma);
      const auto w = static_cast<std::int32_t>(
          std::lround(std::clamp(noisy, -128.0, 127.0)));
      acc[static_cast<std::size_t>(j)] += x * w;
    }
  }
  return acc;
}

std::vector<std::int32_t> LogicalCrossbar::mvm_reference(
    std::span<const std::uint8_t> input) const {
  AUTOHET_CHECK(static_cast<std::int64_t>(input.size()) == rows_used_,
                "input length must equal rows_used");
  std::vector<std::int32_t> acc(static_cast<std::size_t>(cols_used_), 0);
  for (std::int64_t i = 0; i < rows_used_; ++i) {
    const std::int32_t x = input[static_cast<std::size_t>(i)];
    if (x == 0) continue;
    const std::int8_t* row = cells_.data() + i * shape_.cols;
    for (std::int64_t j = 0; j < cols_used_; ++j) {
      acc[static_cast<std::size_t>(j)] += x * static_cast<std::int32_t>(row[j]);
    }
  }
  return acc;
}

}  // namespace autohet::reram
